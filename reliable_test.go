package smartsock_test

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"smartsock"
	"smartsock/internal/testbed"
)

// countingEchoService echoes lines and counts accepted connections.
func countingEchoService(t *testing.T) (net.Listener, *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var accepted atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "echo: %s\n", sc.Text())
				}
			}(conn)
		}
	}()
	return ln, &accepted
}

func dialReliable(t *testing.T, ln net.Listener) *smartsock.ReliableConn {
	t.Helper()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := smartsock.NewReliableConn(conn, ln.Addr().String(), time.Second)
	t.Cleanup(func() { r.Close() })
	return r
}

func roundTrip(t *testing.T, r *smartsock.ReliableConn, msg string) string {
	t.Helper()
	if _, err := fmt.Fprintf(r, "%s\n", msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	r.SetDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(r).ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return line
}

func TestReliableConnBasicIO(t *testing.T) {
	ln, _ := countingEchoService(t)
	r := dialReliable(t, ln)
	if got := roundTrip(t, r, "hi"); got != "echo: hi\n" {
		t.Errorf("round trip = %q", got)
	}
	if r.Addr() != ln.Addr().String() {
		t.Errorf("Addr = %q", r.Addr())
	}
}

func TestReliableConnSuspendResume(t *testing.T) {
	ln, accepted := countingEchoService(t)
	r := dialReliable(t, ln)
	roundTrip(t, r, "before")

	if err := r.Suspend(); err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	if !r.Suspended() {
		t.Error("not marked suspended")
	}
	if err := r.Suspend(); err != nil {
		t.Errorf("second Suspend: %v", err)
	}
	if err := r.Resume(context.Background()); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if r.Suspended() {
		t.Error("still marked suspended after Resume")
	}
	if got := roundTrip(t, r, "after"); got != "echo: after\n" {
		t.Errorf("post-resume round trip = %q", got)
	}
	if accepted.Load() != 2 {
		t.Errorf("server saw %d connections, want 2", accepted.Load())
	}
	if r.Redials() != 1 {
		t.Errorf("Redials = %d", r.Redials())
	}
}

func TestReliableConnWriteRedialsTransparently(t *testing.T) {
	ln, accepted := countingEchoService(t)
	r := dialReliable(t, ln)
	roundTrip(t, r, "warm")

	// Break the socket behind ReliableConn's back (simulates a server
	// or network failure between requests).
	r.Suspend()
	// A write must transparently reconnect instead of failing.
	if _, err := fmt.Fprintf(r, "recovered\n"); err != nil {
		t.Fatalf("write after break: %v", err)
	}
	r.SetDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(r).ReadString('\n')
	if err != nil || line != "echo: recovered\n" {
		t.Errorf("line = %q, err %v", line, err)
	}
	if accepted.Load() != 2 {
		t.Errorf("server saw %d connections", accepted.Load())
	}
}

func TestReliableConnResumeFailsCleanly(t *testing.T) {
	ln, _ := countingEchoService(t)
	r := dialReliable(t, ln)
	ln.Close() // the server is gone for good
	r.Suspend()
	if err := r.Resume(context.Background()); err == nil {
		t.Error("Resume to a dead server succeeded")
	}
	if _, err := r.Write([]byte("x")); err == nil {
		t.Error("Write to a dead server succeeded")
	}
}

func TestReliableConnCloseIsFinal(t *testing.T) {
	ln, _ := countingEchoService(t)
	r := dialReliable(t, ln)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := r.SetDeadline(time.Now()); err == nil {
		t.Error("SetDeadline on a closed conn succeeded")
	}
}

func TestSocketSetReliable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cluster, _ := bootServiceCluster(t, ctx, []testbed.Machine{
		{Bogomips: 4000, RAMMB: 256, Speed: 1},
	})
	client, err := smartsock.NewClient(cluster.WizardAddr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := client.Connect(ctx, "1 > 0", 1, smartsock.OptPartialOK)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	r, err := set.Reliable(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := roundTrip(t, r, "via set"); got != "echo: via set\n" {
		t.Errorf("round trip = %q", got)
	}
	if err := r.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := r.Resume(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Reliable(9); err == nil {
		t.Error("Reliable accepted an out-of-range index")
	}
}

func TestReliableConnNoReconnectAfterClose(t *testing.T) {
	ln, accepted := countingEchoService(t)
	r := dialReliable(t, ln)
	roundTrip(t, r, "once")
	r.Close()
	if _, err := r.Write([]byte("zombie\n")); err == nil {
		t.Error("Write after Close reconnected")
	}
	if err := r.Resume(context.Background()); err == nil {
		t.Error("Resume after Close reconnected")
	}
	if accepted.Load() != 1 {
		t.Errorf("server saw %d connections after Close, want 1", accepted.Load())
	}
}
