package smartsock_test

import (
	"fmt"

	"smartsock"
)

// Requirements are validated locally before any network traffic.
func ExampleCheckRequirement() {
	err := smartsock.CheckRequirement(`
# CPU-intensive job: fast, idle machines with headroom
host_cpu_bogomips > 4000
host_cpu_free >= 0.9
host_memory_free > 100
user_denied_host1 = hacker.some.net
`)
	fmt.Println("valid:", err == nil)

	err = smartsock.CheckRequirement("host_cpu_free >")
	fmt.Println("broken accepted:", err == nil)
	// Output:
	// valid: true
	// broken accepted: false
}

// The requirement language exposes a fixed catalogue of server-side
// variables; tooling can enumerate them.
func ExampleServerVariables() {
	vars := smartsock.ServerVariables()
	fmt.Println(len(vars) >= 22, vars[0])
	// Output:
	// true host_system_load1
}

// User-side variables are the five denied and five preferred host
// slots of Appendix B.2.
func ExampleUserVariables() {
	for _, v := range smartsock.UserVariables()[:2] {
		fmt.Println(v)
	}
	// Output:
	// user_denied_host1
	// user_denied_host2
}

// The math builtins of Appendix B.4 are available inside
// requirements, e.g. "log10(host_memory_free_bytes) > 8".
func ExampleFunctions() {
	fns := smartsock.Functions()
	has := map[string]bool{}
	for _, f := range fns {
		has[f] = true
	}
	fmt.Println(has["sin"], has["log10"], has["pow"])
	// Output:
	// true true true
}
