module smartsock

go 1.22
