package smartsock_test

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smartsock"
	"smartsock/internal/proto"
	"smartsock/internal/testbed"
)

// echoService is a trivial line-echo TCP service standing in for the
// "actual service program running on the servers" (§3.6.2 step 4).
func echoService(t *testing.T, ctx context.Context) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "echo: %s\n", sc.Text())
				}
			}(conn)
		}
	}()
	return ln
}

// bootServiceCluster starts a full pipeline whose server "names" are
// dialable service addresses, so Connect can complete end to end.
func bootServiceCluster(t *testing.T, ctx context.Context, specs []testbed.Machine) (*testbed.Cluster, []string) {
	t.Helper()
	var machines []testbed.Machine
	var addrs []string
	for _, spec := range specs {
		ln := echoService(t, ctx)
		m := spec
		m.Name = ln.Addr().String()
		machines = append(machines, m)
		addrs = append(addrs, m.Name)
	}
	cluster, err := testbed.Boot(testbed.Options{Machines: machines, ProbeInterval: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	wctx, cancel := context.WithTimeout(ctx, 20*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(wctx, len(machines)); err != nil {
		t.Fatal(err)
	}
	return cluster, addrs
}

func TestConnectReturnsWorkingSockets(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cluster, _ := bootServiceCluster(t, ctx, []testbed.Machine{
		{Bogomips: 4771, RAMMB: 512, Speed: 1},
		{Bogomips: 4771, RAMMB: 512, Speed: 1},
		{Bogomips: 1730, RAMMB: 128, Speed: 1},
	})
	client, err := smartsock.NewClient(cluster.WizardAddr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := client.Connect(ctx, "host_cpu_bogomips > 4000", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if set.Len() != 2 {
		t.Fatalf("connected to %d servers, want 2", set.Len())
	}
	// Every returned socket is live: round-trip a line through each.
	for i, conn := range set.Conns() {
		fmt.Fprintf(conn, "hello %d\n", i)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			t.Fatalf("socket %d: %v", i, err)
		}
		if want := fmt.Sprintf("echo: hello %d\n", i); line != want {
			t.Errorf("socket %d echoed %q", i, line)
		}
	}
}

func TestConnectSkipsDeadServers(t *testing.T) {
	// One registered server's service is gone (its listener context is
	// dead before Connect dials), but the probe still reports it, so
	// the wizard offers it. Connect's over-ask must skip it and fill
	// the set from the live servers.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deadCtx, killService := context.WithCancel(ctx)
	deadLn := echoService(t, deadCtx)
	killService()
	time.Sleep(20 * time.Millisecond) // let the listener close

	live1 := echoService(t, ctx)
	live2 := echoService(t, ctx)
	machines := []testbed.Machine{
		{Name: deadLn.Addr().String(), Bogomips: 4000, RAMMB: 256, Speed: 1},
		{Name: live1.Addr().String(), Bogomips: 4000, RAMMB: 256, Speed: 1},
		{Name: live2.Addr().String(), Bogomips: 4000, RAMMB: 256, Speed: 1},
	}
	cluster, err := testbed.Boot(testbed.Options{Machines: machines, ProbeInterval: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	wctx, wcancel := context.WithTimeout(ctx, 20*time.Second)
	defer wcancel()
	if err := cluster.WaitSettled(wctx, 3); err != nil {
		t.Fatal(err)
	}
	client, err := smartsock.NewClient(cluster.WizardAddr(), &smartsock.ClientConfig{DialTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	set, err := client.Connect(ctx, "1 > 0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if set.Len() != 2 {
		t.Fatalf("connected to %d servers, want 2 live ones", set.Len())
	}
	for _, addr := range set.Addrs() {
		if addr == deadLn.Addr().String() {
			t.Error("Connect handed back the dead server")
		}
	}
}

func TestRequestServersShortfallError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cluster, _ := bootServiceCluster(t, ctx, []testbed.Machine{
		{Bogomips: 4771, RAMMB: 512, Speed: 1},
	})
	client, err := smartsock.NewClient(cluster.WizardAddr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.RequestServers(ctx, "host_cpu_bogomips > 4000", 5); err == nil {
		t.Error("expected shortfall error without OptPartialOK")
	}
	servers, err := client.RequestServers(ctx, "host_cpu_bogomips > 4000", 5, smartsock.OptPartialOK)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 1 {
		t.Errorf("servers = %v", servers)
	}
}

func TestRequestServersSyntaxErrorSurfaces(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cluster, _ := bootServiceCluster(t, ctx, []testbed.Machine{
		{Bogomips: 1000, RAMMB: 128, Speed: 1},
	})
	client, err := smartsock.NewClient(cluster.WizardAddr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.RequestServers(ctx, "a <", 1)
	if err == nil || !strings.Contains(err.Error(), "wizard") {
		t.Errorf("err = %v, want a wizard-reported parse error", err)
	}
}

func TestSocketSetRedial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cluster, _ := bootServiceCluster(t, ctx, []testbed.Machine{
		{Bogomips: 4000, RAMMB: 256, Speed: 1},
	})
	client, err := smartsock.NewClient(cluster.WizardAddr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := client.Connect(ctx, "1 > 0", 1, smartsock.OptPartialOK)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if err := set.Redial(ctx, 0); err != nil {
		t.Fatalf("Redial: %v", err)
	}
	fmt.Fprintln(set.Conns()[0], "after redial")
	set.Conns()[0].SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(set.Conns()[0]).ReadString('\n')
	if err != nil || line != "echo: after redial\n" {
		t.Errorf("redialed socket broken: %q, %v", line, err)
	}
	if err := set.Redial(ctx, 5); err == nil {
		t.Error("Redial accepted an out-of-range index")
	}
}

// flakyWizard answers the i-th datagram only when drop(i) is false,
// exercising the client's retry path.
func flakyWizard(t *testing.T, handle func(i int, req *proto.Request) *proto.Reply) string {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 64*1024)
		for i := 0; ; i++ {
			n, from, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			req, err := proto.UnmarshalRequest(buf[:n])
			if err != nil {
				continue
			}
			reply := handle(i, req)
			if reply == nil {
				continue
			}
			out, err := proto.MarshalReply(reply)
			if err != nil {
				continue
			}
			conn.WriteToUDP(out, from)
		}
	}()
	return conn.LocalAddr().String()
}

func TestClientRetriesLostReply(t *testing.T) {
	addr := flakyWizard(t, func(i int, req *proto.Request) *proto.Reply {
		if i == 0 {
			return nil // drop the first request entirely
		}
		return &proto.Reply{Seq: req.Seq, Servers: []string{"survivor"}}
	})
	client, err := smartsock.NewClient(addr, &smartsock.ClientConfig{
		Timeout: 100 * time.Millisecond,
		Retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	servers, err := client.RequestServers(context.Background(), "1 > 0", 1)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if len(servers) != 1 || servers[0] != "survivor" {
		t.Errorf("servers = %v", servers)
	}
}

func TestClientIgnoresWrongSequenceReplies(t *testing.T) {
	addr := flakyWizard(t, func(i int, req *proto.Request) *proto.Reply {
		if i == 0 {
			// A reply for some other request must be ignored (§3.6.2
			// step 3)... then the client's resend gets the right one.
			return &proto.Reply{Seq: req.Seq + 99, Servers: []string{"imposter"}}
		}
		return &proto.Reply{Seq: req.Seq, Servers: []string{"genuine"}}
	})
	client, err := smartsock.NewClient(addr, &smartsock.ClientConfig{
		Timeout: 150 * time.Millisecond,
		Retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	servers, err := client.RequestServers(context.Background(), "1 > 0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if servers[0] != "genuine" {
		t.Errorf("accepted mismatched reply: %v", servers)
	}
}

func TestClientTimesOutAgainstDeadWizard(t *testing.T) {
	client, err := smartsock.NewClient("127.0.0.1:1", &smartsock.ClientConfig{
		Timeout: 50 * time.Millisecond,
		Retries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := client.RequestServers(context.Background(), "1 > 0", 1); err == nil {
		t.Error("dead wizard produced an answer")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout did not bound the exchange")
	}
}

func TestRequestValidation(t *testing.T) {
	client, err := smartsock.NewClient("127.0.0.1:1120", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := client.RequestServers(ctx, "1 > 0", 0); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := client.RequestServers(ctx, "1 > 0", smartsock.MaxServers+1); err == nil {
		t.Error("accepted n above the protocol cap")
	}
	if _, err := smartsock.NewClient("", nil); err == nil {
		t.Error("accepted empty wizard address")
	}
}

func TestLoadRequirement(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.req")
	os.WriteFile(good, []byte("host_cpu_free > 0.9 # fast\n"), 0o644)
	text, err := smartsock.LoadRequirement(good)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "host_cpu_free") {
		t.Error("requirement text lost")
	}
	bad := filepath.Join(dir, "bad.req")
	os.WriteFile(bad, []byte("a <\n"), 0o644)
	if _, err := smartsock.LoadRequirement(bad); err == nil {
		t.Error("accepted a syntactically broken file")
	}
	if _, err := smartsock.LoadRequirement(filepath.Join(dir, "missing.req")); err == nil {
		t.Error("accepted a missing file")
	}
}

func TestCheckRequirement(t *testing.T) {
	if err := smartsock.CheckRequirement("host_cpu_free > 0.9\n"); err != nil {
		t.Errorf("valid requirement rejected: %v", err)
	}
	if err := smartsock.CheckRequirement("a ! b"); err == nil {
		t.Error("invalid requirement accepted")
	}
}

func TestVariableCatalogues(t *testing.T) {
	vars := smartsock.ServerVariables()
	if len(vars) < 22 {
		t.Errorf("ServerVariables lists %d, thesis defines 22", len(vars))
	}
	if got := smartsock.UserVariables(); len(got) != 10 {
		t.Errorf("UserVariables lists %d, thesis defines 10", len(got))
	}
	fns := smartsock.Functions()
	want := map[string]bool{"sin": false, "cos": false, "exp": false, "log10": false}
	for _, f := range fns {
		if _, ok := want[f]; ok {
			want[f] = true
		}
	}
	for f, seen := range want {
		if !seen {
			t.Errorf("Functions() missing Appendix B.4 builtin %q", f)
		}
	}
}

func TestDistributedModeEndToEnd(t *testing.T) {
	// The whole pipeline in distributed (pull-per-request) mode.
	machines := []testbed.Machine{
		{Name: "alpha", Bogomips: 4771, RAMMB: 512, Speed: 1},
		{Name: "beta", Bogomips: 1730, RAMMB: 128, Speed: 1},
	}
	cluster, err := testbed.Boot(testbed.Options{
		Machines:      machines,
		ProbeInterval: 30 * time.Millisecond,
		Distributed:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	// In distributed mode the wizard DB fills only on request, so wait
	// for the monitor-side db instead.
	deadline := time.Now().Add(10 * time.Second)
	for cluster.DB.SysLen() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if cluster.DB.SysLen() < 2 {
		t.Fatal("monitor db never filled")
	}
	client, err := smartsock.NewClient(cluster.WizardAddr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	servers, err := client.RequestServers(ctx, "host_cpu_bogomips > 4000", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 1 || servers[0] != "alpha" {
		t.Errorf("servers = %v, want [alpha]", servers)
	}
}
