package smartsock_test

// Chaos × observability: the obs registry must tell the truth under
// injected faults. Each test boots the in-process testbed with a
// shared registry, injects a specific failure with a seeded schedule,
// and reconciles the registry's snapshot against both the fault
// injector's own ledger and the components' legacy accessors — the
// counters an operator reads off -debug must be the same numbers the
// components report in process.

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"smartsock/internal/chaos"
	"smartsock/internal/obs"
	"smartsock/internal/overload"
	"smartsock/internal/proto"
	"smartsock/internal/testbed"
)

func chaosMachines(n int) []testbed.Machine {
	ms := make([]testbed.Machine, n)
	for i := range ms {
		ms[i] = testbed.Machine{
			Name: fmt.Sprintf("chaos-%d", i), CPU: "sim",
			Bogomips: 2000 + float64(i)*100, RAMMB: 256, Speed: 1, Group: "lab",
		}
	}
	return ms
}

// reconcile polls until want() == the named obs counter, tolerating
// in-flight increments between the two reads.
func reconcile(t *testing.T, reg *obs.Registry, name string, want func() uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		legacy := want()
		snap := reg.Snapshot()
		if got := snap.Counters[name]; got == legacy {
			return
		} else if time.Now().After(deadline) {
			t.Errorf("obs %s = %d, legacy accessor = %d", name, got, legacy)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosObsCountersMatchInjectedFaults injects three distinct
// faults — a push-stream reset, a mid-frame stream tear, a crashed
// host — and checks each leaves exactly the fingerprint the obs layer
// promises: the reset surfaces as transmitter redials (a FIN-closed
// stream ends at a frame boundary, so it is neither torn nor a
// resync — the fresh connection re-anchors with a full snapshot), the
// tear surfaces as precisely one torn-stream count, the crash as a
// monitor expiry, and every transport/monitor counter agrees with the
// legacy accessors.
func TestChaosObsCountersMatchInjectedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	seed := chaos.SeedFromEnv(42)
	const interval = 50 * time.Millisecond
	txFaults := chaos.New(chaos.Config{Seed: seed})
	reg := obs.NewRegistry()

	machines := chaosMachines(3)
	cluster, err := testbed.Boot(testbed.Options{
		Machines:        machines,
		ProbeInterval:   interval,
		MissedIntervals: 2,
		ExpireAll:       true,
		TxFaults:        txFaults,
		Obs:             reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(ctx, len(machines)); err != nil {
		t.Fatal(err)
	}

	// Fault 1: sever the live push stream. The transmitter must go
	// through its backoff-and-redial path, and that path is counted.
	redialsBefore := reg.Snapshot().Counters["transport_tx_redials"]
	if n := txFaults.ResetAllStreams(); n == 0 {
		t.Fatal("no transmitter stream was wrapped")
	}
	deadline := time.Now().Add(10 * time.Second)
	for reg.Snapshot().Counters["transport_tx_redials"] == redialsBefore {
		if time.Now().After(deadline) {
			t.Fatal("stream reset never surfaced as a transmitter redial")
		}
		time.Sleep(interval)
	}

	// Fault 2: a stream that dies mid-frame. Two bytes of a five-byte
	// frame header and then nothing is the torn-stream case the
	// receiver distinguishes from a clean disconnect — exactly one
	// torn count, no more.
	tornBefore := cluster.Recv.Torn()
	tear, err := net.Dial("tcp", cluster.Recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tear.Write([]byte{0x01, 0x00}); err != nil {
		t.Fatal(err)
	}
	if err := tear.Close(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for cluster.Recv.Torn() != tornBefore+1 {
		if time.Now().After(deadline) {
			t.Fatalf("mid-frame tear counted %d times, want 1", cluster.Recv.Torn()-tornBefore)
		}
		time.Sleep(interval)
	}

	// Fault 3: crash a host. Its silence must surface as exactly the
	// monitor expiry the MissedIntervals policy promises.
	expiredBefore := cluster.Monitor().Expired()
	dead := machines[0].Name
	if err := cluster.CrashHost(dead); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for cluster.Monitor().Expired() == expiredBefore {
		if time.Now().After(deadline) {
			t.Fatal("crashed host never surfaced as a monitor expiry")
		}
		time.Sleep(interval)
	}

	// Reconcile: every obs counter equals its component's own ledger.
	for name, legacy := range map[string]func() uint64{
		"transport_tx_snapshots":      cluster.Tx.Sent,
		"transport_tx_delta_epochs":   cluster.Tx.Deltas,
		"transport_tx_epochs_skipped": cluster.Tx.Skipped,
		"transport_recv_frames":       cluster.Recv.Received,
		"transport_recv_torn":         cluster.Recv.Torn,
		"transport_recv_resyncs":      cluster.Recv.Resyncs,
		"monitor_reports":             cluster.Monitor().Received,
		"monitor_expired":             cluster.Monitor().Expired,
	} {
		reconcile(t, reg, name, legacy)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["transport_recv_torn"]; got == 0 {
		t.Error("torn-stream counter still zero after an injected reset")
	}
	if got := snap.Counters["monitor_expired"]; got == 0 {
		t.Error("expiry counter still zero after a crashed host")
	}
	// The push stream's epoch-lag series must exist for the loopback
	// source, and once re-settled the receiver is caught up: lag 0.
	lagName := `transport_epoch_lag{source="127.0.0.1"}`
	lag, ok := snap.Gauges[lagName]
	if !ok {
		t.Fatalf("no %s gauge; have %v", lagName, snap.Gauges)
	}
	deadline = time.Now().Add(10 * time.Second)
	for lag != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("epoch lag stuck at %d after stream recovery", lag)
		}
		time.Sleep(interval)
		lag = reg.Snapshot().Gauges[lagName]
	}
}

// TestChaosObsStaleDroppedWithoutExpiry pins the other eviction path:
// with monitor expiry effectively disabled and a tight MaxStatusAge,
// a crashed host is shed by the selector's staleness filter alone.
// The obs fingerprint is the mirror image of the crash test's —
// core_stale_dropped counts up while monitor_expired stays zero — and
// the wizard's latency histograms classify every answer under an
// outcome, so their counts sum to the requests made.
func TestChaosObsStaleDroppedWithoutExpiry(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	const interval = 50 * time.Millisecond
	reg := obs.NewRegistry()
	machines := chaosMachines(3)
	cluster, err := testbed.Boot(testbed.Options{
		Machines:        machines,
		ProbeInterval:   interval,
		MissedIntervals: 1000, // the monitor never gives up on a host
		MaxStatusAge:    3 * interval,
		Obs:             reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(ctx, len(machines)); err != nil {
		t.Fatal(err)
	}
	if err := cluster.CrashHost(machines[0].Name); err != nil {
		t.Fatal(err)
	}

	req := &proto.Request{
		Seq: 1, ServerNum: uint16(len(machines)),
		Option: proto.OptPartialOK,
		Detail: "host_memory_total > 0\n",
	}
	answers := uint64(0)
	deadline := time.Now().Add(15 * time.Second)
	for reg.Snapshot().Counters["core_stale_dropped"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("selector never dropped the crashed host's stale record")
		}
		if reply := cluster.Wizard().Answer(ctx, req); reply == nil {
			t.Fatal("nil reply from in-process wizard")
		}
		answers++
		time.Sleep(interval)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["monitor_expired"]; got != 0 {
		t.Errorf("monitor expired %d hosts; staleness filtering should have acted alone", got)
	}
	// Outcome histograms partition the answers: their counts sum to
	// the requests asked, nothing double-counted or dropped.
	var observed uint64
	for name, h := range snap.Histograms {
		if len(name) > 15 && name[:15] == "wizard_latency_" {
			observed += h.Count
		}
	}
	if observed != answers {
		t.Errorf("latency histograms observed %d answers, asked %d", observed, answers)
	}
}

// TestChaosObsOverloadBypassReconciles pins the overload plane's
// priority invariant under a request storm: transport frames (the
// status distribution the wizard answers from) are never queued and
// never shed, and every one is recorded as a bypass admission — so
// overload_bypass must reconcile exactly with transport_recv_frames
// even while the gate is actively rejecting a runaway request source
// next to them.
func TestChaosObsOverloadBypassReconciles(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	const interval = 50 * time.Millisecond
	reg := obs.NewRegistry()
	// A tiny per-source budget so the storm below reliably trips the
	// limiter: shedding must be happening while bypass reconciles.
	gate := overload.New(overload.Config{
		MaxQueue: 64,
		Rate:     50,
		Burst:    8,
		Obs:      reg,
	})
	cluster, err := testbed.Boot(testbed.Options{
		Machines:      chaosMachines(3),
		ProbeInterval: interval,
		Overload:      gate,
		Obs:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(ctx, 3); err != nil {
		t.Fatal(err)
	}

	// Storm the wizard from one source well past its 50/s budget,
	// draining replies so nothing wedges.
	conn, err := net.Dial("udp", cluster.WizardAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		buf := make([]byte, 64*1024)
		for {
			if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
				return
			}
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	req := &proto.Request{ServerNum: 1, Detail: "host_memory_total > 0\n"}
	deadline := time.Now().Add(10 * time.Second)
	for seq := uint32(1); gate.RateLimited() == 0; seq++ {
		if time.Now().After(deadline) {
			t.Fatal("storm never tripped the per-source rate limiter")
		}
		req.Seq = seq
		if _, err := conn.Write(proto.MarshalRequest(req)); err != nil {
			t.Fatal(err)
		}
	}

	// The invariant, while frames keep flowing and requests keep being
	// rejected: every received transport frame is a bypass admission.
	reconcile(t, reg, "overload_bypass", cluster.Recv.Received)
	snap := reg.Snapshot()
	if snap.Counters["overload_bypass"] == 0 {
		t.Error("no transport frames flowed; the bypass invariant was tested against nothing")
	}
	if snap.Counters["overload_ratelimited"] == 0 {
		t.Error("overload_ratelimited stayed zero through the storm")
	}
}
