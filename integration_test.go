package smartsock_test

// Multi-process integration: build the real binaries and stand up the
// thesis's deployment — probe on a "server", sysmond on the monitor
// machine, wizardd on the wizard machine — as separate OS processes
// talking over real sockets, then query it with smartreq. This is the
// closest the test suite gets to the production topology of Fig 3.1.

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// freePort grabs an ephemeral port and releases it for a child
// process to claim. Mildly racy, retried by the caller on failure.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

func buildTools(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	return bins
}

func startDaemon(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var output bytes.Buffer
	cmd.Stdout = &output
	cmd.Stderr = &output
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() {
			t.Logf("%s output:\n%s", filepath.Base(bin), output.String())
		}
	})
	return cmd
}

func TestMultiProcessDeployment(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("the probe binary reads /proc")
	}
	if testing.Short() {
		t.Skip("builds and spawns five processes")
	}
	bins := buildTools(t, "probe", "sysmond", "wizardd", "smartreq")

	monPort := freePort(t)
	recvPort := freePort(t)
	wizPort := freePort(t)
	monAddr := fmt.Sprintf("127.0.0.1:%d", monPort)
	recvAddr := fmt.Sprintf("127.0.0.1:%d", recvPort)
	wizAddr := fmt.Sprintf("127.0.0.1:%d", wizPort)

	seclog := filepath.Join(t.TempDir(), "security.log")
	if err := os.WriteFile(seclog, []byte("integration-host 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	startDaemon(t, bins["wizardd"],
		"-listen", wizAddr,
		"-receiver-listen", recvAddr,
	)
	startDaemon(t, bins["sysmond"],
		"-listen", monAddr,
		"-interval", "200ms",
		"-receiver", recvAddr,
		"-seclog", seclog,
	)
	startDaemon(t, bins["probe"],
		"-monitor", monAddr,
		"-host", "integration-host",
		"-interval", "200ms",
	)

	// Query until the pipeline settles (probe → sysmond → wizardd).
	deadline := time.Now().Add(20 * time.Second)
	requirement := "host_memory_total > 0\nhost_security_level >= 5\n"
	var lastOut string
	for time.Now().Before(deadline) {
		cmd := exec.Command(bins["smartreq"],
			"-wizard", wizAddr,
			"-n", "1",
			"-req", requirement,
			"-timeout", "2s",
		)
		out, err := cmd.CombinedOutput()
		lastOut = string(out)
		if err == nil && strings.Contains(lastOut, "integration-host") {
			return // success: the live host was selected end to end
		}
		time.Sleep(300 * time.Millisecond)
	}
	t.Fatalf("pipeline never answered; last smartreq output:\n%s", lastOut)
}

func TestSmartreqRejectsBadRequirementLocally(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bins := buildTools(t, "smartreq")
	cmd := exec.Command(bins["smartreq"], "-wizard", "127.0.0.1:1", "-req", "a <")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("smartreq accepted a broken requirement")
	}
	if !strings.Contains(string(out), "reqlang") {
		t.Errorf("error output %q does not mention the parser", out)
	}
}

func TestSmartbenchListsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bins := buildTools(t, "smartbench")
	out, err := exec.Command(bins["smartbench"], "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("smartbench -list: %v\n%s", err, out)
	}
	for _, id := range []string{"table3.3", "table5.3", "table5.9", "fig3.3", "fig5.3"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

func TestMultiProcessNetworkMonitor(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("the probe binary reads /proc")
	}
	if testing.Short() {
		t.Skip("builds and spawns four processes")
	}
	bins := buildTools(t, "probe", "sysmond", "wizardd", "echod", "smartreq")

	monPort := freePort(t)
	recvPort := freePort(t)
	wizPort := freePort(t)
	echoPort := freePort(t)
	monAddr := fmt.Sprintf("127.0.0.1:%d", monPort)
	recvAddr := fmt.Sprintf("127.0.0.1:%d", recvPort)
	wizAddr := fmt.Sprintf("127.0.0.1:%d", wizPort)
	echoAddr := fmt.Sprintf("127.0.0.1:%d", echoPort)

	startDaemon(t, bins["echod"], "-listen", echoAddr)
	startDaemon(t, bins["wizardd"],
		"-listen", wizAddr,
		"-receiver-listen", recvAddr,
		"-local-monitor", "netmon-here",
		"-groups", "netmon-host=peer-group",
	)
	startDaemon(t, bins["sysmond"],
		"-listen", monAddr,
		"-interval", "200ms",
		"-receiver", recvAddr,
		"-netmon", "netmon-here",
		"-peer", "peer-group="+echoAddr,
	)
	startDaemon(t, bins["probe"],
		"-monitor", monAddr,
		"-host", "netmon-host",
		"-interval", "200ms",
	)

	// On loopback the echo path is effectively infinite bandwidth and
	// near-zero delay, so this requirement passes once netmon has
	// probed the peer at least once.
	requirement := "monitor_network_delay < 100\n"
	deadline := time.Now().Add(25 * time.Second)
	var lastOut string
	for time.Now().Before(deadline) {
		cmd := exec.Command(bins["smartreq"],
			"-wizard", wizAddr, "-n", "1", "-req", requirement, "-timeout", "2s")
		out, err := cmd.CombinedOutput()
		lastOut = string(out)
		if err == nil && strings.Contains(lastOut, "netmon-host") {
			return
		}
		time.Sleep(400 * time.Millisecond)
	}
	t.Fatalf("network-monitored pipeline never answered; last output:\n%s", lastOut)
}
