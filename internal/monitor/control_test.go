package monitor

import (
	"testing"
	"time"

	"smartsock/internal/probe"
	"smartsock/internal/sysinfo"
)

// TestSelectedParametersControlLoop exercises the Chapter 6 extension
// end to end: the monitor is told which parameter groups matter
// (derived from requirement-variable statistics); its control reply
// rides the next report's return path; the probe narrows subsequent
// reports accordingly.
func TestSelectedParametersControlLoop(t *testing.T) {
	m, db, _ := startMonitor(t, Config{Interval: time.Second})

	src := sysinfo.NewSynthetic(sysinfo.Idle("ctl", 2222, 256))
	p, err := probe.New(probe.Config{Source: src, Monitor: m.Addr(), Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}

	// First report: full status arrives, no control configured.
	if err := p.ReportOnce(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return db.SysLen() == 1 })
	rec, _ := db.GetSys("ctl")
	if rec.Status.MemTotal == 0 || rec.Status.Load1 == 0 {
		t.Fatal("initial report already masked")
	}

	// An operator (or the wizard's VarStats) decides only load and CPU
	// matter.
	mask := probe.MaskForVariables([]string{"host_system_load1", "host_cpu_free"})
	if mask != probe.FieldLoad|probe.FieldCPU {
		t.Fatalf("MaskForVariables = %b", mask)
	}
	m.SetReportMask(uint8(mask))

	// The next report triggers the control reply; the probe applies
	// it asynchronously and subsequent reports arrive narrowed. Keep
	// reporting until the narrowed record shows up.
	waitFor(t, 3*time.Second, func() bool {
		if err := p.ReportOnce(); err != nil {
			t.Fatal(err)
		}
		rec, ok := db.GetSys("ctl")
		return ok && rec.Status.MemTotal == 0 && rec.Status.Load1 != 0
	})

	// Broadcasting FieldAll restores full reporting the same way.
	m.SetReportMask(uint8(probe.FieldAll))
	waitFor(t, 3*time.Second, func() bool {
		if err := p.ReportOnce(); err != nil {
			t.Fatal(err)
		}
		rec, ok := db.GetSys("ctl")
		return ok && rec.Status.MemTotal != 0
	})
}

func TestMaskForVariables(t *testing.T) {
	cases := []struct {
		vars []string
		want probe.FieldMask
	}{
		{nil, 0},
		{[]string{"host_system_load5"}, probe.FieldLoad},
		{[]string{"host_cpu_bogomips", "host_cpu_free"}, probe.FieldCPU},
		{[]string{"host_memory_free", "host_disk_rreq"}, probe.FieldMemory | probe.FieldDisk},
		{[]string{"host_network_tbytesps"}, probe.FieldNetwork},
		{[]string{"monitor_network_bw", "host_security_level"}, 0}, // not probe-measured
		{[]string{"host_system_load1", "host_cpu_idle", "host_memory_used",
			"host_disk_wblocks", "host_network_rbytesps"}, probe.FieldAll},
	}
	for _, c := range cases {
		if got := probe.MaskForVariables(c.vars); got != c.want {
			t.Errorf("MaskForVariables(%v) = %b, want %b", c.vars, got, c.want)
		}
	}
}
