package monitor

import (
	"context"
	"net"
	"testing"
	"time"

	"smartsock/internal/probe"
	"smartsock/internal/status"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
)

func startMonitor(t *testing.T, cfg Config) (*Monitor, *store.DB, context.CancelFunc) {
	t.Helper()
	db := store.New()
	cfg.DB = db
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go m.Run(ctx)
	t.Cleanup(cancel)
	return m, db, cancel
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestMonitorRequiresDB(t *testing.T) {
	if _, err := New(Config{Addr: "127.0.0.1:0"}); err == nil {
		t.Error("New accepted a nil DB")
	}
}

func TestProbeToMonitorUDP(t *testing.T) {
	m, db, _ := startMonitor(t, Config{Interval: 50 * time.Millisecond})

	src := sysinfo.NewSynthetic(sysinfo.Idle("helene", 3394.76, 256))
	p, err := probe.New(probe.Config{
		Source:   src,
		Monitor:  m.Addr(),
		Interval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go p.Run(ctx)

	waitFor(t, 2*time.Second, func() bool { return db.SysLen() == 1 })
	rec, ok := db.GetSys("helene")
	if !ok {
		t.Fatal("helene not in sysdb")
	}
	if rec.Status.Bogomips != 3394.76 {
		t.Errorf("Bogomips = %v", rec.Status.Bogomips)
	}
	if m.Received() == 0 {
		t.Error("monitor counted no reports")
	}
}

func TestProbeToMonitorTCP(t *testing.T) {
	m, db, _ := startMonitor(t, Config{Interval: 50 * time.Millisecond, EnableTCP: true})

	src := sysinfo.NewSynthetic(sysinfo.Idle("dione", 4771.02, 512))
	p, err := probe.New(probe.Config{
		Source:    src,
		Monitor:   m.Addr(),
		Interval:  20 * time.Millisecond,
		Transport: probe.TCP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReportOnce(); err != nil {
		t.Fatalf("ReportOnce over TCP: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool { return db.SysLen() == 1 })
	if _, ok := db.GetSys("dione"); !ok {
		t.Error("dione not in sysdb after TCP report")
	}
}

func TestMonitorExpiresSilentProbe(t *testing.T) {
	m, db, _ := startMonitor(t, Config{
		Interval:        20 * time.Millisecond,
		MissedIntervals: 3,
	})
	src := sysinfo.NewSynthetic(sysinfo.Idle("ghost", 1000, 128))
	p, err := probe.New(probe.Config{Source: src, Monitor: m.Addr(), Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReportOnce(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return db.SysLen() == 1 })
	// Probe goes silent; after 3 intervals (60 ms) + expiry sweep, the
	// record must vanish (§3.2.2 / §4.1).
	waitFor(t, 2*time.Second, func() bool { return db.SysLen() == 0 })
	if m.Expired() == 0 {
		t.Error("monitor did not count the expiry")
	}
}

func TestMonitorUpdatesExistingRecord(t *testing.T) {
	m, db, _ := startMonitor(t, Config{Interval: time.Second})
	src := sysinfo.NewSynthetic(sysinfo.Idle("worker", 2000, 256))
	p, err := probe.New(probe.Config{Source: src, Monitor: m.Addr(), Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReportOnce(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return db.SysLen() == 1 })

	src.Update(func(s *status.ServerStatus) { s.Load1 = 7.5 })
	if err := p.ReportOnce(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		rec, ok := db.GetSys("worker")
		return ok && rec.Status.Load1 == 7.5
	})
	if db.SysLen() != 1 {
		t.Errorf("SysLen = %d, want 1 (update, not insert)", db.SysLen())
	}
}

func TestMonitorDropsGarbageDatagrams(t *testing.T) {
	m, db, _ := startMonitor(t, Config{Interval: time.Second})
	conn, err := net.Dial("udp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("not a report"))
	conn.Write(nil)
	// A valid report afterwards still lands.
	s := sysinfo.Idle("ok", 1000, 64)
	conn.Write(status.EncodeReport(&s))
	waitFor(t, 2*time.Second, func() bool { return db.SysLen() == 1 })
	if m.Received() != 1 {
		t.Errorf("Received = %d, want 1", m.Received())
	}
}

func TestProbeFieldMask(t *testing.T) {
	m, db, _ := startMonitor(t, Config{Interval: time.Second})
	src := sysinfo.NewSynthetic(sysinfo.Idle("masked", 1234, 128))
	p, err := probe.New(probe.Config{Source: src, Monitor: m.Addr(), Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	p.SetFields(probe.FieldLoad | probe.FieldCPU) // Ch. 6 selected-parameters mode
	if err := p.ReportOnce(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return db.SysLen() == 1 })
	rec, _ := db.GetSys("masked")
	if rec.Status.MemTotal != 0 || rec.Status.NetIface != "" {
		t.Errorf("masked fields leaked: %+v", rec.Status)
	}
	if rec.Status.Load1 == 0 {
		t.Error("unmasked field lost")
	}
}

func TestProbeValidation(t *testing.T) {
	if _, err := probe.New(probe.Config{Monitor: "x"}); err == nil {
		t.Error("accepted nil source")
	}
	src := sysinfo.NewSynthetic(sysinfo.Idle("a", 1, 1))
	if _, err := probe.New(probe.Config{Source: src}); err == nil {
		t.Error("accepted empty monitor address")
	}
}

func TestMonitorRestartPreservesPipeline(t *testing.T) {
	// UDP reporting is connectionless: a monitor crash and restart on
	// the same port must be invisible to running probes — the
	// fault-tolerance story behind §3.2.2's join/leave-at-any-time.
	m1, db1, cancel1 := startMonitor(t, Config{Interval: time.Second})
	addr := m1.Addr()
	src := sysinfo.NewSynthetic(sysinfo.Idle("steady", 2000, 256))
	p, err := probe.New(probe.Config{Source: src, Monitor: addr, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.ReportOnce(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return db1.SysLen() == 1 })

	// Kill the monitor; the probe keeps reporting into the void.
	cancel1()
	time.Sleep(30 * time.Millisecond)
	p.ReportOnce() // lost, but must not error fatally on UDP

	// A fresh monitor binds the same port with an empty database.
	db2 := store.New()
	m2, err := New(Config{Addr: addr, DB: db2, Interval: time.Second})
	if err != nil {
		t.Skipf("port reuse raced: %v", err)
	}
	ctx, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go m2.Run(ctx)

	// The very next report repopulates it without reconfiguration.
	waitFor(t, 3*time.Second, func() bool {
		p.ReportOnce()
		return db2.SysLen() == 1
	})
}
