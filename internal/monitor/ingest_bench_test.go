package monitor

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"smartsock/internal/status"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
)

// BenchmarkMonitorIngest drives the UDP ingest loop with a windowed
// sender and pins its allocation floor. The serve loop runs in its
// own goroutine, so testing's per-goroutine alloc counter cannot see
// it; the benchmark reads global memstats around the run instead. The
// sender side is alloc-free (one dialled socket, one reused datagram),
// so the global delta is the serve loop's own cost — which must not
// include the seed loop's per-report *net.UDPAddr (ReadFromUDP minted
// one per datagram; the netbatch plane reports peers as netip
// values).
func BenchmarkMonitorIngest(b *testing.B) {
	for _, bc := range []struct {
		name  string
		batch int
	}{
		{"batch1", 1},
		{"batch32", 32},
	} {
		b.Run(bc.name, func(b *testing.B) {
			db := store.New()
			m, err := New(Config{Addr: "127.0.0.1:0", DB: db, Interval: time.Hour, Batch: bc.batch})
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go m.Run(ctx)

			raddr, err := net.ResolveUDPAddr("udp", m.Addr())
			if err != nil {
				b.Fatal(err)
			}
			conn, err := net.DialUDP("udp", nil, raddr)
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			rep := sysinfo.Idle("bench-host", 3394.76, 256)
			msg := status.EncodeReport(&rep)

			// Warm-up round trip: lazily-built state (endpoint scratch,
			// the db record, timer wheels) is paid before counting.
			send(b, conn, msg, m, 64)

			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			send(b, conn, msg, m, b.N)
			b.StopTimer()
			runtime.ReadMemStats(&after)

			perReport := float64(after.Mallocs-before.Mallocs) / float64(b.N)
			b.ReportMetric(perReport, "allocs/report")
			// The pin: the decode+upsert path costs a handful of
			// allocations; the seed read loop added two more per report
			// (the *net.UDPAddr and its IP slice). A regression back to
			// per-datagram address minting trips this bound.
			if b.N >= 1000 && perReport > 6 {
				b.Fatalf("ingest allocations regressed: %.2f allocs/report", perReport)
			}
		})
	}
}

// send pushes n copies of msg with at most a window's worth
// unacknowledged by the monitor's received counter, resending through
// any kernel-dropped datagrams until all n are ingested.
func send(b *testing.B, conn *net.UDPConn, msg []byte, m *Monitor, n int) {
	b.Helper()
	start := m.Received()
	target := start + uint64(n)
	sent := 0
	lastRecv := start
	lastProgress := time.Now()
	for {
		r := m.Received()
		if r >= target {
			return
		}
		if r != lastRecv {
			lastRecv = r
			lastProgress = time.Now()
		}
		stalled := time.Since(lastProgress) > 10*time.Millisecond
		if sent < n && (sent-int(r-start) < 64 || stalled) {
			if _, err := conn.Write(msg); err != nil {
				b.Fatal(err)
			}
			sent++
			if stalled {
				lastProgress = time.Now()
			}
			continue
		}
		if stalled {
			// Everything sent but the counter stopped moving: some
			// datagrams were dropped on the loopback; refill.
			if _, err := conn.Write(msg); err != nil {
				b.Fatal(err)
			}
			lastProgress = time.Now()
			continue
		}
		runtime.Gosched()
	}
}
