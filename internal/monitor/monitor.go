// Package monitor implements the system status monitor of §3.2.2: it
// receives probe reports, upserts them into the shared status
// database, and expires records whose probe has gone silent for
// several intervals so that servers can join and leave the pool at
// any time.
//
// Reports normally arrive as UDP datagrams; a TCP listener accepts
// framed reports from probes running in the Chapter 6 TCP mode. The
// UDP ingest rides the batched datagram plane (internal/netbatch):
// Batch > 1 moves up to that many reports per recvmmsg, and
// Shards > 1 spreads probe flows across SO_REUSEPORT sockets. Both
// default off, preserving the historical one-syscall-per-report loop.
package monitor

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"smartsock/internal/netbatch"
	"smartsock/internal/obs"
	"smartsock/internal/status"
	"smartsock/internal/store"
)

// Config parameterises a system monitor.
type Config struct {
	// Addr is the listen address, host:port. Port 0 picks an ephemeral
	// port; see Monitor.Addr.
	Addr string
	// DB is the shared status database the monitor writes.
	DB *store.DB
	// Interval is the expected probe interval; records older than
	// MissedIntervals×Interval are expired. Defaults to 5 s.
	Interval time.Duration
	// MissedIntervals before a server is declared failed (§4.1 uses
	// 3). Defaults to 3.
	MissedIntervals int
	// EnableTCP additionally listens for framed TCP reports on the
	// same port number.
	EnableTCP bool
	// ExpireAll additionally ages out network and security records in
	// the expiry sweep. They decay slower than server records — their
	// sources report far less often — so the horizon is 4× the server
	// one. Off by default to preserve the historical behaviour where
	// only sysdb records expire.
	ExpireAll bool
	// Batch is the most report datagrams one socket syscall may move
	// on the ingest loop (recvmmsg on Linux; control replies flush via
	// sendmmsg). 0 and 1 both select the historical
	// one-syscall-per-datagram mode; values above netbatch.MaxBatch
	// are clamped. Wire behaviour is identical at every setting.
	Batch int
	// Shards is the number of SO_REUSEPORT sockets bound to Addr so
	// the kernel load-balances probe flows across ingest loops. 0 and
	// 1 bind a single socket. Off Linux the setting degrades to one
	// socket (counted by netbatch_fallback).
	Shards int
	// Logger receives decode errors; nil silences them.
	Logger *log.Logger
	// Obs, when set, registers the monitor's counters (monitor_reports,
	// monitor_reports_dropped, monitor_expired); nil detaches them.
	Obs *obs.Registry
}

// Monitor is a running system status monitor.
type Monitor struct {
	cfg      Config
	shards   []*net.UDPConn // ≥1 sockets; >1 share the port via SO_REUSEPORT
	tcp      net.Listener
	received *obs.Counter // monitor_reports: valid reports ingested
	dropped  *obs.Counter // monitor_reports_dropped: undecodable reports
	expired  *obs.Counter // monitor_expired: records aged out
	// reportMask, when non-zero, is pushed back to every reporting
	// probe as a control reply (Ch. 6 selected parameters): probes
	// then measure and ship only the named groups. Zero means "report
	// everything" and sends no control traffic.
	reportMask atomic.Uint32
}

// SetReportMask instructs future probe replies to narrow reporting to
// the given field mask (a probe.FieldMask value). Zero restores full
// reporting and silences the control channel.
func (m *Monitor) SetReportMask(mask uint8) { m.reportMask.Store(uint32(mask)) }

// ReportMask returns the currently configured probe field mask.
func (m *Monitor) ReportMask() uint8 { return uint8(m.reportMask.Load()) }

// New binds the monitor's sockets. Call Run to start serving.
func New(cfg Config) (*Monitor, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("monitor: nil database")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.MissedIntervals <= 0 {
		cfg.MissedIntervals = 3
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("monitor: %d shards", cfg.Shards)
	}
	udpAddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: resolve %q: %w", cfg.Addr, err)
	}
	// With TCP enabled on an ephemeral port, the kernel-picked UDP
	// port may already be taken on the TCP side by some other process;
	// retry with a fresh pick rather than failing on the collision.
	attempts := 1
	if cfg.EnableTCP && udpAddr.Port == 0 {
		attempts = 16
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		shards, err := netbatch.ListenShards(cfg.Addr, max(cfg.Shards, 1), cfg.Obs)
		if err != nil {
			return nil, fmt.Errorf("monitor: listen udp: %w", err)
		}
		m := &Monitor{
			cfg:      cfg,
			shards:   shards,
			received: cfg.Obs.Counter("monitor_reports"),
			dropped:  cfg.Obs.Counter("monitor_reports_dropped"),
			expired:  cfg.Obs.Counter("monitor_expired"),
		}
		if !cfg.EnableTCP {
			return m, nil
		}
		tcp, err := net.Listen("tcp", shards[0].LocalAddr().String())
		if err == nil {
			m.tcp = tcp
			return m, nil
		}
		// The UDP side is abandoned for a fresh port pick; the listen
		// error is the one worth keeping.
		for _, s := range shards {
			_ = s.Close()
		}
		lastErr = err
	}
	return nil, fmt.Errorf("monitor: listen tcp: %w", lastErr)
}

// Addr reports the bound UDP address (useful with port 0); with
// shards, every socket shares this port.
func (m *Monitor) Addr() string { return m.shards[0].LocalAddr().String() }

// Shards reports how many sockets actually ingest reports (the
// SO_REUSEPORT request may degrade to one off Linux).
func (m *Monitor) Shards() int { return len(m.shards) }

// Received reports how many valid reports have been ingested.
func (m *Monitor) Received() uint64 { return m.received.Value() }

// Expired reports how many server records have been expired.
func (m *Monitor) Expired() uint64 { return m.expired.Value() }

// Dropped reports how many undecodable reports were discarded.
func (m *Monitor) Dropped() uint64 { return m.dropped.Value() }

// Run serves until the context is cancelled. Each shard socket gets
// its own ingest loop; the kernel's SO_REUSEPORT flow hash spreads
// probes across them.
func (m *Monitor) Run(ctx context.Context) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		// The serve loops surface these closes as net.ErrClosed.
		for _, s := range m.shards {
			_ = s.Close()
		}
		if m.tcp != nil {
			_ = m.tcp.Close()
		}
	}()

	if m.tcp != nil {
		go m.serveTCP(ctx)
	}
	go m.expireLoop(ctx)

	if len(m.shards) == 1 {
		return m.serveUDP(ctx, m.shards[0])
	}
	errs := make(chan error, len(m.shards))
	var wg sync.WaitGroup
	for _, s := range m.shards {
		wg.Add(1)
		go func(conn *net.UDPConn) {
			defer wg.Done()
			errs <- m.serveUDP(ctx, conn)
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// serveUDP is one shard's ingest loop: pull a batch of report
// datagrams, upsert each, and — when a report mask is configured —
// flush the control replies with one batched write. The AddrPort
// plumbing means steady-state ingest costs zero per-datagram heap
// allocations (the seed loop's ReadFromUDP minted a *net.UDPAddr per
// report; BenchmarkMonitorIngest pins the new floor).
func (m *Monitor) serveUDP(ctx context.Context, conn *net.UDPConn) error {
	ep, err := netbatch.Wrap(conn, netbatch.Options{Batch: m.cfg.Batch, Obs: m.cfg.Obs})
	if err != nil {
		return fmt.Errorf("monitor: %w", err)
	}
	rx := netbatch.NewBatch(ep.Batch(), 64*1024)
	tx := netbatch.NewBatch(ep.Batch(), 8)
	for {
		n, err := ep.ReadBatch(rx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("monitor: read udp: %w", err)
		}
		mask := m.ReportMask()
		var ctl []byte
		if mask != 0 {
			ctl = status.EncodeControl(mask)
		}
		replies := tx[:0]
		for i := 0; i < n; i++ {
			if !m.ingest(rx[i].Buf) || mask == 0 {
				continue
			}
			// Selected-parameters control reply (Ch. 6): ride the
			// report's return path back to the probe.
			j := len(replies)
			replies = replies[:j+1]
			replies[j].Buf = append(replies[j].Buf[:0], ctl...)
			replies[j].Addr = rx[i].Addr
		}
		if len(replies) == 0 {
			continue
		}
		if sent, err := ep.WriteBatch(replies); err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return ctx.Err()
			}
			m.logf("monitor: control replies: %v (%d of %d sent)", err, sent, len(replies))
		}
	}
}

func (m *Monitor) ingest(msg []byte) bool {
	s, err := status.DecodeReport(msg)
	if err != nil {
		m.dropped.Add(1)
		m.logf("monitor: dropping report: %v", err)
		return false
	}
	m.cfg.DB.PutSys(*s)
	m.received.Add(1)
	return true
}

func (m *Monitor) serveTCP(ctx context.Context) {
	for {
		conn, err := m.tcp.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			// Cancellation closes the connection immediately instead
			// of letting the handler ride out its read deadline.
			stop := context.AfterFunc(ctx, func() { _ = c.Close() })
			defer stop()
			if err := c.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
				return
			}
			for {
				f, err := status.ReadFrame(c)
				if err != nil {
					return
				}
				if f.Type != status.TypeSystem {
					m.logf("monitor: unexpected frame type %v over tcp", f.Type)
					return
				}
				m.ingest(f.Data)
			}
		}(conn)
	}
}

// expireLoop removes stale records at half the expiry horizon so a
// dead server lingers at most MissedIntervals+0.5 intervals.
func (m *Monitor) expireLoop(ctx context.Context) {
	maxAge := time.Duration(m.cfg.MissedIntervals) * m.cfg.Interval
	ticker := time.NewTicker(maxAge / 2)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			gone := m.cfg.DB.ExpireSys(maxAge)
			if len(gone) > 0 {
				m.expired.Add(uint64(len(gone)))
				m.logf("monitor: expired silent servers %v", gone)
			}
			if m.cfg.ExpireAll {
				n := m.cfg.DB.ExpireNet(4 * maxAge)
				n += m.cfg.DB.ExpireSec(4 * maxAge)
				if n > 0 {
					m.expired.Add(uint64(n))
					m.logf("monitor: expired %d stale net/sec records", n)
				}
			}
		}
	}
}

func (m *Monitor) logf(format string, args ...any) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.Printf(format, args...)
	}
}
