// Package testbed reconstructs the thesis's evaluation environment
// (§5.1) in one process: the 11 Linux machines of Table 5.1 become
// virtual hosts with synthetic status sources, the network topology
// of Fig 5.1 becomes a set of simnet paths, and the full component
// pipeline — probes, system/network/security monitors, transmitter,
// receiver, wizard — runs over real UDP and TCP sockets on loopback,
// exactly as it would across machines.
//
// The physical testbed is unavailable; what this preserves is every
// code path of the system under study. Only the *status numbers* are
// synthesised, calibrated to the paper's hardware (bogomips and RAM
// from Table 5.1, relative matrix-program speeds read off Fig 5.2,
// where the P3-866 and P4-2.4 boxes beat the P4 1.6–1.8 ones).
package testbed

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"smartsock/internal/chaos"
	"smartsock/internal/core"
	"smartsock/internal/monitor"
	"smartsock/internal/netmon"
	"smartsock/internal/obs"
	"smartsock/internal/overload"
	"smartsock/internal/probe"
	"smartsock/internal/secmon"
	"smartsock/internal/simnet"
	"smartsock/internal/status"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
	"smartsock/internal/transport"
	"smartsock/internal/wizard"
)

// Machine describes one testbed host (Table 5.1) plus the calibration
// this reproduction adds.
type Machine struct {
	Name     string
	CPU      string
	Bogomips float64
	RAMMB    uint64
	OS       string
	// Speed is the host's relative throughput on the thesis's matrix
	// program, read off the Fig 5.2 benchmark: 1.0 for the P3-866
	// class. Fig 5.2's counter-intuitive finding — the P3-866 and
	// P4-2.4 beat the P4 1.6–1.8 series for this program — is encoded
	// here, not derived from clock speed.
	Speed float64
	// Group is the host's server group in the Fig 5.1 topology, the
	// unit network monitors measure between.
	Group string
}

// Machines returns the 11 testbed hosts of Table 5.1.
func Machines() []Machine {
	return []Machine{
		{Name: "sagit", CPU: "P3 866MHz", Bogomips: 1730.15, RAMMB: 128, OS: "Debian Linux 3.0r2", Speed: 1.00, Group: "campus"},
		{Name: "dalmatian", CPU: "P4 2.4GHz", Bogomips: 4771.02, RAMMB: 512, OS: "Redhat Linux 8.0", Speed: 1.30, Group: "lab"},
		{Name: "mimas", CPU: "P4 1.7GHz", Bogomips: 3394.76, RAMMB: 192, OS: "Redhat Linux 9.0", Speed: 0.58, Group: "group-1"},
		{Name: "telesto", CPU: "P4 1.6GHz", Bogomips: 3185.04, RAMMB: 128, OS: "Redhat Linux 7.3", Speed: 0.52, Group: "group-1"},
		{Name: "lhost", CPU: "P3 866MHz", Bogomips: 1730.15, RAMMB: 128, OS: "Redhat Linux 9.0", Speed: 1.00, Group: "group-1"},
		{Name: "helene", CPU: "P4 1.7GHz", Bogomips: 3394.76, RAMMB: 256, OS: "Redhat Linux 9.0", Speed: 0.58, Group: "lab"},
		{Name: "phoebe", CPU: "P4 1.7GHz", Bogomips: 3394.76, RAMMB: 256, OS: "Redhat Linux 9.0", Speed: 0.58, Group: "lab"},
		{Name: "calypso", CPU: "P4 1.7GHz", Bogomips: 3394.76, RAMMB: 256, OS: "Redhat Linux 9.0", Speed: 0.58, Group: "lab"},
		{Name: "dione", CPU: "P4 2.4GHz", Bogomips: 4771.02, RAMMB: 512, OS: "Redhat Linux 7.3", Speed: 1.30, Group: "group-2"},
		{Name: "titan-x", CPU: "P4 1.7GHz", Bogomips: 3394.76, RAMMB: 256, OS: "Redhat Linux 7.3", Speed: 0.58, Group: "group-2"},
		{Name: "pandora-x", CPU: "P4 1.8GHz", Bogomips: 3591.37, RAMMB: 256, OS: "Redhat Linux 9.0", Speed: 0.62, Group: "group-2"},
	}
}

// MachineByName finds a testbed machine.
func MachineByName(name string) (Machine, bool) {
	for _, m := range Machines() {
		if m.Name == name {
			return m, true
		}
	}
	return Machine{}, false
}

// Options configures a cluster boot.
type Options struct {
	// Machines to include; nil means all of Table 5.1.
	Machines []Machine
	// ProbeInterval for server probes; defaults to 50 ms (the thesis
	// uses 2–10 s; the simulated clock is just wall time, so shorter
	// intervals keep experiments quick without changing behaviour).
	ProbeInterval time.Duration
	// Distributed selects the passive-transmitter / pull-on-request
	// mode (§3.5.1); false is centralized push.
	Distributed bool
	// GroupPaths maps group names to probe-able paths from the client
	// monitor to each group; netmon measures them. Nil means no
	// network monitor (single-site deployments).
	GroupPaths map[string]*simnet.Path
	// SecurityLevels seeds the security monitor; nil means every host
	// gets level 3.
	SecurityLevels []status.SecLevel
	// LocalMonitor names the client's network monitor. Defaults to
	// "netmon-local".
	LocalMonitor string
	// MissedIntervals before the system monitor declares a silent
	// server failed; 0 keeps the monitor's default of 3. Chaos tests
	// use 2 so eviction happens within two status epochs.
	MissedIntervals int
	// ExpireAll additionally ages network and security records out of
	// the monitor-side database (see monitor.Config.ExpireAll).
	ExpireAll bool
	// MaxStatusAge makes the wizard's selector skip server records
	// older than this, evicting dead servers from candidate lists even
	// between monitor expiry sweeps. Zero disables the filter.
	MaxStatusAge time.Duration
	// ProbeFaults, when set, wraps every probe's report socket so
	// probe→monitor datagrams suffer the injector's loss/dup/delay
	// schedule. The monitor side is untouched — faults are send-side,
	// like a real lossy link.
	ProbeFaults *chaos.Injector
	// TxFaults, when set, wraps the transmitter→receiver TCP stream
	// (centralized push) or the receiver's pull connections
	// (distributed) in a chaos.StreamConn for stall/reset injection.
	TxFaults *chaos.Injector
	// WizardWorkers sets the wizard's concurrent handler count; 0
	// keeps the thesis-faithful sequential mode.
	WizardWorkers int
	// WizardCacheSize sets the wizard's compiled-requirement cache
	// bound (0: default, negative: disabled — the seed behaviour).
	WizardCacheSize int
	// TransportCompat runs transmitter and receiver in the
	// thesis-fidelity wire mode: a full three-frame snapshot every
	// epoch (or pull), no deltas, no snap marks.
	TransportCompat bool
	// Overload, when set, threads an admission-control gate through
	// the wizard's serve path and the receiver's bypass accounting —
	// the same wiring wizardd does from its -max-queue/-rate-limit
	// flags. Nil (or a disabled gate) keeps the unprotected path.
	Overload *overload.Gate
	// Obs, when set, registers every component's metrics (transport,
	// monitor, wizard, selector, both databases) in one registry, the
	// same wiring the daemons use under -debug. Nil detaches them.
	Obs *obs.Registry
}

// Cluster is a running in-process deployment.
type Cluster struct {
	// DB is the monitor-machine database (written by monitors).
	DB *store.DB
	// WizardDB is the wizard-machine replica (written by the
	// receiver).
	WizardDB *store.DB
	// Sources are the per-host synthetic status sources; experiments
	// mutate them to create load.
	Sources map[string]*sysinfo.Synthetic
	// Machines in this cluster, by name.
	Machines map[string]Machine
	// NetMon is the client-side network monitor (nil without
	// GroupPaths).
	NetMon *netmon.Monitor
	// Tx and Recv expose the transport pair, so experiments and chaos
	// tests can read push/delta/resync counters.
	Tx   *transport.Transmitter
	Recv *transport.Receiver

	wizard     *wizard.Wizard
	sysMonitor *monitor.Monitor
	ctx        context.Context
	cancel     context.CancelFunc
	probeEvery time.Duration
	probeDial  func(network, addr string) (net.Conn, error)

	hostMu     sync.Mutex
	hostCancel map[string]context.CancelFunc // nil entry = crashed host

	wg sync.WaitGroup // every component goroutine; Close waits on it
}

// spawn runs fn on a tracked goroutine so Close can wait for every
// component to actually exit, not just be told to.
func (c *Cluster) spawn(fn func()) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		fn()
	}()
}

// Boot assembles and starts the full pipeline.
func Boot(opts Options) (*Cluster, error) {
	machines := opts.Machines
	if machines == nil {
		machines = Machines()
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 50 * time.Millisecond
	}
	if opts.LocalMonitor == "" {
		opts.LocalMonitor = "netmon-local"
	}

	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{
		DB:         store.New(),
		WizardDB:   store.New(),
		Sources:    make(map[string]*sysinfo.Synthetic, len(machines)),
		Machines:   make(map[string]Machine, len(machines)),
		ctx:        ctx,
		cancel:     cancel,
		probeEvery: opts.ProbeInterval,
		hostCancel: make(map[string]context.CancelFunc, len(machines)),
	}
	if in := opts.ProbeFaults; in != nil {
		c.probeDial = func(network, addr string) (net.Conn, error) {
			conn, err := net.Dial(network, addr)
			if err != nil {
				return nil, err
			}
			return in.WrapConn(conn), nil
		}
	}
	fail := func(err error) (*Cluster, error) {
		cancel()
		return nil, err
	}

	// System monitor + probes (§3.2).
	c.DB.RegisterObs(opts.Obs, "monitor")
	c.WizardDB.RegisterObs(opts.Obs, "wizard")
	sysMon, err := monitor.New(monitor.Config{
		Addr:            "127.0.0.1:0",
		DB:              c.DB,
		Interval:        opts.ProbeInterval,
		MissedIntervals: opts.MissedIntervals,
		ExpireAll:       opts.ExpireAll,
		Obs:             opts.Obs,
	})
	if err != nil {
		return fail(err)
	}
	c.sysMonitor = sysMon
	c.spawn(func() { _ = sysMon.Run(ctx) })
	for _, m := range machines {
		src := sysinfo.NewSynthetic(sysinfo.Idle(m.Name, m.Bogomips, m.RAMMB))
		c.Sources[m.Name] = src
		c.Machines[m.Name] = m
		if err := c.startProbe(m.Name); err != nil {
			return fail(err)
		}
	}

	// Network monitor (§3.3.3).
	if len(opts.GroupPaths) > 0 {
		peers := make([]netmon.Peer, 0, len(opts.GroupPaths))
		for group, path := range opts.GroupPaths {
			peers = append(peers, netmon.Peer{Name: group, Prober: path, MTU: path.MTU()})
		}
		nm, err := netmon.New(netmon.Config{
			Name:     opts.LocalMonitor,
			Peers:    peers,
			DB:       c.DB,
			Interval: opts.ProbeInterval,
		})
		if err != nil {
			return fail(err)
		}
		c.NetMon = nm
		c.spawn(func() { _ = nm.Run(ctx) })
	}

	// Security monitor (§3.4).
	levels := opts.SecurityLevels
	if levels == nil {
		for _, m := range machines {
			levels = append(levels, status.SecLevel{Host: m.Name, Level: 3})
		}
	}
	sm, err := secmon.New(secmon.Config{
		Agent:    secmon.StaticAgent(levels),
		DB:       c.DB,
		Interval: opts.ProbeInterval,
	})
	if err != nil {
		return fail(err)
	}
	c.spawn(func() { _ = sm.Run(ctx) })

	// Transmitter → receiver (§3.5), then the wizard (§3.6).
	tx, err := transport.NewTransmitterObs(c.DB, nil, opts.Obs)
	if err != nil {
		return fail(err)
	}
	recv, err := transport.NewReceiverObs(c.WizardDB, "127.0.0.1:0", nil, opts.Obs)
	if err != nil {
		return fail(err)
	}
	tx.Compat = opts.TransportCompat
	recv.Compat = opts.TransportCompat
	recv.Overload = opts.Overload
	c.Tx, c.Recv = tx, recv
	if in := opts.TxFaults; in != nil {
		streamDial := func(network, addr string) (net.Conn, error) {
			conn, err := net.DialTimeout(network, addr, 2*time.Second)
			if err != nil {
				return nil, err
			}
			return in.WrapStream(conn), nil
		}
		tx.Dial = streamDial
		recv.Dial = streamDial
	}
	var update wizard.UpdateFunc
	if opts.Distributed {
		ln, err := listenLoopback()
		if err != nil {
			return fail(err)
		}
		c.spawn(func() { _ = tx.ServePassive(ctx, ln) })
		txAddr := ln.Addr().String()
		update = func(context.Context) error {
			return recv.PullFrom([]string{txAddr}, 2*time.Second)
		}
	} else {
		c.spawn(func() { _ = recv.Run(ctx) })
		c.spawn(func() { _ = tx.RunActive(ctx, recv.Addr(), opts.ProbeInterval) })
	}

	groupOf := func(host string) string {
		if m, ok := c.Machines[host]; ok {
			return m.Group
		}
		return ""
	}
	sel, err := core.New(c.WizardDB, core.Config{
		LocalMonitor: opts.LocalMonitor,
		GroupOf:      groupOf,
		MaxStatusAge: opts.MaxStatusAge,
		Obs:          opts.Obs,
	})
	if err != nil {
		return fail(err)
	}
	wz, err := wizard.New(wizard.Config{
		Addr:      "127.0.0.1:0",
		Selector:  sel,
		Update:    update,
		Workers:   opts.WizardWorkers,
		CacheSize: opts.WizardCacheSize,
		Overload:  opts.Overload,
		Obs:       opts.Obs,
	})
	if err != nil {
		return fail(err)
	}
	c.wizard = wz
	c.spawn(func() { _ = wz.Run(ctx) })
	return c, nil
}

// startProbe launches (or relaunches) the named host's probe under a
// per-host context, so a single virtual host can crash and restart
// without touching the rest of the cluster.
func (c *Cluster) startProbe(name string) error {
	src, ok := c.Sources[name]
	if !ok {
		return fmt.Errorf("testbed: unknown host %q", name)
	}
	p, err := probe.New(probe.Config{
		Source:   src,
		Monitor:  c.sysMonitor.Addr(),
		Interval: c.probeEvery,
		Dial:     c.probeDial,
	})
	if err != nil {
		return err
	}
	hostCtx, hostCancel := context.WithCancel(c.ctx)
	c.hostMu.Lock()
	c.hostCancel[name] = hostCancel
	c.hostMu.Unlock()
	c.spawn(func() { _ = p.Run(hostCtx) })
	return nil
}

// CrashHost stops the named host's probe, simulating a machine that
// died without deregistering: its last report ages in the databases
// until the monitor's expiry sweep (or the selector's MaxStatusAge
// filter) removes it. Crashing a crashed host is a no-op.
func (c *Cluster) CrashHost(name string) error {
	c.hostMu.Lock()
	cancelProbe, ok := c.hostCancel[name]
	c.hostCancel[name] = nil
	c.hostMu.Unlock()
	if !ok && cancelProbe == nil {
		if _, known := c.Sources[name]; !known {
			return fmt.Errorf("testbed: unknown host %q", name)
		}
	}
	if cancelProbe != nil {
		cancelProbe()
	}
	return nil
}

// RestartHost brings a crashed host back: a fresh probe re-registers
// it with the monitor on its first report. Restarting a live host is
// an error — crash it first.
func (c *Cluster) RestartHost(name string) error {
	c.hostMu.Lock()
	cancelProbe, ok := c.hostCancel[name]
	c.hostMu.Unlock()
	if ok && cancelProbe != nil {
		return fmt.Errorf("testbed: host %q is already running", name)
	}
	return c.startProbe(name)
}

// WizardAddr is the UDP address clients send requests to.
func (c *Cluster) WizardAddr() string { return c.wizard.Addr() }

// Wizard exposes the running request handler, so experiments can read
// its counters and cache statistics.
func (c *Cluster) Wizard() *wizard.Wizard { return c.wizard }

// MonitorAddr is the system monitor's report address.
func (c *Cluster) MonitorAddr() string { return c.sysMonitor.Addr() }

// Monitor exposes the system monitor, so chaos tests can reconcile
// its report/expiry counters against the obs registry.
func (c *Cluster) Monitor() *monitor.Monitor { return c.sysMonitor }

// Close stops every component and waits for their goroutines to
// exit. The wait matters to whoever runs next: a cluster's seven-odd
// probers tick on millisecond intervals, and letting them wind down
// asynchronously leaks that timer load into the next experiment's
// measurements (which is exactly how the timing-model comparisons
// went flaky under -shuffle).
func (c *Cluster) Close() {
	c.cancel()
	c.wg.Wait()
}

// WaitSettled blocks until the wizard-side database holds n server
// records (and, when a netmon runs, at least one probe round is
// done), or the context expires — the "pipeline warmed up" barrier
// experiments start from.
func (c *Cluster) WaitSettled(ctx context.Context, n int) error {
	for {
		if c.WizardDB.SysLen() >= n && (c.NetMon == nil || c.NetMon.Rounds() > 0) {
			if len(c.WizardDB.Net()) > 0 || c.NetMon == nil {
				if len(c.WizardDB.Sec()) > 0 {
					return nil
				}
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("testbed: pipeline not settled: %d/%d servers, err %w",
				c.WizardDB.SysLen(), n, ctx.Err())
		case <-time.After(c.probeEvery / 2):
		}
	}
}

// listenLoopback binds an ephemeral TCP port on 127.0.0.1.
func listenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
