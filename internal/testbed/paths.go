package testbed

import (
	"fmt"
	"time"

	"smartsock/internal/simnet"
)

// Path constructors for the network links the thesis measures: the
// campus LAN of §3.3.2 (sagit→suna) and the six RTT-measurement
// paths of Table 3.2. Capacities, delays and jitter are set to land
// each path's ping RTT and measured bandwidth in the regime the
// thesis reports.

// SpeedInit is the kernel→NIC first-frame initialization speed the
// thesis estimates on its testbed (§3.3.2): ≈25 Mbps.
const SpeedInit = 25e6

// CampusPath is sagit→suna: 100 Mbps Ethernet, a couple of switch
// hops, sub-millisecond RTT, configurable MTU (the thesis re-runs the
// sweep at 1500, 1000 and 500 bytes).
func CampusPath(mtu int, seed int64) (*simnet.Path, error) {
	return simnet.New(simnet.Config{
		Name:        fmt.Sprintf("sagit-suna-mtu%d", mtu),
		MTU:         mtu,
		SpeedInit:   SpeedInit,
		SysOverhead: 40 * time.Microsecond,
		Jitter:      0.015,
		Seed:        seed,
		Hops: []simnet.Hop{
			// The 100 Mbps access link is the bottleneck; the switch
			// fabric forwards at gigabit speed, so the slope-based
			// estimate lands near the paper's ≈92–95 Mbps.
			{Capacity: 100e6, PropDelay: 15 * time.Microsecond, ProcDelay: 3 * time.Microsecond},
			{Capacity: 1e9, PropDelay: 15 * time.Microsecond, ProcDelay: 3 * time.Microsecond},
		},
	})
}

// Table32Path returns one of the six RTT-measurement paths of Table
// 3.2 by index letter (a–f).
func Table32Path(index string, seed int64) (*simnet.Path, error) {
	switch index {
	case "a": // sagit → tokxp: NUS campus to APAN Japan, ping 126 ms
		return simnet.New(simnet.Config{
			Name: "sagit-tokxp", MTU: 1500, SpeedInit: SpeedInit, Jitter: 0.18, Seed: seed,
			Hops: []simnet.Hop{
				{Capacity: 100e6, PropDelay: 500 * time.Microsecond, ProcDelay: 5 * time.Microsecond},
				{Capacity: 155e6, PropDelay: 30 * time.Millisecond, ProcDelay: 10 * time.Microsecond, Utilization: 0.35},
				{Capacity: 622e6, PropDelay: 31 * time.Millisecond, ProcDelay: 10 * time.Microsecond, Utilization: 0.25},
				{Capacity: 100e6, PropDelay: 1 * time.Millisecond, ProcDelay: 5 * time.Microsecond},
			},
		})
	case "b": // sagit → cmui: NUS to CMU USA, ping 238 ms
		return simnet.New(simnet.Config{
			Name: "sagit-cmui", MTU: 1500, SpeedInit: SpeedInit, Jitter: 0.30, Seed: seed,
			Hops: []simnet.Hop{
				{Capacity: 100e6, PropDelay: 500 * time.Microsecond, ProcDelay: 5 * time.Microsecond},
				{Capacity: 155e6, PropDelay: 55 * time.Millisecond, ProcDelay: 10 * time.Microsecond, Utilization: 0.45},
				{Capacity: 2.5e9, PropDelay: 60 * time.Millisecond, ProcDelay: 10 * time.Microsecond, Utilization: 0.30},
				{Capacity: 100e6, PropDelay: 2 * time.Millisecond, ProcDelay: 5 * time.Microsecond},
			},
		})
	case "c": // sagit → ubin: local network segment, ping 0.262 ms
		return simnet.New(simnet.Config{
			Name: "sagit-ubin", MTU: 1500, SpeedInit: SpeedInit,
			SysOverhead: 30 * time.Microsecond, Jitter: 0.02, Seed: seed,
			Hops: []simnet.Hop{
				{Capacity: 100e6, PropDelay: 100 * time.Microsecond, ProcDelay: 3 * time.Microsecond},
			},
		})
	case "d": // tokxp → jpfreebsd: APAN to a Japanese ftp server, 0.552 ms
		return simnet.New(simnet.Config{
			Name: "tokxp-jpfreebsd", MTU: 1500, SpeedInit: SpeedInit,
			SysOverhead: 40 * time.Microsecond, Jitter: 0.04, Seed: seed,
			Hops: []simnet.Hop{
				{Capacity: 100e6, PropDelay: 60 * time.Microsecond, ProcDelay: 4 * time.Microsecond, Utilization: 0.1},
				{Capacity: 100e6, PropDelay: 60 * time.Microsecond, ProcDelay: 4 * time.Microsecond},
			},
		})
	case "e": // helene → atlas: same switch, 0.196 ms
		return simnet.New(simnet.Config{
			Name: "helene-atlas", MTU: 1500, SpeedInit: SpeedInit,
			SysOverhead: 25 * time.Microsecond, Jitter: 0.015, Seed: seed,
			Hops: []simnet.Hop{
				{Capacity: 100e6, PropDelay: 75 * time.Microsecond, ProcDelay: 2 * time.Microsecond},
			},
		})
	case "f": // sagit → localhost: loopback, 0.041 ms, no MTU effect
		return simnet.New(simnet.Config{
			Name: "sagit-localhost", MTU: 0, SpeedInit: 0,
			SysOverhead: 20 * time.Microsecond, Jitter: 0.01, Seed: seed,
			Hops: []simnet.Hop{
				{Capacity: 2e9, PropDelay: time.Microsecond, ProcDelay: time.Microsecond},
			},
		})
	}
	return nil, fmt.Errorf("testbed: unknown Table 3.2 path %q (want a-f)", index)
}

// GroupPath builds the client→group path used in the massd
// experiments: a 10 Mbps access link whose available bandwidth is
// pinned to availMbps by cross-traffic utilization — the simulated
// face of the rshaper setting on the file servers.
func GroupPath(group string, availMbps float64, seed int64) (*simnet.Path, error) {
	if availMbps <= 0 || availMbps > 10 {
		return nil, fmt.Errorf("testbed: massd group bandwidth %v outside the thesis's 0–10 Mbps range", availMbps)
	}
	return simnet.New(simnet.Config{
		Name: "client-" + group, MTU: 1500, SpeedInit: SpeedInit,
		SysOverhead: 40 * time.Microsecond, Jitter: 0.015, Seed: seed,
		Hops: []simnet.Hop{
			{Capacity: 100e6, PropDelay: 20 * time.Microsecond, ProcDelay: 3 * time.Microsecond},
			{Capacity: 10e6, PropDelay: 100 * time.Microsecond, ProcDelay: 5 * time.Microsecond,
				Utilization: 1 - availMbps/10},
		},
	})
}
