package testbed

import (
	"context"
	"testing"
	"time"

	"smartsock/internal/simnet"
	"smartsock/internal/status"
)

func TestMachinesMatchTable51(t *testing.T) {
	machines := Machines()
	if len(machines) != 11 {
		t.Fatalf("testbed has %d machines, Table 5.1 lists 11", len(machines))
	}
	byName := map[string]Machine{}
	for _, m := range machines {
		byName[m.Name] = m
	}
	// Spot-check hardware figures straight from Table 5.1.
	checks := []struct {
		name     string
		bogomips float64
		ram      uint64
	}{
		{"sagit", 1730.15, 128},
		{"dalmatian", 4771.02, 512},
		{"mimas", 3394.76, 192},
		{"pandora-x", 3591.37, 256},
	}
	for _, c := range checks {
		m, ok := byName[c.name]
		if !ok {
			t.Errorf("missing machine %q", c.name)
			continue
		}
		if m.Bogomips != c.bogomips || m.RAMMB != c.ram {
			t.Errorf("%s = %v bogomips / %d MB, want %v / %d",
				c.name, m.Bogomips, m.RAMMB, c.bogomips, c.ram)
		}
	}
}

func TestFig52SpeedOrdering(t *testing.T) {
	// Fig 5.2's finding: P3-866 and P4-2.4 beat the P4 1.6–1.8 class.
	byName := map[string]Machine{}
	for _, m := range Machines() {
		byName[m.Name] = m
	}
	fast := []string{"sagit", "lhost", "dalmatian", "dione"}
	slow := []string{"mimas", "telesto", "helene", "phoebe", "calypso", "titan-x", "pandora-x"}
	for _, f := range fast {
		for _, s := range slow {
			if byName[f].Speed <= byName[s].Speed {
				t.Errorf("%s (%.2f) should be faster than %s (%.2f)",
					f, byName[f].Speed, s, byName[s].Speed)
			}
		}
	}
}

func TestMachineByName(t *testing.T) {
	if _, ok := MachineByName("dione"); !ok {
		t.Error("dione not found")
	}
	if _, ok := MachineByName("nonesuch"); ok {
		t.Error("found a machine that does not exist")
	}
}

func TestBootCentralizedPipeline(t *testing.T) {
	cluster, err := Boot(Options{
		Machines: []Machine{
			{Name: "m1", Bogomips: 4771, RAMMB: 512, Speed: 1},
			{Name: "m2", Bogomips: 1730, RAMMB: 128, Speed: 1},
		},
		ProbeInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(ctx, 2); err != nil {
		t.Fatal(err)
	}
	rec, ok := cluster.WizardDB.GetSys("m1")
	if !ok {
		t.Fatal("m1 never reached the wizard database")
	}
	if rec.Status.Bogomips != 4771 {
		t.Errorf("m1 bogomips = %v", rec.Status.Bogomips)
	}
	// Security defaults to level 3 for everyone.
	sec, ok := cluster.WizardDB.GetSec("m2")
	if !ok || sec.Level.Level != 3 {
		t.Errorf("m2 security = %+v (%v)", sec, ok)
	}
}

func TestBootWithGroupPaths(t *testing.T) {
	p1, err := GroupPath("group-1", 6.72, 1)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := Boot(Options{
		Machines: []Machine{
			{Name: "srv", Bogomips: 3000, RAMMB: 256, Speed: 1, Group: "group-1"},
		},
		ProbeInterval: 30 * time.Millisecond,
		GroupPaths:    map[string]*simnet.Path{"group-1": p1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(ctx, 1); err != nil {
		t.Fatal(err)
	}
	rec, ok := cluster.WizardDB.GetNet("netmon-local", "group-1")
	if !ok {
		t.Fatal("no network record for group-1")
	}
	got := rec.Metric.Bandwidth / 1e6
	if got < 5 || got > 8.5 {
		t.Errorf("measured group-1 bandwidth %.2f Mbps, configured 6.72", got)
	}
}

func TestBootCustomSecurityLevels(t *testing.T) {
	cluster, err := Boot(Options{
		Machines: []Machine{
			{Name: "trusted", Bogomips: 1000, RAMMB: 128, Speed: 1},
		},
		ProbeInterval:  30 * time.Millisecond,
		SecurityLevels: []status.SecLevel{{Host: "trusted", Level: 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(ctx, 1); err != nil {
		t.Fatal(err)
	}
	sec, ok := cluster.WizardDB.GetSec("trusted")
	if !ok || sec.Level.Level != 9 {
		t.Errorf("security level = %+v (%v), want 9", sec, ok)
	}
}

func TestGroupPathValidation(t *testing.T) {
	if _, err := GroupPath("g", 0, 1); err == nil {
		t.Error("accepted 0 Mbps")
	}
	if _, err := GroupPath("g", 11, 1); err == nil {
		t.Error("accepted > 10 Mbps (outside the thesis's rshaper range)")
	}
	p, err := GroupPath("g", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bw := p.AvailableBandwidth() / 1e6; bw < 4.9 || bw > 5.1 {
		t.Errorf("available bandwidth %.2f Mbps, want 5", bw)
	}
}

func TestTable32PathIndexes(t *testing.T) {
	for _, idx := range []string{"a", "b", "c", "d", "e", "f"} {
		p, err := Table32Path(idx, 1)
		if err != nil {
			t.Errorf("path %s: %v", idx, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("path %s has no name", idx)
		}
	}
	if _, err := Table32Path("z", 1); err == nil {
		t.Error("accepted unknown path index")
	}
}

func TestTable32PingRegimes(t *testing.T) {
	// Ping column of Table 3.2, within a factor of ~1.5.
	want := map[string]time.Duration{
		"a": 126 * time.Millisecond,
		"b": 238 * time.Millisecond,
		"c": 262 * time.Microsecond,
		"e": 196 * time.Microsecond,
		"f": 41 * time.Microsecond,
	}
	for idx, ping := range want {
		p, err := Table32Path(idx, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := p.BaseRTT()
		if got < ping/2 || got > ping*2 {
			t.Errorf("path %s BaseRTT = %v, Table 3.2 pings %v", idx, got, ping)
		}
	}
}
