// Socket wrappers: the injector applied to real connections. Conn
// wraps a datagram-oriented net.Conn (every Write is one packet),
// PacketConn wraps a net.PacketConn the same way, and StreamConn
// wraps a TCP connection with stall and reset injection. Faults act
// on the send side only: a dropped datagram reports success to the
// caller, exactly as a lossy network looks to a UDP sender.

package chaos

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Conn is a datagram net.Conn with send-side fault injection. Reads
// and deadlines pass through untouched.
type Conn struct {
	net.Conn
	in *Injector

	mu   sync.Mutex
	held []byte // one reordered datagram awaiting the next send
}

// WrapConn wraps a datagram connection with this injector's faults.
func (in *Injector) WrapConn(c net.Conn) *Conn {
	return &Conn{Conn: c, in: in}
}

// Write applies the injector's fate to one datagram. Dropped packets
// report success (UDP gives the sender no loss signal); duplicated
// packets are sent twice; reordered packets are held until the next
// Write on this connection.
func (c *Conn) Write(p []byte) (int, error) {
	f := c.in.Next()
	if f.Drop {
		return len(p), nil
	}
	if f.Delay > 0 {
		c.in.sleep(f.Delay)
	}
	// Assemble the send list under the lock, write outside it: a slow
	// socket must not wedge concurrent writers on the reorder buffer.
	var sends [][]byte
	c.mu.Lock()
	if f.Reorder && c.held == nil {
		c.held = append([]byte(nil), p...)
		c.mu.Unlock()
		return len(p), nil
	}
	sends = append(sends, p)
	if f.Dup {
		sends = append(sends, p)
	}
	if c.held != nil {
		sends = append(sends, c.held)
		c.held = nil
	}
	c.mu.Unlock()
	for _, b := range sends {
		if _, err := c.Conn.Write(b); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// PacketConn is a net.PacketConn with the same send-side faults as
// Conn, for components that use the unconnected UDP API.
type PacketConn struct {
	net.PacketConn
	in *Injector

	mu       sync.Mutex
	held     []byte
	heldAddr net.Addr
}

// WrapPacketConn wraps a packet connection with this injector's
// faults.
func (in *Injector) WrapPacketConn(pc net.PacketConn) *PacketConn {
	return &PacketConn{PacketConn: pc, in: in}
}

// WriteTo applies the injector's fate to one outbound datagram.
func (pc *PacketConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	f := pc.in.Next()
	if f.Drop {
		return len(p), nil
	}
	if f.Delay > 0 {
		pc.in.sleep(f.Delay)
	}
	type send struct {
		data []byte
		addr net.Addr
	}
	var sends []send
	pc.mu.Lock()
	if f.Reorder && pc.held == nil {
		pc.held = append([]byte(nil), p...)
		pc.heldAddr = addr
		pc.mu.Unlock()
		return len(p), nil
	}
	sends = append(sends, send{p, addr})
	if f.Dup {
		sends = append(sends, send{p, addr})
	}
	if pc.held != nil {
		sends = append(sends, send{pc.held, pc.heldAddr})
		pc.held, pc.heldAddr = nil, nil
	}
	pc.mu.Unlock()
	for _, s := range sends {
		if _, err := pc.PacketConn.WriteTo(s.data, s.addr); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// StreamConn wraps a TCP connection with stall and reset injection —
// the transmitter→receiver link faults. Drop/dup/reorder make no
// sense on a byte stream; StreamConn instead offers the two failures
// a TCP peer actually observes: writes that hang (a stalled link or a
// full remote window) and connections that die mid-stream.
type StreamConn struct {
	net.Conn
	in *Injector

	stallNanos atomic.Int64 // pending stall applied to the next Write
	reset      atomic.Bool
}

// WrapStream wraps a stream connection for stall/reset injection and
// registers it so ResetAllStreams can find it later.
func (in *Injector) WrapStream(c net.Conn) *StreamConn {
	s := &StreamConn{Conn: c, in: in}
	in.streamMu.Lock()
	in.streams = append(in.streams, s)
	in.streamMu.Unlock()
	return s
}

// ResetAllStreams resets every stream this injector has wrapped and
// returns how many it tore down. Chaos tests use it to sever live
// transmitter links without holding a reference to each connection.
// Already-reset streams are skipped.
func (in *Injector) ResetAllStreams() int {
	in.streamMu.Lock()
	streams := make([]*StreamConn, len(in.streams))
	copy(streams, in.streams)
	in.streamMu.Unlock()
	n := 0
	for _, s := range streams {
		if s.WasReset() {
			continue
		}
		// The socket is being destroyed on purpose; its close error is
		// the expected outcome, not a failure.
		_ = s.Reset()
		n++
	}
	return n
}

// Stall pauses the next Write for d before it touches the socket,
// modelling a link that froze mid-snapshot.
func (s *StreamConn) Stall(d time.Duration) { s.stallNanos.Store(int64(d)) }

// Reset tears the connection down: the underlying socket closes, so
// the next operation fails and the owner must redial. Mirrors an RST
// or a crashed peer host.
func (s *StreamConn) Reset() error {
	s.reset.Store(true)
	return s.Conn.Close()
}

// WasReset reports whether Reset was injected.
func (s *StreamConn) WasReset() bool { return s.reset.Load() }

// Write applies any pending stall, then writes through. A reset
// connection fails immediately at the socket layer.
func (s *StreamConn) Write(p []byte) (int, error) {
	if d := s.stallNanos.Swap(0); d > 0 {
		s.in.sleep(time.Duration(d))
	}
	return s.Conn.Write(p)
}
