// Package chaos is a deterministic, seedable fault-injection layer
// for the selection pipeline. The thesis evaluates the smart socket
// only on a healthy LAN plus two stable WAN paths; this package
// supplies the unhealthy conditions a production selection layer must
// absorb — lossy UDP report paths, duplicated and reordered
// datagrams, stalled or reset transmitter links, partitioned hosts —
// so tests can drive the probe→monitor→transmitter→wizard→client
// chain through failure and recovery on real sockets.
//
// Determinism contract: every fault decision is drawn from one
// math/rand stream seeded by Config.Seed, so a fixed seed yields a
// fixed *sequence* of per-packet fates. When several goroutines share
// an injector the interleaving of draws follows goroutine scheduling,
// so cross-goroutine runs are statistically, not bitwise, identical;
// tests that need exact replay give each traffic source its own
// injector. CI pins CHAOS_SEED (see SeedFromEnv) so a failure
// reproduces locally with the same fault schedule.
package chaos

import (
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the fault rates of an injector. All rates are
// probabilities in [0,1] applied independently per packet.
type Config struct {
	// Seed makes the fault schedule reproducible.
	Seed int64
	// DropRate is the probability a packet is silently discarded.
	DropRate float64
	// DupRate is the probability a packet is delivered twice.
	DupRate float64
	// DelayRate is the probability a packet is held for a uniform
	// random time in (0, MaxDelay] before delivery.
	DelayRate float64
	// MaxDelay bounds injected per-packet delay. Defaults to 20 ms
	// when a DelayRate is set.
	MaxDelay time.Duration
	// ReorderRate is the probability a packet is held back and
	// delivered after the next packet on the same connection.
	ReorderRate float64
	// Timeout is the RTT a lost probe measures (the prober's timeout):
	// the value simnet paths report for dropped probes. Defaults to 2 s.
	Timeout time.Duration
}

// Fate is the decided treatment of one packet.
type Fate struct {
	Drop    bool
	Dup     bool
	Delay   time.Duration
	Reorder bool
}

// Injector draws per-packet fates from a seeded stream and keeps
// counters so tests can assert the faults actually happened.
type Injector struct {
	mu  sync.Mutex
	rng *rand.Rand
	cfg Config

	partitioned atomic.Bool

	passed    atomic.Uint64
	dropped   atomic.Uint64
	duped     atomic.Uint64
	delayed   atomic.Uint64
	reordered atomic.Uint64

	// sleep applies injected delays and stalls; swapped in tests to
	// run fault schedules in virtual time.
	sleep func(time.Duration)

	streamMu sync.Mutex
	streams  []*StreamConn // every stream wrapped, for ResetAllStreams
}

// New builds an injector from the config.
func New(cfg Config) *Injector {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 20 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	return &Injector{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		sleep: time.Sleep,
	}
}

// SeedFromEnv reads the CHAOS_SEED environment variable, falling back
// to def when unset or malformed. CI exports a fixed value so chaos
// runs are reproducible; local runs may override it to explore other
// schedules.
func SeedFromEnv(def int64) int64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// Partition makes the injector drop everything until lifted —
// a crashed link or an unplugged host, as opposed to random loss.
func (in *Injector) Partition(on bool) { in.partitioned.Store(on) }

// Partitioned reports whether the injector is in partition mode.
func (in *Injector) Partitioned() bool { return in.partitioned.Load() }

// Next draws the fate of one packet. A partitioned injector drops
// unconditionally without consuming randomness, so lifting a
// partition resumes the schedule where it stopped.
func (in *Injector) Next() Fate {
	if in.partitioned.Load() {
		in.dropped.Add(1)
		return Fate{Drop: true}
	}
	in.mu.Lock()
	f := Fate{}
	if in.cfg.DropRate > 0 && in.rng.Float64() < in.cfg.DropRate {
		f.Drop = true
	}
	if in.cfg.DupRate > 0 && in.rng.Float64() < in.cfg.DupRate {
		f.Dup = true
	}
	if in.cfg.DelayRate > 0 && in.rng.Float64() < in.cfg.DelayRate {
		f.Delay = time.Duration(in.rng.Float64() * float64(in.cfg.MaxDelay))
		if f.Delay <= 0 {
			f.Delay = time.Millisecond
		}
	}
	if in.cfg.ReorderRate > 0 && in.rng.Float64() < in.cfg.ReorderRate {
		f.Reorder = true
	}
	in.mu.Unlock()
	in.count(f)
	return f
}

func (in *Injector) count(f Fate) {
	switch {
	case f.Drop:
		in.dropped.Add(1)
	default:
		in.passed.Add(1)
		if f.Dup {
			in.duped.Add(1)
		}
		if f.Delay > 0 {
			in.delayed.Add(1)
		}
		if f.Reorder {
			in.reordered.Add(1)
		}
	}
}

// Packet implements the simnet fault hook: the fate of one simulated
// probe packet. A dropped probe is reported as lost (the caller
// substitutes its timeout); a delayed one carries the extra queueing.
func (in *Injector) Packet() (drop bool, extra time.Duration) {
	f := in.Next()
	return f.Drop, f.Delay
}

// Timeout is the RTT a lost probe measures before giving up.
func (in *Injector) Timeout() time.Duration { return in.cfg.Timeout }

// Passed reports packets delivered (including duplicates' originals).
func (in *Injector) Passed() uint64 { return in.passed.Load() }

// Dropped reports packets discarded (random loss plus partition).
func (in *Injector) Dropped() uint64 { return in.dropped.Load() }

// Duplicated reports packets delivered twice.
func (in *Injector) Duplicated() uint64 { return in.duped.Load() }

// Delayed reports packets held before delivery.
func (in *Injector) Delayed() uint64 { return in.delayed.Load() }

// Reordered reports packets delivered behind a later one.
func (in *Injector) Reordered() uint64 { return in.reordered.Load() }
