package chaos

import (
	"net"
	"testing"
	"time"
)

func TestChaosSameSeedSameSchedule(t *testing.T) {
	cfg := Config{Seed: 7, DropRate: 0.3, DupRate: 0.1, DelayRate: 0.2, ReorderRate: 0.1}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 500; i++ {
		fa, fb := a.Next(), b.Next()
		if fa != fb {
			t.Fatalf("packet %d: schedules diverged: %+v vs %+v", i, fa, fb)
		}
	}
}

func TestChaosDifferentSeedDifferentSchedule(t *testing.T) {
	a := New(Config{Seed: 1, DropRate: 0.5})
	b := New(Config{Seed: 2, DropRate: 0.5})
	same := true
	for i := 0; i < 64; i++ {
		if a.Next() != b.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 64-packet schedules")
	}
}

func TestChaosDropRateIsRoughlyHonoured(t *testing.T) {
	in := New(Config{Seed: 42, DropRate: 0.2})
	const n = 5000
	for i := 0; i < n; i++ {
		in.Next()
	}
	got := float64(in.Dropped()) / n
	if got < 0.15 || got > 0.25 {
		t.Fatalf("drop rate 0.2 yielded %.3f over %d packets", got, n)
	}
	if in.Passed()+in.Dropped() != n {
		t.Fatalf("counter mismatch: %d passed + %d dropped != %d",
			in.Passed(), in.Dropped(), n)
	}
}

func TestChaosPartitionDropsEverythingAndLifts(t *testing.T) {
	in := New(Config{Seed: 1})
	in.Partition(true)
	for i := 0; i < 10; i++ {
		if f := in.Next(); !f.Drop {
			t.Fatal("partitioned injector delivered a packet")
		}
	}
	in.Partition(false)
	if f := in.Next(); f.Drop {
		t.Fatal("zero-rate injector dropped after the partition lifted")
	}
}

// pipeConns builds a connected UDP pair on loopback.
func pipeConns(t *testing.T) (client net.Conn, server *net.UDPConn) {
	t.Helper()
	srv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := net.Dial("udp", srv.LocalAddr().String())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

func recvAll(t *testing.T, srv *net.UDPConn, wait time.Duration) []string {
	t.Helper()
	var out []string
	buf := make([]byte, 2048)
	if err := srv.SetReadDeadline(time.Now().Add(wait)); err != nil {
		t.Fatal(err)
	}
	for {
		n, _, err := srv.ReadFromUDP(buf)
		if err != nil {
			return out
		}
		out = append(out, string(buf[:n]))
	}
}

func TestChaosConnDropsDatagramsSilently(t *testing.T) {
	cli, srv := pipeConns(t)
	in := New(Config{Seed: 3, DropRate: 1})
	cc := in.WrapConn(cli)
	for i := 0; i < 5; i++ {
		if n, err := cc.Write([]byte("report")); err != nil || n != 6 {
			t.Fatalf("dropped write returned (%d, %v), want silent success", n, err)
		}
	}
	if got := recvAll(t, srv, 100*time.Millisecond); len(got) != 0 {
		t.Fatalf("full-loss conn delivered %d datagrams", len(got))
	}
	if in.Dropped() != 5 {
		t.Fatalf("Dropped() = %d, want 5", in.Dropped())
	}
}

func TestChaosConnDuplicates(t *testing.T) {
	cli, srv := pipeConns(t)
	in := New(Config{Seed: 3, DupRate: 1})
	cc := in.WrapConn(cli)
	if _, err := cc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := recvAll(t, srv, 200*time.Millisecond); len(got) != 2 {
		t.Fatalf("dup conn delivered %d datagrams, want 2", len(got))
	}
}

func TestChaosConnReordersAcrossWrites(t *testing.T) {
	cli, srv := pipeConns(t)
	// Reorder the first packet only: hold "a", deliver it after "b".
	in := New(Config{Seed: 3, ReorderRate: 1})
	cc := in.WrapConn(cli)
	if _, err := cc.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if got := recvAll(t, srv, 100*time.Millisecond); len(got) != 0 {
		t.Fatalf("held packet was delivered early: %v", got)
	}
	if _, err := cc.Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	got := recvAll(t, srv, 200*time.Millisecond)
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("reorder delivered %v, want [b a]", got)
	}
}

func TestChaosPacketConnDrop(t *testing.T) {
	cli, srv := pipeConns(t)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	_ = cli // srv address reused below
	in := New(Config{Seed: 9, DropRate: 1})
	wrapped := in.WrapPacketConn(pc)
	dst := srv.LocalAddr()
	if n, err := wrapped.WriteTo([]byte("gone"), dst); err != nil || n != 4 {
		t.Fatalf("dropped WriteTo returned (%d, %v)", n, err)
	}
	if got := recvAll(t, srv, 100*time.Millisecond); len(got) != 0 {
		t.Fatalf("full-loss packet conn delivered %v", got)
	}
}

func TestChaosStreamConnReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 256)
		_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	in := New(Config{Seed: 1})
	sc := in.WrapStream(raw)
	if _, err := sc.Write([]byte("ok")); err != nil {
		t.Fatalf("pre-reset write failed: %v", err)
	}
	if err := sc.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if !sc.WasReset() {
		t.Fatal("WasReset() false after Reset")
	}
	if _, err := sc.Write([]byte("dead")); err == nil {
		t.Fatal("write after reset succeeded")
	}
}

func TestChaosStreamConnStall(t *testing.T) {
	var slept time.Duration
	in := New(Config{Seed: 1})
	in.sleep = func(d time.Duration) { slept += d }
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 64)
		_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	sc := in.WrapStream(raw)
	sc.Stall(300 * time.Millisecond)
	if _, err := sc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if slept != 300*time.Millisecond {
		t.Fatalf("stall slept %v, want 300ms", slept)
	}
	// The stall is one-shot.
	if _, err := sc.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if slept != 300*time.Millisecond {
		t.Fatalf("second write slept again (total %v)", slept)
	}
}

func TestChaosSeedFromEnv(t *testing.T) {
	t.Setenv("CHAOS_SEED", "123")
	if got := SeedFromEnv(9); got != 123 {
		t.Fatalf("SeedFromEnv = %d, want 123", got)
	}
	t.Setenv("CHAOS_SEED", "not-a-number")
	if got := SeedFromEnv(9); got != 9 {
		t.Fatalf("SeedFromEnv fallback = %d, want 9", got)
	}
}
