// Package shaper is the reproduction's stand-in for rshaper, the
// kernel module the thesis uses to pin a server's link bandwidth to a
// chosen value during the massive-download experiments (§5.3.2,
// Fig 5.3). It implements a token-bucket rate limiter that wraps a
// net.Conn (or any io.Writer/io.Reader), capping sustained throughput
// at a configured rate while allowing small bursts, which is exactly
// the observable behaviour the experiments rely on: "the maximum
// throughput that can be achieved by massd can be precisely
// controlled by rshaper".
package shaper

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Bucket is a thread-safe token bucket. Tokens are bytes; the bucket
// refills continuously at Rate bytes/second up to Burst bytes.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // max accumulated bytes
	tokens float64
	last   time.Time
	clock  func() time.Time
	sleep  func(time.Duration)
}

// NewBucket creates a bucket with the given sustained rate in
// bytes/second. burst 0 picks rate/10 bounded to [4 KiB, 256 KiB].
func NewBucket(rate float64, burst float64) (*Bucket, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("shaper: rate %v must be positive", rate)
	}
	if burst <= 0 {
		burst = rate / 10
		if burst < 4096 {
			burst = 4096
		}
		if burst > 256*1024 {
			burst = 256 * 1024
		}
	}
	b := &Bucket{
		rate:  rate,
		burst: burst,
		clock: time.Now,
		sleep: time.Sleep,
	}
	b.tokens = burst
	b.last = b.clock()
	return b, nil
}

// Rate returns the configured rate in bytes per second.
func (b *Bucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// SetRate changes the sustained rate at runtime (rshaper could be
// reconfigured between experiment runs).
func (b *Bucket) SetRate(rate float64) error {
	if rate <= 0 {
		return fmt.Errorf("shaper: rate %v must be positive", rate)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	b.rate = rate
	return nil
}

func (b *Bucket) refillLocked() {
	now := b.clock()
	dt := now.Sub(b.last).Seconds()
	if dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// Take blocks until n tokens are available and consumes them. n may
// exceed the burst size; the caller is simply paced across multiple
// refills. A nil context is allowed.
func (b *Bucket) Take(ctx context.Context, n int) error {
	remaining := float64(n)
	for remaining > 0 {
		b.mu.Lock()
		b.refillLocked()
		grant := b.tokens
		if grant > remaining {
			grant = remaining
		}
		b.tokens -= grant
		remaining -= grant
		var wait time.Duration
		if remaining > 0 {
			// Sleep until roughly a burst's worth (or what's left)
			// accumulates.
			need := remaining
			if need > b.burst {
				need = b.burst
			}
			wait = time.Duration(need / b.rate * float64(time.Second))
		}
		b.mu.Unlock()
		if wait <= 0 {
			continue
		}
		if ctx != nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		} else {
			b.sleep(wait)
		}
	}
	return nil
}

// Conn wraps a net.Conn, pacing writes (and optionally reads) through
// token buckets. Shaping writes on the server side reproduces
// rshaper limiting a file server's uplink.
type Conn struct {
	net.Conn
	wb *Bucket // write bucket, may be nil
	rb *Bucket // read bucket, may be nil
}

// NewConn wraps conn. Either bucket may be nil to leave that
// direction unshaped. Sharing one bucket across several conns models
// a shared physical link.
func NewConn(conn net.Conn, write, read *Bucket) *Conn {
	return &Conn{Conn: conn, wb: write, rb: read}
}

// Write paces the payload through the write bucket in burst-sized
// chunks, so one huge write cannot blow through the limit.
func (c *Conn) Write(p []byte) (int, error) {
	if c.wb == nil {
		return c.Conn.Write(p)
	}
	written := 0
	for written < len(p) {
		chunk := len(p) - written
		if max := int(c.wb.burst); chunk > max && max > 0 {
			chunk = max
		}
		if err := c.wb.Take(nil, chunk); err != nil {
			return written, err
		}
		n, err := c.Conn.Write(p[written : written+chunk])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Read paces received bytes through the read bucket. Deadlines are
// the caller's to set; the wrapper forwards them to the embedded conn.
func (c *Conn) Read(p []byte) (int, error) {
	if c.rb == nil {
		//lint:ignore deadline transparent pacing wrapper: the caller owns deadlines
		return c.Conn.Read(p)
	}
	//lint:ignore deadline transparent pacing wrapper: the caller owns deadlines
	n, err := c.Conn.Read(p)
	if n > 0 {
		if terr := c.rb.Take(nil, n); terr != nil && err == nil {
			err = terr
		}
	}
	return n, err
}

// Listener wraps a net.Listener so every accepted connection shares
// one write-side bucket — the whole server's uplink is capped, like a
// host behind rshaper.
type Listener struct {
	net.Listener
	bucket *Bucket
}

// NewListener caps the aggregate write rate of all connections
// accepted from ln at rate bytes/second.
func NewListener(ln net.Listener, rate float64) (*Listener, error) {
	b, err := NewBucket(rate, 0)
	if err != nil {
		return nil, err
	}
	return &Listener{Listener: ln, bucket: b}, nil
}

// Accept wraps the next connection with the shared bucket.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(conn, l.bucket, nil), nil
}

// SetRate reconfigures the shared uplink rate.
func (l *Listener) SetRate(rate float64) error { return l.bucket.SetRate(rate) }

// Rate reports the shared uplink rate in bytes/second.
func (l *Listener) Rate() float64 { return l.bucket.Rate() }

// CopyShaped copies src to dst through a fresh bucket at rate
// bytes/second — a convenience for shaping one transfer without
// wrapping connections.
func CopyShaped(ctx context.Context, dst io.Writer, src io.Reader, rate float64) (int64, error) {
	b, err := NewBucket(rate, 0)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, int(b.burst))
	var total int64
	for {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		n, rerr := src.Read(buf)
		if n > 0 {
			if err := b.Take(ctx, n); err != nil {
				return total, err
			}
			wn, werr := dst.Write(buf[:n])
			total += int64(wn)
			if werr != nil {
				return total, werr
			}
		}
		if rerr == io.EOF {
			return total, nil
		}
		if rerr != nil {
			return total, rerr
		}
	}
}
