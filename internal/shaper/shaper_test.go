package shaper

import (
	"bytes"
	"context"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewBucketValidation(t *testing.T) {
	if _, err := NewBucket(0, 0); err == nil {
		t.Error("accepted zero rate")
	}
	if _, err := NewBucket(-5, 0); err == nil {
		t.Error("accepted negative rate")
	}
	b, err := NewBucket(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetRate(-1); err == nil {
		t.Error("SetRate accepted negative rate")
	}
	if b.Rate() != 1000 {
		t.Errorf("Rate = %v", b.Rate())
	}
}

func TestBucketPacesSustainedRate(t *testing.T) {
	// 1 MB/s, take 300 KB beyond the burst: should need ≈(300KB−burst)/rate.
	rate := 1e6
	b, err := NewBucket(rate, 32*1024)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	total := 300 * 1024
	if err := b.Take(context.Background(), total); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	want := (float64(total) - 32*1024) / rate
	if elapsed < want*0.7 {
		t.Errorf("Take finished in %.3fs, want ≥ %.3fs (rate not enforced)", elapsed, want*0.7)
	}
	if elapsed > want*3+0.2 {
		t.Errorf("Take took %.3fs, want ≈ %.3fs (over-throttled)", elapsed, want)
	}
}

func TestBucketBurstIsImmediate(t *testing.T) {
	b, err := NewBucket(100, 1024) // very slow rate, 1 KB burst
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := b.Take(context.Background(), 1024); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("burst-sized take should not block")
	}
}

func TestTakeHonoursContext(t *testing.T) {
	b, err := NewBucket(10, 16) // 10 B/s: 1 KB would take ~100 s
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := b.Take(ctx, 1024); err == nil {
		t.Error("Take ignored context cancellation")
	}
}

func TestConnWriteShaping(t *testing.T) {
	// rshaper check (Fig 5.3): a shaped server's throughput tracks the
	// configured rate.
	client, server := net.Pipe()
	defer client.Close()
	rate := 256 * 1024.0 // 256 KB/s
	b, err := NewBucket(rate, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	shaped := NewConn(server, b, nil)

	const payload = 128 * 1024
	go func() {
		defer shaped.Close()
		shaped.Write(make([]byte, payload))
	}()
	start := time.Now()
	n, err := io.Copy(io.Discard, client)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	if n != payload {
		t.Fatalf("received %d of %d bytes", n, payload)
	}
	got := float64(n) / elapsed
	if got > rate*1.6 {
		t.Errorf("throughput %.0f B/s exceeds configured %.0f B/s", got, rate)
	}
	if got < rate*0.4 {
		t.Errorf("throughput %.0f B/s far below configured %.0f B/s", got, rate)
	}
}

func TestConnReadShaping(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	b, err := NewBucket(64*1024, 8*1024)
	if err != nil {
		t.Fatal(err)
	}
	shaped := NewConn(client, nil, b)
	const payload = 32 * 1024
	go func() {
		server.Write(make([]byte, payload))
		server.Close()
	}()
	start := time.Now()
	n, _ := io.Copy(io.Discard, shaped)
	if n != payload {
		t.Fatalf("read %d bytes", n)
	}
	wantMin := (float64(payload) - 8*1024) / (64 * 1024) * 0.5
	if time.Since(start).Seconds() < wantMin {
		t.Error("read side not paced")
	}
}

func TestListenerSharesBucketAcrossConns(t *testing.T) {
	// A server group behind one rshaper shares the uplink: two
	// parallel clients together must not exceed the rate.
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rate := 512 * 1024.0
	ln, err := NewListener(raw, rate)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const perConn = 128 * 1024
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write(make([]byte, perConn))
			}(conn)
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := int64(0)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			n, _ := io.Copy(io.Discard, conn)
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if total != 2*perConn {
		t.Fatalf("received %d bytes", total)
	}
	got := float64(total) / elapsed
	if got > rate*1.8 {
		t.Errorf("aggregate throughput %.0f B/s blows through shared cap %.0f B/s", got, rate)
	}
}

func TestSetRateTakesEffect(t *testing.T) {
	b, err := NewBucket(1e6, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetRate(1e3); err != nil {
		t.Fatal(err)
	}
	b.Take(context.Background(), 1024) // drain burst
	start := time.Now()
	b.Take(context.Background(), 200) // 200 B at 1 KB/s ≈ 200 ms
	if time.Since(start) < 100*time.Millisecond {
		t.Error("new, slower rate not applied")
	}
}

func TestCopyShaped(t *testing.T) {
	src := bytes.Repeat([]byte{0xAB}, 64*1024)
	var dst bytes.Buffer
	start := time.Now()
	n, err := CopyShaped(context.Background(), &dst, bytes.NewReader(src), 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(src)) || !bytes.Equal(dst.Bytes(), src) {
		t.Fatal("content mismatch")
	}
	got := float64(n) / time.Since(start).Seconds()
	if got > 128*1024*2 {
		t.Errorf("CopyShaped ran at %.0f B/s, cap 128 KiB/s", got)
	}
	if _, err := CopyShaped(context.Background(), &dst, bytes.NewReader(src), 0); err == nil {
		t.Error("accepted zero rate")
	}
}

func TestShapedRateAccuracyAcrossSettings(t *testing.T) {
	// The Fig 5.3 property in miniature: measured ≈ configured across
	// a range of rates.
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	for _, rate := range []float64{128 * 1024, 512 * 1024} {
		b, err := NewBucket(rate, 8*1024)
		if err != nil {
			t.Fatal(err)
		}
		total := int(rate / 2) // half a second of traffic
		start := time.Now()
		if err := b.Take(context.Background(), total); err != nil {
			t.Fatal(err)
		}
		got := float64(total) / time.Since(start).Seconds()
		if math.Abs(got-rate)/rate > 0.5 {
			t.Errorf("rate %.0f: measured %.0f B/s", rate, got)
		}
	}
}

func TestPropertyBucketNeverOverGrants(t *testing.T) {
	// Over any sequence of takes, the bytes granted can never exceed
	// burst + rate×elapsed — the invariant that makes the rshaper
	// substitution sound.
	prop := func(seed int64, takes uint8) bool {
		r := rand.New(rand.NewSource(seed))
		rate := 1e6 + float64(r.Intn(9))*1e6 // 1–10 MB/s
		burst := 4096.0
		b, err := NewBucket(rate, burst)
		if err != nil {
			return false
		}
		start := time.Now()
		total := 0
		for i := 0; i < int(takes%12)+1; i++ {
			n := r.Intn(8192) + 1
			if err := b.Take(context.Background(), n); err != nil {
				return false
			}
			total += n
		}
		elapsed := time.Since(start).Seconds()
		// Allow a small scheduling epsilon on top of the theoretical
		// ceiling.
		ceiling := burst + rate*(elapsed+0.02)
		return float64(total) <= ceiling
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
