package overload

import (
	"math"
	"net/netip"
	"sync"
	"time"
)

// Item is one queued request datagram. Buf is owned by the queue
// entry (handed off from the receive ring, returned to a pool after
// handling); Enq is the admission timestamp the sojourn measurement
// is built on.
type Item struct {
	Buf  []byte
	Addr netip.AddrPort
	Enq  time.Time
}

// Queue is one bounded ingress queue with a CoDel controller on its
// drain side. The ingest goroutine Pushes, worker goroutines Pop and
// then ask AdmitDequeued whether the item should be served or shed.
// Both drop paths — queue-full eviction and CoDel — shed from the
// front: the oldest request is the one its client is closest to
// giving up on.
type Queue struct {
	gate *Gate
	ch   chan Item

	// CoDel state, guarded by mu: the controller is consulted by every
	// worker draining this queue, and its decisions are inherently
	// serial (each one advances the drop schedule).
	mu            sync.Mutex
	firstAbove    time.Time // when sojourn first exceeded target (zero: it hasn't)
	dropping      bool      // in the dropping state
	dropNext      time.Time // next scheduled drop while dropping
	dropCount     int       // drops this dropping episode (control-law divisor)
	lastDropCount int       // dropCount when the previous episode ended
}

// NewQueue builds one bounded ingress queue under the gate's CoDel
// parameters. Call once per shard.
func (g *Gate) NewQueue() *Queue {
	return &Queue{gate: g, ch: make(chan Item, max(g.cfg.MaxQueue, 1))}
}

// Push admits an item, evicting from the front when full. The evicted
// item (if any) is returned so the caller can answer it with a shed
// reply; evictions are counted in overload_shed. ok is false only
// when the queue is closed-and-full in a shutdown race, in which case
// the pushed item itself is returned as evicted.
func (q *Queue) Push(it Item) (evicted Item, hasEvicted bool) {
	for i := 0; i < 2; i++ {
		select {
		case q.ch <- it:
			return Item{}, false
		default:
		}
		// Full: sacrifice the oldest. A concurrent worker may win the
		// race for it, in which case the retry usually finds room.
		select {
		case old := <-q.ch:
			q.gate.shed.Inc()
			select {
			case q.ch <- it:
				return old, true
			default:
				// Still full (another ingest refilled the slot): give
				// up and shed the old one anyway.
				return old, true
			}
		default:
		}
	}
	// Unreachable in practice: full yet nothing to evict. Count the
	// incoming item as shed so nothing goes missing silently.
	q.gate.shed.Inc()
	return it, true
}

// Close releases Pop callers; call after the ingest goroutine has
// stopped pushing.
func (q *Queue) Close() { close(q.ch) }

// Pop blocks for the next item; ok is false once the queue is closed
// and drained.
func (q *Queue) Pop() (Item, bool) {
	it, ok := <-q.ch
	return it, ok
}

// TryPop drains without blocking — the workers' batch-fill path.
func (q *Queue) TryPop() (Item, bool) {
	select {
	case it, ok := <-q.ch:
		return it, ok
	default:
		return Item{}, false
	}
}

// Len reports the current queue depth.
func (q *Queue) Len() int { return len(q.ch) }

// Cap reports the queue bound.
func (q *Queue) Cap() int { return cap(q.ch) }

// AdmitDequeued runs the CoDel control law for one popped item and
// reports whether to serve it (true) or shed it (false, counted in
// overload_shed). Admitted sojourns land in the overload_queue_delay
// histogram; shed sojourns do not — the histogram answers "how long
// did requests we served wait", the quantity the bench gates bound.
//
// The law is CoDel's: shedding starts only after sojourn has exceeded
// Target continuously for Interval, proceeds at interval/sqrt(n)
// spacing while the excess persists, and stops the moment sojourn
// falls back under Target. next-drop state carries across episodes
// (lastDropCount) so an oscillating overload re-enters the schedule
// where it left off instead of relearning it.
func (q *Queue) AdmitDequeued(it Item, now time.Time) bool {
	sojourn := now.Sub(it.Enq)
	g := q.gate

	q.mu.Lock()
	drop := q.codel(sojourn, now)
	q.mu.Unlock()

	if drop {
		g.shed.Inc()
		return false
	}
	g.queueDelay.Observe(int64(sojourn))
	return true
}

// codel advances the controller by one dequeue observation; the
// caller holds q.mu.
func (q *Queue) codel(sojourn time.Duration, now time.Time) bool {
	target, interval := q.gate.cfg.Target, q.gate.cfg.Interval

	if sojourn < target {
		// Standing queue gone: leave the dropping state entirely.
		q.firstAbove = time.Time{}
		if q.dropping {
			q.dropping = false
			q.lastDropCount = q.dropCount
		}
		return false
	}

	if q.firstAbove.IsZero() {
		// First observation above target: arm the interval clock and
		// let this one through — a burst may clear on its own.
		q.firstAbove = now.Add(interval)
		return false
	}
	if now.Before(q.firstAbove) {
		return false // above target, but not yet for a full interval
	}

	if !q.dropping {
		q.dropping = true
		// Re-enter the control law near where the last episode ended
		// if it ended recently; otherwise start a fresh schedule.
		if now.Sub(q.dropNext) < interval && q.lastDropCount > 2 {
			q.dropCount = q.lastDropCount - 2
		} else {
			q.dropCount = 0
		}
		q.dropCount++
		q.dropNext = now.Add(controlLaw(interval, q.dropCount))
		return true
	}
	if now.Before(q.dropNext) {
		return false
	}
	q.dropCount++
	q.dropNext = q.dropNext.Add(controlLaw(interval, q.dropCount))
	return true
}

// controlLaw is CoDel's drop spacing: interval / sqrt(count).
func controlLaw(interval time.Duration, count int) time.Duration {
	return time.Duration(float64(interval) / math.Sqrt(float64(count)))
}
