package overload

import (
	"net/netip"
	"testing"
	"time"

	"smartsock/internal/obs"
)

func src(port uint16) netip.AddrPort {
	return netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), port)
}

func TestDisabledGateAdmitsEverything(t *testing.T) {
	var g *Gate // nil gate: serve directly
	if g.Enabled() {
		t.Fatal("nil gate reports enabled")
	}
	if !g.AllowSource(src(1), time.Now()) {
		t.Fatal("nil gate rejected a source")
	}
	g.Bypass(3) // must not panic
	if g.Shed() != 0 || g.RateLimited() != 0 || g.Bypassed() != 0 {
		t.Fatal("nil gate reports nonzero counters")
	}

	zero := New(Config{}) // MaxQueue 0: constructed but disarmed
	if zero.Enabled() {
		t.Fatal("MaxQueue=0 gate reports enabled")
	}
	if zero.Target() != DefaultTarget || zero.RetryAfter() != DefaultRetryAfter {
		t.Fatalf("defaults not applied: target %v retry-after %v", zero.Target(), zero.RetryAfter())
	}
}

func TestTokenBucketLimitsOnlyTheRunawaySource(t *testing.T) {
	g := New(Config{MaxQueue: 16, Rate: 10, Burst: 5})
	now := time.Now()

	// The runaway source: burst allows the first 5, then rejection
	// until tokens accrue.
	hot := src(1000)
	for i := 0; i < 5; i++ {
		if !g.AllowSource(hot, now) {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	if g.AllowSource(hot, now) {
		t.Fatal("burst-exhausted source admitted")
	}
	if g.RateLimited() != 1 {
		t.Fatalf("overload_ratelimited = %d, want 1", g.RateLimited())
	}

	// A cold source at the same instant is untouched.
	if !g.AllowSource(src(2000), now) {
		t.Fatal("cold source rejected while hot source is limited")
	}

	// Tokens accrue at Rate: 100ms buys one request back.
	if !g.AllowSource(hot, now.Add(100*time.Millisecond)) {
		t.Fatal("refilled source still rejected")
	}
	if g.AllowSource(hot, now.Add(100*time.Millisecond)) {
		t.Fatal("second request admitted from a one-token bucket")
	}
}

func TestLimiterLRUEvictsColdestSource(t *testing.T) {
	l := newLimiter(1, 1, 2)
	now := time.Now()
	l.allow(src(1), now)
	l.allow(src(2), now)
	if got := l.sources(); got != 2 {
		t.Fatalf("sources = %d, want 2", got)
	}
	// Touch 1 so 2 is the coldest, then add 3: 2 must be evicted.
	l.allow(src(1), now)
	l.allow(src(3), now)
	if got := l.sources(); got != 2 {
		t.Fatalf("sources = %d, want 2 after eviction", got)
	}
	// An evicted source returns with a fresh bucket (its debt is
	// forgotten, by design).
	if !l.allow(src(2), now) {
		t.Fatal("returning evicted source should start with a full bucket")
	}
}

func TestQueuePushEvictsFromFront(t *testing.T) {
	g := New(Config{MaxQueue: 2})
	q := g.NewQueue()
	now := time.Now()

	a := Item{Addr: src(1), Enq: now}
	b := Item{Addr: src(2), Enq: now}
	c := Item{Addr: src(3), Enq: now}
	if _, ev := q.Push(a); ev {
		t.Fatal("push into empty queue evicted")
	}
	if _, ev := q.Push(b); ev {
		t.Fatal("push into non-full queue evicted")
	}
	old, ev := q.Push(c)
	if !ev {
		t.Fatal("push into full queue did not evict")
	}
	if old.Addr != a.Addr {
		t.Fatalf("evicted %v, want the front item %v", old.Addr, a.Addr)
	}
	if g.Shed() != 1 {
		t.Fatalf("overload_shed = %d, want 1", g.Shed())
	}
	// Queue order after eviction: b then c.
	it, ok := q.TryPop()
	if !ok || it.Addr != b.Addr {
		t.Fatalf("front after eviction = %v, want %v", it.Addr, b.Addr)
	}
	it, ok = q.TryPop()
	if !ok || it.Addr != c.Addr {
		t.Fatalf("second after eviction = %v, want %v", it.Addr, c.Addr)
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestQueueCloseReleasesPop(t *testing.T) {
	g := New(Config{MaxQueue: 2})
	q := g.NewQueue()
	q.Push(Item{Addr: src(1), Enq: time.Now()})
	q.Close()
	if _, ok := q.Pop(); !ok {
		t.Fatal("queued item lost at close")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on closed drained queue reported an item")
	}
}

// codelStep feeds one dequeue observation with a fixed sojourn at
// time now and reports whether CoDel shed it.
func codelStep(q *Queue, sojourn time.Duration, now time.Time) bool {
	return !q.AdmitDequeued(Item{Enq: now.Add(-sojourn)}, now)
}

func TestCoDelAbsorbsBurstsShorterThanInterval(t *testing.T) {
	g := New(Config{MaxQueue: 64, Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond})
	q := g.NewQueue()
	now := time.Now()
	// Sojourn above target for less than one interval, then back under:
	// nothing may be shed.
	for i := 0; i < 50; i++ {
		if codelStep(q, 20*time.Millisecond, now.Add(time.Duration(i)*time.Millisecond)) {
			t.Fatalf("shed at %dms, inside the first interval", i)
		}
	}
	if codelStep(q, time.Millisecond, now.Add(60*time.Millisecond)) {
		t.Fatal("shed after sojourn fell under target")
	}
	if g.Shed() != 0 {
		t.Fatalf("overload_shed = %d, want 0", g.Shed())
	}
}

func TestCoDelShedsPersistentStandingQueue(t *testing.T) {
	g := New(Config{MaxQueue: 64, Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond})
	q := g.NewQueue()
	now := time.Now()
	shed := 0
	// Sojourn pinned above target for 2s of dequeues every 5ms: after
	// the first interval the control law must shed at an increasing
	// rate, and admitted sojourns must land in the histogram.
	for i := 0; i < 400; i++ {
		if codelStep(q, 25*time.Millisecond, now.Add(time.Duration(i)*5*time.Millisecond)) {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("persistent standing queue never shed")
	}
	if uint64(shed) != g.Shed() {
		t.Fatalf("shed %d but overload_shed = %d", shed, g.Shed())
	}
	// Control law: drops accelerate. The second second must shed at
	// least as much as the first.
	if shed < 10 {
		t.Fatalf("only %d sheds in 2s of sustained overload", shed)
	}

	// Recovery: sojourn back under target ends the episode instantly.
	if codelStep(q, time.Millisecond, now.Add(3*time.Second)) {
		t.Fatal("shed after recovery")
	}
	after := g.Shed()
	if codelStep(q, time.Millisecond, now.Add(3*time.Second+5*time.Millisecond)) {
		t.Fatal("shed while healthy")
	}
	if g.Shed() != after {
		t.Fatal("overload_shed moved while healthy")
	}
}

func TestAdmittedSojournsLandInHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	g := New(Config{MaxQueue: 64, Obs: reg})
	q := g.NewQueue()
	now := time.Now()
	if !q.AdmitDequeued(Item{Enq: now.Add(-time.Millisecond)}, now) {
		t.Fatal("healthy item shed")
	}
	snap := reg.Snapshot()
	h, ok := snap.Histograms["overload_queue_delay"]
	if !ok {
		t.Fatal("overload_queue_delay not registered")
	}
	if h.Count != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count)
	}
	if h.Sum < int64(900*time.Microsecond) || h.Sum > int64(1100*time.Microsecond) {
		t.Fatalf("histogram sum = %dns, want ~1ms", h.Sum)
	}
	for _, name := range []string{"overload_shed", "overload_ratelimited", "overload_bypass"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("counter %s not registered at gate construction", name)
		}
	}
}

func TestBypassCountsPriorityTraffic(t *testing.T) {
	g := New(Config{MaxQueue: 4})
	g.Bypass(3)
	g.Bypass(2)
	if g.Bypassed() != 5 {
		t.Fatalf("overload_bypass = %d, want 5", g.Bypassed())
	}
}
