// Package overload is the admission-control plane in front of the
// wizard's request loop — the deliberate overload story for the one
// component every client in the fleet hits before opening a
// connection. A brokered compute service saturates at the broker (the
// NEOS experience): past capacity, queues grow without bound, latency
// explodes for everyone, and client retries amplify the storm. This
// package bounds that failure into three mechanisms, all stdlib-only:
//
//   - Bounded per-shard ingress queues (Queue) sit between the
//     netbatch receive rings and the wizard workers. Every datagram is
//     timestamped at enqueue, so the time a request spent waiting — its
//     sojourn — is a measured quantity, not an inference. A full queue
//     drops from the front: the oldest request is the one whose client
//     has waited longest and is closest to timing out anyway, so it is
//     the cheapest to sacrifice (and the freshly arrived datagram is
//     the one most likely to still be answered in time).
//
//   - A CoDel-style controller (AdmitDequeued) sheds when queues are
//     persistently, not momentarily, deep: only once the sojourn time
//     has stayed above Target for a full Interval does it begin
//     dropping from the front, at the classic interval/sqrt(n) control
//     law, and it stops the moment sojourn falls back under Target. A
//     burst that clears within the interval is absorbed untouched.
//     Shed requests are answered with a cheap "overloaded,
//     retry-after" error (proto.OverloadedErr) so clients back off via
//     their jittered retry schedule instead of hammering blind.
//
//   - A per-source token-bucket rate limiter (AllowSource) over an LRU
//     of recent sources fends off a single runaway client without
//     punishing the fleet: each source address earns Rate tokens per
//     second up to Burst, and a source that exhausts its bucket is
//     rejected before its datagrams ever occupy queue space.
//
// Priority classes keep the control plane honest: status-distribution
// traffic (transport pull/delta frames) must never starve behind a
// request storm, so the transport receiver registers every frame as a
// bypass admission — counted in overload_bypass, never queued, never
// shed. The invariant "overload_bypass == transport frames received"
// is reconciled by the chaos observability suite.
package overload

import (
	"net/netip"
	"time"

	"smartsock/internal/obs"
)

// Defaults for Config fields left zero.
const (
	// DefaultTarget is the CoDel sojourn-time target: queue delay the
	// plane considers acceptable standing behaviour. 5ms is large
	// against the wizard's sub-microsecond cached answer path (so the
	// controller never fires on healthy load) and small against the
	// client's 50ms-base retry backoff (so a shed reply arrives well
	// before the client would have resent anyway).
	DefaultTarget = 5 * time.Millisecond
	// DefaultInterval is the CoDel observation window: sojourn must
	// exceed Target continuously for this long before shedding starts.
	DefaultInterval = 100 * time.Millisecond
	// DefaultRetryAfter is the backoff hint carried in shed replies
	// when Config.RetryAfter is zero — one CoDel interval, the soonest
	// the controller could have changed its mind.
	DefaultRetryAfter = DefaultInterval
	// DefaultSourceLRU is how many distinct source addresses the rate
	// limiter tracks when Config.SourceLRU is zero.
	DefaultSourceLRU = 4096
)

// Config parameterises a Gate.
type Config struct {
	// MaxQueue bounds each ingress queue, in datagrams. 0 disables the
	// whole admission plane: Gate.Enabled reports false and the serve
	// path falls back to its direct (unprotected) loop.
	MaxQueue int
	// Target is the CoDel sojourn-time target; 0 means DefaultTarget.
	Target time.Duration
	// Interval is the CoDel observation window; 0 means DefaultInterval.
	Interval time.Duration
	// RetryAfter is the backoff hint carried in shed replies; 0 means
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// Rate is the per-source admission rate in requests per second.
	// 0 disables per-source limiting (the CoDel shedder still runs).
	Rate float64
	// Burst is the per-source token-bucket capacity; 0 means 2×Rate
	// (and at least 8), so a well-behaved client's request bursts pass
	// untouched.
	Burst int
	// SourceLRU caps how many sources the limiter tracks; 0 means
	// DefaultSourceLRU. Evicting a source forgets its debt, which is
	// safe: a returning source restarts with a full bucket, and a
	// runaway source stays hot in the LRU by definition.
	SourceLRU int
	// Obs receives the plane's metrics (overload_shed,
	// overload_ratelimited, overload_bypass counters and the
	// overload_queue_delay histogram of admitted-request sojourns);
	// nil detaches them.
	Obs *obs.Registry
}

// Gate is one admission-control plane: a shared rate limiter, the
// CoDel parameters its queues run under, and the obs counters every
// decision lands in. One gate is shared by all of a wizard's shards
// (and by the transport receiver, for bypass accounting), so its
// counters describe the whole process.
type Gate struct {
	cfg Config
	lim *limiter

	shed        *obs.Counter   // overload_shed: requests dropped by CoDel or queue bound
	ratelimited *obs.Counter   // overload_ratelimited: requests rejected per-source
	bypass      *obs.Counter   // overload_bypass: priority traffic admitted unconditionally
	queueDelay  *obs.Histogram // overload_queue_delay: sojourn of admitted requests, ns
}

// New builds a gate, applying defaults and registering its metrics
// (detached when cfg.Obs is nil). Call New even when MaxQueue is 0 so
// the metrics exist — a disabled gate still reports its zeros.
func New(cfg Config) *Gate {
	if cfg.Target <= 0 {
		cfg.Target = DefaultTarget
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = cfg.Interval
	}
	if cfg.SourceLRU <= 0 {
		cfg.SourceLRU = DefaultSourceLRU
	}
	if cfg.Burst <= 0 {
		cfg.Burst = max(int(2*cfg.Rate), 8)
	}
	g := &Gate{
		cfg:         cfg,
		shed:        cfg.Obs.Counter("overload_shed"),
		ratelimited: cfg.Obs.Counter("overload_ratelimited"),
		bypass:      cfg.Obs.Counter("overload_bypass"),
		queueDelay:  cfg.Obs.Histogram("overload_queue_delay", obs.QueueDelayBuckets),
	}
	if cfg.Rate > 0 {
		g.lim = newLimiter(cfg.Rate, float64(cfg.Burst), cfg.SourceLRU)
	}
	return g
}

// Enabled reports whether the admission plane is armed. A nil gate
// and a MaxQueue of 0 both mean "serve directly, shed nothing".
func (g *Gate) Enabled() bool { return g != nil && g.cfg.MaxQueue > 0 }

// Target returns the CoDel sojourn target the gate's queues run under.
func (g *Gate) Target() time.Duration {
	if g == nil {
		return DefaultTarget
	}
	return g.cfg.Target
}

// RetryAfter returns the backoff hint shed replies should carry.
func (g *Gate) RetryAfter() time.Duration {
	if g == nil {
		return DefaultRetryAfter
	}
	return g.cfg.RetryAfter
}

// AllowSource runs the per-source token bucket for one request
// datagram from src. False means the source has exhausted its rate
// and the request must be shed (counted in overload_ratelimited).
// With no limiter configured every source is allowed.
func (g *Gate) AllowSource(src netip.AddrPort, now time.Time) bool {
	if g == nil || g.lim == nil {
		return true
	}
	if g.lim.allow(src, now) {
		return true
	}
	g.ratelimited.Inc()
	return false
}

// Bypass records n priority admissions — traffic (transport pull and
// delta frames, status distribution) that is never queued and never
// shed, whatever the load. The counter is the auditable half of the
// priority invariant: it must reconcile against the transport
// receiver's own frame counts.
func (g *Gate) Bypass(n int) {
	if g == nil {
		return
	}
	g.bypass.Add(uint64(n))
}

// QueueDelay exposes the admitted-sojourn histogram
// (overload_queue_delay) for benches and in-process dashboards that
// hold the gate rather than the registry.
func (g *Gate) QueueDelay() *obs.Histogram {
	if g == nil {
		return nil
	}
	return g.queueDelay
}

// Shed reports counters for tests and in-process dashboards.
func (g *Gate) Shed() uint64 {
	if g == nil {
		return 0
	}
	return g.shed.Value()
}

// RateLimited reports how many requests the per-source limiter
// rejected.
func (g *Gate) RateLimited() uint64 {
	if g == nil {
		return 0
	}
	return g.ratelimited.Value()
}

// Bypassed reports how many priority admissions have been recorded.
func (g *Gate) Bypassed() uint64 {
	if g == nil {
		return 0
	}
	return g.bypass.Value()
}
