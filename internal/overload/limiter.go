package overload

import (
	"container/list"
	"net/netip"
	"sync"
	"time"
)

// limiter is a per-source token-bucket table over an LRU of recent
// sources. Keys are full address:port pairs, not bare hosts: one
// runaway process is one socket, and host-level keying would let it
// take down every well-behaved client behind the same NAT.
//
// One mutex guards the table. The critical section is a map lookup,
// a float update and a list splice — tens of nanoseconds — which is
// noise against the per-datagram syscall cost even at storm rates;
// shard-local tables would only matter once the limiter itself shows
// up in profiles.
type limiter struct {
	mu    sync.Mutex
	rate  float64 // tokens earned per second
	burst float64 // bucket capacity
	cap   int     // most sources tracked
	m     map[netip.AddrPort]*list.Element
	lru   *list.List // front = most recently seen
}

// bucket is one source's state.
type bucket struct {
	src    netip.AddrPort
	tokens float64
	last   time.Time
}

func newLimiter(rate, burst float64, capacity int) *limiter {
	return &limiter{
		rate:  rate,
		burst: burst,
		cap:   capacity,
		m:     make(map[netip.AddrPort]*list.Element, capacity),
		lru:   list.New(),
	}
}

// allow spends one token from src's bucket, refilling by elapsed time
// first. A source seen for the first time (or evicted and returned)
// starts with a full bucket.
func (l *limiter) allow(src netip.AddrPort, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.m[src]
	if !ok {
		if l.lru.Len() >= l.cap {
			// Evict the coldest source. A runaway source is by
			// definition hot, so eviction forgets only the harmless.
			oldest := l.lru.Back()
			delete(l.m, oldest.Value.(*bucket).src)
			l.lru.Remove(oldest)
		}
		b := &bucket{src: src, tokens: l.burst, last: now}
		l.m[src] = l.lru.PushFront(b)
		b.tokens--
		return true
	}
	l.lru.MoveToFront(e)
	b := e.Value.(*bucket)
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sources reports how many distinct sources are currently tracked.
func (l *limiter) sources() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lru.Len()
}
