package reqlang

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatCanonicalises(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"a<1", "a < 1\n"},
		{"((a))", "a\n"},
		{"(a+b)*c", "(a + b) * c\n"},
		{"a+b*c", "a + b * c\n"},
		{"a = 3", "a = 3\n"},
		{"2^3^2", "2 ^ 3 ^ 2\n"},
		{"(2^3)^2", "(2 ^ 3) ^ 2\n"},
		{"-a < b", "-a < b\n"},
		{"-(a+b) < c", "-(a + b) < c\n"},
		{"sin( a , 0 )", ""}, // arity is eval-time; parse keeps both args
		{`user_preferred_host1 = "titan-x"`, `user_preferred_host1 = "titan-x"` + "\n"},
		{"user_denied_host1 = 10.0.0.1", "user_denied_host1 = 10.0.0.1\n"},
		{"x = a.b.example # comment", "x = a.b.example\n"},
		{"(a < b) && (c < d)", "a < b && c < d\n"},
		{"a && b || c", "a && b || c\n"},
		{"a || b && c", "a || b && c\n"},
		{"(a || b) && c", "(a || b) && c\n"},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		got := p.Format()
		if c.want != "" && got != c.want {
			t.Errorf("Format(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestFormatRoundTripsThesisExample(t *testing.T) {
	src := `host_system_load1 < 1
host_memory_used <= 250*1024*1024
host_cpu_free >= 0.9
host_network_tbytesps < 1024*1024  # for network IO
user_denied_host1 = 137.132.90.182
user_preferred_host1 = sagit.ddns.comp.nus.edu.sg
`
	p1 := mustParse(t, src)
	text := p1.Format()
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse of %q: %v", text, err)
	}
	if !EqualPrograms(p1, p2) {
		t.Errorf("round trip changed the program:\noriginal: %q\nformatted: %q", src, text)
	}
}

// genExpr builds a random expression string from a grammar sample.
func genExpr(r *rand.Rand, depth int) string {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return []string{"1", "2.5", "0.9", "42"}[r.Intn(4)]
		case 1:
			return []string{"a", "b", "host_cpu_free", "x1"}[r.Intn(4)]
		case 2:
			return "-" + []string{"a", "3"}[r.Intn(2)]
		default:
			return []string{"sin", "abs", "sqrt"}[r.Intn(3)] + "(" + genExpr(r, depth-1) + ")"
		}
	}
	ops := []string{"+", "-", "*", "/", "^", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}
	op := ops[r.Intn(len(ops))]
	l := genExpr(r, depth-1)
	rhs := genExpr(r, depth-1)
	if r.Intn(2) == 0 {
		return "(" + l + ") " + op + " (" + rhs + ")"
	}
	return l + " " + op + " " + rhs
}

func TestPropertyFormatRoundTrip(t *testing.T) {
	prop := func(seed int64, depthRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		src := genExpr(r, int(depthRaw%4)+1)
		p1, err := Parse(src)
		if err != nil {
			return true // generator made something illegal; fine
		}
		text := p1.Format()
		p2, err := Parse(text)
		if err != nil {
			t.Logf("formatted text does not parse: %q → %q: %v", src, text, err)
			return false
		}
		if !EqualPrograms(p1, p2) {
			t.Logf("round trip changed AST: %q → %q", src, text)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFormatPreservesEvaluation(t *testing.T) {
	envp := env(map[string]float64{
		"a": 2, "b": 3, "host_cpu_free": 0.9, "x1": -1,
	})
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genExpr(r, 3)
		p1, err := Parse(src)
		if err != nil {
			return true
		}
		p2, err := Parse(p1.Format())
		if err != nil {
			return false
		}
		r1 := p1.Eval(envp)
		r2 := p2.Eval(envp)
		if (r1.Err == nil) != (r2.Err == nil) {
			return false
		}
		sameScore := r1.Score == r2.Score ||
			(math.IsNaN(r1.Score) && math.IsNaN(r2.Score))
		return r1.Qualified == r2.Qualified && sameScore && r1.HasScore == r2.HasScore
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

func TestEqualPrograms(t *testing.T) {
	a := mustParse(t, "a < b\nc = 3\n")
	b := mustParse(t, "(a) < (b)\nc = 3\n")
	if !EqualPrograms(a, b) {
		t.Error("paren-equivalent programs reported unequal")
	}
	c := mustParse(t, "a < b\nc = 4\n")
	if EqualPrograms(a, c) {
		t.Error("different programs reported equal")
	}
	d := mustParse(t, "a < b\n")
	if EqualPrograms(a, d) {
		t.Error("different lengths reported equal")
	}
}

func TestFormatStringsStayQuoted(t *testing.T) {
	p := mustParse(t, `machine_type == "i386"`)
	if got := p.Format(); !strings.Contains(got, `"i386"`) {
		t.Errorf("Format lost quotes: %q", got)
	}
}
