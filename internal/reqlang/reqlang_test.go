package reqlang

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func env(params map[string]float64) *Env {
	return &Env{Params: params}
}

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func TestParseThesisExampleRequirement(t *testing.T) {
	// The sample requirement file from §3.6.2, verbatim.
	src := `host_system_load1 < 1
host_memory_used <= 250*1024*1024
host_cpu_free >= 0.9
#ldjfaldjfalsjff #akldjfaldfj
#some comments
host_network_tbytesps < 1024*1024  # for network IO
# comments
user_denied_host1 = 137.132.90.182
user_preferred_host1 = sagit.ddns.comp.nus.edu.sg
#
`
	p := mustParse(t, src)
	if got := len(p.Stmts); got != 6 {
		t.Fatalf("parsed %d statements, want 6", got)
	}
	if got := p.NumLogical(); got != 4 {
		t.Errorf("NumLogical = %d, want 4", got)
	}
	res := p.Eval(env(map[string]float64{
		"host_system_load1":     0.3,
		"host_memory_used":      100 * 1024 * 1024,
		"host_cpu_free":         0.95,
		"host_network_tbytesps": 1024,
	}))
	if res.Err != nil {
		t.Fatalf("Eval error: %v", res.Err)
	}
	if !res.Qualified {
		t.Errorf("server should qualify (failed line %d)", res.FailedLine)
	}
	if len(res.Denied) != 1 || res.Denied[0] != "137.132.90.182" {
		t.Errorf("Denied = %v, want [137.132.90.182]", res.Denied)
	}
	if len(res.Preferred) != 1 || res.Preferred[0] != "sagit.ddns.comp.nus.edu.sg" {
		t.Errorf("Preferred = %v, want [sagit.ddns.comp.nus.edu.sg]", res.Preferred)
	}
}

func TestEvalDisqualifiesOnFailedStatement(t *testing.T) {
	p := mustParse(t, "host_cpu_free >= 0.9\nhost_memory_free > 5\n")
	res := p.Eval(env(map[string]float64{
		"host_cpu_free":    0.95,
		"host_memory_free": 2,
	}))
	if res.Qualified {
		t.Error("server qualified despite failing memory constraint")
	}
	if res.FailedLine != 2 {
		t.Errorf("FailedLine = %d, want 2", res.FailedLine)
	}
}

func TestLogicalVsNonLogicalStatements(t *testing.T) {
	// Fig 4.2: "(a+b)<=b" is logical; "a+(b<c)" is not.
	cases := []struct {
		src     string
		logical bool
	}{
		{"(a+b) <= b", true},
		{"a + (b < c)", false},
		{"a && b", true},
		{"a = 3", false},
		{"(a)", false},
		{"((a < b))", true},
		{"3 + 4 * 2", false},
		{"x = a < b", false}, // assignment is the main operator
		{"-a < b", true},
		{"sin(a) < 0.5", true},
		{"sin(a < 0.5)", false},
	}
	for _, c := range cases {
		p := mustParse(t, c.src)
		if len(p.Stmts) != 1 {
			t.Fatalf("%q: got %d statements", c.src, len(p.Stmts))
		}
		if p.Stmts[0].Logical != c.logical {
			t.Errorf("%q: Logical = %v, want %v", c.src, p.Stmts[0].Logical, c.logical)
		}
	}
}

func TestTempVariablesAcrossLines(t *testing.T) {
	src := `limit = 250 * 1024
half = limit / 2
host_memory_used <= half
`
	p := mustParse(t, src)
	if ok := p.Eval(env(map[string]float64{"host_memory_used": 1000})).Qualified; !ok {
		t.Error("1000 <= 128000 should qualify")
	}
	if ok := p.Eval(env(map[string]float64{"host_memory_used": 1e9})).Qualified; ok {
		t.Error("1e9 <= 128000 should not qualify")
	}
}

func TestUndefinedVariableInLogicalStatementIsFalse(t *testing.T) {
	// §3.6.1: "If an uninitialized temp variable is used in the
	// logical statement, the whole statement will be considered as a
	// false statement."
	p := mustParse(t, "no_such_var < 10")
	res := p.Eval(env(nil))
	if res.Qualified {
		t.Error("statement with undefined variable should be false")
	}
	if res.Err != nil {
		t.Errorf("undefined var in logical stmt should not be a hard error, got %v", res.Err)
	}
}

func TestUndefinedVariableInNonLogicalStatementIsHardError(t *testing.T) {
	p := mustParse(t, "x = no_such_var + 1")
	res := p.Eval(env(nil))
	if res.Err == nil {
		t.Error("expected hard error for undefined var in non-logical statement")
	}
	if res.Qualified {
		t.Error("hard error must disqualify")
	}
}

func TestDivisionByZeroIsHardError(t *testing.T) {
	p := mustParse(t, "1 / 0 < 5")
	res := p.Eval(env(nil))
	if res.Err == nil || !strings.Contains(res.Err.Error(), "division by 0") {
		t.Errorf("Err = %v, want division by 0", res.Err)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"v = 1 + 2 * 3", 7},
		{"v = (1 + 2) * 3", 9},
		{"v = 2 ^ 3 ^ 2", 512}, // right associative
		{"v = -2 ^ 2", 4},      // unary minus binds tighter: (-2)^2
		{"v = 10 - 2 - 3", 5},  // left associative
		{"v = 12 / 4 / 3", 1},
		{"v = (1 < 2) + (3 < 4)", 2},
		{"v = (2 < 1) || (1 < 2)", 1},
		{"v = (2 < 1) && (1 < 2)", 0},
		{"v = 1 + 2 < 2 + 2", 1}, // relational below additive
		{"v = max(3, min(10, 7))", 7},
		{"v = abs(-4.5)", 4.5},
		{"v = int(3.9)", 3},
		{"v = 2*pi/pi", 2},
	}
	for _, c := range cases {
		p := mustParse(t, c.src)
		st := &evalState{env: env(nil), temps: map[string]Value{}, uparams: map[string]Value{}}
		v, err := st.eval(p.Stmts[0].Expr)
		if err != nil {
			t.Errorf("%q: eval error %v", c.src, err)
			continue
		}
		if v.IsStr || math.Abs(v.Num-c.want) > 1e-9 {
			t.Errorf("%q = %v, want %g", c.src, v, c.want)
		}
	}
}

func TestBuiltinFunctions(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"sin(0)", 0},
		{"cos(0)", 1},
		{"exp(1)", math.E},
		{"log10(1000)", 3},
		{"log(e)", 1},
		{"sqrt(16)", 4},
		{"pow(2, 10)", 1024},
		{"floor(2.7)", 2},
		{"ceil(2.1)", 3},
		{"tan(0)", 0},
		{"atan(0)", 0},
	}
	for _, c := range cases {
		p := mustParse(t, "v = "+c.src)
		st := &evalState{env: env(nil), temps: map[string]Value{}, uparams: map[string]Value{}}
		v, err := st.eval(p.Stmts[0].Expr)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if math.Abs(v.Num-c.want) > 1e-9 {
			t.Errorf("%q = %g, want %g", c.src, v.Num, c.want)
		}
	}
}

func TestBuiltinErrors(t *testing.T) {
	for _, src := range []string{
		"v = sqrt(-1)",
		"v = log(0)",
		"v = log10(-5)",
		"v = nosuchfn(1)",
		"v = sin(1, 2)",
		"v = pow(2)",
	} {
		p := mustParse(t, src)
		if res := p.Eval(env(nil)); res.Err == nil {
			t.Errorf("%q: expected evaluation error", src)
		}
	}
}

func TestNetAddrTokens(t *testing.T) {
	p := mustParse(t, `user_denied_host1 = 10.0.0.1
user_denied_host2 = bad.example.org
user_preferred_host1 = "titan-x"
`)
	res := p.Eval(env(nil))
	if res.Err != nil {
		t.Fatalf("Eval: %v", res.Err)
	}
	wantDenied := map[string]bool{"10.0.0.1": true, "bad.example.org": true}
	if len(res.Denied) != 2 || !wantDenied[res.Denied[0]] || !wantDenied[res.Denied[1]] {
		t.Errorf("Denied = %v", res.Denied)
	}
	if len(res.Preferred) != 1 || res.Preferred[0] != "titan-x" {
		t.Errorf("Preferred = %v", res.Preferred)
	}
}

func TestBareWordHostInUserParamAssignment(t *testing.T) {
	// Table 5.5 writes user_denied_host1 = telesto with a bare word.
	p := mustParse(t, "user_denied_host1 = telesto")
	res := p.Eval(env(nil))
	if res.Err != nil {
		t.Fatalf("Eval: %v", res.Err)
	}
	if len(res.Denied) != 1 || res.Denied[0] != "telesto" {
		t.Errorf("Denied = %v, want [telesto]", res.Denied)
	}
}

func TestUserParamAssignmentInsideConjunction(t *testing.T) {
	// Table 5.5 chains user_denied assignments with && inside one
	// logical statement.
	src := `(host_cpu_free > 0.9) && (user_denied_host1 = telesto) && (user_denied_host2 = mimas)`
	p := mustParse(t, src)
	res := p.Eval(env(map[string]float64{"host_cpu_free": 0.95}))
	if res.Err != nil {
		t.Fatalf("Eval: %v", res.Err)
	}
	if !res.Qualified {
		t.Error("statement should be true: assignments yield truthy host strings")
	}
	if len(res.Denied) != 2 {
		t.Errorf("Denied = %v, want 2 hosts", res.Denied)
	}
}

func TestAssignToServerParamRejected(t *testing.T) {
	p := mustParse(t, "host_cpu_free = 1")
	res := p.Eval(env(map[string]float64{"host_cpu_free": 0.2}))
	if res.Err == nil {
		t.Error("assigning to a server-side parameter should fail")
	}
}

func TestAssignToConstantRejected(t *testing.T) {
	p := mustParse(t, "pi = 3")
	if res := p.Eval(env(nil)); res.Err == nil {
		t.Error("assigning to a constant should fail")
	}
}

func TestStringAttributeExtension(t *testing.T) {
	// Chapter 6: statements like machine_type == "i386".
	p := mustParse(t, `machine_type == "i386"`)
	e := &Env{StrParams: map[string]string{"machine_type": "i386"}}
	if !p.Eval(e).Qualified {
		t.Error("machine_type == \"i386\" should qualify an i386 host")
	}
	e.StrParams["machine_type"] = "sparc"
	if p.Eval(e).Qualified {
		t.Error("sparc host should not qualify")
	}
}

func TestStringComparisonCaseInsensitive(t *testing.T) {
	p := mustParse(t, `machine_type == "I386"`)
	e := &Env{StrParams: map[string]string{"machine_type": "i386"}}
	if !p.Eval(e).Qualified {
		t.Error("host-name style comparison should be case-insensitive")
	}
}

func TestMixedTypeEqualityIsFalse(t *testing.T) {
	p := mustParse(t, `machine_type == 386`)
	e := &Env{StrParams: map[string]string{"machine_type": "386"}}
	res := p.Eval(e)
	if res.Err != nil {
		t.Fatalf("Eval: %v", res.Err)
	}
	if res.Qualified {
		t.Error("string/number equality should be false, not coerced")
	}
}

func TestRelationalOnStringsIsHardError(t *testing.T) {
	p := mustParse(t, `machine_type < 5`)
	e := &Env{StrParams: map[string]string{"machine_type": "i386"}}
	if res := p.Eval(e); res.Err == nil {
		t.Error("relational comparison on a string should be a hard error")
	}
}

func TestScoreFromLastNonLogicalStatement(t *testing.T) {
	src := `host_cpu_free > 0.1
host_memory_free * 2
`
	p := mustParse(t, src)
	res := p.Eval(env(map[string]float64{"host_cpu_free": 0.5, "host_memory_free": 21}))
	if !res.HasScore || res.Score != 42 {
		t.Errorf("Score = %v (has=%v), want 42", res.Score, res.HasScore)
	}
}

func TestMeaninglessStatementQualifiesEverything(t *testing.T) {
	// §4.3: "A meaningless statement like 100 > 0 will make any server
	// as a qualified candidate."
	p := mustParse(t, "100 > 0")
	if !p.Eval(env(nil)).Qualified {
		t.Error("100 > 0 should qualify any server")
	}
}

func TestEmptyRequirementQualifiesEverything(t *testing.T) {
	p := mustParse(t, "# only comments\n\n   \n")
	if len(p.Stmts) != 0 {
		t.Fatalf("got %d statements, want 0", len(p.Stmts))
	}
	if !p.Eval(env(nil)).Qualified {
		t.Error("empty requirement should qualify all servers")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"a <",
		"a & b",
		"a | b",
		"(a < b",
		"a ! b",
		"1.2.3",
		`"unterminated`,
		"a @ b",
		"< 3",
		"a < b) c",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSyntaxErrorHasPosition(t *testing.T) {
	_, err := Parse("a < 1\nb <\n")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Line)
	}
}

func TestEvalIsReusableAcrossServers(t *testing.T) {
	// One parsed Program is evaluated once per server; temp variables
	// and user params must not leak between evaluations.
	p := mustParse(t, "x = host_cpu_free\nx > 0.5\nuser_denied_host1 = 10.0.0.1\n")
	r1 := p.Eval(env(map[string]float64{"host_cpu_free": 0.9}))
	r2 := p.Eval(env(map[string]float64{"host_cpu_free": 0.1}))
	if !r1.Qualified || r2.Qualified {
		t.Errorf("qualified = %v/%v, want true/false", r1.Qualified, r2.Qualified)
	}
	if len(r1.Denied) != 1 || len(r2.Denied) != 1 {
		t.Errorf("denied lists = %v / %v, want one host each", r1.Denied, r2.Denied)
	}
}

func TestPropertyArithmeticMatchesGo(t *testing.T) {
	// For random small integer triples, the language's arithmetic and
	// comparisons agree with Go's.
	prop := func(a, b, c int8) bool {
		af, bf, cf := float64(a), float64(b), float64(c)
		p, err := Parse("v = a*b + c\nw = a - b*c\nq = (a < b) && (b < c)\n")
		if err != nil {
			return false
		}
		st := &evalState{
			env:     env(map[string]float64{"a": af, "b": bf, "c": cf}),
			temps:   map[string]Value{},
			uparams: map[string]Value{},
		}
		v, err1 := st.eval(p.Stmts[0].Expr)
		w, err2 := st.eval(p.Stmts[1].Expr)
		q, err3 := st.eval(p.Stmts[2].Expr)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		wantQ := 0.0
		if af < bf && bf < cf {
			wantQ = 1
		}
		return v.Num == af*bf+cf && w.Num == af-bf*cf && q.Num == wantQ
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyParseNeverPanics(t *testing.T) {
	prop := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		p, err := Parse(src)
		if err == nil && p != nil {
			p.Eval(env(map[string]float64{"a": 1}))
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFig14StyleRequirement(t *testing.T) {
	// The Fig 1.4 walkthrough: 100 MB free memory, CPU usage < 10%,
	// delay < 20 ms, hacker.some.net blacklisted.
	src := `host_memory_free >= 100
host_cpu_user + host_cpu_system + host_cpu_nice < 0.10
monitor_network_delay < 20
user_denied_host1 = hacker.some.net
`
	p := mustParse(t, src)
	good := env(map[string]float64{
		"host_memory_free":      200,
		"host_cpu_user":         0.02,
		"host_cpu_system":       0.01,
		"host_cpu_nice":         0,
		"monitor_network_delay": 5,
	})
	res := p.Eval(good)
	if !res.Qualified {
		t.Errorf("good server rejected (line %d, err %v)", res.FailedLine, res.Err)
	}
	if len(res.Denied) != 1 || res.Denied[0] != "hacker.some.net" {
		t.Errorf("Denied = %v", res.Denied)
	}
	slow := env(map[string]float64{
		"host_memory_free":      200,
		"host_cpu_user":         0.02,
		"host_cpu_system":       0.01,
		"host_cpu_nice":         0,
		"monitor_network_delay": 100, // network A in Fig 1.4
	})
	if p.Eval(slow).Qualified {
		t.Error("network-A server (100 ms) should be rejected")
	}
}

func TestFreeVariables(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{"host_cpu_free > 0.9", []string{"host_cpu_free"}},
		{"a = 3\na < host_system_load1", []string{"host_system_load1"}},
		{"b < 1\nb = 3", []string{"b"}}, // read before assignment
		{"user_denied_host1 = telesto", nil},
		{"user_denied_host1 = 10.0.0.1", nil},
		{"sin(host_cpu_idle) < cos(x)", []string{"host_cpu_idle", "x"}},
		{"pi < host_memory_free", []string{"host_memory_free"}}, // constants excluded
		{"(host_cpu_free > 0.9) && (user_denied_host1 = mimas)", []string{"host_cpu_free"}},
		{"t = host_disk_rreq + 1\nt < 5", []string{"host_disk_rreq"}},
		{"# nothing\n", nil},
	}
	for _, c := range cases {
		p := mustParse(t, c.src)
		got := p.FreeVariables()
		if len(got) != len(c.want) {
			t.Errorf("FreeVariables(%q) = %v, want %v", c.src, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("FreeVariables(%q) = %v, want %v", c.src, got, c.want)
				break
			}
		}
	}
}
