package reqlang

import "sort"

// FreeVariables lists the variables a program reads without first
// assigning them — the server-side parameters (plus any typos) its
// qualification depends on. The wizard uses this to learn which
// parameter groups applications actually ask about, so probes can be
// told to measure and ship only those (the Chapter 6
// selected-parameters extension).
//
// User-side parameters (user_denied_host*/user_preferred_host*) and
// the built-in constants are not reported: they never come from
// status reports.
func (p *Program) FreeVariables() []string {
	assigned := map[string]bool{}
	free := map[string]bool{}
	for _, stmt := range p.Stmts {
		collectFree(stmt.Expr, assigned, free)
	}
	out := make([]string, 0, len(free))
	for name := range free {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func collectFree(n node, assigned, free map[string]bool) {
	switch v := n.(type) {
	case *varNode:
		if !assigned[v.name] && !IsUserParam(v.name) {
			if _, isConst := constants[v.name]; !isConst {
				free[v.name] = true
			}
		}
	case *assignNode:
		// A bare word on the RHS of a user-parameter assignment is a
		// host name (the Table 5.5 convenience), not a variable read.
		if _, bare := v.rhs.(*varNode); bare && IsUserParam(v.name) {
			assigned[v.name] = true
			return
		}
		// RHS evaluates before the assignment takes effect.
		collectFree(v.rhs, assigned, free)
		assigned[v.name] = true
	case *unaryNode:
		collectFree(v.x, assigned, free)
	case *parenNode:
		collectFree(v.x, assigned, free)
	case *binNode:
		collectFree(v.l, assigned, free)
		collectFree(v.r, assigned, free)
	case *callNode:
		for _, a := range v.args {
			collectFree(a, assigned, free)
		}
	}
}
