package reqlang

import "sort"

// resolveVars walks the AST once, at parse time, and records the two
// variable sets the rest of the system keys off:
//
//   - free variables: read before any assignment — the server-side
//     parameters (plus typos) qualification depends on;
//   - mentioned variables: read *or* assigned anywhere — the names an
//     evaluation environment could possibly be asked about, which lets
//     the selector populate only those bindings per candidate server
//     instead of the full parameter table.
//
// User-side parameters (user_denied_host*/user_preferred_host*) and
// the built-in constants appear in neither set: they never come from
// status reports and are resolved inside the evaluator.
func (p *Program) resolveVars() {
	assigned := map[string]bool{}
	free := map[string]bool{}
	mentioned := map[string]bool{}
	for _, stmt := range p.Stmts {
		collectVars(stmt.Expr, assigned, free, mentioned)
	}
	p.free = sortedKeys(free)
	p.mentioned = sortedKeys(mentioned)
	p.refs = mentioned
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FreeVariables lists the variables the program reads without first
// assigning them. The wizard uses this to learn which parameter
// groups applications actually ask about, so probes can be told to
// measure and ship only those (the Chapter 6 selected-parameters
// extension). The returned slice is a copy the caller may keep.
func (p *Program) FreeVariables() []string {
	return append([]string(nil), p.free...)
}

// FreeVars is the allocation-free variant of FreeVariables for hot
// paths: the returned slice is shared with the Program and must be
// treated as read-only.
func (p *Program) FreeVars() []string { return p.free }

// MentionedVars lists every identifier the program reads or assigns
// (excluding user-side parameters and built-in constants), sorted.
// The selector uses it to bind only the status variables an
// evaluation can actually touch. The returned slice is shared with
// the Program and must be treated as read-only.
func (p *Program) MentionedVars() []string { return p.mentioned }

// References reports whether the program reads or assigns the named
// variable anywhere. Resolved at parse time; O(1) per call.
func (p *Program) References(name string) bool { return p.refs[name] }

func collectVars(n node, assigned, free, mentioned map[string]bool) {
	switch v := n.(type) {
	case *varNode:
		if IsUserParam(v.name) {
			return
		}
		if _, isConst := constants[v.name]; isConst {
			return
		}
		mentioned[v.name] = true
		if !assigned[v.name] {
			free[v.name] = true
		}
	case *assignNode:
		// A bare word on the RHS of a user-parameter assignment is a
		// host name (the Table 5.5 convenience), not a variable read.
		if _, bare := v.rhs.(*varNode); bare && IsUserParam(v.name) {
			assigned[v.name] = true
			return
		}
		// RHS evaluates before the assignment takes effect.
		collectVars(v.rhs, assigned, free, mentioned)
		assigned[v.name] = true
		if !IsUserParam(v.name) {
			if _, isConst := constants[v.name]; !isConst {
				mentioned[v.name] = true
			}
		}
	case *unaryNode:
		collectVars(v.x, assigned, free, mentioned)
	case *parenNode:
		collectVars(v.x, assigned, free, mentioned)
	case *binNode:
		collectVars(v.l, assigned, free, mentioned)
		collectVars(v.r, assigned, free, mentioned)
	case *callNode:
		for _, a := range v.args {
			collectVars(a, assigned, free, mentioned)
		}
	}
}
