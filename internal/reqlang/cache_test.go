package reqlang

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(8)
	src := "host_cpu_free > 0.5\n"
	p1, err := c.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("second Get did not return the cached program")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

func TestCacheCachesParseErrors(t *testing.T) {
	c := NewCache(8)
	src := "host_cpu_free >\n"
	_, err1 := c.Get(src)
	if err1 == nil {
		t.Fatal("bad requirement parsed")
	}
	_, err2 := c.Get(src)
	if err2 == nil {
		t.Fatal("cached Get lost the parse error")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1 (errors cache too)", hits, misses)
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewCache(2)
	reqs := []string{
		"host_cpu_free > 0.1\n",
		"host_cpu_free > 0.2\n",
		"host_cpu_free > 0.3\n",
	}
	if _, err := c.Get(reqs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(reqs[1]); err != nil {
		t.Fatal(err)
	}
	// Touch reqs[0] so reqs[1] is the LRU entry, then overflow.
	if _, err := c.Get(reqs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(reqs[2]); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	// reqs[0] survives (hit), reqs[1] was evicted (miss).
	c.Get(reqs[0])
	c.Get(reqs[1])
	hits, misses := c.Stats()
	if hits != 2 || misses != 4 {
		t.Errorf("stats = %d hits / %d misses, want 2/4", hits, misses)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	src := "host_cpu_free > 0.5\n"
	p1, err := c.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("disabled cache returned a shared program")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 0/2", hits, misses)
	}
	if c.Len() != 0 {
		t.Errorf("disabled cache holds %d entries", c.Len())
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache(8)
	if _, err := c.Get("host_cpu_free > 0.5\n"); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("cache holds %d entries after Purge", c.Len())
	}
	if _, err := c.Get("host_cpu_free > 0.5\n"); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 2 {
		t.Errorf("stats after purge = %d hits / %d misses, want 0/2", hits, misses)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				src := fmt.Sprintf("host_cpu_free > 0.%d\n", i%20)
				p, err := c.Get(src)
				if err != nil {
					t.Errorf("Get(%q): %v", src, err)
					return
				}
				if got := p.Source(); got != src {
					t.Errorf("program source %q, want %q", got, src)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("cache grew to %d entries, max 16", c.Len())
	}
}
