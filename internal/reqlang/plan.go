package reqlang

// The planner pass inspects a compiled Program and extracts the
// leading run of statements that are pure conjunctions of
// variable-versus-constant comparisons — the shape an ordered index
// can answer. The wizard's selector intersects those constraints
// against its per-field indexes to obtain a candidate set, then
// evaluates only the residual program (EvalFrom) against survivors.
//
// Extraction is deliberately conservative: a statement that mixes OR,
// !=, arithmetic, function calls, assignments or string operands ends
// the prefix, and a program whose first statement is not extractable
// yields no plan at all — the selector falls back to the full scan,
// preserving the Fig 4.2 semantics exactly.

// CmpOp is an extracted comparison operator.
type CmpOp uint8

const (
	CmpLT CmpOp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
)

func (o CmpOp) String() string {
	switch o {
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpEQ:
		return "=="
	}
	return "?"
}

// flip mirrors an operator across its operands: `0.5 < x` is `x > 0.5`.
func (o CmpOp) flip() CmpOp {
	switch o {
	case CmpLT:
		return CmpGT
	case CmpLE:
		return CmpGE
	case CmpGT:
		return CmpLT
	case CmpGE:
		return CmpLE
	}
	return o
}

// Constraint is one extracted predicate: Var Op Val must hold for the
// statement at Line to evaluate true.
type Constraint struct {
	Var  string
	Op   CmpOp
	Val  float64
	Line int
}

// Plan is the planner's verdict on a Program: the extracted
// constraints and how many leading statements they fully cover. A
// candidate satisfying every constraint is exactly a candidate whose
// first Prefix statements all evaluate true, so the selector may
// resume evaluation at statement Prefix.
type Plan struct {
	Cons   []Constraint
	Prefix int
}

// Plan extracts the index-resolvable prefix of the program. The
// indexable callback says which variables have (or can have) an
// index; any other variable — user parameters, temporaries, network
// metrics, unknown names — ends extraction, because the index cannot
// know its per-host value. Returns nil when no leading statement is
// extractable.
func (p *Program) Plan(indexable func(string) bool) *Plan {
	if indexable == nil {
		return nil
	}
	var cons []Constraint
	prefix := 0
	for i := range p.Stmts {
		stmt := &p.Stmts[i]
		if !stmt.Logical {
			break
		}
		mark := len(cons)
		if !extractConj(stmt.Expr, stmt.Line, indexable, &cons) {
			cons = cons[:mark]
			break
		}
		prefix++
	}
	if prefix == 0 || len(cons) == 0 {
		return nil
	}
	return &Plan{Cons: cons, Prefix: prefix}
}

// extractConj decomposes an and-tree of comparisons, appending one
// constraint per leaf. Any other node shape fails the statement.
func extractConj(n node, line int, indexable func(string) bool, out *[]Constraint) bool {
	n = stripParens(n)
	b, ok := n.(*binNode)
	if !ok {
		return false
	}
	switch b.op {
	case tokAnd:
		return extractConj(b.l, line, indexable, out) &&
			extractConj(b.r, line, indexable, out)
	case tokLT, tokLE, tokGT, tokGE, tokEQ:
		op := tokenCmp(b.op)
		if name, ok := compVar(b.l, indexable); ok {
			if val, ok := litVal(b.r); ok {
				*out = append(*out, Constraint{Var: name, Op: op, Val: val, Line: line})
				return true
			}
			return false
		}
		if val, ok := litVal(b.l); ok {
			if name, ok := compVar(b.r, indexable); ok {
				*out = append(*out, Constraint{Var: name, Op: op.flip(), Val: val, Line: line})
				return true
			}
		}
		return false
	}
	return false
}

func tokenCmp(k tokenKind) CmpOp {
	switch k {
	case tokLT:
		return CmpLT
	case tokLE:
		return CmpLE
	case tokGT:
		return CmpGT
	case tokGE:
		return CmpGE
	}
	return CmpEQ
}

func stripParens(n node) node {
	for {
		p, ok := n.(*parenNode)
		if !ok {
			return n
		}
		n = p.x
	}
}

// compVar accepts a bare indexable variable. User parameters never
// qualify (they read as strings), nor do the predefined constants
// (their comparison is host-independent and not worth indexing).
func compVar(n node, indexable func(string) bool) (string, bool) {
	v, ok := stripParens(n).(*varNode)
	if !ok {
		return "", false
	}
	if IsUserParam(v.name) {
		return "", false
	}
	if _, isConst := constants[v.name]; isConst {
		return "", false
	}
	return v.name, indexable(v.name)
}

// litVal accepts a numeric literal, possibly parenthesized or
// negated.
func litVal(n node) (float64, bool) {
	switch v := stripParens(n).(type) {
	case *numNode:
		return v.val, true
	case *unaryNode:
		if x, ok := litVal(v.x); ok {
			return -x, true
		}
	}
	return 0, false
}
