// Package reqlang implements the server-requirement meta language of
// §3.6.1 and §4.3: a small line-oriented expression language in which
// users describe the servers an application needs.
//
// Each non-empty line is a statement. A statement whose top-level
// operator is logical (&&, ||, ==, !=, <, <=, >, >=) is a *logical
// statement*; a server qualifies only if every logical statement in
// the requirement evaluates to true against that server's status
// report. Non-logical statements define temporary variables and carry
// intermediate arithmetic; their values do not gate qualification.
//
// The token rules follow Fig 4.1: '#' starts a comment, dotted words
// and dotted quads are network addresses, identifiers are variables
// (server-side parameters, user-side parameters, or temporaries), and
// the C logical operators are recognised. Two extensions beyond the
// thesis lexer are double-quoted strings (so host names containing
// '-', such as "titan-x", and string attributes like machine_type can
// be written) and the set of built-in math functions listed in
// Appendix B.4.
package reqlang

import (
	"fmt"
	"strconv"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNewline
	tokNumber
	tokIdent   // variable name: server param, user param, or temp
	tokNetAddr // dotted quad or dotted domain name
	tokString  // double-quoted literal
	tokLParen
	tokRParen
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokCaret
	tokAssign
	tokAnd // &&
	tokOr  // ||
	tokEQ  // ==
	tokNE  // !=
	tokLT  // <
	tokLE  // <=
	tokGT  // >
	tokGE  // >=
	tokComma
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "newline"
	case tokNumber:
		return "number"
	case tokIdent:
		return "identifier"
	case tokNetAddr:
		return "network address"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokCaret:
		return "'^'"
	case tokAssign:
		return "'='"
	case tokAnd:
		return "'&&'"
	case tokOr:
		return "'||'"
	case tokEQ:
		return "'=='"
	case tokNE:
		return "'!='"
	case tokLT:
		return "'<'"
	case tokLE:
		return "'<='"
	case tokGT:
		return "'>'"
	case tokGE:
		return "'>='"
	case tokComma:
		return "','"
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind tokenKind
	text string  // raw text for ident/netaddr/string
	num  float64 // value for tokNumber
	line int
	col  int
}

// SyntaxError reports a lexical or grammatical problem with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("reqlang: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool  { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isIdentC(c byte) bool { return isAlpha(c) || isDigit(c) || c == '_' }

// netAddrC reports bytes legal inside the tail of a dotted name. The
// thesis pattern is [.a-zA-Z_0-9]*; '-' is added so real host names
// like titan-x.lab parse.
func netAddrC(c byte) bool { return isIdentC(c) || c == '.' || c == '-' }

// next scans one token. Comments and horizontal whitespace are
// consumed silently; '\n' is a token because it terminates statements.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.peek()
		if c == ' ' || c == '\t' || c == '\r' {
			l.advance()
			continue
		}
		if c == '#' {
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	tok := func(k tokenKind) (token, error) {
		return token{kind: k, line: line, col: col}, nil
	}
	c := l.advance()
	switch c {
	case '\n':
		return tok(tokNewline)
	case '(':
		return tok(tokLParen)
	case ')':
		return tok(tokRParen)
	case '+':
		return tok(tokPlus)
	case '-':
		return tok(tokMinus)
	case '*':
		return tok(tokStar)
	case '/':
		return tok(tokSlash)
	case '^':
		return tok(tokCaret)
	case ',':
		return tok(tokComma)
	case '=':
		if l.peek() == '=' {
			l.advance()
			return tok(tokEQ)
		}
		return tok(tokAssign)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return tok(tokNE)
		}
		return token{}, l.errorf("unexpected '!' (only '!=' is defined)")
	case '<':
		if l.peek() == '=' {
			l.advance()
			return tok(tokLE)
		}
		return tok(tokLT)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return tok(tokGE)
		}
		return tok(tokGT)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return tok(tokAnd)
		}
		return token{}, l.errorf("unexpected '&' (only '&&' is defined)")
	case '|':
		if l.peek() == '|' {
			l.advance()
			return tok(tokOr)
		}
		return token{}, l.errorf("unexpected '|' (only '||' is defined)")
	case '"':
		var b strings.Builder
		for {
			if l.pos >= len(l.src) || l.peek() == '\n' {
				return token{}, l.errorf("unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			b.WriteByte(ch)
		}
		return token{kind: tokString, text: b.String(), line: line, col: col}, nil
	}
	if isDigit(c) {
		return l.scanNumberOrAddr(c, line, col)
	}
	if isAlpha(c) {
		return l.scanIdentOrAddr(c, line, col)
	}
	return token{}, l.errorf("unexpected character %q", c)
}

// scanNumberOrAddr handles both NUMBER ([0-9]+ or [0-9]+.[0-9]+) and
// the dotted-quad form of NETADDR.
func (l *lexer) scanNumberOrAddr(first byte, line, col int) (token, error) {
	var b strings.Builder
	b.WriteByte(first)
	dots := 0
	for l.pos < len(l.src) {
		c := l.peek()
		if isDigit(c) {
			b.WriteByte(l.advance())
			continue
		}
		if c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			dots++
			b.WriteByte(l.advance())
			continue
		}
		break
	}
	text := b.String()
	switch dots {
	case 0, 1:
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf("bad number %q", text)}
		}
		return token{kind: tokNumber, num: v, text: text, line: line, col: col}, nil
	case 3:
		return token{kind: tokNetAddr, text: text, line: line, col: col}, nil
	}
	return token{}, &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf("%q is neither a number nor a dotted-quad address", text)}
}

// scanIdentOrAddr handles identifiers and domain-name NETADDRs: an
// identifier containing a '.' is a network address (Fig 4.1).
func (l *lexer) scanIdentOrAddr(first byte, line, col int) (token, error) {
	var b strings.Builder
	b.WriteByte(first)
	isAddr := false
	for l.pos < len(l.src) {
		c := l.peek()
		if isIdentC(c) {
			b.WriteByte(l.advance())
			continue
		}
		// A dot continues the token only when followed by a name
		// character, so "a.b " parses as one address while a trailing
		// dot stays out of the token. '-' continues the token only
		// once a dot has been seen (inside a domain name): a bare
		// "a-b" must stay a subtraction, but "titan-x.lab" is a host.
		// Bare hyphenated host names need quotes: "titan-x".
		if (c == '.' || (c == '-' && isAddr)) && l.pos+1 < len(l.src) && netAddrC(l.src[l.pos+1]) && l.src[l.pos+1] != '.' {
			if c == '.' {
				isAddr = true
			}
			b.WriteByte(l.advance())
			continue
		}
		break
	}
	kind := tokIdent
	if isAddr {
		kind = tokNetAddr
	}
	return token{kind: kind, text: b.String(), line: line, col: col}, nil
}

// lexAll tokenises the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
