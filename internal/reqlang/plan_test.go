package reqlang

import (
	"reflect"
	"strings"
	"testing"
)

// testIndexable mimics the selector's policy for tests: host_* status
// variables are indexable, everything else is not.
func testIndexable(name string) bool {
	return strings.HasPrefix(name, "host_")
}

func TestPlanExtraction(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		cons   []Constraint
		prefix int
	}{
		{
			name:   "simple less-than",
			src:    "host_system_load1 < 2.0\n",
			cons:   []Constraint{{Var: "host_system_load1", Op: CmpLT, Val: 2, Line: 1}},
			prefix: 1,
		},
		{
			name:   "literal on the left flips",
			src:    "2.0 > host_system_load1\n",
			cons:   []Constraint{{Var: "host_system_load1", Op: CmpLT, Val: 2, Line: 1}},
			prefix: 1,
		},
		{
			name: "conjunction splits into two constraints",
			src:  "(host_cpu_free >= 0.5) && (host_memory_free > 10)\n",
			cons: []Constraint{
				{Var: "host_cpu_free", Op: CmpGE, Val: 0.5, Line: 1},
				{Var: "host_memory_free", Op: CmpGT, Val: 10, Line: 1},
			},
			prefix: 1,
		},
		{
			name: "multiple statements extend the prefix",
			src:  "host_cpu_free > 0.9\nhost_system_load5 <= 1\n",
			cons: []Constraint{
				{Var: "host_cpu_free", Op: CmpGT, Val: 0.9, Line: 1},
				{Var: "host_system_load5", Op: CmpLE, Val: 1, Line: 2},
			},
			prefix: 2,
		},
		{
			name:   "negated literal",
			src:    "host_system_load1 > -1.5\n",
			cons:   []Constraint{{Var: "host_system_load1", Op: CmpGT, Val: -1.5, Line: 1}},
			prefix: 1,
		},
		{
			name:   "equality",
			src:    "host_security_level == 3\n",
			cons:   []Constraint{{Var: "host_security_level", Op: CmpEQ, Val: 3, Line: 1}},
			prefix: 1,
		},
		{
			name: "unextractable second statement ends the prefix",
			src:  "host_cpu_free > 0.5\nhost_system_load1 < host_system_load5\n",
			cons: []Constraint{
				{Var: "host_cpu_free", Op: CmpGT, Val: 0.5, Line: 1},
			},
			prefix: 1,
		},
		{
			name: "score statement ends the prefix",
			src:  "host_cpu_free > 0.5\nhost_cpu_free * 100\n",
			cons: []Constraint{
				{Var: "host_cpu_free", Op: CmpGT, Val: 0.5, Line: 1},
			},
			prefix: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := mustParse(t, tc.src).Plan(testIndexable)
			if plan == nil {
				t.Fatalf("Plan returned nil, want %v", tc.cons)
			}
			if plan.Prefix != tc.prefix {
				t.Errorf("Prefix = %d, want %d", plan.Prefix, tc.prefix)
			}
			if !reflect.DeepEqual(plan.Cons, tc.cons) {
				t.Errorf("Cons = %v, want %v", plan.Cons, tc.cons)
			}
		})
	}
}

func TestPlanRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"disjunction", "host_cpu_free > 0.5 || host_system_load1 < 1\n"},
		{"not-equal", "host_system_load1 != 2\n"},
		{"arithmetic operand", "host_system_load1 + 1 < 2\n"},
		{"function call", "sqrt(host_cpu_free) > 0.5\n"},
		{"two variables", "host_system_load1 < host_system_load5\n"},
		{"two literals", "1 < 2\n"},
		{"user parameter", "user_count > 2\n"},
		{"constant operand", "pi < 4\n"},
		{"unindexable variable", "monitor_network_delay < 10\n"},
		{"leading assignment", "x = 3\nhost_cpu_free > 0.5\n"},
		{"leading score", "host_cpu_free * 2\nhost_cpu_free > 0.5\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if plan := mustParse(t, tc.src).Plan(testIndexable); plan != nil {
				t.Fatalf("Plan = %+v, want nil", plan)
			}
		})
	}
}

func TestPlanPartialConjunctionRollsBack(t *testing.T) {
	// The first conjunct is extractable, the second is not: the whole
	// statement must fail without leaking the first constraint.
	plan := mustParse(t, "host_cpu_free > 0.5 && sqrt(host_system_load1) < 1\n").Plan(testIndexable)
	if plan != nil {
		t.Fatalf("partial conjunction extracted: %+v", plan)
	}
	// And when it is the *second* statement, the prefix stops at one
	// with only the first statement's constraint.
	plan = mustParse(t, "host_memory_free > 1\nhost_cpu_free > 0.5 && sqrt(host_system_load1) < 1\n").Plan(testIndexable)
	if plan == nil || plan.Prefix != 1 || len(plan.Cons) != 1 || plan.Cons[0].Var != "host_memory_free" {
		t.Fatalf("rollback failed: %+v", plan)
	}
}

func TestPlanNilIndexable(t *testing.T) {
	if plan := mustParse(t, "host_cpu_free > 0.5\n").Plan(nil); plan != nil {
		t.Fatalf("Plan(nil) = %+v, want nil", plan)
	}
}

// TestPlanResidualEquivalence is the deterministic core of the fuzz
// property: for envs on both sides of each constraint, satisfying all
// constraints makes EvalFrom(prefix) agree with the full Eval, and
// violating any leaves the program unqualified.
func TestPlanResidualEquivalence(t *testing.T) {
	src := "host_cpu_free > 0.5\nhost_system_load1 <= 2\nhost_cpu_free * 100\n"
	prog := mustParse(t, src)
	plan := prog.Plan(testIndexable)
	if plan == nil || plan.Prefix != 2 {
		t.Fatalf("unexpected plan: %+v", plan)
	}
	envs := []map[string]float64{
		{"host_cpu_free": 0.9, "host_system_load1": 1},
		{"host_cpu_free": 0.9, "host_system_load1": 3},
		{"host_cpu_free": 0.1, "host_system_load1": 1},
		{"host_cpu_free": 0.5, "host_system_load1": 2},
	}
	for _, params := range envs {
		env := &Env{Params: params}
		full := prog.Eval(env)
		pass := true
		for _, c := range plan.Cons {
			v, ok := params[c.Var]
			if !ok || !matchCons(c, v) {
				pass = false
			}
		}
		if pass {
			resid := prog.EvalFrom(env, plan.Prefix)
			if !reflect.DeepEqual(resid, full) {
				t.Errorf("env %v: residual %+v != full %+v", params, resid, full)
			}
		} else if full.Qualified {
			t.Errorf("env %v: constraints fail but full eval qualified", params)
		}
	}
}

func matchCons(c Constraint, v float64) bool {
	switch c.Op {
	case CmpLT:
		return v < c.Val
	case CmpLE:
		return v <= c.Val
	case CmpGT:
		return v > c.Val
	case CmpGE:
		return v >= c.Val
	case CmpEQ:
		return v == c.Val
	}
	return false
}
