package reqlang

import (
	"fmt"
	"strings"
)

// node is one AST vertex. Nodes remember their source position so
// evaluation errors can point at the offending statement.
type node interface {
	pos() (line, col int)
}

type numNode struct {
	val       float64
	line, col int
}

// strNode is a string literal or a NETADDR (dotted quad / domain
// name); both evaluate to string values.
type strNode struct {
	val       string
	isAddr    bool
	line, col int
}

type varNode struct {
	name      string
	line, col int
}

type assignNode struct {
	name      string
	rhs       node
	line, col int
}

type unaryNode struct {
	x         node
	line, col int
}

type binNode struct {
	op        tokenKind
	l, r      node
	line, col int
}

type callNode struct {
	fn        string
	args      []node
	line, col int
}

type parenNode struct {
	x         node
	line, col int
}

func (n *numNode) pos() (int, int)    { return n.line, n.col }
func (n *strNode) pos() (int, int)    { return n.line, n.col }
func (n *varNode) pos() (int, int)    { return n.line, n.col }
func (n *assignNode) pos() (int, int) { return n.line, n.col }
func (n *unaryNode) pos() (int, int)  { return n.line, n.col }
func (n *binNode) pos() (int, int)    { return n.line, n.col }
func (n *callNode) pos() (int, int)   { return n.line, n.col }
func (n *parenNode) pos() (int, int)  { return n.line, n.col }

// isLogical reports whether a node is a logical statement per the Fig
// 4.2 semantics: its main (top-level) operator is a logical operator.
// Parentheses do not change the logic flag; everything else —
// numbers, variables, arithmetic, assignment, function calls — is
// non-logical.
func isLogical(n node) bool {
	switch v := n.(type) {
	case *binNode:
		switch v.op {
		case tokAnd, tokOr, tokEQ, tokNE, tokLT, tokLE, tokGT, tokGE:
			return true
		}
		return false
	case *parenNode:
		return isLogical(v.x)
	}
	return false
}

// Statement is one parsed requirement line.
type Statement struct {
	Expr    node
	Logical bool
	Line    int
	Src     string // the raw source line, for diagnostics
}

// Program is a parsed requirement, ready to evaluate against many
// server status records.
type Program struct {
	Stmts []Statement
	src   string

	// Variable metadata resolved once at parse time, so the
	// per-request and per-server hot paths never re-walk the AST.
	free      []string        // free variables, sorted
	mentioned []string        // read or assigned identifiers, sorted
	refs      map[string]bool // set view of mentioned
}

// Source returns the original requirement text.
func (p *Program) Source() string { return p.src }

// NumLogical counts the logical (qualification-gating) statements.
func (p *Program) NumLogical() int {
	n := 0
	for _, s := range p.Stmts {
		if s.Logical {
			n++
		}
	}
	return n
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token    { return p.toks[p.pos] }
func (p *parser) advance() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return token{}, &SyntaxError{Line: t.line, Col: t.col,
			Msg: fmt.Sprintf("expected %v, found %v", k, t.kind)}
	}
	return p.advance(), nil
}

// Parse compiles a requirement text into a Program. Parsing is
// independent of any server's status; the same Program is evaluated
// once per candidate server.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	lines := strings.Split(src, "\n")
	prog := &Program{src: src}
	for {
		// Skip blank lines.
		for p.peek().kind == tokNewline {
			p.advance()
		}
		if p.peek().kind == tokEOF {
			break
		}
		start := p.peek()
		expr, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		// A statement ends at a newline or at EOF.
		switch t := p.peek(); t.kind {
		case tokNewline:
			p.advance()
		case tokEOF:
		default:
			return nil, &SyntaxError{Line: t.line, Col: t.col,
				Msg: fmt.Sprintf("unexpected %v after expression", t.kind)}
		}
		raw := ""
		if start.line-1 < len(lines) {
			raw = strings.TrimSpace(lines[start.line-1])
		}
		prog.Stmts = append(prog.Stmts, Statement{
			Expr:    expr,
			Logical: isLogical(expr),
			Line:    start.line,
			Src:     raw,
		})
	}
	prog.resolveVars()
	return prog, nil
}

// Binary operator precedence, low to high. '^' is handled separately
// because it is right-associative.
var binPrec = map[tokenKind]int{
	tokOr:    1,
	tokAnd:   2,
	tokEQ:    3,
	tokNE:    3,
	tokLT:    3,
	tokLE:    3,
	tokGT:    3,
	tokGE:    3,
	tokPlus:  4,
	tokMinus: 4,
	tokStar:  5,
	tokSlash: 5,
	tokCaret: 6,
}

// parseExpr is a precedence climber over binPrec.
func (p *parser) parseExpr(minPrec int) (node, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		prec, ok := binPrec[t.kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		nextMin := prec + 1
		if t.kind == tokCaret { // right-associative
			nextMin = prec
		}
		rhs, err := p.parseExpr(nextMin)
		if err != nil {
			return nil, err
		}
		lhs = &binNode{op: t.kind, l: lhs, r: rhs, line: t.line, col: t.col}
	}
}

func (p *parser) parseUnary() (node, error) {
	if t := p.peek(); t.kind == tokMinus {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryNode{x: x, line: t.line, col: t.col}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (node, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		return &numNode{val: t.num, line: t.line, col: t.col}, nil
	case tokString:
		p.advance()
		return &strNode{val: t.text, line: t.line, col: t.col}, nil
	case tokNetAddr:
		p.advance()
		return &strNode{val: t.text, isAddr: true, line: t.line, col: t.col}, nil
	case tokLParen:
		p.advance()
		x, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &parenNode{x: x, line: t.line, col: t.col}, nil
	case tokIdent:
		p.advance()
		switch p.peek().kind {
		case tokLParen: // built-in function call
			p.advance()
			var args []node
			if p.peek().kind != tokRParen {
				for {
					a, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind != tokComma {
						break
					}
					p.advance()
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &callNode{fn: t.text, args: args, line: t.line, col: t.col}, nil
		case tokAssign:
			p.advance()
			rhs, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			return &assignNode{name: t.text, rhs: rhs, line: t.line, col: t.col}, nil
		}
		return &varNode{name: t.text, line: t.line, col: t.col}, nil
	}
	return nil, &SyntaxError{Line: t.line, Col: t.col,
		Msg: fmt.Sprintf("unexpected %v at start of expression", t.kind)}
}
