package reqlang

import (
	"strings"
	"testing"
)

// TestParseErrorMessages pins the failure mode of every
// malformed-input class: each must fail loudly at Parse time — never
// silently succeed and reject every server at match time — and the
// message must name the actual problem, because wizard replies relay
// it verbatim to users.
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error message
	}{
		{"unterminated paren", "(a + b", "expected ')'"},
		{"dangling operator", "a +", "at start of expression"},
		{"single ampersand", "a & b", "only '&&' is defined"},
		{"single pipe", "x | y", "only '||' is defined"},
		{"bare bang", "! x", "only '!=' is defined"},
		{"two-dot number", "1.2.3", "neither a number nor a dotted-quad"},
		{"unterminated string", `x = "sagit`, "unterminated string literal"},
		{"unterminated call", "floor(", "at start of expression"},
		{"call missing rparen", "floor(1", "expected ')'"},
		{"leading rparen", ") + 2", "at start of expression"},
		{"operator at line start", "* 3", "at start of expression"},
		{"two expressions one line", "a b", "after expression"},
		{"assign without rhs", "x =", "at start of expression"},
		{"lone comma", "f(1,)", "at start of expression"},
		{"stray character", "a ~ b", "unexpected character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded with %d statements, want error",
					tc.src, len(prog.Stmts))
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse(%q) error = %q, want substring %q", tc.src, err, tc.want)
			}
		})
	}
}

// evalScore parses and evaluates a single arithmetic statement and
// returns its score value.
func evalScore(t *testing.T, src string) float64 {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	res := prog.Eval(&Env{})
	if res.Err != nil {
		t.Fatalf("Eval(%q): %v", src, res.Err)
	}
	if !res.HasScore {
		t.Fatalf("Eval(%q) produced no score", src)
	}
	return res.Score
}

// TestOperatorPrecedenceEdges pins the corners of the expression
// grammar: exponent right-associativity, the unary-minus/exponent
// interaction, multiplication over addition, and logical grouping.
func TestOperatorPrecedenceEdges(t *testing.T) {
	arith := []struct {
		src  string
		want float64
	}{
		{"2^3^2", 512}, // right-assoc: 2^(3^2), not (2^3)^2 = 64
		{"-2^2", 4},    // unary minus binds tighter: (-2)^2, not -(2^2)
		{"-(2^2)", -4}, // parens restore the other reading
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"8 / 4 / 2", 1},  // left-assoc division
		{"10 - 4 - 3", 3}, // left-assoc subtraction
		{"2 * 3 ^ 2", 18}, // exponent over multiplication
		{"- 2 - - 3", 1},  // stacked unary minus
	}
	for _, tc := range arith {
		if got := evalScore(t, tc.src); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.src, got, tc.want)
		}
	}

	logical := []struct {
		src       string
		qualified bool
	}{
		// && binds tighter than ||: true || (false && false).
		{"1 == 1 || 1 == 2 && 2 == 3", true},
		// Parens force the || first, then the false && side.
		{"(1 == 1 || 1 == 2) && 2 == 3", false},
		// Comparison chains are left-assoc, evaluating (1<2)=1, then 1<3.
		{"(1 < 2) < 3", true},
		{"1 < 2 < 3", true},
		// (3<2)=0, 0<1 is true — the classic C-style chain surprise,
		// pinned so a future grammar change is a conscious decision.
		{"3 < 2 < 1", true},
	}
	for _, tc := range logical {
		prog, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		res := prog.Eval(&Env{})
		if res.Err != nil {
			t.Fatalf("Eval(%q): %v", tc.src, res.Err)
		}
		if res.Qualified != tc.qualified {
			t.Errorf("%q qualified = %v, want %v", tc.src, res.Qualified, tc.qualified)
		}
	}
}

// TestEvalHardErrors covers inputs that parse but must fail during
// evaluation with a hard error that disqualifies the server.
func TestEvalHardErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown function", "nosuchfn(1) > 0", "nosuchfn"},
		{"wrong arity", "floor(1, 2) > 0", "argument"},
		{"undefined in arithmetic", "x + 1", "undefined variable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.src, err)
			}
			res := prog.Eval(&Env{})
			if res.Err == nil {
				t.Fatalf("Eval(%q) reported no error (qualified=%v)", tc.src, res.Qualified)
			}
			if res.Qualified {
				t.Errorf("Eval(%q) left the server qualified despite %v", tc.src, res.Err)
			}
			if !strings.Contains(res.Err.Error(), tc.want) {
				t.Errorf("Eval(%q) error = %q, want substring %q", tc.src, res.Err, tc.want)
			}
		})
	}
}
