package reqlang

import (
	"container/list"
	"strings"
	"sync"

	"smartsock/internal/obs"
)

// DefaultCacheSize is the compiled-program cache bound used when a
// caller does not pick one. Template storms repeat a handful of
// requirement texts, so a few hundred entries covers every template
// plus a healthy working set of ad-hoc requirements.
const DefaultCacheSize = 256

// Cache is a bounded LRU of compiled requirement programs keyed by
// source text. The wizard answers request storms that repeat the same
// requirement (predefined templates, retried requests, fleets of
// identical clients); compiling once and sharing the immutable
// *Program across requests removes the parser from the hot path.
//
// Parse failures are cached too: a storm of the same malformed
// requirement would otherwise re-lex it on every datagram.
//
// A Cache is safe for concurrent use. Programs it returns are shared;
// they are immutable after Parse, so concurrent Eval calls are safe.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // source text -> element

	hits   *obs.Counter // reqlang_cache_hits
	misses *obs.Counter // reqlang_cache_misses
}

type cacheEntry struct {
	src  string
	prog *Program
	err  error
}

// NewCache builds a cache bounded to max compiled programs with
// detached (unregistered) hit/miss counters. A non-positive max
// disables caching entirely: Get compiles on every call (the seed
// behaviour, kept for comparison benchmarks).
func NewCache(max int) *Cache {
	return NewCacheObs(max, nil)
}

// NewCacheObs builds a cache whose hit/miss counters live in reg as
// reqlang_cache_hits / reqlang_cache_misses; a nil registry detaches
// them.
func NewCacheObs(max int, reg *obs.Registry) *Cache {
	c := &Cache{
		max:    max,
		hits:   reg.Counter("reqlang_cache_hits"),
		misses: reg.Counter("reqlang_cache_misses"),
	}
	if max > 0 {
		c.ll = list.New()
		c.entries = make(map[string]*list.Element, max)
	}
	return c
}

// Get returns the compiled program for src, parsing it at most once
// while it stays resident. The parse itself runs outside the cache
// lock so a storm of distinct texts does not serialise on it. Get
// never retains src itself (inserted keys are cloned), so src may
// alias a buffer the caller reuses.
func (c *Cache) Get(src string) (*Program, error) {
	if c == nil || c.max <= 0 {
		if c != nil {
			c.misses.Add(1)
		}
		return Parse(src)
	}
	c.mu.Lock()
	if el, ok := c.entries[src]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		c.hits.Add(1)
		return e.prog, e.err
	}
	c.mu.Unlock()
	c.misses.Add(1)
	prog, err := Parse(src)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[src]; ok {
		// Another goroutine compiled the same text while we parsed;
		// keep its entry so all callers share one Program.
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		return e.prog, e.err
	}
	// Clone before inserting: callers may pass a src that aliases a
	// reusable receive buffer (the wizard's zero-alloc serve path
	// does), and the map key outlives the call.
	src = strings.Clone(src)
	c.entries[src] = c.ll.PushFront(&cacheEntry{src: src, prog: prog, err: err})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).src)
	}
	return prog, err
}

// Stats reports the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Value(), c.misses.Value()
}

// Len reports the number of resident compiled programs.
func (c *Cache) Len() int {
	if c == nil || c.max <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every resident program (counters are kept). The wizard
// calls this on template reload: entries are keyed by requirement
// text, so stale entries can never be *served* after a reload — purge
// just stops dead template bodies from occupying cache slots.
func (c *Cache) Purge() {
	if c == nil || c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.entries)
}
