package reqlang

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a parsed program back to canonical meta-language
// text: one statement per line, single-spaced operators, minimal
// parentheses (re-inserted only where precedence demands them).
// Formatting is stable — Parse(Format(p)) yields a structurally
// identical program — so wizards can log normalised requirements and
// tools can lint user files.
func (p *Program) Format() string {
	var b strings.Builder
	for _, stmt := range p.Stmts {
		b.WriteString(formatNode(stmt.Expr, 0))
		b.WriteByte('\n')
	}
	return b.String()
}

// precedence of a node's top operator, for parenthesis insertion.
// Mirrors binPrec plus levels for unary minus and primaries.
func nodePrec(n node) int {
	switch v := n.(type) {
	case *binNode:
		return binPrec[v.op]
	case *unaryNode:
		return 7
	case *assignNode:
		return 0
	default:
		return 8 // primary
	}
}

func opText(k tokenKind) string {
	switch k {
	case tokAnd:
		return "&&"
	case tokOr:
		return "||"
	case tokEQ:
		return "=="
	case tokNE:
		return "!="
	case tokLT:
		return "<"
	case tokLE:
		return "<="
	case tokGT:
		return ">"
	case tokGE:
		return ">="
	case tokPlus:
		return "+"
	case tokMinus:
		return "-"
	case tokStar:
		return "*"
	case tokSlash:
		return "/"
	case tokCaret:
		return "^"
	}
	return "?"
}

// formatNode renders a node, parenthesising when its precedence is
// below the context's minimum.
func formatNode(n node, minPrec int) string {
	switch v := n.(type) {
	case *numNode:
		return strconv.FormatFloat(v.val, 'g', -1, 64)
	case *strNode:
		if v.isAddr {
			return v.val
		}
		return `"` + v.val + `"`
	case *varNode:
		return v.name
	case *parenNode:
		// Redundant source parentheses collapse; needed ones come back
		// from precedence below.
		return formatNode(v.x, minPrec)
	case *unaryNode:
		s := "-" + formatNode(v.x, 8)
		if nodePrec(v) < minPrec {
			return "(" + s + ")"
		}
		return s
	case *callNode:
		args := make([]string, len(v.args))
		for i, a := range v.args {
			args[i] = formatNode(a, 0)
		}
		return v.fn + "(" + strings.Join(args, ", ") + ")"
	case *assignNode:
		s := v.name + " = " + formatNode(v.rhs, 0)
		if minPrec > 0 {
			return "(" + s + ")"
		}
		return s
	case *binNode:
		prec := binPrec[v.op]
		// Left child needs at least this precedence; right child one
		// more for left-associative operators, the same for the
		// right-associative '^'.
		rightMin := prec + 1
		if v.op == tokCaret {
			rightMin = prec
		}
		// For '^' the *left* side needs prec+1 instead (right-assoc).
		leftMin := prec
		if v.op == tokCaret {
			leftMin = prec + 1
		}
		s := fmt.Sprintf("%s %s %s",
			formatNode(v.l, leftMin), opText(v.op), formatNode(v.r, rightMin))
		if prec < minPrec {
			return "(" + s + ")"
		}
		return s
	}
	return "?"
}

// equalAST reports structural equality of two nodes, ignoring source
// positions and redundant parentheses — the property Format must
// preserve.
func equalAST(a, b node) bool {
	for {
		if p, ok := a.(*parenNode); ok {
			a = p.x
			continue
		}
		break
	}
	for {
		if p, ok := b.(*parenNode); ok {
			b = p.x
			continue
		}
		break
	}
	switch x := a.(type) {
	case *numNode:
		y, ok := b.(*numNode)
		return ok && x.val == y.val
	case *strNode:
		y, ok := b.(*strNode)
		return ok && x.val == y.val
	case *varNode:
		y, ok := b.(*varNode)
		return ok && x.name == y.name
	case *unaryNode:
		if y, ok := b.(*unaryNode); ok {
			return equalAST(x.x, y.x)
		}
	case *assignNode:
		if y, ok := b.(*assignNode); ok {
			return x.name == y.name && equalAST(x.rhs, y.rhs)
		}
	case *callNode:
		if y, ok := b.(*callNode); ok {
			if x.fn != y.fn || len(x.args) != len(y.args) {
				return false
			}
			for i := range x.args {
				if !equalAST(x.args[i], y.args[i]) {
					return false
				}
			}
			return true
		}
	case *binNode:
		if y, ok := b.(*binNode); ok {
			return x.op == y.op && equalAST(x.l, y.l) && equalAST(x.r, y.r)
		}
	}
	return false
}

// EqualPrograms reports whether two programs are structurally
// identical statement for statement.
func EqualPrograms(a, b *Program) bool {
	if len(a.Stmts) != len(b.Stmts) {
		return false
	}
	for i := range a.Stmts {
		if a.Stmts[i].Logical != b.Stmts[i].Logical {
			return false
		}
		if !equalAST(a.Stmts[i].Expr, b.Stmts[i].Expr) {
			return false
		}
	}
	return true
}
