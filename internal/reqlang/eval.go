package reqlang

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Value is the tagged union the evaluator computes: every expression
// yields either a number or a string (network addresses and quoted
// literals are strings).
type Value struct {
	Num   float64
	Str   string
	IsStr bool
}

// NumValue wraps a float64.
func NumValue(v float64) Value { return Value{Num: v} }

// StrValue wraps a string.
func StrValue(s string) Value { return Value{Str: s, IsStr: true} }

// Truthy reports the boolean reading of a value: a number is true
// when non-zero, a string when non-empty.
func (v Value) Truthy() bool {
	if v.IsStr {
		return v.Str != ""
	}
	return v.Num != 0
}

func (v Value) String() string {
	if v.IsStr {
		return fmt.Sprintf("%q", v.Str)
	}
	return fmt.Sprintf("%g", v.Num)
}

// Env supplies the server-side parameter bindings for one candidate
// server: the 22 numeric variables extracted from its status report
// plus the network and security parameters merged in by the wizard.
// StrParams carries the Chapter 6 string-attribute extension
// (machine_type and friends).
type Env struct {
	Params    map[string]float64
	StrParams map[string]string
}

// EvalError is a runtime evaluation failure (division by zero, type
// misuse, unknown function).
type EvalError struct {
	Line int
	Stmt string
	Msg  string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("reqlang: line %d (%s): %s", e.Line, e.Stmt, e.Msg)
}

// undefinedError marks use of a variable no one defined. It is split
// from EvalError because the thesis gives it special semantics: an
// undefined variable inside a *logical* statement makes that
// statement false rather than aborting the evaluation.
type undefinedError struct {
	name string
}

func (e *undefinedError) Error() string {
	return fmt.Sprintf("undefined variable %q", e.name)
}

// Result is the outcome of evaluating a Program against one server.
type Result struct {
	// Qualified is true when every logical statement evaluated true.
	Qualified bool
	// Denied and Preferred collect the user-side host parameters
	// (user_denied_hostN / user_preferred_hostN assignments).
	Denied    []string
	Preferred []string
	// Score is the value of the last non-logical, non-assignment
	// statement, used by the rank-by-expression option.
	Score    float64
	HasScore bool
	// FailedLine is the first logical statement that evaluated false
	// (0 when none did); useful for explaining rejections.
	FailedLine int
	// Err is the first hard evaluation error, if any. A hard error
	// disqualifies the server.
	Err error
}

const (
	deniedPrefix    = "user_denied_host"
	preferredPrefix = "user_preferred_host"
)

// IsUserParam reports whether name is one of the user-side variables
// (Appendix B.2): the denied/preferred host slots.
func IsUserParam(name string) bool {
	return strings.HasPrefix(name, deniedPrefix) || strings.HasPrefix(name, preferredPrefix)
}

// evalState carries per-evaluation mutable bindings. States are
// pooled: the wizard evaluates one program against every candidate
// server, and allocating two maps per server per request dominated
// the selection profile. The maps are created lazily (most
// requirements assign nothing) and cleared on release.
type evalState struct {
	env     *Env
	temps   map[string]Value
	uparams map[string]Value
}

var statePool = sync.Pool{New: func() any { return new(evalState) }}

func (st *evalState) release() {
	st.env = nil
	clear(st.temps)
	clear(st.uparams)
	statePool.Put(st)
}

// Eval runs the program against one server's environment, following
// the Fig 4.2 semantics: statements run top to bottom; each logical
// statement must be true for the server to qualify; assignments to
// user-side parameters record denied/preferred hosts; temporary
// variables persist across lines within one evaluation.
func (p *Program) Eval(env *Env) Result { return p.EvalFrom(env, 0) }

// EvalFrom evaluates the program starting at statement index from,
// with identical semantics to Eval for the statements it runs. The
// selection planner uses it for residual evaluation: when the index
// has already proved a candidate's first `from` statements true —
// they were pure conjunctions of satisfied constraints, with no
// assignments, scores or possible hard errors — resuming at the
// residual yields exactly the full evaluation's Result.
func (p *Program) EvalFrom(env *Env, from int) Result {
	if from < 0 {
		from = 0
	}
	st := statePool.Get().(*evalState)
	st.env = env
	defer st.release()
	res := Result{Qualified: true}
	for i := from; i < len(p.Stmts); i++ {
		stmt := &p.Stmts[i]
		v, err := st.eval(stmt.Expr)
		if err != nil {
			if _, undef := err.(*undefinedError); undef && stmt.Logical {
				// Thesis rule: an uninitialized variable inside a
				// logical statement makes the statement false.
				res.Qualified = false
				if res.FailedLine == 0 {
					res.FailedLine = stmt.Line
				}
				continue
			}
			res.Qualified = false
			res.Err = &EvalError{Line: stmt.Line, Stmt: stmt.Src, Msg: err.Error()}
			break
		}
		if stmt.Logical {
			if !v.Truthy() && res.Qualified {
				res.Qualified = false
				res.FailedLine = stmt.Line
			}
			continue
		}
		expr := stmt.Expr
		for {
			p, ok := expr.(*parenNode)
			if !ok {
				break
			}
			expr = p.x
		}
		if _, isAssign := expr.(*assignNode); !isAssign && !v.IsStr {
			res.Score = v.Num
			res.HasScore = true
		}
	}
	// Collect user parameters in slot order (user_preferred_host1
	// before host2, …): the preference ranking the wizard applies
	// follows the order the user numbered the slots.
	names := make([]string, 0, len(st.uparams))
	for name := range st.uparams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := st.uparams[name]
		if !v.IsStr || v.Str == "" {
			continue
		}
		if strings.HasPrefix(name, deniedPrefix) {
			res.Denied = append(res.Denied, v.Str)
		} else {
			res.Preferred = append(res.Preferred, v.Str)
		}
	}
	return res
}

func (st *evalState) eval(n node) (Value, error) {
	switch v := n.(type) {
	case *numNode:
		return NumValue(v.val), nil
	case *strNode:
		return StrValue(v.val), nil
	case *parenNode:
		return st.eval(v.x)
	case *varNode:
		return st.lookup(v.name)
	case *unaryNode:
		x, err := st.eval(v.x)
		if err != nil {
			return Value{}, err
		}
		if x.IsStr {
			return Value{}, fmt.Errorf("cannot negate string %s", x)
		}
		return NumValue(-x.Num), nil
	case *assignNode:
		return st.assign(v)
	case *callNode:
		return st.call(v)
	case *binNode:
		return st.binary(v)
	}
	return Value{}, fmt.Errorf("internal: unknown node %T", n)
}

func (st *evalState) lookup(name string) (Value, error) {
	if IsUserParam(name) {
		if v, ok := st.uparams[name]; ok {
			return v, nil
		}
		return StrValue(""), nil // unset user param reads as empty
	}
	if st.env != nil {
		if v, ok := st.env.Params[name]; ok {
			return NumValue(v), nil
		}
		if s, ok := st.env.StrParams[name]; ok {
			return StrValue(s), nil
		}
	}
	if c, ok := constants[name]; ok {
		return NumValue(c), nil
	}
	if v, ok := st.temps[name]; ok {
		return v, nil
	}
	return Value{}, &undefinedError{name: name}
}

func (st *evalState) assign(a *assignNode) (Value, error) {
	if st.env != nil {
		if _, isParam := st.env.Params[a.name]; isParam {
			return Value{}, fmt.Errorf("cannot assign to server-side parameter %q", a.name)
		}
	}
	if _, isConst := constants[a.name]; isConst {
		return Value{}, fmt.Errorf("cannot assign to constant %q", a.name)
	}
	v, err := st.eval(a.rhs)
	if err != nil {
		// Thesis convenience: "user_denied_host1 = telesto" names a
		// host with a bare word. An undefined variable on the RHS of
		// a user-parameter assignment is taken as a host string.
		if undef, ok := err.(*undefinedError); ok && IsUserParam(a.name) {
			v = StrValue(undef.name)
		} else {
			return Value{}, err
		}
	}
	if IsUserParam(a.name) {
		if !v.IsStr {
			return Value{}, fmt.Errorf("user parameter %q needs a host name or address, got %s", a.name, v)
		}
		if st.uparams == nil {
			st.uparams = make(map[string]Value, 4)
		}
		st.uparams[a.name] = v
		return v, nil
	}
	if st.temps == nil {
		st.temps = make(map[string]Value, 4)
	}
	st.temps[a.name] = v
	return v, nil
}

func (st *evalState) binary(b *binNode) (Value, error) {
	l, err := st.eval(b.l)
	if err != nil {
		return Value{}, err
	}
	r, err := st.eval(b.r)
	if err != nil {
		return Value{}, err
	}
	boolVal := func(ok bool) Value {
		if ok {
			return NumValue(1)
		}
		return NumValue(0)
	}
	switch b.op {
	case tokAnd:
		return boolVal(l.Truthy() && r.Truthy()), nil
	case tokOr:
		return boolVal(l.Truthy() || r.Truthy()), nil
	case tokEQ:
		return boolVal(valueEqual(l, r)), nil
	case tokNE:
		return boolVal(!valueEqual(l, r)), nil
	}
	// Remaining operators are numeric-only.
	if l.IsStr || r.IsStr {
		return Value{}, fmt.Errorf("operator %v needs numbers, got %s and %s", b.op, l, r)
	}
	switch b.op {
	case tokLT:
		return boolVal(l.Num < r.Num), nil
	case tokLE:
		return boolVal(l.Num <= r.Num), nil
	case tokGT:
		return boolVal(l.Num > r.Num), nil
	case tokGE:
		return boolVal(l.Num >= r.Num), nil
	case tokPlus:
		return NumValue(l.Num + r.Num), nil
	case tokMinus:
		return NumValue(l.Num - r.Num), nil
	case tokStar:
		return NumValue(l.Num * r.Num), nil
	case tokSlash:
		if r.Num == 0 {
			return Value{}, fmt.Errorf("division by 0")
		}
		return NumValue(l.Num / r.Num), nil
	case tokCaret:
		return NumValue(math.Pow(l.Num, r.Num)), nil
	}
	return Value{}, fmt.Errorf("internal: unknown binary operator %v", b.op)
}

// valueEqual implements ==: numbers compare numerically, strings
// case-insensitively (host names), and mixed types are never equal.
func valueEqual(l, r Value) bool {
	if l.IsStr != r.IsStr {
		return false
	}
	if l.IsStr {
		return strings.EqualFold(l.Str, r.Str)
	}
	return l.Num == r.Num
}

// constants are the predefined constants of Appendix B.3.
var constants = map[string]float64{
	"pi":    math.Pi,
	"e":     math.E,
	"true":  1,
	"false": 0,
}

// builtin is a predefined math function (Appendix B.4).
type builtin struct {
	arity int
	fn    func(args []float64) (float64, error)
}

func unary(f func(float64) float64) builtin {
	return builtin{arity: 1, fn: func(a []float64) (float64, error) { return f(a[0]), nil }}
}

var builtins = map[string]builtin{
	"sin":  unary(math.Sin),
	"cos":  unary(math.Cos),
	"tan":  unary(math.Tan),
	"atan": unary(math.Atan),
	"exp":  unary(math.Exp),
	"sqrt": {arity: 1, fn: func(a []float64) (float64, error) {
		if a[0] < 0 {
			return 0, fmt.Errorf("sqrt of negative number %g", a[0])
		}
		return math.Sqrt(a[0]), nil
	}},
	"abs":   unary(math.Abs),
	"floor": unary(math.Floor),
	"ceil":  unary(math.Ceil),
	"int":   unary(math.Trunc),
	"log": {arity: 1, fn: func(a []float64) (float64, error) {
		if a[0] <= 0 {
			return 0, fmt.Errorf("log of non-positive number %g", a[0])
		}
		return math.Log(a[0]), nil
	}},
	"log10": {arity: 1, fn: func(a []float64) (float64, error) {
		if a[0] <= 0 {
			return 0, fmt.Errorf("log10 of non-positive number %g", a[0])
		}
		return math.Log10(a[0]), nil
	}},
	"pow": {arity: 2, fn: func(a []float64) (float64, error) { return math.Pow(a[0], a[1]), nil }},
	"min": {arity: 2, fn: func(a []float64) (float64, error) { return math.Min(a[0], a[1]), nil }},
	"max": {arity: 2, fn: func(a []float64) (float64, error) { return math.Max(a[0], a[1]), nil }},
}

// Builtins lists the available function names, for documentation and
// error messages.
func Builtins() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	return names
}

func (st *evalState) call(c *callNode) (Value, error) {
	b, ok := builtins[c.fn]
	if !ok {
		return Value{}, fmt.Errorf("unknown function %q", c.fn)
	}
	if len(c.args) != b.arity {
		return Value{}, fmt.Errorf("%s takes %d argument(s), got %d", c.fn, b.arity, len(c.args))
	}
	args := make([]float64, len(c.args))
	for i, a := range c.args {
		v, err := st.eval(a)
		if err != nil {
			return Value{}, err
		}
		if v.IsStr {
			return Value{}, fmt.Errorf("%s needs numeric arguments, got %s", c.fn, v)
		}
		args[i] = v.Num
	}
	out, err := b.fn(args)
	if err != nil {
		return Value{}, err
	}
	return NumValue(out), nil
}
