package reqlang

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzPlanExtract feeds arbitrary requirement sources through
// parse→plan and checks the planner's two contracts on every program
// it claims to resolve:
//
//  1. Plan never panics, whatever the parser accepts.
//  2. Soundness against probe environments: when a probe satisfies
//     every extracted constraint, evaluating the residual program from
//     Plan.Prefix yields exactly the full evaluation's Result; when it
//     violates any constraint, the full evaluation is unqualified. A
//     violation of either means the index would return wrong servers.
func FuzzPlanExtract(f *testing.F) {
	seeds := []string{
		"host_cpu_free > 0.5\n",
		"host_system_load1 < 2.0\nhost_memory_free > 10\n",
		"(host_cpu_free >= 0.5) && (host_security_level == 3)\n",
		"2.0 > host_system_load1\nhost_cpu_free * 100\n",
		"host_cpu_free > 0.5 || host_system_load1 < 1\n",
		"x = host_system_load1 * 2\nx < 4\n",
		"user_denied_host1 = \"bad\"\nhost_cpu_free > 0.1\n",
		"host_system_load1 != 2\n",
		"sqrt(host_cpu_free) > 0.5\n",
		"host_system_load1 > -1.5 && host_system_load5 <= 1e3\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		plan := prog.Plan(fuzzIndexable)
		if plan == nil {
			return
		}
		if plan.Prefix <= 0 || plan.Prefix > len(prog.Stmts) || len(plan.Cons) == 0 {
			t.Fatalf("malformed plan %+v for %q", plan, src)
		}
		// Build probe environments: one straddling each constraint's
		// boundary from both sides, plus extremes.
		probes := []map[string]float64{}
		for _, c := range plan.Cons {
			for _, delta := range []float64{-1, -0.25, 0, 0.25, 1} {
				probes = append(probes, probeEnv(plan, c.Var, c.Val+delta))
			}
		}
		probes = append(probes, probeEnv(plan, "", 0))
		for _, params := range probes {
			checkProbe(t, src, prog, plan, params)
		}
	})
}

// fuzzIndexable mirrors the selector's policy shape: status-style
// host_* names index, everything else does not.
func fuzzIndexable(name string) bool {
	return strings.HasPrefix(name, "host_")
}

// probeEnv binds every constrained variable to its constraint value,
// then overrides one variable with the probe value.
func probeEnv(plan *Plan, override string, v float64) map[string]float64 {
	params := make(map[string]float64)
	for _, c := range plan.Cons {
		params[c.Var] = c.Val
	}
	if override != "" {
		params[override] = v
	}
	return params
}

func checkProbe(t *testing.T, src string, prog *Program, plan *Plan, params map[string]float64) {
	t.Helper()
	env := &Env{Params: params}
	full := prog.Eval(env)
	pass := true
	for _, c := range plan.Cons {
		v, ok := params[c.Var]
		if !ok || !matchCons(c, v) {
			pass = false
			break
		}
	}
	if pass {
		resid := prog.EvalFrom(env, plan.Prefix)
		if !reflect.DeepEqual(resid, full) {
			t.Fatalf("source %q env %v:\nresidual from %d: %+v\nfull:            %+v",
				src, params, plan.Prefix, resid, full)
		}
	} else if full.Qualified {
		t.Fatalf("source %q env %v: constraints reject but full eval qualifies", src, params)
	}
}
