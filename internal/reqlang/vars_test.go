package reqlang

import (
	"reflect"
	"testing"
)

func TestFreeAndMentionedVars(t *testing.T) {
	src := "" +
		"minmem = 5\n" +
		"host_cpu_bogomips > 3000 * true\n" +
		"host_memory_free > minmem\n" +
		"score = host_cpu_bogomips * host_cpu_free\n" +
		"score\n"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Free: read but never assigned, excluding built-in constants
	// (true) and user params; minmem is assigned before use, score too.
	wantFree := []string{"host_cpu_bogomips", "host_cpu_free", "host_memory_free"}
	if got := p.FreeVars(); !reflect.DeepEqual(got, wantFree) {
		t.Errorf("FreeVars = %v, want %v", got, wantFree)
	}
	if got := p.FreeVariables(); !reflect.DeepEqual(got, wantFree) {
		t.Errorf("FreeVariables = %v, want %v", got, wantFree)
	}
	// Mentioned adds assignment targets: everything the evaluator may
	// look up or bind, so an env restricted to this set is
	// semantics-identical to a full env.
	wantMentioned := []string{"host_cpu_bogomips", "host_cpu_free", "host_memory_free", "minmem", "score"}
	if got := p.MentionedVars(); !reflect.DeepEqual(got, wantMentioned) {
		t.Errorf("MentionedVars = %v, want %v", got, wantMentioned)
	}
	for _, name := range wantMentioned {
		if !p.References(name) {
			t.Errorf("References(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"true", "pi", "host_system_load1", "user_preferred_host1"} {
		if p.References(name) {
			t.Errorf("References(%q) = true, want false", name)
		}
	}
}

func TestFreeVariablesReturnsACopy(t *testing.T) {
	p, err := Parse("host_cpu_free > 0.5\n")
	if err != nil {
		t.Fatal(err)
	}
	vars := p.FreeVariables()
	vars[0] = "mutated"
	if got := p.FreeVars()[0]; got != "host_cpu_free" {
		t.Errorf("mutating FreeVariables result leaked into the program: %q", got)
	}
}

func TestAssignedServerVarStaysMentioned(t *testing.T) {
	// Assigning to a server-side parameter is an eval-time error; the
	// name must still be in the mentioned set so the restricted env
	// carries the binding that triggers that exact error.
	p, err := Parse("host_cpu_free = 1\nhost_cpu_free > 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if !p.References("host_cpu_free") {
		t.Error("assigned server parameter missing from mentioned set")
	}
}
