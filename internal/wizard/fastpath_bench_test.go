package wizard

import (
	"context"
	"net"
	"testing"
	"time"

	"smartsock/internal/core"
	"smartsock/internal/proto"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
)

// stormMix is the cached request mix: a handful of distinct
// requirement texts, as produced by a fleet of applications each
// reusing its own requirement. After the first round every text is a
// cache hit.
var stormMix = []string{
	"host_cpu_bogomips > 3000\nhost_cpu_free > 0.5\nhost_memory_free > 5\nscore = host_cpu_bogomips * host_cpu_free\nscore\n",
	"host_cpu_bogomips > 2000\n",
	"host_memory_free > 50\nhost_cpu_free > 0.3\n",
	"host_system_load1 < 2\nhost_cpu_bogomips > 1500\n",
	"host_cpu_free > 0.8\nhost_memory_free > 10\n",
}

// stormSelector registers the 11-host benchmark set.
func stormSelector(b *testing.B) *core.Selector {
	b.Helper()
	db := store.New()
	hosts := []struct {
		name     string
		bogomips float64
		memMB    uint64
	}{
		{"apple", 4771, 512}, {"banana", 1730, 128}, {"cherry", 5321, 1024},
		{"date", 2900, 256}, {"elder", 3650, 512}, {"fig", 4100, 768},
		{"grape", 990, 64}, {"honey", 6020, 2048}, {"iris", 3105, 384},
		{"jade", 2450, 256}, {"kiwi", 5500, 1024},
	}
	for _, h := range hosts {
		db.PutSys(sysinfo.Idle(h.name, h.bogomips, h.memMB))
	}
	sel, err := core.New(db, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return sel
}

// BenchmarkWizardAnswer measures the in-process answer pipeline.
// "uncached" is the seed behaviour (every request re-parses);
// "cached" is the fast path.
func BenchmarkWizardAnswer(b *testing.B) {
	run := func(b *testing.B, cacheSize int) {
		w := startWizard(b, Config{Selector: stormSelector(b), CacheSize: cacheSize})
		reqs := make([]*proto.Request, len(stormMix))
		for i, detail := range stormMix {
			reqs[i] = &proto.Request{
				Seq: uint32(i), ServerNum: 4,
				Option: proto.OptPartialOK | proto.OptRankByExpr,
				Detail: detail,
			}
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if reply := w.Answer(ctx, reqs[i%len(reqs)]); reply.Err != "" {
				b.Fatal(reply.Err)
			}
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, -1) })
	b.Run("cached", func(b *testing.B) { run(b, 0) })
}

// BenchmarkWizardStorm measures end-to-end UDP request/reply
// throughput under a storm from 8 ping-pong clients. "seq-uncached"
// is the seed serving model (sequential loop, no cache);
// "workers8-cached" is the fast path. The req/s metric is the
// headline EXPERIMENTS.md number.
func BenchmarkWizardStorm(b *testing.B) {
	run := func(b *testing.B, workers, cacheSize int) {
		w := startWizard(b, Config{
			Selector:  stormSelector(b),
			Workers:   workers,
			CacheSize: cacheSize,
		})
		datagrams := make([][]byte, len(stormMix))
		for i, detail := range stormMix {
			datagrams[i] = proto.MarshalRequest(&proto.Request{
				Seq: uint32(i), ServerNum: 4,
				Option: proto.OptPartialOK | proto.OptRankByExpr,
				Detail: detail,
			})
		}
		const clients = 8
		errs := make(chan error, clients)
		counts := make([]int, clients)
		for i := 0; i < b.N; i++ {
			counts[i%clients]++
		}
		b.ResetTimer()
		start := time.Now()
		for c := 0; c < clients; c++ {
			go func(c, count int) {
				conn, err := net.Dial("udp", w.Addr())
				if err != nil {
					errs <- err
					return
				}
				defer conn.Close()
				buf := make([]byte, 64*1024)
				for i := 0; i < count; i++ {
					if _, err := conn.Write(datagrams[(c+i)%len(datagrams)]); err != nil {
						errs <- err
						return
					}
					if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
						errs <- err
						return
					}
					if _, err := conn.Read(buf); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}(c, counts[c])
		}
		for c := 0; c < clients; c++ {
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
	}
	b.Run("seq-uncached", func(b *testing.B) { run(b, 1, -1) })
	b.Run("seq-cached", func(b *testing.B) { run(b, 1, 0) })
	b.Run("workers8-cached", func(b *testing.B) { run(b, 8, 0) })
}
