package wizard

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"smartsock/internal/core"
	"smartsock/internal/netbatch"
	"smartsock/internal/proto"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
)

// stormMix is the cached request mix: a handful of distinct
// requirement texts, as produced by a fleet of applications each
// reusing its own requirement. After the first round every text is a
// cache hit.
var stormMix = []string{
	"host_cpu_bogomips > 3000\nhost_cpu_free > 0.5\nhost_memory_free > 5\nscore = host_cpu_bogomips * host_cpu_free\nscore\n",
	"host_cpu_bogomips > 2000\n",
	"host_memory_free > 50\nhost_cpu_free > 0.3\n",
	"host_system_load1 < 2\nhost_cpu_bogomips > 1500\n",
	"host_cpu_free > 0.8\nhost_memory_free > 10\n",
}

// stormSelector registers the 11-host benchmark set.
func stormSelector(b testing.TB) *core.Selector {
	b.Helper()
	db := store.New()
	hosts := []struct {
		name     string
		bogomips float64
		memMB    uint64
	}{
		{"apple", 4771, 512}, {"banana", 1730, 128}, {"cherry", 5321, 1024},
		{"date", 2900, 256}, {"elder", 3650, 512}, {"fig", 4100, 768},
		{"grape", 990, 64}, {"honey", 6020, 2048}, {"iris", 3105, 384},
		{"jade", 2450, 256}, {"kiwi", 5500, 1024},
	}
	for _, h := range hosts {
		db.PutSys(sysinfo.Idle(h.name, h.bogomips, h.memMB))
	}
	sel, err := core.New(db, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return sel
}

// BenchmarkWizardAnswer measures the in-process answer pipeline.
// "uncached" is the seed behaviour (every request re-parses);
// "cached" is the fast path.
func BenchmarkWizardAnswer(b *testing.B) {
	run := func(b *testing.B, cacheSize int) {
		w := startWizard(b, Config{Selector: stormSelector(b), CacheSize: cacheSize})
		reqs := make([]*proto.Request, len(stormMix))
		for i, detail := range stormMix {
			reqs[i] = &proto.Request{
				Seq: uint32(i), ServerNum: 4,
				Option: proto.OptPartialOK | proto.OptRankByExpr,
				Detail: detail,
			}
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if reply := w.Answer(ctx, reqs[i%len(reqs)]); reply.Err != "" {
				b.Fatal(reply.Err)
			}
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, -1) })
	b.Run("cached", func(b *testing.B) { run(b, 0) })
}

// stormDatagrams marshals the storm mix once per run.
func stormDatagrams() [][]byte {
	datagrams := make([][]byte, len(stormMix))
	for i, detail := range stormMix {
		datagrams[i] = proto.MarshalRequest(&proto.Request{
			Seq: uint32(i), ServerNum: 4,
			Option: proto.OptPartialOK | proto.OptRankByExpr,
			Detail: detail,
		})
	}
	return datagrams
}

// splitAcross spreads b.N requests over the client goroutines.
func splitAcross(n, clients int) []int {
	counts := make([]int, clients)
	for i := 0; i < n; i++ {
		counts[i%clients]++
	}
	return counts
}

// BenchmarkWizardStorm measures end-to-end UDP request/reply
// throughput under a storm from 8 clients. "seq-uncached" is the
// seed serving model (sequential loop, no cache, one datagram per
// syscall); "seq-cached" adds the requirement cache;
// "workers8-cached" adds 8 worker loops sharing one socket, still
// under ping-pong clients (one request in flight per client — the
// load shape that used to invert below seq because REUSEPORT
// sharding starves idle shards); "shards8-batched" is the full
// datagram plane: 8 SO_REUSEPORT shards with batch-64 endpoints,
// driven by windowed clients that each keep 64 requests in flight
// through their own batched endpoint, so the server's
// recvmmsg/sendmmsg actually amortise. The req/s metrics are the
// headline EXPERIMENTS.md numbers.
func BenchmarkWizardStorm(b *testing.B) {
	const clients = 8

	run := func(b *testing.B, workers, cacheSize, batch, shards int) {
		w := startWizard(b, Config{
			Selector:  stormSelector(b),
			Workers:   workers,
			CacheSize: cacheSize,
			Batch:     batch,
			Shards:    shards,
		})
		datagrams := stormDatagrams()
		errs := make(chan error, clients)
		counts := splitAcross(b.N, clients)
		b.ResetTimer()
		start := time.Now()
		for c := 0; c < clients; c++ {
			go func(c, count int) {
				conn, err := net.Dial("udp", w.Addr())
				if err != nil {
					errs <- err
					return
				}
				defer conn.Close()
				buf := make([]byte, 64*1024)
				for i := 0; i < count; i++ {
					if _, err := conn.Write(datagrams[(c+i)%len(datagrams)]); err != nil {
						errs <- err
						return
					}
					if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
						errs <- err
						return
					}
					if _, err := conn.Read(buf); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}(c, counts[c])
		}
		for c := 0; c < clients; c++ {
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
	}

	// runWindowed is the batched-client harness: every client keeps a
	// window of requests in flight over its own netbatch endpoint, so
	// datagrams queue server-side and recvmmsg drains them in bulk. A
	// read timeout reopens the window (resending through loopback
	// drops), so the run always completes.
	runWindowed := func(b *testing.B, workers, cacheSize, batch, shards int) {
		w := startWizard(b, Config{
			Selector:  stormSelector(b),
			Workers:   workers,
			CacheSize: cacheSize,
			Batch:     batch,
			Shards:    shards,
		})
		datagrams := stormDatagrams()
		const window = 64
		errs := make(chan error, clients)
		counts := splitAcross(b.N, clients)
		b.ResetTimer()
		start := time.Now()
		for c := 0; c < clients; c++ {
			go func(count int) {
				raddr, err := net.ResolveUDPAddr("udp", w.Addr())
				if err != nil {
					errs <- err
					return
				}
				conn, err := net.DialUDP("udp", nil, raddr)
				if err != nil {
					errs <- err
					return
				}
				defer conn.Close()
				cep, err := netbatch.Wrap(conn, netbatch.Options{Batch: window})
				if err != nil {
					errs <- err
					return
				}
				out := netbatch.NewBatch(window, 256)
				in := netbatch.NewBatch(window, 64*1024)
				sent, recvd := 0, 0
				for recvd < count {
					if inflight := sent - recvd; sent < count && inflight < window {
						k := min(window-inflight, count-sent)
						for i := 0; i < k; i++ {
							out[i].Buf = append(out[i].Buf[:0], datagrams[(sent+i)%len(datagrams)]...)
							out[i].Addr = netip.AddrPort{} // connected socket
						}
						n, err := cep.WriteBatch(out[:k])
						if err != nil {
							errs <- err
							return
						}
						sent += n
						continue
					}
					if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
						errs <- err
						return
					}
					n, err := cep.ReadBatch(in)
					if err != nil {
						// Datagram loss: reopen the window and resend.
						sent = recvd
						continue
					}
					recvd += n
					if recvd > count {
						recvd = count
					}
				}
				errs <- nil
			}(counts[c])
		}
		for c := 0; c < clients; c++ {
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
	}

	b.Run("seq-uncached", func(b *testing.B) { run(b, 1, -1, 1, 1) })
	b.Run("seq-cached", func(b *testing.B) { run(b, 1, 0, 1, 1) })
	b.Run("workers8-cached", func(b *testing.B) { run(b, 8, 0, 32, 1) })
	b.Run("shards8-batched", func(b *testing.B) { runWindowed(b, 8, 0, 64, 8) })
}
