package wizard

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"smartsock/internal/core"
	"smartsock/internal/proto"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
)

func testSelector(t testing.TB) (*core.Selector, *store.DB) {
	t.Helper()
	db := store.New()
	db.PutSys(sysinfo.Idle("fastbox", 4771, 512))
	db.PutSys(sysinfo.Idle("slowbox", 1730, 128))
	sel, err := core.New(db, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return sel, db
}

func startWizard(t testing.TB, cfg Config) *Wizard {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go w.Run(ctx)
	t.Cleanup(cancel)
	return w
}

// ask sends one request datagram and decodes the reply.
func ask(t *testing.T, addr string, req *proto.Request) *proto.Reply {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(proto.MarshalRequest(req)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("no reply: %v", err)
	}
	reply, err := proto.UnmarshalReply(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestWizardAnswersOverUDP(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{Selector: sel})
	reply := ask(t, w.Addr(), &proto.Request{
		Seq:       777,
		ServerNum: 1,
		Detail:    "host_cpu_bogomips > 4000",
	})
	if reply.Seq != 777 {
		t.Errorf("Seq = %d, want 777", reply.Seq)
	}
	if reply.Err != "" {
		t.Fatalf("wizard error: %s", reply.Err)
	}
	if !reflect.DeepEqual(reply.Servers, []string{"fastbox"}) {
		t.Errorf("Servers = %v", reply.Servers)
	}
	if w.Handled() != 1 {
		t.Errorf("Handled = %d", w.Handled())
	}
}

func TestWizardReportsParseErrors(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{Selector: sel})
	reply := ask(t, w.Addr(), &proto.Request{Seq: 1, ServerNum: 1, Detail: "a <"})
	if reply.Err == "" {
		t.Error("expected a parse error in the reply")
	}
	if w.Rejected() != 1 {
		t.Errorf("Rejected = %d", w.Rejected())
	}
}

func TestWizardReportsShortfall(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{Selector: sel})
	reply := ask(t, w.Addr(), &proto.Request{Seq: 2, ServerNum: 10, Detail: "host_cpu_free > 0.5"})
	if reply.Err == "" {
		t.Error("expected shortfall error without OptPartialOK")
	}
	reply = ask(t, w.Addr(), &proto.Request{
		Seq: 3, ServerNum: 10, Option: proto.OptPartialOK, Detail: "host_cpu_free > 0.5",
	})
	if reply.Err != "" || len(reply.Servers) != 2 {
		t.Errorf("partial reply = %+v", reply)
	}
}

func TestWizardTemplates(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{
		Selector: sel,
		Templates: map[string]string{
			"cpu-intensive": "host_cpu_bogomips > 4000\nhost_cpu_free > 0.9\n",
		},
	})
	reply := ask(t, w.Addr(), &proto.Request{
		Seq: 4, ServerNum: 1, Option: proto.OptTemplate, Detail: "cpu-intensive",
	})
	if reply.Err != "" {
		t.Fatalf("template request failed: %s", reply.Err)
	}
	if !reflect.DeepEqual(reply.Servers, []string{"fastbox"}) {
		t.Errorf("Servers = %v", reply.Servers)
	}
	reply = ask(t, w.Addr(), &proto.Request{
		Seq: 5, ServerNum: 1, Option: proto.OptTemplate, Detail: "no-such-template",
	})
	if reply.Err == "" {
		t.Error("unknown template accepted")
	}
}

func TestWizardDistributedModeCallsUpdate(t *testing.T) {
	sel, db := testSelector(t)
	var updates atomic.Int32
	w := startWizard(t, Config{
		Selector: sel,
		Update: func(ctx context.Context) error {
			updates.Add(1)
			// Simulate a pull that delivers one more server.
			db.PutSys(sysinfo.Idle("latecomer", 9000, 1024))
			return nil
		},
	})
	reply := ask(t, w.Addr(), &proto.Request{Seq: 6, ServerNum: 1, Detail: "host_cpu_bogomips > 8000"})
	if reply.Err != "" {
		t.Fatalf("wizard error: %s", reply.Err)
	}
	if !reflect.DeepEqual(reply.Servers, []string{"latecomer"}) {
		t.Errorf("Servers = %v: update result not visible to matching", reply.Servers)
	}
	if updates.Load() != 1 {
		t.Errorf("updates = %d, want 1 per request", updates.Load())
	}
}

func TestWizardIgnoresGarbageDatagrams(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{Selector: sel})
	conn, err := net.Dial("udp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("garbage"))
	// The wizard must still answer a valid request afterwards.
	reply := ask(t, w.Addr(), &proto.Request{Seq: 9, ServerNum: 1, Detail: "1 > 0"})
	if reply.Err != "" || len(reply.Servers) != 1 {
		t.Errorf("reply after garbage = %+v", reply)
	}
}

func TestAnswerSanitizesErrors(t *testing.T) {
	sel, _ := testSelector(t)
	w, err := New(Config{Addr: "127.0.0.1:0", Selector: sel})
	if err != nil {
		t.Fatal(err)
	}
	reply := w.Answer(context.Background(), &proto.Request{Seq: 1, ServerNum: 1, Detail: "a <\nb <"})
	if reply.Err == "" {
		t.Fatal("expected error")
	}
	if got, err := proto.MarshalReply(reply); err != nil || got == nil {
		t.Errorf("sanitized reply not marshalable: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Addr: "127.0.0.1:0"}); err == nil {
		t.Error("accepted nil selector")
	}
}

func TestVarStatsAccumulate(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{Selector: sel})
	ask(t, w.Addr(), &proto.Request{Seq: 1, ServerNum: 1, Option: proto.OptPartialOK,
		Detail: "host_cpu_free > 0.9\nhost_memory_free > 5\n"})
	ask(t, w.Addr(), &proto.Request{Seq: 2, ServerNum: 1, Option: proto.OptPartialOK,
		Detail: "host_cpu_free > 0.5"})
	stats := w.VarStats()
	if stats["host_cpu_free"] != 2 {
		t.Errorf("host_cpu_free count = %d, want 2", stats["host_cpu_free"])
	}
	if stats["host_memory_free"] != 1 {
		t.Errorf("host_memory_free count = %d, want 1", stats["host_memory_free"])
	}
	// The returned map is a copy: mutating it must not poison stats.
	stats["host_cpu_free"] = 99
	if w.VarStats()["host_cpu_free"] != 2 {
		t.Error("VarStats exposed internal state")
	}
}

func TestWizardHandlesConcurrentClients(t *testing.T) {
	// The wizard serves requests sequentially (§3.6.1), but many
	// clients may fire at once; every one must get its own reply with
	// its own sequence number.
	sel, _ := testSelector(t)
	w := startWizard(t, Config{Selector: sel})
	const clients = 20
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			conn, err := net.Dial("udp", w.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			req := &proto.Request{Seq: uint32(1000 + i), ServerNum: 1,
				Option: proto.OptPartialOK, Detail: "host_cpu_free > 0.5"}
			if _, err := conn.Write(proto.MarshalRequest(req)); err != nil {
				errs <- err
				return
			}
			buf := make([]byte, 4096)
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, err := conn.Read(buf)
			if err != nil {
				errs <- err
				return
			}
			reply, err := proto.UnmarshalReply(buf[:n])
			if err != nil {
				errs <- err
				return
			}
			if reply.Seq != uint32(1000+i) {
				errs <- fmt.Errorf("client %d got seq %d", i, reply.Seq)
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	if w.Handled() != clients {
		t.Errorf("Handled = %d, want %d", w.Handled(), clients)
	}
}
