package wizard

// Burst-survival regression suite for the overload-protected serve
// path: a 4× storm through the sharded listener must degrade into
// explicit "overloaded, retry-after" sheds instead of silent loss or
// collapse, and the per-source rate limiter must isolate a runaway
// client without punishing well-behaved ones.

import (
	"context"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smartsock/internal/overload"
	"smartsock/internal/proto"
)

// slowUpdate caps the wizard's capacity: each answered request pays
// one call, so workers×(1/delay) is the service rate and an unpaced
// loopback storm is comfortably past 4× of it.
func slowUpdate(delay time.Duration) UpdateFunc {
	return func(context.Context) error {
		time.Sleep(delay)
		return nil
	}
}

// stormCounts classifies the replies one open-loop storm socket got.
type stormCounts struct {
	answered   uint64 // normal replies (including ordinary errors)
	shed       uint64 // "overloaded, retry-after" replies
	badHint    uint64 // shed replies whose hint is missing or wrong
	wrongDecod uint64 // undecodable reply datagrams
}

// stormSocket blasts n requests open-loop (no waiting between sends)
// from its own socket and drains replies until none arrive for
// drainIdle. Sequence numbers start at base so sockets never collide.
func stormSocket(t *testing.T, addr string, base uint32, n int, wantHint time.Duration, drainIdle time.Duration) stormCounts {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var counts stormCounts
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64*1024)
		for {
			if err := conn.SetReadDeadline(time.Now().Add(drainIdle)); err != nil {
				return
			}
			m, err := conn.Read(buf)
			if err != nil {
				return // idle long enough: the storm's replies are drained
			}
			reply, err := proto.UnmarshalReply(buf[:m])
			if err != nil {
				atomic.AddUint64(&counts.wrongDecod, 1)
				continue
			}
			if after, ok := proto.RetryAfter(reply.Err); ok {
				atomic.AddUint64(&counts.shed, 1)
				if after != wantHint {
					atomic.AddUint64(&counts.badHint, 1)
				}
				continue
			}
			atomic.AddUint64(&counts.answered, 1)
		}
	}()

	req := &proto.Request{ServerNum: 1, Detail: "host_cpu_bogomips > 4000"}
	for i := 0; i < n; i++ {
		req.Seq = base + uint32(i)
		if _, err := conn.Write(proto.MarshalRequest(req)); err != nil {
			t.Error(err)
			break
		}
	}
	wg.Wait()
	return counts
}

// TestOverloadBurstSurvival is the fixed-shape 4× storm: capacity is
// pinned by a slow per-request update, the storm is open-loop and
// well past it, and survival means (a) the wizard keeps answering,
// (b) the excess surfaces as explicit shed replies, every one
// carrying the configured retry-after hint, and (c) nothing deadlocks
// or leaks under -race.
func TestOverloadBurstSurvival(t *testing.T) {
	if testing.Short() {
		t.Skip("storm test")
	}
	sel, _ := testSelector(t)
	gate := overload.New(overload.Config{
		MaxQueue: 64,
		Target:   2 * time.Millisecond,
		Interval: 20 * time.Millisecond,
	})
	w := startWizard(t, Config{
		Selector: sel,
		Update:   slowUpdate(200 * time.Microsecond), // ≈20k req/s ceiling
		Workers:  4, Batch: 16, Shards: 4,
		Overload: gate,
	})

	// 8 sockets × 500 unpaced requests ≫ 4× the pinned capacity.
	const sockets, perSocket = 8, 500
	var wg sync.WaitGroup
	results := make([]stormCounts, sockets)
	for s := 0; s < sockets; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s] = stormSocket(t, w.Addr(), uint32(s*perSocket), perSocket,
				gate.RetryAfter(), 300*time.Millisecond)
		}(s)
	}
	wg.Wait()

	var total stormCounts
	for _, c := range results {
		total.answered += c.answered
		total.shed += c.shed
		total.badHint += c.badHint
		total.wrongDecod += c.wrongDecod
	}
	if total.answered == 0 {
		t.Error("storm starved every request: no normal replies at all")
	}
	if total.shed == 0 {
		t.Errorf("4x storm produced no shed replies (answered %d)", total.answered)
	}
	if total.badHint != 0 {
		t.Errorf("%d shed replies carried a missing or wrong retry-after hint (want %v)",
			total.badHint, gate.RetryAfter())
	}
	if total.wrongDecod != 0 {
		t.Errorf("%d reply datagrams did not decode", total.wrongDecod)
	}
	if gate.Shed() == 0 {
		t.Error("overload_shed stayed zero through a 4x storm")
	}
	if got := total.shed; uint64(gate.Shed()) < got {
		t.Errorf("overload_shed = %d, but clients saw %d shed replies", gate.Shed(), got)
	}
}

// TestOverloadHotSourceIsolation pins the rate limiter's fairness
// story: one runaway source blasting open-loop is clamped to its
// token bucket while seven well-behaved sources, paced under their
// per-source rate, see (almost) no drops — the hot source cannot
// spend the cold sources' budget.
func TestOverloadHotSourceIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("storm test")
	}
	sel, _ := testSelector(t)
	gate := overload.New(overload.Config{
		MaxQueue: 512,
		Rate:     300, // per-source requests/sec
		Burst:    40,
	})
	w := startWizard(t, Config{
		Selector: sel,
		Workers:  4, Batch: 16, Shards: 4,
		Overload: gate,
	})

	var wg sync.WaitGroup
	var hot stormCounts
	wg.Add(1)
	go func() {
		defer wg.Done()
		hot = stormSocket(t, w.Addr(), 1_000_000, 3000, gate.RetryAfter(), 300*time.Millisecond)
	}()

	// Cold sources: 7 sockets, each pacing 40 requests at 5ms (200/s,
	// under both the 300/s rate and the 40-token burst). A drop is a
	// shed reply or no reply at all within the deadline.
	const coldSources, coldRequests = 7, 40
	var coldDrops, coldSent atomic.Uint64
	for s := 0; s < coldSources; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			conn, err := net.Dial("udp", w.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			buf := make([]byte, 64*1024)
			req := &proto.Request{ServerNum: 1, Detail: "host_cpu_bogomips > 4000"}
			for i := 0; i < coldRequests; i++ {
				req.Seq = uint32(2_000_000 + s*coldRequests + i)
				coldSent.Add(1)
				if _, err := conn.Write(proto.MarshalRequest(req)); err != nil {
					t.Error(err)
					return
				}
				dropped := true
				deadline := time.Now().Add(time.Second)
				for time.Now().Before(deadline) {
					if err := conn.SetReadDeadline(deadline); err != nil {
						break
					}
					m, err := conn.Read(buf)
					if err != nil {
						break
					}
					reply, err := proto.UnmarshalReply(buf[:m])
					if err != nil || reply.Seq != req.Seq {
						continue
					}
					if _, shed := proto.RetryAfter(reply.Err); !shed {
						dropped = false
					}
					break
				}
				if dropped {
					coldDrops.Add(1)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(s)
	}
	wg.Wait()

	if gate.RateLimited() == 0 {
		t.Error("hot source never tripped the per-source limiter")
	}
	if hot.shed == 0 {
		t.Error("hot source saw no shed replies")
	}
	if hot.badHint != 0 {
		t.Errorf("%d hot-source shed replies carried a bad retry-after hint", hot.badHint)
	}
	// The isolation bound: cold sources lose under 1% of their
	// requests while the hot source is being clamped next to them.
	sent, drops := coldSent.Load(), coldDrops.Load()
	if drops*100 >= sent {
		t.Errorf("cold sources dropped %d of %d requests (≥1%%); hot source not isolated",
			drops, sent)
	}
}

// TestOverloadSoak is the nightly goroutine-leak soak: run a 4× storm
// against the protected wizard for OVERLOAD_SOAK (a duration), then
// tear everything down and require the goroutine count to return to
// its pre-test baseline. Skipped unless OVERLOAD_SOAK is set — CI's
// nightly workflow runs it at 60s.
func TestOverloadSoak(t *testing.T) {
	durText := os.Getenv("OVERLOAD_SOAK")
	if durText == "" {
		t.Skip("set OVERLOAD_SOAK=60s to run the soak")
	}
	dur, err := time.ParseDuration(durText)
	if err != nil {
		t.Fatalf("bad OVERLOAD_SOAK %q: %v", durText, err)
	}
	baseline := runtime.NumGoroutine()

	sel, _ := testSelector(t)
	gate := overload.New(overload.Config{
		MaxQueue: 64,
		Rate:     5000,
	})
	w, err := New(Config{
		Addr:     "127.0.0.1:0",
		Selector: sel,
		Update:   slowUpdate(100 * time.Microsecond),
		Workers:  4, Batch: 16, Shards: 4,
		Overload: gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := w.Run(ctx); err != nil {
			t.Errorf("wizard run: %v", err)
		}
	}()

	stop := time.Now().Add(dur)
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			conn, err := net.Dial("udp", w.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			go func() { // drain replies so the socket buffer never wedges
				buf := make([]byte, 64*1024)
				for {
					if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
						return
					}
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
			req := &proto.Request{ServerNum: 1, Detail: "host_cpu_bogomips > 4000"}
			for i := uint32(0); time.Now().Before(stop); i++ {
				req.Seq = uint32(s)<<24 | i
				if _, err := conn.Write(proto.MarshalRequest(req)); err != nil {
					return
				}
				if i%64 == 0 {
					time.Sleep(time.Millisecond) // ~4× capacity, not ∞×
				}
			}
		}(s)
	}
	wg.Wait()
	cancel()
	<-done

	// Goroutine growth check: storm goroutines, serve loops and reply
	// drainers must all be gone. Allow a little slack for runtime
	// housekeeping, and give stragglers time to park.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			t.Logf("soak done: %v at ~4x capacity, shed %d, ratelimited %d, goroutines %d→%d",
				dur, gate.Shed(), gate.RateLimited(), baseline, n)
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines grew %d→%d after soak teardown\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(100 * time.Millisecond)
	}
}
