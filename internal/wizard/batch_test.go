package wizard

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"smartsock/internal/chaos"
	"smartsock/internal/netbatch"
	"smartsock/internal/proto"
)

// stormRequests builds a deterministic request mix covering every
// reply shape the wizard produces: full answers, partial answers,
// shortfall errors, parse errors, template hits and template misses.
// Each request's Seq is its index, so replies key back unambiguously.
func stormRequests(n int) []*proto.Request {
	shapes := []proto.Request{
		{ServerNum: 1, Detail: "host_cpu_bogomips > 4000"},
		{ServerNum: 2, Option: proto.OptPartialOK, Detail: "host_cpu_free > 0.5"},
		{ServerNum: 10, Detail: "host_cpu_free > 0.5"}, // shortfall error
		{ServerNum: 1, Detail: "a <"},                  // parse error
		{ServerNum: 1, Option: proto.OptTemplate, Detail: "fast"},
		{ServerNum: 1, Option: proto.OptTemplate, Detail: "no-such-template"},
		{ServerNum: 1, Detail: "host_memory_total >= 128"},
	}
	reqs := make([]*proto.Request, n)
	for i := range reqs {
		r := shapes[i%len(shapes)]
		r.Seq = uint32(i)
		reqs[i] = &r
	}
	return reqs
}

var stormTemplates = map[string]string{"fast": "host_cpu_bogomips > 4000\n"}

// askRaw sends req over conn until the matching raw reply datagram
// arrives, resending through datagram loss. Replies for other
// sequence numbers (duplicates from a chaos run) are discarded.
func askRaw(t *testing.T, conn net.Conn, req *proto.Request) []byte {
	t.Helper()
	payload := proto.MarshalRequest(req)
	buf := make([]byte, 64*1024)
	for attempt := 0; attempt < 50; attempt++ {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		for {
			n, err := conn.Read(buf)
			if err != nil {
				break // deadline: resend
			}
			reply, err := proto.UnmarshalReply(buf[:n])
			if err != nil {
				continue
			}
			if reply.Seq == req.Seq {
				return append([]byte(nil), buf[:n]...)
			}
		}
	}
	t.Fatalf("no reply for seq %d after retries", req.Seq)
	return nil
}

// collectReplies fans reqs across clients concurrent sockets against
// addr and returns the raw reply datagram per sequence number. wrap,
// when set, interposes on each client socket (chaos injection).
func collectReplies(t *testing.T, addr string, reqs []*proto.Request, clients int, wrap func(net.Conn) net.Conn) map[uint32][]byte {
	t.Helper()
	out := make(map[uint32][]byte, len(reqs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("udp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			if wrap != nil {
				conn = wrap(conn)
			}
			for i := c; i < len(reqs); i += clients {
				raw := askRaw(t, conn, reqs[i])
				mu.Lock()
				out[reqs[i].Seq] = raw
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return out
}

// TestBatchedShardsMatchSequential is the differential suite: the
// batched, sharded, multi-worker wizard must produce byte-identical
// reply datagrams — including error replies — to the thesis-faithful
// sequential one for the same request stream.
func TestBatchedShardsMatchSequential(t *testing.T) {
	reqs := stormRequests(140)

	run := func(cfg Config) map[uint32][]byte {
		sel, _ := testSelector(t)
		cfg.Selector = sel
		cfg.Templates = stormTemplates
		w := startWizard(t, cfg)
		return collectReplies(t, w.Addr(), reqs, 7, nil)
	}
	seq := run(Config{Workers: 1, Batch: 1, Shards: 1})
	batched := run(Config{Workers: 4, Batch: 32, Shards: 4})

	if len(seq) != len(reqs) || len(batched) != len(reqs) {
		t.Fatalf("collected %d sequential and %d batched replies, want %d", len(seq), len(batched), len(reqs))
	}
	for _, req := range reqs {
		if !bytes.Equal(seq[req.Seq], batched[req.Seq]) {
			t.Errorf("seq %d: sequential reply %q != batched reply %q",
				req.Seq, seq[req.Seq], batched[req.Seq])
		}
	}
}

// TestChaosStormOverShardedListener runs a loss+duplication storm
// against the sharded batched listener: every request must still get
// its reply through retries, and duplicate deliveries must surface as
// extra handled requests, not wedged serve loops.
func TestChaosStormOverShardedListener(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{
		Selector: sel, Templates: stormTemplates,
		Workers: 4, Batch: 16, Shards: 4,
	})
	in := chaos.New(chaos.Config{
		Seed:     chaos.SeedFromEnv(42),
		DropRate: 0.2,
		DupRate:  0.2,
	})
	reqs := stormRequests(120)
	got := collectReplies(t, w.Addr(), reqs, 6, func(c net.Conn) net.Conn {
		return in.WrapConn(c)
	})
	if len(got) != len(reqs) {
		t.Fatalf("storm resolved %d replies, want %d", len(got), len(reqs))
	}
	if w.Handled() < uint64(len(reqs)) {
		t.Errorf("Handled = %d, want ≥ %d", w.Handled(), len(reqs))
	}
}

// flakyEndpoint fails its first writes with the errno a saturated
// send buffer produces, then recovers. It stands in for the kernel
// refusing replies under pressure.
type flakyEndpoint struct {
	netbatch.Endpoint
	failures atomic.Int32
}

func (f *flakyEndpoint) WriteBatch(ms []netbatch.Message) (int, error) {
	if f.failures.Add(-1) >= 0 {
		return 0, fmt.Errorf("writebatch: %w", syscall.ENOBUFS)
	}
	return f.Endpoint.WriteBatch(ms)
}

// TestReplyWriteErrorKeepsServing injects ENOBUFS-style write
// failures into the serve loop's endpoint: the failed replies must be
// counted in wizard_reply_errors and the loop must keep answering —
// a transient kernel refusal is datagram loss, not a crash.
func TestReplyWriteErrorKeepsServing(t *testing.T) {
	sel, _ := testSelector(t)
	w, err := New(Config{Addr: "127.0.0.1:0", Selector: sel, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyEndpoint{}
	flaky.failures.Store(2)
	w.testWrap = func(ep netbatch.Endpoint) netbatch.Endpoint {
		flaky.Endpoint = ep
		return flaky
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go w.Run(ctx)

	conn, err := net.Dial("udp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	raw := askRaw(t, conn, &proto.Request{Seq: 9, ServerNum: 1, Detail: "host_cpu_bogomips > 4000"})
	reply, err := proto.UnmarshalReply(raw)
	if err != nil || reply.Err != "" {
		t.Fatalf("reply after injected write errors = %q, %v", raw, err)
	}
	if w.ReplyErrors() == 0 {
		t.Error("injected write failures not counted in wizard_reply_errors")
	}
	if flaky.failures.Load() >= 0 {
		t.Error("serve loop never retried past the injected failures")
	}
}

// TestRecvBatchObserved pins the tentpole's observable win: with
// batching on, a burst of queued requests must eventually be drained
// more than one datagram per syscall, visible as histogram sum >
// count in wizard_recv_batch.
func TestRecvBatchObserved(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{Selector: sel, Batch: 32})
	conn, err := net.Dial("udp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := proto.MarshalRequest(&proto.Request{Seq: 1, ServerNum: 1, Detail: "1 > 0"})
	buf := make([]byte, 4096)
	for round := 0; round < 100; round++ {
		// Burst without reading so datagrams queue on the socket, then
		// drain the replies.
		const burst = 24
		for i := 0; i < burst; i++ {
			if _, err := conn.Write(payload); err != nil {
				t.Fatal(err)
			}
		}
		if err := conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		if w.recvBatch.Sum() > int64(w.recvBatch.Count()) {
			return // some syscall moved more than one datagram
		}
	}
	t.Fatalf("recv batches stayed at 1 datagram/syscall over every round (count=%d sum=%d)",
		w.recvBatch.Count(), w.recvBatch.Sum())
}
