package wizard

import (
	"context"
	"sync"
	"testing"

	"smartsock/internal/obs"
	"smartsock/internal/proto"
)

// TestAllocsAnswerCached pins the wizard's repeat-request fast path at
// one allocation (the reply) with the obs registry fully live:
// request counter, outcome classification and latency histogram all
// recording. Observability must not cost the hot path anything.
func TestAllocsAnswerCached(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{Selector: sel, Obs: obs.NewRegistry()})
	req := &proto.Request{
		Seq: 1, ServerNum: 1,
		Option: proto.OptPartialOK | proto.OptRankByExpr,
		Detail: "host_cpu_bogomips > 2000\nscore = host_cpu_bogomips\nscore\n",
	}
	ctx := context.Background()
	// Prime: first call parses and caches the requirement.
	if reply := w.Answer(ctx, req); reply.Err != "" {
		t.Fatal(reply.Err)
	}
	got := testing.AllocsPerRun(200, func() {
		if reply := w.Answer(ctx, req); reply.Err != "" {
			t.Fatal(reply.Err)
		}
	})
	if got > 1 {
		t.Errorf("cached Answer allocates %.1f, pinned at 1", got)
	}
}

// TestStatsConsistentUnderLoad reads Stats while concurrent workers
// answer a mix of good and rejected requests. The snapshot must never
// show more rejections than handled requests: rejected is incremented
// after handled on the write side, so a reader loading rejected first
// can only undercount rejections, never overshoot. Run under -race
// this also proves Stats is a sound concurrent read of the obs
// counters.
func TestStatsConsistentUnderLoad(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{Selector: sel, Workers: 4, Obs: obs.NewRegistry()})

	good := proto.MarshalRequest(&proto.Request{
		Seq: 1, ServerNum: 1,
		Option: proto.OptPartialOK,
		Detail: "host_cpu_bogomips > 2000\n",
	})
	bad := proto.MarshalRequest(&proto.Request{
		Seq: 2, ServerNum: 1,
		Detail: "this is ((( not a requirement\n",
	})

	ctx := context.Background()
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var req proto.Request
			var reply proto.Reply
			for j := 0; j < perWriter; j++ {
				if (i+j)%3 == 0 {
					w.handle(ctx, bad, &req, &reply)
				} else {
					w.handle(ctx, good, &req, &reply)
				}
			}
		}(i)
	}
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				s := w.Stats()
				if s.Rejected > s.Handled {
					t.Errorf("stats snapshot inverted: rejected=%d > handled=%d", s.Rejected, s.Handled)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()

	s := w.Stats()
	if want := uint64(writers * perWriter); s.Handled != want {
		t.Errorf("handled = %d, want %d", s.Handled, want)
	}
	wantRejected := uint64(0)
	for i := 0; i < writers; i++ {
		for j := 0; j < perWriter; j++ {
			if (i+j)%3 == 0 {
				wantRejected++
			}
		}
	}
	if s.Rejected != wantRejected {
		t.Errorf("rejected = %d, want %d", s.Rejected, wantRejected)
	}
}
