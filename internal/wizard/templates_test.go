package wizard

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"smartsock/internal/proto"
)

func TestParseTemplates(t *testing.T) {
	src := `# site-wide requirement templates
[cpu-intensive]
host_cpu_bogomips > 4000
host_cpu_free > 0.9

[data-intensive]
monitor_network_bw > 6   # Mbps
host_disk_allreq < 50
`
	tpls, err := ParseTemplates(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tpls) != 2 {
		t.Fatalf("parsed %d templates, want 2", len(tpls))
	}
	if !strings.Contains(tpls["cpu-intensive"], "host_cpu_bogomips > 4000") {
		t.Errorf("cpu-intensive body = %q", tpls["cpu-intensive"])
	}
	if !strings.Contains(tpls["data-intensive"], "monitor_network_bw > 6") {
		t.Errorf("data-intensive body = %q", tpls["data-intensive"])
	}
}

func TestParseTemplatesErrors(t *testing.T) {
	cases := map[string]string{
		"body before header":  "host_cpu_free > 0.9\n[x]\na < 1\n",
		"empty name":          "[]\na < 1\n",
		"empty body":          "[x]\n\n[y]\na < 1\n",
		"broken requirement":  "[x]\nhost_cpu_free >\n",
		"duplicate template":  "[x]\na < 1\n[x]\nb < 2\n",
		"trailing empty body": "[x]\na < 1\n[y]\n",
	}
	for label, src := range cases {
		if _, err := ParseTemplates(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestLoadTemplatesAndServe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "templates.conf")
	err := os.WriteFile(path, []byte("[fast]\nhost_cpu_bogomips > 4000\n"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	tpls, err := LoadTemplates(path)
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := testSelector(t)
	w := startWizard(t, Config{Selector: sel, Templates: tpls})
	reply := ask(t, w.Addr(), &proto.Request{
		Seq: 1, ServerNum: 1, Option: proto.OptTemplate, Detail: "fast",
	})
	if reply.Err != "" {
		t.Fatalf("template request failed: %s", reply.Err)
	}
	if !reflect.DeepEqual(reply.Servers, []string{"fastbox"}) {
		t.Errorf("Servers = %v", reply.Servers)
	}
	if _, err := LoadTemplates(filepath.Join(t.TempDir(), "missing.conf")); err == nil {
		t.Error("missing file accepted")
	}
}
