package wizard

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"smartsock/internal/core"
	"smartsock/internal/proto"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
)

func TestSanitizeFastPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain error text", "plain error text"},
		{"", ""},
		{"line\nbreak", "line break"},
		{"\n\n", "  "},
		{"tail\n", "tail "},
	}
	for _, tc := range cases {
		if got := sanitize(tc.in); got != tc.want {
			t.Errorf("sanitize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// The common case — no newline — must return the input without
	// copying.
	in := "parse requirement: line 2: unexpected token"
	allocs := testing.AllocsPerRun(100, func() {
		if out := sanitize(in); out != in {
			t.Fatalf("sanitize changed a clean string: %q", out)
		}
	})
	if allocs != 0 {
		t.Errorf("sanitize allocates %.1f times on newline-free input, want 0", allocs)
	}
}

func TestNewRejectsNegativeWorkers(t *testing.T) {
	sel, _ := testSelector(t)
	if _, err := New(Config{Addr: "127.0.0.1:0", Selector: sel, Workers: -1}); err == nil {
		t.Fatal("New accepted Workers: -1")
	}
}

func TestAnswerUsesRequirementCache(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{Selector: sel})
	req := &proto.Request{Seq: 1, ServerNum: 1, Detail: "host_cpu_bogomips > 3000\n"}
	for i := 0; i < 3; i++ {
		if reply := w.Answer(context.Background(), req); reply.Err != "" {
			t.Fatalf("answer %d: %s", i, reply.Err)
		}
	}
	hits, misses := w.CacheStats()
	if misses != 1 || hits != 2 {
		t.Errorf("cache stats = %d hits / %d misses, want 2/1", hits, misses)
	}
}

func TestCacheDisabledStillAnswers(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{Selector: sel, CacheSize: -1})
	req := &proto.Request{Seq: 1, ServerNum: 1, Detail: "host_cpu_bogomips > 3000\n"}
	for i := 0; i < 2; i++ {
		if reply := w.Answer(context.Background(), req); reply.Err != "" {
			t.Fatalf("answer %d: %s", i, reply.Err)
		}
	}
	if hits, misses := w.CacheStats(); hits != 0 || misses != 2 {
		t.Errorf("disabled cache stats = %d hits / %d misses, want 0/2", hits, misses)
	}
}

func TestReloadTemplatesSwapsAndPurges(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{
		Selector:  sel,
		Templates: map[string]string{"fast": "host_cpu_bogomips > 3000\n"},
	})
	req := &proto.Request{Seq: 1, ServerNum: 1, Option: proto.OptTemplate, Detail: "fast"}
	for i := 0; i < 2; i++ { // miss, then hit
		if reply := w.Answer(context.Background(), req); reply.Err != "" {
			t.Fatalf("before reload: %s", reply.Err)
		}
	}

	// Reload keeps "fast" with the same body: the requirement text is
	// unchanged, so only the purge can force a re-compile.
	w.ReloadTemplates(map[string]string{
		"fast":  "host_cpu_bogomips > 3000\n",
		"roomy": "host_memory_free > 100\n",
	})
	if reply := w.Answer(context.Background(), req); reply.Err != "" {
		t.Fatalf("after reload: %s", reply.Err)
	}
	if reply := w.Answer(context.Background(), &proto.Request{
		Seq: 2, ServerNum: 1, Option: proto.OptTemplate, Detail: "roomy",
	}); reply.Err != "" {
		t.Fatalf("new template: %s", reply.Err)
	}
	// 1 hit before the reload; the purge made "fast" a miss again.
	if hits, misses := w.CacheStats(); hits != 1 || misses != 3 {
		t.Errorf("cache stats after reload = %d hits / %d misses, want 1/3", hits, misses)
	}

	// A template dropped by a reload stops answering.
	w.ReloadTemplates(map[string]string{"roomy": "host_memory_free > 100\n"})
	if reply := w.Answer(context.Background(), req); reply.Err == "" {
		t.Fatal("dropped template still answered after reload")
	}
}

// TestWorkerPoolConcurrentAnswerAndStats is the fast path's race
// test: many goroutines call Answer (some through templates, some
// with parse errors) while others read every stats surface. Run with
// -race this covers the cache, the template pointer, the counters and
// the VarStats map.
func TestWorkerPoolConcurrentAnswerAndStats(t *testing.T) {
	db := store.New()
	for i := 0; i < 8; i++ {
		db.PutSys(sysinfo.Idle(fmt.Sprintf("host%d", i), float64(2000+i*500), 512))
	}
	sel, err := core.New(db, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	w := startWizard(t, Config{
		Selector:  sel,
		Workers:   8,
		Templates: map[string]string{"fast": "host_cpu_bogomips > 2500\n"},
	})

	reqs := []*proto.Request{
		{Seq: 1, ServerNum: 2, Detail: "host_cpu_bogomips > 3000\n"},
		{Seq: 2, ServerNum: 1, Detail: "host_memory_free > 5\nhost_cpu_free > 0.5\n"},
		{Seq: 3, ServerNum: 1, Option: proto.OptTemplate, Detail: "fast"},
		{Seq: 4, ServerNum: 1, Detail: "host_cpu_free >\n"}, // parse error
	}
	const (
		goroutines = 8
		perG       = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				req := reqs[(g+i)%len(reqs)]
				reply := w.Answer(context.Background(), req)
				if req.Seq == 4 && reply.Err == "" {
					t.Error("parse error answered without Err")
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			w.VarStats()
			w.Handled()
			w.Rejected()
			w.UpdateFailures()
			if hits, _ := w.CacheStats(); hits > uint64(goroutines*perG) {
				t.Error("cache hits exceed requests")
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	stats := w.VarStats()
	if stats["host_cpu_bogomips"] == 0 {
		t.Error("VarStats lost the bogomips reads")
	}
	hits, misses := w.CacheStats()
	if total := goroutines * perG; hits+misses != uint64(total) {
		t.Errorf("cache saw %d compiles for %d requests", hits+misses, total)
	}
	// Every requirement text is distinct, so exactly len(reqs) misses.
	if misses != uint64(len(reqs)) {
		t.Errorf("%d cache misses, want %d", misses, len(reqs))
	}
}

// TestWorkerPoolOverUDP drives the full datagram path with Workers: 8
// and concurrent clients; every request must get exactly one reply
// with its own sequence number.
func TestWorkerPoolOverUDP(t *testing.T) {
	sel, _ := testSelector(t)
	w := startWizard(t, Config{Selector: sel, Workers: 8})
	const clients, perClient = 8, 20
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			conn, err := net.Dial("udp", w.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			buf := make([]byte, 64*1024)
			for i := 0; i < perClient; i++ {
				seq := uint32(c*1000 + i)
				req := &proto.Request{
					Seq:       seq,
					ServerNum: 1,
					Detail:    fmt.Sprintf("host_cpu_bogomips > %d\n", 1000+(c+i)%5),
				}
				if _, err := conn.Write(proto.MarshalRequest(req)); err != nil {
					errs <- err
					return
				}
				conn.SetReadDeadline(time.Now().Add(5 * time.Second))
				n, err := conn.Read(buf)
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				reply, err := proto.UnmarshalReply(buf[:n])
				if err != nil {
					errs <- err
					return
				}
				if reply.Seq != seq {
					errs <- fmt.Errorf("client %d got reply for seq %d, want %d", c, reply.Seq, seq)
					return
				}
				if reply.Err != "" {
					errs <- fmt.Errorf("client %d: %s", c, reply.Err)
					return
				}
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got, want := w.Handled(), uint64(clients*perClient); got != want {
		t.Errorf("Handled = %d, want %d", got, want)
	}
}
