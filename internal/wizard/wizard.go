// Package wizard implements the user request handler of §3.6.1: a
// UDP daemon that receives [seq, serverNum, option, detail] requests,
// parses the requirement detail with the meta language, matches it
// against the status databases and replies with the selected server
// list.
//
// UDP is deliberate: requests are single datagrams, replies are
// single datagrams, and under request storms a TCP wizard would
// accumulate TIME_WAIT state until "too many files opened" (§3.6.1).
//
// The thesis wizard "processes the user requests sequentially", and
// Workers: 1 (the default) preserves that mode byte-for-byte on the
// wire. Because storms are the expected workload, the wizard also has
// a fast path: Workers: N serves requests from N concurrent handler
// goroutines, requirement texts compile once through a bounded LRU
// cache (reqlang.Cache), and each worker reuses its read and
// reply-marshal buffers across requests. The datagram plane itself is
// batched and sharded (internal/netbatch): Batch > 1 moves up to that
// many requests per recvmmsg and flushes the worker's reply vector
// with one sendmmsg, and Shards > 1 binds that many SO_REUSEPORT
// sockets so each worker owns a private socket instead of contending
// on a shared fd. Both knobs are wire-transparent; Batch/Shards of 1
// (wizardd -compat) reproduce the historical one-syscall-per-datagram
// behaviour exactly.
//
// In distributed mode the wizard triggers a pull from the passive
// transmitters before matching, so sparse deployments only move
// status data when someone actually asks for servers.
package wizard

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smartsock/internal/core"
	"smartsock/internal/netbatch"
	"smartsock/internal/obs"
	"smartsock/internal/overload"
	"smartsock/internal/proto"
	"smartsock/internal/reqlang"
)

// UpdateFunc refreshes the wizard-side databases before a request is
// matched; in distributed mode it wraps Receiver.PullFrom. Nil means
// centralized mode, where the receiver refreshes continuously.
type UpdateFunc func(ctx context.Context) error

// Config parameterises a wizard.
type Config struct {
	// Addr is the UDP service address; port 0 picks one.
	Addr string
	// Selector performs the matching.
	Selector *core.Selector
	// Update is called before each request in distributed mode.
	Update UpdateFunc
	// Templates maps names to predefined requirement texts, used
	// when a request carries OptTemplate (§3.6.1's "predefined server
	// requirement templates").
	Templates map[string]string
	// Logger receives per-request errors; nil silences them.
	Logger *log.Logger
	// Workers is the number of concurrent request-handling
	// goroutines. 0 or 1 selects the thesis-faithful sequential loop
	// (§3.6.1), which stays the default; larger values enable the
	// storm fast path.
	Workers int
	// CacheSize bounds the compiled-requirement cache, in programs.
	// 0 picks reqlang.DefaultCacheSize; a negative value disables
	// caching so every request re-parses (the seed behaviour, kept
	// for comparison benchmarks and wizardd -compat).
	CacheSize int
	// Batch is the most request datagrams one socket syscall may move
	// on the serve loop (recvmmsg/sendmmsg on Linux). 0 and 1 both
	// select the historical one-syscall-per-datagram mode; values
	// above netbatch.MaxBatch are clamped. Wire behaviour is
	// identical at every setting.
	Batch int
	// Shards is the number of SO_REUSEPORT sockets bound to Addr so
	// the kernel load-balances request flows across serve loops. 0
	// and 1 bind a single socket. Off Linux the setting degrades to
	// one socket (counted by netbatch_fallback).
	Shards int
	// Overload, when enabled, arms the admission-control plane
	// (internal/overload): each shard's receive ring hands datagrams to
	// a bounded ingress queue, workers drain the queues under a CoDel
	// controller that sheds persistent standing queues with "overloaded,
	// retry-after" replies, and a per-source token bucket fends off
	// runaway clients before they occupy queue space. Nil or disabled
	// (MaxQueue 0, the wizardd -compat pin) keeps the historical direct
	// serve loops: no queue, no shedding, kernel socket buffers as the
	// only backpressure.
	Overload *overload.Gate
	// RecvBuf, when positive, asks the kernel for that many bytes of
	// receive buffer on every shard socket (SetReadBuffer). Overload
	// benches raise it so the unprotected configuration's collapse is
	// the user-visible queue growth, not silent kernel drops.
	RecvBuf int
	// Obs, when set, registers the wizard's counters (wizard_requests,
	// wizard_rejected, wizard_update_failures, wizard_reply_errors),
	// its per-outcome request-latency histograms (wizard_latency_*),
	// the datagrams-per-syscall histograms (wizard_recv_batch,
	// wizard_send_batch), the netbatch syscall counters and the
	// requirement cache's hit/miss counters; nil detaches them all.
	Obs *obs.Registry
}

// Wizard is a running request handler.
type Wizard struct {
	cfg        Config
	shards     []*net.UDPConn // ≥1 sockets; >1 share the port via SO_REUSEPORT
	cache      *reqlang.Cache
	templates  atomic.Pointer[map[string]string]
	handled    *obs.Counter // wizard_requests: requests answered
	rejected   *obs.Counter // wizard_rejected: answered with an error
	updateFail *obs.Counter // wizard_update_failures: pre-request refreshes failed
	replyErr   *obs.Counter // wizard_reply_errors: reply datagrams the kernel refused

	// Datagrams-per-syscall histograms: how full the batched plane
	// actually runs. A sum far above the count means recvmmsg is
	// earning its keep; sum == count means ping-pong traffic.
	recvBatch *obs.Histogram // wizard_recv_batch
	sendBatch *obs.Histogram // wizard_send_batch

	// testWrap, when set by tests, wraps each serve loop's endpoint —
	// the injection point for write-error fault tests.
	testWrap func(netbatch.Endpoint) netbatch.Endpoint

	// freeBufs recycles queue-handoff receive buffers between the
	// ingest loops (which hand a filled buffer to the queue and need a
	// fresh one for the ring slot) and the workers (which return the
	// buffer once the request is answered). A channel free list keeps
	// the exchange allocation-free; when it runs dry the getter
	// allocates and when it overflows the putter lets the GC collect.
	freeBufs chan []byte

	// Per-outcome request-latency histograms (§3.6.1's selection
	// quality, made measurable): every Answer lands in exactly one.
	latAnswered *obs.Histogram // full server list returned
	latPartial  *obs.Histogram // short list accepted under OptPartialOK
	latStale    *obs.Histogram // rejected with stale records dropped
	latParse    *obs.Histogram // requirement did not parse / unknown template
	latRejected *obs.Histogram // any other error reply

	varMu     sync.Mutex
	varCounts map[string]uint64
}

// VarStats reports how often each server-side variable has appeared
// in requirements so far — the popularity summary Chapter 6 proposes
// so probes can be told to report only what applications actually ask
// about. Combine with probe.MaskForVariables and
// monitor.SetReportMask to close the loop.
func (w *Wizard) VarStats() map[string]uint64 {
	w.varMu.Lock()
	defer w.varMu.Unlock()
	out := make(map[string]uint64, len(w.varCounts))
	for k, v := range w.varCounts {
		out[k] = v
	}
	return out
}

func (w *Wizard) recordVars(vars []string) {
	w.varMu.Lock()
	defer w.varMu.Unlock()
	for _, v := range vars {
		w.varCounts[v]++
	}
}

// New binds the wizard's socket (or SO_REUSEPORT shard set).
func New(cfg Config) (*Wizard, error) {
	if cfg.Selector == nil {
		return nil, fmt.Errorf("wizard: nil selector")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("wizard: %d workers", cfg.Workers)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("wizard: %d shards", cfg.Shards)
	}
	shards, err := netbatch.ListenShards(cfg.Addr, max(cfg.Shards, 1), cfg.Obs)
	if err != nil {
		return nil, fmt.Errorf("wizard: %w", err)
	}
	if cfg.RecvBuf > 0 {
		for _, s := range shards {
			if err := s.SetReadBuffer(cfg.RecvBuf); err != nil {
				closeAll(shards)
				return nil, fmt.Errorf("wizard: set receive buffer: %w", err)
			}
		}
	}
	size := cfg.CacheSize
	switch {
	case size == 0:
		size = reqlang.DefaultCacheSize
	case size < 0:
		size = 0 // caching disabled
	}
	w := &Wizard{
		cfg:         cfg,
		shards:      shards,
		cache:       reqlang.NewCacheObs(size, cfg.Obs),
		handled:     cfg.Obs.Counter("wizard_requests"),
		rejected:    cfg.Obs.Counter("wizard_rejected"),
		updateFail:  cfg.Obs.Counter("wizard_update_failures"),
		replyErr:    cfg.Obs.Counter("wizard_reply_errors"),
		recvBatch:   cfg.Obs.Histogram("wizard_recv_batch", obs.BatchBuckets),
		sendBatch:   cfg.Obs.Histogram("wizard_send_batch", obs.BatchBuckets),
		latAnswered: cfg.Obs.Histogram("wizard_latency_answered", obs.LatencyBuckets),
		latPartial:  cfg.Obs.Histogram("wizard_latency_partial", obs.LatencyBuckets),
		latStale:    cfg.Obs.Histogram("wizard_latency_stale_dropped", obs.LatencyBuckets),
		latParse:    cfg.Obs.Histogram("wizard_latency_parse_error", obs.LatencyBuckets),
		latRejected: cfg.Obs.Histogram("wizard_latency_rejected", obs.LatencyBuckets),
		varCounts:   make(map[string]uint64),
	}
	w.templates.Store(&cfg.Templates)
	return w, nil
}

// Addr reports the bound UDP address; with shards, every socket
// shares this port.
func (w *Wizard) Addr() string { return w.shards[0].LocalAddr().String() }

// Shards reports how many sockets actually serve the port (the
// SO_REUSEPORT request may degrade to one off Linux).
func (w *Wizard) Shards() int { return len(w.shards) }

// ReplyErrors reports how many reply datagrams the kernel refused to
// send. The serve loop drops the reply and keeps going — the client
// retries like any other datagram loss — so this counter is the only
// visible trace of a saturated send path.
func (w *Wizard) ReplyErrors() uint64 { return w.replyErr.Value() }

// Handled reports the number of requests answered.
func (w *Wizard) Handled() uint64 { return w.handled.Value() }

// Rejected reports the number of requests answered with an error.
func (w *Wizard) Rejected() uint64 { return w.rejected.Value() }

// UpdateFailures reports how many pre-request database refreshes have
// failed. The wizard still answers from the data it has ("stale data
// beats no answer"), so this counter is the only visible trace of a
// flapping transmitter link — dashboards and chaos tests watch it.
func (w *Wizard) UpdateFailures() uint64 { return w.updateFail.Value() }

// Stats is one coherent reading of the wizard's request counters.
type Stats struct {
	Handled, Rejected, UpdateFailures uint64
}

// Stats snapshots the counters with the invariant Rejected ≤ Handled
// guaranteed even against concurrent handlers. Reading the accessors
// one by one cannot promise that: a handler may land between the two
// loads in either order. Here rejected is read first; every rejected
// increment is sequenced after its request's handled increment, so
// any rejection this read observes has its request already counted in
// the later handled load.
func (w *Wizard) Stats() Stats {
	rej := w.rejected.Value()
	uf := w.updateFail.Value()
	return Stats{Handled: w.handled.Value(), Rejected: rej, UpdateFailures: uf}
}

// CacheStats reports the compiled-requirement cache's cumulative hit
// and miss counts.
func (w *Wizard) CacheStats() (hits, misses uint64) { return w.cache.Stats() }

// ReloadTemplates atomically replaces the requirement template table
// and purges the compiled-requirement cache. The purge is hygiene,
// not correctness: cache entries are keyed by requirement text, so a
// renamed or edited template can never serve a stale program — but
// dead bodies would otherwise sit in cache slots until evicted.
func (w *Wizard) ReloadTemplates(templates map[string]string) {
	w.templates.Store(&templates)
	w.cache.Purge()
}

// Run serves requests until the context is cancelled: sequentially
// with Workers ≤ 1 (the thesis wizard "processes the user requests
// sequentially"), or from a pool of handler goroutines otherwise.
// With shards, loop i serves socket i mod len(shards), and at least
// one loop runs per shard so no socket's flows go unanswered. When
// the overload gate is enabled the serve path switches to the
// admission-controlled architecture instead: per-shard ingest loops
// feeding bounded queues, workers draining them under CoDel.
func (w *Wizard) Run(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		// The serve loops below surface the close as net.ErrClosed.
		for _, s := range w.shards {
			_ = s.Close()
		}
	}()
	if w.cfg.Overload.Enabled() {
		return w.runProtected(ctx)
	}
	loops := max(w.cfg.Workers, 1)
	if loops < len(w.shards) {
		loops = len(w.shards)
	}
	if loops == 1 {
		return w.serve(ctx, w.shards[0])
	}
	errs := make(chan error, loops)
	var wg sync.WaitGroup
	for i := 0; i < loops; i++ {
		wg.Add(1)
		go func(conn *net.UDPConn) {
			defer wg.Done()
			errs <- w.serve(ctx, conn)
		}(w.shards[i%len(w.shards)])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// serve is one handler loop: pull a batch of requests, answer each
// into a pooled reply vector, flush the replies with one batched
// write. Each loop owns its receive and reply vectors (buffers grow
// once and are reused across batches) and its own netbatch endpoint;
// loops sharing a socket are serialised by the kernel. With Batch ≤ 1
// the plane degrades to exactly the historical
// read-one/answer/write-one cycle.
func (w *Wizard) serve(ctx context.Context, conn *net.UDPConn) error {
	ep, err := w.endpoint(conn)
	if err != nil {
		return err
	}
	batch := w.cfg.Batch
	if batch < 1 {
		batch = 1
	}
	if batch > netbatch.MaxBatch {
		batch = netbatch.MaxBatch
	}
	rx := netbatch.NewBatch(batch, 64*1024)
	tx := netbatch.NewBatch(batch, 2048)
	var req proto.Request // scratch: refilled per datagram, never retained
	var reply proto.Reply
	for {
		n, err := ep.ReadBatch(rx)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("wizard: read: %w", err)
		}
		w.recvBatch.Observe(int64(n))
		replies := tx[:0]
		for i := 0; i < n; i++ {
			if !w.handle(ctx, rx[i].Buf, &req, &reply) {
				continue // undecodable request: nothing to answer
			}
			j := len(replies)
			replies = replies[:j+1]
			out, err := proto.AppendReply(replies[j].Buf[:0], &reply)
			if err != nil {
				replies = replies[:j]
				w.logf("wizard: marshal reply: %v", err)
				continue
			}
			replies[j].Buf = out
			replies[j].Addr = rx[i].Addr
		}
		if len(replies) == 0 {
			continue
		}
		w.sendBatch.Observe(int64(len(replies)))
		sent, err := ep.WriteBatch(replies)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			// Transient send failure (ENOBUFS under reply pressure):
			// the unsent replies are dropped like any datagram loss,
			// counted, and the loop keeps serving.
			w.replyErr.Add(uint64(len(replies) - sent))
			w.logf("wizard: send replies: %v (%d of %d sent)", err, sent, len(replies))
		}
	}
}

// runProtected is the overload-protected serve architecture: one
// ingest loop per shard pulls batches off the socket, rate-limits by
// source and pushes the survivors (with their arrival timestamps)
// into that shard's bounded queue; a pool of workers drains the
// queues, shedding under the CoDel control law before spending any
// answer-pipeline work. Shed requests get a cheap "overloaded,
// retry-after" reply so their clients back off instead of resending
// into the storm.
//
// Shutdown mirrors Run: the context watcher closes the sockets, every
// ingest loop surfaces net.ErrClosed and exits, the queues are closed
// behind them, and the workers drain what is left before exiting on
// the closed queues.
func (w *Wizard) runProtected(ctx context.Context) error {
	nshards := len(w.shards)
	queues := make([]*overload.Queue, nshards)
	for i := range queues {
		queues[i] = w.cfg.Overload.NewQueue()
	}
	workers := max(w.cfg.Workers, nshards)
	batch := w.batch()
	// Enough free buffers to fill every queue and every in-flight
	// worker batch without the getter allocating in steady state.
	w.freeBufs = make(chan []byte, nshards*queues[0].Cap()+workers*batch+nshards*batch)

	errs := make(chan error, nshards+workers)
	var ingest, drain sync.WaitGroup
	for i := 0; i < nshards; i++ {
		ingest.Add(1)
		go func(i int) {
			defer ingest.Done()
			errs <- w.serveIngest(ctx, w.shards[i], queues[i])
		}(i)
	}
	for j := 0; j < workers; j++ {
		drain.Add(1)
		go func(j int) {
			defer drain.Done()
			errs <- w.serveQueue(ctx, w.shards[j%nshards], queues[j%nshards])
		}(j)
	}
	ingest.Wait()
	for _, q := range queues {
		q.Close()
	}
	drain.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// batch is the configured per-syscall datagram count, clamped.
func (w *Wizard) batch() int {
	b := w.cfg.Batch
	if b < 1 {
		b = 1
	}
	if b > netbatch.MaxBatch {
		b = netbatch.MaxBatch
	}
	return b
}

// getBuf takes a receive buffer from the free list, allocating when
// it runs dry.
func (w *Wizard) getBuf() []byte {
	select {
	case b := <-w.freeBufs:
		return b
	default:
		return make([]byte, 64*1024)
	}
}

// putBuf returns a handed-off buffer once its datagram is answered.
func (w *Wizard) putBuf(b []byte) {
	select {
	case w.freeBufs <- b[:cap(b)]:
	default:
	}
}

// serveIngest is one shard's admission loop: read a batch, run the
// per-source token bucket, hand admitted datagrams (timestamped) to
// the shard queue and answer rate-limited or queue-evicted ones with
// shed replies. It does no parsing beyond the request header of the
// datagrams it sheds, so a storm's ingest cost stays near the syscall
// floor and the socket drains at wire speed — the queue, not the
// kernel buffer, is where excess load becomes measurable.
func (w *Wizard) serveIngest(ctx context.Context, conn *net.UDPConn, q *overload.Queue) error {
	ep, err := w.endpoint(conn)
	if err != nil {
		return err
	}
	gate := w.cfg.Overload
	batch := w.batch()
	rx := netbatch.NewBatch(batch, 64*1024)
	tx := netbatch.NewBatch(batch, 256) // shed replies are tiny
	var req proto.Request               // scratch for shed-reply seq extraction
	for {
		n, err := ep.ReadBatch(rx)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("wizard: read: %w", err)
		}
		w.recvBatch.Observe(int64(n))
		now := time.Now()
		sheds := tx[:0]
		for i := 0; i < n; i++ {
			if !gate.AllowSource(rx[i].Addr, now) {
				sheds = w.appendShed(sheds, rx[i].Buf, rx[i].Addr, &req)
				continue
			}
			m := netbatch.Handoff(&rx[i], w.getBuf())
			if ev, dropped := q.Push(overload.Item{Buf: m.Buf, Addr: m.Addr, Enq: now}); dropped {
				sheds = w.appendShed(sheds, ev.Buf, ev.Addr, &req)
				w.putBuf(ev.Buf)
			}
		}
		if len(sheds) == 0 {
			continue
		}
		w.sendBatch.Observe(int64(len(sheds)))
		sent, err := ep.WriteBatch(sheds)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			w.replyErr.Add(uint64(len(sheds) - sent))
			w.logf("wizard: send shed replies: %v (%d of %d sent)", err, sent, len(sheds))
		}
	}
}

// serveQueue is one worker: pop the next queued request (blocking),
// drain whatever else is ready up to a batch, answer or shed each
// under the CoDel controller, and flush the replies with one batched
// write. Exits when the queue closes at shutdown.
func (w *Wizard) serveQueue(ctx context.Context, conn *net.UDPConn, q *overload.Queue) error {
	ep, err := w.endpoint(conn)
	if err != nil {
		return err
	}
	batch := w.batch()
	tx := netbatch.NewBatch(batch, 2048)
	var req proto.Request
	var reply proto.Reply
	for {
		it, ok := q.Pop()
		if !ok {
			return nil
		}
		replies := tx[:0]
		for {
			if q.AdmitDequeued(it, time.Now()) {
				if w.handle(ctx, it.Buf, &req, &reply) {
					j := len(replies)
					replies = replies[:j+1]
					out, err := proto.AppendReply(replies[j].Buf[:0], &reply)
					if err != nil {
						replies = replies[:j]
						w.logf("wizard: marshal reply: %v", err)
					} else {
						replies[j].Buf = out
						replies[j].Addr = it.Addr
					}
				}
			} else {
				replies = w.appendShed(replies, it.Buf, it.Addr, &req)
			}
			w.putBuf(it.Buf)
			if len(replies) >= batch {
				break
			}
			next, more := q.TryPop()
			if !more {
				break
			}
			it = next
		}
		if len(replies) == 0 {
			continue
		}
		w.sendBatch.Observe(int64(len(replies)))
		sent, err := ep.WriteBatch(replies)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			w.replyErr.Add(uint64(len(replies) - sent))
			w.logf("wizard: send replies: %v (%d of %d sent)", err, sent, len(replies))
		}
	}
}

// appendShed appends an "overloaded, retry-after" reply for one shed
// request datagram onto the reply vector. The datagram is parsed only
// for its sequence number; an undecodable one gets no reply (there is
// no seq to answer). Shed requests are counted by the overload plane
// (overload_shed / overload_ratelimited), not in wizard_requests —
// that counter keeps meaning "requests the answer pipeline served".
func (w *Wizard) appendShed(out []netbatch.Message, datagram []byte, addr netip.AddrPort, req *proto.Request) []netbatch.Message {
	if err := proto.ParseRequest(datagram, req); err != nil {
		w.logf("wizard: dropping undecodable shed request: %v", err)
		return out
	}
	reply := proto.Reply{Seq: req.Seq, Err: proto.OverloadedErr(w.cfg.Overload.RetryAfter())}
	j := len(out)
	out = out[:j+1]
	buf, err := proto.AppendReply(out[j].Buf[:0], &reply)
	if err != nil {
		w.logf("wizard: marshal shed reply: %v", err)
		return out[:j]
	}
	out[j].Buf = buf
	out[j].Addr = addr
	return out
}

// closeAll releases the shard set after a partial New failure.
func closeAll(conns []*net.UDPConn) {
	for _, c := range conns {
		_ = c.Close()
	}
}

// endpoint wraps one shard socket for a serve loop, applying the
// test-injection hook when armed.
func (w *Wizard) endpoint(conn *net.UDPConn) (netbatch.Endpoint, error) {
	ep, err := netbatch.Wrap(conn, netbatch.Options{Batch: w.cfg.Batch, Obs: w.cfg.Obs})
	if err != nil {
		return nil, fmt.Errorf("wizard: %w", err)
	}
	if w.testWrap != nil {
		return w.testWrap(ep), nil
	}
	return ep, nil
}

// handle processes one request datagram into the caller's scratch
// request and reply. It is the serve loops' zero-alloc path: the
// parsed Detail aliases the receive buffer (stable until the next
// ReadBatch) and the reply struct is reused across datagrams. It
// reports false when the datagram is undecodable and nothing should
// be answered.
func (w *Wizard) handle(ctx context.Context, datagram []byte, req *proto.Request, reply *proto.Reply) bool {
	if err := proto.ParseRequest(datagram, req); err != nil {
		w.logf("wizard: dropping request: %v", err)
		return false
	}
	start := time.Now()
	lat := w.answer(ctx, req, reply)
	lat.Observe(int64(time.Since(start)))
	w.handled.Add(1)
	if reply.Err != "" {
		w.rejected.Add(1)
	}
	return true
}

// Answer runs the full matching pipeline for one request and records
// its latency under the outcome it produced. It is exported so
// in-process deployments (and tests) can bypass UDP; it is safe to
// call from any number of goroutines.
func (w *Wizard) Answer(ctx context.Context, req *proto.Request) *proto.Reply {
	start := time.Now()
	reply := new(proto.Reply)
	lat := w.answer(ctx, req, reply)
	lat.Observe(int64(time.Since(start)))
	return reply
}

// answer is the pipeline body; it fills reply in place (resetting any
// previous contents) and reports which latency histogram the
// request's outcome belongs to so its caller can time the whole
// thing. It never retains req.Detail, so the text may alias a
// reusable receive buffer.
func (w *Wizard) answer(ctx context.Context, req *proto.Request, reply *proto.Reply) *obs.Histogram {
	*reply = proto.Reply{Seq: req.Seq}
	fail := func(format string, args ...any) {
		reply.Err = sanitize(fmt.Sprintf(format, args...))
	}

	detail := req.Detail
	if req.Option&proto.OptTemplate != 0 {
		tpl, ok := (*w.templates.Load())[detail]
		if !ok {
			fail("unknown requirement template %q", detail)
			return w.latParse
		}
		detail = tpl
	}
	prog, err := w.cache.Get(detail)
	if err != nil {
		fail("parse requirement: %v", err)
		return w.latParse
	}
	w.recordVars(prog.FreeVars())
	if w.cfg.Update != nil {
		// Distributed mode: refresh the databases on demand (§3.5.1).
		if err := w.cfg.Update(ctx); err != nil {
			w.updateFail.Add(1)
			w.logf("wizard: update before request: %v", err)
			// Stale data beats no answer; continue with what we have.
		}
	}
	res, err := w.cfg.Selector.Select(prog, int(req.ServerNum), req.Option)
	if err != nil {
		fail("%v", err)
		if res.StaleDropped > 0 {
			// The shortfall came (at least partly) from records dropped
			// as stale — the signature of a silent probe fleet, kept
			// apart from ordinary "nothing qualifies" rejections.
			return w.latStale
		}
		return w.latRejected
	}
	reply.Servers = res.Servers
	if res.Shortfall > 0 {
		return w.latPartial
	}
	return w.latAnswered
}

// sanitize strips newlines so error text survives the reply format.
// Almost no error text carries one, so the common case returns the
// input without copying.
func sanitize(s string) string {
	if strings.IndexByte(s, '\n') < 0 {
		return s
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, ' ')
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

func (w *Wizard) logf(format string, args ...any) {
	if w.cfg.Logger != nil {
		w.cfg.Logger.Printf(format, args...)
	}
}
