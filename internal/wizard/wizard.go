// Package wizard implements the user request handler of §3.6.1: a
// UDP daemon that receives [seq, serverNum, option, detail] requests,
// parses the requirement detail with the meta language, matches it
// against the status databases and replies with the selected server
// list.
//
// UDP is deliberate: requests are single datagrams, replies are
// single datagrams, and under request storms a TCP wizard would
// accumulate TIME_WAIT state until "too many files opened" (§3.6.1).
//
// The thesis wizard "processes the user requests sequentially", and
// Workers: 1 (the default) preserves that mode byte-for-byte on the
// wire. Because storms are the expected workload, the wizard also has
// a fast path: Workers: N serves requests from N concurrent handler
// goroutines reading the same socket, requirement texts compile once
// through a bounded LRU cache (reqlang.Cache), and each worker reuses
// its read and reply-marshal buffers across requests.
//
// In distributed mode the wizard triggers a pull from the passive
// transmitters before matching, so sparse deployments only move
// status data when someone actually asks for servers.
package wizard

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smartsock/internal/core"
	"smartsock/internal/obs"
	"smartsock/internal/proto"
	"smartsock/internal/reqlang"
)

// UpdateFunc refreshes the wizard-side databases before a request is
// matched; in distributed mode it wraps Receiver.PullFrom. Nil means
// centralized mode, where the receiver refreshes continuously.
type UpdateFunc func(ctx context.Context) error

// Config parameterises a wizard.
type Config struct {
	// Addr is the UDP service address; port 0 picks one.
	Addr string
	// Selector performs the matching.
	Selector *core.Selector
	// Update is called before each request in distributed mode.
	Update UpdateFunc
	// Templates maps names to predefined requirement texts, used
	// when a request carries OptTemplate (§3.6.1's "predefined server
	// requirement templates").
	Templates map[string]string
	// Logger receives per-request errors; nil silences them.
	Logger *log.Logger
	// Workers is the number of concurrent request-handling
	// goroutines. 0 or 1 selects the thesis-faithful sequential loop
	// (§3.6.1), which stays the default; larger values enable the
	// storm fast path.
	Workers int
	// CacheSize bounds the compiled-requirement cache, in programs.
	// 0 picks reqlang.DefaultCacheSize; a negative value disables
	// caching so every request re-parses (the seed behaviour, kept
	// for comparison benchmarks and wizardd -compat).
	CacheSize int
	// Obs, when set, registers the wizard's counters (wizard_requests,
	// wizard_rejected, wizard_update_failures), its per-outcome
	// request-latency histograms (wizard_latency_*) and the
	// requirement cache's hit/miss counters; nil detaches them all.
	Obs *obs.Registry
}

// Wizard is a running request handler.
type Wizard struct {
	cfg        Config
	conn       *net.UDPConn
	cache      *reqlang.Cache
	templates  atomic.Pointer[map[string]string]
	handled    *obs.Counter // wizard_requests: requests answered
	rejected   *obs.Counter // wizard_rejected: answered with an error
	updateFail *obs.Counter // wizard_update_failures: pre-request refreshes failed

	// Per-outcome request-latency histograms (§3.6.1's selection
	// quality, made measurable): every Answer lands in exactly one.
	latAnswered *obs.Histogram // full server list returned
	latPartial  *obs.Histogram // short list accepted under OptPartialOK
	latStale    *obs.Histogram // rejected with stale records dropped
	latParse    *obs.Histogram // requirement did not parse / unknown template
	latRejected *obs.Histogram // any other error reply

	varMu     sync.Mutex
	varCounts map[string]uint64
}

// VarStats reports how often each server-side variable has appeared
// in requirements so far — the popularity summary Chapter 6 proposes
// so probes can be told to report only what applications actually ask
// about. Combine with probe.MaskForVariables and
// monitor.SetReportMask to close the loop.
func (w *Wizard) VarStats() map[string]uint64 {
	w.varMu.Lock()
	defer w.varMu.Unlock()
	out := make(map[string]uint64, len(w.varCounts))
	for k, v := range w.varCounts {
		out[k] = v
	}
	return out
}

func (w *Wizard) recordVars(vars []string) {
	w.varMu.Lock()
	defer w.varMu.Unlock()
	for _, v := range vars {
		w.varCounts[v]++
	}
}

// New binds the wizard's socket.
func New(cfg Config) (*Wizard, error) {
	if cfg.Selector == nil {
		return nil, fmt.Errorf("wizard: nil selector")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("wizard: %d workers", cfg.Workers)
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("wizard: resolve %q: %w", cfg.Addr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wizard: listen: %w", err)
	}
	size := cfg.CacheSize
	switch {
	case size == 0:
		size = reqlang.DefaultCacheSize
	case size < 0:
		size = 0 // caching disabled
	}
	w := &Wizard{
		cfg:         cfg,
		conn:        conn,
		cache:       reqlang.NewCacheObs(size, cfg.Obs),
		handled:     cfg.Obs.Counter("wizard_requests"),
		rejected:    cfg.Obs.Counter("wizard_rejected"),
		updateFail:  cfg.Obs.Counter("wizard_update_failures"),
		latAnswered: cfg.Obs.Histogram("wizard_latency_answered", obs.LatencyBuckets),
		latPartial:  cfg.Obs.Histogram("wizard_latency_partial", obs.LatencyBuckets),
		latStale:    cfg.Obs.Histogram("wizard_latency_stale_dropped", obs.LatencyBuckets),
		latParse:    cfg.Obs.Histogram("wizard_latency_parse_error", obs.LatencyBuckets),
		latRejected: cfg.Obs.Histogram("wizard_latency_rejected", obs.LatencyBuckets),
		varCounts:   make(map[string]uint64),
	}
	w.templates.Store(&cfg.Templates)
	return w, nil
}

// Addr reports the bound UDP address.
func (w *Wizard) Addr() string { return w.conn.LocalAddr().String() }

// Handled reports the number of requests answered.
func (w *Wizard) Handled() uint64 { return w.handled.Value() }

// Rejected reports the number of requests answered with an error.
func (w *Wizard) Rejected() uint64 { return w.rejected.Value() }

// UpdateFailures reports how many pre-request database refreshes have
// failed. The wizard still answers from the data it has ("stale data
// beats no answer"), so this counter is the only visible trace of a
// flapping transmitter link — dashboards and chaos tests watch it.
func (w *Wizard) UpdateFailures() uint64 { return w.updateFail.Value() }

// Stats is one coherent reading of the wizard's request counters.
type Stats struct {
	Handled, Rejected, UpdateFailures uint64
}

// Stats snapshots the counters with the invariant Rejected ≤ Handled
// guaranteed even against concurrent handlers. Reading the accessors
// one by one cannot promise that: a handler may land between the two
// loads in either order. Here rejected is read first; every rejected
// increment is sequenced after its request's handled increment, so
// any rejection this read observes has its request already counted in
// the later handled load.
func (w *Wizard) Stats() Stats {
	rej := w.rejected.Value()
	uf := w.updateFail.Value()
	return Stats{Handled: w.handled.Value(), Rejected: rej, UpdateFailures: uf}
}

// CacheStats reports the compiled-requirement cache's cumulative hit
// and miss counts.
func (w *Wizard) CacheStats() (hits, misses uint64) { return w.cache.Stats() }

// ReloadTemplates atomically replaces the requirement template table
// and purges the compiled-requirement cache. The purge is hygiene,
// not correctness: cache entries are keyed by requirement text, so a
// renamed or edited template can never serve a stale program — but
// dead bodies would otherwise sit in cache slots until evicted.
func (w *Wizard) ReloadTemplates(templates map[string]string) {
	w.templates.Store(&templates)
	w.cache.Purge()
}

// Run serves requests until the context is cancelled: sequentially
// with Workers ≤ 1 (the thesis wizard "processes the user requests
// sequentially"), or from a pool of handler goroutines all reading
// the same socket otherwise.
func (w *Wizard) Run(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		// The serve loops below surface the close as net.ErrClosed.
		_ = w.conn.Close()
	}()
	workers := w.cfg.Workers
	if workers <= 1 {
		return w.serve(ctx)
	}
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- w.serve(ctx)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// serve is one handler loop: read a datagram, answer it, reply. Each
// loop owns a receive buffer and a reply-marshal buffer, reused
// across requests; concurrent loops share the socket (the net package
// serialises the datagram reads and writes themselves).
func (w *Wizard) serve(ctx context.Context) error {
	buf := make([]byte, 64*1024)
	var out []byte
	for {
		// The AddrPort variants return the peer as a value, so a
		// datagram read costs no *net.UDPAddr allocation.
		n, from, err := w.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("wizard: read: %w", err)
		}
		reply := w.handle(ctx, buf[:n])
		if reply == nil {
			continue // undecodable request: nothing to answer
		}
		out, err = proto.AppendReply(out[:0], reply)
		if err != nil {
			w.logf("wizard: marshal reply: %v", err)
			continue
		}
		if _, err := w.conn.WriteToUDPAddrPort(out, from); err != nil {
			w.logf("wizard: send reply: %v", err)
		}
	}
}

// handle processes one request datagram and builds the reply.
func (w *Wizard) handle(ctx context.Context, datagram []byte) *proto.Reply {
	req, err := proto.UnmarshalRequest(datagram)
	if err != nil {
		w.logf("wizard: dropping request: %v", err)
		return nil
	}
	reply := w.Answer(ctx, req)
	w.handled.Add(1)
	if reply.Err != "" {
		w.rejected.Add(1)
	}
	return reply
}

// Answer runs the full matching pipeline for one request and records
// its latency under the outcome it produced. It is exported so
// in-process deployments (and tests) can bypass UDP; it is safe to
// call from any number of goroutines.
func (w *Wizard) Answer(ctx context.Context, req *proto.Request) *proto.Reply {
	start := time.Now()
	reply, lat := w.answer(ctx, req)
	lat.Observe(int64(time.Since(start)))
	return reply
}

// answer is the pipeline body; it reports which latency histogram the
// request's outcome belongs to so Answer can time the whole thing.
func (w *Wizard) answer(ctx context.Context, req *proto.Request) (*proto.Reply, *obs.Histogram) {
	reply := &proto.Reply{Seq: req.Seq}
	fail := func(format string, args ...any) *proto.Reply {
		reply.Err = sanitize(fmt.Sprintf(format, args...))
		return reply
	}

	detail := req.Detail
	if req.Option&proto.OptTemplate != 0 {
		tpl, ok := (*w.templates.Load())[detail]
		if !ok {
			return fail("unknown requirement template %q", detail), w.latParse
		}
		detail = tpl
	}
	prog, err := w.cache.Get(detail)
	if err != nil {
		return fail("parse requirement: %v", err), w.latParse
	}
	w.recordVars(prog.FreeVars())
	if w.cfg.Update != nil {
		// Distributed mode: refresh the databases on demand (§3.5.1).
		if err := w.cfg.Update(ctx); err != nil {
			w.updateFail.Add(1)
			w.logf("wizard: update before request: %v", err)
			// Stale data beats no answer; continue with what we have.
		}
	}
	res, err := w.cfg.Selector.Select(prog, int(req.ServerNum), req.Option)
	if err != nil {
		if res.StaleDropped > 0 {
			// The shortfall came (at least partly) from records dropped
			// as stale — the signature of a silent probe fleet, kept
			// apart from ordinary "nothing qualifies" rejections.
			return fail("%v", err), w.latStale
		}
		return fail("%v", err), w.latRejected
	}
	reply.Servers = res.Servers
	if res.Shortfall > 0 {
		return reply, w.latPartial
	}
	return reply, w.latAnswered
}

// sanitize strips newlines so error text survives the reply format.
// Almost no error text carries one, so the common case returns the
// input without copying.
func sanitize(s string) string {
	if strings.IndexByte(s, '\n') < 0 {
		return s
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, ' ')
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

func (w *Wizard) logf(format string, args ...any) {
	if w.cfg.Logger != nil {
		w.cfg.Logger.Printf(format, args...)
	}
}
