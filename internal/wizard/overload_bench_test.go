package wizard

// BenchmarkOverloadStorm is the wizard.overload acceptance harness:
// capacity under a closed-loop storm, then goodput and tail queue
// delay under an open-loop storm paced at 4× that capacity, with the
// admission plane on (shed-4x) and off (bare-4x). bench.sh turns the
// rows into BENCH_overload.json and bench_schema.py gates the
// protection ratios: protected goodput ≥ 70% of capacity, protected
// p99 sojourn ≤ 4× the CoDel target. The bare row is the collapse
// curve the protection is measured against — with the kernel receive
// buffer raised (RecvBuf), its queue delay grows past any useful
// deadline instead of the kernel silently shedding for us.

import (
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smartsock/internal/netbatch"
	"smartsock/internal/obs"
	"smartsock/internal/overload"
	"smartsock/internal/proto"
)

const (
	// overloadHandlerCost pins the wizard's capacity well below what
	// open-loop loopback senders can generate, so "4× capacity" is a
	// real overload, not a wish.
	overloadHandlerCost = 100 * time.Microsecond
	// overloadDeadline is the goodput criterion: a reply later than
	// this is as useless to its client as no reply (the client's
	// retry fires at roughly this scale).
	overloadDeadline = 100 * time.Millisecond
	// overloadRecvBuf keeps the unprotected configuration honest: the
	// excess queue must live somewhere measurable, not vanish into
	// default-sized kernel buffer drops.
	overloadRecvBuf = 4 << 20
	overloadClients = 8
)

// overloadWizardConfig is the shared serving configuration; only the
// gate differs between the protected and bare rows.
func overloadWizardConfig(b *testing.B, gate *overload.Gate) Config {
	return Config{
		Selector: stormSelector(b),
		Update:   slowUpdate(overloadHandlerCost),
		Workers:  4, Batch: 16, Shards: 4,
		RecvBuf:  overloadRecvBuf,
		Overload: gate,
	}
}

// measuredCapacity caches the closed-loop capacity (req/s) across the
// benchmark's rows so the 4× pacing is derived from a measurement,
// not a guess.
var measuredCapacity atomic.Uint64

// closedLoopStorm drives n requests from overloadClients windowed
// sockets (up to 64 in flight each, resending on loss) and returns
// the elapsed time. Closed-loop clients with deep windows keep every
// worker saturated, so n/elapsed is the service rate — capacity.
func closedLoopStorm(b *testing.B, addr string, n int) time.Duration {
	b.Helper()
	const window = 64
	datagrams := stormDatagrams()
	counts := splitAcross(n, overloadClients)
	errs := make(chan error, overloadClients)
	start := time.Now()
	for c := 0; c < overloadClients; c++ {
		go func(count int) {
			raddr, err := net.ResolveUDPAddr("udp", addr)
			if err != nil {
				errs <- err
				return
			}
			conn, err := net.DialUDP("udp", nil, raddr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			ep, err := netbatch.Wrap(conn, netbatch.Options{Batch: window})
			if err != nil {
				errs <- err
				return
			}
			out := netbatch.NewBatch(window, 256)
			in := netbatch.NewBatch(window, 64*1024)
			sent, recvd := 0, 0
			for recvd < count {
				if inflight := sent - recvd; sent < count && inflight < window {
					k := min(window-inflight, count-sent)
					for i := 0; i < k; i++ {
						out[i].Buf = append(out[i].Buf[:0], datagrams[(sent+i)%len(datagrams)]...)
						out[i].Addr = netip.AddrPort{} // connected socket
					}
					m, err := ep.WriteBatch(out[:k])
					if err != nil {
						errs <- err
						return
					}
					sent += m
					continue
				}
				if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
					errs <- err
					return
				}
				m, err := ep.ReadBatch(in)
				if err != nil {
					sent = recvd // datagram loss: reopen the window and resend
					continue
				}
				recvd += m
				if recvd > count {
					recvd = count
				}
			}
			errs <- nil
		}(counts[c])
	}
	for c := 0; c < overloadClients; c++ {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	return time.Since(start)
}

// capacity returns the cached closed-loop capacity, measuring it with
// a short burst when no capacity row has run yet (e.g. under a -bench
// filter that skips it).
func capacity(b *testing.B) float64 {
	b.Helper()
	if c := measuredCapacity.Load(); c > 0 {
		return float64(c)
	}
	w := startWizard(b, overloadWizardConfig(b, nil))
	const probe = 4000
	elapsed := closedLoopStorm(b, w.Addr(), probe)
	c := float64(probe) / elapsed.Seconds()
	measuredCapacity.Store(uint64(c))
	return c
}

// goodputResult classifies one open-loop storm's replies.
type goodputResult struct {
	sent        int
	timely      uint64 // non-shed replies inside overloadDeadline
	late        uint64 // non-shed replies past the deadline
	shedReplies uint64 // "overloaded, retry-after" replies
	sendElapsed time.Duration
	latency     *obs.Histogram // client-observed request→reply latency
}

// openLoopStorm injects n requests at the given aggregate rate across
// overloadClients sockets, never waiting for replies, and classifies
// every reply against the goodput deadline. Send timestamps are kept
// per sequence number so latency is measured per request.
func openLoopStorm(b *testing.B, addr string, n int, rate float64) goodputResult {
	b.Helper()
	datagrams := stormDatagrams()
	// Re-stamp each datagram with its storm-wide sequence number.
	sendNanos := make([]atomic.Int64, n)
	res := goodputResult{sent: n, latency: obs.NewHistogram(obs.QueueDelayBuckets)}
	counts := splitAcross(n, overloadClients)
	interval := time.Duration(float64(time.Second) * overloadClients / rate)

	var wg sync.WaitGroup
	start := time.Now()
	base := 0
	for c := 0; c < overloadClients; c++ {
		wg.Add(1)
		go func(c, base, count int) {
			defer wg.Done()
			conn, err := net.Dial("udp", addr)
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()

			var rd sync.WaitGroup
			rd.Add(1)
			go func() {
				defer rd.Done()
				buf := make([]byte, 64*1024)
				for {
					if err := conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond)); err != nil {
						return
					}
					m, err := conn.Read(buf)
					if err != nil {
						return // idle: this socket's replies are drained
					}
					now := time.Now().UnixNano()
					reply, err := proto.UnmarshalReply(buf[:m])
					if err != nil || int(reply.Seq) >= n {
						continue
					}
					if _, shed := proto.RetryAfter(reply.Err); shed {
						atomic.AddUint64(&res.shedReplies, 1)
						continue
					}
					lat := now - sendNanos[reply.Seq].Load()
					res.latency.Observe(lat)
					if lat <= int64(overloadDeadline) {
						atomic.AddUint64(&res.timely, 1)
					} else {
						atomic.AddUint64(&res.late, 1)
					}
				}
			}()

			var req proto.Request
			next := time.Now()
			for i := 0; i < count; i++ {
				if d := time.Until(next); d > time.Millisecond {
					time.Sleep(d)
				}
				next = next.Add(interval)
				if err := proto.ParseRequest(datagrams[(c+i)%len(datagrams)], &req); err != nil {
					b.Error(err)
					return
				}
				req.Seq = uint32(base + i)
				sendNanos[base+i].Store(time.Now().UnixNano())
				if _, err := conn.Write(proto.MarshalRequest(&req)); err != nil {
					b.Error(err)
					return
				}
			}
			rd.Wait()
		}(c, base, counts[c])
		base += counts[c]
	}
	wg.Wait()
	// The drain window (no reply for 300ms) is teardown, not storm
	// time; goodput is measured against the injection window.
	res.sendElapsed = time.Since(start) - 300*time.Millisecond
	if res.sendElapsed <= 0 {
		res.sendElapsed = time.Since(start)
	}
	return res
}

func BenchmarkOverloadStorm(b *testing.B) {
	b.Run("capacity", func(b *testing.B) {
		w := startWizard(b, overloadWizardConfig(b, nil))
		b.ResetTimer()
		elapsed := closedLoopStorm(b, w.Addr(), b.N)
		qps := float64(b.N) / elapsed.Seconds()
		measuredCapacity.Store(uint64(qps))
		b.ReportMetric(qps, "req/s")
	})

	b.Run("shed-4x", func(b *testing.B) {
		// The queue bound is sized against the pinned service rate: a
		// worker drains ~1/overloadHandlerCost requests per second
		// (timer granularity floors the real cost near 1ms), so 8
		// queued requests is ~10ms of standing delay — the CoDel
		// controller operates inside that ceiling instead of being
		// handed a queue whose worst case is seconds deep.
		gate := overload.New(overload.Config{MaxQueue: 8})
		w := startWizard(b, overloadWizardConfig(b, gate))
		rate := 4 * capacity(b)
		b.ResetTimer()
		res := openLoopStorm(b, w.Addr(), b.N, rate)
		b.ReportMetric(float64(res.timely)/res.sendElapsed.Seconds(), "goodput/s")
		b.ReportMetric(float64(res.shedReplies)/float64(res.sent), "shed_frac")
		// Tail queue delay of the requests actually served, from the
		// plane's own sojourn histogram.
		snap := gate.QueueDelay().Snapshot()
		b.ReportMetric(float64(snap.Quantile(0.99))/1e6, "p99_ms")
	})

	b.Run("bare-4x", func(b *testing.B) {
		w := startWizard(b, overloadWizardConfig(b, nil))
		rate := 4 * capacity(b)
		b.ResetTimer()
		res := openLoopStorm(b, w.Addr(), b.N, rate)
		b.ReportMetric(float64(res.timely)/res.sendElapsed.Seconds(), "goodput/s")
		b.ReportMetric(float64(res.shedReplies)/float64(res.sent), "shed_frac")
		// No admission plane, no sojourn histogram: the tail is the
		// client-observed latency, which is the point — the queue
		// delay went somewhere users feel.
		b.ReportMetric(float64(res.latency.Snapshot().Quantile(0.99))/1e6, "p99_ms")
	})
}
