package wizard

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"smartsock/internal/reqlang"
)

// Template files let operators predefine the requirement templates of
// §3.6.1 ("when the user wants to use some predefined server
// requirement templates"). The format is INI-like: a [name] header
// starts a template, the following meta-language lines are its body,
// and '#' comments inside bodies belong to the requirement itself:
//
//	[cpu-intensive]
//	host_cpu_bogomips > 4000
//	host_cpu_free > 0.9
//
//	[data-intensive]
//	monitor_network_bw > 6
//	host_disk_allreq < 50
//
// Every body is validated with the requirement parser at load time so
// a broken template fails at start-up, not at the first request.

// ParseTemplates reads template definitions from r.
func ParseTemplates(r io.Reader) (map[string]string, error) {
	out := map[string]string{}
	var name string
	var body strings.Builder
	lineNo := 0

	flush := func() error {
		if name == "" {
			return nil
		}
		text := body.String()
		if strings.TrimSpace(text) == "" {
			return fmt.Errorf("wizard: template %q is empty", name)
		}
		//lint:ignore parsecache template bodies are validated once at load time, not on the request path
		if _, err := reqlang.Parse(text); err != nil {
			return fmt.Errorf("wizard: template %q: %w", name, err)
		}
		if _, dup := out[name]; dup {
			return fmt.Errorf("wizard: duplicate template %q", name)
		}
		out[name] = text
		body.Reset()
		return nil
	}

	sc := bufio.NewScanner(r)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "[") && strings.HasSuffix(trimmed, "]") {
			if err := flush(); err != nil {
				return nil, err
			}
			name = strings.TrimSpace(trimmed[1 : len(trimmed)-1])
			if name == "" {
				return nil, fmt.Errorf("wizard: line %d: empty template name", lineNo)
			}
			continue
		}
		if name == "" {
			if trimmed == "" || strings.HasPrefix(trimmed, "#") {
				continue // leading comments before the first section
			}
			return nil, fmt.Errorf("wizard: line %d: requirement text before any [template] header", lineNo)
		}
		body.WriteString(line)
		body.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wizard: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadTemplates reads and validates a template file.
func LoadTemplates(path string) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wizard: %w", err)
	}
	defer f.Close()
	return ParseTemplates(f)
}
