package lint

import (
	"go/ast"
)

// SleepFree flags direct time.Sleep calls in internal/* non-test
// code. A raw sleep cannot be faked in tests and cannot be cancelled;
// packages that must pace themselves take an injected sleep func (the
// shaper package's `sleep: time.Sleep` field is the approved pattern
// — referencing time.Sleep as a default value is fine, calling it is
// not) or wait on a timer select that also watches a context.
var SleepFree = &Analyzer{
	Name: "sleepfree",
	Doc:  "no raw time.Sleep in internal packages; inject the sleep func",
	Run:  runSleepFree,
}

func runSleepFree(pass *Pass) {
	if !pass.Pkg.Internal() {
		return
	}
	for _, file := range pass.Pkg.Files {
		if IsTestFile(pass.Pkg.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := CalleeFrom(pass.Pkg.Info, call, "time"); ok && name == "Sleep" {
				pass.Reportf(call.Pos(), "raw time.Sleep; use the package's injected sleep func or a context-aware timer")
			}
			return true
		})
	}
}
