package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MutexHeld flags blocking network calls made while a sync.Mutex or
// sync.RWMutex is held. A blocked Read/Write/Accept/Dial under a lock
// turns one slow peer into a stall of every goroutine that touches
// the same mutex — the classic "hung worker" failure mode of network
// services. The analysis is per-function and textual: a region is
// held from a `mu.Lock()`/`mu.RLock()` call to the matching
// `mu.Unlock()`/`mu.RUnlock()` later in the same function; a deferred
// unlock keeps the region held to the end. Function literals are
// separate units (a goroutine spawned under a lock does not inherit
// it).
var MutexHeld = &Analyzer{
	Name: "mutexheld",
	Doc:  "no blocking network call while a sync mutex is held",
	Run:  runMutexHeld,
}

// Blocking method prefixes on types declared in package net. Prefix
// matching deliberately sweeps in the whole family: ReadFrom,
// ReadFromUDP, ReadMsgUnix, WriteTo, AcceptTCP, DialContext, …
var netBlockingPrefixes = []string{"Read", "Write", "Accept", "Dial"}

// Blocking package-level functions in package net.
var netBlockingFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialUDP": true, "DialTCP": true,
	"DialIP": true, "DialUnix": true,
}

func isNetBlockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	name, ok := CalleeFrom(info, call, "net")
	if !ok {
		return "", false
	}
	if netBlockingFuncs[name] {
		return "net." + name, true
	}
	// Method on a net type (or resolved through an embedded net.Conn):
	// require a receiver so qualified non-blocking helpers like
	// net.JoinHostPort never match.
	if _, isMethod := ReceiverExpr(call); !isMethod {
		return "", false
	}
	for _, prefix := range netBlockingPrefixes {
		if strings.HasPrefix(name, prefix) {
			return name, true
		}
	}
	return "", false
}

func isSyncLockCall(info *types.Info, call *ast.CallExpr) (key string, lock bool, ok bool) {
	name, fromSync := CalleeFrom(info, call, "sync")
	if !fromSync {
		return "", false, false
	}
	recv, isMethod := ReceiverExpr(call)
	if !isMethod {
		return "", false, false
	}
	switch name {
	case "Lock", "RLock":
		return types.ExprString(recv), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(recv), false, true
	}
	return "", false, false
}

type mutexEvent struct {
	pos   token.Pos
	kind  int // 0 lock, 1 unlock, 2 blocking call
	key   string
	label string
}

func runMutexHeld(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if IsTestFile(pass.Pkg.Fset, file.Pos()) {
			continue
		}
		FuncUnits(file, func(_ *ast.FuncType, body *ast.BlockStmt) {
			checkMutexUnit(pass, body)
		})
	}
}

func checkMutexUnit(pass *Pass, body *ast.BlockStmt) {
	var events []mutexEvent
	deferred := map[*ast.CallExpr]bool{}
	InspectShallow(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.DeferStmt:
			deferred[node.Call] = true
		case *ast.CallExpr:
			if key, lock, ok := isSyncLockCall(pass.Pkg.Info, node); ok {
				if deferred[node] {
					// `defer mu.Unlock()` holds to function end; a
					// deferred Lock would be bizarre — ignore both.
					return true
				}
				kind := 1
				if lock {
					kind = 0
				}
				events = append(events, mutexEvent{pos: node.Pos(), kind: kind, key: key})
				return true
			}
			if label, ok := isNetBlockingCall(pass.Pkg.Info, node); ok {
				events = append(events, mutexEvent{pos: node.Pos(), kind: 2, label: label})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := map[string]bool{}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			held[ev.key] = true
		case 1:
			delete(held, ev.key)
		case 2:
			if len(held) > 0 {
				keys := make([]string, 0, len(held))
				for k := range held {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				pass.Reportf(ev.pos, "blocking call %s while holding %s; release the lock around network I/O",
					ev.label, strings.Join(keys, ", "))
			}
		}
	}
}
