package lint

import (
	"go/ast"
	"go/token"
)

// batchBufScope lists the packages that encode status batches on a
// per-epoch cadence. A Marshal*Batch call there allocates a fresh
// buffer every tick of a loop that may run for the process lifetime —
// the reusable Append*Batch variants exist precisely so steady-state
// epochs allocate nothing. One-shot encodes outside loops are fine.
var batchBufScope = map[string]bool{
	"smartsock/internal/transport": true,
}

// batchBufCallees are the allocating batch encoders the analyzer
// flags when called inside a loop.
var batchBufCallees = map[string]bool{
	"MarshalSystemBatch": true,
	"MarshalNetBatch":    true,
	"MarshalSecBatch":    true,
}

// BatchBuf reports allocating status.Marshal*Batch calls inside loops
// on the transport's epoch path.
var BatchBuf = &Analyzer{
	Name: "batchbuf",
	Doc:  "per-epoch status batch encodes must reuse a buffer via status.Append*Batch, not allocate one per tick with status.Marshal*Batch",
	Run: func(pass *Pass) {
		if !batchBufScope[pass.Pkg.Path] {
			return
		}
		for _, file := range pass.Pkg.Files {
			// Collect loop bodies first, then flag matching calls
			// inside them; nested loops are deduplicated by position.
			seen := map[token.Pos]bool{}
			ast.Inspect(file, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.ForStmt:
					body = loop.Body
				case *ast.RangeStmt:
					body = loop.Body
				default:
					return true
				}
				ast.Inspect(body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					name, ok := CalleeFrom(pass.Pkg.Info, call, "smartsock/internal/status")
					if !ok || !batchBufCallees[name] || seen[call.Pos()] {
						return true
					}
					seen[call.Pos()] = true
					pass.Reportf(call.Pos(), "status.%s allocates a fresh buffer every loop iteration; reuse one with status.Append%s", name, name[len("Marshal"):])
					return true
				})
				return true
			})
		}
	},
}
