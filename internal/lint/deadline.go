package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// Deadline flags network reads in non-test library code that can
// block forever: every direct read on a net.Conn/net.PacketConn (and
// every io.ReadFull/io.ReadAtLeast whose reader is statically a net
// type) must either be preceded — textually, in the same top-level
// function — by a SetDeadline/SetReadDeadline call, or happen inside
// a function that takes a context.Context, in which case the caller
// owns cancellation (the project idiom is a context.AfterFunc that
// closes the conn). Commands (package main) are exempt: they die with
// their process.
var Deadline = &Analyzer{
	Name: "deadline",
	Doc:  "net reads need a deadline or a context-bound lifetime",
	Run:  runDeadline,
}

var netReadMethods = map[string]bool{
	"Read": true, "ReadFrom": true, "ReadFromUDP": true, "ReadFromIP": true,
	"ReadFromUnix": true, "ReadMsgUDP": true, "ReadMsgUnix": true, "ReadMsgIP": true,
}

var deadlineMethods = map[string]bool{
	"SetDeadline": true, "SetReadDeadline": true,
}

func runDeadline(pass *Pass) {
	if pass.Pkg.Name == "main" {
		return
	}
	for _, file := range pass.Pkg.Files {
		if IsTestFile(pass.Pkg.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDeadlineFunc(pass, fn)
		}
	}
}

type netRead struct {
	pos   token.Pos
	label string
	// covered is true when some enclosing function unit takes a
	// context.Context.
	covered bool
}

// checkDeadlineFunc walks one top-level function including its nested
// literals. Deadline-setting calls anywhere in the declaration arm
// every textually later read (the set-then-loop-reading shape);
// context parameters are inherited by nested literals.
func checkDeadlineFunc(pass *Pass, fn *ast.FuncDecl) {
	var reads []netRead
	var sets []token.Pos
	info := pass.Pkg.Info

	var walk func(body *ast.BlockStmt, hasCtx bool)
	walk = func(body *ast.BlockStmt, hasCtx bool) {
		ast.Inspect(body, func(node ast.Node) bool {
			switch x := node.(type) {
			case *ast.FuncLit:
				walk(x.Body, hasCtx || HasContextParam(info, x.Type))
				return false
			case *ast.CallExpr:
				if name, ok := CalleeFrom(info, x, "net"); ok {
					if _, isMethod := ReceiverExpr(x); isMethod {
						if deadlineMethods[name] {
							sets = append(sets, x.Pos())
						} else if netReadMethods[name] {
							reads = append(reads, netRead{pos: x.Pos(), label: name, covered: hasCtx})
						}
					}
				} else if name, ok := CalleeFrom(info, x, "io"); ok {
					if (name == "ReadFull" || name == "ReadAtLeast") && len(x.Args) > 0 {
						if t := info.TypeOf(x.Args[0]); t != nil && IsNetType(t) {
							reads = append(reads, netRead{pos: x.Pos(), label: "io." + name, covered: hasCtx})
						}
					}
				}
			}
			return true
		})
	}
	walk(fn.Body, HasContextParam(info, fn.Type))

	sort.Slice(sets, func(i, j int) bool { return sets[i] < sets[j] })
	for _, r := range reads {
		if r.covered {
			continue
		}
		armed := false
		for _, s := range sets {
			if s < r.pos {
				armed = true
				break
			}
		}
		if !armed {
			pass.Reportf(r.pos, "%s without a preceding SetDeadline/SetReadDeadline and no context.Context in scope", r.label)
		}
	}
}
