// Package lint implements smartlint, the project's static-analysis
// suite. It loads every package in the module with the standard
// library's go/parser and go/types (no external analysis framework)
// and runs a set of project-specific analyzers over the typed syntax
// trees. The analyzers encode the concurrency and I/O-deadline
// invariants a smart-socket deployment lives by:
//
//   - mutexheld: no blocking network call while a sync.Mutex or
//     sync.RWMutex is held;
//   - deadline: every net.Conn/net.PacketConn read in non-test
//     library code is preceded by a Set(Read)Deadline in the same
//     function or happens in a function that takes a context.Context;
//   - sleepfree: no raw time.Sleep call in internal/* non-test code —
//     sleeping must go through an injected clock/sleep func (the
//     shaper package's `sleep: time.Sleep` field is the approved
//     pattern; referencing time.Sleep as a default value is fine,
//     calling it directly is not);
//   - nopanic: no panic in non-test, non-main library code;
//   - errdrop: no discarded error from Close/SetDeadline/
//     SetReadDeadline/SetWriteDeadline/Flush on network types in
//     library code (`defer c.Close()` and explicit `_ = c.Close()`
//     are accepted);
//   - parsecache: no direct reqlang.Parse call in the wizard request
//     path (internal/wizard, internal/core) — requirement compiles
//     there must go through the bounded reqlang.Cache so request
//     storms parse each text once;
//   - batchbuf: no allocating status.Marshal*Batch call inside a loop
//     in internal/transport — the per-epoch encode path must reuse a
//     buffer via status.Append*Batch so steady-state pushes allocate
//     nothing;
//   - scanfree: no range over sys-record tables ([]store.SysRecord)
//     in internal/core or internal/wizard non-test code — per-request
//     selection goes through the index planner, and the sanctioned
//     scans (planner fallback, pre-planner baseline) must justify
//     themselves with a //lint:ignore rationale;
//   - dgramloop: no per-datagram net.UDPConn read (ReadFromUDP and
//     kin) in internal/wizard, internal/monitor or internal/netbatch
//     non-test code — serve loops pull batches through
//     netbatch.Endpoint.ReadBatch so syscalls amortise, and the one
//     sanctioned single-datagram call (netbatch's portable fallback)
//     carries a //lint:ignore rationale.
//
// The analyzers above are syntactic: each looks at one function at a
// time and matches call shapes. The flow-sensitive suite — wiretaint,
// framecase, lockorder and leakygo — lives in the internal/lint/flow
// subpackage, which builds an intraprocedural CFG, def-use chains and
// a one-level call-summary layer on top of the same loaded packages.
// Flow analyzers register themselves through Register and run either
// per package (Run) or once over the whole module (RunModule).
//
// A finding may be suppressed with a directive comment on the same
// line or the line directly above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself a
// finding. Adding a new analyzer means adding a file with an
// *Analyzer value, registering it in Analyzers, and giving it a
// fixture-driven test in lint_test.go.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	// Path is the import path (e.g. "smartsock/internal/probe").
	Path string
	// Name is the package name ("main" for commands).
	Name string
	Fset *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Internal reports whether the package sits under an internal/ tree,
// the scope of the sleepfree analyzer.
func (p *Package) Internal() bool {
	return strings.Contains(p.Path, "/internal/") || strings.HasPrefix(p.Path, "internal/")
}

// Finding is one analyzer report.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line: [name]
// message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the short identifier used in reports and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects pass.Pkg and calls pass.Reportf for violations.
	// Analyzers that need the whole module at once leave Run nil and
	// set RunModule instead.
	Run func(pass *Pass)
	// RunModule, when set, runs once over every loaded package
	// together — the shape module-wide analyses (lock-order graphs,
	// cross-package call summaries) need.
	RunModule func(pass *ModulePass)
}

// ModulePass carries one module-level analyzer's run over all loaded
// packages at once.
type ModulePass struct {
	Pkgs     []*Package
	analyzer *Analyzer
	findings []Finding
}

// Reportf records a finding at pos, which must belong to pkg's file
// set.
func (p *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// registered holds analyzers contributed by subpackages (the flow
// suite) via Register.
var registered []*Analyzer

// Register appends analyzers to the suite returned by Analyzers. The
// flow subpackage calls it from init; importing that package is what
// arms the flow-sensitive checks.
func Register(as ...*Analyzer) {
	registered = append(registered, as...)
}

// Analyzers returns the full suite in reporting order: the built-in
// syntactic analyzers followed by registered flow analyzers.
func Analyzers() []*Analyzer {
	base := []*Analyzer{MutexHeld, Deadline, SleepFree, NoPanic, ErrDrop, ParseCache, BatchBuf, ScanFree, DgramLoop}
	return append(base, registered...)
}

// ByName returns the analyzer with the given name, if any.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Run applies the analyzers to the packages, filters suppressed
// findings and returns the rest sorted by position. Per-package
// analyzers run on each package in turn; module analyzers run once
// over the whole set.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	ig := newIgnoreSet()
	for _, pkg := range pkgs {
		ig.collect(pkg)
	}
	out := append([]Finding(nil), ig.malformed...)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Pkg: pkg, analyzer: a}
			a.Run(pass)
			for _, f := range pass.findings {
				if !ig.suppresses(f) {
					out = append(out, f)
				}
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		pass := &ModulePass{Pkgs: pkgs, analyzer: a}
		a.RunModule(pass)
		for _, f := range pass.findings {
			if !ig.suppresses(f) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// ignoreDirective is the parsed form of //lint:ignore <name> <reason>.
type ignoreDirective struct {
	name string
}

type ignoreSet struct {
	// byLine maps file -> line -> directives active for that line.
	byLine    map[string]map[int][]ignoreDirective
	malformed []Finding
}

const ignorePrefix = "lint:ignore"

func newIgnoreSet() *ignoreSet {
	return &ignoreSet{byLine: make(map[string]map[int][]ignoreDirective)}
}

// collect scans every comment in the package for suppression
// directives. A directive suppresses matching findings on its own
// line and on the line immediately below it, so both trailing and
// preceding-line comments work.
func (ig *ignoreSet) collect(pkg *Package) {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) < 2 {
					ig.malformed = append(ig.malformed, Finding{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				if _, ok := ByName(fields[0]); !ok {
					ig.malformed = append(ig.malformed, Finding{
						Pos:      pos,
						Analyzer: "lint",
						Message:  fmt.Sprintf("directive names unknown analyzer %q", fields[0]),
					})
					continue
				}
				lines := ig.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]ignoreDirective)
					ig.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], ignoreDirective{name: fields[0]})
			}
		}
	}
}

func (ig *ignoreSet) suppresses(f Finding) bool {
	lines := ig.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range lines[line] {
			if d.name == f.Analyzer {
				return true
			}
		}
	}
	return false
}

// --- shared type-query helpers ---------------------------------------

// IsTestFile reports whether the file holding pos is a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// CalleeFunc resolves the function or method object a call invokes,
// when it is statically known.
func CalleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return obj, true
		}
	case *ast.Ident:
		if obj, ok := info.Uses[fn].(*types.Func); ok {
			return obj, true
		}
	}
	return nil, false
}

// CalleeFrom reports whether the call statically resolves to a
// function or method declared in the package with the given import
// path, returning its name.
func CalleeFrom(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	obj, ok := CalleeFunc(info, call)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", false
	}
	return obj.Name(), true
}

// ReceiverExpr returns the receiver expression of a method call, e.g.
// `s.mu` for `s.mu.Lock()`.
func ReceiverExpr(call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	return sel.X, true
}

// IsNetType reports whether t (after stripping pointers) is a named
// type declared in package net.
func IsNetType(t types.Type) bool {
	for {
		ptr, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "net"
}

// HasContextParam reports whether the function type declares a
// context.Context parameter.
func HasContextParam(info *types.Info, ftype *ast.FuncType) bool {
	if ftype == nil || ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}

// FuncUnits walks the file and yields every function body — top-level
// declarations and function literals — exactly once each, with the
// corresponding *ast.FuncType. Analyzers that need per-function state
// use this instead of raw ast.Inspect so a nested literal is not
// double-visited with its enclosing function's state.
func FuncUnits(file *ast.File, visit func(ftype *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Type, fn.Body)
			}
		case *ast.FuncLit:
			visit(fn.Type, fn.Body)
		}
		return true
	})
}

// InspectShallow walks body but does not descend into nested function
// literals, which form their own analysis units.
func InspectShallow(body *ast.BlockStmt, visit func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return visit(n)
	})
}
