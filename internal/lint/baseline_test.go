package lint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"smartsock/internal/lint"
)

func jf(file string, line int, analyzer, msg string) lint.JSONFinding {
	return lint.JSONFinding{File: file, Line: line, Analyzer: analyzer, Message: msg}
}

// TestBaselineRoundTrip pins the -json/baseline contract: what
// WriteJSON emits, ReadBaselineFile loads back, and a baseline equal
// to the current findings diffs to nothing.
func TestBaselineRoundTrip(t *testing.T) {
	findings := []lint.JSONFinding{
		jf("internal/a/a.go", 10, "wiretaint", "unchecked make size"),
		jf("internal/a/a.go", 4, "leakygo", "no shutdown path"),
		jf("internal/b/b.go", 7, "lockorder", "inversion"),
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := lint.WriteJSON(f, findings); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := lint.ReadBaselineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(findings) {
		t.Fatalf("loaded %d findings, want %d", len(loaded), len(findings))
	}
	fresh, stale := lint.Diff(findings, loaded)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("round trip not clean: fresh=%v stale=%v", fresh, stale)
	}
}

func TestBaselineDiff(t *testing.T) {
	baseline := []lint.JSONFinding{
		jf("a.go", 5, "wiretaint", "old finding"),
		jf("a.go", 9, "wiretaint", "fixed finding"),
	}
	current := []lint.JSONFinding{
		// Same finding, drifted to another line: still baselined.
		jf("a.go", 50, "wiretaint", "old finding"),
		jf("a.go", 12, "framecase", "brand new"),
	}
	fresh, stale := lint.Diff(current, baseline)
	if len(fresh) != 1 || fresh[0].Analyzer != "framecase" {
		t.Errorf("fresh = %v, want just the framecase finding", fresh)
	}
	if len(stale) != 1 || stale[0].Message != "fixed finding" {
		t.Errorf("stale = %v, want just the fixed finding", stale)
	}

	// Multiset matching: two identical findings need two entries.
	dup := []lint.JSONFinding{
		jf("b.go", 1, "leakygo", "same message"),
		jf("b.go", 2, "leakygo", "same message"),
	}
	fresh, _ = lint.Diff(dup, dup[:1])
	if len(fresh) != 1 {
		t.Errorf("duplicate diff: %d fresh, want 1", len(fresh))
	}
}

func TestBaselineMissingFile(t *testing.T) {
	loaded, err := lint.ReadBaselineFile(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("missing baseline must not error: %v", err)
	}
	if loaded != nil {
		t.Fatalf("missing baseline loaded %v, want nil", loaded)
	}
	fresh, _ := lint.Diff([]lint.JSONFinding{jf("a.go", 1, "wiretaint", "m")}, loaded)
	if len(fresh) != 1 {
		t.Errorf("empty baseline: %d fresh, want 1", len(fresh))
	}
}

// TestToJSONRelativizes checks the repo-relative file paths the
// committed baseline depends on.
func TestToJSONRelativizes(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("work", "repo")
	findings := []lint.Finding{
		{Pos: token.Position{Filename: filepath.Join(root, "internal", "x", "x.go"), Line: 3}, Analyzer: "wiretaint", Message: "m"},
	}
	out := lint.ToJSON(findings, root)
	if out[0].File != "internal/x/x.go" {
		t.Errorf("in-root file = %q, want internal/x/x.go", out[0].File)
	}
	if out[0].Line != 3 {
		t.Errorf("line = %d, want 3", out[0].Line)
	}
}
