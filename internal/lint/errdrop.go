package lint

import (
	"go/ast"
)

// ErrDrop flags statements in library code that silently discard the
// error of a cleanup or deadline call on a network type:
// Close/SetDeadline/SetReadDeadline/SetWriteDeadline on anything from
// package net, and Flush on a bufio writer (the buffered side of a
// conn — an unflushed frame is a hung peer). Two idioms stay legal:
// `defer c.Close()` (cleanup on all return paths, nothing useful to
// do with the error) and the explicit `_ = c.Close()` (the author
// decided the error is uninteresting and said so).
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "no silently dropped Close/SetDeadline/Flush error on network types",
	Run:  runErrDrop,
}

var errDropMethods = map[string]map[string]bool{
	"net": {
		"Close": true, "SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
	},
	"bufio": {
		"Flush": true,
	},
}

func runErrDrop(pass *Pass) {
	if pass.Pkg.Name == "main" {
		return
	}
	for _, file := range pass.Pkg.Files {
		if IsTestFile(pass.Pkg.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, isMethod := ReceiverExpr(call); !isMethod {
				return true
			}
			for pkgPath, methods := range errDropMethods {
				if name, ok := CalleeFrom(pass.Pkg.Info, call, pkgPath); ok && methods[name] {
					pass.Reportf(call.Pos(), "%s error discarded; handle it, or write `_ = x.%s()` to drop it on purpose", name, name)
				}
			}
			return true
		})
	}
}
