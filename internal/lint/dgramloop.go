package lint

import (
	"go/ast"
)

// dgramLoopScope lists the packages whose serve loops live on the
// batched datagram plane. A direct per-datagram UDP read there pays
// one syscall per datagram — exactly the cost recvmmsg exists to
// amortise — and silently bypasses the netbatch metrics that make the
// plane observable. The one sanctioned call is netbatch's own
// portable fallback, which carries a //lint:ignore rationale.
var dgramLoopScope = map[string]bool{
	"smartsock/internal/wizard":   true,
	"smartsock/internal/monitor":  true,
	"smartsock/internal/netbatch": true,
}

// dgramReadMethods are the net.UDPConn single-datagram receive calls.
// These names exist only on UDPConn, so matching any net-package
// method with one of them is precise.
var dgramReadMethods = map[string]bool{
	"ReadFromUDP":         true,
	"ReadFromUDPAddrPort": true,
	"ReadMsgUDP":          true,
	"ReadMsgUDPAddrPort":  true,
}

// DgramLoop reports per-datagram UDP reads in serve-loop packages.
var DgramLoop = &Analyzer{
	Name: "dgramloop",
	Doc:  "wizard/monitor/netbatch non-test code must not read UDP one datagram at a time; pull batches through netbatch.Endpoint.ReadBatch, or justify the call with a //lint:ignore rationale",
	Run: func(pass *Pass) {
		if !dgramLoopScope[pass.Pkg.Path] {
			return
		}
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if IsTestFile(pass.Pkg.Fset, call.Pos()) {
					return true
				}
				name, ok := CalleeFrom(pass.Pkg.Info, call, "net")
				if !ok || !dgramReadMethods[name] {
					return true
				}
				pass.Reportf(call.Pos(), "per-datagram %s on the serve path; read through netbatch.Endpoint.ReadBatch so syscalls amortise, or justify with //lint:ignore dgramloop <reason>", name)
				return true
			})
		}
	},
}
