package flow_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"smartsock/internal/lint"
	"smartsock/internal/lint/flow"
)

// flowSuite is the registered flow-sensitive analyzer set, run
// together over every fixture so cross-analyzer noise fails the test
// too.
var flowSuite = []*lint.Analyzer{flow.WireTaint, flow.FrameCase, flow.LockOrder, flow.LeakyGo}

// Fixtures type-check against tiny in-memory stand-ins for their
// imports, mirroring the lint package's own test harness: hermetic,
// fast, and method resolution behaves exactly like the real packages
// because only the declared import paths matter to the analyzers.
var stubSources = map[string]string{
	"sync": `package sync
type Mutex struct{ state int32 }
func (m *Mutex) Lock() {}
func (m *Mutex) Unlock() {}
type RWMutex struct{ w Mutex }
func (m *RWMutex) Lock() {}
func (m *RWMutex) Unlock() {}
func (m *RWMutex) RLock() {}
func (m *RWMutex) RUnlock() {}
type WaitGroup struct{ state uint64 }
func (wg *WaitGroup) Add(delta int) {}
func (wg *WaitGroup) Done() {}
func (wg *WaitGroup) Wait() {}
`,
	"context": `package context
type Context interface {
	Err() error
	Done() <-chan struct{}
}
func Background() Context { return nil }
`,
	"io": `package io
type Reader interface{ Read(p []byte) (n int, err error) }
func ReadFull(r Reader, buf []byte) (int, error) { return 0, nil }
func ReadAtLeast(r Reader, buf []byte, min int) (int, error) { return 0, nil }
`,
	"net": `package net
type Conn interface {
	Read(b []byte) (n int, err error)
	Write(b []byte) (n int, err error)
	Close() error
}
func Dial(network, address string) (Conn, error) { return nil, nil }
`,
	"encoding/binary": `package binary
func Uvarint(buf []byte) (uint64, int) { return 0, 0 }
func PutUvarint(buf []byte, x uint64) int { return 0 }
`,
	"smartsock/internal/status": `package status
import "io"
type Frame struct {
	Type uint8
	Data []byte
}
func ReadFrame(r io.Reader) (Frame, error) { return Frame{}, nil }
func ReadFrameInto(r io.Reader, f *Frame) error { return nil }
`,
}

type stubImporter struct {
	fset  *token.FileSet
	cache map[string]*types.Package
}

func newStubImporter() *stubImporter {
	return &stubImporter{fset: token.NewFileSet(), cache: map[string]*types.Package{}}
}

func (s *stubImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := s.cache[path]; ok {
		return pkg, nil
	}
	src, ok := stubSources[path]
	if !ok {
		return nil, fmt.Errorf("no stub for import %q", path)
	}
	file, err := parser.ParseFile(s.fset, path+"/stub.go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: s}
	pkg, err := conf.Check(path, s.fset, []*ast.File{file}, nil)
	if err != nil {
		return nil, err
	}
	s.cache[path] = pkg
	return pkg, nil
}

// marker is one want:/nowant: annotation in a fixture source file.
type marker struct {
	file     string
	line     int
	analyzer string
	want     bool
}

var markerRE = regexp.MustCompile(`//\s*(nowant|want):(\w+)`)

// loadFixture parses and type-checks every file of one testdata
// mini-package, collecting its finding markers.
func loadFixture(t *testing.T, dir, pkgPath string) (*lint.Package, []marker) {
	t.Helper()
	root := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var marks []marker
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(root, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		file, err := parser.ParseFile(fset, filepath.Join(root, e.Name()), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse fixture %s: %v", e.Name(), err)
		}
		files = append(files, file)
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range markerRE.FindAllStringSubmatch(line, -1) {
				known := false
				for _, a := range flowSuite {
					if a.Name == m[2] {
						known = true
					}
				}
				if !known {
					t.Fatalf("%s:%d: marker names unknown analyzer %q", e.Name(), i+1, m[2])
				}
				marks = append(marks, marker{
					file:     filepath.Join(root, e.Name()),
					line:     i + 1,
					analyzer: m[2],
					want:     m[1] == "want",
				})
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: newStubImporter()}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-check fixture %s: %v", dir, err)
	}
	return &lint.Package{
		Path:  pkgPath,
		Name:  files[0].Name.Name,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, marks
}

type findingKey struct {
	file     string
	line     int
	analyzer string
}

// TestFlowFixtures runs the whole flow suite over each fixture
// package and requires the findings to match the want: markers
// exactly — a finding without a marker fails just like a marker
// without a finding.
func TestFlowFixtures(t *testing.T) {
	cases := []struct{ dir, pkgPath string }{
		{"wtfix", "smartsock/internal/wtfix"},
		{"fcfix", "smartsock/internal/fcfix"},
		{"lofix", "smartsock/internal/lofix"},
		{"lgfix", "smartsock/internal/lgfix"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, marks := loadFixture(t, tc.dir, tc.pkgPath)
			findings := lint.Run([]*lint.Package{pkg}, flowSuite)

			got := make(map[findingKey]int)
			for _, f := range findings {
				got[findingKey{f.Pos.Filename, f.Pos.Line, f.Analyzer}]++
			}
			want := make(map[findingKey]int)
			for _, m := range marks {
				k := findingKey{m.file, m.line, m.analyzer}
				if m.want {
					want[k]++
				} else if got[k] > 0 {
					t.Errorf("line %d: unexpected %s finding on a nowant line", m.line, m.analyzer)
				}
			}
			for k, n := range want {
				if got[k] != n {
					t.Errorf("line %d: %d %s finding(s), want %d", k.line, got[k], k.analyzer, n)
				}
			}
			for k, n := range got {
				if want[k] == 0 {
					t.Errorf("line %d: %d unmarked %s finding(s)", k.line, n, k.analyzer)
				}
			}
			if t.Failed() {
				for _, f := range findings {
					t.Logf("finding: %s", f)
				}
			}
		})
	}
}

// parseFunc parses src and returns the named function's pieces plus
// full type info, for the CFG and def-use unit tests.
func parseFunc(t *testing.T, src, name string) (*token.FileSet, *ast.File, *ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "unit.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: newStubImporter()}
	if _, err := conf.Check("example.com/p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fset, file, fd, info
		}
	}
	t.Fatalf("no function %q in source", name)
	return nil, nil, nil, nil
}

func TestBuildCFGShape(t *testing.T) {
	src := `package p
func f(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			total += i
			continue
		}
		total -= i
	}
	switch total {
	case 0:
		return -1
	}
	return total
}
`
	_, _, fd, _ := parseFunc(t, src, "f")
	g := flow.BuildCFG(fd.Body)

	reachable := map[*flow.Block]bool{g.Entry: true}
	stack := []*flow.Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reachable[s] {
				reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
	if !reachable[g.Exit] {
		t.Fatal("exit not reachable from entry")
	}
	for b := range reachable {
		if b != g.Exit && len(b.Succs) == 0 {
			t.Errorf("reachable block %d has no successors and is not the exit", b.Index)
		}
	}

	// The for loop must produce a cycle.
	hasCycle := false
	state := make(map[*flow.Block]int) // 0 unvisited, 1 on stack, 2 done
	var dfs func(b *flow.Block)
	dfs = func(b *flow.Block) {
		state[b] = 1
		for _, s := range b.Succs {
			switch state[s] {
			case 0:
				dfs(s)
			case 1:
				hasCycle = true
			}
		}
		state[b] = 2
	}
	dfs(g.Entry)
	if !hasCycle {
		t.Error("loop produced no back edge in the CFG")
	}
}

func TestDefUseChains(t *testing.T) {
	src := `package p
func f(a int) int {
	x := 1
	if a > 0 {
		x = 2
	}
	return x
}
`
	_, _, fd, info := parseFunc(t, src, "f")
	g := flow.BuildCFG(fd.Body)
	du := flow.BuildDefUse(g, info, fd.Type)

	// The returned x can hold either definition.
	var retX, condA *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if id, ok := n.Results[0].(*ast.Ident); ok && id.Name == "x" {
				retX = id
			}
		case *ast.BinaryExpr:
			if id, ok := n.X.(*ast.Ident); ok && id.Name == "a" {
				condA = id
			}
		}
		return true
	})
	if retX == nil || condA == nil {
		t.Fatal("fixture idents not found")
	}
	if defs := du.DefsOf(retX); len(defs) != 2 {
		t.Errorf("DefsOf(return x) = %d definitions, want 2 (x := 1 and x = 2)", len(defs))
	}
	if defs := du.DefsOf(condA); len(defs) != 1 {
		t.Errorf("DefsOf(a in condition) = %d definitions, want 1 (the parameter)", len(defs))
	}
}
