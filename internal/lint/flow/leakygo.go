package flow

import (
	"go/ast"
	"go/token"
	"go/types"

	"smartsock/internal/lint"
)

// LeakyGo requires every goroutine spawned in library code to have a
// shutdown path. A `go` statement is accepted when:
//
//   - an argument of the spawned call is a context.Context (the
//     `go x.Run(ctx)` shape);
//   - the spawned function literal observes a shutdown signal: it
//     references a context value, receives from a channel, ranges
//     over a channel, or calls WaitGroup.Done;
//   - the spawned named function's body does any of the above (a
//     one-level call summary, so `go w.serve(ctx2)` and helpers that
//     take their context from a field both pass);
//   - the spawn sits in a loop whose body acquires a semaphore (a
//     channel send/receive in the loop bounds outstanding work).
//
// Anything else is a goroutine nothing can stop: it outlives
// Close/cancel and turns into the slow leak the chaos tests exist to
// catch. Goroutines whose lifetime is genuinely owned elsewhere
// (closing the connection they read stops them) get a documented
// //lint:ignore.
var LeakyGo = &lint.Analyzer{
	Name:      "leakygo",
	Doc:       "library goroutines must select on ctx/done, be WaitGroup-tracked, or be semaphore-bounded in loops",
	RunModule: runLeakyGo,
}

func runLeakyGo(pass *lint.ModulePass) {
	sums := BuildSummaries(pass.Pkgs)
	for _, u := range sums.AllUnits() {
		if u.Test || u.Pkg.Name == "main" {
			continue
		}
		checkUnitGoroutines(pass, sums, u)
	}
}

// checkUnitGoroutines walks one unit's own statements (not nested
// literals — they are units of their own) looking for go statements.
func checkUnitGoroutines(pass *lint.ModulePass, sums *Summaries, u *Unit) {
	info := u.Pkg.Info
	var walk func(n ast.Node, loops []*ast.BlockStmt)
	walk = func(n ast.Node, loops []*ast.BlockStmt) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			// Separate unit.
			return
		case *ast.ForStmt:
			walkChildren(n, func(c ast.Node) { walk(c, appendLoop(loops, n.Body)) })
			return
		case *ast.RangeStmt:
			walkChildren(n, func(c ast.Node) { walk(c, appendLoop(loops, n.Body)) })
			return
		case *ast.GoStmt:
			if !goAccepted(info, sums, n, loops) {
				pass.Reportf(u.Pkg, n.Pos(), "goroutine in %s has no shutdown path: pass a context, observe a done channel or WaitGroup in its body, or bound loop spawns with a semaphore",
					u.Name)
			}
			// Still walk the call's arguments (they may nest more).
		}
		walkChildren(n, func(c ast.Node) { walk(c, loops) })
	}
	walk(u.Body, nil)
}

func appendLoop(loops []*ast.BlockStmt, body *ast.BlockStmt) []*ast.BlockStmt {
	out := make([]*ast.BlockStmt, len(loops), len(loops)+1)
	copy(out, loops)
	return append(out, body)
}

// walkChildren visits n's direct children once each.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c == nil {
			return false
		}
		visit(c)
		return false
	})
}

// goAccepted applies the acceptance rules to one go statement.
func goAccepted(info *types.Info, sums *Summaries, g *ast.GoStmt, loops []*ast.BlockStmt) bool {
	call := g.Call
	for _, arg := range call.Args {
		if t := info.TypeOf(arg); t != nil && isContextType(t) {
			return true
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if bodyCtxAware(info, lit.Type, lit.Body) {
			return true
		}
	}
	if fn, ok := lint.CalleeFunc(info, call); ok && sums.CtxAware(fn) {
		return true
	}
	for _, loop := range loops {
		if loopHasSemaphore(info, loop) {
			return true
		}
	}
	return false
}

// loopHasSemaphore reports whether the loop body acquires a
// channel-based semaphore: a send into a channel, or a bare receive,
// at statement level — either shape bounds how many iterations can be
// in flight.
func loopHasSemaphore(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	lint.InspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.ExprStmt:
			if u, ok := n.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}
