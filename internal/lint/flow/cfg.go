package flow

import (
	"go/ast"
	"go/token"
)

// NodeKind says how a CFG node's expression or statement is used,
// which is what the analyzers care about: a comparison in an if
// condition is a sanitizer, the same comparison as a for-loop
// condition is a sink (it bounds the iteration count).
type NodeKind int

const (
	// KindStmt is an ordinary straight-line statement.
	KindStmt NodeKind = iota
	// KindCond is a branch condition: an if condition, a switch tag,
	// a type-switch assign, or a case-clause expression list.
	KindCond
	// KindLoopCond is a for-loop condition, evaluated once per
	// iteration and therefore a loop bound.
	KindLoopCond
	// KindRange is a range statement head (the ranged-over expression
	// plus the key/value assignment).
	KindRange
)

// Node is one statement or control expression in a basic block.
type Node struct {
	N    ast.Node
	Kind NodeKind
}

// Block is a basic block: nodes executed in order, then a transfer to
// one of Succs. An empty Succs means the function exits (or the block
// is the synthetic exit).
type Block struct {
	Index int
	Nodes []Node
	Succs []*Block
}

// Graph is the control-flow graph of one function body. Function
// literals are not inlined — each literal is its own analysis unit
// with its own graph.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// builder carries the state of one graph construction.
type builder struct {
	g *Graph
	// cur is the block new nodes append to; nil after a terminating
	// statement (return, break, ...) until a new block starts.
	cur *Block
	// loops is the stack of enclosing break/continue targets.
	loops []loopFrame
	// labels maps label names to their loop/switch frame so labeled
	// break/continue resolve.
	labels map[string]*loopFrame
	// pendingLabel is the label attached to the next loop or switch.
	pendingLabel string
}

type loopFrame struct {
	label        string
	breakTo      *Block
	continueTo   *Block // nil for switch/select frames
	isLoop       bool
	fallthroughT *Block // next case clause body, for fallthrough
}

// BuildCFG constructs the control-flow graph of body. The graph
// over-approximates: goto jumps to the function exit, and every
// switch is assumed able to skip all cases, so facts merged at joins
// stay sound for the intersection-style analyses built on top.
func BuildCFG(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: make(map[string]*loopFrame)}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	return b.g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// ensure returns the current block, starting a fresh (unreachable)
// one after a terminator so later statements still get analyzed.
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node, kind NodeKind) {
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, Node{N: n, Kind: kind})
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond, KindCond)
		head := b.ensure()
		join := b.newBlock()

		thenBlk := b.newBlock()
		b.edge(head, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, join)
		}

		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(head, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		} else {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		condBlk := b.newBlock()
		exitBlk := b.newBlock()
		b.edge(b.ensure(), condBlk)
		if s.Cond != nil {
			condBlk.Nodes = append(condBlk.Nodes, Node{N: s.Cond, Kind: KindLoopCond})
		}
		frame := b.pushLoop(exitBlk, condBlk)
		bodyBlk := b.newBlock()
		b.edge(condBlk, bodyBlk)
		if s.Cond != nil {
			b.edge(condBlk, exitBlk)
		}
		b.cur = bodyBlk
		b.stmtList(s.Body.List)
		if s.Post != nil {
			b.stmt(s.Post)
		}
		if b.cur != nil {
			b.edge(b.cur, condBlk)
		}
		b.popLoop(frame)
		b.cur = exitBlk

	case *ast.RangeStmt:
		headBlk := b.newBlock()
		exitBlk := b.newBlock()
		b.edge(b.ensure(), headBlk)
		headBlk.Nodes = append(headBlk.Nodes, Node{N: s, Kind: KindRange})
		frame := b.pushLoop(exitBlk, headBlk)
		bodyBlk := b.newBlock()
		b.edge(headBlk, bodyBlk)
		b.edge(headBlk, exitBlk)
		b.cur = bodyBlk
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, headBlk)
		}
		b.popLoop(frame)
		b.cur = exitBlk

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag, KindCond)
		}
		b.caseClauses(s.Body.List, func(cc *ast.CaseClause) []ast.Stmt { return cc.Body })

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign, KindCond)
		b.caseClauses(s.Body.List, func(cc *ast.CaseClause) []ast.Stmt { return cc.Body })

	case *ast.SelectStmt:
		head := b.ensure()
		join := b.newBlock()
		frame := b.pushSwitch(join)
		for _, clause := range s.Body.List {
			comm := clause.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		}
		// A select with no default blocks until a case fires, but for
		// dataflow purposes treating it as skippable only weakens
		// facts, never unsoundly strengthens them.
		b.edge(head, join)
		b.popLoop(frame)
		b.cur = join

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				b.edge(b.ensure(), f.breakTo)
			} else {
				b.edge(b.ensure(), b.g.Exit)
			}
			b.cur = nil
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				b.edge(b.ensure(), f.continueTo)
			} else {
				b.edge(b.ensure(), b.g.Exit)
			}
			b.cur = nil
		case token.GOTO:
			// Rare in this codebase; approximate as an exit edge.
			b.edge(b.ensure(), b.g.Exit)
			b.cur = nil
		case token.FALLTHROUGH:
			if len(b.loops) > 0 {
				if t := b.loops[len(b.loops)-1].fallthroughT; t != nil {
					b.edge(b.ensure(), t)
				}
			}
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.add(s, KindStmt)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil

	case nil:
		// no statement (e.g. empty else)

	default:
		// DeclStmt, AssignStmt, ExprStmt, SendStmt, IncDecStmt,
		// GoStmt, DeferStmt, EmptyStmt, ...
		b.add(s, KindStmt)
	}
}

// caseClauses builds the shared switch shape: every clause is entered
// from the head, the head can also skip straight to the join (a
// missing default, or a default the analysis treats as skippable —
// over-approximating control keeps intersection facts sound).
func (b *builder) caseClauses(list []ast.Stmt, bodyOf func(*ast.CaseClause) []ast.Stmt) {
	head := b.ensure()
	join := b.newBlock()
	frame := b.pushSwitch(join)
	// Pre-create clause entry blocks so fallthrough can target the
	// next clause.
	blocks := make([]*Block, len(list))
	for i := range list {
		blocks[i] = b.newBlock()
	}
	for i, clause := range list {
		cc := clause.(*ast.CaseClause)
		blk := blocks[i]
		b.edge(head, blk)
		b.cur = blk
		for _, e := range cc.List {
			b.add(e, KindCond)
		}
		if i+1 < len(list) {
			b.loops[len(b.loops)-1].fallthroughT = blocks[i+1]
		} else {
			b.loops[len(b.loops)-1].fallthroughT = nil
		}
		b.stmtList(bodyOf(cc))
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	b.edge(head, join)
	b.popLoop(frame)
	b.cur = join
}

func (b *builder) pushLoop(breakTo, continueTo *Block) int {
	f := loopFrame{label: b.pendingLabel, breakTo: breakTo, continueTo: continueTo, isLoop: true}
	b.pendingLabel = ""
	b.loops = append(b.loops, f)
	if f.label != "" {
		fp := &b.loops[len(b.loops)-1]
		b.labels[f.label] = fp
	}
	return len(b.loops) - 1
}

func (b *builder) pushSwitch(breakTo *Block) int {
	f := loopFrame{label: b.pendingLabel, breakTo: breakTo}
	b.pendingLabel = ""
	b.loops = append(b.loops, f)
	if f.label != "" {
		fp := &b.loops[len(b.loops)-1]
		b.labels[f.label] = fp
	}
	return len(b.loops) - 1
}

func (b *builder) popLoop(idx int) {
	f := b.loops[idx]
	if f.label != "" {
		delete(b.labels, f.label)
	}
	b.loops = b.loops[:idx]
}

// findFrame resolves a break/continue target: the labeled frame, or
// the innermost loop (for continue) or loop/switch (for break).
func (b *builder) findFrame(label *ast.Ident, needLoop bool) *loopFrame {
	if label != nil {
		if f, ok := b.labels[label.Name]; ok {
			return f
		}
		return nil
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		if needLoop && !b.loops[i].isLoop {
			continue
		}
		return &b.loops[i]
	}
	return nil
}
