package flow

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"smartsock/internal/lint"
)

// FrameCase keeps frame dispatch exhaustive as the wire protocol
// grows. A "frame type" is a named integer type with at least two
// package-level constants whose names start with "Type" (the
// status.RecordType shape). Two invariants:
//
//   - Every value switch over a frame type either covers all of the
//     type's constants or carries a non-empty default arm — an empty
//     default (or a missing one with constants left over) silently
//     drops unknown frames, the bug class the transport's
//     UnknownFrames counters exist to surface.
//
//   - The package declaring a frame type must also declare a
//     package-level codec registry: a map keyed by the frame type
//     with one non-empty entry per constant. The registry's value
//     struct names the Append*/Parse* pair for each frame, so adding
//     a constant without wiring encode+decode fails the lint run
//     instead of failing in production.
var FrameCase = &lint.Analyzer{
	Name: "framecase",
	Doc:  "frame-type switches must be exhaustive or count unknowns; every frame constant needs a codec registry entry",
	Run:  runFrameCase,
}

// frameTypeInfo describes one detected frame enum.
type frameTypeInfo struct {
	typ    types.Type
	consts []*types.Const
}

// frameTypeOf reports whether t is a frame type, returning its
// constants sorted by value.
func frameTypeOf(t types.Type) (*frameTypeInfo, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil, false
	}
	scope := obj.Pkg().Scope()
	var consts []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Type") {
			continue
		}
		if types.Identical(c.Type(), t) {
			consts = append(consts, c)
		}
	}
	if len(consts) < 2 {
		return nil, false
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].Name() < consts[j].Name() })
	return &frameTypeInfo{typ: t, consts: consts}, true
}

func runFrameCase(pass *lint.Pass) {
	pkg := pass.Pkg
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pkg.Info.TypeOf(sw.Tag)
			if tagType == nil {
				return true
			}
			ft, ok := frameTypeOf(tagType)
			if !ok {
				return true
			}
			checkDispatch(pass, sw, ft)
			return true
		})
	}
	checkRegistries(pass)
}

// checkDispatch verifies one frame-type switch.
func checkDispatch(pass *lint.Pass, sw *ast.SwitchStmt, ft *frameTypeInfo) {
	pkg := pass.Pkg
	covered := make(map[*types.Const]bool)
	hasDefault := false
	defaultEmpty := false
	for _, clause := range sw.Body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
			defaultEmpty = len(cc.Body) == 0
			continue
		}
		for _, e := range cc.List {
			if c, ok := constOf(pkg.Info, e); ok {
				covered[c] = true
			}
		}
	}
	typeName := types.TypeString(ft.typ, types.RelativeTo(pkg.Types))
	if hasDefault {
		if defaultEmpty {
			pass.Reportf(sw.Pos(), "switch on %s has an empty default: unknown frames vanish silently — count them or return an error", typeName)
		}
		return
	}
	var missing []string
	for _, c := range ft.consts {
		if !covered[c] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(), "switch on %s is not exhaustive: missing %s — add cases or a default arm that counts unknown frames",
			typeName, strings.Join(missing, ", "))
	}
}

// checkRegistries verifies that every frame type declared in this
// package has a complete codec registry map.
func checkRegistries(pass *lint.Pass) {
	pkg := pass.Pkg
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		ft, ok := frameTypeOf(tn.Type())
		if !ok {
			continue
		}
		reg, keys := findRegistry(pkg, ft)
		if reg == nil {
			pass.Reportf(tn.Pos(), "frame type %s has no codec registry: declare a package-level map[%s]... with one entry per Type constant pairing its Append*/Parse* functions",
				tn.Name(), tn.Name())
			continue
		}
		var missing []string
		for _, c := range ft.consts {
			if !keys[c] {
				missing = append(missing, c.Name())
			}
		}
		if len(missing) > 0 {
			pass.Reportf(reg.Pos(), "codec registry misses frame constants: %s — every Type constant needs its encode/decode pair registered",
				strings.Join(missing, ", "))
		}
	}
}

// findRegistry locates a package-level composite-literal map keyed by
// the frame type, returning the literal and the constants its
// non-empty entries cover.
func findRegistry(pkg *lint.Package, ft *frameTypeInfo) (*ast.CompositeLit, map[*types.Const]bool) {
	var found *ast.CompositeLit
	keys := make(map[*types.Const]bool)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					lit, ok := ast.Unparen(v).(*ast.CompositeLit)
					if !ok {
						continue
					}
					t := pkg.Info.TypeOf(lit)
					if t == nil {
						continue
					}
					m, ok := t.Underlying().(*types.Map)
					if !ok || !types.Identical(m.Key(), ft.typ) {
						continue
					}
					found = lit
					for _, el := range lit.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						c, ok := constOf(pkg.Info, kv.Key)
						if !ok {
							continue
						}
						if entryLit, ok := ast.Unparen(kv.Value).(*ast.CompositeLit); ok && len(entryLit.Elts) == 0 {
							// An empty entry registers nothing.
							continue
						}
						keys[c] = true
					}
				}
			}
		}
	}
	return found, keys
}

// constOf resolves an expression to the constant object it names.
func constOf(info *types.Info, e ast.Expr) (*types.Const, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		c, ok := info.Uses[e].(*types.Const)
		return c, ok
	case *ast.SelectorExpr:
		c, ok := info.Uses[e.Sel].(*types.Const)
		return c, ok
	}
	return nil, false
}
