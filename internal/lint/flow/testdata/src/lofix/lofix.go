// Package lofix exercises the lockorder analyzer: lock-order
// inversions across the acquisition graph and held-lock re-acquires
// through call chains.
package lofix

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// abOrder takes a then b; baOrder takes b then a. Each acquisition
// that participates in the resulting cycle is reported.
func (p *pair) abOrder() {
	p.a.Lock()
	p.b.Lock() // want:lockorder
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) baOrder() {
	p.b.Lock()
	p.a.Lock() // want:lockorder
	p.a.Unlock()
	p.b.Unlock()
}

type box struct{ mu sync.Mutex }

func (b *box) get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return 1
}

// double calls get with mu held, and get acquires mu itself: a
// self-deadlock through the one-level call summary.
func (b *box) double() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.get() * 2 // want:lockorder
}

// relock re-acquires directly.
func (b *box) relock() {
	b.mu.Lock()
	b.mu.Lock() // want:lockorder
	b.mu.Unlock()
	b.mu.Unlock()
}

type nested struct {
	outer sync.Mutex
	inner sync.Mutex
}

// A consistent outer-then-inner order module-wide is the normal
// fine-grained-locking shape: no finding.
func (n *nested) first() {
	n.outer.Lock()
	n.inner.Lock() // nowant:lockorder
	n.inner.Unlock()
	n.outer.Unlock()
}

func (n *nested) second() {
	n.outer.Lock()
	n.inner.Lock() // nowant:lockorder
	n.inner.Unlock()
	n.outer.Unlock()
}
