// Package wtfix exercises the wiretaint analyzer: values derived from
// the network must pass a bounds check before they become a make
// size, a slice index, a slice bound, or a loop bound. Lines with a
// trailing want marker expect a finding; nowant lines document the
// sanitized counterpart.
package wtfix

import (
	"encoding/binary"
	"io"
	"net"

	"smartsock/internal/status"
)

const maxFrame = 1 << 16

// An unchecked make size from a conn read.
func header(c net.Conn) ([]byte, error) {
	hdr := make([]byte, 4)
	if _, err := c.Read(hdr); err != nil {
		return nil, err
	}
	n, _ := binary.Uvarint(hdr)
	return make([]byte, n), nil // want:wiretaint
}

// The same read, bounds-checked before allocation: clean.
func headerChecked(c net.Conn) ([]byte, error) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(c, hdr); err != nil {
		return nil, err
	}
	n, _ := binary.Uvarint(hdr)
	if n > maxFrame {
		return nil, nil
	}
	return make([]byte, n), nil // nowant:wiretaint
}

// A tainted slice index.
func pick(c net.Conn, table []string) string {
	b := make([]byte, 1)
	if _, err := c.Read(b); err != nil {
		return ""
	}
	i := int(b[0])
	return table[i] // want:wiretaint
}

// The guarded version is clean; both sides of || sanitize.
func pickChecked(c net.Conn, table []string) string {
	b := make([]byte, 1)
	if _, err := c.Read(b); err != nil {
		return ""
	}
	i := int(b[0])
	if i < 0 || i >= len(table) {
		return ""
	}
	return table[i] // nowant:wiretaint
}

// A tainted loop bound.
func pump(c net.Conn) int {
	b := make([]byte, 8)
	if _, err := c.Read(b); err != nil {
		return 0
	}
	n, _ := binary.Uvarint(b)
	total := 0
	for i := uint64(0); i < n; i++ { // want:wiretaint
		total++
	}
	return total
}

// Ranging over wire data taints the element values, not the index.
func scan(c net.Conn, table []int) int {
	b := make([]byte, 16)
	if _, err := c.Read(b); err != nil {
		return 0
	}
	sum := 0
	for _, v := range b {
		sum += table[v] // want:wiretaint
	}
	return sum
}

// alloc's parameter reaches a make size unchecked, so the call
// summary reports tainted arguments at the call site.
func alloc(n int) []byte {
	return make([]byte, n)
}

func relay(c net.Conn) []byte {
	b := make([]byte, 2)
	if _, err := c.Read(b); err != nil {
		return nil
	}
	return alloc(int(b[0])) // want:wiretaint
}

// fits bounds-checks its parameter, so calling it sanitizes the
// argument — the countCap pattern.
func fits(n, limit int) bool {
	return n >= 0 && n <= limit
}

func relayChecked(c net.Conn) []byte {
	b := make([]byte, 2)
	if _, err := c.Read(b); err != nil {
		return nil
	}
	n := int(b[0])
	if !fits(n, 64) {
		return nil
	}
	return make([]byte, n) // nowant:wiretaint
}

// Decode-style functions treat their byte parameters as wire input by
// contract.
func parseVec(b []byte) []uint64 {
	n := int(b[0])
	out := make([]uint64, n) // want:wiretaint
	for i := range out {
		out[i] = uint64(b[0])
	}
	return out
}

func parseVecChecked(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	n := int(b[0])
	if n > len(b) {
		return nil
	}
	return make([]uint64, n) // nowant:wiretaint
}

// A status frame is wire data wherever it came from.
func frameSize(r io.Reader) []byte {
	f, _ := status.ReadFrame(r)
	n := int(f.Type)
	return make([]byte, n) // want:wiretaint
}
