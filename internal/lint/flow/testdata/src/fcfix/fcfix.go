// Package fcfix exercises the framecase analyzer: switches over frame
// types must be exhaustive or carry a non-empty default, and every
// frame type declared here needs a complete codec registry.
package fcfix

// MsgType is a frame type: a named integer with Type-prefixed
// package-level constants.
type MsgType uint8

const (
	TypeAlpha MsgType = 1
	TypeBeta  MsgType = 2
	TypeGamma MsgType = 3
)

type codec struct{ name string }

// codecs covers every MsgType constant: no registry finding.
var codecs = map[MsgType]codec{
	TypeAlpha: {name: "alpha"},
	TypeBeta:  {name: "beta"},
	TypeGamma: {name: "gamma"},
}

// Exhaustive without a default: fine.
func dispatchOK(t MsgType) int {
	switch t {
	case TypeAlpha:
		return 1
	case TypeBeta:
		return 2
	case TypeGamma:
		return 3
	}
	return 0
}

// A non-empty default arm makes any coverage fine.
func dispatchDefault(t MsgType, unknown *int) int {
	switch t {
	case TypeAlpha:
		return 1
	default:
		*unknown++
		return 0
	}
}

// Missing constants and no default: unknown frames vanish.
func dispatchMissing(t MsgType) int {
	switch t { // want:framecase
	case TypeAlpha:
		return 1
	}
	return 0
}

// An empty default is the silent-drop shape the analyzer exists for.
func dispatchEmptyDefault(t MsgType) int {
	switch t { // want:framecase
	case TypeAlpha:
		return 1
	default:
	}
	return 0
}

// PartType has a registry, but it misses TypePartB.
type PartType uint8

const (
	TypePartA PartType = 1
	TypePartB PartType = 2
)

var partCodecs = map[PartType]codec{ // want:framecase
	TypePartA: {name: "a"},
}

// BareType has no codec registry at all.
type BareType uint16 // want:framecase

const (
	TypeBareOne BareType = 1
	TypeBareTwo BareType = 2
)

// EvtType's registry names both constants, but an empty entry
// registers nothing: TypeEvtPong is still missing.
type EvtType uint8

const (
	TypeEvtPing EvtType = 1
	TypeEvtPong EvtType = 2
)

var evtCodecs = map[EvtType]codec{ // want:framecase
	TypeEvtPing: {name: "ping"},
	TypeEvtPong: {},
}
