// Package lgfix exercises the leakygo analyzer: library goroutines
// need a shutdown path — a context argument, a ctx/done-aware body, a
// context-aware named callee, or a semaphore-bounded spawn loop.
package lgfix

import (
	"context"
	"net"
	"sync"
)

type srv struct {
	conn net.Conn
	done chan struct{}
}

// A bare spawn nothing can stop.
func (s *srv) start() {
	go s.pump() // want:leakygo
}

func (s *srv) pump() {
	buf := make([]byte, 64)
	for {
		if _, err := s.conn.Read(buf); err != nil {
			return
		}
	}
}

// A context argument is the canonical shutdown path.
func (s *srv) startCtx(ctx context.Context) {
	go s.run(ctx) // nowant:leakygo
}

func (s *srv) run(ctx context.Context) {
	<-ctx.Done()
}

// A literal that waits on a done channel.
func (s *srv) startDone() {
	go func() { // nowant:leakygo
		<-s.done
	}()
}

// A WaitGroup-tracked literal.
func (s *srv) startWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // nowant:leakygo
		defer wg.Done()
	}()
}

// A named callee whose body observes a context field passes through
// the one-level call summary.
type worker struct{ ctx context.Context }

func (w *worker) loop() {
	<-w.ctx.Done()
}

func (w *worker) kick() {
	go w.loop() // nowant:leakygo
}

// Spawning in a loop with a semaphore send bounds outstanding work.
func fanout(jobs []func(), sem chan struct{}) {
	for _, job := range jobs {
		sem <- struct{}{}
		go job() // nowant:leakygo
	}
}

// The same loop without the semaphore is an unbounded leak.
func spawnAll(jobs []func()) {
	for _, job := range jobs {
		go job() // want:leakygo
	}
}
