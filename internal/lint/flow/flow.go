// Package flow is smartlint's flow-sensitive suite. Where the base
// analyzers match call shapes one function at a time, this package
// builds real dataflow machinery — still stdlib-only (go/parser +
// go/types) — and four analyzers on top of it:
//
//   - an intraprocedural control-flow graph (BuildCFG) with
//     branch/loop-condition nodes distinguished, because the same
//     comparison is a sanitizer in an if and a sink in a for;
//   - reaching-definition def-use chains (BuildDefUse) over that CFG,
//     used to point findings at where a value was defined;
//   - a one-level call-summary layer (BuildSummaries): per declared
//     function, which parameters it bounds-checks, whether its body
//     observes a shutdown signal, and — per analyzer — which
//     parameters flow to sinks and which locks it acquires. One
//     level by construction: summaries are computed from bodies
//     only, never from other summaries' conclusions, except where an
//     analyzer explicitly closes over the call graph (lockorder's
//     transitive locksets).
//
// The analyzers:
//
//   - wiretaint: wire-derived sizes and indexes must be
//     bounds-checked before make/indexing/loop bounds;
//   - framecase: frame-type switches stay exhaustive (or count
//     unknowns) and every frame constant is codec-registered;
//   - lockorder: the module-wide lock-acquisition graph stays
//     acyclic and no held lock is re-acquired through a call chain;
//   - leakygo: every library goroutine has a shutdown path.
//
// Importing this package (cmd/smartlint does it with a blank import)
// registers the four analyzers with the base suite via lint.Register;
// the //lint:ignore mechanism and the baseline gate apply to them
// exactly as to the syntactic analyzers.
package flow

import "smartsock/internal/lint"

func init() {
	lint.Register(WireTaint, FrameCase, LockOrder, LeakyGo)
}
