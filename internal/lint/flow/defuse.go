package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// DefUse holds the reaching-definition chains of one function: for
// every identifier use, the set of definition sites (assignments,
// declarations, range bindings, parameters) whose value can reach it.
// wiretaint uses the chains to report *where* a tainted value was
// born, not just where it hits a sink.
type DefUse struct {
	reaching map[*ast.Ident][]ast.Node
	defSites map[types.Object][]ast.Node
}

// DefsOf returns the definition sites whose value can reach the given
// use, in source order. It returns nil for identifiers that are not
// uses of a function-local variable.
func (d *DefUse) DefsOf(use *ast.Ident) []ast.Node {
	return d.reaching[use]
}

// defEntry is one (object, site) definition discovered in the body.
type defEntry struct {
	obj  types.Object
	site ast.Node
}

// duFact maps each variable to the set of definition ids that may
// hold its current value.
type duFact map[types.Object]map[int]bool

// duState carries one reaching-definitions computation.
type duState struct {
	info    *types.Info
	entries []defEntry
	defID   map[defEntry]int
}

// BuildDefUse computes reaching definitions over g with a forward
// worklist (meet = union, assignments kill prior definitions of the
// same object). ftype supplies parameters and named results, which
// act as definitions live at entry.
func BuildDefUse(g *Graph, info *types.Info, ftype *ast.FuncType) *DefUse {
	d := &DefUse{
		reaching: make(map[*ast.Ident][]ast.Node),
		defSites: make(map[types.Object][]ast.Node),
	}
	s := &duState{info: info, defID: make(map[defEntry]int)}
	addDef := func(obj types.Object, site ast.Node) int {
		if obj == nil {
			return -1
		}
		e := defEntry{obj, site}
		if id, ok := s.defID[e]; ok {
			return id
		}
		id := len(s.entries)
		s.entries = append(s.entries, e)
		s.defID[e] = id
		d.defSites[obj] = append(d.defSites[obj], site)
		return id
	}

	entryFact := make(duFact)
	if ftype != nil {
		for _, list := range []*ast.FieldList{ftype.Params, ftype.Results} {
			if list == nil {
				continue
			}
			for _, field := range list.List {
				for _, name := range field.Names {
					obj := info.Defs[name]
					if id := addDef(obj, name); id >= 0 {
						entryFact[obj] = map[int]bool{id: true}
					}
				}
			}
		}
	}

	// Pre-register every in-body definition so ids are stable.
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			for _, e := range nodeDefs(info, n.N) {
				addDef(e.obj, e.site)
			}
		}
	}

	// Fixpoint on block entry facts.
	in := make([]duFact, len(g.Blocks))
	for i := range in {
		in[i] = make(duFact)
	}
	mergeFacts(in[g.Entry.Index], entryFact)
	work := []*Block{g.Entry}
	inWork := make([]bool, len(g.Blocks))
	inWork[g.Entry.Index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.Index] = false
		out := s.transfer(blk, in[blk.Index], nil)
		for _, succ := range blk.Succs {
			if mergeFacts(in[succ.Index], out) && !inWork[succ.Index] {
				inWork[succ.Index] = true
				work = append(work, succ)
			}
		}
	}

	// Final pass: record per-use reaching sets.
	for _, blk := range g.Blocks {
		s.transfer(blk, in[blk.Index], func(use *ast.Ident, fact duFact) {
			obj := info.Uses[use]
			if obj == nil {
				return
			}
			ids := fact[obj]
			if len(ids) == 0 {
				return
			}
			sites := make([]ast.Node, 0, len(ids))
			for id := range ids {
				sites = append(sites, s.entries[id].site)
			}
			sort.Slice(sites, func(i, j int) bool { return sites[i].Pos() < sites[j].Pos() })
			d.reaching[use] = sites
		})
	}
	return d
}

// transfer pushes the entry fact through the block's nodes, returning
// the exit fact. When onUse is non-nil it is called for every
// local-variable use with the fact in force at that point.
func (s *duState) transfer(blk *Block, entry duFact, onUse func(*ast.Ident, duFact)) duFact {
	fact := make(duFact, len(entry))
	mergeFacts(fact, entry)
	for _, n := range blk.Nodes {
		if onUse != nil {
			shallowEach(n.N, func(sub ast.Node) {
				if id, ok := sub.(*ast.Ident); ok {
					if _, isVar := s.info.Uses[id].(*types.Var); isVar {
						onUse(id, fact)
					}
				}
			})
		}
		for _, e := range nodeDefs(s.info, n.N) {
			if id, ok := s.defID[e]; ok {
				fact[e.obj] = map[int]bool{id: true}
			}
		}
	}
	return fact
}

// mergeFacts unions src into dst, reporting whether dst changed.
func mergeFacts(dst, src duFact) bool {
	changed := false
	for obj, ids := range src {
		d := dst[obj]
		if d == nil {
			d = make(map[int]bool, len(ids))
			dst[obj] = d
		}
		for id := range ids {
			if !d[id] {
				d[id] = true
				changed = true
			}
		}
	}
	return changed
}

// nodeDefs lists the definitions a single CFG node performs.
func nodeDefs(info *types.Info, n ast.Node) []defEntry {
	var out []defEntry
	add := func(id *ast.Ident, site ast.Node) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		out = append(out, defEntry{obj, site})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				add(id, n)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			add(id, n)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						add(name, n)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			add(id, n)
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			add(id, n)
		}
	}
	return out
}

// shallowEach visits every node under n without descending into
// function literals (which are separate analysis units).
func shallowEach(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			return false
		}
		if sub == nil {
			return true
		}
		visit(sub)
		return true
	})
}
