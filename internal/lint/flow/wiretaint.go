package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"smartsock/internal/lint"
)

// WireTaint is the flow-sensitive generalization of the MaxServers
// fix: a value that originates from the network — a net.Conn or
// net.PacketConn read buffer, a status frame payload, or a parameter
// of a Parse*/Unmarshal*/Decode*/read* function — must pass a bounds
// check (comparison, switch, or a call to a function that checks the
// parameter itself, like countCap) before it is used as a make size,
// a slice index, a slice bound, or a for-loop bound.
//
// Taint propagates through assignments, arithmetic, conversions,
// field selection and calls (a call with a tainted argument has
// tainted results); len, cap, min and max launder taint, because
// their results are bounded by values already in memory. A one-level
// call summary layer extends the check across calls: passing a
// tainted value to a module function whose parameter reaches a sink
// unchecked is reported at the call site.
var WireTaint = &lint.Analyzer{
	Name:      "wiretaint",
	Doc:       "network-derived sizes and indexes must be bounds-checked before allocation, indexing, or loop bounds",
	RunModule: runWireTaint,
}

// origin records where a tainted value was born.
type origin struct {
	desc string
	pos  token.Pos
	// param is the parameter index the taint entered through, or -1
	// for a real wire source. Parameter taint is never reported
	// directly (outside decode functions); it only feeds the call
	// summaries.
	param int
}

// taintSummary is the wiretaint slice of the call-summary layer:
// which parameters flow to a sink unchecked, and what kind of sink.
type taintSummary struct {
	paramSink map[int]string
}

// wtFact is the dataflow fact at one program point: tainted root
// variables (union at joins) and bounds-checked expressions
// (intersection at joins — checked on every path or not at all).
type wtFact struct {
	taint   map[types.Object]origin
	checked map[string]bool
}

func newWTFact() *wtFact {
	return &wtFact{taint: make(map[types.Object]origin), checked: make(map[string]bool)}
}

func (f *wtFact) clone() *wtFact {
	c := &wtFact{
		taint:   make(map[types.Object]origin, len(f.taint)),
		checked: make(map[string]bool, len(f.checked)),
	}
	for k, v := range f.taint {
		c.taint[k] = v
	}
	for k := range f.checked {
		c.checked[k] = true
	}
	return c
}

// merge joins src into dst (taint: union, checked: intersection),
// reporting change. first marks dst as never-joined, in which case it
// becomes a copy of src.
func (f *wtFact) merge(src *wtFact, first bool) bool {
	changed := false
	if first {
		for k, v := range src.taint {
			f.taint[k] = v
			changed = true
		}
		for k := range src.checked {
			f.checked[k] = true
			changed = true
		}
		return true
	}
	for k, v := range src.taint {
		if _, ok := f.taint[k]; !ok {
			f.taint[k] = v
			changed = true
		}
	}
	for k := range f.checked {
		if !src.checked[k] {
			delete(f.checked, k)
			changed = true
		}
	}
	return changed
}

func runWireTaint(pass *lint.ModulePass) {
	sums := BuildSummaries(pass.Pkgs)

	// Pass one: taint summaries. Every unit is analyzed with its own
	// parameters as taint seeds; sinks reached by parameter taint
	// become ParamSink entries callers consult. One level only: this
	// pass sees no other summaries.
	taintSums := make(map[*types.Func]*taintSummary)
	for _, u := range sums.AllUnits() {
		if u.Obj == nil || u.Test {
			continue
		}
		w := &wtRun{unit: u, sums: sums, taintSums: nil, summary: &taintSummary{paramSink: make(map[int]string)}}
		w.analyze()
		taintSums[u.Obj] = w.summary
	}

	// Pass two: findings. Real sources are seeded, parameter sinks
	// from pass one are reported at call sites passing tainted
	// arguments.
	for _, u := range sums.AllUnits() {
		if u.Test || u.Pkg.Name == "main" {
			continue
		}
		w := &wtRun{
			unit: u, sums: sums, taintSums: taintSums,
			summary: &taintSummary{paramSink: make(map[int]string)},
			report: func(pos token.Pos, format string, args ...any) {
				pass.Reportf(u.Pkg, pos, format, args...)
			},
		}
		w.analyze()
	}
}

// wtRun is one wiretaint analysis of one unit. With report == nil it
// runs in summary mode: parameters are the taint seeds and sinks
// record ParamSink facts. With report set it runs in finding mode:
// wire sources (and decode-function byte parameters) are the seeds.
type wtRun struct {
	unit      *Unit
	sums      *Summaries
	taintSums map[*types.Func]*taintSummary
	summary   *taintSummary
	report    func(pos token.Pos, format string, args ...any)
	du        *DefUse
}

func (w *wtRun) info() *types.Info { return w.unit.Pkg.Info }

func (w *wtRun) analyze() {
	g := BuildCFG(w.unit.Body)
	w.du = BuildDefUse(g, w.info(), w.unit.Type)

	entry := newWTFact()
	w.seed(entry)

	in := make([]*wtFact, len(g.Blocks))
	joined := make([]bool, len(g.Blocks))
	for i := range in {
		in[i] = newWTFact()
	}
	in[g.Entry.Index] = entry
	joined[g.Entry.Index] = true

	work := []*Block{g.Entry}
	queued := make([]bool, len(g.Blocks))
	queued[g.Entry.Index] = true
	for steps := 0; len(work) > 0 && steps < 10000; steps++ {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		out := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			w.transfer(n, out, false)
		}
		for _, succ := range blk.Succs {
			if in[succ.Index].merge(out, !joined[succ.Index]) {
				joined[succ.Index] = true
				if !queued[succ.Index] {
					queued[succ.Index] = true
					work = append(work, succ)
				}
			}
		}
	}

	// Final pass with sink reporting enabled.
	for _, blk := range g.Blocks {
		fact := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			w.transfer(n, fact, true)
		}
	}
}

// seed installs the unit's taint entry state.
func (w *wtRun) seed(fact *wtFact) {
	if w.unit.Type == nil || w.unit.Type.Params == nil {
		return
	}
	i := 0
	for _, field := range w.unit.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for _, name := range field.Names {
			obj := w.info().Defs[name]
			if obj == nil {
				continue
			}
			if w.report == nil {
				// Summary mode: every parameter is a seed.
				fact.taint[obj] = origin{desc: "parameter " + name.Name, pos: name.Pos(), param: i}
			} else if w.decodeUnit() && isByteSlice(obj.Type()) {
				// Finding mode: decode-function byte parameters carry
				// wire input by contract.
				fact.taint[obj] = origin{desc: "wire-input parameter " + name.Name, pos: name.Pos(), param: -1}
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
}

// decodeUnit reports whether this unit is a decode-style function:
// its name starts with Parse/Unmarshal/Decode/Read (any case),
// meaning its byte-slice parameters are wire input by convention.
func (w *wtRun) decodeUnit() bool {
	if w.unit.Decl == nil {
		return false
	}
	return decodeNamed(w.unit.Decl.Name.Name)
}

// decodeNamed reports whether name has a decode-style prefix followed
// by a word boundary (readUvarint yes, ready no).
func decodeNamed(name string) bool {
	for _, p := range []string{"Parse", "parse", "Unmarshal", "unmarshal", "Decode", "decode", "Read", "read"} {
		if !strings.HasPrefix(name, p) {
			continue
		}
		rest := name[len(p):]
		if rest == "" {
			return true
		}
		c := rest[0]
		if c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			return true
		}
	}
	return false
}

// transfer pushes fact through one CFG node; when sinks is true it
// also reports (or records, in summary mode) sink violations.
func (w *wtRun) transfer(n Node, fact *wtFact, sinks bool) {
	switch n.Kind {
	case KindCond:
		w.cond(n.N, fact, sinks)
	case KindLoopCond:
		if sinks {
			w.loopCondSink(n.N, fact)
		}
		// The comparison still sanitizes for code after the loop: once
		// `i < n` has been evaluated, later uses of n are no more
		// dangerous than the loop itself (which got its own report).
		w.cond(n.N, fact, false)
	case KindRange:
		rs := n.N.(*ast.RangeStmt)
		if sinks {
			w.scanSinks(rs.X, fact)
		}
		if _, o, bad := w.firstDanger(rs.X, fact); bad {
			// Ranging over tainted data yields tainted element values;
			// the index stays bounded by the range itself.
			if v, ok := rs.Value.(*ast.Ident); ok {
				w.taintIdent(v, o, fact)
			}
		} else if v, ok := rs.Value.(*ast.Ident); ok {
			w.killIdent(v, fact)
		}
	default:
		if sinks {
			w.scanSinks(n.N, fact)
		}
		w.stmtEffects(n.N, fact, sinks)
	}
}

// cond processes a branch-condition expression: comparisons sanitize
// their tainted operands, a switch tag is sanitized by being
// dispatched on, and (when sinks is set) sub-expressions are still
// scanned for index/make sinks. Short-circuit order is respected so
// `n < len(b) && b[n] == 0` does not flag b[n].
func (w *wtRun) cond(n ast.Node, fact *wtFact, sinks bool) {
	e, ok := n.(ast.Expr)
	if !ok {
		// Type-switch assign statement: ordinary effects.
		if sinks {
			w.scanSinks(n, fact)
		}
		w.stmtEffects(n, fact, sinks)
		return
	}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		e = ast.Unparen(e)
		if b, ok := e.(*ast.BinaryExpr); ok {
			if b.Op == token.LAND || b.Op == token.LOR {
				walk(b.X)
				walk(b.Y)
				return
			}
			if isComparison(b.Op) {
				if sinks {
					w.scanSinks(b.X, fact)
					w.scanSinks(b.Y, fact)
				}
				w.sanitize(b.X, fact)
				w.sanitize(b.Y, fact)
				return
			}
		}
		if sinks {
			w.scanSinks(e, fact)
		}
		w.stmtEffects(e, fact, sinks)
		// A bare switch tag (or case expression) is equality-tested
		// against every arm: dispatching on a value bounds it.
		w.sanitize(e, fact)
	}
	walk(e)
}

// sanitize marks the expression's tainted atoms as checked.
func (w *wtRun) sanitize(e ast.Expr, fact *wtFact) {
	for _, atom := range atomsIn(w.info(), e) {
		if _, tainted := w.atomOrigin(atom, fact); tainted {
			fact.checked[checkKey(atom)] = true
		}
	}
}

// loopCondSink reports tainted, unchecked loop bounds.
func (w *wtRun) loopCondSink(n ast.Node, fact *wtFact) {
	e, ok := n.(ast.Expr)
	if !ok {
		return
	}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		e = ast.Unparen(e)
		if b, ok := e.(*ast.BinaryExpr); ok {
			switch {
			case b.Op == token.LAND || b.Op == token.LOR:
				walk(b.X)
				walk(b.Y)
			case isComparison(b.Op):
				w.sink(b, fact, "loop bound")
			}
		}
	}
	walk(e)
}

// stmtEffects applies a node's assignments and call effects to fact.
// sinks gates call-site sink reporting to the final pass, so one call
// is not reported once per fixpoint iteration.
func (w *wtRun) stmtEffects(n ast.Node, fact *wtFact, sinks bool) {
	// Call effects apply wherever calls occur, including nested in
	// expressions of non-assignment statements.
	shallowEach(n, func(sub ast.Node) {
		if call, ok := sub.(*ast.CallExpr); ok {
			w.callEffects(call, fact, sinks)
		}
	})
	switch n := n.(type) {
	case *ast.AssignStmt:
		w.assign(n, fact)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.assignOne(name, vs.Values[i], fact)
					} else {
						w.killIdent(name, fact)
					}
				}
			}
		}
	case *ast.ExprStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt, *ast.SendStmt, *ast.IncDecStmt:
		// call effects already applied
	}
}

// assign transfers one assignment statement.
func (w *wtRun) assign(a *ast.AssignStmt, fact *wtFact) {
	if len(a.Lhs) == len(a.Rhs) {
		for i, lhs := range a.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				w.assignOne(id, a.Rhs[i], fact)
			}
		}
		return
	}
	// x, y := f(...): every result inherits the call's taint.
	if len(a.Rhs) == 1 {
		o, tainted := w.exprOrigin(a.Rhs[0], fact)
		for _, lhs := range a.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if tainted {
				w.taintIdent(id, o, fact)
			} else {
				w.killIdent(id, fact)
			}
		}
	}
}

// assignOne transfers `id = rhs`.
func (w *wtRun) assignOne(id *ast.Ident, rhs ast.Expr, fact *wtFact) {
	if o, tainted := w.exprOrigin(rhs, fact); tainted {
		w.taintIdent(id, o, fact)
	} else {
		w.killIdent(id, fact)
	}
}

func (w *wtRun) objOf(id *ast.Ident) types.Object {
	if obj := w.info().Defs[id]; obj != nil {
		return obj
	}
	return w.info().Uses[id]
}

func (w *wtRun) taintIdent(id *ast.Ident, o origin, fact *wtFact) {
	if id.Name == "_" {
		return
	}
	obj := w.objOf(id)
	if obj == nil {
		return
	}
	fact.taint[obj] = o
	w.killChecked(id.Name, fact)
}

func (w *wtRun) killIdent(id *ast.Ident, fact *wtFact) {
	if id.Name == "_" {
		return
	}
	obj := w.objOf(id)
	if obj == nil {
		return
	}
	delete(fact.taint, obj)
	w.killChecked(id.Name, fact)
}

// killChecked drops checked facts rooted at a reassigned variable.
func (w *wtRun) killChecked(name string, fact *wtFact) {
	for k := range fact.checked {
		if k == name || strings.HasPrefix(k, name+".") || strings.HasPrefix(k, name+"[") {
			delete(fact.checked, k)
		}
	}
}

// exprOrigin reports whether the expression's value is tainted, and
// by what. An expression whose every tainted atom has been checked is
// clean: a bounded copy of wire data is just data.
func (w *wtRun) exprOrigin(e ast.Expr, fact *wtFact) (origin, bool) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && !isConversion(w.info(), call) {
		if o, tainted := w.callResultOrigin(call, fact); tainted {
			return o, true
		}
		return origin{}, false
	}
	if _, o, bad := w.firstDanger(e, fact); bad {
		return o, true
	}
	return origin{}, false
}

// callResultOrigin decides whether a call's results are tainted.
func (w *wtRun) callResultOrigin(call *ast.CallExpr, fact *wtFact) (origin, bool) {
	if name, ok := builtinName(w.info(), call); ok {
		switch name {
		case "len", "cap", "min", "max", "copy":
			// Bounded by values already in memory.
			return origin{}, false
		case "append":
			// append result carries its operands' taint.
			for _, arg := range call.Args {
				if _, o, bad := w.firstDanger(arg, fact); bad {
					return o, true
				}
			}
			return origin{}, false
		default:
			return origin{}, false
		}
	}
	if w.isFrameRead(call) {
		return origin{desc: "status frame payload", pos: call.Pos(), param: -1}, true
	}
	if w.isWireRead(call) != nil {
		// The integer results of a read (byte count) are bounded by
		// the buffer the caller supplied; the taint lives in the
		// buffer, handled by callEffects.
		return origin{}, false
	}
	// General rule: a call fed a tainted argument produces tainted
	// results — Uvarint, BigEndian.Uint32, module decode helpers.
	for _, arg := range call.Args {
		if _, o, bad := w.firstDanger(arg, fact); bad {
			return o, true
		}
	}
	return origin{}, false
}

// callEffects applies a call's side effects on fact: wire reads taint
// their buffer argument, frame reads taint pointed-to frames, and
// calls that check a parameter sanitize the argument (the countCap
// pattern). It also reports tainted arguments flowing into callee
// parameter sinks.
func (w *wtRun) callEffects(call *ast.CallExpr, fact *wtFact, sinks bool) {
	if buf := w.isWireRead(call); buf != nil {
		if id, ok := rootIdent(w.info(), buf); ok {
			w.taintIdent(id, origin{desc: "read from the network", pos: call.Pos(), param: -1}, fact)
		}
		return
	}
	if w.isFrameRead(call) {
		// ReadFrameInto(r, &f): the frame the pointer argument names
		// becomes wire data.
		for _, arg := range call.Args {
			t := w.info().TypeOf(arg)
			if t == nil {
				continue
			}
			if ptr, ok := t.Underlying().(*types.Pointer); ok && isStatusFrame(ptr.Elem()) {
				if id, ok := rootIdent(w.info(), arg); ok {
					w.taintIdent(id, origin{desc: "status frame payload", pos: call.Pos(), param: -1}, fact)
				}
			}
		}
		return
	}
	callee, ok := lint.CalleeFunc(w.info(), call)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		atom, o, bad := w.firstDanger(arg, fact)
		if !bad {
			continue
		}
		if sinks && w.taintSums != nil && !decodeNamed(callee.Name()) {
			if ts := w.taintSums[callee]; ts != nil {
				if kind, hit := ts.paramSink[i]; hit {
					w.reportSink(call.Pos(), atom, o, "parameter "+paramName(callee, i)+" of "+callee.Name()+", used unchecked as a "+kind)
				}
			}
		}
		if w.sums.ParamChecked(callee, i) {
			fact.checked[checkKey(atom)] = true
		}
	}
}

// scanSinks walks a node looking for make/index/slice sinks.
func (w *wtRun) scanSinks(n ast.Node, fact *wtFact) {
	shallowEach(n, func(sub ast.Node) {
		switch sub := sub.(type) {
		case *ast.CallExpr:
			if name, ok := builtinName(w.info(), sub); ok && name == "make" {
				for _, sz := range sub.Args[1:] {
					w.sink(sz, fact, "make size")
				}
			}
		case *ast.IndexExpr:
			if w.indexable(sub.X) {
				w.sink(sub.Index, fact, "slice index")
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{sub.Low, sub.High, sub.Max} {
				if bound != nil {
					w.sink(bound, fact, "slice bound")
				}
			}
		}
	})
}

// indexable reports whether indexing e can go out of bounds (slices,
// arrays, strings — not maps).
func (w *wtRun) indexable(e ast.Expr) bool {
	t := w.info().TypeOf(e)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// sink reports (or records, in summary mode) a tainted unchecked
// value reaching a sink of the given kind.
func (w *wtRun) sink(e ast.Expr, fact *wtFact, kind string) {
	atom, o, bad := w.firstDanger(e, fact)
	if !bad {
		return
	}
	if o.param >= 0 {
		if _, dup := w.summary.paramSink[o.param]; !dup {
			w.summary.paramSink[o.param] = kind
		}
		return
	}
	w.reportSink(e.Pos(), atom, o, kind)
}

// reportSink emits one finding, using the def-use chains to point at
// where the value was defined when that differs from where the taint
// was born.
func (w *wtRun) reportSink(pos token.Pos, atom ast.Expr, o origin, kind string) {
	if w.report == nil {
		return
	}
	fset := w.unit.Pkg.Fset
	where := fset.Position(o.pos).Line
	expr := types.ExprString(atom)
	extra := ""
	if id, ok := rootIdent(w.info(), atom); ok && w.du != nil {
		if defs := w.du.DefsOf(id); len(defs) > 0 {
			defLine := fset.Position(defs[len(defs)-1].Pos()).Line
			if defLine != where && defLine != fset.Position(pos).Line {
				extra = fmt.Sprintf(", defined at line %d", defLine)
			}
		}
	}
	w.report(pos, "wire-tainted value %q derives from %s (line %d%s) and reaches this %s without a bounds check",
		expr, o.desc, where, extra, kind)
}

// firstDanger returns the first tainted, unchecked atom within e.
func (w *wtRun) firstDanger(e ast.Expr, fact *wtFact) (ast.Expr, origin, bool) {
	for _, atom := range atomsIn(w.info(), e) {
		o, tainted := w.atomOrigin(atom, fact)
		if !tainted {
			continue
		}
		if fact.checked[checkKey(atom)] {
			continue
		}
		return atom, o, true
	}
	return nil, origin{}, false
}

// atomOrigin reports the taint of one atom via its root variable.
func (w *wtRun) atomOrigin(atom ast.Expr, fact *wtFact) (origin, bool) {
	id, ok := rootIdent(w.info(), atom)
	if !ok {
		return origin{}, false
	}
	obj := w.info().Uses[id]
	if obj == nil {
		obj = w.info().Defs[id]
	}
	if obj == nil {
		return origin{}, false
	}
	o, tainted := fact.taint[obj]
	return o, tainted
}

// atomsIn decomposes an expression into its taint-relevant atoms:
// maximal variable-rooted subexpressions whose values feed the
// expression's result. len/cap/min/max (and non-atom operands) yield
// nothing — their results are bounded.
func atomsIn(info *types.Info, e ast.Expr) []ast.Expr {
	var out []ast.Expr
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr:
			out = append(out, e)
		case *ast.StarExpr:
			walk(x.X)
		case *ast.UnaryExpr:
			walk(x.X)
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
		case *ast.CallExpr:
			if name, ok := builtinName(info, x); ok {
				switch name {
				case "len", "cap", "min", "max":
					return
				}
				for _, a := range x.Args {
					walk(a)
				}
				return
			}
			if isConversion(info, x) && len(x.Args) == 1 {
				walk(x.Args[0])
				return
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				walk(el)
			}
		}
	}
	walk(e)
	return out
}

// checkKey canonicalizes an atom for the checked set: conversions and
// parens are stripped so `int(n)` and `n` share a fact.
func checkKey(atom ast.Expr) string {
	return types.ExprString(ast.Unparen(atom))
}

// builtinName reports the name of a builtin call.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return "", false
	}
	return id.Name, true
}

// isWireRead reports (by returning the buffer argument) whether the
// call reads raw bytes from the network into a caller buffer: a
// Read*/ReadFrom* method on a net type or net.Conn/net.PacketConn
// interface value, or io.ReadFull/io.ReadAtLeast.
func (w *wtRun) isWireRead(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	name := sel.Sel.Name
	if fn, ok := lint.CalleeFunc(w.info(), call); ok && fn.Pkg() != nil && fn.Pkg().Path() == "io" {
		if (name == "ReadFull" || name == "ReadAtLeast") && len(call.Args) >= 2 {
			return call.Args[1]
		}
		return nil
	}
	if !strings.HasPrefix(name, "Read") || len(call.Args) == 0 {
		return nil
	}
	buf := call.Args[0]
	if !isByteSlice(w.info().TypeOf(buf)) {
		return nil
	}
	recv := w.info().TypeOf(sel.X)
	if recv == nil {
		return nil
	}
	if lint.IsNetType(recv) || isNetInterface(recv) {
		return buf
	}
	return nil
}

// isFrameRead reports whether the call produces a status.Frame from a
// stream (status.ReadFrame / status.ReadFrameInto).
func (w *wtRun) isFrameRead(call *ast.CallExpr) bool {
	fn, ok := lint.CalleeFunc(w.info(), call)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "internal/status") && strings.HasPrefix(fn.Name(), "ReadFrame")
}

// isStatusFrame reports whether t is status.Frame.
func isStatusFrame(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Frame" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/status")
}

// isNetInterface reports whether t is an interface declared in
// package net (net.Conn, net.PacketConn).
func isNetInterface(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "net"
}

// isByteSlice reports whether t is []byte (or a named []byte).
func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// paramName returns the i-th parameter's name for messages.
func paramName(fn *types.Func, i int) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || i >= sig.Params().Len() {
		return "?"
	}
	name := sig.Params().At(i).Name()
	if name == "" {
		return "?"
	}
	return name
}
