package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"smartsock/internal/lint"
)

// Unit is one analysis unit: a declared function/method or a function
// literal. Literals are units of their own — their bodies are never
// folded into the enclosing function's CFG.
type Unit struct {
	Pkg  *lint.Package
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Obj  *types.Func   // nil for literals
	Type *ast.FuncType
	Body *ast.BlockStmt
	Name string
	Test bool // declared in a _test.go file
}

// Units returns every function unit of the package, in source order.
func Units(pkg *lint.Package) []*Unit {
	var out []*Unit
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				u := &Unit{
					Pkg:  pkg,
					Decl: fn,
					Type: fn.Type,
					Body: fn.Body,
					Name: fn.Name.Name,
					Test: lint.IsTestFile(pkg.Fset, fn.Pos()),
				}
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					u.Obj = obj
				}
				if fn.Recv != nil && len(fn.Recv.List) > 0 {
					u.Name = types.ExprString(fn.Recv.List[0].Type) + "." + u.Name
				}
				out = append(out, u)
			case *ast.FuncLit:
				out = append(out, &Unit{
					Pkg:  pkg,
					Lit:  fn,
					Type: fn.Type,
					Body: fn.Body,
					Name: fmt.Sprintf("func literal at line %d", pkg.Fset.Position(fn.Pos()).Line),
					Test: lint.IsTestFile(pkg.Fset, fn.Pos()),
				})
			}
			return true
		})
	}
	return out
}

// Summaries is the one-level call-summary layer: per declared
// function, the syntactic facts callers consult without re-analyzing
// the callee's body. One level only — summaries are computed from
// bodies directly, never from other summaries, so the layer cannot
// diverge and stays cheap.
type Summaries struct {
	units        map[*types.Func]*Unit
	allUnits     []*Unit
	paramChecked map[*types.Func][]bool
	ctxAware     map[*types.Func]bool
}

// BuildSummaries analyzes every package once and returns the summary
// layer shared by the flow analyzers.
func BuildSummaries(pkgs []*lint.Package) *Summaries {
	s := &Summaries{
		units:        make(map[*types.Func]*Unit),
		paramChecked: make(map[*types.Func][]bool),
		ctxAware:     make(map[*types.Func]bool),
	}
	for _, pkg := range pkgs {
		for _, u := range Units(pkg) {
			s.allUnits = append(s.allUnits, u)
			if u.Obj == nil {
				continue
			}
			s.units[u.Obj] = u
			s.paramChecked[u.Obj] = paramCheckedOf(u)
			s.ctxAware[u.Obj] = bodyCtxAware(u.Pkg.Info, u.Type, u.Body)
		}
	}
	return s
}

// UnitOf returns the unit declaring fn, when fn belongs to the
// analyzed module.
func (s *Summaries) UnitOf(fn *types.Func) (*Unit, bool) {
	u, ok := s.units[fn]
	return u, ok
}

// AllUnits returns every unit of every analyzed package.
func (s *Summaries) AllUnits() []*Unit { return s.allUnits }

// ParamChecked reports whether fn's i-th parameter is bounds-checked
// (used as a comparison operand or switch tag) somewhere in fn's
// body. A call passing a tainted value to such a parameter counts as
// sanitizing it — the countCap pattern.
func (s *Summaries) ParamChecked(fn *types.Func, i int) bool {
	checked, ok := s.paramChecked[fn]
	return ok && i < len(checked) && checked[i]
}

// CtxAware reports whether fn's body observes a shutdown signal: it
// references a context.Context value, receives from a done-style
// channel, or participates in a WaitGroup.
func (s *Summaries) CtxAware(fn *types.Func) bool { return s.ctxAware[fn] }

// paramCheckedOf computes which parameters appear as comparison
// operands or switch tags anywhere in the body.
func paramCheckedOf(u *Unit) []bool {
	sig, ok := u.Obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	index := make(map[types.Object]int, params.Len())
	for i := 0; i < params.Len(); i++ {
		index[params.At(i)] = i
	}
	checked := make([]bool, params.Len())
	mark := func(e ast.Expr) {
		if id, ok := rootIdent(u.Pkg.Info, e); ok {
			if i, ok := index[u.Pkg.Info.Uses[id]]; ok {
				checked[i] = true
			}
		}
	}
	ast.Inspect(u.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if isComparison(n.Op) {
				mark(n.X)
				mark(n.Y)
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				mark(n.Tag)
			}
		}
		return true
	})
	return checked
}

// isComparison reports whether op is a relational operator.
func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// rootIdent unwraps parens, conversions, unary ops, selector paths
// and index expressions down to the base identifier: int(n) -> n,
// req.ServerNum -> req, sizes[i] -> sizes, len(x) has no root (calls
// other than conversions stop the walk).
func rootIdent(info *types.Info, e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			// Only look through type conversions, not real calls.
			if len(x.Args) == 1 && isConversion(info, x) {
				e = x.Args[0]
				continue
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// isConversion reports whether call is a type conversion like
// int(n) or uint32(x).
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// bodyCtxAware reports whether a function body observes a shutdown
// signal (the leakygo acceptance conditions that live inside the
// spawned body).
func bodyCtxAware(info *types.Info, ftype *ast.FuncType, body *ast.BlockStmt) bool {
	if lint.HasContextParam(info, ftype) {
		return true
	}
	aware := false
	ast.Inspect(body, func(n ast.Node) bool {
		if aware {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if isContextValue(info, n) {
				aware = true
			}
		case *ast.UnaryExpr:
			// <-done style receive: any channel receive counts — the
			// goroutine is demonstrably waiting on a signal.
			if n.Op == token.ARROW {
				aware = true
			}
		case *ast.RangeStmt:
			// Ranging over a channel ends when the channel closes.
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					aware = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupCall(info, n, "Done") {
				aware = true
			}
		}
		return !aware
	})
	return aware
}

// isContextValue reports whether the identifier denotes a value of
// type context.Context.
func isContextValue(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return isContextType(obj.Type())
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isWaitGroupCall reports whether call is method (e.g. "Done") on a
// sync.WaitGroup.
func isWaitGroupCall(info *types.Info, call *ast.CallExpr, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
