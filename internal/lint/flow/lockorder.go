package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"smartsock/internal/lint"
)

// LockOrder extends mutexheld from "no blocking call under lock" to
// deadlock-freedom. It builds a module-wide lock-acquisition graph:
// locks are identified by their declaring field or variable
// (instance-insensitive — every Transmitter.mu is one node), each
// function's acquires are scanned in source order the way mutexheld
// does, and one-level call summaries extend the held-set across
// calls: a call made with lock A held, to a function that
// (transitively) acquires lock B, contributes the edge A→B.
//
// Reported:
//   - lock-order inversions: A→B observed somewhere and B→A
//     somewhere else (the classic ABBA deadlock), including longer
//     cycles through call summaries;
//   - self-deadlocks: acquiring (or calling into a function that
//     acquires) a lock already held, when a write lock is involved.
//
// Deliberately not reported: merely holding a lock across a call that
// locks something else — that is the normal fine-grained-locking
// shape and only becomes a bug when a reversed ordering exists, which
// is exactly what the cycle check finds.
var LockOrder = &lint.Analyzer{
	Name:      "lockorder",
	Doc:       "no cycles in the module-wide lock-acquisition order; no re-acquiring a held lock through a call chain",
	RunModule: runLockOrder,
}

// lockEvent is one acquire/release/call in source order.
type lockEvent struct {
	pos      token.Pos
	lock     types.Object // acquire/release target, nil for calls
	callee   *types.Func  // call target, nil for lock ops
	acquire  bool
	release  bool
	deferred bool
	write    bool // Lock vs RLock
}

// lockEdge is one observed ordering: held was held when next was
// acquired.
type lockEdge struct {
	held, next types.Object
}

type edgeSite struct {
	pkg *lint.Package
	pos token.Pos
	via string // call chain note, "" for direct acquires
}

func runLockOrder(pass *lint.ModulePass) {
	sums := BuildSummaries(pass.Pkgs)

	// Per-unit event streams, in source order.
	events := make(map[*Unit][]lockEvent)
	for _, u := range sums.AllUnits() {
		if u.Test {
			continue
		}
		events[u] = lockEvents(u)
	}

	// Direct locksets per declared function, then the transitive
	// closure over the static call graph.
	direct := make(map[*types.Func]map[types.Object]bool)
	calls := make(map[*types.Func][]*types.Func)
	for u, evs := range events {
		if u.Obj == nil {
			continue
		}
		for _, ev := range evs {
			if ev.acquire {
				if direct[u.Obj] == nil {
					direct[u.Obj] = make(map[types.Object]bool)
				}
				direct[u.Obj][ev.lock] = true
			}
			if ev.callee != nil {
				calls[u.Obj] = append(calls[u.Obj], ev.callee)
			}
		}
	}
	lockset := make(map[*types.Func]map[types.Object]bool)
	for fn, locks := range direct {
		lockset[fn] = make(map[types.Object]bool, len(locks))
		for l := range locks {
			lockset[fn][l] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			for _, g := range callees {
				for l := range lockset[g] {
					if lockset[fn] == nil {
						lockset[fn] = make(map[types.Object]bool)
					}
					if !lockset[fn][l] {
						lockset[fn][l] = true
						changed = true
					}
				}
			}
		}
	}

	// Walk each unit's events with a held-set, generating order edges
	// and self-deadlock findings.
	edges := make(map[lockEdge]edgeSite)
	addEdge := func(e lockEdge, site edgeSite) {
		if e.held == e.next {
			return
		}
		if _, ok := edges[e]; !ok {
			edges[e] = site
		}
	}
	units := append([]*Unit(nil), sums.AllUnits()...)
	sort.Slice(units, func(i, j int) bool { return units[i].Body.Pos() < units[j].Body.Pos() })
	for _, u := range units {
		evs, ok := events[u]
		if !ok {
			continue
		}
		type heldLock struct {
			obj   types.Object
			write bool
		}
		var held []heldLock
		heldIdx := func(l types.Object) int {
			for i, h := range held {
				if h.obj == l {
					return i
				}
			}
			return -1
		}
		for _, ev := range evs {
			switch {
			case ev.acquire:
				if i := heldIdx(ev.lock); i >= 0 && (ev.write || held[i].write) {
					pass.Reportf(u.Pkg, ev.pos, "%s acquires %s while already holding it (self-deadlock)",
						u.Name, lockName(ev.lock))
				}
				for _, h := range held {
					addEdge(lockEdge{h.obj, ev.lock}, edgeSite{pkg: u.Pkg, pos: ev.pos})
				}
				held = append(held, heldLock{ev.lock, ev.write})
			case ev.release:
				if i := heldIdx(ev.lock); i >= 0 {
					held = append(held[:i], held[i+1:]...)
				}
			case ev.callee != nil:
				if len(held) == 0 {
					continue
				}
				for l := range lockset[ev.callee] {
					if i := heldIdx(l); i >= 0 {
						pass.Reportf(u.Pkg, ev.pos, "%s calls %s while holding %s, which %s itself acquires (self-deadlock)",
							u.Name, ev.callee.Name(), lockName(l), ev.callee.Name())
						continue
					}
					for _, h := range held {
						addEdge(lockEdge{h.obj, l}, edgeSite{pkg: u.Pkg, pos: ev.pos, via: " (via call to " + ev.callee.Name() + ")"})
					}
				}
			}
		}
	}

	// Cycle check: report every edge that participates in a cycle,
	// found by checking whether next can reach held back through the
	// edge graph.
	succs := make(map[types.Object][]types.Object)
	for e := range edges {
		succs[e.held] = append(succs[e.held], e.next)
	}
	reaches := func(from, to types.Object) bool {
		seen := map[types.Object]bool{from: true}
		stack := []types.Object{from}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range succs[cur] {
				if s == to {
					return true
				}
				if !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
		return false
	}
	type inversion struct {
		e    lockEdge
		site edgeSite
	}
	var inversions []inversion
	for e, site := range edges {
		if reaches(e.next, e.held) {
			inversions = append(inversions, inversion{e, site})
		}
	}
	sort.Slice(inversions, func(i, j int) bool {
		return inversions[i].site.pos < inversions[j].site.pos
	})
	for _, inv := range inversions {
		pass.Reportf(inv.site.pkg, inv.site.pos, "lock order inversion: %s is acquired%s while %s is held, but the opposite order exists elsewhere in the module",
			lockName(inv.e.next), inv.site.via, lockName(inv.e.held))
	}
}

// lockEvents scans one unit for lock operations and static calls, in
// source order. Deferred unlocks keep the lock held to the end of the
// unit, matching mutexheld's model.
func lockEvents(u *Unit) []lockEvent {
	info := u.Pkg.Info
	var evs []lockEvent
	lint.InspectShallow(u.Body, func(n ast.Node) bool {
		deferred := false
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Handle the deferred call here and do not descend, or the
			// CallExpr child would be re-visited as an immediate call
			// and a `defer mu.Unlock()` would release at the defer line
			// instead of holding to the end of the unit.
			call = n.Call
			deferred = true
		case *ast.CallExpr:
			call = n
		default:
			return true
		}
		fn, ok := lint.CalleeFunc(info, call)
		if !ok {
			return !deferred
		}
		if lock, isLockOp, acquire, write := mutexOp(info, call, fn); isLockOp {
			if lock == nil {
				return !deferred
			}
			switch {
			case acquire && !deferred:
				evs = append(evs, lockEvent{pos: call.Pos(), lock: lock, acquire: true, write: write})
			case !acquire && !deferred:
				evs = append(evs, lockEvent{pos: call.Pos(), lock: lock, release: true})
			case !acquire && deferred:
				// Held until return: no release event.
			}
			return !deferred
		}
		if fn.Pkg() != nil && strings.HasPrefix(fn.Pkg().Path(), "smartsock") && !deferred {
			evs = append(evs, lockEvent{pos: call.Pos(), callee: fn})
		}
		return !deferred
	})
	sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// mutexOp classifies a call as a sync.Mutex/RWMutex operation and
// resolves the lock's declaring object.
func mutexOp(info *types.Info, call *ast.CallExpr, fn *types.Func) (lock types.Object, isLockOp, acquire, write bool) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil, false, false, false
	}
	switch fn.Name() {
	case "Lock":
		acquire, write = true, true
	case "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return nil, false, false, false
	}
	expr, ok := lint.ReceiverExpr(call)
	if !ok {
		return nil, true, acquire, write
	}
	return lockObject(info, expr), true, acquire, write
}

// lockObject resolves the mutex expression to the field or variable
// object that declares it: s.mu -> the mu field of s's type, mu -> the
// local or package variable.
func lockObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if obj := info.Uses[e.Sel]; obj != nil {
			return obj
		}
	case *ast.StarExpr:
		return lockObject(info, e.X)
	case *ast.UnaryExpr:
		return lockObject(info, e.X)
	}
	return nil
}

// lockName renders a lock object as owner.field for messages.
func lockName(obj types.Object) string {
	name := obj.Name()
	if owner := fieldOwner(obj); owner != "" {
		name = owner + "." + name
	}
	if obj.Pkg() != nil {
		name = obj.Pkg().Name() + "." + name
	}
	return name
}

// fieldOwner finds the struct type a field object belongs to, by
// scanning the named types of its package.
func fieldOwner(obj types.Object) string {
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() || obj.Pkg() == nil {
		return ""
	}
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return ""
}
