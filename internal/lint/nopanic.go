package lint

import (
	"go/ast"
	"go/types"
)

// NoPanic flags panic calls in non-test, non-main library code. A
// library panic crashes whatever process embeds the package; invalid
// input and invariant violations must surface as errors the caller
// can handle.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "no panic in library code; return an error",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) {
	if pass.Pkg.Name == "main" {
		return
	}
	for _, file := range pass.Pkg.Files {
		if IsTestFile(pass.Pkg.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.Pkg.Info.Uses[ident].(*types.Builtin); ok && b.Name() == "panic" {
				pass.Reportf(call.Pos(), "panic in library code; return an error instead")
			}
			return true
		})
	}
}
