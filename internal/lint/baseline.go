package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// JSONFinding is the wire form of a Finding, used by smartlint -json
// and by the committed lint/baseline.json. File is repo-relative so
// the baseline is stable across checkouts; Line is advisory only —
// baseline matching deliberately ignores it so a finding does not
// become "new" because unrelated edits moved it a few lines.
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// ToJSON converts findings to their wire form, making file paths
// relative to root (typically the module root) where possible.
func ToJSON(findings []Finding, root string) []JSONFinding {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		file := f.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, JSONFinding{
			File:     file,
			Line:     f.Pos.Line,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	return out
}

// WriteJSON emits findings as indented, deterministically ordered
// JSON — the exact bytes a baseline file holds.
func WriteJSON(w io.Writer, findings []JSONFinding) error {
	// An empty set is an explicit [], not null: the committed baseline
	// should read as "zero findings", not "no data".
	sorted := make([]JSONFinding, 0, len(findings))
	sorted = append(sorted, findings...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sorted)
}

// ReadBaselineFile loads a baseline written by WriteJSON. A missing
// file is not an error: it behaves as an empty baseline, so the gate
// can be adopted before the file is committed.
func ReadBaselineFile(path string) ([]JSONFinding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []JSONFinding
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return out, nil
}

// baselineKey identifies a finding for baseline matching: file,
// analyzer and message, but not line, so pure line drift never breaks
// the gate.
type baselineKey struct {
	file     string
	analyzer string
	message  string
}

// Diff compares current findings against a baseline. fresh holds
// findings not covered by the baseline (the ones CI fails on); stale
// holds baseline entries no current finding matches (fixed findings
// whose entries should be dropped on the next baseline refresh).
// Matching is multiset: two identical findings need two baseline
// entries.
func Diff(current, baseline []JSONFinding) (fresh, stale []JSONFinding) {
	allowance := make(map[baselineKey]int, len(baseline))
	for _, b := range baseline {
		allowance[baselineKey{b.File, b.Analyzer, b.Message}]++
	}
	for _, f := range current {
		k := baselineKey{f.File, f.Analyzer, f.Message}
		if allowance[k] > 0 {
			allowance[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	for _, b := range baseline {
		k := baselineKey{b.File, b.Analyzer, b.Message}
		if allowance[k] > 0 {
			allowance[k]--
			stale = append(stale, b)
		}
	}
	return fresh, stale
}
