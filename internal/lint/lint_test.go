package lint_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"smartsock/internal/lint"
	// Arm the flow-sensitive suite, as cmd/smartlint does: Analyzers()
	// must return the full registered set here.
	_ "smartsock/internal/lint/flow"
)

// Fixtures type-check against tiny in-memory stand-ins for the
// standard packages, so the analyzer tests are hermetic and fast: no
// GOROOT source is read, yet method resolution (including promotion
// through embedded net.Conn) behaves exactly as with the real thing,
// because only the declared package paths matter to the analyzers.
var stubSources = map[string]string{
	"time": `package time
type Duration int64
const Second Duration = 1000000000
type Time struct{ wall uint64 }
func (t Time) Add(d Duration) Time { return t }
func Now() Time { return Time{} }
func Sleep(d Duration) {}
`,
	"sync": `package sync
type Mutex struct{ state int32 }
func (m *Mutex) Lock() {}
func (m *Mutex) Unlock() {}
type RWMutex struct{ w Mutex }
func (m *RWMutex) Lock() {}
func (m *RWMutex) Unlock() {}
func (m *RWMutex) RLock() {}
func (m *RWMutex) RUnlock() {}
`,
	"context": `package context
type Context interface{ Err() error }
func Background() Context { return nil }
`,
	"io": `package io
type Reader interface{ Read(p []byte) (n int, err error) }
type Writer interface{ Write(p []byte) (n int, err error) }
func ReadFull(r Reader, buf []byte) (int, error) { return 0, nil }
func ReadAtLeast(r Reader, buf []byte, min int) (int, error) { return 0, nil }
`,
	"bufio": `package bufio
import "io"
type Writer struct{ wr io.Writer }
func NewWriter(w io.Writer) *Writer { return &Writer{wr: w} }
func (b *Writer) Write(p []byte) (int, error) { return 0, nil }
func (b *Writer) Flush() error { return nil }
`,
	"net": `package net
import "time"
type Addr interface{ String() string }
type Conn interface {
	Read(b []byte) (n int, err error)
	Write(b []byte) (n int, err error)
	Close() error
	SetDeadline(t time.Time) error
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}
type Listener interface {
	Accept() (Conn, error)
	Close() error
}
type UDPAddr struct{}
type UDPConn struct{}
func (c *UDPConn) Read(b []byte) (int, error) { return 0, nil }
func (c *UDPConn) Write(b []byte) (int, error) { return 0, nil }
func (c *UDPConn) ReadFromUDP(b []byte) (int, *UDPAddr, error) { return 0, nil, nil }
func (c *UDPConn) ReadFromUDPAddrPort(b []byte) (int, *UDPAddr, error) { return 0, nil, nil }
func (c *UDPConn) WriteToUDP(b []byte, addr *UDPAddr) (int, error) { return 0, nil }
func (c *UDPConn) Close() error { return nil }
func (c *UDPConn) SetDeadline(t time.Time) error { return nil }
func (c *UDPConn) SetReadDeadline(t time.Time) error { return nil }
func (c *UDPConn) SetWriteDeadline(t time.Time) error { return nil }
func Dial(network, address string) (Conn, error) { return nil, nil }
func DialTimeout(network, address string, timeout time.Duration) (Conn, error) { return nil, nil }
func Listen(network, address string) (Listener, error) { return nil, nil }
func JoinHostPort(host, port string) string { return "" }
`,
	"smartsock/internal/status": `package status
type ServerStatus struct{ Host string }
type NetMetric struct{ From, To string }
type SecLevel struct{ Host string }
func MarshalSystemBatch(recs []ServerStatus) []byte { return nil }
func AppendSystemBatch(dst []byte, recs []ServerStatus) []byte { return dst }
func MarshalNetBatch(recs []NetMetric) []byte { return nil }
func AppendNetBatch(dst []byte, recs []NetMetric) []byte { return dst }
func MarshalSecBatch(recs []SecLevel) []byte { return nil }
func AppendSecBatch(dst []byte, recs []SecLevel) []byte { return dst }
`,
	"smartsock/internal/store": `package store
import "smartsock/internal/status"
type SysRecord struct{ Status status.ServerStatus }
type SysSnapshot struct {
	Epoch   uint64
	Records []SysRecord
}
type DB struct{}
func (db *DB) SysView() *SysSnapshot { return &SysSnapshot{} }
func (db *DB) Sys() []SysRecord { return nil }
`,
	"smartsock/internal/reqlang": `package reqlang
type Program struct{ src string }
func Parse(src string) (*Program, error) { return &Program{src: src}, nil }
type Cache struct{ max int }
func NewCache(max int) *Cache { return &Cache{max: max} }
func (c *Cache) Get(src string) (*Program, error) { return Parse(src) }
`,
}

// stubImporter type-checks stub packages on demand.
type stubImporter struct {
	fset  *token.FileSet
	cache map[string]*types.Package
}

func newStubImporter() *stubImporter {
	return &stubImporter{fset: token.NewFileSet(), cache: map[string]*types.Package{}}
}

func (s *stubImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := s.cache[path]; ok {
		return pkg, nil
	}
	src, ok := stubSources[path]
	if !ok {
		return nil, fmt.Errorf("no stub for import %q", path)
	}
	file, err := parser.ParseFile(s.fset, path+"/stub.go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: s}
	pkg, err := conf.Check(path, s.fset, []*ast.File{file}, nil)
	if err != nil {
		return nil, err
	}
	s.cache[path] = pkg
	return pkg, nil
}

// checkFixture type-checks one in-memory file into a lint.Package.
func checkFixture(t *testing.T, pkgPath, filename, src string) *lint.Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: newStubImporter()}
	tpkg, err := conf.Check(pkgPath, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &lint.Package{
		Path:  pkgPath,
		Name:  file.Name.Name,
		Fset:  fset,
		Files: []*ast.File{file},
		Types: tpkg,
		Info:  info,
	}
}

// findingLines extracts the line numbers of findings for one analyzer.
func findingLines(findings []lint.Finding, analyzer string) []int {
	var lines []int
	for _, f := range findings {
		if f.Analyzer == analyzer {
			lines = append(lines, f.Pos.Line)
		}
	}
	return lines
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAnalyzers(t *testing.T) {
	cases := []struct {
		name     string
		analyzer string
		pkgPath  string // default "example.com/lib"
		filename string // default "fixture.go"
		src      string
		want     []int // finding lines, in order
	}{
		// ---- mutexheld -------------------------------------------------
		{
			name:     "mutexheld/write under held mutex",
			analyzer: "mutexheld",
			src: `package lib
import ("net"; "sync")
type S struct { mu sync.Mutex; conn net.Conn }
func (s *S) Send(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn.Write(p)
}
`,
			want: []int{7},
		},
		{
			name:     "mutexheld/released before write",
			analyzer: "mutexheld",
			src: `package lib
import ("net"; "sync")
type S struct { mu sync.Mutex; conn net.Conn }
func (s *S) Send(p []byte) (int, error) {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	return conn.Write(p)
}
`,
			want: nil,
		},
		{
			name:     "mutexheld/goroutine does not inherit lock",
			analyzer: "mutexheld",
			src: `package lib
import ("net"; "sync")
type S struct { mu sync.Mutex; conn net.Conn }
func (s *S) Kick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { s.conn.Write(nil) }()
}
`,
			want: nil,
		},
		{
			name:     "mutexheld/dial under lock and rwmutex read",
			analyzer: "mutexheld",
			src: `package lib
import ("net"; "sync")
type S struct { mu sync.RWMutex; conn net.Conn }
func (s *S) Redial(addr string) error {
	s.mu.Lock()
	c, err := net.Dial("tcp", addr)
	s.mu.Unlock()
	if err != nil { return err }
	s.mu.RLock()
	s.conn.Read(nil)
	s.mu.RUnlock()
	_ = c
	return nil
}
`,
			want: []int{6, 10},
		},
		{
			name:     "mutexheld/non-blocking net helpers are fine",
			analyzer: "mutexheld",
			src: `package lib
import ("net"; "sync")
var mu sync.Mutex
func Join(h, p string) string {
	mu.Lock()
	defer mu.Unlock()
	return net.JoinHostPort(h, p)
}
`,
			want: nil,
		},
		// ---- deadline --------------------------------------------------
		{
			name:     "deadline/read with nothing",
			analyzer: "deadline",
			src: `package lib
import "net"
func Recv(c net.Conn, p []byte) (int, error) { return c.Read(p) }
`,
			want: []int{3},
		},
		{
			name:     "deadline/set before read",
			analyzer: "deadline",
			src: `package lib
import ("net"; "time")
func Recv(c net.Conn, p []byte) (int, error) {
	c.SetReadDeadline(time.Now().Add(time.Second))
	return c.Read(p)
}
`,
			want: nil,
		},
		{
			name:     "deadline/context parameter covers",
			analyzer: "deadline",
			src: `package lib
import ("context"; "net")
func Recv(ctx context.Context, c net.Conn, p []byte) (int, error) { return c.Read(p) }
`,
			want: nil,
		},
		{
			name:     "deadline/literal inherits context",
			analyzer: "deadline",
			src: `package lib
import ("context"; "net")
func Serve(ctx context.Context, c net.Conn) {
	go func() { c.Read(nil) }()
}
`,
			want: nil,
		},
		{
			name:     "deadline/io.ReadFull on conn",
			analyzer: "deadline",
			src: `package lib
import ("io"; "net")
func Fill(c net.Conn, p []byte) (int, error) { return io.ReadFull(c, p) }
`,
			want: []int{3},
		},
		{
			name:     "deadline/ReadFromUDP without deadline",
			analyzer: "deadline",
			src: `package lib
import "net"
func Recv(c *net.UDPConn, p []byte) { c.ReadFromUDP(p) }
`,
			want: []int{3},
		},
		{
			name:     "deadline/package main exempt",
			analyzer: "deadline",
			src: `package main
import "net"
func recv(c net.Conn, p []byte) (int, error) { return c.Read(p) }
func main() {}
`,
			want: nil,
		},
		// ---- sleepfree -------------------------------------------------
		{
			name:     "sleepfree/raw sleep in internal package",
			analyzer: "sleepfree",
			pkgPath:  "smartsock/internal/pacer",
			src: `package pacer
import "time"
func Wait() { time.Sleep(time.Second) }
`,
			want: []int{3},
		},
		{
			name:     "sleepfree/injected sleep value is the approved pattern",
			analyzer: "sleepfree",
			pkgPath:  "smartsock/internal/pacer",
			src: `package pacer
import "time"
type P struct{ sleep func(time.Duration) }
func New() *P { return &P{sleep: time.Sleep} }
func (p *P) Wait() { p.sleep(time.Second) }
`,
			want: nil,
		},
		{
			name:     "sleepfree/non-internal package out of scope",
			analyzer: "sleepfree",
			pkgPath:  "example.com/lib",
			src: `package lib
import "time"
func Wait() { time.Sleep(time.Second) }
`,
			want: nil,
		},
		// ---- nopanic ---------------------------------------------------
		{
			name:     "nopanic/library panic",
			analyzer: "nopanic",
			src: `package lib
func MustPositive(n int) {
	if n <= 0 { panic("not positive") }
}
`,
			want: []int{3},
		},
		{
			name:     "nopanic/package main exempt",
			analyzer: "nopanic",
			src: `package main
func main() { panic("fatal") }
`,
			want: nil,
		},
		{
			name:     "nopanic/shadowed panic is not the builtin",
			analyzer: "nopanic",
			src: `package lib
func panicf(msg string) {}
func Check() { panicf("nope") }
`,
			want: nil,
		},
		// ---- errdrop ---------------------------------------------------
		{
			name:     "errdrop/bare close and set deadline",
			analyzer: "errdrop",
			src: `package lib
import ("net"; "time")
func Drop(c net.Conn) {
	c.Close()
	c.SetReadDeadline(time.Now())
}
`,
			want: []int{4, 5},
		},
		{
			name:     "errdrop/defer blank and handled are fine",
			analyzer: "errdrop",
			src: `package lib
import "net"
func Fine(c net.Conn) error {
	defer c.Close()
	_ = c.Close()
	if err := c.Close(); err != nil { return err }
	return nil
}
`,
			want: nil,
		},
		{
			name:     "errdrop/bufio flush",
			analyzer: "errdrop",
			src: `package lib
import ("bufio"; "net")
func Send(c net.Conn, p []byte) {
	w := bufio.NewWriter(c)
	w.Write(p)
	w.Flush()
}
`,
			want: []int{6},
		},
		{
			name:     "errdrop/test files are exempt",
			analyzer: "errdrop",
			filename: "fixture_test.go",
			src: `package lib
import "net"
func drop(c net.Conn) { c.Close() }
`,
			want: nil,
		},
		// ---- parsecache ------------------------------------------------
		{
			name:     "parsecache/direct parse on the request path",
			analyzer: "parsecache",
			pkgPath:  "smartsock/internal/wizard",
			src: `package wizard
import "smartsock/internal/reqlang"
func handle(detail string) error {
	_, err := reqlang.Parse(detail)
	return err
}
`,
			want: []int{4},
		},
		{
			name:     "parsecache/cache get is the approved route",
			analyzer: "parsecache",
			pkgPath:  "smartsock/internal/wizard",
			src: `package wizard
import "smartsock/internal/reqlang"
var cache = reqlang.NewCache(16)
func handle(detail string) error {
	_, err := cache.Get(detail)
	return err
}
`,
			want: nil,
		},
		{
			name:     "parsecache/core is in scope too",
			analyzer: "parsecache",
			pkgPath:  "smartsock/internal/core",
			src: `package core
import "smartsock/internal/reqlang"
func compile(src string) { reqlang.Parse(src) }
`,
			want: []int{3},
		},
		{
			name:     "parsecache/packages off the request path may parse",
			analyzer: "parsecache",
			pkgPath:  "smartsock/internal/shaper",
			src: `package shaper
import "smartsock/internal/reqlang"
func compile(src string) { reqlang.Parse(src) }
`,
			want: nil,
		},
		// ---- batchbuf --------------------------------------------------
		{
			name:     "batchbuf/marshal inside the epoch loop",
			analyzer: "batchbuf",
			pkgPath:  "smartsock/internal/transport",
			src: `package transport
import "smartsock/internal/status"
func push(recs []status.ServerStatus, out chan []byte) {
	for {
		out <- status.MarshalSystemBatch(recs)
	}
}
`,
			want: []int{5},
		},
		{
			name:     "batchbuf/range loops count too",
			analyzer: "batchbuf",
			pkgPath:  "smartsock/internal/transport",
			src: `package transport
import "smartsock/internal/status"
func push(epochs [][]status.NetMetric, out chan []byte) {
	for _, recs := range epochs {
		out <- status.MarshalNetBatch(recs)
	}
}
`,
			want: []int{5},
		},
		{
			name:     "batchbuf/append with a reused buffer is the approved route",
			analyzer: "batchbuf",
			pkgPath:  "smartsock/internal/transport",
			src: `package transport
import "smartsock/internal/status"
func push(recs []status.ServerStatus, out chan []byte) {
	var buf []byte
	for {
		buf = status.AppendSystemBatch(buf[:0], recs)
		out <- buf
	}
}
`,
			want: nil,
		},
		{
			name:     "batchbuf/one-shot encode outside a loop is fine",
			analyzer: "batchbuf",
			pkgPath:  "smartsock/internal/transport",
			src: `package transport
import "smartsock/internal/status"
func encodeOnce(recs []status.SecLevel) []byte {
	return status.MarshalSecBatch(recs)
}
`,
			want: nil,
		},
		{
			name:     "batchbuf/packages off the epoch path may marshal in loops",
			analyzer: "batchbuf",
			pkgPath:  "smartsock/internal/probe",
			src: `package probe
import "smartsock/internal/status"
func spam(recs []status.ServerStatus, out chan []byte) {
	for {
		out <- status.MarshalSystemBatch(recs)
	}
}
`,
			want: nil,
		},
		// ---- scanfree --------------------------------------------------
		{
			name:     "scanfree/range over snapshot records on the serve path",
			analyzer: "scanfree",
			pkgPath:  "smartsock/internal/core",
			src: `package core
import "smartsock/internal/store"
func selectAll(snap *store.SysSnapshot) int {
	n := 0
	for i := range snap.Records {
		_ = i
		n++
	}
	return n
}
`,
			want: []int{5},
		},
		{
			name:     "scanfree/full-table accessor in the wizard counts too",
			analyzer: "scanfree",
			pkgPath:  "smartsock/internal/wizard",
			src: `package wizard
import "smartsock/internal/store"
func hosts(db *store.DB) []string {
	var out []string
	for _, rec := range db.Sys() {
		out = append(out, rec.Status.Host)
	}
	return out
}
`,
			want: []int{5},
		},
		{
			name:     "scanfree/ignore directive with rationale suppresses",
			analyzer: "scanfree",
			pkgPath:  "smartsock/internal/core",
			src: `package core
import "smartsock/internal/store"
func fallback(snap *store.SysSnapshot) int {
	n := 0
	//lint:ignore scanfree sanctioned fallback for this fixture
	for i := range snap.Records {
		_ = i
		n++
	}
	return n
}
`,
			want: nil,
		},
		{
			name:     "scanfree/packages off the serve path may scan",
			analyzer: "scanfree",
			pkgPath:  "smartsock/internal/transport",
			src: `package transport
import "smartsock/internal/store"
func sweep(snap *store.SysSnapshot) {
	for i := range snap.Records {
		_ = i
	}
}
`,
			want: nil,
		},
		{
			name:     "scanfree/test files are exempt",
			analyzer: "scanfree",
			pkgPath:  "smartsock/internal/core",
			filename: "fixture_test.go",
			src: `package core
import "smartsock/internal/store"
func scanForAssertions(snap *store.SysSnapshot) int {
	n := 0
	for i := range snap.Records {
		_ = i
		n++
	}
	return n
}
`,
			want: nil,
		},
		{
			name:     "scanfree/other slice types are untouched",
			analyzer: "scanfree",
			pkgPath:  "smartsock/internal/core",
			src: `package core
func join(hosts []string) int {
	n := 0
	for range hosts {
		n++
	}
	return n
}
`,
			want: nil,
		},
		// ---- dgramloop -------------------------------------------------
		{
			name:     "dgramloop/per-datagram read in a serve loop",
			analyzer: "dgramloop",
			pkgPath:  "smartsock/internal/wizard",
			src: `package wizard
import "net"
func serve(c *net.UDPConn) {
	buf := make([]byte, 1024)
	for {
		n, _, err := c.ReadFromUDP(buf)
		if err != nil {
			return
		}
		_ = n
	}
}
`,
			want: []int{6},
		},
		{
			name:     "dgramloop/addrport variant in the monitor counts too",
			analyzer: "dgramloop",
			pkgPath:  "smartsock/internal/monitor",
			src: `package monitor
import "net"
func ingest(c *net.UDPConn, buf []byte) (int, error) {
	n, _, err := c.ReadFromUDPAddrPort(buf)
	return n, err
}
`,
			want: []int{4},
		},
		{
			name:     "dgramloop/ignore directive with rationale suppresses",
			analyzer: "dgramloop",
			pkgPath:  "smartsock/internal/netbatch",
			src: `package netbatch
import "net"
func readGeneric(c *net.UDPConn, buf []byte) (int, error) {
	//lint:ignore dgramloop portable fallback for this fixture
	n, _, err := c.ReadFromUDPAddrPort(buf)
	return n, err
}
`,
			want: nil,
		},
		{
			name:     "dgramloop/packages off the serve path may read singly",
			analyzer: "dgramloop",
			pkgPath:  "smartsock/internal/probe",
			src: `package probe
import "net"
func await(c *net.UDPConn, buf []byte) (int, error) {
	n, _, err := c.ReadFromUDP(buf)
	return n, err
}
`,
			want: nil,
		},
		{
			name:     "dgramloop/test files are exempt",
			analyzer: "dgramloop",
			pkgPath:  "smartsock/internal/wizard",
			filename: "fixture_test.go",
			src: `package wizard
import "net"
func drainForAssertions(c *net.UDPConn, buf []byte) (int, error) {
	n, _, err := c.ReadFromUDP(buf)
	return n, err
}
`,
			want: nil,
		},
		{
			name:     "dgramloop/writes and stream reads are untouched",
			analyzer: "dgramloop",
			pkgPath:  "smartsock/internal/wizard",
			src: `package wizard
import "net"
func reply(c *net.UDPConn, buf []byte, to *net.UDPAddr) error {
	if _, err := c.WriteToUDP(buf, to); err != nil {
		return err
	}
	_, err := c.Read(buf)
	return err
}
`,
			want: nil,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkgPath := tc.pkgPath
			if pkgPath == "" {
				pkgPath = "example.com/lib"
			}
			filename := tc.filename
			if filename == "" {
				filename = "fixture.go"
			}
			pkg := checkFixture(t, pkgPath, filename, tc.src)
			a, ok := lint.ByName(tc.analyzer)
			if !ok {
				t.Fatalf("unknown analyzer %q", tc.analyzer)
			}
			findings := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
			got := findingLines(findings, tc.analyzer)
			if !equalInts(got, tc.want) {
				t.Errorf("findings on lines %v, want %v\nfull findings: %v", got, tc.want, findings)
			}
		})
	}
}

func TestIgnoreDirectives(t *testing.T) {
	src := `package lib
import "net"
func A(c net.Conn) {
	//lint:ignore errdrop the peer is gone, nothing to do with the error
	c.Close()
}
func B(c net.Conn) {
	c.Close() //lint:ignore errdrop trailing directives work too
}
func C(c net.Conn) {
	//lint:ignore deadline wrong analyzer name does not suppress errdrop
	c.Close()
}
`
	pkg := checkFixture(t, "example.com/lib", "fixture.go", src)
	findings := lint.Run([]*lint.Package{pkg}, lint.Analyzers())
	got := findingLines(findings, "errdrop")
	if want := []int{12}; !equalInts(got, want) {
		t.Errorf("errdrop findings on lines %v, want %v\nfull findings: %v", got, want, findings)
	}
}

func TestMalformedDirectives(t *testing.T) {
	src := `package lib
//lint:ignore errdrop
func a() {}
//lint:ignore nosuchanalyzer because reasons
func b() {}
`
	pkg := checkFixture(t, "example.com/lib", "fixture.go", src)
	findings := lint.Run([]*lint.Package{pkg}, lint.Analyzers())
	got := findingLines(findings, "lint")
	if want := []int{2, 4}; !equalInts(got, want) {
		t.Errorf("directive findings on lines %v, want %v\nfull findings: %v", got, want, findings)
	}
}

// TestSuiteNames pins the analyzer set: CHANGING THIS LIST means
// updating README.md's correctness-tooling section too.
func TestSuiteNames(t *testing.T) {
	want := []string{
		"mutexheld", "deadline", "sleepfree", "nopanic", "errdrop", "parsecache", "batchbuf", "scanfree", "dgramloop",
		"wiretaint", "framecase", "lockorder", "leakygo",
	}
	as := lint.Analyzers()
	if len(as) != len(want) {
		t.Fatalf("%d analyzers, want %d", len(as), len(want))
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
}

// TestLoadSmoke exercises the go list loader against a real module
// package. It needs the go command and the module context, both of
// which the repo's own test runs always have.
func TestLoadSmoke(t *testing.T) {
	pkgs, err := lint.Load("smartsock/internal/proto")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "smartsock/internal/proto" {
		t.Fatalf("loaded %v, want exactly smartsock/internal/proto", pkgs)
	}
	if findings := lint.Run(pkgs, lint.Analyzers()); len(findings) != 0 {
		var b strings.Builder
		for _, f := range findings {
			fmt.Fprintf(&b, "\n  %s", f)
		}
		t.Errorf("unexpected findings in proto:%s", b.String())
	}
}
