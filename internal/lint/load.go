package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves the patterns with the go command, parses and
// type-checks every matched package plus its dependencies (in
// dependency order, so imports are always satisfied from the cache),
// and returns the matched module-local packages ready for analysis.
// Dependencies outside the module are checked signatures-only; only
// packages inside the module get full bodies and type information.
//
// The loader shells out to `go list` — the toolchain that builds the
// code also enumerates it — but all parsing and type checking is the
// standard library's own go/parser and go/types.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	cache := map[string]*types.Package{"unsafe": types.Unsafe}
	fallback := importer.ForCompiler(fset, "source", nil)
	var out []*Package
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" || cache[lp.ImportPath] != nil {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		ours := !lp.Standard && lp.Module != nil
		files, err := parseDir(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", lp.ImportPath, err)
		}
		var info *types.Info
		if ours {
			info = &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Uses:       make(map[*ast.Ident]types.Object),
				Defs:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
			}
		}
		var hardErrs []error
		conf := types.Config{
			IgnoreFuncBodies: !ours,
			FakeImportC:      true,
			Error: func(err error) {
				if ours {
					hardErrs = append(hardErrs, err)
				}
				// Dependency packages tolerate errors: a partially
				// checked stdlib package still exports the names the
				// module needs.
			},
			Importer: importerFunc(func(path string) (*types.Package, error) {
				if tp := cache[path]; tp != nil {
					return tp, nil
				}
				// Not in the go list closure (shouldn't happen); fall
				// back to the source importer rather than failing.
				return fallback.Import(path)
			}),
		}
		tp, err := conf.Check(lp.ImportPath, fset, files, info)
		if tp != nil {
			cache[lp.ImportPath] = tp
		}
		if ours {
			if len(hardErrs) > 0 {
				return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, errors.Join(hardErrs...))
			}
			if err != nil {
				return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
			}
			out = append(out, &Package{
				Path:  lp.ImportPath,
				Name:  lp.Name,
				Fset:  fset,
				Files: files,
				Types: tp,
				Info:  info,
			})
		}
	}
	return out, nil
}

// goList runs `go list -deps -json` over the patterns and decodes the
// package stream, which arrives in dependency order.
func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Standard,Module,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	// Force the pure-Go build so stdlib packages arrive without cgo
	// files, which go/types cannot check.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var out []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
