package lint

import (
	"go/ast"
)

// parseCacheScope lists the packages that form the wizard's request
// path. Compiling a requirement there must go through reqlang.Cache —
// a direct reqlang.Parse call re-parses on every request and silently
// undoes the storm fast path. Load-time validation (template files)
// is exempt via an explicit //lint:ignore with its reason.
var parseCacheScope = map[string]bool{
	"smartsock/internal/wizard": true,
	"smartsock/internal/core":   true,
}

// ParseCache reports direct reqlang.Parse calls inside the wizard
// request path.
var ParseCache = &Analyzer{
	Name: "parsecache",
	Doc:  "request-path requirement compiles must go through reqlang.Cache, not reqlang.Parse",
	Run: func(pass *Pass) {
		if !parseCacheScope[pass.Pkg.Path] {
			return
		}
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := CalleeFrom(pass.Pkg.Info, call, "smartsock/internal/reqlang"); ok && name == "Parse" {
					pass.Reportf(call.Pos(), "reqlang.Parse on the wizard request path; use reqlang.Cache.Get so repeated requirements compile once")
				}
				return true
			})
		}
	},
}
