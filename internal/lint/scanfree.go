package lint

import (
	"go/ast"
	"go/types"
)

// scanFreeScope lists the packages on the wizard's request serve path.
// With the selection planner in place, a range over a sys-table
// snapshot there reintroduces the O(table) cost per request that the
// per-field indexes exist to kill. The two sanctioned scan loops — the
// pre-planner baseline in Select's fullScan and the planner's
// constraint-testing fallback — carry //lint:ignore directives with
// their rationale; any new one must justify itself the same way.
var scanFreeScope = map[string]bool{
	"smartsock/internal/core":   true,
	"smartsock/internal/wizard": true,
}

// isSysRecordSlice reports whether t is []store.SysRecord, the element
// type of a SysSnapshot's Records and of every full-table accessor.
func isSysRecordSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem := s.Elem()
	if ptr, ok := elem.Underlying().(*types.Pointer); ok {
		elem = ptr.Elem()
	}
	named, ok := elem.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "SysRecord" && obj.Pkg() != nil && obj.Pkg().Path() == "smartsock/internal/store"
}

// ScanFree reports full-table iteration over sys-record slices on the
// wizard/core serve path.
var ScanFree = &Analyzer{
	Name: "scanfree",
	Doc:  "serve-path code must not range over sys-table snapshots; selection goes through the index planner, and sanctioned scans (planner fallback, pre-planner baseline) need a //lint:ignore rationale",
	Run: func(pass *Pass) {
		if !scanFreeScope[pass.Pkg.Path] {
			return
		}
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if IsTestFile(pass.Pkg.Fset, rng.Pos()) {
					return true
				}
				if isSysRecordSlice(pass.Pkg.Info.TypeOf(rng.X)) {
					pass.Reportf(rng.Pos(), "range over a sys-record table on the serve path; query the selection planner's index instead, or justify the scan with //lint:ignore scanfree <reason>")
				}
				return true
			})
		}
	},
}
