// Package simnet models multi-hop network paths analytically, using
// the delay decomposition the thesis itself derives (§3.3.2):
//
//	d_delay = d_proc + d_trans + d_prop + d_queue          (Eq. 3.3)
//
// extended with the first-frame initialization term discovered in the
// thesis's RTT measurements:
//
//	T = S/B + min(S, MTU)/Speed_init + Overhead_sys + Overhead_net   (Eq. 3.6)
//
// The paper measured these curves on a physical testbed (Figs
// 3.3–3.6); that hardware is unavailable, so this package implements
// the same model as a simulator: each Path is a chain of hops with
// capacity, utilization by cross traffic, propagation and processing
// delay, an MTU and a Speed_init on the first interface, and seeded
// random queueing jitter. Probing a Path reproduces — by construction
// plus noise — the phenomena the estimator code must cope with: the
// slope break at the MTU, under-estimation for sub-MTU probes
// (Eq. 3.7), fragment-count sensitivity, and thresholds shadowed by
// large WAN RTTs.
//
// The package exposes the three probing primitives the bandwidth
// estimators of package bwest consume: single-packet RTT (one-way UDP
// + ICMP port-unreachable echo), back-to-back packet pairs
// (pipechar's method) and one-way packet streams (pathload's SLoPS).
package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Header sizes in bytes, the constants the fragment model uses.
const (
	ipHeader    = 20
	udpHeader   = 8
	frameHeader = 18 // Ethernet header + FCS
	icmpEcho    = 56 // ICMP port-unreachable reply size
)

// Hop is one store-and-forward element (router or end-host NIC) on a
// path.
type Hop struct {
	// Capacity is the link's raw rate in bits per second.
	Capacity float64
	// Utilization is the fraction of capacity consumed by cross
	// traffic (0..1); the bandwidth available to new flows is
	// Capacity×(1−Utilization).
	Utilization float64
	// PropDelay is the signal propagation time across the link.
	PropDelay time.Duration
	// ProcDelay is the per-packet forwarding decision time.
	ProcDelay time.Duration
}

// Available returns the hop's available bandwidth in bits per second.
func (h Hop) Available() float64 {
	u := h.Utilization
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		u = 0.999
	}
	return h.Capacity * (1 - u)
}

// Fault decides the fate of one simulated probe packet. It is the
// hook the chaos layer plugs into a path: drop turns the probe into a
// loss (the path reports its timeout RTT instead of a measurement),
// extra adds injected queueing delay. Implementations must be safe
// for concurrent use.
type Fault interface {
	Packet() (drop bool, extra time.Duration)
}

// Config describes a path between two hosts.
type Config struct {
	Name string
	// MTU of the sender's physical interface in bytes. 0 means no
	// fragmentation or init effect (a loopback or virtual interface —
	// the thesis's observation 1).
	MTU int
	// SpeedInit is the kernel→NIC initialization speed in bits per
	// second for the first frame of a datagram (the thesis estimates
	// ≈25 Mbps on its testbed). 0 disables the effect.
	SpeedInit float64
	// SysOverhead is the constant sender-side cost per probe
	// (Overhead_sys in Eq. 3.4).
	SysOverhead time.Duration
	// Jitter is the relative standard deviation of random queueing
	// noise (e.g. 0.02 for a quiet LAN, 0.3 for a loaded WAN).
	Jitter float64
	// Hops from sender to receiver, in order.
	Hops []Hop
	// Seed makes the path's noise reproducible.
	Seed int64
	// Timeout is the RTT a lost probe reports: the prober gives up
	// waiting for the echo after this long. Only consulted when a
	// Fault is attached. Defaults to 2 s.
	Timeout time.Duration
}

// Path is a probe-able simulated network path.
type Path struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	// sleep performs the scaled segment-occupancy pause; injected so
	// tests can run contention scenarios in virtual time.
	sleep func(time.Duration)

	// shared, when attached, makes this path contend with others: the
	// interference behind §3.3.3's strictly-sequential probing rule.
	shared *Segment

	// fault, when attached, injects loss and extra delay into every
	// probe the path carries (the chaos hook).
	fault Fault
}

// Segment is a network segment several paths traverse (the links near
// the probing monitor). Probes on any attached path contend for it:
// each additional concurrent probe inflates measured delays, the
// interference §3.3.3 warns about ("Multiple probes should not run
// simultaneously").
type Segment struct {
	inflight atomic.Int32
}

// NewSegment creates a shared segment.
func NewSegment() *Segment { return &Segment{} }

// AttachSegment makes this path contend with every other path on the
// segment. Nil detaches.
func (p *Path) AttachSegment(s *Segment) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shared = s
}

// enter registers an in-flight probe and returns the interference
// factor to apply: 1 + 0.7 per concurrent rival on the shared
// segment (an aggressive but simple contention model).
func (p *Path) enter() (leave func(), factor float64) {
	p.mu.Lock()
	seg := p.shared
	p.mu.Unlock()
	if seg == nil {
		return func() {}, 1
	}
	rivals := seg.inflight.Add(1) - 1
	return func() { seg.inflight.Add(-1) }, 1 + 0.7*float64(rivals)
}

// New validates the config and builds a path.
func New(cfg Config) (*Path, error) {
	if len(cfg.Hops) == 0 {
		return nil, fmt.Errorf("simnet: path %q has no hops", cfg.Name)
	}
	for i, h := range cfg.Hops {
		if h.Capacity <= 0 {
			return nil, fmt.Errorf("simnet: path %q hop %d has capacity %v", cfg.Name, i, h.Capacity)
		}
		if h.Utilization < 0 || h.Utilization >= 1 {
			return nil, fmt.Errorf("simnet: path %q hop %d has utilization %v", cfg.Name, i, h.Utilization)
		}
	}
	if cfg.MTU < 0 || (cfg.MTU > 0 && cfg.MTU <= ipHeader+udpHeader) {
		return nil, fmt.Errorf("simnet: path %q has unusable MTU %d", cfg.Name, cfg.MTU)
	}
	return &Path{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), sleep: time.Sleep}, nil
}

// SetFault attaches a fault injector to the path; nil detaches. Every
// subsequent probe packet consults it.
func (p *Path) SetFault(f Fault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fault = f
}

// packetFate consults the attached fault, if any.
func (p *Path) packetFate() (drop bool, extra time.Duration) {
	p.mu.Lock()
	f := p.fault
	p.mu.Unlock()
	if f == nil {
		return false, 0
	}
	return f.Packet()
}

// timeout is the lost-probe RTT.
func (p *Path) timeout() time.Duration {
	if p.cfg.Timeout > 0 {
		return p.cfg.Timeout
	}
	return 2 * time.Second
}

// Name returns the path's label.
func (p *Path) Name() string { return p.cfg.Name }

// MTU returns the sender interface MTU (0 for virtual interfaces).
func (p *Path) MTU() int { return p.cfg.MTU }

// hops copies the hop list under the lock so probes and concurrent
// SetUtilization calls never race.
func (p *Path) hops() []Hop {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Hop, len(p.cfg.Hops))
	copy(out, p.cfg.Hops)
	return out
}

// AvailableBandwidth is the ground-truth available bandwidth in bits
// per second: the minimum over hops of Capacity×(1−Utilization). The
// experiments compare estimator output against this.
func (p *Path) AvailableBandwidth() float64 {
	min := math.Inf(1)
	for _, h := range p.hops() {
		if a := h.Available(); a < min {
			min = a
		}
	}
	return min
}

// EffectiveBandwidth is the bandwidth a slope-based estimator can see:
// the harmonic composition of per-hop available bandwidths, since a
// packet pays S/avail_i serialisation at every store-and-forward hop.
func (p *Path) EffectiveBandwidth() float64 {
	inv := 0.0
	for _, h := range p.hops() {
		inv += 1 / h.Available()
	}
	return 1 / inv
}

// BaseRTT is the fixed two-way delay excluding size-dependent terms:
// propagation, processing, and the echo's return trip. It is what
// ping with tiny packets would report.
func (p *Path) BaseRTT() time.Duration {
	hops := p.hops()
	fixed := p.cfg.SysOverhead
	for _, h := range hops {
		fixed += h.PropDelay + h.ProcDelay
	}
	// Return path: the ICMP reply is small; charge serialisation for
	// icmpEcho bytes plus prop/proc again.
	ret := time.Duration(0)
	for _, h := range hops {
		ret += h.PropDelay + h.ProcDelay +
			time.Duration(float64(icmpEcho+ipHeader+frameHeader)*8/h.Available()*float64(time.Second))
	}
	return fixed + ret
}

// fragments returns the number of IP fragments a UDP payload of size
// s needs on this path's first interface, and the total wire bytes
// including per-fragment headers.
func (p *Path) fragments(payload int) (nFrag int, wireBytes int) {
	datagram := payload + udpHeader
	if p.cfg.MTU == 0 {
		return 1, datagram + ipHeader + frameHeader
	}
	perFrag := p.cfg.MTU - ipHeader
	nFrag = (datagram + perFrag - 1) / perFrag
	if nFrag < 1 {
		nFrag = 1
	}
	wireBytes = datagram + nFrag*(ipHeader+frameHeader)
	return nFrag, wireBytes
}

// initDelay is the Eq. 3.6 first-frame initialization term.
func (p *Path) initDelay(payload int) time.Duration {
	if p.cfg.SpeedInit <= 0 || p.cfg.MTU == 0 {
		return 0
	}
	first := payload + udpHeader + ipHeader
	if first > p.cfg.MTU {
		first = p.cfg.MTU
	}
	return time.Duration(float64(first*8) / p.cfg.SpeedInit * float64(time.Second))
}

// onewayDelay computes the forward one-way delay for a UDP payload of
// the given size, without noise. Exported pieces of the model are
// deterministic so tests can verify the equations exactly.
func (p *Path) onewayDelay(payload int) time.Duration {
	nFrag, wire := p.fragments(payload)
	d := p.cfg.SysOverhead + p.initDelay(payload)
	for _, h := range p.hops() {
		d += h.PropDelay
		// Every fragment pays the processing delay at every hop.
		d += time.Duration(nFrag) * h.ProcDelay
		// Serialisation of all wire bytes at the rate left over by
		// cross traffic: this is the S/B term of Eq. 3.4 and what a
		// slope-based estimator ultimately measures.
		d += time.Duration(float64(wire*8) / h.Available() * float64(time.Second))
	}
	return d
}

// returnDelay is the echo's trip back (small ICMP message).
func (p *Path) returnDelay() time.Duration {
	wire := icmpEcho + ipHeader + frameHeader
	var d time.Duration
	for _, h := range p.hops() {
		d += h.PropDelay + h.ProcDelay +
			time.Duration(float64(wire*8)/h.Available()*float64(time.Second))
	}
	return d
}

// noise draws a multiplicative queueing-jitter factor ≥ 0. Jitter is
// one-sided (queues add delay, they never remove it), mimicking the
// positive RTT spikes in the thesis's scatter plots.
func (p *Path) noise(base time.Duration) time.Duration {
	if p.cfg.Jitter <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := math.Abs(p.rng.NormFloat64()) * p.cfg.Jitter
	// Occasional heavy-tail spike: a cross-traffic burst caught in a
	// router queue.
	if p.rng.Float64() < 0.02 {
		n += p.rng.Float64() * p.cfg.Jitter * 10
	}
	return time.Duration(n * float64(base))
}

// ProbeRTT sends one UDP probe of the given payload size and returns
// the time until the ICMP port-unreachable reply arrives — the §3.3.2
// measurement primitive. Probes running concurrently on an attached
// shared segment inflate one another's measured delays.
func (p *Path) ProbeRTT(payload int) time.Duration {
	drop, extra := p.packetFate()
	if drop {
		// The echo never comes back; the prober waits out its timeout.
		return p.timeout()
	}
	return p.probeRTTClean(payload) + extra
}

// probeRTTClean is ProbeRTT without fault consultation.
func (p *Path) probeRTTClean(payload int) time.Duration {
	leave, factor := p.enter()
	defer leave()
	base := p.onewayDelay(payload) + p.returnDelay()
	d := base + p.noise(base)
	if p.sharedSegment() != nil {
		// Occupy the segment for a (scaled) real duration so probes
		// issued concurrently genuinely overlap; detached paths stay
		// purely analytic and instant.
		p.sleep(d / contentionTimeScale)
	}
	if factor > 1 {
		// Contention delays only the size-dependent part: the rival's
		// packets queue in front of ours at the shared links.
		extra := time.Duration((factor - 1) * float64(d-p.BaseRTT()))
		if extra > 0 {
			d += extra
		}
	}
	return d
}

// contentionTimeScale compresses segment occupancy: a probe holds its
// shared segment for RTT/scale of wall time.
const contentionTimeScale = 10

func (p *Path) sharedSegment() *Segment {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.shared
}

// ProbePair sends two back-to-back probes of the given size and
// returns the dispersion (gap) between their echoes at the sender —
// the packet-pair primitive pipechar builds on. The dispersion equals
// the serialisation time of the second packet at the tightest hop,
// perturbed by queueing noise, which is exactly why pipechar "will
// report wrong results" on paths with high delay variation (§3.3.1).
func (p *Path) ProbePair(payload int) time.Duration {
	drop, extra := p.packetFate()
	if drop {
		// Either packet of the pair lost: the dispersion degenerates to
		// the prober's timeout, the "wrong results" regime.
		return p.timeout()
	}
	_, wire := p.fragments(payload)
	hops := p.hops()
	bottleneck := math.Inf(1)
	for _, h := range hops {
		if h.Capacity < bottleneck {
			bottleneck = h.Capacity
		}
	}
	gap := time.Duration(float64(wire*8) / bottleneck * float64(time.Second))
	// Cross traffic squeezes between the pair in proportion to
	// utilization, widening the observed gap; jitter perturbs it both
	// ways because the pair's echoes each suffer queueing.
	util := 0.0
	for _, h := range hops {
		if h.Utilization > util {
			util = h.Utilization
		}
	}
	gap += time.Duration(util * float64(gap))
	if p.cfg.Jitter > 0 {
		p.mu.Lock()
		n := p.rng.NormFloat64() * p.cfg.Jitter
		p.mu.Unlock()
		gap += time.Duration(n * float64(p.BaseRTT()) / 4)
		if gap <= 0 {
			gap = time.Microsecond
		}
	}
	// Injected delay hits one packet of the pair, widening the gap.
	return gap + extra
}

// SendStream sends n packets of the given payload size at the given
// rate (bits per second) and returns their one-way delays — the SLoPS
// primitive pathload builds on. When rate exceeds the available
// bandwidth, the bottleneck queue grows by the rate excess for every
// packet, so delays trend upward across the stream (§3.3.1).
func (p *Path) SendStream(payload, n int, rate float64) []time.Duration {
	if n <= 0 {
		return nil
	}
	base := p.onewayDelay(payload)
	avail := p.AvailableBandwidth()
	_, wire := p.fragments(payload)
	interPacket := float64(wire*8) / rate // seconds between departures

	delays := make([]time.Duration, n)
	queue := 0.0 // seconds of backlog at the bottleneck
	for i := 0; i < n; i++ {
		if rate > avail {
			// Each inter-packet interval, the bottleneck drains
			// interPacket×avail bits but receives wire×8: the backlog
			// grows by the difference (in time units at avail rate).
			queue += float64(wire*8)/avail - interPacket
			if queue < 0 {
				queue = 0
			}
		} else {
			queue = 0
		}
		d := base + time.Duration(queue*float64(time.Second))
		if drop, extra := p.packetFate(); drop {
			// A lost stream packet reads as a delay spike of the full
			// probe timeout — what a SLoPS receiver's gap timer sees.
			delays[i] = p.timeout()
			continue
		} else if extra > 0 {
			d += extra
		}
		delays[i] = d + p.noise(base)
	}
	return delays
}

// SetUtilization changes the cross-traffic load on one hop at runtime;
// experiments use it to vary available bandwidth between runs.
func (p *Path) SetUtilization(hop int, u float64) error {
	if hop < 0 || hop >= len(p.cfg.Hops) {
		return fmt.Errorf("simnet: path %q has no hop %d", p.cfg.Name, hop)
	}
	if u < 0 || u >= 1 {
		return fmt.Errorf("simnet: utilization %v out of range [0,1)", u)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cfg.Hops[hop].Utilization = u
	return nil
}

// ProbeHop sends a TTL-limited probe that expires at hop index i
// (0-based) and returns the time until the ICMP time-exceeded reply
// arrives — the primitive pipechar's hop-by-hop trace mode uses
// (Appendix A). The probe traverses hops 0..i forward; the reply is a
// small ICMP message retracing those hops.
func (p *Path) ProbeHop(hop int, payload int) (time.Duration, error) {
	hops := p.hops()
	if hop < 0 || hop >= len(hops) {
		return 0, fmt.Errorf("simnet: path %q has no hop %d", p.cfg.Name, hop)
	}
	nFrag, wire := p.fragments(payload)
	d := p.cfg.SysOverhead + p.initDelay(payload)
	for i := 0; i <= hop; i++ {
		h := hops[i]
		d += h.PropDelay
		d += time.Duration(nFrag) * h.ProcDelay
		d += time.Duration(float64(wire*8) / h.Available() * float64(time.Second))
	}
	// ICMP time-exceeded reply retraces hops 0..i.
	replyWire := icmpEcho + ipHeader + frameHeader
	for i := 0; i <= hop; i++ {
		h := hops[i]
		d += h.PropDelay + h.ProcDelay +
			time.Duration(float64(replyWire*8)/h.Available()*float64(time.Second))
	}
	return d + p.noise(d), nil
}

// NumHops reports the path length for hop-by-hop tracing.
func (p *Path) NumHops() int { return len(p.hops()) }
