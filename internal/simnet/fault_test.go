package simnet

import (
	"testing"
	"time"
)

// constFault drops everything or delays everything, for hook tests.
type constFault struct {
	drop  bool
	extra time.Duration
}

func (f constFault) Packet() (bool, time.Duration) { return f.drop, f.extra }

func faultyLAN(t *testing.T) *Path {
	t.Helper()
	p, err := New(Config{
		Name: "lan", MTU: 1500, Timeout: 750 * time.Millisecond,
		Hops: []Hop{{Capacity: 100e6, PropDelay: 20 * time.Microsecond, ProcDelay: 2 * time.Microsecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFaultDropReportsTimeout(t *testing.T) {
	p := faultyLAN(t)
	clean := p.ProbeRTT(64)
	p.SetFault(constFault{drop: true})
	if got := p.ProbeRTT(64); got != 750*time.Millisecond {
		t.Fatalf("dropped probe RTT = %v, want the 750ms timeout", got)
	}
	if got := p.ProbePair(64); got != 750*time.Millisecond {
		t.Fatalf("dropped pair dispersion = %v, want the timeout", got)
	}
	p.SetFault(nil)
	if got := p.ProbeRTT(64); got > 10*clean+time.Millisecond {
		t.Fatalf("detached fault still affects probes: %v (clean %v)", got, clean)
	}
}

func TestFaultExtraDelayInflatesRTT(t *testing.T) {
	p := faultyLAN(t)
	clean := p.ProbeRTT(64)
	p.SetFault(constFault{extra: 5 * time.Millisecond})
	got := p.ProbeRTT(64)
	if got < clean+4*time.Millisecond {
		t.Fatalf("injected 5ms delay, RTT went %v → %v", clean, got)
	}
}

func TestFaultDropMarksStreamPackets(t *testing.T) {
	p := faultyLAN(t)
	p.SetFault(constFault{drop: true})
	delays := p.SendStream(512, 4, 1e6)
	for i, d := range delays {
		if d != 750*time.Millisecond {
			t.Fatalf("stream packet %d delay %v, want timeout", i, d)
		}
	}
}
