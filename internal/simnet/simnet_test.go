package simnet

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// lanPath models the thesis's sagit→suna campus path: 100 Mbps
// Ethernet, MTU 1500, Speed_init 25 Mbps.
func lanPath(t *testing.T, jitter float64) *Path {
	t.Helper()
	p, err := New(Config{
		Name:        "sagit-suna",
		MTU:         1500,
		SpeedInit:   25e6,
		SysOverhead: 50 * time.Microsecond,
		Jitter:      jitter,
		Seed:        1,
		Hops: []Hop{
			{Capacity: 100e6, PropDelay: 20 * time.Microsecond, ProcDelay: 5 * time.Microsecond},
			{Capacity: 100e6, PropDelay: 20 * time.Microsecond, ProcDelay: 5 * time.Microsecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Name: "empty"}); err == nil {
		t.Error("accepted a path with no hops")
	}
	if _, err := New(Config{Hops: []Hop{{Capacity: 0}}}); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := New(Config{Hops: []Hop{{Capacity: 1e6, Utilization: 1.0}}}); err == nil {
		t.Error("accepted utilization 1.0")
	}
	if _, err := New(Config{MTU: 20, Hops: []Hop{{Capacity: 1e6}}}); err == nil {
		t.Error("accepted MTU smaller than headers")
	}
}

func TestDelayMonotonicInSize(t *testing.T) {
	p := lanPath(t, 0)
	prev := time.Duration(0)
	for s := 10; s <= 6000; s += 100 {
		d := p.onewayDelay(s)
		if d < prev {
			t.Fatalf("onewayDelay(%d) = %v < previous %v", s, d, prev)
		}
		prev = d
	}
}

func TestMTUSlopeBreak(t *testing.T) {
	// Figs 3.3–3.5: the RTT/size slope is steeper below the MTU by
	// exactly 1/Speed_init (Eq. 3.6/3.7).
	for _, mtu := range []int{1500, 1000, 500} {
		p, err := New(Config{
			Name: "mtu-test", MTU: mtu, SpeedInit: 25e6,
			Hops: []Hop{{Capacity: 100e6}},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Sample two points well below and two well above the MTU.
		loA, loB := mtu/4, mtu/2
		hiA, hiB := 2*mtu, 4*mtu
		slopeLo := (p.onewayDelay(loB) - p.onewayDelay(loA)).Seconds() / float64(loB-loA)
		slopeHi := (p.onewayDelay(hiB) - p.onewayDelay(hiA)).Seconds() / float64(hiB-hiA)
		if slopeLo <= slopeHi {
			t.Errorf("MTU %d: slope below (%.3g) not steeper than above (%.3g)", mtu, slopeLo, slopeHi)
		}
		// Below the MTU the slope gains exactly 8/SpeedInit per byte.
		wantGain := 8.0 / 25e6
		gain := slopeLo - slopeHi
		if math.Abs(gain-wantGain) > wantGain*0.35 {
			t.Errorf("MTU %d: slope gain %.3g, want ≈ %.3g (1/Speed_init)", mtu, gain, wantGain)
		}
	}
}

func TestLoopbackHasNoThreshold(t *testing.T) {
	// Observation 1 (§3.3.2): no threshold on loopback or virtual
	// interfaces.
	p, err := New(Config{
		Name: "loopback", MTU: 0, SpeedInit: 25e6,
		Hops: []Hop{{Capacity: 1e9, ProcDelay: time.Microsecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	slopeLo := (p.onewayDelay(700) - p.onewayDelay(300)).Seconds() / 400
	slopeHi := (p.onewayDelay(4000) - p.onewayDelay(3000)).Seconds() / 1000
	if rel := math.Abs(slopeLo-slopeHi) / slopeHi; rel > 0.05 {
		t.Errorf("loopback slopes differ by %.1f%%, want none", rel*100)
	}
}

func TestAvailableBandwidthIsBottleneck(t *testing.T) {
	p, err := New(Config{
		Name: "multi", MTU: 1500,
		Hops: []Hop{
			{Capacity: 1e9},
			{Capacity: 100e6, Utilization: 0.4},
			{Capacity: 622e6},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.AvailableBandwidth(), 60e6; math.Abs(got-want) > 1 {
		t.Errorf("AvailableBandwidth = %v, want %v", got, want)
	}
	if eff := p.EffectiveBandwidth(); eff >= p.AvailableBandwidth() {
		t.Errorf("EffectiveBandwidth %v should be below bottleneck %v", eff, p.AvailableBandwidth())
	}
}

func TestFragmentCounts(t *testing.T) {
	p := lanPath(t, 0)
	cases := []struct {
		payload int
		frags   int
	}{
		{100, 1},
		{1400, 1},
		{1472, 1}, // 1472+8 = 1480 = 1500-20: exactly one fragment
		{1473, 2}, // one byte over
		{1600, 2}, // thesis S1
		{2900, 2}, // thesis S2: same fragment count as S1 (rule 3)
		{2960, 3}, // 2968 > 2×1480
		{6000, 5}, // top of the sweep range
	}
	for _, c := range cases {
		if n, _ := p.fragments(c.payload); n != c.frags {
			t.Errorf("fragments(%d) = %d, want %d", c.payload, n, c.frags)
		}
	}
}

func TestThesisProbeSizesShareFragmentCount(t *testing.T) {
	// Rule 3 of §3.3.2: S1=1600 and S2=2900 generate the same number
	// of fragments under MTU 1500 — that is why the 7th group wins.
	p := lanPath(t, 0)
	n1, _ := p.fragments(1600)
	n2, _ := p.fragments(2900)
	if n1 != n2 {
		t.Errorf("1600→%d fragments, 2900→%d; thesis pair must match", n1, n2)
	}
}

func TestProbeRTTNoiseIsOneSided(t *testing.T) {
	p := lanPath(t, 0.1)
	base := p.onewayDelay(1000) + p.returnDelay()
	for i := 0; i < 200; i++ {
		if rtt := p.ProbeRTT(1000); rtt < base {
			t.Fatalf("ProbeRTT %v below noise-free floor %v", rtt, base)
		}
	}
}

func TestProbeRTTDeterministicWithSeed(t *testing.T) {
	a := lanPath(t, 0.05)
	b := lanPath(t, 0.05)
	for i := 0; i < 50; i++ {
		if a.ProbeRTT(500) != b.ProbeRTT(500) {
			t.Fatal("same seed produced different probe sequences")
		}
	}
}

func TestSendStreamTrendsUpAboveAvailableBandwidth(t *testing.T) {
	p := lanPath(t, 0)
	avail := p.AvailableBandwidth()
	over := p.SendStream(300, 50, avail*1.5)
	if !strictlyIncreasingTail(over) {
		t.Error("delays should build up when rate > available bandwidth")
	}
	under := p.SendStream(300, 50, avail*0.5)
	for i := 1; i < len(under); i++ {
		if under[i] != under[0] {
			t.Fatal("noise-free under-rate stream should have flat delays")
		}
	}
}

func strictlyIncreasingTail(d []time.Duration) bool {
	for i := len(d) / 2; i+1 < len(d); i++ {
		if d[i+1] <= d[i] {
			return false
		}
	}
	return len(d) > 2
}

func TestProbePairReflectsBottleneck(t *testing.T) {
	p := lanPath(t, 0)
	gap := p.ProbePair(1472)
	_, wire := p.fragments(1472)
	want := time.Duration(float64(wire*8) / 100e6 * float64(time.Second))
	if math.Abs(float64(gap-want)) > float64(want)*0.01 {
		t.Errorf("noise-free pair gap = %v, want %v", gap, want)
	}
}

func TestSetUtilization(t *testing.T) {
	p := lanPath(t, 0)
	before := p.AvailableBandwidth()
	if err := p.SetUtilization(0, 0.5); err != nil {
		t.Fatal(err)
	}
	if after := p.AvailableBandwidth(); math.Abs(after-before/2) > 1 {
		t.Errorf("available bandwidth = %v after 50%% load, want %v", after, before/2)
	}
	if err := p.SetUtilization(5, 0.1); err == nil {
		t.Error("accepted out-of-range hop index")
	}
	if err := p.SetUtilization(0, 1.5); err == nil {
		t.Error("accepted out-of-range utilization")
	}
}

func TestConcurrentProbesAndUtilizationChanges(t *testing.T) {
	p := lanPath(t, 0.05)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.ProbeRTT(1600)
				p.SendStream(300, 5, 50e6)
				p.AvailableBandwidth()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 100; j++ {
			p.SetUtilization(0, float64(j%9)/10)
		}
	}()
	wg.Wait()
}

func TestPropertyDelayScalesWithUtilization(t *testing.T) {
	// More cross traffic never makes the noise-free delay smaller.
	prop := func(u1Raw, u2Raw uint8, sizeRaw uint16) bool {
		u1 := float64(u1Raw%90) / 100
		u2 := float64(u2Raw%90) / 100
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		size := int(sizeRaw%6000) + 1
		mk := func(u float64) *Path {
			p, err := New(Config{
				Name: "prop", MTU: 1500, SpeedInit: 25e6,
				Hops: []Hop{{Capacity: 100e6, Utilization: u}},
			})
			if err != nil {
				return nil
			}
			return p
		}
		a, b := mk(u1), mk(u2)
		if a == nil || b == nil {
			return false
		}
		return a.onewayDelay(size) <= b.onewayDelay(size)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBaseRTTMatchesPingScale(t *testing.T) {
	// Table 3.2: a WAN path configured for ~126 ms should report a
	// BaseRTT in that regime.
	p, err := New(Config{
		Name: "sagit-tokxp", MTU: 1500, SpeedInit: 25e6, Jitter: 0.2,
		Hops: []Hop{
			{Capacity: 100e6, PropDelay: 1 * time.Millisecond},
			{Capacity: 155e6, PropDelay: 30 * time.Millisecond, Utilization: 0.3},
			{Capacity: 622e6, PropDelay: 31 * time.Millisecond, Utilization: 0.2},
			{Capacity: 100e6, PropDelay: 1 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rtt := p.BaseRTT()
	if rtt < 100*time.Millisecond || rtt > 160*time.Millisecond {
		t.Errorf("BaseRTT = %v, want ≈126 ms", rtt)
	}
}

func TestSharedSegmentContention(t *testing.T) {
	// §3.3.3: concurrent probes interfere. Two paths on one segment;
	// a probe while another is in flight measures a longer RTT.
	seg := NewSegment()
	a := lanPath(t, 0)
	b := lanPath(t, 0)
	a.AttachSegment(seg)
	b.AttachSegment(seg)

	solo := a.ProbeRTT(1600)

	// Hold a probe "in flight" on b while probing a. The contention
	// model counts in-flight rivals, so emulate one by entering b's
	// segment directly through a long-running concurrent probe.
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		leave, _ := b.enter()
		close(started)
		<-release
		leave()
	}()
	<-started
	contended := a.ProbeRTT(1600)
	close(release)

	if contended <= solo {
		t.Errorf("contended RTT %v not above solo %v", contended, solo)
	}
	// Detached paths do not contend.
	a.AttachSegment(nil)
	if again := a.ProbeRTT(1600); again > solo*2 {
		t.Errorf("detached path still contended: %v vs %v", again, solo)
	}
}
