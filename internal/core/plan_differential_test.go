package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"smartsock/internal/obs"
	"smartsock/internal/proto"
	"smartsock/internal/reqlang"
	"smartsock/internal/status"
	"smartsock/internal/store"
)

// The planner's core invariant: for any table history — puts,
// refreshes, expiries, tombstone churn, all shipped to the wizard's
// mirror through real wire deltas — a planned Select answered from the
// per-field indexes is byte-identical to the same Select answered by
// the constraint-testing scan, and agrees with the pre-planner full
// scan on the servers chosen. These tests drive that invariant with
// seeded random histories and a requirement corpus covering the
// planner's whole decision surface, shrinking failures to a minimal
// op sequence.

// diffCorpus exercises every planner verdict: selective and broad
// index-resolvable prefixes, flips, conjunctions, equality, security
// and network variables, user parameters, scores, hard errors, typos,
// and programs the planner must refuse.
var diffCorpus = []string{
	"host_system_load1 < 2\n",
	"2 > host_system_load1\n",
	"host_cpu_free > 0.7\n",
	"host_memory_free > 3\n",
	"host_system_load1 < 3 && host_cpu_free > 0.25\n",
	"host_system_load1 == 2\n",
	"host_system_load1 >= 10\n",
	"host_bogomips > 1050\nhost_cpu_free * 100\n",
	"host_system_load1 < 3\nhost_memory_free > 1\nhost_system_load1 * -1\n",
	"host_security_level >= 2\n",
	"host_security_level >= 1\nhost_system_load1 < 3\n",
	"host_system_load1 < 4\nuser_denied_host1 = \"diff-03\"\n",
	"host_system_load1 < 4\nuser_preferred_host1 = \"diff-05\"\n",
	"monitor_network_delay < 100\nhost_system_load1 < 4\n",
	"host_system_load1 < 3\nmonitor_network_bw > 0\n",
	"host_system_load1 / 0 > 1\n",
	"host_nonexistent_var < 2\n",
	"host_system_load1 + 1 < 3\n",
}

const diffHosts = 12

func diffSys(host, val int) status.ServerStatus {
	return status.ServerStatus{
		Host:     fmt.Sprintf("diff-%02d", host),
		Load1:    float64(val),
		CPUIdle:  float64(val) / 4,
		Bogomips: 1000 + float64(host)*10,
		MemTotal: 256 << 20,
		MemFree:  uint64(val+1) << 20,
	}
}

func diffSec(host, val int) status.SecLevel {
	return status.SecLevel{Host: fmt.Sprintf("diff-%02d", host), Level: val % 5}
}

func diffNet(host, val int) status.NetMetric {
	return status.NetMetric{
		From:      "netmon-local",
		To:        fmt.Sprintf("group-%02d", host),
		Delay:     time.Duration(val+1) * time.Millisecond,
		Bandwidth: float64(val+1) * 1e6,
	}
}

// diffOp is one generated history operation; opSelect runs the whole
// corpus through the selectors and compares.
type diffOp struct {
	kind diffKind
	host int
	val  int
}

type diffKind int

const (
	dPutSys diffKind = iota
	dRefreshSys
	dPutSec
	dPutNet
	dExpireSys
	dExpireSec
	dSelect
	diffKinds
)

func (o diffOp) String() string {
	names := [...]string{"putSys", "refreshSys", "putSec", "putNet", "expireSys", "expireSec", "select"}
	return fmt.Sprintf("%s(h%d,v%d)", names[o.kind], o.host, o.val)
}

func genDiffOps(rng *rand.Rand, n int) []diffOp {
	ops := make([]diffOp, 0, n+1)
	for i := 0; i < n; i++ {
		ops = append(ops, diffOp{
			kind: diffKind(rng.Intn(int(diffKinds))),
			host: rng.Intn(diffHosts),
			val:  rng.Intn(5),
		})
	}
	return append(ops, diffOp{kind: dSelect})
}

// diffHarness wires a source database to the wizard-side mirror
// through the real delta codec, with three selectors over the mirror:
// the index planner, the forced constraint scan, and the pre-planner
// full scan.
type diffHarness struct {
	src, mir *store.DB
	now      time.Time
	mirVer   uint64
	synced   bool

	planner *Selector // PlanThreshold 1: index path
	forced  *Selector // same, ForceScan: constraint-scan ground truth
	classic *Selector // planner disabled: thesis baseline
	reg     *obs.Registry

	progs []*reqlang.Program

	sysD status.SysDelta
	netD status.NetDelta
	secD status.SecDelta
	sysV status.SysDeltaView
	netV status.NetDeltaView
	secV status.SecDeltaView
	buf  []byte
}

const diffStaleAge = 6 * time.Second

func newDiffHarness(t testing.TB) *diffHarness {
	h := &diffHarness{now: time.Unix(1_700_000_000, 0), reg: obs.NewRegistry()}
	clock := func() time.Time { return h.now }
	h.src = store.NewWithClock(clock)
	h.mir = store.NewWithClock(clock)
	cfg := Config{
		Obs:          h.reg,
		LocalMonitor: "netmon-local",
		GroupOf: func(host string) string {
			return strings.Replace(host, "diff-", "group-", 1)
		},
		ServicePort:   9000,
		MaxStatusAge:  diffStaleAge,
		PlanThreshold: 1,
	}
	var err error
	if h.planner, err = New(h.mir, cfg); err != nil {
		t.Fatal(err)
	}
	// Only the index-path selector reports metrics, so the assertions
	// below see its planner verdicts alone.
	forcedCfg := cfg
	forcedCfg.ForceScan = true
	forcedCfg.Obs = nil
	if h.forced, err = New(h.mir, forcedCfg); err != nil {
		t.Fatal(err)
	}
	classicCfg := cfg
	classicCfg.PlanThreshold = -1
	classicCfg.Obs = nil
	if h.classic, err = New(h.mir, classicCfg); err != nil {
		t.Fatal(err)
	}
	for _, src := range diffCorpus {
		p, err := reqlang.Parse(src)
		if err != nil {
			t.Fatalf("corpus %q: %v", src, err)
		}
		h.progs = append(h.progs, p)
	}
	return h
}

func (h *diffHarness) apply(op diffOp) error {
	h.now = h.now.Add(time.Second)
	switch op.kind {
	case dPutSys:
		h.src.PutSys(diffSys(op.host, op.val))
	case dRefreshSys:
		if r, ok := h.src.GetSys(fmt.Sprintf("diff-%02d", op.host)); ok {
			h.src.PutSys(r.Status)
		} else {
			h.src.PutSys(diffSys(op.host, op.val))
		}
	case dPutSec:
		h.src.PutSec(diffSec(op.host, op.val))
	case dPutNet:
		h.src.PutNet(diffNet(op.host, op.val))
	case dExpireSys:
		h.src.ExpireSys(3 * time.Second)
	case dExpireSec:
		h.src.ExpireSec(3 * time.Second)
	case dSelect:
		if err := h.sync(); err != nil {
			return err
		}
		return h.compareAll(op.val)
	}
	return nil
}

// sync ships one epoch to the mirror, delta when servable, snapshot
// otherwise — the transmitter's decision, through the wire codec.
func (h *diffHarness) sync() error {
	if h.synced {
		if ver, ok := h.src.ChangedSince(h.mirVer, &h.sysD, &h.netD, &h.secD); ok {
			if !h.sysD.Empty() {
				h.buf = status.AppendSysDelta(h.buf[:0], &h.sysD)
				if err := h.sysV.Parse(h.buf); err != nil {
					return err
				}
				h.mir.ApplySysDelta(h.sysV.Changed, h.sysV.Deleted, h.sysV.Refreshed)
			}
			if !h.netD.Empty() {
				h.buf = status.AppendNetDelta(h.buf[:0], &h.netD)
				if err := h.netV.Parse(h.buf); err != nil {
					return err
				}
				h.mir.ApplyNetDelta(h.netV.Changed, h.netV.Deleted, h.netV.Refreshed)
			}
			if !h.secD.Empty() {
				h.buf = status.AppendSecDelta(h.buf[:0], &h.secD)
				if err := h.secV.Parse(h.buf); err != nil {
					return err
				}
				h.mir.ApplySecDelta(h.secV.Changed, h.secV.Deleted, h.secV.Refreshed)
			}
			h.mirVer = ver
			return nil
		}
	}
	sys, net, sec, ver := h.src.SnapshotAt()
	h.mir.Load(sys, net, sec)
	h.mirVer = ver
	h.synced = true
	return nil
}

// encodeResult renders a Result (and its error) into a canonical byte
// string, so "byte-identical" is literal.
func encodeResult(res Result, err error) string {
	var b strings.Builder
	fmt.Fprintf(&b, "err=%v servers=%v shortfall=%d stale=%d pruned=%d epoch=%d\n",
		err, res.Servers, res.Shortfall, res.StaleDropped, res.Pruned, res.Epoch)
	for _, d := range res.Decisions {
		fmt.Fprintf(&b, "%s q=%t p=%t d=%t fl=%d score=%g hs=%t err=%v\n",
			d.Host, d.Qualified, d.Preferred, d.Denied, d.FailedLine, d.Score, d.HasScore, d.Err)
	}
	return b.String()
}

// compareAll runs the corpus through all three selectors and checks
// the equivalences.
func (h *diffHarness) compareAll(val int) error {
	n := 1 + val%3*2 // 1, 3 or 5 servers
	for pi, prog := range h.progs {
		for _, opt := range []proto.Option{proto.OptPartialOK, proto.OptPartialOK | proto.OptRankByExpr} {
			idxRes, idxErr := h.planner.Select(prog, n, opt)
			scanRes, scanErr := h.forced.Select(prog, n, opt)
			a, b := encodeResult(idxRes, idxErr), encodeResult(scanRes, scanErr)
			if a != b {
				return fmt.Errorf("corpus[%d] %q n=%d opt=%d: index path diverged from forced scan\nindex: %sscan:  %s",
					pi, diffCorpus[pi], n, opt, a, b)
			}
			clRes, clErr := h.classic.Select(prog, n, opt)
			if (clErr == nil) != (idxErr == nil) {
				return fmt.Errorf("corpus[%d] %q n=%d opt=%d: classic err %v vs planner err %v",
					pi, diffCorpus[pi], n, opt, clErr, idxErr)
			}
			if fmt.Sprint(clRes.Servers) != fmt.Sprint(idxRes.Servers) || clRes.Shortfall != idxRes.Shortfall {
				return fmt.Errorf("corpus[%d] %q n=%d opt=%d: classic servers %v/%d vs planner %v/%d",
					pi, diffCorpus[pi], n, opt, clRes.Servers, clRes.Shortfall, idxRes.Servers, idxRes.Shortfall)
			}
		}
	}
	return nil
}

// runSelectionDiff replays one history through a fresh harness.
func runSelectionDiff(ops []diffOp) error {
	h := newDiffHarness(&testing.T{})
	for i, op := range ops {
		if err := h.apply(op); err != nil {
			return fmt.Errorf("op %d %v: %w", i, op, err)
		}
	}
	return nil
}

// shrinkDiff greedily removes ops while the failure persists.
func shrinkDiff(ops []diffOp) []diffOp {
	reduced := true
	for reduced {
		reduced = false
		for i := 0; i < len(ops); i++ {
			cand := append(append([]diffOp(nil), ops[:i]...), ops[i+1:]...)
			if runSelectionDiff(cand) != nil {
				ops = cand
				reduced = true
				break
			}
		}
	}
	return ops
}

func TestPlannerDifferentialProperty(t *testing.T) {
	const (
		sequences = 30
		opsPerSeq = 60
	)
	for seed := int64(0); seed < sequences; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := genDiffOps(rng, opsPerSeq)
		if err := runSelectionDiff(ops); err != nil {
			minimal := shrinkDiff(ops)
			t.Logf("seed %d minimal failing sequence (%d of %d ops): %v", seed, len(minimal), len(ops), minimal)
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestPlannerDifferentialLargeTable runs one comparison past
// DefaultPlanThreshold with default configuration, so the production
// gating (not the test-pinned threshold 1) is exercised end to end.
func TestPlannerDifferentialLargeTable(t *testing.T) {
	h := newDiffHarness(t)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3*DefaultPlanThreshold; i++ {
		h.now = h.now.Add(time.Millisecond)
		h.src.PutSys(status.ServerStatus{
			Host:    fmt.Sprintf("big-%04d", i),
			Load1:   float64(rng.Intn(5)),
			CPUIdle: rng.Float64(),
			MemFree: uint64(rng.Intn(8)) << 20,
		})
		if i%3 == 0 {
			h.src.PutSec(status.SecLevel{Host: fmt.Sprintf("big-%04d", i), Level: rng.Intn(5)})
		}
	}
	if err := h.sync(); err != nil {
		t.Fatal(err)
	}
	if err := h.compareAll(1); err != nil {
		t.Fatal(err)
	}
	// The mirror is quiescent and synced, so every index-resolvable
	// corpus entry must have been served by the index, never the
	// fallback scan.
	counters := h.reg.Snapshot().Counters
	if counters["index_plans"] == 0 {
		t.Fatal("planner never ran under plan semantics")
	}
	if counters["index_fallbacks"] != 0 {
		t.Fatalf("index fell back %d times on a quiescent mirror", counters["index_fallbacks"])
	}
	if counters["index_rows_pruned"] == 0 {
		t.Fatal("planner pruned nothing on a selective corpus")
	}
}
