package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"smartsock/internal/proto"
	"smartsock/internal/reqlang"
	"smartsock/internal/status"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
)

func mustProg(t testing.TB, src string) *reqlang.Program {
	t.Helper()
	p, err := reqlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// idleHost registers an unloaded server in the db.
func idleHost(db *store.DB, name string, bogomips float64, memMB uint64) {
	db.PutSys(sysinfo.Idle(name, bogomips, memMB))
}

func newSelector(t testing.TB, db *store.DB, cfg Config) *Selector {
	t.Helper()
	s, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSelectByCPUAndMemory(t *testing.T) {
	db := store.New()
	idleHost(db, "fast1", 4771, 512)
	idleHost(db, "fast2", 4771, 512)
	idleHost(db, "slow", 3185, 128)
	busy := sysinfo.Idle("busy", 4771, 512)
	busy.CPUIdle = 0.2
	db.PutSys(busy)

	s := newSelector(t, db, Config{})
	prog := mustProg(t, `(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9) && (host_memory_free > 5)`)
	res, err := s.Select(prog, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Servers, []string{"fast1", "fast2"}) {
		t.Errorf("Servers = %v", res.Servers)
	}
	// The decisions explain every host.
	byHost := map[string]Decision{}
	for _, d := range res.Decisions {
		byHost[d.Host] = d
	}
	if byHost["slow"].Qualified || byHost["busy"].Qualified {
		t.Error("slow/busy should not qualify")
	}
	if byHost["busy"].FailedLine != 1 {
		t.Errorf("busy failed at line %d, want 1", byHost["busy"].FailedLine)
	}
}

func TestShortfallWithoutPartialOKIsError(t *testing.T) {
	db := store.New()
	idleHost(db, "only", 4771, 512)
	s := newSelector(t, db, Config{})
	prog := mustProg(t, "host_cpu_free > 0.5")
	if _, err := s.Select(prog, 3, 0); err == nil {
		t.Error("expected error for shortfall without OptPartialOK")
	}
	res, err := s.Select(prog, 3, proto.OptPartialOK)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Servers) != 1 || res.Shortfall != 2 {
		t.Errorf("partial result = %v shortfall %d", res.Servers, res.Shortfall)
	}
}

func TestDeniedHostsAreNeverSelected(t *testing.T) {
	// Fig 1.4: host C2 "is not chosen since it is blacklisted" even
	// though it qualifies on resources.
	db := store.New()
	idleHost(db, "c1", 4771, 512)
	idleHost(db, "c2", 4771, 512)
	s := newSelector(t, db, Config{})
	prog := mustProg(t, "host_cpu_free > 0.5\nuser_denied_host1 = c2\n")
	res, err := s.Select(prog, 2, proto.OptPartialOK)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Servers, []string{"c1"}) {
		t.Errorf("Servers = %v, want [c1]", res.Servers)
	}
	for _, d := range res.Decisions {
		if d.Host == "c2" && (!d.Denied || d.Qualified) {
			t.Errorf("c2 decision = %+v", d)
		}
	}
}

func TestPreferredHostsComeFirst(t *testing.T) {
	db := store.New()
	idleHost(db, "aaa", 4771, 512)
	idleHost(db, "zzz", 4771, 512)
	s := newSelector(t, db, Config{})
	// zzz scans after aaa but is preferred, so it must lead the list.
	prog := mustProg(t, "host_cpu_free > 0.5\nuser_preferred_host1 = zzz\n")
	res, err := s.Select(prog, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Servers, []string{"zzz", "aaa"}) {
		t.Errorf("Servers = %v, want preferred first", res.Servers)
	}
}

func TestPreferredOrderingFollowsUserList(t *testing.T) {
	db := store.New()
	for _, h := range []string{"a", "b", "c"} {
		idleHost(db, h, 4771, 512)
	}
	s := newSelector(t, db, Config{})
	prog := mustProg(t, "host_cpu_free > 0.5\nuser_preferred_host1 = c\nuser_preferred_host2 = a\n")
	res, err := s.Select(prog, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Servers, []string{"c", "a", "b"}) {
		t.Errorf("Servers = %v, want [c a b]", res.Servers)
	}
}

func TestPreferredMustStillQualify(t *testing.T) {
	db := store.New()
	idleHost(db, "good", 4771, 512)
	busy := sysinfo.Idle("favourite", 4771, 512)
	busy.CPUIdle = 0.1
	db.PutSys(busy)
	s := newSelector(t, db, Config{})
	prog := mustProg(t, "host_cpu_free > 0.9\nuser_preferred_host1 = favourite\n")
	res, err := s.Select(prog, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Servers, []string{"good"}) {
		t.Errorf("Servers = %v: a preferred host must still meet the requirement", res.Servers)
	}
}

func TestNetworkVariablesFromNetdb(t *testing.T) {
	// The massd requirement: monitor_network_bw > 6 picks servers in
	// the fast group (Table 5.7).
	db := store.New()
	idleHost(db, "lhost", 1730, 128)     // group-1, fast path
	idleHost(db, "pandora-x", 3591, 256) // group-2, slow path
	db.PutNet(status.NetMetric{From: "local", To: "group-1", Delay: 2 * time.Millisecond, Bandwidth: 6.72e6})
	db.PutNet(status.NetMetric{From: "local", To: "group-2", Delay: 2 * time.Millisecond, Bandwidth: 1.33e6})
	groups := map[string]string{"lhost": "group-1", "pandora-x": "group-2"}
	s := newSelector(t, db, Config{
		LocalMonitor: "local",
		GroupOf:      func(h string) string { return groups[h] },
	})
	prog := mustProg(t, "monitor_network_bw > 6")
	res, err := s.Select(prog, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Servers, []string{"lhost"}) {
		t.Errorf("Servers = %v, want [lhost]", res.Servers)
	}
}

func TestLocalGroupBypassesNetworkConstraints(t *testing.T) {
	// §3.3.3: "in the local area network, the bandwidth and delay is
	// sufficient for most applications."
	db := store.New()
	idleHost(db, "nearby", 1730, 128)
	s := newSelector(t, db, Config{
		LocalMonitor: "local",
		GroupOf:      func(string) string { return "local" },
	})
	prog := mustProg(t, "(monitor_network_delay < 20) && (monitor_network_bw > 10)")
	res, err := s.Select(prog, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Servers) != 1 {
		t.Errorf("local server rejected by network constraint: %+v", res.Decisions)
	}
}

func TestMissingNetRecordRejectsSafely(t *testing.T) {
	db := store.New()
	idleHost(db, "remote", 1730, 128)
	s := newSelector(t, db, Config{
		LocalMonitor: "local",
		GroupOf:      func(string) string { return "unprobed-group" },
	})
	prog := mustProg(t, "monitor_network_bw > 1")
	res, err := s.Select(prog, 1, proto.OptPartialOK)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Servers) != 0 {
		t.Error("server with unknown network metrics was selected")
	}
}

func TestSecurityLevelVariable(t *testing.T) {
	db := store.New()
	idleHost(db, "trusted", 1000, 128)
	idleHost(db, "sketchy", 1000, 128)
	db.PutSec(status.SecLevel{Host: "trusted", Level: 5})
	db.PutSec(status.SecLevel{Host: "sketchy", Level: 1})
	s := newSelector(t, db, Config{})
	prog := mustProg(t, "host_security_level >= 3")
	res, err := s.Select(prog, 2, proto.OptPartialOK)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Servers, []string{"trusted"}) {
		t.Errorf("Servers = %v", res.Servers)
	}
}

func TestRankByExpression(t *testing.T) {
	// Chapter 6: "3 servers with largest memory".
	db := store.New()
	idleHost(db, "small", 1000, 128)
	idleHost(db, "large", 1000, 512)
	idleHost(db, "medium", 1000, 256)
	s := newSelector(t, db, Config{})
	prog := mustProg(t, "host_cpu_free > 0.5\nhost_memory_free\n")
	res, err := s.Select(prog, 2, proto.OptRankByExpr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Servers, []string{"large", "medium"}) {
		t.Errorf("Servers = %v, want memory-ranked", res.Servers)
	}
}

func TestServicePortAppended(t *testing.T) {
	db := store.New()
	idleHost(db, "h1", 1000, 128)
	db.PutSys(status.ServerStatus{Host: "h2:7777", CPUIdle: 0.99})
	s := newSelector(t, db, Config{ServicePort: 9000})
	prog := mustProg(t, "host_cpu_free > 0.5")
	res, err := s.Select(prog, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"h1:9000", "h2:7777"} // existing ports are kept
	if !reflect.DeepEqual(res.Servers, want) {
		t.Errorf("Servers = %v, want %v", res.Servers, want)
	}
}

func TestServerNumCappedAtProtocolLimit(t *testing.T) {
	db := store.New()
	for i := 0; i < 70; i++ {
		idleHost(db, strings.Repeat("h", 1)+string(rune('0'+i/10))+string(rune('0'+i%10)), 1000, 128)
	}
	s := newSelector(t, db, Config{})
	prog := mustProg(t, "host_cpu_free > 0.5")
	res, err := s.Select(prog, 100, proto.OptPartialOK)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Servers) != proto.MaxServers {
		t.Errorf("got %d servers, want the UDP cap %d", len(res.Servers), proto.MaxServers)
	}
}

func TestEvalErrorDisqualifies(t *testing.T) {
	db := store.New()
	idleHost(db, "h", 1000, 128)
	s := newSelector(t, db, Config{})
	prog := mustProg(t, "host_cpu_free / 0 > 1")
	res, err := s.Select(prog, 1, proto.OptPartialOK)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Servers) != 0 {
		t.Error("server selected despite evaluation error")
	}
	if res.Decisions[0].Err == nil {
		t.Error("decision carries no error")
	}
}

func TestSelectValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("New accepted nil db")
	}
	db := store.New()
	s := newSelector(t, db, Config{})
	if _, err := s.Select(mustProg(t, "1>0"), 0, 0); err == nil {
		t.Error("Select accepted n=0")
	}
}

func TestFig14Walkthrough(t *testing.T) {
	// The full introduction example: 12 servers in 4 networks with
	// delays 100/5/10/15 ms; requirement: 3 servers, ≥100 MB free
	// memory, CPU usage < 10%, delay < 20 ms, hacker.some.net (C2)
	// blacklisted. Expected winners: B2, C1, D1.
	db := store.New()
	groups := map[string]string{}
	add := func(name, network string, cpuBusy float64, memMB uint64) {
		s := sysinfo.Idle(name, 2000, memMB)
		s.CPUIdle = 1 - cpuBusy
		s.CPUUser = cpuBusy
		db.PutSys(s)
		groups[name] = network
	}
	// Network A: fine machines behind a 100 ms link.
	add("a1", "netA", 0.02, 512)
	add("a2", "netA", 0.02, 512)
	add("a3", "netA", 0.02, 512)
	// Network B: B1 busy (cpu=20%), B2 good, B3 low memory.
	add("b1", "netB", 0.20, 512)
	add("b2", "netB", 0.02, 512)
	add("b3", "netB", 0.02, 50)
	// Network C: C1 good, C2 is hacker.some.net, C3 busy.
	add("c1", "netC", 0.02, 512)
	add("hacker.some.net", "netC", 0.02, 512)
	add("c3", "netC", 0.5, 512)
	// Network D: D1 good, D2 and D3 short on memory.
	add("d1", "netD", 0.02, 512)
	add("d2", "netD", 0.02, 60)
	add("d3", "netD", 0.02, 40)

	for net, delay := range map[string]time.Duration{
		"netA": 100 * time.Millisecond,
		"netB": 5 * time.Millisecond,
		"netC": 10 * time.Millisecond,
		"netD": 15 * time.Millisecond,
	} {
		db.PutNet(status.NetMetric{From: "client", To: net, Delay: delay, Bandwidth: 100e6})
	}

	s := newSelector(t, db, Config{
		LocalMonitor: "client",
		GroupOf:      func(h string) string { return groups[h] },
	})
	prog := mustProg(t, `host_memory_free >= 100
host_cpu_user + host_cpu_system + host_cpu_nice < 0.10
monitor_network_delay < 20
user_denied_host1 = hacker.some.net
`)
	res, err := s.Select(prog, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Servers, []string{"b2", "c1", "d1"}) {
		t.Errorf("Servers = %v, want [b2 c1 d1] (Fig 1.4)", res.Servers)
	}
}
