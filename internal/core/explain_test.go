package core

import (
	"strings"
	"testing"

	"smartsock/internal/proto"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
)

func TestExplainCoversEveryOutcome(t *testing.T) {
	db := store.New()
	idleHost(db, "winner", 4771, 512)
	idleHost(db, "spare", 4771, 512)
	idleHost(db, "weak", 1000, 512)
	idleHost(db, "banned", 4771, 512)
	s := newSelector(t, db, Config{})
	prog := mustProg(t, "host_cpu_bogomips > 4000\nuser_denied_host1 = banned\n")
	res, err := s.Select(prog, 1, proto.OptPartialOK)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Explain(prog)
	for _, want := range []string{
		"winner", "SELECTED",
		"spare", "qualified but not needed",
		"weak", "fails line 1: host_cpu_bogomips > 4000",
		"banned", "blacklisted",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainShortfallAndErrors(t *testing.T) {
	db := store.New()
	idleHost(db, "broken", 1000, 512)
	s := newSelector(t, db, Config{})
	prog := mustProg(t, "host_cpu_free / 0 > 1")
	res, err := s.Select(prog, 2, proto.OptPartialOK)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Explain(prog)
	if !strings.Contains(out, "requirement error") {
		t.Errorf("Explain missing eval error:\n%s", out)
	}
	if !strings.Contains(out, "could not be found") {
		t.Errorf("Explain missing shortfall note:\n%s", out)
	}
}

func TestExplainPreferredAndScore(t *testing.T) {
	db := store.New()
	idleHost(db, "fave", 1000, 512)
	idleHost(db, "big", 1000, 1024)
	s := newSelector(t, db, Config{})

	prog := mustProg(t, "host_cpu_free > 0.5\nuser_preferred_host1 = fave\n")
	res, err := s.Select(prog, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out := res.Explain(prog); !strings.Contains(out, "SELECTED (user-preferred)") {
		t.Errorf("preferred selection not labelled:\n%s", out)
	}

	prog = mustProg(t, "host_cpu_free > 0.5\nhost_memory_free\n")
	res, err = s.Select(prog, 1, proto.OptRankByExpr)
	if err != nil {
		t.Fatal(err)
	}
	if out := res.Explain(prog); !strings.Contains(out, "SELECTED (score") {
		t.Errorf("score selection not labelled:\n%s", out)
	}
}

func TestExplainMatchesPortSuffixedAddresses(t *testing.T) {
	db := store.New()
	db.PutSys(sysinfo.Idle("srv", 1000, 128))
	s := newSelector(t, db, Config{ServicePort: 9000})
	prog := mustProg(t, "1 > 0")
	res, err := s.Select(prog, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out := res.Explain(prog); !strings.Contains(out, "SELECTED") {
		t.Errorf("port-suffixed address broke selection marking:\n%s", out)
	}
}
