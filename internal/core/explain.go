package core

import (
	"fmt"
	"strings"

	"smartsock/internal/reqlang"
)

// Explain renders the selection outcome as the kind of walkthrough
// Fig 1.4 gives: one line per server with the reason it was taken or
// left. prog supplies statement text so rejections can quote the
// failing requirement line.
func (r *Result) Explain(prog *reqlang.Program) string {
	var b strings.Builder
	chosen := make(map[string]bool, len(r.Servers))
	for _, s := range r.Servers {
		chosen[s] = true
	}
	stmtText := map[int]string{}
	if prog != nil {
		for _, s := range prog.Stmts {
			stmtText[s.Line] = s.Src
		}
	}
	for _, d := range r.Decisions {
		fmt.Fprintf(&b, "%-20s %s\n", d.Host, describeDecision(d, chosen, stmtText))
	}
	if r.Shortfall > 0 {
		fmt.Fprintf(&b, "(%d requested server(s) could not be found)\n", r.Shortfall)
	}
	return b.String()
}

func describeDecision(d Decision, chosen map[string]bool, stmtText map[int]string) string {
	switch {
	case d.Denied:
		return "rejected: blacklisted by user_denied_host"
	case d.Err != nil:
		return fmt.Sprintf("rejected: requirement error: %v", d.Err)
	case !d.Qualified:
		if line := stmtText[d.FailedLine]; line != "" {
			return fmt.Sprintf("rejected: fails line %d: %s", d.FailedLine, line)
		}
		return fmt.Sprintf("rejected: fails requirement line %d", d.FailedLine)
	case isChosen(d.Host, chosen):
		if d.Preferred {
			return "SELECTED (user-preferred)"
		}
		if d.HasScore {
			return fmt.Sprintf("SELECTED (score %g)", d.Score)
		}
		return "SELECTED"
	default:
		return "qualified but not needed"
	}
}

// isChosen matches a decision's host against the (possibly
// port-suffixed) selected addresses.
func isChosen(host string, chosen map[string]bool) bool {
	if chosen[host] {
		return true
	}
	for addr := range chosen {
		if stripPort(addr) == stripPort(host) {
			return true
		}
	}
	return false
}
