package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"smartsock/internal/obs"
	"smartsock/internal/proto"
	"smartsock/internal/reqlang"
	"smartsock/internal/status"
	"smartsock/internal/store"
)

// TestSelectConcurrentChurn storms planned selections from several
// goroutines while a writer churns the table underneath them — puts,
// security updates, expiries, and periodic whole-table Loads that
// force the index down its resync path. Run under -race this pins the
// index's locking discipline: no torn candidate sets, no snapshot
// served across an epoch boundary. Afterwards the observability
// counters must reconcile with each other.
func TestSelectConcurrentChurn(t *testing.T) {
	reg := obs.NewRegistry()
	db := store.New()
	sel, err := New(db, Config{
		Obs:           reg,
		PlanThreshold: 1,
		MaxStatusAge:  time.Hour, // keeps selections impure so the memo never shortcuts
		ServicePort:   9000,
	})
	if err != nil {
		t.Fatal(err)
	}

	seed := func(n int) []status.ServerStatus {
		recs := make([]status.ServerStatus, n)
		for i := range recs {
			recs[i] = status.ServerStatus{
				Host:    fmt.Sprintf("storm-%03d", i),
				Load1:   float64(i % 7),
				CPUIdle: float64(i%11) / 10,
				MemFree: uint64(i%5) << 20,
			}
		}
		return recs
	}
	db.Load(seed(200), nil, nil)

	corpus := make([]*reqlang.Program, 0, 4)
	for _, src := range []string{
		"host_system_load1 < 3\n",
		"host_cpu_free > 0.5\nhost_system_load1 * -1\n",
		"host_security_level >= 2\n",
		"host_memory_free > 1 && host_system_load1 < 5\n",
	} {
		p, err := reqlang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, p)
	}

	const (
		readers    = 4
		selectsPer = 300
	)
	var readersWg, writerWg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: mutate every few microseconds; occasionally Load a fresh
	// table, which resets retained history and forces a resync.
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		rng := rand.New(rand.NewSource(1))
		for step := 0; ; step++ {
			select {
			case <-stop:
				return
			default:
			}
			switch step % 10 {
			case 9:
				db.Load(seed(150+rng.Intn(100)), nil, nil)
			case 8:
				// Old records only: the table must stay above the plan
				// threshold so every selection runs under plan semantics.
				db.ExpireSys(time.Second)
			case 7:
				db.PutSec(status.SecLevel{Host: fmt.Sprintf("storm-%03d", rng.Intn(200)), Level: rng.Intn(5)})
			default:
				db.PutSys(status.ServerStatus{
					Host:    fmt.Sprintf("storm-%03d", rng.Intn(250)),
					Load1:   float64(rng.Intn(7)),
					CPUIdle: rng.Float64(),
					MemFree: uint64(rng.Intn(5)) << 20,
				})
			}
		}
	}()

	for r := 0; r < readers; r++ {
		readersWg.Add(1)
		go func(r int) {
			defer readersWg.Done()
			for i := 0; i < selectsPer; i++ {
				prog := corpus[(r+i)%len(corpus)]
				res, err := sel.Select(prog, 3, proto.OptPartialOK)
				if err != nil {
					t.Errorf("reader %d select %d: %v", r, i, err)
					return
				}
				// A planned result never reports more pruned+stale+decided
				// records than a table could hold; a torn candidate set
				// shows up here as nonsense counts.
				if res.Pruned < 0 || res.StaleDropped < 0 || len(res.Servers) > 3 {
					t.Errorf("reader %d: malformed result %+v", r, res)
					return
				}
			}
		}(r)
	}

	readersWg.Wait()
	close(stop)
	writerWg.Wait()

	c := reg.Snapshot().Counters
	totalSelects := uint64(readers * selectsPer)
	if c["core_selections"] != totalSelects {
		t.Errorf("core_selections = %d, want %d", c["core_selections"], totalSelects)
	}
	// Every selection ran under plan semantics (threshold 1, all corpus
	// entries index-resolvable), each served by index or fallback.
	if c["index_plans"] != totalSelects {
		t.Errorf("index_plans = %d, want %d", c["index_plans"], totalSelects)
	}
	if c["index_fallbacks"] > c["index_plans"] {
		t.Errorf("index_fallbacks %d exceeds index_plans %d", c["index_fallbacks"], c["index_plans"])
	}
	// Residual evaluations are a subset of all requirement evaluations.
	if c["index_residual_evals"] > c["core_record_evals"] {
		t.Errorf("residual evals %d exceed total record evals %d",
			c["index_residual_evals"], c["core_record_evals"])
	}
	t.Logf("plans=%d fallbacks=%d resyncs=%d pruned=%d residual=%d",
		c["index_plans"], c["index_fallbacks"], c["index_resyncs"],
		c["index_rows_pruned"], c["index_residual_evals"])
}
