// Package core implements the wizard's server selection engine
// (§3.6.1): given the three status databases and a parsed requirement
// program, it evaluates every candidate server, applies the user's
// denied/preferred host lists, and returns the best server set.
//
// This is the paper's primary contribution distilled: selection moves
// out of each middleware and into a shared socket-level service, so
// any number of middleware implementations can share one set of
// probes and monitors.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"smartsock/internal/proto"
	"smartsock/internal/reqlang"
	"smartsock/internal/store"
)

// Config holds the deployment-specific knowledge the selector needs
// beyond the databases themselves.
type Config struct {
	// LocalMonitor names the network monitor of the requesting
	// client's group; monitor_network_delay/bw for a server are the
	// metrics from this monitor to the server's group (§3.3.3).
	LocalMonitor string
	// GroupOf maps a server host to its network monitor's name. Nil
	// means network variables are unavailable (single-group
	// deployments, where LAN metrics do not matter per §3.3.3).
	GroupOf func(host string) string
	// ServicePort is appended to selected hosts that carry no port of
	// their own, producing dialable addresses.
	ServicePort int
	// MaxStatusAge drops server records older than this before
	// evaluation, so a server whose probe has gone silent falls out of
	// candidate lists even before the monitor's expiry sweep removes
	// its record. Zero disables the filter (historical behaviour).
	MaxStatusAge time.Duration
}

// Decision records why one server was accepted or rejected — the
// explanations behind a Fig 1.4-style walkthrough.
type Decision struct {
	Host       string
	Qualified  bool
	Preferred  bool
	Denied     bool
	FailedLine int
	Score      float64
	HasScore   bool
	Err        error
}

// Result is a full selection outcome.
type Result struct {
	// Servers are the chosen addresses, best first, capped at the
	// requested count.
	Servers []string
	// Decisions covers every live server, in evaluation order.
	Decisions []Decision
	// Shortfall is how many requested servers could not be found.
	Shortfall int
	// StaleDropped counts server records skipped for exceeding
	// Config.MaxStatusAge, before any requirement was evaluated.
	StaleDropped int
}

// Selector evaluates requirements against the status database.
type Selector struct {
	cfg Config
	db  *store.DB
}

// New builds a selector over the given database.
func New(db *store.DB, cfg Config) (*Selector, error) {
	if db == nil {
		return nil, fmt.Errorf("core: nil database")
	}
	return &Selector{cfg: cfg, db: db}, nil
}

// Select picks up to n servers satisfying the requirement. Options
// follow proto: OptPartialOK permits a short list, OptRankByExpr
// ranks qualified servers by the requirement's score expression
// (highest first) instead of first-found order.
func (s *Selector) Select(prog *reqlang.Program, n int, opt proto.Option) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("core: requested %d servers", n)
	}
	if n > proto.MaxServers {
		// The reply must fit one UDP datagram (§3.6.1).
		n = proto.MaxServers
	}

	recs := s.db.Sys() // sorted by host: deterministic scan order
	result := Result{Decisions: make([]Decision, 0, len(recs))}
	if s.cfg.MaxStatusAge > 0 {
		fresh := s.db.FreshSys(s.cfg.MaxStatusAge)
		// Records may land between the two snapshots; never report a
		// negative drop count for it.
		if d := len(recs) - len(fresh); d > 0 {
			result.StaleDropped = d
		}
		recs = fresh
	}

	type scored struct {
		addr      string
		preferred int // index in the preferred list, -1 if not
		score     float64
		hasScore  bool
		order     int
	}
	var candidates []scored

	for i, rec := range recs {
		host := rec.Status.Host
		env := s.buildEnv(&rec)
		res := prog.Eval(env)
		d := Decision{
			Host:       host,
			Qualified:  res.Qualified,
			FailedLine: res.FailedLine,
			Score:      res.Score,
			HasScore:   res.HasScore,
			Err:        res.Err,
		}
		if denyIdx := matchHost(host, res.Denied); denyIdx >= 0 {
			d.Denied = true
			d.Qualified = false
		}
		prefIdx := matchHost(host, res.Preferred)
		d.Preferred = prefIdx >= 0
		result.Decisions = append(result.Decisions, d)
		if !d.Qualified {
			continue
		}
		candidates = append(candidates, scored{
			addr:      s.dialAddr(host),
			preferred: prefIdx,
			score:     res.Score,
			hasScore:  res.HasScore,
			order:     i,
		})
	}

	sort.SliceStable(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		// Preferred servers "will always be selected first when
		// available" (§3.6.1), in the order the user listed them.
		aPref, bPref := a.preferred >= 0, b.preferred >= 0
		if aPref != bPref {
			return aPref
		}
		if aPref && a.preferred != b.preferred {
			return a.preferred < b.preferred
		}
		if opt&proto.OptRankByExpr != 0 && a.hasScore && b.hasScore && a.score != b.score {
			return a.score > b.score
		}
		return a.order < b.order
	})

	for _, c := range candidates {
		if len(result.Servers) == n {
			break
		}
		result.Servers = append(result.Servers, c.addr)
	}
	result.Shortfall = n - len(result.Servers)
	if result.Shortfall > 0 && opt&proto.OptPartialOK == 0 {
		return result, fmt.Errorf("core: only %d of %d requested servers qualify", len(result.Servers), n)
	}
	return result, nil
}

// buildEnv assembles the per-server variable bindings: the 22
// status-report variables plus the network metrics of the server's
// group and its security level.
func (s *Selector) buildEnv(rec *store.SysRecord) *reqlang.Env {
	params := rec.Status.Vars()
	if s.cfg.GroupOf != nil && s.cfg.LocalMonitor != "" {
		group := s.cfg.GroupOf(rec.Status.Host)
		if group == s.cfg.LocalMonitor {
			// Same group: the thesis assumes LAN metrics are always
			// sufficient (§3.3.3); expose zero delay and a very large
			// bandwidth so network constraints never reject local
			// servers.
			params["monitor_network_delay"] = 0
			params["monitor_network_bw"] = 1e5 // Mbps; effectively infinite
		} else if group != "" {
			if nr, ok := s.db.GetNet(s.cfg.LocalMonitor, group); ok {
				// Delay in milliseconds, bandwidth in Mbps: the units
				// the thesis requirements use ("delay < 20",
				// "monitor_network_bw > 6").
				params["monitor_network_delay"] = float64(nr.Metric.Delay.Milliseconds())
				params["monitor_network_bw"] = nr.Metric.Bandwidth / 1e6
			}
			// No record: the variables stay undefined, so requirements
			// referencing them reject the server — safe default.
		}
	}
	if sec, ok := s.db.GetSec(rec.Status.Host); ok {
		params["host_security_level"] = float64(sec.Level.Level)
	}
	return &reqlang.Env{Params: params}
}

// dialAddr renders a host as a dialable address.
func (s *Selector) dialAddr(host string) string {
	if s.cfg.ServicePort <= 0 || strings.Contains(host, ":") {
		return host
	}
	return fmt.Sprintf("%s:%d", host, s.cfg.ServicePort)
}

// matchHost finds host in a user-supplied list, matching
// case-insensitively and ignoring any port suffix on either side. It
// returns the index, or -1.
func matchHost(host string, list []string) int {
	h := stripPort(host)
	for i, entry := range list {
		if strings.EqualFold(h, stripPort(entry)) {
			return i
		}
	}
	return -1
}

func stripPort(s string) string {
	if i := strings.LastIndexByte(s, ':'); i >= 0 && !strings.Contains(s[i+1:], ".") {
		return s[:i]
	}
	return s
}
