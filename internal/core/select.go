// Package core implements the wizard's server selection engine
// (§3.6.1): given the three status databases and a parsed requirement
// program, it evaluates every candidate server, applies the user's
// denied/preferred host lists, and returns the best server set.
//
// This is the paper's primary contribution distilled: selection moves
// out of each middleware and into a shared socket-level service, so
// any number of middleware implementations can share one set of
// probes and monitors.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"smartsock/internal/index"
	"smartsock/internal/obs"
	"smartsock/internal/proto"
	"smartsock/internal/reqlang"
	"smartsock/internal/store"
)

// Config holds the deployment-specific knowledge the selector needs
// beyond the databases themselves.
type Config struct {
	// LocalMonitor names the network monitor of the requesting
	// client's group; monitor_network_delay/bw for a server are the
	// metrics from this monitor to the server's group (§3.3.3).
	LocalMonitor string
	// GroupOf maps a server host to its network monitor's name. Nil
	// means network variables are unavailable (single-group
	// deployments, where LAN metrics do not matter per §3.3.3).
	GroupOf func(host string) string
	// ServicePort is appended to selected hosts that carry no port of
	// their own, producing dialable addresses.
	ServicePort int
	// MaxStatusAge drops server records older than this before
	// evaluation, so a server whose probe has gone silent falls out of
	// candidate lists even before the monitor's expiry sweep removes
	// its record. Zero disables the filter (historical behaviour).
	MaxStatusAge time.Duration
	// Obs, when set, registers the selector's cumulative counters
	// (core_selections, core_memo_hits, core_stale_dropped, the
	// index_* planner metrics); nil detaches them.
	Obs *obs.Registry
	// PlanThreshold is the live-record count at which Select consults
	// the selection planner instead of scanning every record. Zero
	// means DefaultPlanThreshold; negative disables the planner
	// entirely (the -compat wire mode pins this, preserving the thesis
	// behaviour byte for byte). Below the threshold — and for any
	// requirement the planner cannot resolve — the historical full
	// scan runs and Decisions cover every live server. At or above it,
	// index-resolvable requirements run under plan semantics:
	// constraint-failing records are pruned without individual
	// Decisions (counted in Result.Pruned) and only surviving
	// candidates are evaluated.
	PlanThreshold int
	// ForceScan makes planned selections test their extracted
	// constraints record by record instead of querying the index. The
	// Result is identical; differential tests pin it to compare the
	// index path against ground truth.
	ForceScan bool
}

// Decision records why one server was accepted or rejected — the
// explanations behind a Fig 1.4-style walkthrough.
type Decision struct {
	Host       string
	Qualified  bool
	Preferred  bool
	Denied     bool
	FailedLine int
	Score      float64
	HasScore   bool
	Err        error
}

// Result is a full selection outcome. Results may be shared between
// callers (repeated selections against an unchanged table return a
// memoised Result), so the Servers and Decisions slices must be
// treated as read-only.
type Result struct {
	// Servers are the chosen addresses, best first, capped at the
	// requested count.
	Servers []string
	// Decisions covers every live server, in evaluation order.
	Decisions []Decision
	// Shortfall is how many requested servers could not be found.
	Shortfall int
	// StaleDropped counts server records skipped for exceeding
	// Config.MaxStatusAge, before any requirement was evaluated.
	StaleDropped int
	// Pruned counts records the selection planner excluded through
	// index constraints without evaluating them (and without
	// Decisions). Always zero on the full-scan path.
	Pruned int
	// Epoch is the status-snapshot version the selection ran against;
	// two selections with equal epochs saw identical server tables.
	Epoch uint64
}

// Selector evaluates requirements against the status database. It is
// safe for concurrent use: selections read an immutable copy-on-write
// snapshot of the server table and draw their per-server variable
// environments from an internal pool.
type Selector struct {
	cfg        Config
	db         *store.DB
	portSuffix string
	envPool    sync.Pool // of *reqlang.Env with a reusable Params map
	memo       selMemo
	idx        *index.Set
	plans      planCache

	selections     *obs.Counter // core_selections: Select calls
	memoHits       *obs.Counter // core_memo_hits: served from the epoch memo
	staleDropped   *obs.Counter // core_stale_dropped: records skipped as stale
	recordEvals    *obs.Counter // core_record_evals: requirement evaluations
	indexPlans     *obs.Counter // index_plans: selections run under plan semantics
	indexFallbacks *obs.Counter // index_fallbacks: planned selections served by constraint scan
	rowsPruned     *obs.Counter // index_rows_pruned: records excluded without evaluation
	residualEvals  *obs.Counter // index_residual_evals: survivors evaluated on the plan path
}

// memoKey identifies one selection question. Programs come from the
// wizard's compiled-requirement cache, so one requirement text maps
// to one pointer and the key needs no string hashing.
type memoKey struct {
	prog *reqlang.Program
	n    int
	opt  proto.Option
}

type memoVal struct {
	res Result
	err error
}

// memoMaxEntries bounds one epoch's memo table; past it, new
// questions are answered but not remembered.
const memoMaxEntries = 1024

// selMemo caches selection outcomes against one table epoch. Within
// an epoch the server table is immutable, so a selection that reads
// neither netdb nor secdb and applies no freshness cutoff is a pure
// function of its key — the repeat of a storm's requirement can skip
// evaluation entirely. A mutation bumps the epoch and the next
// selection drops the table.
type selMemo struct {
	mu      sync.RWMutex
	epoch   uint64
	entries map[memoKey]memoVal
}

func (m *selMemo) get(epoch uint64, k memoKey) (memoVal, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.epoch != epoch {
		return memoVal{}, false
	}
	v, ok := m.entries[k]
	return v, ok
}

func (m *selMemo) put(epoch uint64, k memoKey, v memoVal) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.epoch != epoch || m.entries == nil {
		m.epoch = epoch
		m.entries = make(map[memoKey]memoVal)
	}
	if len(m.entries) < memoMaxEntries {
		m.entries[k] = v
	}
}

// New builds a selector over the given database.
func New(db *store.DB, cfg Config) (*Selector, error) {
	if db == nil {
		return nil, fmt.Errorf("core: nil database")
	}
	s := &Selector{
		cfg:            cfg,
		db:             db,
		idx:            index.New(db, cfg.Obs),
		selections:     cfg.Obs.Counter("core_selections"),
		memoHits:       cfg.Obs.Counter("core_memo_hits"),
		staleDropped:   cfg.Obs.Counter("core_stale_dropped"),
		recordEvals:    cfg.Obs.Counter("core_record_evals"),
		indexPlans:     cfg.Obs.Counter("index_plans"),
		indexFallbacks: cfg.Obs.Counter("index_fallbacks"),
		rowsPruned:     cfg.Obs.Counter("index_rows_pruned"),
		residualEvals:  cfg.Obs.Counter("index_residual_evals"),
	}
	if cfg.ServicePort > 0 {
		s.portSuffix = ":" + strconv.Itoa(cfg.ServicePort)
	}
	s.envPool.New = func() any {
		return &reqlang.Env{Params: make(map[string]float64, 8)}
	}
	return s, nil
}

// netBinding is a memoised monitor_network_delay/bw lookup for one
// server group, so an n-server selection takes at most one netdb read
// per group instead of one per server.
type netBinding struct {
	delay, bw float64
	ok        bool
}

// Select picks up to n servers satisfying the requirement. Options
// follow proto: OptPartialOK permits a short list, OptRankByExpr
// ranks qualified servers by the requirement's score expression
// (highest first) instead of first-found order.
func (s *Selector) Select(prog *reqlang.Program, n int, opt proto.Option) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("core: requested %d servers", n)
	}
	if n > proto.MaxServers {
		// The reply must fit one UDP datagram (§3.6.1).
		n = proto.MaxServers
	}

	// One immutable snapshot serves the whole selection: candidate
	// scan, freshness filter and StaleDropped accounting all see the
	// same table, so the count can never go negative or disagree with
	// the records evaluated.
	snap := s.db.SysView()
	recs := snap.Records
	var cutoff time.Time
	filterStale := s.cfg.MaxStatusAge > 0
	if filterStale {
		cutoff = s.db.Now().Add(-s.cfg.MaxStatusAge)
	}

	// Bind only the variables the compiled program mentions; the
	// free-variable list was resolved at parse time, so unreferenced
	// parameter groups (network, security) cost nothing per server.
	mentioned := prog.MentionedVars()
	needNet := s.cfg.GroupOf != nil && s.cfg.LocalMonitor != "" &&
		(prog.References("monitor_network_delay") || prog.References("monitor_network_bw"))
	needSec := prog.References("host_security_level")

	// With no netdb/secdb reads and no wall-clock freshness cutoff,
	// the outcome is a pure function of (program, n, options) for this
	// table epoch: serve storm repeats from the memo.
	pure := !needNet && !needSec && !filterStale
	key := memoKey{prog: prog, n: n, opt: opt}
	s.selections.Add(1)
	if pure {
		if v, ok := s.memo.get(snap.Epoch, key); ok {
			s.memoHits.Add(1)
			return v.res, v.err
		}
	}

	var netMemo map[string]netBinding
	if needNet {
		netMemo = make(map[string]netBinding, 4)
	}

	env := s.envPool.Get().(*reqlang.Env)
	defer s.envPool.Put(env)

	ctx := selCtx{
		prog:        prog,
		snap:        snap,
		cutoff:      cutoff,
		filterStale: filterStale,
		env:         env,
		mentioned:   mentioned,
		needNet:     needNet,
		needSec:     needSec,
		netMemo:     netMemo,
	}

	// Consult the planner only past the threshold: small tables scan
	// faster than they index, and keep the thesis' full per-server
	// Decisions.
	threshold := s.cfg.PlanThreshold
	if threshold == 0 {
		threshold = DefaultPlanThreshold
	}
	var pe *planEntry
	if threshold > 0 && len(recs) >= threshold {
		if e := s.planFor(prog); e.plan != nil {
			pe = e
		}
	}

	var result Result
	var candidates []scored
	if pe != nil {
		result, candidates = s.plannedSelect(&ctx, pe)
	} else {
		result, candidates = s.fullScan(&ctx)
	}
	result.Epoch = snap.Epoch

	sort.SliceStable(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		// Preferred servers "will always be selected first when
		// available" (§3.6.1), in the order the user listed them.
		aPref, bPref := a.preferred >= 0, b.preferred >= 0
		if aPref != bPref {
			return aPref
		}
		if aPref && a.preferred != b.preferred {
			return a.preferred < b.preferred
		}
		if opt&proto.OptRankByExpr != 0 && a.hasScore && b.hasScore && a.score != b.score {
			return a.score > b.score
		}
		return a.order < b.order
	})

	for _, c := range candidates {
		if len(result.Servers) == n {
			break
		}
		result.Servers = append(result.Servers, c.addr)
	}
	result.Shortfall = n - len(result.Servers)
	var selErr error
	if result.Shortfall > 0 && opt&proto.OptPartialOK == 0 {
		selErr = fmt.Errorf("core: only %d of %d requested servers qualify", len(result.Servers), n)
	}
	if result.StaleDropped > 0 {
		s.staleDropped.Add(uint64(result.StaleDropped))
	}
	if pure {
		s.memo.put(snap.Epoch, key, memoVal{res: result, err: selErr})
	}
	return result, selErr
}

// scored is one qualified candidate awaiting the preference/rank
// sort.
type scored struct {
	addr      string
	preferred int // index in the preferred list, -1 if not
	score     float64
	hasScore  bool
	order     int // snapshot position, the first-found tiebreak
}

// fullScan is the historical selection loop: every fresh record gets
// a full evaluation and a Decision.
func (s *Selector) fullScan(ctx *selCtx) (Result, []scored) {
	recs := ctx.snap.Records
	result := Result{Decisions: make([]Decision, 0, len(recs))}
	var candidates []scored
	//lint:ignore scanfree the pre-planner baseline loop for small tables and non-index-resolvable requirements
	for i := range recs {
		rec := &recs[i]
		if ctx.filterStale && rec.UpdatedAt.Before(ctx.cutoff) {
			result.StaleDropped++
			continue
		}
		candidates = s.evalRecord(ctx, 0, rec, i, &result, candidates)
	}
	return result, candidates
}

// evalRecord evaluates one record from statement index from onward
// (0 = the whole program), records its Decision, and appends it to
// the candidate list when it qualifies.
func (s *Selector) evalRecord(ctx *selCtx, from int, rec *store.SysRecord, order int, result *Result, candidates []scored) []scored {
	host := rec.Status.Host
	s.fillEnv(ctx.env, rec, ctx.mentioned, ctx.needNet, ctx.needSec, ctx.netMemo)
	s.recordEvals.Add(1)
	res := ctx.prog.EvalFrom(ctx.env, from)
	d := Decision{
		Host:       host,
		Qualified:  res.Qualified,
		FailedLine: res.FailedLine,
		Score:      res.Score,
		HasScore:   res.HasScore,
		Err:        res.Err,
	}
	if denyIdx := matchHost(host, res.Denied); denyIdx >= 0 {
		d.Denied = true
		d.Qualified = false
	}
	prefIdx := matchHost(host, res.Preferred)
	d.Preferred = prefIdx >= 0
	result.Decisions = append(result.Decisions, d)
	if !d.Qualified {
		return candidates
	}
	return append(candidates, scored{
		addr:      s.dialAddr(host),
		preferred: prefIdx,
		score:     res.Score,
		hasScore:  res.HasScore,
		order:     order,
	})
}

// fillEnv rebinds the pooled environment for one candidate server:
// the mentioned status-report variables, plus the network metrics of
// the server's group and its security level when the program asks for
// them.
func (s *Selector) fillEnv(env *reqlang.Env, rec *store.SysRecord, mentioned []string, needNet, needSec bool, netMemo map[string]netBinding) {
	params := env.Params
	clear(params)
	for _, name := range mentioned {
		if v, ok := rec.Status.Var(name); ok {
			params[name] = v
		}
	}
	if needNet {
		group := s.cfg.GroupOf(rec.Status.Host)
		if group == s.cfg.LocalMonitor {
			// Same group: the thesis assumes LAN metrics are always
			// sufficient (§3.3.3); expose zero delay and a very large
			// bandwidth so network constraints never reject local
			// servers.
			params["monitor_network_delay"] = 0
			params["monitor_network_bw"] = 1e5 // Mbps; effectively infinite
		} else if group != "" {
			b, seen := netMemo[group]
			if !seen {
				if nr, ok := s.db.GetNet(s.cfg.LocalMonitor, group); ok {
					// Delay in milliseconds, bandwidth in Mbps: the units
					// the thesis requirements use ("delay < 20",
					// "monitor_network_bw > 6").
					b = netBinding{
						delay: float64(nr.Metric.Delay.Milliseconds()),
						bw:    nr.Metric.Bandwidth / 1e6,
						ok:    true,
					}
				}
				netMemo[group] = b
			}
			if b.ok {
				params["monitor_network_delay"] = b.delay
				params["monitor_network_bw"] = b.bw
			}
			// No record: the variables stay undefined, so requirements
			// referencing them reject the server — safe default.
		}
	}
	if needSec {
		if sec, ok := s.db.GetSec(rec.Status.Host); ok {
			params["host_security_level"] = float64(sec.Level.Level)
		}
	}
}

// dialAddr renders a host as a dialable address.
func (s *Selector) dialAddr(host string) string {
	if s.portSuffix == "" || strings.Contains(host, ":") {
		return host
	}
	return host + s.portSuffix
}

// matchHost finds host in a user-supplied list, matching
// case-insensitively and ignoring any port suffix on either side. It
// returns the index, or -1.
func matchHost(host string, list []string) int {
	if len(list) == 0 {
		return -1
	}
	h := stripPort(host)
	for i, entry := range list {
		if strings.EqualFold(h, stripPort(entry)) {
			return i
		}
	}
	return -1
}

func stripPort(s string) string {
	if i := strings.LastIndexByte(s, ':'); i >= 0 && !strings.Contains(s[i+1:], ".") {
		return s[:i]
	}
	return s
}
