package core

import (
	"sync"
	"testing"
	"time"

	"smartsock/internal/proto"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
)

// benchReq is the storm-mix requirement: three qualification lines, a
// ranking expression, and enough variable reads to make env binding
// visible in the profile.
const benchReq = "host_cpu_bogomips > 3000\n" +
	"host_cpu_free > 0.5\n" +
	"host_memory_free > 5\n" +
	"score = host_cpu_bogomips * host_cpu_free\n" +
	"score\n"

// benchDB registers the 11-host set used by the fast-path benchmarks:
// a spread of bogomips so some hosts qualify and some do not.
func benchDB() *store.DB {
	db := store.New()
	hosts := []struct {
		name     string
		bogomips float64
		memMB    uint64
	}{
		{"apple", 4771, 512}, {"banana", 1730, 128}, {"cherry", 5321, 1024},
		{"date", 2900, 256}, {"elder", 3650, 512}, {"fig", 4100, 768},
		{"grape", 990, 64}, {"honey", 6020, 2048}, {"iris", 3105, 384},
		{"jade", 2450, 256}, {"kiwi", 5500, 1024},
	}
	for _, h := range hosts {
		db.PutSys(sysinfo.Idle(h.name, h.bogomips, h.memMB))
	}
	return db
}

// BenchmarkSelect measures the full evaluation path. The freshness
// cutoff (any MaxStatusAge > 0) turns off the epoch memo, so every
// iteration scans and evaluates the candidate table.
func BenchmarkSelect(b *testing.B) {
	db := benchDB()
	sel := newSelector(b, db, Config{MaxStatusAge: time.Hour})
	prog := mustProg(b, benchReq)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(prog, 4, proto.OptRankByExpr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectMemoized measures the storm repeat: same program,
// same table epoch, outcome served from the selector's memo.
func BenchmarkSelectMemoized(b *testing.B) {
	db := benchDB()
	sel := newSelector(b, db, Config{})
	prog := mustProg(b, benchReq)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(prog, 4, proto.OptRankByExpr); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSelectAllocs pins the per-selection allocation budgets. The
// seed implementation copied the whole server table and built a fresh
// variable map per candidate (71 allocs/op on this workload); the
// snapshot + pooled-env evaluation path must stay at least 50% below
// that, and a memoised repeat must not allocate at all.
func TestSelectAllocs(t *testing.T) {
	db := benchDB()
	prog := mustProg(t, benchReq)

	evalSel := newSelector(t, db, Config{MaxStatusAge: time.Hour})
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := evalSel.Select(prog, 4, proto.OptRankByExpr); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 35 // seed: 71 allocs/op on this 11-host workload
	if allocs > maxAllocs {
		t.Errorf("Select evaluates with %.1f allocs/op, budget %d", allocs, maxAllocs)
	}

	memoSel := newSelector(t, db, Config{})
	allocs = testing.AllocsPerRun(200, func() {
		if _, err := memoSel.Select(prog, 4, proto.OptRankByExpr); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("memoised repeat allocates %.1f times, want 0", allocs)
	}
}

// TestSelectMemoInvalidatedByWrites proves the memo can never serve a
// stale answer: any table mutation bumps the epoch and the next
// selection re-evaluates.
func TestSelectMemoInvalidatedByWrites(t *testing.T) {
	db := benchDB()
	sel := newSelector(t, db, Config{})
	prog := mustProg(t, "host_cpu_bogomips > 6500\n")

	res, err := sel.Select(prog, 1, proto.OptPartialOK)
	if err != nil || len(res.Servers) != 0 {
		t.Fatalf("unexpected qualifiers %v (err %v)", res.Servers, err)
	}
	db.PutSys(sysinfo.Idle("lemon", 7000, 1024))
	res, err = sel.Select(prog, 1, proto.OptPartialOK)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Servers) != 1 || res.Servers[0] != "lemon" {
		t.Errorf("post-write selection returned %v, want the new host", res.Servers)
	}
}

// TestStaleDroppedSingleSnapshot is the regression test for the
// double-read bug: the seed took one locked read for the total count
// and a second for the fresh set, so a probe report landing in
// between skewed StaleDropped. A single snapshot must make the
// accounting exact: every record is either evaluated or counted
// stale.
func TestStaleDroppedSingleSnapshot(t *testing.T) {
	now := time.Date(2004, 6, 1, 12, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	db := store.NewWithClock(clock)
	for _, h := range []string{"old1", "old2", "old3"} {
		db.PutSys(sysinfo.Idle(h, 5000, 512))
	}
	mu.Lock()
	now = now.Add(time.Minute)
	mu.Unlock()
	for _, h := range []string{"new1", "new2"} {
		db.PutSys(sysinfo.Idle(h, 5000, 512))
	}

	sel := newSelector(t, db, Config{MaxStatusAge: 30 * time.Second})
	res, err := sel.Select(mustProg(t, "host_cpu_free > 0.5\n"), 2, proto.OptPartialOK)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaleDropped != 3 {
		t.Errorf("StaleDropped = %d, want 3", res.StaleDropped)
	}
	if len(res.Decisions) != 2 {
		t.Errorf("%d decisions, want 2 (fresh hosts only)", len(res.Decisions))
	}
	if got, want := res.StaleDropped+len(res.Decisions), db.SysLen(); got != want {
		t.Errorf("stale (%d) + evaluated (%d) = %d, want the full table (%d)",
			res.StaleDropped, len(res.Decisions), got, want)
	}
	if res.Epoch != db.SysEpoch() {
		t.Errorf("result epoch %d, table epoch %d", res.Epoch, db.SysEpoch())
	}
}

// TestSelectConcurrentWithWrites hammers Select from several
// goroutines while probe reports keep landing — the storm fast path's
// core claim is that this needs no outer lock.
func TestSelectConcurrentWithWrites(t *testing.T) {
	db := benchDB()
	sel := newSelector(t, db, Config{})
	prog := mustProg(t, benchReq)
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				db.PutSys(sysinfo.Idle("apple", float64(3000+i%3000), 512))
			}
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 500; i++ {
				res, err := sel.Select(prog, 4, proto.OptRankByExpr|proto.OptPartialOK)
				if err != nil {
					t.Errorf("Select: %v", err)
					return
				}
				if len(res.Servers) == 0 {
					t.Error("no servers selected")
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
