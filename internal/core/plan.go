package core

import (
	"sort"
	"sync"
	"time"

	"smartsock/internal/index"
	"smartsock/internal/reqlang"
	"smartsock/internal/status"
	"smartsock/internal/store"
)

// DefaultPlanThreshold is the table size at which Select starts
// consulting the planner. Below it a full scan is already cheaper
// than index maintenance, and — more importantly — the historical
// semantics (a Decision for every live server) stay intact for the
// small deployments the thesis' walkthroughs assume.
const DefaultPlanThreshold = 128

// indexableVar reports whether the planner may extract constraints on
// a variable: the numeric status-report fields plus the security
// level. Network metrics are excluded — their value depends on the
// requesting client's group, not on the server record alone — so
// requirements leading with them simply fall back to the scan.
func indexableVar(name string) bool {
	if name == index.SecurityField {
		return true
	}
	var zero status.ServerStatus
	_, ok := zero.Var(name)
	return ok
}

// planEntry caches the planner's verdict for one compiled program: a
// nil plan records "not index-resolvable" so unindexable storms pay
// one map hit, not one AST walk, per request.
type planEntry struct {
	plan   *reqlang.Plan
	cons   []index.Constraint
	fields []string // unique constraint fields, for column bootstrap
}

// planCacheMax bounds the verdict cache; programs come from the
// wizard's bounded compile cache, so in practice this never fills.
const planCacheMax = 1024

type planCache struct {
	mu      sync.RWMutex
	entries map[*reqlang.Program]*planEntry
}

func (c *planCache) get(prog *reqlang.Program) (*planEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[prog]
	return e, ok
}

func (c *planCache) put(prog *reqlang.Program, e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[*reqlang.Program]*planEntry)
	}
	if len(c.entries) < planCacheMax {
		c.entries[prog] = e
	}
}

// planFor returns the cached planner verdict for prog, computing it
// on first sight.
func (s *Selector) planFor(prog *reqlang.Program) *planEntry {
	if e, ok := s.plans.get(prog); ok {
		return e
	}
	e := &planEntry{}
	if plan := prog.Plan(indexableVar); plan != nil {
		e.plan = plan
		e.cons = make([]index.Constraint, len(plan.Cons))
		seen := make(map[string]bool, len(plan.Cons))
		for i, c := range plan.Cons {
			e.cons[i] = index.Constraint{Field: c.Var, Op: cmpToIndex(c.Op), Val: c.Val}
			if !seen[c.Var] {
				seen[c.Var] = true
				e.fields = append(e.fields, c.Var)
			}
		}
	}
	s.plans.put(prog, e)
	return e
}

func cmpToIndex(op reqlang.CmpOp) index.Op {
	switch op {
	case reqlang.CmpLT:
		return index.LT
	case reqlang.CmpLE:
		return index.LE
	case reqlang.CmpGT:
		return index.GT
	case reqlang.CmpGE:
		return index.GE
	}
	return index.EQ
}

// selCtx bundles the per-selection evaluation context shared by the
// scan and planner paths.
type selCtx struct {
	prog        *reqlang.Program
	snap        *store.SysSnapshot
	cutoff      time.Time
	filterStale bool
	env         *reqlang.Env
	mentioned   []string
	needNet     bool
	needSec     bool
	netMemo     map[string]netBinding
}

// plannedSelect runs the plan-semantics pipeline: candidates come
// from the index (or, when the index cannot serve this snapshot, from
// a constraint-filtering scan that returns byte-identical results),
// and only survivors pay a residual evaluation. Constraint-failing
// records are counted in Result.Pruned instead of receiving
// Decisions.
func (s *Selector) plannedSelect(ctx *selCtx, pe *planEntry) (Result, []scored) {
	s.indexPlans.Add(1)
	if !s.cfg.ForceScan && s.idx.SyncFor(ctx.snap, pe.fields) {
		if hosts, ok := s.idx.Candidates(ctx.snap.Epoch, pe.cons, nil); ok {
			return s.plannedEval(ctx, pe, hosts)
		}
	}
	s.indexFallbacks.Add(1)
	return s.constraintScan(ctx, pe)
}

// plannedEval joins the index's sorted candidate hosts back to the
// snapshot and evaluates the residual program against each fresh one.
func (s *Selector) plannedEval(ctx *selCtx, pe *planEntry, hosts []string) (Result, []scored) {
	recs := ctx.snap.Records
	result := Result{Decisions: make([]Decision, 0, len(hosts))}
	var candidates []scored
	for _, host := range hosts {
		i := sort.Search(len(recs), func(j int) bool { return recs[j].Status.Host >= host })
		if i >= len(recs) || recs[i].Status.Host != host {
			// The index epoch matched the snapshot's, so membership
			// agrees; an unmatched candidate cannot arise, but skipping
			// is the safe reading if it ever did.
			continue
		}
		rec := &recs[i]
		if ctx.filterStale && rec.UpdatedAt.Before(ctx.cutoff) {
			result.StaleDropped++
			continue
		}
		s.residualEvals.Add(1)
		candidates = s.evalRecord(ctx, pe.plan.Prefix, rec, i, &result, candidates)
	}
	result.Pruned = len(recs) - len(hosts)
	s.rowsPruned.Add(uint64(result.Pruned))
	return result, candidates
}

// constraintScan is the correctness-preserving fallback when the
// index cannot serve (snapshot raced a writer, or Config.ForceScan
// pins it for differential testing): the same constraints are tested
// record by record against the snapshot, so the Result is
// byte-identical to the index path's.
func (s *Selector) constraintScan(ctx *selCtx, pe *planEntry) (Result, []scored) {
	recs := ctx.snap.Records
	result := Result{}
	var candidates []scored
	//lint:ignore scanfree the planner's fallback must visit every record when the index cannot serve the snapshot's epoch
	for i := range recs {
		rec := &recs[i]
		if !s.passesConstraints(rec, pe.cons) {
			result.Pruned++
			continue
		}
		if ctx.filterStale && rec.UpdatedAt.Before(ctx.cutoff) {
			result.StaleDropped++
			continue
		}
		s.residualEvals.Add(1)
		candidates = s.evalRecord(ctx, pe.plan.Prefix, rec, i, &result, candidates)
	}
	s.rowsPruned.Add(uint64(result.Pruned))
	return result, candidates
}

// passesConstraints tests the extracted constraints directly against
// one record, mirroring what the index answers from its columns: an
// unreported field (or a host with no security record) fails, exactly
// as the undefined variable would fail its logical statement.
func (s *Selector) passesConstraints(rec *store.SysRecord, cons []index.Constraint) bool {
	for _, c := range cons {
		var v float64
		if c.Field == index.SecurityField {
			sec, ok := s.db.GetSec(rec.Status.Host)
			if !ok {
				return false
			}
			v = float64(sec.Level.Level)
		} else {
			val, ok := rec.Status.Var(c.Field)
			if !ok {
				return false
			}
			v = val
		}
		if !c.Match(v) {
			return false
		}
	}
	return true
}
