package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"smartsock/internal/proto"
	"smartsock/internal/status"
	"smartsock/internal/store"
)

// BenchmarkSelectScale measures what the selection planner buys at
// fleet scale: the same requirement against the same table, answered
// by the historical full scan (PlanThreshold -1) and by the indexed
// planner. Three requirement shapes cover the planner's regimes:
//
//   - selective: ~0.5% of hosts pass the indexed prefix, the planner's
//     best case — candidate generation touches only the sorted range;
//   - broad: ~80% pass, the worst indexable case — pruning saves
//     little, the index must not cost much;
//   - unindexable: the leading statement defeats extraction
//     (arithmetic operand), so the planner immediately falls back to
//     the historical scan; its overhead must stay in the noise.
//
// The per-iteration "evals/op" metric counts requirement evaluations
// through the selector's core_record_evals counter: the acceptance bar
// is a ≥100× reduction for the selective case at 100k hosts.
func BenchmarkSelectScale(b *testing.B) {
	sizes := []struct {
		name string
		n    int
	}{
		{"10k", 10_000},
		{"100k", 100_000},
		{"1m", 1_000_000},
	}
	shapes := []struct {
		name string
		req  string
	}{
		{"selective", "host_cpu_free > 0.995\nhost_memory_free > 1\nhost_cpu_free * 100\n"},
		{"broad", "host_cpu_free > 0.2\nhost_cpu_free * 100\n"},
		{"unindexable", "host_cpu_free + 0 > 0.995\nhost_cpu_free * 100\n"},
	}
	modes := []struct {
		name      string
		threshold int
	}{
		{"scan", -1},
		{"plan", 1},
	}
	for _, size := range sizes {
		for _, shape := range shapes {
			for _, mode := range modes {
				name := fmt.Sprintf("%s/%s/%s", size.name, shape.name, mode.name)
				b.Run(name, func(b *testing.B) {
					db := scaleDB(b, size.n)
					sel := newSelector(b, db, Config{
						// A freshness cutoff keeps every iteration impure so
						// the epoch memo never shortcuts the measurement.
						MaxStatusAge:  24 * time.Hour,
						PlanThreshold: mode.threshold,
						ServicePort:   9000,
					})
					prog := mustProg(b, shape.req)
					// Warm up: compiles the plan and builds the index
					// columns once, off the measured path (steady-state
					// requests find both ready).
					if _, err := sel.Select(prog, 8, proto.OptPartialOK|proto.OptRankByExpr); err != nil {
						b.Fatal(err)
					}
					evalsBefore := sel.recordEvals.Value()
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := sel.Select(prog, 8, proto.OptPartialOK|proto.OptRankByExpr); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					evals := sel.recordEvals.Value() - evalsBefore
					b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
				})
			}
		}
	}
}

// scaleDBs caches one populated database per size: filling a
// million-host table dominates any measured interval, so benchmarks
// share it. Content is deterministic in the size.
var scaleDBs = map[int]*store.DB{}

func scaleDB(b *testing.B, n int) *store.DB {
	if db, ok := scaleDBs[n]; ok {
		return db
	}
	rng := rand.New(rand.NewSource(int64(n)))
	recs := make([]status.ServerStatus, n)
	for i := range recs {
		recs[i] = status.ServerStatus{
			Host:     fmt.Sprintf("fleet-%07d", i),
			Load1:    rng.Float64() * 8,
			CPUIdle:  rng.Float64(),
			Bogomips: 1000 + rng.Float64()*5000,
			MemTotal: 1 << 30,
			MemFree:  uint64(1+rng.Intn(512)) << 20,
		}
	}
	db := store.New()
	db.Load(recs, nil, nil)
	db.SysView() // materialise the snapshot outside any timed region
	scaleDBs[n] = db
	return db
}
