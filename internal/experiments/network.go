package experiments

// The Chapter 3 measurement studies: RTT-versus-packet-size sweeps
// (Figs 3.3–3.6), the probe-size bandwidth comparison (Table 3.3 /
// Fig 3.7) and the network-monitor record mesh (Table 3.4).

import (
	"fmt"
	"time"

	"smartsock/internal/bwest"
	"smartsock/internal/netmon"
	"smartsock/internal/simnet"
	"smartsock/internal/store"
	"smartsock/internal/testbed"
)

func init() {
	register("fig3.3", func(o Options) (*Table, error) { return rttSweepFig(o, 1500, "fig3.3") })
	register("fig3.4", func(o Options) (*Table, error) { return rttSweepFig(o, 1000, "fig3.4") })
	register("fig3.5", func(o Options) (*Table, error) { return rttSweepFig(o, 500, "fig3.5") })
	register("fig3.6", fig36)
	register("table3.3", table33)
	register("table3.4", table34)
}

// rttSweepFig reproduces one of Figs 3.3–3.5: sweep UDP payload 1..max
// step 10 on sagit→suna with the interface MTU set to mtu, then fit
// the two slopes and detect the knee.
func rttSweepFig(o Options, mtu int, id string) (*Table, error) {
	path, err := testbed.CampusPath(mtu, o.Seed)
	if err != nil {
		return nil, err
	}
	maxSize, step := 6000, 10
	if o.Quick {
		step = 50
	}
	pts := bwest.RTTSweep(path, maxSize, step)
	s1, s2 := bwest.FitSlopes(pts, mtu)
	knee := bwest.DetectMTU(pts)

	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("RTT vs UDP payload, sagit→suna, MTU=%d bytes", mtu),
		Columns: []string{"payload(B)", "RTT(us)"},
	}
	// Sample the curve at a readable density.
	for i := 0; i < len(pts); i += len(pts) / 12 {
		p := pts[i]
		t.AddRow(fmt.Sprintf("%d", p.Size), fmt.Sprintf("%.1f", float64(p.RTT.Microseconds())))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("slope below MTU %.4g s/B, above %.4g s/B (paper: break at the MTU; slope drop = 1/Speed_init)", s1, s2),
		fmt.Sprintf("detected knee at %d bytes (interface MTU %d)", knee, mtu),
	)
	if s1 <= s2 {
		t.Notes = append(t.Notes, "WARNING: no slope break detected")
	}
	return t, nil
}

// fig36 reproduces the six-path RTT study of Table 3.2 / Fig 3.6: the
// knee is visible on quiet physical paths, absent on loopback, and
// shadowed by WAN noise.
func fig36(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig3.6",
		Title:   "RTT sweeps on the 6 sample paths of Table 3.2",
		Columns: []string{"path", "ping RTT", "knee(B)", "slope<MTU(s/B)", "slope>MTU(s/B)", "verdict"},
	}
	maxSize, step := 6000, 10
	if o.Quick {
		step = 50
	}
	type expect struct {
		index   string
		visible bool // does the thesis see the threshold here?
	}
	for _, e := range []expect{
		{"a", false}, {"b", false}, // WAN: shadowed (observation 4)
		{"c", true}, {"d", true}, {"e", true}, // quiet LANs: visible
		{"f", false}, // loopback: no threshold at all (observation 1)
	} {
		path, err := testbed.Table32Path(e.index, o.Seed)
		if err != nil {
			return nil, err
		}
		pts := bwest.RTTSweep(path, maxSize, step)
		s1, s2 := bwest.FitSlopes(pts, 1500)
		knee := bwest.DetectMTU(pts)
		verdict := "threshold visible"
		if e.index == "f" {
			verdict = "no threshold (virtual interface)"
		} else if !e.visible {
			verdict = "threshold shadowed by RTT variance"
		}
		t.AddRow(path.Name(),
			path.BaseRTT().Round(10*time.Microsecond).String(),
			fmt.Sprintf("%d", knee),
			fmt.Sprintf("%.3g", s1), fmt.Sprintf("%.3g", s2),
			verdict)
	}
	return t, nil
}

// table33 reproduces Table 3.3 / Fig 3.7: bandwidth estimates from 7
// probe-size groups against pipechar and pathload on the ≈95 Mbps
// campus path.
func table33(o Options) (*Table, error) {
	path, err := testbed.CampusPath(1500, o.Seed)
	if err != nil {
		return nil, err
	}
	runs := 10
	if o.Quick {
		runs = 4
	}
	groups := []struct{ s1, s2 int }{
		{100, 500}, {500, 1000}, {100, 1000}, // both below the MTU
		{2000, 4000}, {4000, 6000}, {2000, 6000}, // above, mixed fragment counts
		{1600, 2900}, // the optimal pair
	}
	t := &Table{
		ID:      "table3.3",
		Title:   "Bandwidth measurements using various packet size (Mbps)",
		Columns: []string{"packet size(B)", "min bw", "max bw", "avg bw"},
	}
	for _, g := range groups {
		st, err := bwest.Estimate(path, bwest.StreamConfig{S1: g.s1, S2: g.s2, Runs: runs})
		if err != nil {
			return nil, fmt.Errorf("group %d~%d: %w", g.s1, g.s2, err)
		}
		t.AddRow(fmt.Sprintf("%d~%d", g.s1, g.s2), mbps(st.Min), mbps(st.Max), mbps(st.Avg))
	}
	pc, err := bwest.Pipechar{Pairs: 4 * runs}.Estimate(path)
	if err != nil {
		return nil, err
	}
	t.AddRow("pipechar", "", "", mbps(pc))
	lo, hi, err := bwest.Pathload{Lo: 1e6, Hi: 1e9}.Estimate(path)
	if err != nil {
		return nil, err
	}
	t.AddRow("pathload", mbps(lo), mbps(hi), "")
	t.Notes = append(t.Notes,
		fmt.Sprintf("true available bandwidth (harmonic across hops): %s Mbps", mbps(path.EffectiveBandwidth())),
		"paper shape: sub-MTU groups ≈20 Mbps (Speed_init effect, Eq. 3.7); supra-MTU ≈80–92; 1600~2900 best",
	)
	return t, nil
}

// table34 reproduces Table 3.4: the (delay, bandwidth) record tables
// of a 3-monitor mesh, each monitor probing the other two.
func table34(o Options) (*Table, error) {
	monitors := []string{"netmon-1", "netmon-2", "netmon-3"}
	// A triangle of unequal links so the table is informative.
	linkCfg := map[string]struct {
		capacity float64
		prop     time.Duration
		util     float64
	}{
		"netmon-1→netmon-2": {100e6, 200 * time.Microsecond, 0.05},
		"netmon-1→netmon-3": {10e6, 3 * time.Millisecond, 0.2},
		"netmon-2→netmon-1": {100e6, 200 * time.Microsecond, 0.05},
		"netmon-2→netmon-3": {45e6, 2 * time.Millisecond, 0.1},
		"netmon-3→netmon-1": {10e6, 3 * time.Millisecond, 0.2},
		"netmon-3→netmon-2": {45e6, 2 * time.Millisecond, 0.1},
	}
	db := store.New()
	runs := 3
	if o.Quick {
		runs = 2
	}
	for _, from := range monitors {
		var peers []netmon.Peer
		for _, to := range monitors {
			if to == from {
				continue
			}
			cfg := linkCfg[from+"→"+to]
			path, err := simnet.New(simnet.Config{
				Name: from + "-" + to, MTU: 1500, SpeedInit: testbed.SpeedInit,
				Jitter: 0.02, Seed: o.Seed,
				Hops: []simnet.Hop{{Capacity: cfg.capacity, PropDelay: cfg.prop, Utilization: cfg.util}},
			})
			if err != nil {
				return nil, err
			}
			peers = append(peers, netmon.Peer{Name: to, Prober: path, MTU: 1500})
		}
		nm, err := netmon.New(netmon.Config{Name: from, Peers: peers, DB: db, BandwidthRuns: runs})
		if err != nil {
			return nil, err
		}
		nm.ProbeAll(nil)
	}
	t := &Table{
		ID:      "table3.4",
		Title:   "Sample network monitor records: (delay, bandwidth) to each neighbour",
		Columns: []string{"monitor", "peer", "delay", "bandwidth(Mbps)"},
	}
	for _, r := range db.Net() {
		t.AddRow(r.Metric.From, r.Metric.To,
			r.Metric.Delay.Round(10*time.Microsecond).String(),
			mbps(r.Metric.Bandwidth))
	}
	t.Notes = append(t.Notes, "each monitor holds (delay,bw) pairs for every other group, as in Fig 3.8")
	return t, nil
}
