package experiments

// Fault-injection study (beyond the thesis): how probe-report loss
// degrades the selection pipeline. The thesis assumes the monitor's
// local network loses reports only rarely (§3.2.1); this sweep
// quantifies what happens when that assumption fails — warm-up time
// until every server is selectable, and the client-observed latency
// of a selection request over an equally lossy wizard link.

import (
	"context"
	"fmt"
	"net"
	"time"

	"smartsock"
	"smartsock/internal/chaos"
	"smartsock/internal/testbed"
)

func init() {
	register("chaos.loss", chaosLoss)
}

func chaosLoss(o Options) (*Table, error) {
	rates := []float64{0, 0.1, 0.2, 0.3}
	requests := 10
	machines := testbed.Machines()[:5]
	if o.Quick {
		rates = []float64{0, 0.2}
		requests = 3
		machines = testbed.Machines()[:3]
	}
	const interval = 25 * time.Millisecond

	t := &Table{
		ID:    "chaos.loss",
		Title: "Probe-report loss vs. pipeline warm-up and selection latency",
		Columns: []string{
			"loss", "settle_ms", "reports_dropped", "req_mean_ms", "req_ok",
		},
	}

	for _, rate := range rates {
		probeFaults := chaos.New(chaos.Config{Seed: o.Seed, DropRate: rate})
		start := time.Now()
		cluster, err := testbed.Boot(testbed.Options{
			Machines:      machines,
			ProbeInterval: interval,
			ProbeFaults:   probeFaults,
		})
		if err != nil {
			return nil, err
		}
		settleCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		settleErr := cluster.WaitSettled(settleCtx, len(machines))
		cancel()
		if settleErr != nil {
			cluster.Close()
			return nil, fmt.Errorf("loss %.0f%%: %w", rate*100, settleErr)
		}
		settle := time.Since(start)

		// Selection latency over a wizard link with the same loss rate:
		// the client's retry/backoff path absorbs dropped requests.
		clientFaults := chaos.New(chaos.Config{Seed: o.Seed + 1, DropRate: rate})
		client, err := smartsock.NewClient(cluster.WizardAddr(), &smartsock.ClientConfig{
			Timeout: 250 * time.Millisecond,
			Retries: 5,
			Dial: func(network, addr string) (net.Conn, error) {
				conn, err := net.Dial(network, addr)
				if err != nil {
					return nil, err
				}
				return clientFaults.WrapConn(conn), nil
			},
		})
		if err != nil {
			cluster.Close()
			return nil, err
		}
		var total time.Duration
		ok := 0
		for i := 0; i < requests; i++ {
			reqCtx, cancelReq := context.WithTimeout(context.Background(), 5*time.Second)
			reqStart := time.Now()
			_, err := client.RequestServers(reqCtx, "host_memory_total > 0\n", 2, smartsock.OptPartialOK)
			cancelReq()
			if err == nil {
				total += time.Since(reqStart)
				ok++
			}
		}
		mean := time.Duration(0)
		if ok > 0 {
			mean = total / time.Duration(ok)
		}
		t.AddRow(
			fmt.Sprintf("%.0f%%", rate*100),
			fmt.Sprintf("%d", settle.Milliseconds()),
			fmt.Sprintf("%d", probeFaults.Dropped()),
			f1(float64(mean.Microseconds())/1000),
			fmt.Sprintf("%d/%d", ok, requests),
		)
		cluster.Close()
	}
	t.Notes = append(t.Notes,
		"loss applies send-side to every probe report and client request datagram",
		"settle_ms = Boot until all servers selectable; stays flat because a host only needs one report through",
		"req_mean_ms includes UDP retries with jittered backoff on the lossy wizard link",
	)
	return t, nil
}
