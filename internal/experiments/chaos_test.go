package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestChaosLossSweep runs the loss sweep in Quick mode and checks the
// two anchoring rows: the 0%-loss baseline must drop nothing and
// answer every request, and the lossy row must actually have injected
// faults — otherwise the sweep is measuring a healthy network twice.
func TestChaosLossSweep(t *testing.T) {
	tb := quickRun(t, "chaos.loss")
	if len(tb.Rows) != 2 {
		t.Fatalf("quick sweep has %d rows, want 2 (0%% and 20%% loss)", len(tb.Rows))
	}
	baseline, lossy := tb.Rows[0], tb.Rows[1]
	if baseline[0] != "0%" {
		t.Fatalf("first row is %q, want the 0%% baseline", baseline[0])
	}
	if baseline[2] != "0" {
		t.Errorf("baseline dropped %s reports, want 0", baseline[2])
	}
	if !strings.HasPrefix(baseline[4], "3/") {
		t.Errorf("baseline answered %s requests, want all 3", baseline[4])
	}
	dropped, err := strconv.Atoi(lossy[2])
	if err != nil || dropped == 0 {
		t.Errorf("lossy row dropped %q reports, want > 0", lossy[2])
	}
	okPart, _, _ := strings.Cut(lossy[4], "/")
	if n, err := strconv.Atoi(okPart); err != nil || n == 0 {
		t.Errorf("lossy row answered %q requests, want at least one", lossy[4])
	}
}
