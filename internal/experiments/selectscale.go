package experiments

// The selection-planner experiment (beyond the paper): per-request
// cost of the wizard's Select at fleet scale, with the full-table
// scan the thesis implies versus the delta-maintained per-field
// indexes. DESIGN.md's "Selection planner" section and EXPERIMENTS.md
// quote these rows; scripts/bench.sh measures the same matrix with
// the Go benchmark harness into BENCH_select.json.

import (
	"fmt"
	"math/rand"
	"time"

	"smartsock/internal/core"
	"smartsock/internal/obs"
	"smartsock/internal/proto"
	"smartsock/internal/reqlang"
	"smartsock/internal/status"
	"smartsock/internal/store"
)

func init() {
	register("select.scale", selectScale)
}

// selectScale loads host tables at increasing scale and times the
// same requirements under the historical scan and the planner.
func selectScale(o Options) (*Table, error) {
	sizes := []int{10_000, 100_000}
	if o.Quick {
		sizes = []int{10_000}
	}
	shapes := []struct {
		label, req string
		repeats    int
	}{
		{"selective (~0.5% pass)", "host_cpu_free > 0.995\nhost_memory_free > 1\nhost_cpu_free * 100\n", 40},
		{"broad (~80% pass)", "host_cpu_free > 0.2\nhost_cpu_free * 100\n", 5},
		{"unindexable", "host_cpu_free + 0 > 0.995\nhost_cpu_free * 100\n", 10},
	}
	modes := []struct {
		label     string
		threshold int
	}{
		{"scan", -1},
		{"plan", 1},
	}

	t := &Table{
		ID:      "select.scale",
		Title:   "Selection cost at fleet scale: full-table scan vs indexed planner",
		Columns: []string{"hosts", "requirement", "mode", "us/select", "evals/select", "pruned/select"},
	}
	for _, n := range sizes {
		db := store.New()
		db.Load(fleetTable(n, o.Seed), nil, nil)
		db.SysView()
		for _, shape := range shapes {
			prog, err := reqlang.Parse(shape.req)
			if err != nil {
				return nil, fmt.Errorf("select.scale: %w", err)
			}
			for _, mode := range modes {
				reg := obs.NewRegistry()
				sel, err := core.New(db, core.Config{
					Obs:           reg,
					MaxStatusAge:  24 * time.Hour, // impure: defeats the epoch memo
					PlanThreshold: mode.threshold,
					ServicePort:   9000,
				})
				if err != nil {
					return nil, fmt.Errorf("select.scale: %w", err)
				}
				// Warm-up builds the plan cache and index columns once.
				if _, err := sel.Select(prog, 8, proto.OptPartialOK|proto.OptRankByExpr); err != nil {
					return nil, fmt.Errorf("select.scale warm-up: %w", err)
				}
				repeats := shape.repeats
				if o.Quick {
					repeats = max(repeats/4, 2)
				}
				before := reg.Snapshot().Counters
				start := time.Now()
				var pruned int
				for i := 0; i < repeats; i++ {
					res, err := sel.Select(prog, 8, proto.OptPartialOK|proto.OptRankByExpr)
					if err != nil {
						return nil, fmt.Errorf("select.scale: %w", err)
					}
					pruned += res.Pruned
				}
				elapsed := time.Since(start)
				after := reg.Snapshot().Counters
				evals := after["core_record_evals"] - before["core_record_evals"]
				t.AddRow(
					fmt.Sprintf("%d", n),
					shape.label,
					mode.label,
					fmt.Sprintf("%.0f", float64(elapsed.Microseconds())/float64(repeats)),
					fmt.Sprintf("%.0f", float64(evals)/float64(repeats)),
					fmt.Sprintf("%.0f", float64(pruned)/float64(repeats)),
				)
			}
		}
	}
	t.Notes = append(t.Notes,
		"scan = PlanThreshold -1 (thesis behaviour), plan = indexed selection planner",
		"unindexable requirements fall back to the constraint scan; their planner row measures that overhead",
		"scripts/bench.sh runs the same matrix through go test -bench into BENCH_select.json",
	)
	return t, nil
}

// fleetTable builds n deterministic host records with a spread of
// loads, idle fractions and memory.
func fleetTable(n int, seed int64) []status.ServerStatus {
	rng := rand.New(rand.NewSource(seed + int64(n)))
	recs := make([]status.ServerStatus, n)
	for i := range recs {
		recs[i] = status.ServerStatus{
			Host:     fmt.Sprintf("fleet-%07d", i),
			Load1:    rng.Float64() * 8,
			CPUIdle:  rng.Float64(),
			Bogomips: 1000 + rng.Float64()*5000,
			MemTotal: 1 << 30,
			MemFree:  uint64(1+rng.Intn(512)) << 20,
		}
	}
	return recs
}
