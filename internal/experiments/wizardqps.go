package experiments

// The wizard fast-path experiment: request-storm throughput of the
// §3.6.1 wizard under its four serving configurations, from the
// thesis-faithful sequential loop up to the batched/sharded datagram
// plane. DESIGN.md's fast-path and datagram-plane sections and
// EXPERIMENTS.md's wizard.qps entry carry the measured numbers.

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"time"

	"smartsock/internal/core"
	"smartsock/internal/netbatch"
	"smartsock/internal/proto"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
	"smartsock/internal/wizard"
)

func init() {
	register("wizard.qps", wizardQPS)
}

// stormRequirements is the cached request mix: a handful of distinct
// requirement texts, as a fleet of applications each reusing its own
// requirement would produce.
var stormRequirements = []string{
	"host_cpu_bogomips > 3000\nhost_cpu_free > 0.5\nhost_memory_free > 5\nscore = host_cpu_bogomips * host_cpu_free\nscore\n",
	"host_cpu_bogomips > 2000\n",
	"host_memory_free > 50\nhost_cpu_free > 0.3\n",
	"host_system_load1 < 2\nhost_cpu_bogomips > 1500\n",
	"host_cpu_free > 0.8\nhost_memory_free > 10\n",
}

// wizardQPS storms one in-process wizard per configuration over real
// UDP sockets and reports end-to-end request throughput:
//
//   - seq/uncached: the thesis-faithful serving model (wizardd
//     -compat) — one sequential handler, every requirement re-parsed;
//   - seq/cached: the compiled-requirement cache alone;
//   - workers8/cached: the worker pool, still ping-pong clients;
//   - shards8/batched: the full datagram plane — 8 SO_REUSEPORT
//     shards with batch-64 recvmmsg/sendmmsg endpoints, driven by
//     windowed clients that keep requests in flight.
//
// Requests draw from a fixed five-requirement mix, so after the first
// round every text is a cache hit in the cached configurations.
func wizardQPS(o Options) (*Table, error) {
	requests := 20000
	if o.Quick {
		requests = 2000
	}
	const clients = 4

	db := store.New()
	for i := 0; i < 11; i++ {
		db.PutSys(sysinfo.Idle(fmt.Sprintf("node-%02d", i), 1000+float64(i)*550, 128<<(i%4)))
	}

	datagrams := make([][]byte, len(stormRequirements))
	for i, detail := range stormRequirements {
		datagrams[i] = proto.MarshalRequest(&proto.Request{
			Seq: uint32(i), ServerNum: 4,
			Option: proto.OptPartialOK | proto.OptRankByExpr,
			Detail: detail,
		})
	}

	configs := []stormConfig{
		{"seq/uncached (thesis §3.6.1)", 1, -1, 1, 1, false},
		{"seq/cached", 1, 0, 1, 1, false},
		{"workers8/cached", 8, 0, 32, 1, false},
		{"shards8/batched (windowed clients)", 8, 0, 64, 8, true},
	}
	t := &Table{
		ID:      "wizard.qps",
		Title:   "Wizard request-storm throughput by serving configuration",
		Columns: []string{"config", "requests", "elapsed", "req/s", "cache hits"},
	}
	for _, cfg := range configs {
		qps, hitRate, elapsed, err := stormOnce(db, cfg, requests, clients, datagrams)
		if err != nil {
			return nil, fmt.Errorf("wizard.qps %s: %w", cfg.label, err)
		}
		t.AddRow(cfg.label, fmt.Sprintf("%d", requests),
			fmt.Sprintf("%.2fs", elapsed.Seconds()),
			fmt.Sprintf("%.0f", qps),
			fmt.Sprintf("%.1f%%", hitRate*100))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d UDP clients (ping-pong; the batched row keeps a %d-request window in flight per client), %d-host table, five-requirement mix", clients, stormWindow, 11),
		"single-core containers bound the end-to-end gain: most remaining fast-path CPU is per-datagram kernel cost inside recvmmsg/sendmmsg (see EXPERIMENTS.md)",
	)
	return t, nil
}

// stormConfig is one wizard.qps serving configuration.
type stormConfig struct {
	label     string
	workers   int
	cacheSize int
	batch     int
	shards    int
	windowed  bool // windowed netbatch clients instead of ping-pong
}

// stormWindow is the per-client in-flight window (and client batch
// size) for the windowed configuration.
const stormWindow = 64

// stormOnce boots a wizard in the given configuration, fires the
// request mix from ping-pong (or windowed batched) clients and
// reports throughput plus the requirement-cache hit rate.
func stormOnce(db *store.DB, cfg stormConfig, requests, clients int, datagrams [][]byte) (qps, hitRate float64, elapsed time.Duration, err error) {
	sel, err := core.New(db, core.Config{})
	if err != nil {
		return 0, 0, 0, err
	}
	w, err := wizard.New(wizard.Config{
		Addr:      "127.0.0.1:0",
		Selector:  sel,
		Workers:   cfg.workers,
		CacheSize: cfg.cacheSize,
		Batch:     cfg.batch,
		Shards:    cfg.shards,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Run(ctx) }()

	errs := make(chan error, clients)
	counts := make([]int, clients)
	for i := 0; i < requests; i++ {
		counts[i%clients]++
	}
	start := time.Now()
	for c := 0; c < clients; c++ {
		//lint:ignore leakygo every client sends exactly one value on the buffered errs channel; the receive loop below joins all of them
		go func(c, count int) {
			if cfg.windowed {
				errs <- stormWindowedClient(w.Addr(), count, datagrams)
				return
			}
			conn, err := net.Dial("udp", w.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			buf := make([]byte, 64*1024)
			for i := 0; i < count; i++ {
				if _, err := conn.Write(datagrams[(c+i)%len(datagrams)]); err != nil {
					errs <- err
					return
				}
				if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
					errs <- err
					return
				}
				if _, err := conn.Read(buf); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(c, counts[c])
	}
	for c := 0; c < clients; c++ {
		if cerr := <-errs; cerr != nil && err == nil {
			err = cerr
		}
	}
	elapsed = time.Since(start)
	cancel()
	<-done
	if err != nil {
		return 0, 0, 0, err
	}
	hits, misses := w.CacheStats()
	if total := hits + misses; total > 0 {
		hitRate = float64(hits) / float64(total)
	}
	return float64(requests) / elapsed.Seconds(), hitRate, elapsed, nil
}

// stormWindowedClient drives count requests through one batched
// netbatch endpoint, keeping up to stormWindow in flight so the
// wizard's recvmmsg/sendmmsg loops actually amortise. A read timeout
// reopens the window (loopback drops are possible under the burst),
// so the run always completes.
func stormWindowedClient(addr string, count int, datagrams [][]byte) error {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	ep, err := netbatch.Wrap(conn, netbatch.Options{Batch: stormWindow})
	if err != nil {
		return err
	}
	out := netbatch.NewBatch(stormWindow, 256)
	in := netbatch.NewBatch(stormWindow, 64*1024)
	sent, recvd := 0, 0
	for recvd < count {
		if inflight := sent - recvd; sent < count && inflight < stormWindow {
			k := min(stormWindow-inflight, count-sent)
			for i := 0; i < k; i++ {
				out[i].Buf = append(out[i].Buf[:0], datagrams[(sent+i)%len(datagrams)]...)
				out[i].Addr = netip.AddrPort{} // connected socket
			}
			n, err := ep.WriteBatch(out[:k])
			if err != nil {
				return err
			}
			sent += n
			continue
		}
		if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
			return err
		}
		n, err := ep.ReadBatch(in)
		if err != nil {
			sent = recvd // datagram loss: reopen the window and resend
			continue
		}
		recvd += n
		if recvd > count {
			recvd = count
		}
	}
	return nil
}
