package experiments

// The §5.3.2 massive-download evaluation: the shaper/massd
// cross-check (Fig 5.3) and the three random-versus-smart download
// comparisons (Tables 5.7–5.9 / Figs 5.4–5.6).
//
// The paper sets each server group's bandwidth with rshaper in the
// 0–10 Mbps range and transfers 50000 KB. Here the shaper package
// plays rshaper; transfers are scaled down (both arms identically)
// so the suite runs in seconds, and the network monitor measures the
// same group bandwidths through simnet paths configured to the
// rshaper values — which is what makes "monitor_network_bw > X"
// select the fast group.

import (
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"smartsock"
	"smartsock/internal/massd"
	"smartsock/internal/shaper"
	"smartsock/internal/simnet"
	"smartsock/internal/testbed"
)

func init() {
	register("fig5.3", fig53)
	register("table5.7", func(o Options) (*Table, error) { return massdComparison(o, massd1v1) })
	register("table5.8", func(o Options) (*Table, error) { return massdComparison(o, massd2v2) })
	register("table5.9", func(o Options) (*Table, error) { return massdComparison(o, massd3v3) })
}

// bwScale converts a paper-Mbps rshaper setting into the scaled
// byte rate actually enforced on loopback: 1 paper-Mbps = 32 KiB/s of
// real transfer. Both experiment arms scale identically, so the
// throughput *ratios* of Figs 5.4–5.6 are preserved.
const bwScale = 32 * 1024 // bytes/s per paper-Mbps

// startFileServer runs a massd server whose uplink is shaped to the
// given paper-Mbps rate; it returns the dial address.
func startFileServer(ctx context.Context, mbpsPaper float64) (string, *shaper.Listener, error) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	shaped, err := shaper.NewListener(raw, mbpsPaper*bwScale)
	if err != nil {
		_ = raw.Close()
		return "", nil, err
	}
	srv := &massd.Server{}
	go srv.Serve(ctx, shaped)
	return raw.Addr().String(), shaped, nil
}

// fig53 reproduces the rshaper/massd cross-check: 10 sample rates,
// measured massd throughput tracking the configured limit.
func fig53(o Options) (*Table, error) {
	samples := 10
	if o.Quick {
		samples = 4
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	t := &Table{
		ID:      "fig5.3",
		Title:   "Benchmark for rshaper and massd: configured rate vs measured throughput",
		Columns: []string{"run", "shaped rate (KB/s)", "massd throughput (KB/s)", "ratio"},
	}
	for i := 0; i < samples; i++ {
		// The paper draws random rates and sets data = 100×bw so every
		// run lasts the same wall time; mirror that with a deterministic
		// ladder across the 0–10 Mbps range.
		mbpsPaper := 1.0 + 9.0*float64(i)/float64(samples-1)
		rate := mbpsPaper * bwScale
		// Two seconds of traffic per sample so the token-bucket burst
		// (rate/10) inflates the measurement by ≤5%.
		total := int64(2 * rate)
		if o.Quick {
			total /= 4
		}
		addr, _, err := startFileServer(ctx, mbpsPaper)
		if err != nil {
			return nil, err
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		stats, err := massd.Download(ctx, []net.Conn{conn}, total, total/16)
		_ = conn.Close()
		if err != nil {
			return nil, fmt.Errorf("fig5.3 run %d: %w", i, err)
		}
		got := stats.ThroughputKBps()
		want := rate / 1024
		t.AddRow(fmt.Sprintf("%d", i+1), f1(want), f1(got), f2(got/want))
	}
	t.Notes = append(t.Notes,
		"paper: 'the bandwidth values set by rshaper were very close to the actual throughput'",
	)
	return t, nil
}

// massdCase describes one of the Tables 5.7–5.9 comparisons.
type massdCase struct {
	id, title  string
	servers    int
	group1Mbps float64 // mimas, telesto, lhost
	group2Mbps float64 // dione, titan-x, pandora-x
	reqMbps    float64 // the monitor_network_bw threshold
	randomSets [][]string
	paperKBps  []float64 // random sets then smart, for the notes
}

var massd1v1 = massdCase{
	id: "table5.7", title: "1 vs 1 massd", servers: 1,
	group1Mbps: 6.72, group2Mbps: 1.33, reqMbps: 6,
	randomSets: [][]string{{"pandora-x"}},
	paperKBps:  []float64{170, 860},
}

var massd2v2 = massdCase{
	id: "table5.8", title: "2 vs 2 massd", servers: 2,
	group1Mbps: 5.01, group2Mbps: 7.67, reqMbps: 7,
	randomSets: [][]string{{"mimas", "telesto"}, {"telesto", "titan-x"}},
	paperKBps:  []float64{660, 795, 994},
}

var massd3v3 = massdCase{
	id: "table5.9", title: "3 vs 3 massd", servers: 3,
	group1Mbps: 5.99, group2Mbps: 2.92, reqMbps: 5,
	randomSets: [][]string{
		{"dione", "titan-x", "pandora-x"},
		{"mimas", "titan-x", "dione"},
		{"telesto", "mimas", "dione"},
	},
	paperKBps: []float64{387, 520, 634, 796},
}

// fileServerGroups are the six machines of the massd experiments.
var fileServerGroups = map[string]string{
	"mimas": "group-1", "telesto": "group-1", "lhost": "group-1",
	"dione": "group-2", "titan-x": "group-2", "pandora-x": "group-2",
}

// massdComparison runs one random-versus-smart download experiment.
func massdComparison(o Options, c massdCase) (*Table, error) {
	// Monitor-visible paths carry the rshaper group bandwidths.
	paths := map[string]*simnet.Path{}
	for group, mbpsPaper := range map[string]float64{
		"group-1": c.group1Mbps,
		"group-2": c.group2Mbps,
	} {
		p, err := testbed.GroupPath(group, mbpsPaper, o.Seed)
		if err != nil {
			return nil, err
		}
		paths[group] = p
	}
	var machines []testbed.Machine
	for name := range fileServerGroups {
		m, ok := testbed.MachineByName(name)
		if !ok {
			return nil, fmt.Errorf("%s: unknown machine %q", c.id, name)
		}
		machines = append(machines, m)
	}
	cluster, err := testbed.Boot(testbed.Options{
		Machines:      machines,
		ProbeInterval: 40 * time.Millisecond,
		GroupPaths:    paths,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(ctx, len(machines)); err != nil {
		return nil, err
	}

	// File servers shaped to their group's rshaper setting.
	addrs := map[string]string{}
	for name, group := range fileServerGroups {
		mbpsPaper := c.group1Mbps
		if group == "group-2" {
			mbpsPaper = c.group2Mbps
		}
		addr, _, err := startFileServer(ctx, mbpsPaper)
		if err != nil {
			return nil, err
		}
		addrs[name] = addr
	}

	client, err := smartsock.NewClient(cluster.WizardAddr(), nil)
	if err != nil {
		return nil, err
	}
	requirement := fmt.Sprintf("monitor_network_bw > %g", c.reqMbps)
	smartSet, err := client.RequestServers(ctx, requirement, c.servers)
	if err != nil {
		return nil, fmt.Errorf("%s: smart selection: %w", c.id, err)
	}

	// Paper: 50000 KB by 100 KB; scaled so the slowest arm stays fast.
	total := int64(256 * 1024)
	if o.Quick {
		total = 96 * 1024
	}
	blk := total / 16

	run := func(names []string) (float64, error) {
		var conns []net.Conn
		defer func() {
			for _, cn := range conns {
				_ = cn.Close()
			}
		}()
		for _, name := range names {
			addr, ok := addrs[name]
			if !ok {
				return 0, fmt.Errorf("no file server for %q", name)
			}
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return 0, err
			}
			conns = append(conns, conn)
		}
		stats, err := massd.Download(ctx, conns, total, blk)
		if err != nil {
			return 0, err
		}
		return stats.ThroughputKBps(), nil
	}

	t := &Table{
		ID:      c.id,
		Title:   c.title,
		Columns: []string{"item", "value"},
	}
	t.AddRow("group-1 bandwidth", fmt.Sprintf("%.2f Mbps (mimas, telesto, lhost)", c.group1Mbps))
	t.AddRow("group-2 bandwidth", fmt.Sprintf("%.2f Mbps (dione, titan-x, pandora-x)", c.group2Mbps))
	t.AddRow("server req", requirement)
	t.AddRow("transmission data", fmt.Sprintf("%d KB by %d KB (scaled from 50000/100)", total/1024, blk/1024))

	var measured []float64
	for i, set := range c.randomSets {
		kbps, err := run(set)
		if err != nil {
			return nil, fmt.Errorf("%s: random set %d: %w", c.id, i+1, err)
		}
		measured = append(measured, kbps)
		t.AddRow(fmt.Sprintf("random%d servers", i+1),
			fmt.Sprintf("%s → %.0f KB/s", strings.Join(set, ", "), kbps))
	}
	smartKBps, err := run(smartSet)
	if err != nil {
		return nil, fmt.Errorf("%s: smart arm: %w", c.id, err)
	}
	measured = append(measured, smartKBps)
	t.AddRow("smart servers", fmt.Sprintf("%s → %.0f KB/s", strings.Join(smartSet, ", "), smartKBps))

	paper := make([]string, len(c.paperKBps))
	for i, v := range c.paperKBps {
		paper[i] = fmt.Sprintf("%.0f", v)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper throughputs (KB/s): %s — smart highest, monotone in fast-server count", strings.Join(paper, ", ")),
		fmt.Sprintf("smart/worst-random ratio: measured %.2f, paper %.2f",
			smartKBps/measured[0], c.paperKBps[len(c.paperKBps)-1]/c.paperKBps[0]),
	)
	return t, nil
}
