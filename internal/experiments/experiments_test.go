package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func quickRun(t *testing.T, id string) *Table {
	t.Helper()
	table, err := Run(id, Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(table.Rows) == 0 {
		t.Fatalf("%s: no rows", id)
	}
	return table
}

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{
		"fig3.3", "fig3.4", "fig3.5", "fig3.6", "fig3.7",
		"table3.3", "table3.4",
		"table4.1", "table5.2",
		"fig5.2", "table5.3", "table5.4", "table5.5", "table5.6",
		"fig5.3", "table5.7", "table5.8", "table5.9",
		"fig5.4", "fig5.5", "fig5.6",
		"appendixA",
		"ablation.probesize", "ablation.encoding", "ablation.transport",
		"ablation.reporting", "ablation.sequential",
		"chaos.loss",
		"wizard.qps",
		"wizard.overload",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Errorf("registry has %d experiments, want at least %d", len(IDs()), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("table9.99", Options{}); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "hello")
	out := tb.Render()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

// noteContains asserts one of the table's notes mentions a substring.
func noteContains(t *testing.T, tb *Table, substr string) {
	t.Helper()
	for _, n := range tb.Notes {
		if strings.Contains(n, substr) {
			return
		}
	}
	t.Errorf("%s: no note contains %q (notes: %v)", tb.ID, substr, tb.Notes)
}

func TestFig33SlopeBreak(t *testing.T) {
	tb := quickRun(t, "fig3.3")
	for _, n := range tb.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("fig3.3 failed to show the MTU slope break: %s", n)
		}
	}
	noteContains(t, tb, "knee")
}

func TestTable33Shape(t *testing.T) {
	// The paper's central measurement claim: sub-MTU probe pairs
	// under-estimate by roughly 4–5× (Speed_init, Eq. 3.7); the
	// 1600~2900 pair comes closest to the truth.
	tb := quickRun(t, "table3.3")
	avg := map[string]float64{}
	for _, row := range tb.Rows {
		if row[3] == "" {
			continue
		}
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad avg cell %q", row[3])
		}
		avg[row[0]] = v
	}
	subMTU := avg["100~500"]
	best := avg["1600~2900"]
	if subMTU <= 0 || best <= 0 {
		t.Fatalf("missing rows: %v", avg)
	}
	if ratio := best / subMTU; ratio < 3 || ratio > 7 {
		t.Errorf("best/subMTU ratio = %.2f, paper shows ≈4.6", ratio)
	}
	for name, v := range avg {
		if name == "pipechar" {
			continue
		}
		if v > best*1.05 {
			t.Errorf("group %s (%.1f) beat the thesis-optimal pair (%.1f)", name, v, best)
		}
	}
}

func TestTable34AllPairsPresent(t *testing.T) {
	tb := quickRun(t, "table3.4")
	if len(tb.Rows) != 6 {
		t.Errorf("3-monitor mesh should have 6 directed records, got %d", len(tb.Rows))
	}
}

func TestTable41MemoryDrop(t *testing.T) {
	tb := quickRun(t, "table4.1")
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	free1, _ := strconv.ParseUint(tb.Rows[0][3], 10, 64)
	free2, _ := strconv.ParseUint(tb.Rows[1][3], 10, 64)
	if free2 >= free1 {
		t.Errorf("free memory did not drop: %d → %d", free1, free2)
	}
	if delta := free1 - free2; delta != 150*1024*1024 {
		t.Errorf("SuperPI delta = %d bytes, want 150 MB", delta)
	}
}

func TestFig52FastClassesWin(t *testing.T) {
	tb := quickRun(t, "fig5.2")
	if len(tb.Rows) != 11 {
		t.Fatalf("rows = %d, want 11 machines", len(tb.Rows))
	}
	// Rows are sorted fastest first; the four fast-class machines must
	// occupy the top four rows (Fig 5.2's finding).
	fast := map[string]bool{"sagit": true, "lhost": true, "dalmatian": true, "dione": true}
	for i := 0; i < 4; i++ {
		if !fast[tb.Rows[i][0]] {
			t.Errorf("row %d is %s; the P3-866/P4-2.4 class should lead", i, tb.Rows[i][0])
		}
	}
}

// smartBeatsRandom extracts the measured improvement note and asserts
// the smart arm won. The arms are wall-clock measurements of a
// sleep-modeled timing experiment, so on a loaded single-core runner
// one quick-mode run can invert by scheduler noise alone (the test
// order shuffle decides which heavy storm test ran just before);
// a fresh second measurement decides, and a real regression fails
// both.
func smartBeatsRandom(t *testing.T, id string) {
	t.Helper()
	improvement := func() float64 {
		tb := quickRun(t, id)
		for _, n := range tb.Notes {
			if strings.HasPrefix(n, "improvement: ") {
				val := strings.TrimPrefix(n, "improvement: ")
				val = val[:strings.Index(val, "%")]
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					t.Fatalf("%s: bad improvement %q", id, val)
				}
				return f
			}
		}
		t.Fatalf("%s: no improvement note", id)
		return 0
	}
	f := improvement()
	if f <= 0 {
		t.Logf("%s: smart behind random (%.1f%%) once; remeasuring", id, f)
		f = improvement()
	}
	if f <= 0 {
		t.Errorf("%s: smart library did not beat random (%.1f%%) in two consecutive runs", id, f)
	}
}

func TestTable53SmartWins(t *testing.T) { smartBeatsRandom(t, "table5.3") }
func TestTable56SmartWins(t *testing.T) { smartBeatsRandom(t, "table5.6") }

func TestTable53SelectsPaperServers(t *testing.T) {
	tb := quickRun(t, "table5.3")
	for _, row := range tb.Rows {
		if row[0] == "server list" {
			if !strings.Contains(row[2], "dalmatian") || !strings.Contains(row[2], "dione") {
				t.Errorf("smart list = %q, paper selects dalmatian, dione", row[2])
			}
			return
		}
	}
	t.Fatal("no server list row")
}

func TestTable56AvoidsBusyServers(t *testing.T) {
	tb := quickRun(t, "table5.6")
	for _, row := range tb.Rows {
		if row[0] == "server list" {
			for _, busy := range []string{"helene", "telesto", "mimas"} {
				if strings.Contains(row[2], busy) {
					t.Errorf("smart list %q contains busy host %s", row[2], busy)
				}
			}
			return
		}
	}
	t.Fatal("no server list row")
}

func TestFig53ShaperTracksRate(t *testing.T) {
	tb := quickRun(t, "fig5.3")
	for _, row := range tb.Rows {
		ratio, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad ratio %q", row[3])
		}
		if ratio < 0.5 || ratio > 1.5 {
			t.Errorf("run %s: throughput/rate ratio %.2f far from 1", row[0], ratio)
		}
	}
}

func TestTable57SmartPicksFastGroup(t *testing.T) {
	tb := quickRun(t, "table5.7")
	var smartRow string
	for _, row := range tb.Rows {
		if row[0] == "smart servers" {
			smartRow = row[1]
		}
	}
	if smartRow == "" {
		t.Fatal("no smart servers row")
	}
	// Group-1 is fast in table5.7; the smart pick must come from it.
	inFast := false
	for _, h := range []string{"mimas", "telesto", "lhost"} {
		if strings.Contains(smartRow, h) {
			inFast = true
		}
	}
	if !inFast {
		t.Errorf("smart pick %q not in the fast group", smartRow)
	}
	for _, h := range []string{"dione", "titan-x", "pandora-x"} {
		if strings.Contains(smartRow, h) {
			t.Errorf("smart pick %q includes slow-group host %s", smartRow, h)
		}
	}
}

func TestTable59SmartHighestThroughput(t *testing.T) {
	extract := func(cell string) float64 {
		i := strings.LastIndex(cell, "→")
		if i < 0 {
			t.Fatalf("no throughput in %q", cell)
		}
		fields := strings.Fields(cell[i+len("→"):])
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("bad throughput in %q", cell)
		}
		return v
	}
	// One measurement: smart throughput and its margin over the best
	// random set. Like smartBeatsRandom, the arms are wall-clock
	// timing-model runs, so a single quick-mode inversion under
	// runner noise gets one fresh remeasure before it counts.
	measure := func() (smart, bestRandom float64) {
		tb := quickRun(t, "table5.9")
		var randoms []float64
		for _, row := range tb.Rows {
			switch {
			case strings.HasPrefix(row[0], "random"):
				randoms = append(randoms, extract(row[1]))
			case row[0] == "smart servers":
				smart = extract(row[1])
			}
		}
		if len(randoms) != 3 || smart == 0 {
			t.Fatalf("rows incomplete: %v / %v", randoms, smart)
		}
		for _, r := range randoms {
			if r > bestRandom {
				bestRandom = r
			}
		}
		return smart, bestRandom
	}
	smart, bestRandom := measure()
	if smart <= bestRandom {
		t.Logf("smart (%.0f KB/s) behind best random (%.0f KB/s) once; remeasuring", smart, bestRandom)
		smart, bestRandom = measure()
	}
	if smart <= bestRandom {
		t.Errorf("smart (%.0f KB/s) did not beat best random set (%.0f KB/s) in two consecutive runs",
			smart, bestRandom)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	const id = "test.duplicate"
	t.Cleanup(func() {
		delete(registry, id)
		delete(duplicates, id)
	})
	stub := func(Options) (*Table, error) { return &Table{}, nil }
	register(id, stub)
	if err := RegistryErr(); err != nil {
		t.Fatalf("single registration reported as conflict: %v", err)
	}
	register(id, stub)
	register(id, stub)
	if err := RegistryErr(); err == nil {
		t.Fatal("RegistryErr did not report the duplicate registration")
	} else if !strings.Contains(err.Error(), id) {
		t.Fatalf("RegistryErr does not name the conflicting id: %v", err)
	}
	if _, err := Run(id, Options{Quick: true}); err == nil {
		t.Fatal("Run accepted an ambiguously registered id")
	} else if !strings.Contains(err.Error(), "3 times") {
		t.Fatalf("Run error does not count the registrations: %v", err)
	}
}

// TestWizardQPSFastPathWins runs the storm experiment in quick mode
// and checks the structural claims: the cached configurations hit the
// requirement cache and out-serve the thesis-faithful sequential
// uncached wizard.
func TestWizardQPSFastPathWins(t *testing.T) {
	tb, err := Run("wizard.qps", Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tb.Rows))
	}
	qps := func(row []string) float64 {
		var v float64
		if _, err := fmt.Sscanf(row[3], "%f", &v); err != nil {
			t.Fatalf("bad req/s cell %q: %v", row[3], err)
		}
		return v
	}
	seq, cached := qps(tb.Rows[0]), qps(tb.Rows[1])
	if cached <= seq {
		t.Errorf("seq/cached (%.0f req/s) does not beat seq/uncached (%.0f req/s)", cached, seq)
	}
	if hits := tb.Rows[0][4]; hits != "0.0%" {
		t.Errorf("uncached config reports cache hits: %s", hits)
	}
	for _, row := range tb.Rows[1:] {
		if row[4] == "0.0%" {
			t.Errorf("config %s never hit the requirement cache", row[0])
		}
	}
}

// TestWizardOverloadProtects runs the overload experiment in quick
// mode and checks its structural claims: four rows, and the protected
// configuration both answers requests and sheds the excess explicitly
// (a non-zero shed fraction) under the 4x storm.
func TestWizardOverloadProtects(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second storm experiment")
	}
	tb, err := Run("wizard.overload", Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tb.Rows))
	}
	cell := func(row []string, col int) float64 {
		var v float64
		if _, err := fmt.Sscanf(row[col], "%f", &v); err != nil {
			t.Fatalf("bad cell %q: %v", row[col], err)
		}
		return v
	}
	if capQPS := cell(tb.Rows[0], 2); capQPS <= 0 {
		t.Errorf("capacity row reports %.0f req/s", capQPS)
	}
	protected := tb.Rows[1]
	if goodput := cell(protected, 2); goodput <= 0 {
		t.Errorf("protected goodput %.0f/s; the plane starved everything", goodput)
	}
	if shed := cell(protected, 4); shed <= 0 {
		t.Errorf("protected shed%% = %.1f under a 4x storm; nothing was shed", shed)
	}
}
