package experiments

// The §5.3.1 matrix multiplication evaluation: the per-machine
// benchmark (Fig 5.2) and the four random-versus-smart comparisons
// (Tables 5.3–5.6).
//
// Sizes are scaled from the paper's 1500×1500 so each arm runs in
// well under a minute of laptop time; both arms of every comparison
// scale identically, so the improvement percentages — the quantity
// the paper reports — are preserved.

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"time"

	"smartsock"
	"smartsock/internal/matrix"
	"smartsock/internal/shaper"
	"smartsock/internal/testbed"
	"smartsock/internal/workload"
)

func init() {
	register("fig5.2", fig52)
	register("table5.3", func(o Options) (*Table, error) { return matrixComparison(o, matrix23) })
	register("table5.4", func(o Options) (*Table, error) { return matrixComparison(o, matrix44) })
	register("table5.5", func(o Options) (*Table, error) { return matrixComparison(o, matrix66) })
	register("table5.6", func(o Options) (*Table, error) { return matrixComparison(o, matrix44load) })
}

// maxSpeed normalises Fig 5.2 speeds so the fastest class runs the
// worker at full rate.
func maxSpeed() float64 {
	best := 0.0
	for _, m := range testbed.Machines() {
		if m.Speed > best {
			best = m.Speed
		}
	}
	return best
}

// workerFleet runs one matrix worker per testbed machine and returns
// the name→address map experiments dial through. In the paper the
// workers are the service programs the selected sockets connect to.
func workerFleet(ctx context.Context, machines []testbed.Machine, opCost time.Duration, busy map[string]bool) (map[string]string, error) {
	norm := maxSpeed()
	addrs := make(map[string]string, len(machines))
	for _, m := range machines {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		w := &matrix.Worker{Name: m.Name, SpeedFactor: m.Speed / norm, OpCost: opCost}
		if busy[m.Name] {
			// SuperPI competes for the CPU: the worker gets about half
			// of it (§5.3.1 experiment 4).
			w.LoadFactor = func() float64 { return 0.5 }
		}
		go w.Serve(ctx, ln)
		addrs[m.Name] = ln.Addr().String()
	}
	return addrs, nil
}

// runMatrix multiplies two n×n matrices across the named workers and
// returns the wall time. linkRate, when positive, caps the master's
// aggregate network rate in bytes/second — the paper's master talks
// to every worker through one 100 Mbps interface, which is what
// compresses the gains of the many-server, small-block experiments
// (the thesis blames exactly this "increased communication overhead"
// for the modest 6v6 result).
func runMatrix(ctx context.Context, names []string, addrs map[string]string, n, blk int, linkRate float64, seed int64) (time.Duration, error) {
	a, err := matrix.NewRandom(n, n, seed)
	if err != nil {
		return 0, err
	}
	b, err := matrix.NewRandom(n, n, seed+1)
	if err != nil {
		return 0, err
	}
	var link *shaper.Bucket
	if linkRate > 0 {
		link, err = shaper.NewBucket(linkRate, 64*1024)
		if err != nil {
			return 0, err
		}
	}
	var conns []net.Conn
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	for _, name := range names {
		addr, ok := addrs[name]
		if !ok {
			return 0, fmt.Errorf("no worker for server %q", name)
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return 0, err
		}
		if link != nil {
			conn = shaper.NewConn(conn, link, link)
		}
		conns = append(conns, conn)
	}
	start := time.Now()
	if _, err := matrix.Distribute(ctx, a, b, blk, conns); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// fig52 reproduces the benchmarking step: the same matrix product on
// every machine alone, revealing the per-host compute speed.
func fig52(o Options) (*Table, error) {
	n, blk := 240, 80
	opCost := 40 * time.Millisecond // per 1e6 multiply-adds at full speed
	if o.Quick {
		n, blk, opCost = 120, 60, 20*time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	machines := testbed.Machines()
	addrs, err := workerFleet(ctx, machines, opCost, nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5.2",
		Title:   fmt.Sprintf("Matrix benchmark per machine (%d×%d, blk=%d, scaled from 1500²/200)", n, n, blk),
		Columns: []string{"machine", "CPU", "time", "relative speed"},
	}
	type row struct {
		m testbed.Machine
		d time.Duration
	}
	var rows []row
	for _, m := range machines {
		d, err := runMatrix(ctx, []string{m.Name}, addrs, n, blk, 0, o.Seed)
		if err != nil {
			return nil, fmt.Errorf("benchmark %s: %w", m.Name, err)
		}
		rows = append(rows, row{m, d})
	}
	best := rows[0].d
	for _, r := range rows {
		if r.d < best {
			best = r.d
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d < rows[j].d })
	for _, r := range rows {
		t.AddRow(r.m.Name, r.m.CPU, r.d.Round(time.Millisecond).String(),
			f2(float64(best)/float64(r.d)))
	}
	t.Notes = append(t.Notes,
		"paper shape: P3 866MHz and P4 2.4GHz outperform the P4 1.6–1.8GHz series for this program",
	)
	return t, nil
}

// matrixCase describes one of the Tables 5.3–5.6 comparisons.
type matrixCase struct {
	id, title   string
	servers     int
	blkOf       func(n int) int
	requirement string
	randomSet   []string // the paper's drawn random set
	paperRandom float64  // seconds, for the notes
	paperSmart  float64
	busyHosts   []string // SuperPI hosts (Table 5.6)
	pool        []string // restrict the cluster to these machines (nil = all)
}

var matrix23 = matrixCase{
	id: "table5.3", title: "2 vs 2 under zero workload", servers: 2,
	blkOf:       func(n int) int { return n * 2 / 5 }, // paper: blk 600 of 1500
	requirement: `(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9) && (host_memory_free > 5)`,
	randomSet:   []string{"lhost", "phoebe"},
	paperRandom: 100.16, paperSmart: 63.00,
}

var matrix44 = matrixCase{
	id: "table5.4", title: "4 vs 4 under zero workload", servers: 4,
	blkOf:       func(n int) int { return n * 2 / 15 }, // paper: blk 200 of 1500
	requirement: `((host_cpu_bogomips > 4000) || (host_cpu_bogomips < 2000)) && (host_cpu_free > 0.9) && (host_memory_free > 5)`,
	randomSet:   []string{"phoebe", "pandora-x", "calypso", "telesto"},
	paperRandom: 62.61, paperSmart: 49.95,
}

var matrix66 = matrixCase{
	id: "table5.5", title: "6 vs 6 under zero workload (blacklist option)", servers: 6,
	blkOf: func(n int) int { return n * 2 / 15 },
	requirement: `(host_cpu_free > 0.9) && (host_memory_free > 5)
user_denied_host1 = telesto
user_denied_host2 = mimas
user_denied_host3 = phoebe
user_denied_host4 = calypso
user_denied_host5 = "titan-x"
`,
	randomSet:   []string{"phoebe", "pandora-x", "calypso", "telesto", "helene", "lhost"},
	paperRandom: 46.90, paperSmart: 43.02,
}

var matrix44load = matrixCase{
	id: "table5.6", title: "4 vs 4 with SuperPI workload on 3 hosts", servers: 4,
	blkOf:       func(n int) int { return n * 2 / 15 },
	requirement: `(host_cpu_free > 0.9) && (host_memory_free > 5) && (host_system_load1 < 0.5)`,
	randomSet:   []string{"mimas", "helene", "calypso", "telesto"},
	paperRandom: 90.93, paperSmart: 66.72,
	busyHosts: []string{"helene", "telesto", "mimas"},
	pool:      []string{"mimas", "telesto", "helene", "phoebe", "calypso", "titan-x", "pandora-x"},
}

// matrixComparison runs one random-versus-smart matrix experiment.
func matrixComparison(o Options, c matrixCase) (*Table, error) {
	n := 360
	opCost := 40 * time.Millisecond
	// The master's LAN interface, scaled like OpCost: the paper moves
	// 2·N³·8/blk bytes through one 100 Mbps NIC, ≈40%% of the wall
	// time in the blk=200 experiments.
	masterLink := 20e6 // bytes/s
	if o.Quick {
		n, opCost, masterLink = 150, 60*time.Millisecond, 80e6
	}
	blk := c.blkOf(n)
	if blk < 1 {
		blk = 1
	}

	var machines []testbed.Machine
	if c.pool == nil {
		machines = testbed.Machines()
	} else {
		for _, name := range c.pool {
			m, ok := testbed.MachineByName(name)
			if !ok {
				return nil, fmt.Errorf("%s: unknown pool machine %q", c.id, name)
			}
			machines = append(machines, m)
		}
	}

	cluster, err := testbed.Boot(testbed.Options{Machines: machines, ProbeInterval: 40 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	// Start the workload before waiting, so the wizard sees busy hosts.
	for _, host := range c.busyHosts {
		src, ok := cluster.Sources[host]
		if !ok {
			return nil, fmt.Errorf("%s: busy host %q not in pool", c.id, host)
		}
		release := workload.Apply(src, workload.SuperPI())
		defer release()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(ctx, len(machines)); err != nil {
		return nil, err
	}
	// One extra probe interval so post-workload reports are the ones
	// in the database.
	sleep(100 * time.Millisecond)

	busy := make(map[string]bool, len(c.busyHosts))
	for _, h := range c.busyHosts {
		busy[h] = true
	}
	addrs, err := workerFleet(ctx, machines, opCost, busy)
	if err != nil {
		return nil, err
	}

	client, err := smartsock.NewClient(cluster.WizardAddr(), nil)
	if err != nil {
		return nil, err
	}
	smartSet, err := client.RequestServers(ctx, c.requirement, c.servers)
	if err != nil {
		return nil, fmt.Errorf("%s: smart selection: %w", c.id, err)
	}

	randomTime, err := runMatrix(ctx, c.randomSet, addrs, n, blk, masterLink, o.Seed)
	if err != nil {
		return nil, fmt.Errorf("%s: random arm: %w", c.id, err)
	}
	smartTime, err := runMatrix(ctx, smartSet, addrs, n, blk, masterLink, o.Seed)
	if err != nil {
		return nil, fmt.Errorf("%s: smart arm: %w", c.id, err)
	}

	t := &Table{
		ID:      c.id,
		Title:   c.title,
		Columns: []string{"item", "Random", "Smart Library"},
	}
	t.AddRow("matrix size", fmt.Sprintf("%d×%d, blk=%d", n, n, blk), fmt.Sprintf("%d×%d, blk=%d", n, n, blk))
	t.AddRow("no. of servers", fmt.Sprintf("%d", c.servers), fmt.Sprintf("%d", c.servers))
	t.AddRow("requirement", "null", strings.ReplaceAll(strings.TrimSpace(c.requirement), "\n", "; "))
	t.AddRow("server list", strings.Join(c.randomSet, ", "), strings.Join(smartSet, ", "))
	t.AddRow("time used (s)", f2(randomTime.Seconds()), f2(smartTime.Seconds()))
	improvement := randomTime.Seconds() - smartTime.Seconds()
	t.Notes = append(t.Notes,
		fmt.Sprintf("improvement: %s (paper: %.2f s → %.2f s, %s)",
			pct(improvement, randomTime.Seconds()),
			c.paperRandom, c.paperSmart,
			pct(c.paperRandom-c.paperSmart, c.paperRandom)),
		"random arm uses the paper's published random draw for reproducibility",
	)
	return t, nil
}
