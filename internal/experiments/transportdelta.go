package experiments

// The delta-transport experiment: wire bytes per status epoch for the
// full-snapshot thesis protocol versus the delta protocol, swept over
// fleet size and per-epoch change rate. DESIGN.md's status
// distribution section and EXPERIMENTS.md's transport.delta entry
// carry the measured numbers; scripts/bench.sh pins the unchanged-
// fleet ratio in BENCH_transport.json.

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"smartsock/internal/obs"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
	"smartsock/internal/transport"
)

func init() {
	register("transport.delta", transportDelta)
}

// transportDelta runs one passive transmitter per configuration and
// pulls from it over a real loopback TCP connection, counting reply
// bytes. Each pull is one status epoch; between epochs a fixed
// fraction of the fleet's records change content. The thesis protocol
// (compat) re-ships the whole database every epoch; the delta
// protocol ships only the changed records, so the unchanged-fleet row
// is where the ≥10× reduction shows.
func transportDelta(o Options) (*Table, error) {
	fleets := []int{100, 1000}
	epochs := 8
	if o.Quick {
		fleets = []int{50, 150}
		epochs = 4
	}
	rates := []float64{0, 0.01, 0.10}

	t := &Table{
		ID:      "transport.delta",
		Title:   "Wire bytes per status epoch: full snapshots vs deltas",
		Columns: []string{"fleet", "changed/epoch", "full B/epoch", "delta B/epoch", "reduction"},
	}
	// One registry spans every delta-protocol run, so the obs snapshot
	// recorded in the notes is the experiment's own activity read back
	// through the same interface the -debug endpoint serves.
	reg := obs.NewRegistry()
	for _, n := range fleets {
		for _, rate := range rates {
			full, err := measureTransport(n, rate, epochs, true, nil)
			if err != nil {
				return nil, fmt.Errorf("transport.delta full n=%d: %w", n, err)
			}
			delta, err := measureTransport(n, rate, epochs, false, reg)
			if err != nil {
				return nil, fmt.Errorf("transport.delta delta n=%d: %w", n, err)
			}
			reduction := "n/a"
			if delta > 0 {
				reduction = fmt.Sprintf("%.1fx", full/delta)
			}
			t.AddRow(
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", int(rate*float64(n))),
				fmt.Sprintf("%.0f", full),
				fmt.Sprintf("%.0f", delta),
				reduction,
			)
		}
	}
	snap := reg.Snapshot()
	t.Notes = append(t.Notes,
		"each epoch is one distributed-mode pull over loopback TCP; bytes are the puller's read side",
		"an unchanged fleet costs the delta protocol one snap-mark frame; the push path skips even that",
		fmt.Sprintf("obs across all delta runs: tx snapshots=%d delta_epochs=%d skipped=%d; recv frames=%d resyncs=%d torn=%d",
			snap.Counters["transport_tx_snapshots"], snap.Counters["transport_tx_delta_epochs"],
			snap.Counters["transport_tx_epochs_skipped"], snap.Counters["transport_recv_frames"],
			snap.Counters["transport_recv_resyncs"], snap.Counters["transport_recv_torn"]),
	)
	return t, nil
}

// countingConn counts the bytes read off a pull connection.
type countingConn struct {
	net.Conn
	read *atomic.Int64
}

func (c *countingConn) Read(b []byte) (int, error) {
	//lint:ignore deadline transparent wrapper: the pull loop owns the deadlines
	n, err := c.Conn.Read(b)
	c.read.Add(int64(n))
	return n, err
}

// measureTransport syncs a puller against a fleet of n hosts, then
// runs the given number of epochs with rate×n content changes each
// and reports the mean reply bytes per epoch.
func measureTransport(n int, rate float64, epochs int, compat bool, reg *obs.Registry) (float64, error) {
	src := store.New()
	hosts := make([]string, n)
	for i := 0; i < n; i++ {
		hosts[i] = fmt.Sprintf("node-%04d", i)
		src.PutSys(sysinfo.Idle(hosts[i], 1000+float64(i%7)*500, 256))
	}

	tx, err := transport.NewTransmitterObs(src, nil, reg)
	if err != nil {
		return 0, err
	}
	tx.Compat = compat
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go tx.ServePassive(ctx, ln)

	dst := store.New()
	recv, err := transport.NewReceiverObs(dst, "127.0.0.1:0", nil, reg)
	if err != nil {
		return 0, err
	}
	recv.Compat = compat
	var read atomic.Int64
	recv.Dial = func(network, addr string) (net.Conn, error) {
		conn, err := net.DialTimeout(network, addr, 2*time.Second)
		if err != nil {
			return nil, err
		}
		return &countingConn{Conn: conn, read: &read}, nil
	}
	addrs := []string{ln.Addr().String()}

	// Initial sync: both protocols ship the full database once.
	if err := recv.PullFrom(addrs, 5*time.Second); err != nil {
		return 0, err
	}
	read.Store(0)

	changed := int(rate * float64(n))
	for e := 0; e < epochs; e++ {
		for j := 0; j < changed; j++ {
			i := (e*changed + j) % n
			s := sysinfo.Idle(hosts[i], 1000+float64(i%7)*500, 256)
			s.Load1 = float64(e+1) + float64(j)/100
			src.PutSys(s)
		}
		if err := recv.PullFrom(addrs, 5*time.Second); err != nil {
			return 0, err
		}
	}
	return float64(read.Load()) / float64(epochs), nil
}
