package experiments

// Appendix A: pipechar's hop-by-hop traces from sagit to the remote
// hosts. The original listings walk 23 WAN hops with per-link
// bandwidth estimates and frequent "bad fluctuation" markers; this
// reproduction traces a condensed version of the same route (campus →
// SingAREN → trans-Pacific backbone → campus) with the TTL-limited
// probing mode of the bwest package.

import (
	"fmt"
	"time"

	"smartsock/internal/bwest"
	"smartsock/internal/simnet"
	"smartsock/internal/testbed"
)

func init() {
	register("appendixA", appendixA)
}

// cmuiRoute is the sagit→cmui route of Appendix A.1, condensed to its
// eight distinct segments.
func cmuiRoute(seed int64) (*simnet.Path, []string, error) {
	names := []string{
		"gw-a-15-810.comp.nus.edu.sg",
		"core-au-vlan51.priv.nus.edu.sg",
		"border-pgp-m1.nus.edu.sg",
		"ge3-12.pgp-dr1.singaren.net.sg",
		"pos1-0.seattle-cr1.singaren.net.sg",
		"kscyng-dnvrng.abilene.ucaid.edu",
		"CORE0-VL501.GW.CMU.NET",
		"cmui",
	}
	p, err := simnet.New(simnet.Config{
		Name: "sagit-cmui-trace", MTU: 1500, SpeedInit: testbed.SpeedInit,
		SysOverhead: 40 * time.Microsecond, Jitter: 0.12, Seed: seed,
		Hops: []simnet.Hop{
			{Capacity: 100e6, PropDelay: 200 * time.Microsecond, ProcDelay: 3 * time.Microsecond},                  // campus edge (100BT, the Appendix's "96.644 Mbps 100BT")
			{Capacity: 1e9, PropDelay: 300 * time.Microsecond, ProcDelay: 4 * time.Microsecond},                    // campus core
			{Capacity: 155e6, PropDelay: 2 * time.Millisecond, ProcDelay: 5 * time.Microsecond, Utilization: 0.2},  // border STM-1
			{Capacity: 622e6, PropDelay: 15 * time.Millisecond, ProcDelay: 8 * time.Microsecond, Utilization: 0.3}, // SingAREN
			{Capacity: 2.5e9, PropDelay: 90 * time.Millisecond, ProcDelay: 8 * time.Microsecond, Utilization: 0.3}, // trans-Pacific
			{Capacity: 10e9, PropDelay: 25 * time.Millisecond, ProcDelay: 8 * time.Microsecond, Utilization: 0.2},  // Abilene backbone
			{Capacity: 1e9, PropDelay: 2 * time.Millisecond, ProcDelay: 5 * time.Microsecond, Utilization: 0.1},    // CMU gateway
			{Capacity: 100e6, PropDelay: 300 * time.Microsecond, ProcDelay: 3 * time.Microsecond},                  // cmui host link
		},
	})
	return p, names, err
}

// appendixA regenerates the hop-by-hop pipechar trace.
func appendixA(o Options) (*Table, error) {
	path, names, err := cmuiRoute(o.Seed)
	if err != nil {
		return nil, err
	}
	probes := 10
	if o.Quick {
		probes = 4
	}
	reports, err := bwest.Trace(path, bwest.TraceConfig{S1: 1600, S2: 2900, ProbesPerHop: probes})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "appendixA",
		Title:   "Pipechar hop-by-hop trace, sagit → cmui (condensed route)",
		Columns: []string{"hop", "router", "min RTT", "avg RTT", "link estimate"},
	}
	flukes := 0
	for i, r := range reports {
		link := fmt.Sprintf("%.3f Mbps", r.LinkBandwidth/1e6)
		if r.Fluctuation {
			link = "bad fluctuation"
			flukes++
		}
		t.AddRow(fmt.Sprintf("%d", i+1), names[i],
			r.MinRTT.Round(10*time.Microsecond).String(),
			r.AvgRTT.Round(10*time.Microsecond).String(),
			link)
	}
	t.Notes = append(t.Notes,
		"Appendix A.1 shape: campus hops in single-digit ms resolve cleanly (first link ≈96.6 Mbps 100BT); WAN hops sit at 300–600 ms and fluctuate",
		fmt.Sprintf("%d of %d hops marked 'bad fluctuation' (the original listing marks 7 of 23)", flukes, len(reports)),
	)
	return t, nil
}
