// Package experiments regenerates every table and figure in the
// thesis's measurement and evaluation chapters (Chapters 3–5). Each
// experiment is a named function returning a Table — the same rows
// the paper prints — runnable individually through cmd/smartbench or
// in bulk. The EXPERIMENTS.md file at the repository root records
// paper-versus-measured values for each one.
//
// Two fidelity levels exist: the default sizes make trends obvious
// and finish in seconds; Quick mode shrinks sweeps and transfers for
// use inside go test and testing.B loops.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// sleep is the package's injected pause, shared by the experiment
// files for settle waits. Tests may swap it; keeping it a variable
// (initialised to time.Sleep as a value, never called raw) is the
// project's sleepfree idiom.
var sleep = time.Sleep

// Table is one regenerated table or figure, rendered as rows.
type Table struct {
	ID      string // "table5.3", "fig3.7", …
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render prints the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tunes a run.
type Options struct {
	// Quick shrinks workloads for test/bench use.
	Quick bool
	// Seed makes the run reproducible.
	Seed int64
}

// Fn runs one experiment.
type Fn func(Options) (*Table, error)

// registry maps experiment IDs to implementations. Populated by the
// per-chapter files' init functions. A duplicate registration is a
// programming error, but one that must not crash an embedding
// process: register keeps the first implementation, records the
// conflict, and Run refuses the ambiguous ID with an error.
var registry = map[string]Fn{}

// duplicates counts extra registrations per conflicting ID.
var duplicates = map[string]int{}

func register(id string, fn Fn) {
	if _, dup := registry[id]; dup {
		duplicates[id]++
		return
	}
	registry[id] = fn
}

// RegistryErr reports registration conflicts, nil if the registry is
// sound. Embedders that want to fail fast can check it at startup
// instead of discovering a conflict on the first ambiguous Run.
func RegistryErr() error {
	if len(duplicates) == 0 {
		return nil
	}
	ids := make([]string, 0, len(duplicates))
	for id := range duplicates {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return fmt.Errorf("experiments: duplicate registrations for %v", ids)
}

// IDs lists all registered experiments in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, opts Options) (*Table, error) {
	if n := duplicates[id]; n > 0 {
		return nil, fmt.Errorf("experiments: id %q was registered %d times; refusing the ambiguous registry", id, n+1)
	}
	fn, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return fn(opts)
}

// formatting helpers shared by the experiment files.

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func mbps(bitsPerSec float64) string { return fmt.Sprintf("%.2f", bitsPerSec/1e6) }

func pct(delta, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", delta/base*100)
}

// registerAlias exposes a figure that plots an already-registered
// table's data under its own ID, so the registry covers every figure
// in the thesis by name.
func registerAlias(figID, tableID, caption string) {
	register(figID, func(o Options) (*Table, error) {
		t, err := Run(tableID, o)
		if err != nil {
			return nil, err
		}
		t.ID = figID
		t.Notes = append(t.Notes, caption)
		return t, nil
	})
}

func init() {
	registerAlias("fig3.7", "table3.3", "Fig 3.7 is the bar-chart rendering of Table 3.3")
	registerAlias("fig5.4", "table5.7", "Fig 5.4 plots the Table 5.7 throughputs")
	registerAlias("fig5.5", "table5.8", "Fig 5.5 plots the Table 5.8 throughputs")
	registerAlias("fig5.6", "table5.9", "Fig 5.6 plots the Table 5.9 throughputs")
}
