package experiments

// The overload experiment: goodput and tail latency of the wizard
// under a request storm paced at 4× its measured capacity, with the
// admission-control plane armed, disarmed, and in the thesis-faithful
// compat configuration. DESIGN.md's overload-protection section and
// EXPERIMENTS.md's wizard.overload entry carry the measured numbers;
// BenchmarkOverloadStorm (internal/wizard) is the gated CI twin.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"smartsock/internal/core"
	"smartsock/internal/obs"
	"smartsock/internal/overload"
	"smartsock/internal/proto"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
	"smartsock/internal/wizard"
)

func init() {
	register("wizard.overload", wizardOverload)
}

const (
	// ovlDeadline is the goodput criterion: a reply later than this is
	// as useless to its client as no reply.
	ovlDeadline = 100 * time.Millisecond
	// ovlHandlerCost pins the wizard's capacity well below what
	// open-loop loopback senders can generate, so "4× capacity" is a
	// real overload.
	ovlHandlerCost = 100 * time.Microsecond
	// ovlRecvBuf keeps the unprotected rows honest: the excess queue
	// must live somewhere measurable, not vanish into default-sized
	// kernel buffer drops.
	ovlRecvBuf = 4 << 20
	ovlClients = 8
)

// wizardOverload storms one in-process wizard per configuration at 4×
// its measured closed-loop capacity and reports goodput (replies
// inside the deadline), the shed fraction and the client-observed p99
// latency:
//
//   - capacity: closed-loop windowed clients establish the service
//     rate the storm is scaled from;
//   - protected 4×: bounded ingress queues + CoDel shedding — excess
//     load surfaces as cheap "overloaded, retry-after" replies and the
//     served tail stays near the sojourn target;
//   - bare 4×: same serving plane, admission off — queue delay grows
//     past the deadline and goodput collapses;
//   - compat 4× (thesis §3.6.1): the sequential unbatched loop under
//     the same storm, the failure mode the plane exists to prevent.
func wizardOverload(o Options) (*Table, error) {
	capProbe, stormN := 6000, 12000
	if o.Quick {
		capProbe, stormN = 1200, 1600
	}

	db := store.New()
	for i := 0; i < 11; i++ {
		db.PutSys(sysinfo.Idle(fmt.Sprintf("node-%02d", i), 1000+float64(i)*550, 128<<(i%4)))
	}

	protected := func() wizard.Config {
		return wizard.Config{
			Addr:    "127.0.0.1:0",
			Update:  func(context.Context) error { sleep(ovlHandlerCost); return nil },
			Workers: 4, Batch: 16, Shards: 4,
			RecvBuf: ovlRecvBuf,
		}
	}
	compat := wizard.Config{
		Addr:    "127.0.0.1:0",
		Update:  func(context.Context) error { sleep(ovlHandlerCost); return nil },
		Workers: 1, Batch: 1, Shards: 1, CacheSize: -1,
		RecvBuf: ovlRecvBuf,
	}

	// Capacity first: the closed-loop service rate every storm row's
	// injection rate is derived from.
	capQPS, err := ovlCapacity(db, protected(), capProbe)
	if err != nil {
		return nil, fmt.Errorf("wizard.overload capacity: %w", err)
	}
	rate := 4 * capQPS

	t := &Table{
		ID:      "wizard.overload",
		Title:   "Wizard goodput under a 4x request storm, admission plane on/off",
		Columns: []string{"config", "inject/s", "goodput/s", "timely%", "shed%", "client p99"},
	}
	t.AddRow("capacity (closed-loop)", "-", fmt.Sprintf("%.0f", capQPS), "100.0%", "0.0%", "-")

	// The queue bound is sized against the pinned service rate: with
	// timer granularity flooring the handler near 1ms, 8 queued
	// requests is ~10ms of standing delay per worker — the CoDel
	// controller operates inside that ceiling.
	gate := overload.New(overload.Config{MaxQueue: 8})
	rows := []struct {
		label string
		cfg   wizard.Config
		gate  *overload.Gate
	}{
		{"protected 4x (CoDel+bounded queues)", protected(), gate},
		{"bare 4x (no admission plane)", protected(), nil},
		{"compat 4x (thesis §3.6.1 loop)", compat, nil},
	}
	for _, r := range rows {
		r.cfg.Overload = r.gate
		res, err := ovlStorm(db, r.cfg, stormN, rate)
		if err != nil {
			return nil, fmt.Errorf("wizard.overload %s: %w", r.label, err)
		}
		t.AddRow(r.label,
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.0f", float64(res.timely)/res.elapsed.Seconds()),
			fmt.Sprintf("%.1f%%", 100*float64(res.timely)/float64(res.sent)),
			fmt.Sprintf("%.1f%%", 100*float64(res.shed)/float64(res.sent)),
			fmt.Sprintf("%.0fms", float64(res.latency.Snapshot().Quantile(0.99))/1e6))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("goodput = non-shed replies inside the %v deadline; handler cost pinned at %v per request", ovlDeadline, ovlHandlerCost),
		fmt.Sprintf("protected sojourn p99 %.1fms against the %v CoDel target (overload_queue_delay)",
			float64(gate.QueueDelay().Snapshot().Quantile(0.99))/1e6, gate.Target()),
		"client p99 is over answered requests only; a 2× overflow value means the tail blew past the histogram — the collapse the plane prevents",
	)
	return t, nil
}

// ovlBoot starts one wizard over db in the given configuration and
// returns it with its teardown.
func ovlBoot(db *store.DB, cfg wizard.Config) (*wizard.Wizard, func(), error) {
	sel, err := core.New(db, core.Config{})
	if err != nil {
		return nil, nil, err
	}
	cfg.Selector = sel
	w, err := wizard.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Run(ctx) }()
	return w, func() { cancel(); <-done }, nil
}

// ovlCapacity measures the closed-loop service rate: n requests from
// ovlClients windowed clients (the stormWindowedClient harness) with
// every worker kept saturated.
func ovlCapacity(db *store.DB, cfg wizard.Config, n int) (float64, error) {
	w, stop, err := ovlBoot(db, cfg)
	if err != nil {
		return 0, err
	}
	defer stop()
	datagrams := [][]byte{proto.MarshalRequest(&proto.Request{
		Seq: 1, ServerNum: 4,
		Option: proto.OptPartialOK | proto.OptRankByExpr,
		Detail: stormRequirements[0],
	})}
	errs := make(chan error, ovlClients)
	start := time.Now()
	for c := 0; c < ovlClients; c++ {
		count := n / ovlClients
		if c < n%ovlClients {
			count++
		}
		//lint:ignore leakygo every client sends exactly one value on the buffered errs channel; the receive loop below joins all of them
		go func(count int) {
			errs <- stormWindowedClient(w.Addr(), count, datagrams)
		}(count)
	}
	for c := 0; c < ovlClients; c++ {
		if cerr := <-errs; cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return 0, err
	}
	return float64(n) / time.Since(start).Seconds(), nil
}

// ovlResult classifies one open-loop storm's replies.
type ovlResult struct {
	sent    int
	timely  uint64 // non-shed replies inside ovlDeadline
	late    uint64 // non-shed replies past the deadline
	shed    uint64 // "overloaded, retry-after" replies
	elapsed time.Duration
	latency *obs.Histogram // client-observed request→reply latency
}

// ovlStorm injects n requests at the given aggregate rate across
// ovlClients sockets, never waiting for replies, and classifies every
// reply against the goodput deadline.
func ovlStorm(db *store.DB, cfg wizard.Config, n int, rate float64) (*ovlResult, error) {
	w, stop, err := ovlBoot(db, cfg)
	if err != nil {
		return nil, err
	}
	defer stop()

	sendNanos := make([]atomic.Int64, n)
	res := &ovlResult{sent: n, latency: obs.NewHistogram(obs.QueueDelayBuckets)}
	interval := time.Duration(float64(time.Second) * ovlClients / rate)
	var firstErr atomic.Value

	var wg sync.WaitGroup
	start := time.Now()
	base := 0
	for c := 0; c < ovlClients; c++ {
		count := n / ovlClients
		if c < n%ovlClients {
			count++
		}
		wg.Add(1)
		go func(c, base, count int) {
			defer wg.Done()
			conn, err := net.Dial("udp", w.Addr())
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			defer conn.Close()

			var rd sync.WaitGroup
			rd.Add(1)
			go func() {
				defer rd.Done()
				buf := make([]byte, 64*1024)
				for {
					if err := conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond)); err != nil {
						return
					}
					m, err := conn.Read(buf)
					if err != nil {
						return // idle: this socket's replies are drained
					}
					now := time.Now().UnixNano()
					reply, err := proto.UnmarshalReply(buf[:m])
					if err != nil || int(reply.Seq) >= n {
						continue
					}
					if _, shed := proto.RetryAfter(reply.Err); shed {
						atomic.AddUint64(&res.shed, 1)
						continue
					}
					lat := now - sendNanos[reply.Seq].Load()
					res.latency.Observe(lat)
					if lat <= int64(ovlDeadline) {
						atomic.AddUint64(&res.timely, 1)
					} else {
						atomic.AddUint64(&res.late, 1)
					}
				}
			}()

			req := proto.Request{
				ServerNum: 4,
				Option:    proto.OptPartialOK | proto.OptRankByExpr,
				Detail:    stormRequirements[0],
			}
			next := time.Now()
			for i := 0; i < count; i++ {
				if d := time.Until(next); d > time.Millisecond {
					sleep(d)
				}
				next = next.Add(interval)
				req.Seq = uint32(base + i)
				sendNanos[base+i].Store(time.Now().UnixNano())
				if _, err := conn.Write(proto.MarshalRequest(&req)); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
			rd.Wait()
		}(c, base, count)
		base += count
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	// The drain window (no reply for 300ms) is teardown, not storm
	// time; goodput is measured against the injection window.
	res.elapsed = time.Since(start) - 300*time.Millisecond
	if res.elapsed <= 0 {
		res.elapsed = time.Since(start)
	}
	return res, nil
}
