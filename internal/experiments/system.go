package experiments

// Chapter 4/5 system studies: the SuperPI memory footprint
// comparison (Table 4.1) and the per-component resource budget with
// 11 probes reporting (Table 5.2).

import (
	"context"
	"fmt"
	"time"

	"smartsock/internal/status"
	"smartsock/internal/sysinfo"
	"smartsock/internal/testbed"
	"smartsock/internal/workload"
)

func init() {
	register("table4.1", table41)
	register("table5.2", table52)
}

// table41 reproduces Table 4.1: memory status before and after
// starting SuperPI on a 256 MB host.
func table41(o Options) (*Table, error) {
	src := sysinfo.NewSynthetic(sysinfo.Idle("mimas", 3394.76, 256))
	before, err := src.Snapshot()
	if err != nil {
		return nil, err
	}
	release := workload.Apply(src, workload.SuperPI())
	defer release()
	after, err := src.Snapshot()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table4.1",
		Title:   "Memory usage before (Mem1) and after (Mem2) SuperPI, bytes",
		Columns: []string{"", "total", "used", "free"},
	}
	row := func(label string, s status.ServerStatus) {
		t.AddRow(label,
			fmt.Sprintf("%d", s.MemTotal),
			fmt.Sprintf("%d", s.MemUsed),
			fmt.Sprintf("%d", s.MemFree))
	}
	row("Mem1", before)
	row("Mem2", after)
	t.Notes = append(t.Notes,
		fmt.Sprintf("SuperPI consumed %d MB (paper: ≈150 MB with parameter 25)",
			(before.MemFree-after.MemFree)/(1024*1024)),
	)
	return t, nil
}

// table52 reproduces Table 5.2: resource figures per component with
// 11 probes running. CPU percentages on the original P4 are not
// reproducible on different hardware, so the measured columns here
// are the ones that transfer: message sizes, message rates and the
// network bandwidth each component consumes — the figures the thesis
// derives its capacity claims from.
func table52(o Options) (*Table, error) {
	interval := 100 * time.Millisecond
	settle := 6 * interval
	if o.Quick {
		settle = 4 * interval
	}
	cluster, err := testbed.Boot(testbed.Options{ProbeInterval: interval})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cluster.WaitSettled(ctx, len(cluster.Machines)); err != nil {
		return nil, err
	}
	sleep(settle)

	// Measure the real report size of a live host.
	rec, ok := cluster.WizardDB.GetSys("sagit")
	if !ok {
		return nil, fmt.Errorf("table5.2: sagit never reported")
	}
	reportBytes := len(status.EncodeReport(&rec.Status))
	probes := len(cluster.Machines)
	perProbeBW := float64(reportBytes) / interval.Seconds()
	sysMonBW := perProbeBW * float64(probes)

	sys, net, sec := cluster.WizardDB.Snapshot()
	snapshotBytes := len(status.MarshalSystemBatch(sys)) +
		len(status.MarshalNetBatch(net)) + len(status.MarshalSecBatch(sec)) + 15 // 3 frame headers
	txBW := float64(snapshotBytes) / interval.Seconds()

	t := &Table{
		ID:      "table5.2",
		Title:   fmt.Sprintf("System resources with %d probes at %v interval", probes, interval),
		Columns: []string{"program", "unit msg(B)", "msgs/s", "net bandwidth", "transport"},
	}
	rate := 1 / interval.Seconds()
	t.AddRow("System Probe", fmt.Sprintf("%d", reportBytes), f1(rate),
		fmt.Sprintf("%.1f KBps", perProbeBW/1024), "UDP")
	t.AddRow("System Monitor", fmt.Sprintf("%d", reportBytes), f1(rate*float64(probes)),
		fmt.Sprintf("%.1f KBps", sysMonBW/1024), "UDP")
	t.AddRow("Security Monitor", "-", f1(rate), "(log file)", "-")
	t.AddRow("Transmitter", fmt.Sprintf("%d", snapshotBytes), f1(rate),
		fmt.Sprintf("%.1f KBps", txBW/1024), "TCP")
	t.AddRow("Receiver", fmt.Sprintf("%d", snapshotBytes), f1(rate),
		fmt.Sprintf("%.1f KBps", txBW/1024), "TCP")
	t.AddRow("Wizard", "~150 req / reply", "per request", "<1 KBps", "UDP")
	t.Notes = append(t.Notes,
		"paper (2 s interval): probe 0.5–0.6 KBps, monitor 5.7 KBps, transmitter/receiver 1.2 KBps",
		fmt.Sprintf("probe report is %d bytes (paper: <200 B); scale bandwidth by interval ratio to compare", reportBytes),
	)
	return t, nil
}
