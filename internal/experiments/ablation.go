package experiments

// Ablations for the design choices DESIGN.md calls out. These go
// beyond the thesis's own tables: each one varies a single design
// decision and shows what it buys, using the same substrates as the
// paper experiments.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"smartsock/internal/bwest"
	"smartsock/internal/monitor"
	"smartsock/internal/probe"
	"smartsock/internal/simnet"
	"smartsock/internal/status"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
	"smartsock/internal/testbed"
	"smartsock/internal/transport"
)

func init() {
	register("ablation.probesize", ablationProbeSize)
	register("ablation.encoding", ablationEncoding)
	register("ablation.transport", ablationTransport)
	register("ablation.reporting", ablationReporting)
	register("ablation.sequential", ablationSequential)
}

// ablationProbeSize generalises Table 3.3: the probe-size rules of
// §3.3.2 evaluated on three path regimes, reporting each pair's
// relative error against ground truth. It shows *when* the rules
// matter: the sub-MTU penalty is constant, the fragment-count rule
// matters most on loaded paths, and no pair survives WAN noise.
func ablationProbeSize(o Options) (*Table, error) {
	runs := 6
	if o.Quick {
		runs = 3
	}
	mkPath := func(name string, util, jitter float64, prop time.Duration) (*simnet.Path, error) {
		return simnet.New(simnet.Config{
			Name: name, MTU: 1500, SpeedInit: testbed.SpeedInit,
			SysOverhead: 40 * time.Microsecond, Jitter: jitter, Seed: o.Seed,
			Hops: []simnet.Hop{
				{Capacity: 100e6, PropDelay: prop, ProcDelay: 3 * time.Microsecond, Utilization: util},
				{Capacity: 1e9, PropDelay: prop, ProcDelay: 3 * time.Microsecond},
			},
		})
	}
	paths := []struct {
		label  string
		util   float64
		jitter float64
		prop   time.Duration
	}{
		{"quiet LAN", 0, 0.015, 15 * time.Microsecond},
		{"loaded LAN (40%)", 0.4, 0.08, 15 * time.Microsecond},
		{"WAN (30 ms, noisy)", 0.3, 0.25, 15 * time.Millisecond},
	}
	pairs := []struct{ s1, s2 int }{
		{100, 500},   // both below MTU
		{1000, 2000}, // straddling the MTU
		{2000, 6000}, // unequal fragment counts
		{1600, 2900}, // thesis-optimal
	}
	t := &Table{
		ID:      "ablation.probesize",
		Title:   "Probe-size rules (§3.3.2) across path regimes: signed error vs truth",
		Columns: []string{"path", "pair(B)", "estimate(Mbps)", "truth(Mbps)", "error"},
	}
	for _, pc := range paths {
		path, err := mkPath(pc.label, pc.util, pc.jitter, pc.prop)
		if err != nil {
			return nil, err
		}
		truth := path.EffectiveBandwidth()
		for _, pr := range pairs {
			cell := "failed"
			st, err := bwest.Estimate(path, bwest.StreamConfig{S1: pr.s1, S2: pr.s2, Runs: runs})
			est := ""
			if err == nil {
				est = mbps(st.Avg)
				cell = pct(st.Avg-truth, truth)
			}
			t.AddRow(pc.label, fmt.Sprintf("%d~%d", pr.s1, pr.s2), est, mbps(truth), cell)
		}
	}
	t.Notes = append(t.Notes,
		"sub-MTU pairs sit ≈−78% everywhere (Speed_init); the optimal pair is the only one within a few percent on LANs",
		"on the noisy WAN every pair degrades: single-ended probing needs the min-filter plus a quiet path (§3.3.1)",
	)
	return t, nil
}

// ablationEncoding quantifies the §3.2.1-vs-§3.5.1 trade-off: ASCII
// reports are endian-proof but bigger; binary batches are compact and
// faster to decode, which is why the transmitter uses them for bulk
// transfer while probes keep strings.
func ablationEncoding(o Options) (*Table, error) {
	iters := 20000
	if o.Quick {
		iters = 2000
	}
	sizes := []int{1, 11, 100}
	t := &Table{
		ID:      "ablation.encoding",
		Title:   "Status encoding: ASCII report vs binary batch",
		Columns: []string{"servers", "ascii bytes", "binary bytes", "ascii enc+dec", "binary enc+dec"},
	}
	for _, n := range sizes {
		recs := make([]status.ServerStatus, n)
		for i := range recs {
			recs[i] = sysinfo.Idle(fmt.Sprintf("host-%03d", i), 3394.76, 256)
			recs[i].Load1 = 0.42
		}
		asciiBytes := 0
		for i := range recs {
			asciiBytes += len(status.EncodeReport(&recs[i]))
		}
		binBytes := len(status.MarshalSystemBatch(recs))

		start := time.Now()
		for it := 0; it < iters/n; it++ {
			for i := range recs {
				enc := status.EncodeReport(&recs[i])
				if _, err := status.DecodeReport(enc); err != nil {
					return nil, err
				}
			}
		}
		asciiTime := time.Since(start)

		start = time.Now()
		for it := 0; it < iters/n; it++ {
			enc := status.MarshalSystemBatch(recs)
			if _, err := status.UnmarshalSystemBatch(enc); err != nil {
				return nil, err
			}
		}
		binTime := time.Since(start)

		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", asciiBytes), fmt.Sprintf("%d", binBytes),
			asciiTime.Round(time.Microsecond).String(), binTime.Round(time.Microsecond).String())
	}
	t.Notes = append(t.Notes,
		"ASCII wins interop (no endian/word-size contract, §3.2.1); binary wins bulk transfer (§3.5.1) — the system uses each where the thesis does",
	)
	return t, nil
}

// ablationTransport compares the two transmitter modes (§3.5.1):
// centralized push pays standing bandwidth for instant answers;
// distributed pull pays per-request latency for a silent idle
// network.
func ablationTransport(o Options) (*Table, error) {
	nServers := 11
	src := store.New()
	for i := 0; i < nServers; i++ {
		src.PutSys(sysinfo.Idle(fmt.Sprintf("h%02d", i), 3000, 256))
	}
	sys, netB, sec := src.Snapshot()
	snapshotBytes := len(status.MarshalSystemBatch(sys)) +
		len(status.MarshalNetBatch(netB)) + len(status.MarshalSecBatch(sec)) + 15

	// Measure real pull latency over loopback.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tx, err := transport.NewTransmitter(src, nil)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go tx.ServePassive(ctx, ln)
	dst := store.New()
	recv, err := transport.NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		return nil, err
	}
	pulls := 50
	if o.Quick {
		pulls = 10
	}
	start := time.Now()
	for i := 0; i < pulls; i++ {
		if err := recv.PullFrom([]string{ln.Addr().String()}, time.Second); err != nil {
			return nil, err
		}
	}
	pullLatency := time.Since(start) / time.Duration(pulls)

	interval := 2 * time.Second // the thesis's push interval
	pushBW := float64(snapshotBytes) / interval.Seconds()

	t := &Table{
		ID:      "ablation.transport",
		Title:   fmt.Sprintf("Transmitter modes with %d servers (snapshot %d B)", nServers, snapshotBytes),
		Columns: []string{"mode", "standing load", "per-request latency", "data freshness"},
	}
	t.AddRow("centralized push (2 s)",
		fmt.Sprintf("%.2f KBps always", pushBW/1024),
		"≈0 (wizard reads local db)",
		"≤ push interval")
	t.AddRow("distributed pull",
		"0 between requests",
		pullLatency.Round(10*time.Microsecond).String(),
		"exact at request time")
	breakEven := float64(snapshotBytes) / (pushBW)
	t.Notes = append(t.Notes,
		fmt.Sprintf("break-even: above ~%.1f requests per push interval the push mode moves less data", breakEven/interval.Seconds()),
		"matches §3.5.1: push for small busy sites, pull for sparse GRIDs with rare requests",
	)
	return t, nil
}

// ablationReporting compares UDP and TCP probe reporting (the Ch. 6
// switch): per-report cost on a healthy network.
func ablationReporting(o Options) (*Table, error) {
	reports := 200
	if o.Quick {
		reports = 50
	}
	db := store.New()
	mon, err := monitor.New(monitor.Config{Addr: "127.0.0.1:0", DB: db, EnableTCP: true})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go mon.Run(ctx)

	t := &Table{
		ID:      "ablation.reporting",
		Title:   fmt.Sprintf("Probe report transport over loopback (%d reports)", reports),
		Columns: []string{"transport", "per-report cost", "reliability"},
	}
	for _, tr := range []probe.Transport{probe.UDP, probe.TCP} {
		p, err := probe.New(probe.Config{
			Source:    sysinfo.NewSynthetic(sysinfo.Idle("abl", 3000, 256)),
			Monitor:   mon.Addr(),
			Transport: tr,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < reports; i++ {
			if err := p.ReportOnce(); err != nil {
				return nil, err
			}
		}
		per := time.Since(start) / time.Duration(reports)
		rel := "best-effort datagram"
		if tr == probe.TCP {
			rel = "acknowledged stream"
		}
		t.AddRow(tr.String(), per.Round(time.Microsecond).String(), rel)
	}
	t.Notes = append(t.Notes,
		"UDP stays the default (§3.2.1); TCP costs a connection per report but survives congested, lossy paths (Ch. 6)",
	)
	return t, nil
}

// ablationSequential demonstrates the §3.3.3 rule: "The network
// probing procedure should be done in a sequential order. Multiple
// probes should not run simultaneously." Three peer paths share the
// monitor's access segment; probing them one at a time stays
// accurate, probing them concurrently inflates delays and wrecks the
// bandwidth estimates.
func ablationSequential(o Options) (*Table, error) {
	mkPaths := func() ([]*simnet.Path, *simnet.Segment, error) {
		seg := simnet.NewSegment()
		var paths []*simnet.Path
		for i := 0; i < 3; i++ {
			p, err := simnet.New(simnet.Config{
				Name: fmt.Sprintf("peer-%d", i+1), MTU: 1500, SpeedInit: testbed.SpeedInit,
				SysOverhead: 40 * time.Microsecond, Jitter: 0.02, Seed: o.Seed + int64(i),
				Hops: []simnet.Hop{
					{Capacity: 100e6, PropDelay: 20 * time.Microsecond, ProcDelay: 3 * time.Microsecond},
					{Capacity: 1e9, PropDelay: 20 * time.Microsecond, ProcDelay: 3 * time.Microsecond},
				},
			})
			if err != nil {
				return nil, nil, err
			}
			p.AttachSegment(seg)
			paths = append(paths, p)
		}
		return paths, seg, nil
	}
	runs := 4
	if o.Quick {
		runs = 2
	}
	s1, s2 := bwest.OptimalSizes(1500)
	cfg := bwest.StreamConfig{S1: s1, S2: s2, Runs: runs}

	estimateAll := func(paths []*simnet.Path, concurrent bool) ([]float64, error) {
		out := make([]float64, len(paths))
		if !concurrent {
			for i, p := range paths {
				st, err := bwest.Estimate(p, cfg)
				if err != nil {
					return nil, err
				}
				out[i] = st.Avg
			}
			return out, nil
		}
		errs := make([]error, len(paths))
		var wg sync.WaitGroup
		for i, p := range paths {
			wg.Add(1)
			go func(i int, p *simnet.Path) {
				defer wg.Done()
				st, err := bwest.Estimate(p, cfg)
				if err != nil {
					errs[i] = err
					return
				}
				out[i] = st.Avg
			}(i, p)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	t := &Table{
		ID:      "ablation.sequential",
		Title:   "Netmon probing order (§3.3.3): 3 peers sharing the monitor's segment",
		Columns: []string{"probing", "peer-1 (Mbps)", "peer-2 (Mbps)", "peer-3 (Mbps)", "worst error"},
	}
	paths, _, err := mkPaths()
	if err != nil {
		return nil, err
	}
	truth := paths[0].EffectiveBandwidth()
	row := func(label string, ests []float64) {
		worst := 0.0
		cells := []string{label}
		for _, e := range ests {
			cells = append(cells, mbps(e))
			if err := (truth - e) / truth; err > worst {
				worst = err
			}
		}
		cells = append(cells, pct(worst*truth, truth))
		t.AddRow(cells...)
	}
	seq, err := estimateAll(paths, false)
	if err != nil {
		return nil, err
	}
	row("sequential", seq)
	paths2, _, err := mkPaths()
	if err != nil {
		return nil, err
	}
	conc, err := estimateAll(paths2, true)
	if err != nil {
		return nil, err
	}
	row("concurrent", conc)
	t.Notes = append(t.Notes,
		fmt.Sprintf("truth per path: %s Mbps; netmon.ProbeAll is strictly sequential for exactly this reason", mbps(truth)),
	)
	return t, nil
}
