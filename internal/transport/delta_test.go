package transport

// Tests for the delta protocol layered over both transport modes:
// incremental push/pull, tombstone propagation, unchanged-epoch write
// skipping, version-gap resync, and the thesis-fidelity compat mode.

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smartsock/internal/status"
	"smartsock/internal/store"
)

func TestCentralizedDeltaPropagatesChangeAndTombstone(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	src := store.NewWithClock(clock)
	src.PutSys(status.ServerStatus{Host: "keep", Load1: 1})
	src.PutSys(status.ServerStatus{Host: "doomed", Load1: 2})
	dst := store.New()

	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go recv.Run(ctx)
	tx, err := NewTransmitter(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	go tx.RunActive(ctx, recv.Addr(), 10*time.Millisecond)

	waitFor(t, 2*time.Second, func() bool { return dst.SysLen() == 2 })

	// A content change travels as a delta, not a re-shipped snapshot.
	src.PutSys(status.ServerStatus{Host: "keep", Load1: 9})
	waitFor(t, 2*time.Second, func() bool {
		r, ok := dst.GetSys("keep")
		return ok && r.Status.Load1 == 9
	})
	if tx.Deltas() == 0 {
		t.Errorf("change arrived without any delta push (Sent=%d)", tx.Sent())
	}

	// An expiry travels as a tombstone: the host vanishes downstream.
	advance(time.Hour)
	src.PutSys(status.ServerStatus{Host: "keep", Load1: 9}) // keep alive
	if got := src.ExpireSys(30 * time.Minute); len(got) != 1 || got[0] != "doomed" {
		t.Fatalf("ExpireSys = %v, want [doomed]", got)
	}
	waitFor(t, 2*time.Second, func() bool { return dst.SysLen() == 1 })
	if _, ok := dst.GetSys("keep"); !ok {
		t.Fatal("surviving host lost during tombstone propagation")
	}
}

func TestCentralizedDeltaSkipsUnchangedEpochs(t *testing.T) {
	src := seedDB()
	dst := store.New()
	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go recv.Run(ctx)
	tx, err := NewTransmitter(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	go tx.RunActive(ctx, recv.Addr(), 5*time.Millisecond)

	waitFor(t, 2*time.Second, func() bool { return tx.Skipped() >= 1 })
	applied := recv.Received()
	skipped := tx.Skipped()
	waitFor(t, 2*time.Second, func() bool { return tx.Skipped() >= skipped+3 })
	if got := recv.Received(); got != applied {
		t.Errorf("receiver applied %d frames across unchanged epochs, want 0", got-applied)
	}
	assertMirrored(t, src, dst)
}

func TestRefreshOnlyEpochPreservesReceiverSysEpoch(t *testing.T) {
	src := seedDB()
	dst := store.New()
	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go recv.Run(ctx)
	tx, err := NewTransmitter(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	go tx.RunActive(ctx, recv.Addr(), 5*time.Millisecond)
	waitFor(t, 2*time.Second, func() bool { return dst.SysLen() == 2 })

	// Re-reporting identical probe content refreshes timestamps but
	// must not bump the receiver's SysView epoch — the wizard's
	// memoized selections stay valid across idle probe ticks.
	epoch := dst.SysView().Epoch
	deltas := tx.Deltas()
	for i := 0; i < 5; i++ {
		r, _ := src.GetSys("helene")
		src.PutSys(r.Status)
		waitFor(t, 2*time.Second, func() bool { return tx.Deltas() > deltas })
		deltas = tx.Deltas()
	}
	waitFor(t, 2*time.Second, func() bool { return tx.Skipped() > 0 || tx.Deltas() > deltas })
	if got := dst.SysView().Epoch; got != epoch {
		t.Errorf("refresh-only traffic bumped receiver epoch %d -> %d", epoch, got)
	}
}

func TestReceiverForcesResyncOnVersionGap(t *testing.T) {
	dst := store.New()
	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go recv.Run(ctx)

	conn, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Anchor the stream at version 10 with a full snapshot + mark.
	full := status.Frame{Type: status.TypeSystem, Data: status.MarshalSystemBatch([]status.ServerStatus{{Host: "a"}})}
	if err := status.WriteFrame(conn, full); err != nil {
		t.Fatal(err)
	}
	if err := status.WriteFrame(conn, status.Frame{Type: status.TypeSnapMark, Data: status.AppendSnapMark(nil, 10)}); err != nil {
		t.Fatal(err)
	}
	// A delta claiming base 15 skips versions 11–15: a gap.
	d := &status.SysDelta{BaseVer: 15, NewVer: 16, Refreshed: []string{"a"}}
	if err := status.WriteFrame(conn, status.Frame{Type: status.TypeSysDelta, Data: status.AppendSysDelta(nil, d)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return recv.Resyncs() == 1 })
	// The receiver must have dropped the connection so the transmitter
	// resyncs with a fresh full snapshot.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection still open after version gap")
	}

	// A delta with no preceding snapshot is refused the same way.
	conn2, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := status.WriteFrame(conn2, status.Frame{Type: status.TypeSysDelta, Data: status.AppendSysDelta(nil, d)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return recv.Resyncs() == 2 })
}

// budgetConn errors every write after the first n, modelling a stream
// cut mid-snapshot.
type budgetConn struct {
	net.Conn
	writes int
	budget int
}

func (c *budgetConn) Write(b []byte) (int, error) {
	if c.writes >= c.budget {
		return 0, errors.New("stream cut")
	}
	c.writes++
	return len(b), nil
}

type nopConn struct{}

func (nopConn) Read(b []byte) (int, error)         { return 0, errors.New("not readable") }
func (nopConn) Write(b []byte) (int, error)        { return len(b), nil }
func (nopConn) Close() error                       { return nil }
func (nopConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (nopConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (nopConn) SetDeadline(t time.Time) error      { return nil }
func (nopConn) SetReadDeadline(t time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(t time.Time) error { return nil }

func TestPartialSnapshotCountsAsPartialNotSent(t *testing.T) {
	tx, err := NewTransmitter(seedDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var enc encodeState
	// Each frame takes two writes (header, payload): a budget of 3
	// dies inside the second frame.
	conn := &budgetConn{Conn: nopConn{}, budget: 3}
	if _, err := tx.writeSnapshot(conn, &enc, false); err == nil {
		t.Fatal("writeSnapshot succeeded over a cut stream")
	}
	if tx.Sent() != 0 {
		t.Errorf("Sent = %d after mid-snapshot failure, want 0", tx.Sent())
	}
	if tx.SentPartial() != 1 {
		t.Errorf("SentPartial = %d, want 1", tx.SentPartial())
	}
	// A failure before any byte is on the wire is not a partial.
	conn2 := &budgetConn{Conn: nopConn{}, budget: 0}
	if _, err := tx.writeSnapshot(conn2, &enc, false); err == nil {
		t.Fatal("writeSnapshot succeeded over a dead stream")
	}
	if tx.SentPartial() != 1 {
		t.Errorf("SentPartial = %d after zero-byte failure, want still 1", tx.SentPartial())
	}
	// A healthy stream completes and counts once.
	if _, err := tx.writeSnapshot(nopConn{}, &enc, false); err != nil {
		t.Fatal(err)
	}
	if tx.Sent() != 1 || tx.SentPartial() != 1 {
		t.Errorf("Sent/SentPartial = %d/%d, want 1/1", tx.Sent(), tx.SentPartial())
	}
}

func TestDistributedPullIsIncremental(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	src := store.NewWithClock(clock)
	src.PutSys(status.ServerStatus{Host: "helene", Load1: 0.5, Bogomips: 3394.76})
	src.PutSys(status.ServerStatus{Host: "dione", Load1: 0.1, Bogomips: 4771.02})
	src.PutNet(status.NetMetric{From: "m1", To: "m2", Delay: 3 * time.Millisecond, Bandwidth: 95e6})
	src.PutSec(status.SecLevel{Host: "helene", Level: 4})
	tx, err := NewTransmitter(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go tx.ServePassive(ctx, ln)

	dst := store.New()
	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr().String()}

	// First pull: a full snapshot.
	if err := recv.PullFrom(addrs, time.Second); err != nil {
		t.Fatal(err)
	}
	assertMirrored(t, src, dst)
	if tx.Sent() != 1 {
		t.Fatalf("first pull shipped %d full snapshots, want 1", tx.Sent())
	}

	// Second pull after a change: the reply is a delta, not a
	// re-shipped database.
	src.PutSys(status.ServerStatus{Host: "sagit", Bogomips: 1730.15})
	if err := recv.PullFrom(addrs, time.Second); err != nil {
		t.Fatal(err)
	}
	assertMirrored(t, src, dst)
	if tx.Sent() != 1 || tx.Deltas() != 1 {
		t.Errorf("after incremental pull: Sent=%d Deltas=%d, want 1/1", tx.Sent(), tx.Deltas())
	}

	// Third pull with nothing new: the transmitter skips the payload
	// entirely and the mirror is untouched.
	epoch := dst.SysView().Epoch
	if err := recv.PullFrom(addrs, time.Second); err != nil {
		t.Fatal(err)
	}
	if tx.Skipped() != 1 {
		t.Errorf("unchanged pull: Skipped=%d, want 1", tx.Skipped())
	}
	if got := dst.SysView().Epoch; got != epoch {
		t.Errorf("unchanged pull bumped epoch %d -> %d", epoch, got)
	}

	// An expiry at the source travels to the puller as a tombstone in
	// the next delta reply.
	advance(time.Hour)
	for _, s := range []status.ServerStatus{
		{Host: "helene", Load1: 0.5, Bogomips: 3394.76},
		{Host: "sagit", Bogomips: 1730.15},
	} {
		src.PutSys(s) // keep alive; dione's probe stays silent
	}
	if got := src.ExpireSys(30 * time.Minute); len(got) != 1 || got[0] != "dione" {
		t.Fatalf("ExpireSys = %v, want [dione]", got)
	}
	if err := recv.PullFrom(addrs, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := dst.GetSys("dione"); ok {
		t.Error("expired host survived at the puller")
	}
	if dst.SysLen() != 2 {
		t.Errorf("after tombstone pull: SysLen = %d, want 2", dst.SysLen())
	}
}

func TestStalePullReplyCannotClobberFresherRecords(t *testing.T) {
	dst := store.New()
	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	dst.PutSys(status.ServerStatus{Host: "x", Load1: 5})
	recv.pullVers["tx-a"] = pullState{ver: 10, synced: true}

	// A full reply carrying version 5 — older than the version already
	// mirrored from this transmitter — must be discarded, not merged.
	stale := &pullReply{
		full:    true,
		sys:     []status.ServerStatus{{Host: "x", Load1: 1}},
		ver:     5,
		hasMark: true,
	}
	if err := recv.applyPull("tx-a", 0, stale); err != nil {
		t.Fatal(err)
	}
	if r, _ := dst.GetSys("x"); r.Status.Load1 != 5 {
		t.Errorf("stale full reply clobbered fresher record: Load1 = %v", r.Status.Load1)
	}
	if st := recv.pullVers["tx-a"]; st.ver != 10 {
		t.Errorf("stale reply moved mirrored version to %d", st.ver)
	}

	// A delta computed against a base we no longer mirror is dropped
	// and the transmitter state reset so the next pull resyncs.
	mismatched := &pullReply{delta: true, ver: 12, hasMark: true}
	mismatched.sysV.Changed = []status.ServerStatus{{Host: "x", Load1: 0}}
	if err := recv.applyPull("tx-a", 7, mismatched); err != nil {
		t.Fatal(err)
	}
	if r, _ := dst.GetSys("x"); r.Status.Load1 != 5 {
		t.Errorf("mismatched delta applied: Load1 = %v", r.Status.Load1)
	}
	if st := recv.pullVers["tx-a"]; st.synced {
		t.Error("mismatched delta left transmitter state synced")
	}
	if recv.Resyncs() != 1 {
		t.Errorf("Resyncs = %d, want 1", recv.Resyncs())
	}
}

// A passive transmitter that restarts resets its version counter: the
// receiver's next pull still requests the old (large) base, the source
// refuses the diff and answers with a full snapshot carrying a smaller
// version. That snapshot must be adopted — with pullVers rebased onto
// the new counter — not discarded as stale, or the mirror would never
// update from that transmitter again and its hosts would expire from
// the wizard's view.
func TestPullAdoptsFullReplyFromRestartedTransmitter(t *testing.T) {
	src1 := store.New()
	for _, h := range []string{"a", "b", "c", "d"} {
		src1.PutSys(status.ServerStatus{Host: h, Load1: 1})
	}
	tx1, err := NewTransmitter(src1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	go tx1.ServePassive(ctx1, ln1)

	// The receiver pulls a stable logical address; the dial hook
	// routes it to whichever incarnation currently listens, the way a
	// restarted daemon keeps its host:port.
	var target atomic.Value
	target.Store(ln1.Addr().String())
	dst := store.New()
	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	recv.Dial = func(network, _ string) (net.Conn, error) {
		return net.Dial(network, target.Load().(string))
	}
	addrs := []string{"tx-logical"}
	if err := recv.PullFrom(addrs, time.Second); err != nil {
		t.Fatal(err)
	}
	if dst.SysLen() != 4 {
		t.Fatalf("first pull mirrored %d hosts, want 4", dst.SysLen())
	}

	// Restart: a fresh database whose version counter sits far below
	// the base the receiver will request.
	cancel1()
	src2 := store.New()
	src2.PutSys(status.ServerStatus{Host: "a", Load1: 9})
	tx2, err := NewTransmitter(src2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	target.Store(ln2.Addr().String())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go tx2.ServePassive(ctx2, ln2)

	if err := recv.PullFrom(addrs, time.Second); err != nil {
		t.Fatal(err)
	}
	if r, ok := dst.GetSys("a"); !ok || r.Status.Load1 != 9 {
		t.Fatal("restarted transmitter's full snapshot was discarded")
	}
	if tx2.Sent() != 1 {
		t.Errorf("restart pull shipped %d full snapshots, want 1", tx2.Sent())
	}
	if recv.Resyncs() != 1 {
		t.Errorf("restart adoption: Resyncs = %d, want 1", recv.Resyncs())
	}

	// pullVers must now track the new incarnation's counter, so the
	// mirror keeps updating incrementally.
	src2.PutSys(status.ServerStatus{Host: "e", Load1: 2})
	if err := recv.PullFrom(addrs, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := dst.GetSys("e"); !ok {
		t.Error("post-restart pull missed a new host")
	}
	if tx2.Deltas() != 1 {
		t.Errorf("post-restart pull: Deltas = %d, want 1 (incremental)", tx2.Deltas())
	}
}

// A snap mark running ahead of the delta frames' NewVer would rebase
// pullVers past changes the reply never carried, silently skipping
// them on every later pull; staging must reject the mismatch.
func TestPullRejectsSnapMarkAheadOfDelta(t *testing.T) {
	recv, err := NewReceiver(store.New(), "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	d := status.SysDelta{BaseVer: 4, NewVer: 7, Changed: []status.ServerStatus{{Host: "x", Load1: 1}}}
	var reply pullReply
	frame := status.Frame{Type: status.TypeSysDelta, Data: status.AppendSysDelta(nil, &d)}
	if err := recv.stagePullFrame(frame, 4, &reply); err != nil {
		t.Fatal(err)
	}
	ahead := status.Frame{Type: status.TypeSnapMark, Data: status.AppendSnapMark(nil, 9)}
	if err := recv.stagePullFrame(ahead, 4, &reply); err == nil {
		t.Fatal("snap mark ahead of the delta epoch was accepted")
	}
	matching := status.Frame{Type: status.TypeSnapMark, Data: status.AppendSnapMark(nil, 7)}
	if err := recv.stagePullFrame(matching, 4, &reply); err != nil {
		t.Fatal(err)
	}
	if !reply.hasMark || reply.ver != 7 {
		t.Fatalf("matching mark not staged: ver=%d hasMark=%v", reply.ver, reply.hasMark)
	}
}

func TestCompatModeSpeaksThesisProtocol(t *testing.T) {
	t.Run("centralized", func(t *testing.T) {
		src := seedDB()
		dst := store.New()
		recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		recv.Compat = true
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go recv.Run(ctx)
		tx, err := NewTransmitter(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		tx.Compat = true
		go tx.RunActive(ctx, recv.Addr(), 10*time.Millisecond)

		waitFor(t, 2*time.Second, func() bool { return dst.SysLen() == 2 })
		src.PutSys(status.ServerStatus{Host: "sagit"})
		waitFor(t, 2*time.Second, func() bool { return dst.SysLen() == 3 })
		assertMirrored(t, src, dst)
		// Every epoch re-ships the full database, like the thesis.
		if tx.Sent() < 2 {
			t.Errorf("compat Sent = %d, want ≥ 2", tx.Sent())
		}
		if tx.Deltas() != 0 {
			t.Errorf("compat mode shipped %d deltas", tx.Deltas())
		}
	})
	t.Run("distributed", func(t *testing.T) {
		src := seedDB()
		tx, err := NewTransmitter(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		tx.Compat = true
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go tx.ServePassive(ctx, ln)

		dst := store.New()
		recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		recv.Compat = true
		for i := 0; i < 2; i++ {
			if err := recv.PullFrom([]string{ln.Addr().String()}, time.Second); err != nil {
				t.Fatal(err)
			}
			assertMirrored(t, src, dst)
		}
		if tx.Sent() != 2 || tx.Deltas() != 0 {
			t.Errorf("compat pulls: Sent=%d Deltas=%d, want 2/0", tx.Sent(), tx.Deltas())
		}
	})
}
