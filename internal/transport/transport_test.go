package transport

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"smartsock/internal/status"
	"smartsock/internal/store"
)

func seedDB() *store.DB {
	db := store.New()
	db.PutSys(status.ServerStatus{Host: "helene", Load1: 0.5, Bogomips: 3394.76})
	db.PutSys(status.ServerStatus{Host: "dione", Load1: 0.1, Bogomips: 4771.02})
	db.PutNet(status.NetMetric{From: "m1", To: "m2", Delay: 3 * time.Millisecond, Bandwidth: 95e6})
	db.PutSec(status.SecLevel{Host: "helene", Level: 4})
	return db
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func assertMirrored(t *testing.T, src, dst *store.DB) {
	t.Helper()
	s1, n1, c1 := src.Snapshot()
	s2, n2, c2 := dst.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("sysdb mismatch:\n src=%+v\n dst=%+v", s1, s2)
	}
	if !reflect.DeepEqual(n1, n2) {
		t.Errorf("netdb mismatch:\n src=%+v\n dst=%+v", n1, n2)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Errorf("secdb mismatch:\n src=%+v\n dst=%+v", c1, c2)
	}
}

func TestCentralizedModePushes(t *testing.T) {
	src := seedDB()
	dst := store.New()

	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go recv.Run(ctx)

	tx, err := NewTransmitter(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	go tx.RunActive(ctx, recv.Addr(), 20*time.Millisecond)

	waitFor(t, 2*time.Second, func() bool { return dst.SysLen() == 2 })
	assertMirrored(t, src, dst)

	// The push keeps flowing: a new record appears at the receiver
	// without any request.
	src.PutSys(status.ServerStatus{Host: "sagit", Bogomips: 1730.15})
	waitFor(t, 2*time.Second, func() bool { return dst.SysLen() == 3 })
	// The first push is a full snapshot; the new record travels as a
	// delta rather than a re-shipped database.
	if tx.Pushed() < 2 {
		t.Errorf("Pushed = %d (Sent=%d Deltas=%d), want ≥ 2", tx.Pushed(), tx.Sent(), tx.Deltas())
	}
	if tx.Sent() < 1 {
		t.Errorf("Sent = %d, want ≥ 1 full snapshot", tx.Sent())
	}
}

func TestCentralizedModeSurvivesReceiverRestart(t *testing.T) {
	src := seedDB()
	dst := store.New()
	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := recv.Addr()
	ctx1, cancel1 := context.WithCancel(context.Background())
	go recv.Run(ctx1)

	txCtx, txCancel := context.WithCancel(context.Background())
	defer txCancel()
	tx, err := NewTransmitter(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	go tx.RunActive(txCtx, addr, 15*time.Millisecond)
	waitFor(t, 2*time.Second, func() bool { return dst.SysLen() == 2 })

	// Kill the receiver, then bring a fresh one up on the same port.
	cancel1()
	time.Sleep(40 * time.Millisecond)
	dst2 := store.New()
	recv2, err := NewReceiver(dst2, addr, nil)
	if err != nil {
		t.Skipf("port reuse raced: %v", err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go recv2.Run(ctx2)
	waitFor(t, 3*time.Second, func() bool { return dst2.SysLen() == 2 })
}

func TestDistributedModePull(t *testing.T) {
	src := seedDB()
	dst := store.New()

	tx, err := NewTransmitter(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go tx.ServePassive(ctx, ln)

	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	// No standing traffic in distributed mode: nothing arrives until
	// the wizard asks.
	if dst.SysLen() != 0 {
		t.Fatal("data arrived before any pull")
	}
	if err := recv.PullFrom([]string{ln.Addr().String()}, time.Second); err != nil {
		t.Fatalf("PullFrom: %v", err)
	}
	assertMirrored(t, src, dst)
}

func TestDistributedModeMergesMultipleTransmitters(t *testing.T) {
	// Two server groups, each with its own monitor machine and
	// passive transmitter; the wizard-side pull merges both.
	srcA := store.New()
	srcA.PutSys(status.ServerStatus{Host: "group-a-1"})
	srcB := store.New()
	srcB.PutSys(status.ServerStatus{Host: "group-b-1"})
	srcB.PutSys(status.ServerStatus{Host: "group-b-2"})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var addrs []string
	for _, db := range []*store.DB{srcA, srcB} {
		tx, err := NewTransmitter(db, nil)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go tx.ServePassive(ctx, ln)
		addrs = append(addrs, ln.Addr().String())
	}

	dst := store.New()
	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.PullFrom(addrs, time.Second); err != nil {
		t.Fatal(err)
	}
	if dst.SysLen() != 3 {
		t.Errorf("merged SysLen = %d, want 3", dst.SysLen())
	}
}

func TestPullToleratesDeadTransmitter(t *testing.T) {
	src := seedDB()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tx, err := NewTransmitter(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go tx.ServePassive(ctx, ln)

	dst := store.New()
	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	// First address refuses connections; the live one must still land.
	dead := "127.0.0.1:1" // reserved port, nothing listens
	if err := recv.PullFrom([]string{dead, ln.Addr().String()}, 200*time.Millisecond); err != nil {
		t.Fatalf("PullFrom with one dead transmitter: %v", err)
	}
	if dst.SysLen() != 2 {
		t.Errorf("SysLen = %d, want 2", dst.SysLen())
	}
}

func TestPullFailsWhenAllDead(t *testing.T) {
	dst := store.New()
	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.PullFrom([]string{"127.0.0.1:1"}, 100*time.Millisecond); err == nil {
		t.Error("PullFrom succeeded with no live transmitter")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := NewTransmitter(nil, nil); err == nil {
		t.Error("NewTransmitter accepted nil db")
	}
	if _, err := NewReceiver(nil, "127.0.0.1:0", nil); err == nil {
		t.Error("NewReceiver accepted nil db")
	}
	if _, err := NewReceiver(store.New(), "256.0.0.1:bad", nil); err == nil {
		t.Error("NewReceiver accepted a bad address")
	}
}

func TestReceiverRejectsUnknownFrame(t *testing.T) {
	dst := store.New()
	recv, err := NewReceiver(dst, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go recv.Run(ctx)

	conn, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// TypeRequest is not valid receiver input in centralized mode.
	if err := status.WriteFrame(conn, status.Frame{Type: status.TypeRequest}); err != nil {
		t.Fatal(err)
	}
	// A valid frame on a fresh connection still works afterwards.
	conn2, err := net.Dial("tcp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	f := status.Frame{Type: status.TypeSystem, Data: status.MarshalSystemBatch([]status.ServerStatus{{Host: "x"}})}
	if err := status.WriteFrame(conn2, f); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return dst.SysLen() == 1 })
	waitFor(t, 2*time.Second, func() bool { return recv.UnknownFrames() == 1 })
}
