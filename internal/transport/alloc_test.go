package transport

import (
	"bytes"
	"testing"

	"smartsock/internal/obs"
	"smartsock/internal/status"
	"smartsock/internal/store"
)

// Alloc-regression pins for the delta push path, with the obs
// instrumentation live. The ceilings are the committed
// BENCH_transport.json figures (allocs_per_op for the matching
// benchmark case): the observability layer must ride along for free,
// so any increase over the recorded steady state fails here before it
// reaches the benchmark dashboards.
const (
	idleEpochAllocCeiling    = 46 // BENCH_transport.json delta-idle-1000h
	refreshEpochAllocCeiling = 48 // BENCH_transport.json delta-refresh-1000h
)

// allocHarness wires a transmitter to a receiver through an in-memory
// conn, exactly like BenchmarkTransportEpoch, and returns a func that
// runs one full push epoch (encode, wire, decode, apply).
func allocHarness(t *testing.T, fleetSize int) (*store.DB, []status.ServerStatus, func()) {
	t.Helper()
	src, fleet := benchFleet(fleetSize)
	reg := obs.NewRegistry()
	tx, err := NewTransmitterObs(src, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	// The pin measures the steady delta path; push the periodic full
	// resync far beyond the run so it cannot pollute the average.
	tx.ResyncEvery = 1 << 30
	recv, err := NewReceiverObs(store.New(), "127.0.0.1:0", nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	conn := memConn{new(bytes.Buffer)}
	var sess pushSession
	var cs connState
	cs.lag = recv.lagFor("alloc-test")
	epoch := func() {
		if err := tx.pushEpoch(conn, &sess); err != nil {
			t.Fatal(err)
		}
		for conn.Len() > 0 {
			var f status.Frame
			f, cs.buf, err = status.ReadFrameInto(conn, cs.buf)
			if err != nil {
				t.Fatal(err)
			}
			if err := recv.apply(f, &cs); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Prime the stream: the first epoch is always a full snapshot, and
	// the encode/decode buffers settle at their steady-state capacity.
	epoch()
	epoch()
	return src, fleet, epoch
}

func TestAllocsIdleEpoch(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc averages need a quiet run")
	}
	_, _, epoch := allocHarness(t, 1000)
	if got := testing.AllocsPerRun(200, epoch); got > idleEpochAllocCeiling {
		t.Errorf("idle delta epoch allocates %.1f, pinned at %d (BENCH_transport.json delta-idle-1000h)",
			got, idleEpochAllocCeiling)
	}
}

func TestAllocsRefreshEpoch(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc averages need a quiet run")
	}
	src, fleet, epoch := allocHarness(t, 1000)
	if got := testing.AllocsPerRun(100, func() {
		for i := range fleet {
			src.PutSys(fleet[i])
		}
		epoch()
	}); got > refreshEpochAllocCeiling {
		t.Errorf("refresh delta epoch allocates %.1f, pinned at %d (BENCH_transport.json delta-refresh-1000h)",
			got, refreshEpochAllocCeiling)
	}
}
