package transport

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"smartsock/internal/status"
	"smartsock/internal/store"
	"smartsock/internal/sysinfo"
)

// memConn is an in-memory net.Conn: the transmitter's writes land in
// a buffer the receiver then drains, so one push epoch can be
// measured end to end without a socket in the timing loop.
type memConn struct{ *bytes.Buffer }

func (memConn) Close() error                       { return nil }
func (memConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (memConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (memConn) SetDeadline(t time.Time) error      { return nil }
func (memConn) SetReadDeadline(t time.Time) error  { return nil }
func (memConn) SetWriteDeadline(t time.Time) error { return nil }

// benchFleet fills a store with n hosts and returns the statuses so a
// mutation function can re-report or change them.
func benchFleet(n int) (*store.DB, []status.ServerStatus) {
	db := store.New()
	fleet := make([]status.ServerStatus, n)
	for i := range fleet {
		fleet[i] = sysinfo.Idle(fmt.Sprintf("node-%04d", i), 1000+float64(i%7)*500, 256)
		db.PutSys(fleet[i])
	}
	return db, fleet
}

// BenchmarkTransportEpoch measures one centralized-mode status epoch
// end to end — transmitter encode, wire bytes, receiver apply — for a
// 1000-host fleet. The full-* variants run the thesis protocol (a
// complete three-frame snapshot every epoch); the delta-* variants
// run the delta protocol against three workloads: an idle fleet (no
// probe reports at all), a fleet whose probes re-report identical
// content (refresh), and a fleet where 1% of hosts change per epoch.
// scripts/bench.sh turns these into BENCH_transport.json.
func BenchmarkTransportEpoch(b *testing.B) {
	const fleetSize = 1000
	refreshAll := func(db *store.DB, fleet []status.ServerStatus, _ int) {
		for i := range fleet {
			db.PutSys(fleet[i])
		}
	}
	onePercent := func(db *store.DB, fleet []status.ServerStatus, epoch int) {
		n := len(fleet) / 100
		for j := 0; j < n; j++ {
			s := fleet[(epoch*n+j)%len(fleet)]
			s.Load1 = float64(epoch + 1)
			db.PutSys(s)
		}
	}
	cases := []struct {
		name   string
		compat bool
		mutate func(*store.DB, []status.ServerStatus, int)
	}{
		{"full-1000h", true, refreshAll},
		{"delta-idle-1000h", false, nil},
		{"delta-refresh-1000h", false, refreshAll},
		{"delta-1pct-1000h", false, onePercent},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			src, fleet := benchFleet(fleetSize)
			tx, err := NewTransmitter(src, nil)
			if err != nil {
				b.Fatal(err)
			}
			tx.Compat = tc.compat
			recv, err := NewReceiver(store.New(), "127.0.0.1:0", nil)
			if err != nil {
				b.Fatal(err)
			}
			conn := memConn{new(bytes.Buffer)}
			var sess pushSession
			var cs connState
			var wire int64
			epoch := func(e int) {
				if err := tx.pushEpoch(conn, &sess); err != nil {
					b.Fatal(err)
				}
				wire += int64(conn.Len())
				for conn.Len() > 0 {
					var f status.Frame
					f, cs.buf, err = status.ReadFrameInto(conn, cs.buf)
					if err != nil {
						b.Fatal(err)
					}
					if err := recv.apply(f, &cs); err != nil {
						b.Fatal(err)
					}
				}
			}
			// Prime the stream: the first epoch is always a full
			// snapshot; steady state is what the benchmark measures.
			epoch(0)
			wire = 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if tc.mutate != nil {
					tc.mutate(src, fleet, i)
				}
				epoch(i)
			}
			b.ReportMetric(float64(wire)/float64(b.N), "bytes/epoch")
		})
	}
}
