// Package transport implements the transmitter and receiver of §3.5,
// the components that move the three status databases from monitor
// machines to the wizard machine over TCP using [type, size, data]
// frames.
//
// Two operating modes exist (§3.5.1):
//
//   - Centralized: the transmitter actively pushes snapshots to the
//     receiver at a fixed interval, so the wizard always has fresh
//     data and answers requests instantly. Suits small deployments.
//
//   - Distributed: the transmitter listens passively and sends a
//     snapshot only when asked (a TypeRequest frame), so sparse
//     deployments with rare requests pay no standing network load.
//
// The thesis ships raw structs and requires identical endianness on
// both machines; the status package's explicit binary codec removes
// that restriction without changing the framing.
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync/atomic"
	"time"

	"smartsock/internal/retry"
	"smartsock/internal/status"
	"smartsock/internal/store"
)

// Transmitter serialises the local status database toward receivers.
type Transmitter struct {
	db     *store.DB
	logger *log.Logger
	sent   atomic.Uint64 // snapshots shipped
	// Dial opens the push connection; nil means net.DialTimeout. The
	// chaos layer wraps stall/reset faults around it.
	Dial func(network, addr string) (net.Conn, error)
}

// NewTransmitter builds a transmitter over the given database.
func NewTransmitter(db *store.DB, logger *log.Logger) (*Transmitter, error) {
	if db == nil {
		return nil, fmt.Errorf("transport: nil database")
	}
	return &Transmitter{db: db, logger: logger}, nil
}

// Sent reports how many snapshots have been shipped.
func (t *Transmitter) Sent() uint64 { return t.sent.Load() }

// snapshotFrames renders the current database as the three frames of
// one snapshot.
func (t *Transmitter) snapshotFrames() []status.Frame {
	sys, net, sec := t.db.Snapshot()
	return []status.Frame{
		{Type: status.TypeSystem, Data: status.MarshalSystemBatch(sys)},
		{Type: status.TypeNetwork, Data: status.MarshalNetBatch(net)},
		{Type: status.TypeSecurity, Data: status.MarshalSecBatch(sec)},
	}
}

// writeSnapshot sends one full snapshot over a connection.
func (t *Transmitter) writeSnapshot(conn net.Conn) error {
	for _, f := range t.snapshotFrames() {
		if err := status.WriteFrame(conn, f); err != nil {
			return err
		}
	}
	t.sent.Add(1)
	return nil
}

// RunActive implements centralized mode: push a snapshot to the
// receiver every interval until the context is cancelled. Connection
// failures are logged and redialed with bounded exponential backoff —
// a dead receiver is not hammered every tick, and the first successful
// push restores the normal cadence.
func (t *Transmitter) RunActive(ctx context.Context, receiverAddr string, interval time.Duration) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	bo := &retry.Backoff{Base: interval, Max: 8 * interval}
	timer := time.NewTimer(interval)
	defer timer.Stop()
	var conn net.Conn
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	for {
		wait := interval
		if conn == nil {
			c, err := t.dial(receiverAddr)
			if err != nil {
				t.logf("transmitter: dial %s: %v", receiverAddr, err)
			} else {
				conn = c
			}
		}
		if conn != nil {
			if err := t.writeSnapshot(conn); err != nil {
				t.logf("transmitter: push: %v", err)
				// The push error is already logged; redial after backoff.
				_ = conn.Close()
				conn = nil
			} else {
				bo.Reset()
			}
		}
		if conn == nil {
			wait = bo.Next()
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// dial opens the push connection through the configured hook.
func (t *Transmitter) dial(addr string) (net.Conn, error) {
	if t.Dial != nil {
		return t.Dial("tcp", addr)
	}
	return net.DialTimeout("tcp", addr, 2*time.Second)
}

// ServePassive implements distributed mode: listen for TypeRequest
// frames and answer each with a snapshot. It returns when the
// context is cancelled.
func (t *Transmitter) ServePassive(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		// Accept below surfaces the close as net.ErrClosed.
		_ = ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		go func(c net.Conn) {
			defer c.Close()
			for {
				if err := c.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
					return
				}
				f, err := status.ReadFrame(c)
				if err != nil {
					return
				}
				if f.Type != status.TypeRequest {
					t.logf("transmitter: unexpected frame %v in passive mode", f.Type)
					return
				}
				if err := t.writeSnapshot(c); err != nil {
					t.logf("transmitter: reply: %v", err)
					return
				}
			}
		}(conn)
	}
}

// Receiver mirrors transmitter snapshots into a local database for
// the wizard (§3.5.2).
type Receiver struct {
	db       *store.DB
	ln       net.Listener
	logger   *log.Logger
	received atomic.Uint64 // frames applied
	torn     atomic.Uint64 // connections dropped mid-frame
	// Dial opens distributed-mode pull connections; nil means
	// net.DialTimeout. The chaos layer wraps faults around it.
	Dial func(network, addr string) (net.Conn, error)
}

// NewReceiver binds the receiver's listener; addr may use port 0.
func NewReceiver(db *store.DB, addr string, logger *log.Logger) (*Receiver, error) {
	if db == nil {
		return nil, fmt.Errorf("transport: nil database")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	return &Receiver{db: db, ln: ln, logger: logger}, nil
}

// Addr reports the bound address.
func (r *Receiver) Addr() string { return r.ln.Addr().String() }

// Received reports how many frames have been applied.
func (r *Receiver) Received() uint64 { return r.received.Load() }

// Torn reports how many transmitter connections ended mid-frame — a
// header or payload truncated by a crash, reset or stalled-then-cut
// link, as opposed to a clean close between frames. Historically both
// looked like a normal disconnect, hiding real faults from operators.
func (r *Receiver) Torn() uint64 { return r.torn.Load() }

// Run accepts transmitter connections (centralized mode) until the
// context is cancelled.
func (r *Receiver) Run(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		// Accept below surfaces the close as net.ErrClosed.
		_ = r.ln.Close()
	}()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		go func(c net.Conn) {
			defer c.Close()
			// A stopped receiver must drop its live connections too, or
			// a transmitter keeps feeding a ghost after restart.
			stop := context.AfterFunc(ctx, func() { _ = c.Close() })
			defer stop()
			for {
				f, err := status.ReadFrame(c)
				if err != nil {
					// io.EOF before a header byte is the transmitter
					// closing cleanly between snapshots, and net.ErrClosed
					// is our own shutdown. Anything else — notably a
					// wrapped io.ErrUnexpectedEOF — means the stream died
					// mid-frame: count and report it instead of passing it
					// off as a normal disconnect.
					if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
						r.torn.Add(1)
						r.logf("receiver: connection torn mid-frame: %v", err)
					}
					return
				}
				if err := r.apply(f); err != nil {
					r.logf("receiver: %v", err)
					return
				}
			}
		}(conn)
	}
}

// apply loads one frame's batch into the corresponding database
// section.
func (r *Receiver) apply(f status.Frame) error {
	switch f.Type {
	case status.TypeSystem:
		recs, err := status.UnmarshalSystemBatch(f.Data)
		if err != nil {
			return err
		}
		r.db.Load(recs, nil, nil)
	case status.TypeNetwork:
		recs, err := status.UnmarshalNetBatch(f.Data)
		if err != nil {
			return err
		}
		r.db.Load(nil, recs, nil)
	case status.TypeSecurity:
		recs, err := status.UnmarshalSecBatch(f.Data)
		if err != nil {
			return err
		}
		r.db.Load(nil, nil, recs)
	default:
		return fmt.Errorf("transport: unexpected frame type %v", f.Type)
	}
	r.received.Add(1)
	return nil
}

// PullFrom implements the distributed-mode update: ask each passive
// transmitter for a snapshot and merge all replies. The wizard calls
// this when a user request arrives (§3.5.2). Unreachable
// transmitters are reported but do not abort the pull.
func (r *Receiver) PullFrom(transmitters []string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	var firstErr error
	var merged mergedBatches
	for _, addr := range transmitters {
		// Each pull fills its own batch, merged only on full success:
		// a connection dying mid-snapshot must not leak half a server
		// list into the wizard's view alongside a healthy reply.
		one, err := r.pullOne(addr, timeout)
		if err != nil {
			r.logf("receiver: pull %s: %v", addr, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		merged.any = true
		merged.sys = append(merged.sys, one.sys...)
		merged.net = append(merged.net, one.net...)
		merged.sec = append(merged.sec, one.sec...)
	}
	if merged.any {
		r.db.Load(merged.sys, merged.net, merged.sec)
		r.received.Add(3)
		return nil
	}
	if firstErr != nil {
		return fmt.Errorf("transport: pull failed everywhere: %w", firstErr)
	}
	return nil
}

type mergedBatches struct {
	any bool
	sys []status.ServerStatus
	net []status.NetMetric
	sec []status.SecLevel
}

func (r *Receiver) pullOne(addr string, timeout time.Duration) (mergedBatches, error) {
	var m mergedBatches
	conn, err := r.dialPull(addr, timeout)
	if err != nil {
		return m, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return m, err
	}
	if err := status.WriteFrame(conn, status.Frame{Type: status.TypeRequest}); err != nil {
		return m, err
	}
	for i := 0; i < 3; i++ {
		f, err := status.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				r.torn.Add(1)
			}
			return m, err
		}
		switch f.Type {
		case status.TypeSystem:
			recs, err := status.UnmarshalSystemBatch(f.Data)
			if err != nil {
				return m, err
			}
			m.sys = append(m.sys, recs...)
		case status.TypeNetwork:
			recs, err := status.UnmarshalNetBatch(f.Data)
			if err != nil {
				return m, err
			}
			m.net = append(m.net, recs...)
		case status.TypeSecurity:
			recs, err := status.UnmarshalSecBatch(f.Data)
			if err != nil {
				return m, err
			}
			m.sec = append(m.sec, recs...)
		default:
			return m, fmt.Errorf("transport: unexpected frame type %v in pull reply", f.Type)
		}
	}
	return m, nil
}

// dialPull opens a pull connection through the configured hook.
func (r *Receiver) dialPull(addr string, timeout time.Duration) (net.Conn, error) {
	if r.Dial != nil {
		return r.Dial("tcp", addr)
	}
	return net.DialTimeout("tcp", addr, timeout)
}

func (t *Transmitter) logf(format string, args ...any) {
	if t.logger != nil {
		t.logger.Printf(format, args...)
	}
}

func (r *Receiver) logf(format string, args ...any) {
	if r.logger != nil {
		r.logger.Printf(format, args...)
	}
}
