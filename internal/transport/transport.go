// Package transport implements the transmitter and receiver of §3.5,
// the components that move the three status databases from monitor
// machines to the wizard machine over TCP using [type, size, data]
// frames.
//
// Two operating modes exist (§3.5.1):
//
//   - Centralized: the transmitter actively pushes snapshots to the
//     receiver at a fixed interval, so the wizard always has fresh
//     data and answers requests instantly. Suits small deployments.
//
//   - Distributed: the transmitter listens passively and sends a
//     snapshot only when asked (a TypeRequest frame), so sparse
//     deployments with rare requests pay no standing network load.
//
// On top of both modes sits a delta protocol. The thesis re-ships the
// full database every epoch (§4.4); here a stream starts with a full
// snapshot closed by a TypeSnapMark frame carrying the database
// version, and subsequent epochs carry only TypeSysDelta /
// TypeNetDelta / TypeSecDelta frames — records that changed since the
// receiver's version, tombstones for expired ones, and keys whose
// content was re-reported unchanged. An epoch in which nothing moved
// sends nothing at all. The receiver validates continuity by version
// and drops the connection on any gap, which makes the transmitter's
// reconnect path (a fresh full snapshot) the resync mechanism; a
// periodic full snapshot bounds how long a silent divergence could
// last. Setting Compat on both ends restores the thesis wire format
// exactly: full snapshots every epoch and nothing else.
//
// The thesis ships raw structs and requires identical endianness on
// both machines; the status package's explicit binary codec removes
// that restriction without changing the framing.
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"smartsock/internal/obs"
	"smartsock/internal/overload"
	"smartsock/internal/retry"
	"smartsock/internal/status"
	"smartsock/internal/store"
)

// defaultResyncEvery is how many delta epochs a transmitter sends
// before refreshing the receiver with an unsolicited full snapshot.
const defaultResyncEvery = 64

// encodeState is the per-connection reusable encode state: one append
// buffer whose capacity settles at the largest frame the connection
// has sent (so steady-state epochs allocate nothing) and the three
// delta structs ChangedSince fills in place. Each connection owns its
// own state — sessions never share buffers, so no lock guards them.
type encodeState struct {
	buf  []byte
	sysD status.SysDelta
	netD status.NetDelta
	secD status.SecDelta
}

// Transmitter serialises the local status database toward receivers.
type Transmitter struct {
	db     *store.DB
	logger *log.Logger

	// Compat restores the thesis wire format: a full three-frame
	// snapshot every epoch, no snap marks, no deltas. The matching
	// receiver must run with Compat set too.
	Compat bool
	// ResyncEvery is the number of delta epochs between unsolicited
	// full snapshots on a push stream; 0 means defaultResyncEvery.
	ResyncEvery int

	sent        *obs.Counter // transport_tx_snapshots: complete full snapshots shipped
	sentPartial *obs.Counter // transport_tx_snapshots_partial: aborted by a mid-write error
	deltas      *obs.Counter // transport_tx_delta_epochs: complete delta epochs shipped
	skipped     *obs.Counter // transport_tx_epochs_skipped: unchanged epochs, no write
	unknown     *obs.Counter // transport_tx_unknown_frames: rejected in passive mode
	redials     *obs.Counter // transport_tx_redials: backoff waits before a redial

	// Dial opens the push connection; nil means net.DialTimeout. The
	// chaos layer wraps stall/reset faults around it.
	Dial func(network, addr string) (net.Conn, error)
}

// NewTransmitter builds a transmitter over the given database with
// detached (unregistered) metrics.
func NewTransmitter(db *store.DB, logger *log.Logger) (*Transmitter, error) {
	return NewTransmitterObs(db, logger, nil)
}

// NewTransmitterObs builds a transmitter whose counters live in reg
// under transport_tx_* names; a nil registry detaches them, which is
// exactly NewTransmitter.
func NewTransmitterObs(db *store.DB, logger *log.Logger, reg *obs.Registry) (*Transmitter, error) {
	if db == nil {
		return nil, fmt.Errorf("transport: nil database")
	}
	return &Transmitter{
		db:          db,
		logger:      logger,
		sent:        reg.Counter("transport_tx_snapshots"),
		sentPartial: reg.Counter("transport_tx_snapshots_partial"),
		deltas:      reg.Counter("transport_tx_delta_epochs"),
		skipped:     reg.Counter("transport_tx_epochs_skipped"),
		unknown:     reg.Counter("transport_tx_unknown_frames"),
		redials:     reg.Counter("transport_tx_redials"),
	}, nil
}

// Sent reports how many complete full snapshots have been shipped. A
// snapshot whose write died between frames is not counted here — it
// shows up in SentPartial instead.
func (t *Transmitter) Sent() uint64 { return t.sent.Value() }

// SentPartial reports how many snapshot writes failed after at least
// one frame was already on the wire.
func (t *Transmitter) SentPartial() uint64 { return t.sentPartial.Value() }

// Deltas reports how many delta epochs have been shipped.
func (t *Transmitter) Deltas() uint64 { return t.deltas.Value() }

// Skipped reports how many epochs carried no change at all, where the
// transmitter skipped the network write entirely.
func (t *Transmitter) Skipped() uint64 { return t.skipped.Value() }

// Pushed reports all complete pushes: full snapshots plus delta
// epochs.
func (t *Transmitter) Pushed() uint64 { return t.Sent() + t.Deltas() }

// UnknownFrames reports how many frames of unexpected type passive
// mode has rejected. A non-zero count means some peer speaks a newer
// (or corrupted) protocol — the counter is the visible trace that
// frames are being dropped rather than silently vanishing.
func (t *Transmitter) UnknownFrames() uint64 { return t.unknown.Value() }

func (t *Transmitter) resyncEvery() int {
	if t.ResyncEvery > 0 {
		return t.ResyncEvery
	}
	return defaultResyncEvery
}

// writeSnapshot sends one full snapshot over a connection, reusing
// enc.buf across the three frames (and across epochs: its capacity is
// pre-sized by the previous epoch's frame lengths). With mark set it
// closes the snapshot with a TypeSnapMark frame and returns the
// database version the receiver now mirrors. A complete snapshot
// counts toward sent; one that dies after the first byte counts
// toward sentPartial, never toward sent.
func (t *Transmitter) writeSnapshot(conn net.Conn, enc *encodeState, mark bool) (uint64, error) {
	sys, net, sec, ver := t.db.SnapshotAt()
	wrote := false
	fail := func(err error) (uint64, error) {
		if wrote {
			t.sentPartial.Add(1)
		}
		return 0, err
	}
	enc.buf = status.AppendSystemBatch(enc.buf[:0], sys)
	if err := status.WriteFrame(conn, status.Frame{Type: status.TypeSystem, Data: enc.buf}); err != nil {
		return fail(err)
	}
	wrote = true
	enc.buf = status.AppendNetBatch(enc.buf[:0], net)
	if err := status.WriteFrame(conn, status.Frame{Type: status.TypeNetwork, Data: enc.buf}); err != nil {
		return fail(err)
	}
	enc.buf = status.AppendSecBatch(enc.buf[:0], sec)
	if err := status.WriteFrame(conn, status.Frame{Type: status.TypeSecurity, Data: enc.buf}); err != nil {
		return fail(err)
	}
	if mark {
		enc.buf = status.AppendSnapMark(enc.buf[:0], ver)
		if err := status.WriteFrame(conn, status.Frame{Type: status.TypeSnapMark, Data: enc.buf}); err != nil {
			return fail(err)
		}
	}
	t.sent.Add(1)
	return ver, nil
}

// writeDeltas sends the non-empty delta frames already staged in enc.
// All three share one [base, new] version pair, which is how the
// receiver tells "next frame of this epoch" from a gap.
func (t *Transmitter) writeDeltas(conn net.Conn, enc *encodeState) error {
	if !enc.sysD.Empty() {
		enc.buf = status.AppendSysDelta(enc.buf[:0], &enc.sysD)
		if err := status.WriteFrame(conn, status.Frame{Type: status.TypeSysDelta, Data: enc.buf}); err != nil {
			return err
		}
	}
	if !enc.netD.Empty() {
		enc.buf = status.AppendNetDelta(enc.buf[:0], &enc.netD)
		if err := status.WriteFrame(conn, status.Frame{Type: status.TypeNetDelta, Data: enc.buf}); err != nil {
			return err
		}
	}
	if !enc.secD.Empty() {
		enc.buf = status.AppendSecDelta(enc.buf[:0], &enc.secD)
		if err := status.WriteFrame(conn, status.Frame{Type: status.TypeSecDelta, Data: enc.buf}); err != nil {
			return err
		}
	}
	t.deltas.Add(1)
	return nil
}

// pushSession is the per-connection state of one centralized-mode
// push stream: the version the receiver mirrors and how many delta
// epochs have passed since the last full snapshot.
type pushSession struct {
	enc       encodeState
	base      uint64
	synced    bool
	sinceFull int
}

// pushEpoch ships one epoch over an established stream: a full
// snapshot when the stream is new, overdue for its periodic resync or
// the store can no longer serve the receiver's base; otherwise the
// delta since base, or nothing at all when the database is unchanged.
func (t *Transmitter) pushEpoch(conn net.Conn, s *pushSession) error {
	if t.Compat {
		_, err := t.writeSnapshot(conn, &s.enc, false)
		return err
	}
	if s.synced && s.sinceFull < t.resyncEvery() {
		ver, ok := t.db.ChangedSince(s.base, &s.enc.sysD, &s.enc.netD, &s.enc.secD)
		if ok {
			s.sinceFull++
			if s.enc.sysD.Empty() && s.enc.netD.Empty() && s.enc.secD.Empty() {
				t.skipped.Add(1)
				return nil
			}
			if err := t.writeDeltas(conn, &s.enc); err != nil {
				return err
			}
			s.base = ver
			return nil
		}
	}
	ver, err := t.writeSnapshot(conn, &s.enc, true)
	if err != nil {
		s.synced = false
		return err
	}
	s.base = ver
	s.synced = true
	s.sinceFull = 0
	return nil
}

// RunActive implements centralized mode: push to the receiver every
// interval until the context is cancelled — a full snapshot when a
// connection is (re)established and deltas thereafter. Connection
// failures are logged and redialed with bounded exponential backoff —
// a dead receiver is not hammered every tick, and the first successful
// push restores the normal cadence.
func (t *Transmitter) RunActive(ctx context.Context, receiverAddr string, interval time.Duration) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	bo := &retry.Backoff{Base: interval, Max: 8 * interval, Metric: t.redials}
	timer := time.NewTimer(interval)
	defer timer.Stop()
	var conn net.Conn
	var sess pushSession
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	for {
		wait := interval
		if conn == nil {
			c, err := t.dial(receiverAddr)
			if err != nil {
				t.logf("transmitter: dial %s: %v", receiverAddr, err)
			} else {
				conn = c
				// A fresh connection mirrors nothing yet: start it
				// with a full snapshot, whatever the session held.
				sess.synced = false
			}
		}
		if conn != nil {
			if err := t.pushEpoch(conn, &sess); err != nil {
				t.logf("transmitter: push: %v", err)
				// The push error is already logged; redial after backoff.
				_ = conn.Close()
				conn = nil
			} else {
				bo.Reset()
			}
		}
		if conn == nil {
			wait = bo.Next()
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// dial opens the push connection through the configured hook.
func (t *Transmitter) dial(addr string) (net.Conn, error) {
	if t.Dial != nil {
		return t.Dial("tcp", addr)
	}
	return net.DialTimeout("tcp", addr, 2*time.Second)
}

// ServePassive implements distributed mode: listen for TypeRequest
// frames and answer each. A thesis-style empty request (and any
// request in Compat mode) gets a full snapshot; a request carrying
// the puller's base version gets the delta since that base — or a
// full snapshot when the base is no longer servable — closed by a
// TypeSnapMark. It returns when the context is cancelled.
func (t *Transmitter) ServePassive(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		// Accept below surfaces the close as net.ErrClosed.
		_ = ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		go func(c net.Conn) {
			defer c.Close()
			// Cancellation closes the connection immediately instead
			// of letting a parked puller ride out the read deadline.
			stop := context.AfterFunc(ctx, func() { _ = c.Close() })
			defer stop()
			var enc encodeState
			var rbuf []byte
			for {
				if err := c.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
					return
				}
				var f status.Frame
				var err error
				f, rbuf, err = status.ReadFrameInto(c, rbuf)
				if err != nil {
					return
				}
				if f.Type != status.TypeRequest {
					t.unknown.Add(1)
					t.logf("transmitter: unexpected frame %v in passive mode", f.Type)
					return
				}
				if err := t.answerPull(c, f.Data, &enc); err != nil {
					t.logf("transmitter: reply: %v", err)
					return
				}
			}
		}(conn)
	}
}

// answerPull serves one distributed-mode request on an established
// connection.
func (t *Transmitter) answerPull(conn net.Conn, req []byte, enc *encodeState) error {
	if t.Compat {
		_, err := t.writeSnapshot(conn, enc, false)
		return err
	}
	base, err := status.ParsePullRequest(req)
	if err != nil {
		return err
	}
	if base > 0 {
		ver, ok := t.db.ChangedSince(base, &enc.sysD, &enc.netD, &enc.secD)
		if ok {
			if !(enc.sysD.Empty() && enc.netD.Empty() && enc.secD.Empty()) {
				if err := t.writeDeltas(conn, enc); err != nil {
					return err
				}
			} else {
				t.skipped.Add(1)
			}
			enc.buf = status.AppendSnapMark(enc.buf[:0], ver)
			return status.WriteFrame(conn, status.Frame{Type: status.TypeSnapMark, Data: enc.buf})
		}
	}
	_, err = t.writeSnapshot(conn, enc, true)
	return err
}

// Receiver mirrors transmitter snapshots into a local database for
// the wizard (§3.5.2).
type Receiver struct {
	db     *store.DB
	ln     net.Listener
	logger *log.Logger

	// Compat restores the thesis pull protocol: empty requests, a
	// whole-table load of exactly three reply frames, no versioning.
	Compat bool

	received *obs.Counter // transport_recv_frames: frames applied
	torn     *obs.Counter // transport_recv_torn: connections dropped mid-frame
	resyncs  *obs.Counter // transport_recv_resyncs: continuity violations forcing resync
	unknown  *obs.Counter // transport_recv_unknown_frames: counted then rejected

	// catchup distributes how many database versions each epoch anchor
	// advanced the mirror by: 0–1 is the steady state, larger values
	// are post-partition catch-up.
	catchup *obs.Histogram

	// reg (possibly nil) mints the per-source lag gauges below lazily:
	// sources appear as they connect or get pulled.
	reg   *obs.Registry
	lagMu sync.Mutex
	lags  map[string]*sourceLag

	// pullMu guards pullVers and serialises delta/merge application of
	// pull replies, so two concurrent pulls from the same transmitter
	// cannot interleave an older reply over a newer one. Network reads
	// happen outside it.
	pullMu   sync.Mutex
	pullVers map[string]pullState

	// Dial opens distributed-mode pull connections; nil means
	// net.DialTimeout. The chaos layer wraps faults around it.
	Dial func(network, addr string) (net.Conn, error)

	// Overload, when set, registers every applied frame as a priority
	// bypass admission on the wizard's overload gate. Status
	// distribution is never queued behind and never shed with client
	// request traffic — the priority invariant the admission plane
	// promises — and this counter is its audit trail: overload_bypass
	// must reconcile with transport_recv_frames. Set before Run or the
	// first pull; nil skips the accounting.
	Overload *overload.Gate
}

// sourceLag is the epoch-lag pair for one transmitter: the newest
// version its frames have announced (head, set the moment a snap-mark
// or delta header is parsed) against the version actually applied to
// the mirror. The registered transport_epoch_lag gauge is their
// difference — zero in steady state, positive while a source's frames
// are being rejected or a staged pull has not landed.
type sourceLag struct {
	head    *obs.Gauge
	applied *obs.Gauge
}

// observe records a frozen head/applied pair.
func (l *sourceLag) observe(head, applied uint64) {
	if l == nil {
		return
	}
	l.head.Set(int64(head))
	l.applied.Set(int64(applied))
}

// lagFor returns the lag pair for one source, registering its gauges
// on first sight. Sources are keyed by host (push streams use the
// remote IP, pulls the configured transmitter address) so reconnects
// reuse the same series instead of minting one per ephemeral port.
func (r *Receiver) lagFor(source string) *sourceLag {
	r.lagMu.Lock()
	defer r.lagMu.Unlock()
	if l, ok := r.lags[source]; ok {
		return l
	}
	l := &sourceLag{
		head:    r.reg.Gauge(fmt.Sprintf("transport_head_ver{source=%q}", source)),
		applied: r.reg.Gauge(fmt.Sprintf("transport_applied_ver{source=%q}", source)),
	}
	r.reg.GaugeFunc(fmt.Sprintf("transport_epoch_lag{source=%q}", source), func() int64 {
		return l.head.Value() - l.applied.Value()
	})
	r.lags[source] = l
	return l
}

// sourceHost reduces a remote address to its host so every reconnect
// from one transmitter maps to one lag series.
func sourceHost(addr string) string {
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}

// pullState is what the receiver remembers about one passive
// transmitter between pulls: the version of that transmitter's
// database it already mirrors.
type pullState struct {
	ver    uint64
	synced bool
}

// NewReceiver binds the receiver's listener with detached
// (unregistered) metrics; addr may use port 0.
func NewReceiver(db *store.DB, addr string, logger *log.Logger) (*Receiver, error) {
	return NewReceiverObs(db, addr, logger, nil)
}

// NewReceiverObs binds a receiver whose counters live in reg under
// transport_recv_* names, plus per-source transport_head_ver /
// transport_applied_ver / transport_epoch_lag gauges minted as
// transmitters appear. A nil registry detaches everything.
func NewReceiverObs(db *store.DB, addr string, logger *log.Logger, reg *obs.Registry) (*Receiver, error) {
	if db == nil {
		return nil, fmt.Errorf("transport: nil database")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	return &Receiver{
		db:       db,
		ln:       ln,
		logger:   logger,
		received: reg.Counter("transport_recv_frames"),
		torn:     reg.Counter("transport_recv_torn"),
		resyncs:  reg.Counter("transport_recv_resyncs"),
		unknown:  reg.Counter("transport_recv_unknown_frames"),
		catchup:  reg.Histogram("transport_epoch_catchup", obs.LagBuckets),
		reg:      reg,
		lags:     make(map[string]*sourceLag),
		pullVers: make(map[string]pullState),
	}, nil
}

// Addr reports the bound address.
func (r *Receiver) Addr() string { return r.ln.Addr().String() }

// Received reports how many frames have been applied.
func (r *Receiver) Received() uint64 { return r.received.Value() }

// admitted counts n applied frames and mirrors them onto the overload
// gate's bypass counter: status frames are priority traffic the
// admission plane may never shed, and keeping the two counters in
// lockstep here is what lets the chaos obs suite reconcile them.
func (r *Receiver) admitted(n int) {
	r.received.Add(uint64(n))
	r.Overload.Bypass(n)
}

// Torn reports how many transmitter connections ended mid-frame — a
// header or payload truncated by a crash, reset or stalled-then-cut
// link, as opposed to a clean close between frames. Historically both
// looked like a normal disconnect, hiding real faults from operators.
func (r *Receiver) Torn() uint64 { return r.torn.Value() }

// Resyncs reports how many times delta continuity broke and a full
// snapshot had to re-anchor a source: a push-stream version gap or a
// delta before any snapshot (the connection closes so the
// transmitter's reconnect resyncs it), a pull delta whose base no
// longer matches the mirror, or a pulled transmitter observed to have
// restarted with a reset version counter.
func (r *Receiver) Resyncs() uint64 { return r.resyncs.Value() }

// UnknownFrames reports how many frames of a type this receiver does
// not dispatch have arrived, on push streams or in pull replies. Each
// one also errors the connection it came from; the counter makes the
// drops visible to dashboards instead of leaving only a log line.
func (r *Receiver) UnknownFrames() uint64 { return r.unknown.Value() }

// connState is the per-connection decode state of one push stream:
// the version this stream has mirrored so far plus reusable read and
// parse buffers, so a steady delta stream applies without per-frame
// allocation.
type connState struct {
	buf      []byte
	sysV     status.SysDeltaView
	netV     status.NetDeltaView
	secV     status.SecDeltaView
	ver      uint64
	epochTop uint64 // NewVer of the epoch currently being applied
	synced   bool
	lag      *sourceLag // nil-safe epoch-lag series for this stream's source
}

// Run accepts transmitter connections (centralized mode) until the
// context is cancelled.
func (r *Receiver) Run(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		// Accept below surfaces the close as net.ErrClosed.
		_ = r.ln.Close()
	}()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		go func(c net.Conn) {
			defer c.Close()
			// A stopped receiver must drop its live connections too, or
			// a transmitter keeps feeding a ghost after restart.
			stop := context.AfterFunc(ctx, func() { _ = c.Close() })
			defer stop()
			var cs connState
			cs.lag = r.lagFor(sourceHost(c.RemoteAddr().String()))
			for {
				var f status.Frame
				var err error
				f, cs.buf, err = status.ReadFrameInto(c, cs.buf)
				if err != nil {
					// io.EOF before a header byte is the transmitter
					// closing cleanly between frames, and net.ErrClosed
					// is our own shutdown. Anything else — notably a
					// wrapped io.ErrUnexpectedEOF — means the stream died
					// mid-frame: count and report it instead of passing it
					// off as a normal disconnect.
					if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
						r.torn.Add(1)
						r.logf("receiver: connection torn mid-frame: %v", err)
					}
					return
				}
				if err := r.apply(f, &cs); err != nil {
					r.logf("receiver: %v", err)
					return
				}
			}
		}(conn)
	}
}

// errResync marks a delta continuity violation: the connection must
// close so the transmitter's reconnect delivers a full snapshot.
var errResync = errors.New("transport: delta continuity broken, forcing resync")

// apply loads one frame into the database: full batch frames replace
// a section, snap marks anchor the stream's version, delta frames
// merge incrementally. Returning an error closes the connection.
func (r *Receiver) apply(f status.Frame, cs *connState) error {
	switch f.Type {
	case status.TypeSystem:
		recs, err := status.UnmarshalSystemBatch(f.Data)
		if err != nil {
			return err
		}
		r.db.Load(recs, nil, nil)
	case status.TypeNetwork:
		recs, err := status.UnmarshalNetBatch(f.Data)
		if err != nil {
			return err
		}
		r.db.Load(nil, recs, nil)
	case status.TypeSecurity:
		recs, err := status.UnmarshalSecBatch(f.Data)
		if err != nil {
			return err
		}
		r.db.Load(nil, nil, recs)
	case status.TypeSnapMark:
		ver, err := status.ParseSnapMark(f.Data)
		if err != nil {
			return err
		}
		if cs.synced && ver > cs.ver {
			// A periodic resync snapshot advanced an already-anchored
			// stream; record how far it jumped. The first snapshot of a
			// stream is an anchor, not catch-up, and is not observed.
			r.catchup.Observe(int64(ver - cs.ver))
		}
		cs.ver, cs.epochTop = ver, ver
		cs.synced = true
		cs.lag.observe(ver, ver)
	case status.TypeSysDelta:
		if err := cs.sysV.Parse(f.Data); err != nil {
			return err
		}
		if err := r.admitDelta(cs, cs.sysV.BaseVer, cs.sysV.NewVer); err != nil {
			return err
		}
		r.db.ApplySysDelta(cs.sysV.Changed, cs.sysV.Deleted, cs.sysV.Refreshed)
	case status.TypeNetDelta:
		if err := cs.netV.Parse(f.Data); err != nil {
			return err
		}
		if err := r.admitDelta(cs, cs.netV.BaseVer, cs.netV.NewVer); err != nil {
			return err
		}
		r.db.ApplyNetDelta(cs.netV.Changed, cs.netV.Deleted, cs.netV.Refreshed)
	case status.TypeSecDelta:
		if err := cs.secV.Parse(f.Data); err != nil {
			return err
		}
		if err := r.admitDelta(cs, cs.secV.BaseVer, cs.secV.NewVer); err != nil {
			return err
		}
		r.db.ApplySecDelta(cs.secV.Changed, cs.secV.Deleted, cs.secV.Refreshed)
	default:
		r.unknown.Add(1)
		return fmt.Errorf("transport: unexpected frame type %v", f.Type)
	}
	if cs.synced && cs.lag != nil {
		// The frame landed in the mirror: applied has caught up to the
		// stream's version (a no-op re-set on snap marks).
		cs.lag.applied.Set(int64(cs.ver))
	}
	r.admitted(1)
	return nil
}

// admitDelta validates one delta frame's version continuity. The
// frames of one epoch share a [base, new] pair: the first moves the
// stream from ver to NewVer, the rest must repeat the same pair. Any
// other combination is a gap — some epoch was lost — and the stream
// cannot be trusted until a full snapshot re-anchors it.
func (r *Receiver) admitDelta(cs *connState, base, newVer uint64) error {
	// The frame header announces the transmitter's head whether or not
	// the frame is admitted; a rejected frame leaves head ahead of
	// applied, which is exactly the lag an operator should see.
	if cs.lag != nil && newVer > cs.ver {
		cs.lag.head.Set(int64(newVer))
	}
	if !cs.synced {
		r.resyncs.Add(1)
		return fmt.Errorf("%w: delta before snapshot", errResync)
	}
	switch {
	case base == cs.ver && newVer >= base:
		// First frame of a new epoch.
		r.catchup.Observe(int64(newVer - base))
		cs.epochTop = newVer
		cs.ver = newVer
		return nil
	case base < cs.ver && cs.ver == cs.epochTop && newVer == cs.epochTop:
		// Another frame of the epoch we are already applying.
		return nil
	default:
		cs.synced = false
		r.resyncs.Add(1)
		return fmt.Errorf("%w: at %d, frame covers [%d, %d]", errResync, cs.ver, base, newVer)
	}
}

// PullFrom implements the distributed-mode update: ask each passive
// transmitter for what changed since the last pull (a full snapshot
// on the first) and merge the replies record by record. The wizard
// calls this when a user request arrives (§3.5.2). Unreachable
// transmitters are reported but do not abort the pull. In Compat mode
// the thesis protocol is used instead: empty requests, whole-table
// loads.
func (r *Receiver) PullFrom(transmitters []string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	if r.Compat {
		return r.pullFromCompat(transmitters, timeout)
	}
	var firstErr error
	applied := false
	for _, addr := range transmitters {
		if err := r.pullOne(addr, timeout); err != nil {
			r.logf("receiver: pull %s: %v", addr, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		applied = true
	}
	if applied || firstErr == nil {
		return nil
	}
	return fmt.Errorf("transport: pull failed everywhere: %w", firstErr)
}

// pullBase reads the version already mirrored from one transmitter.
func (r *Receiver) pullBase(addr string) uint64 {
	r.pullMu.Lock()
	defer r.pullMu.Unlock()
	if st, ok := r.pullVers[addr]; ok && st.synced {
		return st.ver
	}
	return 0
}

// pullReply is everything one pull staged before applying: either
// full batches or parsed delta views, never applied until the closing
// snap mark proves the reply complete — a connection dying
// mid-snapshot must not leak half a server list into the wizard's
// view alongside a healthy reply.
type pullReply struct {
	full     bool
	sys      []status.ServerStatus
	net      []status.NetMetric
	sec      []status.SecLevel
	delta    bool
	sysV     status.SysDeltaView
	netV     status.NetDeltaView
	secV     status.SecDeltaView
	ver      uint64
	hasMark  bool
	deltaTop uint64
}

// pullOne asks one transmitter for changes since the locally mirrored
// version and applies the complete reply.
func (r *Receiver) pullOne(addr string, timeout time.Duration) error {
	base := r.pullBase(addr)
	conn, err := r.dialPull(addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	if err := status.WriteFrame(conn, status.Frame{Type: status.TypeRequest, Data: status.AppendPullRequest(nil, base)}); err != nil {
		return err
	}
	var reply pullReply
	for !reply.hasMark {
		f, err := status.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				r.torn.Add(1)
			}
			return err
		}
		if err := r.stagePullFrame(f, base, &reply); err != nil {
			return err
		}
	}
	return r.applyPull(addr, base, &reply)
}

// stagePullFrame sorts one reply frame into the staging area.
func (r *Receiver) stagePullFrame(f status.Frame, base uint64, reply *pullReply) error {
	checkDelta := func(b, n uint64) error {
		if b != base {
			return fmt.Errorf("transport: pull delta base %d, requested %d", b, base)
		}
		if reply.delta && n != reply.deltaTop {
			return fmt.Errorf("transport: pull delta epochs disagree (%d vs %d)", n, reply.deltaTop)
		}
		reply.delta, reply.deltaTop = true, n
		return nil
	}
	switch f.Type {
	case status.TypeSystem:
		recs, err := status.UnmarshalSystemBatch(f.Data)
		if err != nil {
			return err
		}
		reply.full, reply.sys = true, recs
	case status.TypeNetwork:
		recs, err := status.UnmarshalNetBatch(f.Data)
		if err != nil {
			return err
		}
		reply.full, reply.net = true, recs
	case status.TypeSecurity:
		recs, err := status.UnmarshalSecBatch(f.Data)
		if err != nil {
			return err
		}
		reply.full, reply.sec = true, recs
	case status.TypeSysDelta:
		if err := reply.sysV.Parse(f.Data); err != nil {
			return err
		}
		return checkDelta(reply.sysV.BaseVer, reply.sysV.NewVer)
	case status.TypeNetDelta:
		if err := reply.netV.Parse(f.Data); err != nil {
			return err
		}
		return checkDelta(reply.netV.BaseVer, reply.netV.NewVer)
	case status.TypeSecDelta:
		if err := reply.secV.Parse(f.Data); err != nil {
			return err
		}
		return checkDelta(reply.secV.BaseVer, reply.secV.NewVer)
	case status.TypeSnapMark:
		ver, err := status.ParseSnapMark(f.Data)
		if err != nil {
			return err
		}
		if reply.delta && ver != reply.deltaTop {
			// The mark's version is what pullVers will record as the
			// next base; if it ran ahead of the deltas' NewVer the
			// mirror would silently skip every change in between.
			return fmt.Errorf("transport: snap mark %d disagrees with delta epoch %d", ver, reply.deltaTop)
		}
		reply.ver, reply.hasMark = ver, true
	default:
		r.unknown.Add(1)
		return fmt.Errorf("transport: unexpected frame type %v in pull reply", f.Type)
	}
	return nil
}

// applyPull merges one complete staged reply. The version check under
// pullMu makes the merge safe against concurrent pulls of the same
// transmitter: a reply computed against a base another pull has
// already moved past is discarded rather than applied out of order,
// and a full reply older than what is already mirrored cannot clobber
// the fresher records.
func (r *Receiver) applyPull(addr string, base uint64, reply *pullReply) error {
	lag := r.lagFor(addr)
	// The closing snap mark announced the transmitter's head; applied
	// only follows below if the reply actually lands, so a discarded
	// reply leaves the gap visible as transport_epoch_lag.
	lag.head.Set(int64(reply.ver))
	r.pullMu.Lock()
	defer r.pullMu.Unlock()
	cur, haveCur := r.pullVers[addr]
	switch {
	case reply.full:
		if haveCur && cur.synced && cur.ver >= reply.ver {
			if cur.ver != base {
				// A concurrent pull already moved this transmitter's
				// mirror past the base this reply was computed
				// against; an older full reply must not roll fresher
				// records back.
				return nil
			}
			// cur.ver == base: no pull interleaved, yet the reply is a
			// full snapshot at or below the base we asked to diff
			// from. The transmitter restarted and its version counter
			// reset — adopt the snapshot and its new, smaller version.
			// Discarding it would pin the mirror to a base the source
			// can never serve again, freezing this transmitter out of
			// the wizard's view until its hosts expire.
			r.resyncs.Add(1)
		}
		// Merge upserts but never deletes, so hosts the transmitter
		// pruned from its tombstone table (>4096 expiries between
		// pulls) can linger here until MaxStatusAge ages them out; see
		// DESIGN.md "status distribution" for the trade-off.
		r.db.Merge(reply.sys, reply.net, reply.sec)
		r.admitted(3)
	case reply.delta:
		if !haveCur || !cur.synced || cur.ver != base {
			// The base this delta was computed against is no longer
			// what we mirror (a concurrent pull interleaved); drop it
			// and let the next pull restart from the current version.
			r.resyncs.Add(1)
			r.pullVers[addr] = pullState{}
			return nil
		}
		r.db.ApplySysDelta(reply.sysV.Changed, reply.sysV.Deleted, reply.sysV.Refreshed)
		r.db.ApplyNetDelta(reply.netV.Changed, reply.netV.Deleted, reply.netV.Refreshed)
		r.db.ApplySecDelta(reply.secV.Changed, reply.secV.Deleted, reply.secV.Refreshed)
		r.catchup.Observe(int64(reply.ver - base))
		r.admitted(1)
	default:
		// An empty reply: the transmitter had nothing newer. Leave the
		// mirrored version untouched — head and applied agree.
		lag.applied.Set(int64(reply.ver))
		return nil
	}
	lag.applied.Set(int64(reply.ver))
	r.pullVers[addr] = pullState{ver: reply.ver, synced: true}
	return nil
}

// pullFromCompat is the thesis pull: collect full snapshots from all
// transmitters, then load them wholesale.
func (r *Receiver) pullFromCompat(transmitters []string, timeout time.Duration) error {
	var firstErr error
	var merged mergedBatches
	for _, addr := range transmitters {
		// Each pull fills its own batch, merged only on full success:
		// a connection dying mid-snapshot must not leak half a server
		// list into the wizard's view alongside a healthy reply.
		one, err := r.pullOneCompat(addr, timeout)
		if err != nil {
			r.logf("receiver: pull %s: %v", addr, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		merged.any = true
		merged.sys = append(merged.sys, one.sys...)
		merged.net = append(merged.net, one.net...)
		merged.sec = append(merged.sec, one.sec...)
	}
	if merged.any {
		r.db.Load(merged.sys, merged.net, merged.sec)
		r.admitted(3)
		return nil
	}
	if firstErr != nil {
		return fmt.Errorf("transport: pull failed everywhere: %w", firstErr)
	}
	return nil
}

type mergedBatches struct {
	any bool
	sys []status.ServerStatus
	net []status.NetMetric
	sec []status.SecLevel
}

func (r *Receiver) pullOneCompat(addr string, timeout time.Duration) (mergedBatches, error) {
	var m mergedBatches
	conn, err := r.dialPull(addr, timeout)
	if err != nil {
		return m, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return m, err
	}
	if err := status.WriteFrame(conn, status.Frame{Type: status.TypeRequest}); err != nil {
		return m, err
	}
	for i := 0; i < 3; i++ {
		f, err := status.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				r.torn.Add(1)
			}
			return m, err
		}
		switch f.Type {
		case status.TypeSystem:
			recs, err := status.UnmarshalSystemBatch(f.Data)
			if err != nil {
				return m, err
			}
			m.sys = append(m.sys, recs...)
		case status.TypeNetwork:
			recs, err := status.UnmarshalNetBatch(f.Data)
			if err != nil {
				return m, err
			}
			m.net = append(m.net, recs...)
		case status.TypeSecurity:
			recs, err := status.UnmarshalSecBatch(f.Data)
			if err != nil {
				return m, err
			}
			m.sec = append(m.sec, recs...)
		default:
			r.unknown.Add(1)
			return m, fmt.Errorf("transport: unexpected frame type %v in pull reply", f.Type)
		}
	}
	return m, nil
}

// dialPull opens a pull connection through the configured hook.
func (r *Receiver) dialPull(addr string, timeout time.Duration) (net.Conn, error) {
	if r.Dial != nil {
		return r.Dial("tcp", addr)
	}
	return net.DialTimeout("tcp", addr, timeout)
}

func (t *Transmitter) logf(format string, args ...any) {
	if t.logger != nil {
		t.logger.Printf(format, args...)
	}
}

func (r *Receiver) logf(format string, args ...any) {
	if r.logger != nil {
		r.logger.Printf(format, args...)
	}
}
