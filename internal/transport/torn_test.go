package transport

// Regression tests for mid-frame stream death. Historically the
// receiver treated a connection that died halfway through a frame
// exactly like a clean close — silently — and a failed distributed
// pull could leak half a snapshot into the merge next to a healthy
// transmitter's reply.

import (
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"smartsock/internal/status"
	"smartsock/internal/store"
)

// TestChaosReceiverDistinguishesTornFromCleanClose pins the EOF
// semantics: a transmitter closing between frames is normal churn; a
// stream dying inside a frame is a fault and must be counted.
func TestChaosReceiverDistinguishesTornFromCleanClose(t *testing.T) {
	db := store.New()
	r, err := NewReceiver(db, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go r.Run(ctx)

	// Clean close: one complete frame, then EOF at a frame boundary.
	conn, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	frame := status.Frame{Type: status.TypeSystem, Data: status.MarshalSystemBatch(nil)}
	if err := status.WriteFrame(conn, frame); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return r.Received() == 1 })
	if r.Torn() != 0 {
		t.Fatalf("clean close counted as torn (Torn=%d)", r.Torn())
	}

	// Torn close: a header promising 100 payload bytes, then death
	// after 5 — the wire image of a crashed transmitter.
	conn2, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, 5)
	hdr[0] = byte(status.TypeSystem)
	binary.BigEndian.PutUint32(hdr[1:], 100)
	if _, err := conn2.Write(append(hdr, []byte("stub!")...)); err != nil {
		t.Fatal(err)
	}
	if err := conn2.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return r.Torn() == 1 })
	if r.Received() != 1 {
		t.Fatalf("torn frame was applied (Received=%d)", r.Received())
	}
}

// TestChaosPullDropsPartialSnapshots starts one healthy passive
// transmitter and one that dies mid-snapshot; the merged load must
// contain only the healthy records — the partial server list must not
// ride along.
func TestChaosPullDropsPartialSnapshots(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Healthy passive transmitter over a database holding "solid".
	txDB := store.New()
	txDB.PutSys(status.ServerStatus{Host: "solid", MemTotal: 1})
	tx, err := NewTransmitter(txDB, nil)
	if err != nil {
		t.Fatal(err)
	}
	healthyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go tx.ServePassive(ctx, healthyLn)

	// Broken transmitter: answers the pull with one full frame naming
	// "phantom", then dies before completing the 3-frame snapshot.
	brokenLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer brokenLn.Close()
	go func() {
		c, err := brokenLn.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		if err := c.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
			return
		}
		if _, err := status.ReadFrame(c); err != nil {
			return
		}
		phantom := status.MarshalSystemBatch([]status.ServerStatus{{Host: "phantom"}})
		_ = status.WriteFrame(c, status.Frame{Type: status.TypeSystem, Data: phantom})
		// Start the network frame but die inside it: a header promising
		// 50 payload bytes followed by 3.
		hdr := make([]byte, 5)
		hdr[0] = byte(status.TypeNetwork)
		binary.BigEndian.PutUint32(hdr[1:], 50)
		_, _ = c.Write(append(hdr, []byte("die")...))
	}()

	recvDB := store.New()
	recv, err := NewReceiver(recvDB, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The broken transmitter first, so its partial batch would land in
	// the merge ahead of the healthy one if the leak regressed.
	if err := recv.PullFrom([]string{brokenLn.Addr().String(), healthyLn.Addr().String()}, 2*time.Second); err != nil {
		t.Fatalf("pull with one healthy transmitter failed: %v", err)
	}
	if _, ok := recvDB.GetSys("solid"); !ok {
		t.Fatal("healthy transmitter's record missing after merge")
	}
	if _, ok := recvDB.GetSys("phantom"); ok {
		t.Fatal("partial snapshot leaked into the merged load")
	}
	if recv.Torn() == 0 {
		t.Error("mid-snapshot pull death was not counted as torn")
	}
}
