// Package workload generates server load, standing in for SuperPI —
// the memory- and CPU-hungry π calculator the thesis runs to create
// busy servers (Table 4.1, §5.3.1 experiment 4: "the Super_PI program
// will occupy 150 MBytes of memory and CPU usage will vary from 0% to
// 100%. The system load value will remain above 1").
//
// Two forms exist:
//
//   - Apply programs a synthetic status source with the load figures a
//     SuperPI run would produce, for the simulated testbed;
//
//   - Burn actually consumes CPU and memory in-process, for driving a
//     live /proc-based probe.
package workload

import (
	"context"
	"math"
	"runtime"
	"time"

	"smartsock/internal/status"
	"smartsock/internal/sysinfo"
)

// Load describes a workload's footprint.
type Load struct {
	// MemoryBytes held by the program (SuperPI with parameter 25 takes
	// ≈150 MB).
	MemoryBytes uint64
	// CPUBusy is the fraction of CPU consumed (0..1).
	CPUBusy float64
	// LoadAvg is the contribution to the 1-minute load average
	// (SuperPI keeps it above 1).
	LoadAvg float64
}

// SuperPI returns the footprint of the thesis's workload generator
// with parameter 25.
func SuperPI() Load {
	return Load{
		MemoryBytes: 150 * 1024 * 1024,
		CPUBusy:     0.95,
		LoadAvg:     1.2,
	}
}

// Apply adds the load to a synthetic host's reported status and
// returns a release function that removes it again — starting and
// stopping SuperPI on a virtual machine. Memory is clamped so a small
// host never reports negative free memory (it would swap instead).
func Apply(src *sysinfo.Synthetic, l Load) (release func()) {
	var clampedMem uint64
	src.Update(func(s *status.ServerStatus) {
		clampedMem = l.MemoryBytes
		if clampedMem > s.MemFree {
			clampedMem = s.MemFree
		}
		s.MemFree -= clampedMem
		s.MemUsed += clampedMem
		s.Load1 += l.LoadAvg
		s.Load5 += l.LoadAvg * 0.8
		s.Load15 += l.LoadAvg * 0.5
		busy := l.CPUBusy
		if busy > s.CPUIdle {
			busy = s.CPUIdle
		}
		s.CPUIdle -= busy
		s.CPUUser += busy
	})
	var released bool
	return func() {
		if released {
			return
		}
		released = true
		src.Update(func(s *status.ServerStatus) {
			s.MemFree += clampedMem
			s.MemUsed -= clampedMem
			s.Load1 -= l.LoadAvg
			s.Load5 -= l.LoadAvg * 0.8
			s.Load15 -= l.LoadAvg * 0.5
			busy := l.CPUBusy
			if s.CPUUser < busy {
				busy = s.CPUUser
			}
			s.CPUUser -= busy
			s.CPUIdle += busy
		})
	}
}

// Burn holds memoryBytes of heap and spins the CPU at roughly
// cpuBusy duty cycle until the context is cancelled — a real SuperPI
// stand-in for live-probe demonstrations. It returns after the
// context ends.
func Burn(ctx context.Context, memoryBytes int, cpuBusy float64) {
	if cpuBusy <= 0 {
		cpuBusy = 0.5
	}
	if cpuBusy > 1 {
		cpuBusy = 1
	}
	var hold []byte
	if memoryBytes > 0 {
		hold = make([]byte, memoryBytes)
		// Touch every page so the memory is really resident.
		for i := 0; i < len(hold); i += 4096 {
			hold[i] = byte(i)
		}
	}
	period := 20 * time.Millisecond
	busy := time.Duration(float64(period) * cpuBusy)
	x := 1.000001
	for ctx.Err() == nil {
		start := time.Now()
		for time.Since(start) < busy {
			// π by Machin-like churn: keep the FPU warm, like SuperPI.
			x = math.Sqrt(x*x + 1e-9)
		}
		if idle := period - busy; idle > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(idle):
			}
		}
	}
	runtime.KeepAlive(hold)
	_ = x
}
