package workload

import (
	"context"
	"testing"
	"time"

	"smartsock/internal/sysinfo"
)

func TestApplySuperPIFootprint(t *testing.T) {
	// Table 4.1: before/after memory comparison around SuperPI.
	src := sysinfo.NewSynthetic(sysinfo.Idle("mimas", 3394.76, 256))
	before, _ := src.Snapshot()

	release := Apply(src, SuperPI())
	during, _ := src.Snapshot()

	if during.MemFree >= before.MemFree {
		t.Error("SuperPI did not consume memory")
	}
	if before.MemFree-during.MemFree != 150*1024*1024 {
		t.Errorf("memory delta = %d, want 150 MB", before.MemFree-during.MemFree)
	}
	if during.Load1 <= 1 {
		t.Errorf("Load1 = %v, thesis says it stays above 1", during.Load1)
	}
	if during.CPUIdle > 0.1 {
		t.Errorf("CPUIdle = %v during SuperPI", during.CPUIdle)
	}

	release()
	after, _ := src.Snapshot()
	if after.MemFree != before.MemFree || after.MemUsed != before.MemUsed {
		t.Errorf("memory not restored: before free=%d after=%d", before.MemFree, after.MemFree)
	}
	if diff := after.Load1 - before.Load1; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Load1 not restored: %v vs %v", after.Load1, before.Load1)
	}
}

func TestApplyClampsToAvailableMemory(t *testing.T) {
	// A 64 MB host cannot lose 150 MB; free memory must never go
	// negative (it would swap instead).
	src := sysinfo.NewSynthetic(sysinfo.Idle("tiny", 1000, 64))
	release := Apply(src, SuperPI())
	defer release()
	s, _ := src.Snapshot()
	if s.MemFree != 0 {
		t.Errorf("MemFree = %d, want 0 (fully consumed)", s.MemFree)
	}
	if s.MemUsed > s.MemTotal {
		t.Errorf("MemUsed %d exceeds MemTotal %d", s.MemUsed, s.MemTotal)
	}
}

func TestReleaseIsIdempotent(t *testing.T) {
	src := sysinfo.NewSynthetic(sysinfo.Idle("x", 1000, 256))
	before, _ := src.Snapshot()
	release := Apply(src, SuperPI())
	release()
	release() // second call must not double-credit
	after, _ := src.Snapshot()
	if after.MemFree != before.MemFree {
		t.Error("double release corrupted memory accounting")
	}
}

func TestStackedWorkloads(t *testing.T) {
	src := sysinfo.NewSynthetic(sysinfo.Idle("x", 1000, 512))
	r1 := Apply(src, Load{MemoryBytes: 100 << 20, CPUBusy: 0.3, LoadAvg: 0.5})
	r2 := Apply(src, Load{MemoryBytes: 100 << 20, CPUBusy: 0.3, LoadAvg: 0.5})
	s, _ := src.Snapshot()
	if s.Load1 < 1.0 {
		t.Errorf("stacked Load1 = %v", s.Load1)
	}
	r1()
	r2()
	s, _ = src.Snapshot()
	if s.Load1 > 0.1 {
		t.Errorf("Load1 after releases = %v", s.Load1)
	}
}

func TestBurnRespectsContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	Burn(ctx, 1<<20, 0.5)
	if time.Since(start) > 2*time.Second {
		t.Error("Burn ran far past its context")
	}
}

func TestBurnZeroMemory(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	Burn(ctx, 0, 1.5) // cpuBusy clamped to 1, no memory held
}
