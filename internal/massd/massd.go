// Package massd implements the thesis's second evaluation
// application (§5.3.2): a massive download program that fetches a
// large object from multiple file servers in parallel, block by
// block, over the socket set the Smart library returned. Throughput
// is the performance indicator; servers run behind a shaper (the
// rshaper stand-in) so experiments control each group's bandwidth.
//
// The wire protocol is minimal: the client sends an 8-byte big-endian
// block length; the server streams exactly that many bytes back; a
// zero length says goodbye. Content is deterministic per offset so
// integrity is checkable without storing a real file.
package massd

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxBlock bounds a single requested block (16 MiB).
const MaxBlock = 16 << 20

// Server answers block requests, typically behind a shaper.Listener.
type Server struct {
	served atomic.Int64 // bytes served
}

// Served reports the total bytes this server has sent.
func (s *Server) Served() int64 { return s.served.Load() }

// Serve accepts clients on ln until the context is cancelled.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		// Accept below surfaces the close as net.ErrClosed.
		_ = ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("massd: accept: %w", err)
		}
		go s.serveConn(ctx, conn)
	}
}

func (s *Server) serveConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()
	hdr := make([]byte, 8)
	buf := make([]byte, 64*1024)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		size := binary.BigEndian.Uint64(hdr)
		if size == 0 {
			return // polite goodbye
		}
		if size > MaxBlock {
			return // protocol violation
		}
		remaining := int(size)
		for remaining > 0 {
			chunk := remaining
			if chunk > len(buf) {
				chunk = len(buf)
			}
			n, err := conn.Write(buf[:chunk])
			s.served.Add(int64(n))
			if err != nil {
				return
			}
			remaining -= n
		}
	}
}

// Stats summarises one massive download.
type Stats struct {
	Bytes    int64
	Elapsed  time.Duration
	PerConn  []int64 // bytes fetched through each connection
	Requests int64
}

// ThroughputKBps reports the aggregate throughput in KB/s, the unit
// of Figs 5.3–5.6.
func (s Stats) ThroughputKBps() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Bytes) / 1024 / s.Elapsed.Seconds()
}

// Download fetches total bytes in blk-sized blocks across the given
// connections. Each connection runs a puller goroutine that grabs the
// next block from a shared counter — "the same algorithm as the
// matrix multiplication program": faster servers serve more blocks.
func Download(ctx context.Context, conns []net.Conn, total, blk int64) (Stats, error) {
	if len(conns) == 0 {
		return Stats{}, fmt.Errorf("massd: no server connections")
	}
	if total <= 0 || blk <= 0 {
		return Stats{}, fmt.Errorf("massd: invalid sizes total=%d blk=%d", total, blk)
	}
	if blk > MaxBlock {
		return Stats{}, fmt.Errorf("massd: block %d exceeds protocol limit %d", blk, MaxBlock)
	}
	nBlocks := (total + blk - 1) / blk
	var next atomic.Int64
	stats := Stats{PerConn: make([]int64, len(conns))}
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup

	start := time.Now()
	for ci, conn := range conns {
		wg.Add(1)
		go func(ci int, conn net.Conn) {
			defer wg.Done()
			hdr := make([]byte, 8)
			buf := make([]byte, 64*1024)
			for {
				if ctx.Err() != nil {
					return
				}
				i := next.Add(1) - 1
				if i >= nBlocks {
					return
				}
				want := blk
				if rem := total - i*blk; rem < want {
					want = rem
				}
				binary.BigEndian.PutUint64(hdr, uint64(want))
				if _, err := conn.Write(hdr); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("massd: request block %d: %w", i, err)
					}
					mu.Unlock()
					return
				}
				remaining := want
				for remaining > 0 {
					chunk := remaining
					if chunk > int64(len(buf)) {
						chunk = int64(len(buf))
					}
					n, err := io.ReadFull(conn, buf[:chunk])
					stats.PerConn[ci] += int64(n)
					remaining -= int64(n)
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("massd: read block %d: %w", i, err)
						}
						mu.Unlock()
						return
					}
				}
				atomic.AddInt64(&stats.Requests, 1)
			}
		}(ci, conn)
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	for _, b := range stats.PerConn {
		stats.Bytes += b
	}
	if firstErr != nil {
		return stats, firstErr
	}
	if stats.Bytes != total {
		return stats, fmt.Errorf("massd: fetched %d of %d bytes", stats.Bytes, total)
	}
	// Politely close the sessions.
	zero := make([]byte, 8)
	for _, conn := range conns {
		conn.Write(zero)
	}
	return stats, nil
}
