package massd

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"smartsock/internal/shaper"
)

// startServer launches a massd file server; rate 0 leaves it
// unshaped, otherwise the listener's aggregate uplink is capped at
// rate bytes/second (the rshaper substitution).
func startServer(t *testing.T, rate float64) (addr string, srv *Server) {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var ln net.Listener = raw
	if rate > 0 {
		shaped, err := shaper.NewListener(raw, rate)
		if err != nil {
			t.Fatal(err)
		}
		ln = shaped
	}
	srv = &Server{}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go srv.Serve(ctx, ln)
	return raw.Addr().String(), srv
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestDownloadSingleServer(t *testing.T) {
	addr, srv := startServer(t, 0)
	conn := dial(t, addr)
	stats, err := Download(context.Background(), []net.Conn{conn}, 500*1024, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes != 500*1024 {
		t.Errorf("Bytes = %d", stats.Bytes)
	}
	if stats.Requests != 8 { // ceil(500/64) blocks
		t.Errorf("Requests = %d, want 8", stats.Requests)
	}
	if srv.Served() != 500*1024 {
		t.Errorf("server served %d", srv.Served())
	}
	if stats.ThroughputKBps() <= 0 {
		t.Error("no throughput computed")
	}
}

func TestDownloadSpreadsAcrossServers(t *testing.T) {
	addr1, _ := startServer(t, 0)
	addr2, _ := startServer(t, 0)
	conns := []net.Conn{dial(t, addr1), dial(t, addr2)}
	stats, err := Download(context.Background(), conns, 1<<20, 32*1024)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes != 1<<20 {
		t.Fatalf("Bytes = %d", stats.Bytes)
	}
	for i, b := range stats.PerConn {
		if b == 0 {
			t.Errorf("connection %d fetched nothing", i)
		}
	}
}

func TestDownloadValidation(t *testing.T) {
	if _, err := Download(context.Background(), nil, 100, 10); err == nil {
		t.Error("accepted no connections")
	}
	addr, _ := startServer(t, 0)
	conn := dial(t, addr)
	if _, err := Download(context.Background(), []net.Conn{conn}, 0, 10); err == nil {
		t.Error("accepted zero total")
	}
	if _, err := Download(context.Background(), []net.Conn{conn}, 100, 0); err == nil {
		t.Error("accepted zero block")
	}
	if _, err := Download(context.Background(), []net.Conn{conn}, 100, MaxBlock+1); err == nil {
		t.Error("accepted oversized block")
	}
}

func TestThroughputTracksShaperRate(t *testing.T) {
	// Fig 5.3: "the bandwidth values set by rshaper were very close to
	// the actual throughput we can get from massd".
	rate := 400 * 1024.0 // 400 KB/s
	addr, _ := startServer(t, rate)
	conn := dial(t, addr)
	total := int64(200 * 1024) // half a second of traffic
	stats, err := Download(context.Background(), []net.Conn{conn}, total, 32*1024)
	if err != nil {
		t.Fatal(err)
	}
	got := stats.ThroughputKBps() * 1024
	if math.Abs(got-rate)/rate > 0.6 {
		t.Errorf("throughput %.0f B/s vs shaped %.0f B/s", got, rate)
	}
	if got > rate*1.6 {
		t.Errorf("throughput %.0f exceeds the shaped cap %.0f", got, rate)
	}
}

func TestFastServerOutservesSlowServer(t *testing.T) {
	// The pull model behind both massd and the matrix master: the
	// faster server ends up serving more blocks.
	fastAddr, fastSrv := startServer(t, 1024*1024)
	slowAddr, slowSrv := startServer(t, 64*1024)
	conns := []net.Conn{dial(t, fastAddr), dial(t, slowAddr)}
	_, err := Download(context.Background(), conns, 768*1024, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	if fastSrv.Served() <= slowSrv.Served() {
		t.Errorf("fast served %d, slow served %d", fastSrv.Served(), slowSrv.Served())
	}
}

func TestDownloadDeadServerReportsError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			conn.Close() // die before serving anything
		}
		ln.Close()
	}()
	conn := dial(t, ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := Download(ctx, []net.Conn{conn}, 1<<20, 64*1024); err == nil {
		t.Error("dead server went unnoticed")
	}
}

func TestServerRejectsOversizeRequest(t *testing.T) {
	addr, _ := startServer(t, 0)
	conn := dial(t, addr)
	// Hand-roll a request above MaxBlock; the server must drop the
	// connection rather than stream 2^60 bytes.
	hdr := make([]byte, 8)
	hdr[0] = 0x10
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server answered an oversize request")
	}
}

func TestStatsThroughputZeroElapsed(t *testing.T) {
	if (Stats{Bytes: 100}).ThroughputKBps() != 0 {
		t.Error("zero elapsed should yield zero throughput")
	}
}
