package sysinfo

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"smartsock/internal/status"
)

func TestSyntheticSnapshotAndUpdate(t *testing.T) {
	sy := NewSynthetic(Idle("helene", 3394.76, 256))
	s, err := sy.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if s.Host != "helene" || s.Bogomips != 3394.76 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.MemTotal != 256*1024*1024 {
		t.Errorf("MemTotal = %d", s.MemTotal)
	}
	sy.Update(func(st *status.ServerStatus) {
		st.Load1 = 1.5
		st.CPUIdle = 0.1
	})
	s2, _ := sy.Snapshot()
	if s2.Load1 != 1.5 || s2.CPUIdle != 0.1 {
		t.Errorf("update not visible: %+v", s2)
	}
	if s.Load1 == 1.5 {
		t.Error("earlier snapshot aliased the live state")
	}
}

func TestIdleIsMostlyFree(t *testing.T) {
	s := Idle("x", 1730.15, 128)
	if s.CPUFree() < 0.9 {
		t.Errorf("idle CPUFree = %v", s.CPUFree())
	}
	if s.MemFree <= s.MemUsed {
		t.Errorf("idle memory mostly used: free=%d used=%d", s.MemFree, s.MemUsed)
	}
	if s.MemFree+s.MemUsed != s.MemTotal {
		t.Error("memory does not add up")
	}
}

func TestSyntheticConcurrentUpdates(t *testing.T) {
	sy := NewSynthetic(Idle("x", 1000, 128))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sy.Update(func(st *status.ServerStatus) { st.Load1 += 0.001 })
				sy.Snapshot()
			}
		}()
	}
	wg.Wait()
	s, _ := sy.Snapshot()
	want := 0.01 + 8*100*0.001
	if diff := s.Load1 - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Load1 = %v, want %v (lost updates)", s.Load1, want)
	}
}

// writeFixture builds a miniature /proc tree.
func writeFixture(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func fixtureTree(t *testing.T, cpu string, netBytes string) string {
	dir := t.TempDir()
	writeFixture(t, dir, map[string]string{
		"loadavg": "0.42 0.31 0.18 1/123 4567\n",
		"stat":    cpu,
		"meminfo": "MemTotal:       256068 kB\nMemFree:        137820 kB\nBuffers:         17856 kB\nCached:          80968 kB\n",
		"net/dev": "Inter-|   Receive                                                |  Transmit\n" +
			" face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed\n" +
			"    lo:  999999    9999    0    0    0     0          0         0   999999    9999    0    0    0     0       0          0\n" +
			"  eth0: " + netBytes + "\n",
		"diskstats": "   8       0 sda 100 0 800 0 50 0 400 0 0 0 0\n",
		"cpuinfo":   "processor\t: 0\nmodel name\t: Pentium III (Coppermine)\nbogomips\t: 1730.15\n",
	})
	return dir
}

func TestProcSourceFirstSnapshot(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("proc fixture layout assumes linux-style paths")
	}
	dir := fixtureTree(t, "cpu  100 0 50 850 0 0 0 0\n", "1000 10 0 0 0 0 0 0 2000 20 0 0 0 0 0 0")
	src := NewProcSource("sagit", dir)
	s, err := src.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if s.Host != "sagit" {
		t.Errorf("Host = %q", s.Host)
	}
	if s.Load1 != 0.42 || s.Load5 != 0.31 || s.Load15 != 0.18 {
		t.Errorf("loadavg = %v %v %v", s.Load1, s.Load5, s.Load15)
	}
	if s.Bogomips != 1730.15 {
		t.Errorf("Bogomips = %v", s.Bogomips)
	}
	// First snapshot: CPU fractions since boot = 100/1000 user etc.
	if s.CPUUser != 0.1 || s.CPUSystem != 0.05 || s.CPUIdle != 0.85 {
		t.Errorf("cpu = %v %v %v %v", s.CPUUser, s.CPUNice, s.CPUSystem, s.CPUIdle)
	}
	if s.MemTotal != 256068*1024 {
		t.Errorf("MemTotal = %d", s.MemTotal)
	}
	wantFree := uint64(137820+17856+80968) * 1024
	if s.MemFree != wantFree {
		t.Errorf("MemFree = %d, want %d (free+buffers+cached)", s.MemFree, wantFree)
	}
	if s.NetIface != "eth0" {
		t.Errorf("NetIface = %q (lo must be skipped)", s.NetIface)
	}
}

func TestProcSourceRatesBetweenScans(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("proc fixture layout assumes linux-style paths")
	}
	dir := fixtureTree(t, "cpu  100 0 50 850 0 0 0 0\n", "1000 10 0 0 0 0 0 0 2000 20 0 0 0 0 0 0")
	src := NewProcSource("sagit", dir)
	if _, err := src.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Second scan: 90 more user jiffies, 10 more idle; net counters grew.
	writeFixture(t, dir, map[string]string{
		"stat": "cpu  190 0 50 860 0 0 0 0\n",
		"net/dev": "header\nheader\n" +
			"  eth0: 51000 110 0 0 0 0 0 0 102000 120 0 0 0 0 0 0\n",
	})
	s, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s.CPUUser != 0.9 || s.CPUIdle != 0.1 {
		t.Errorf("interval cpu = user %v idle %v, want 0.9 / 0.1", s.CPUUser, s.CPUIdle)
	}
	if s.NetRBytesPS <= 0 || s.NetTBytesPS <= 0 {
		t.Errorf("net rates = %v / %v, want positive", s.NetRBytesPS, s.NetTBytesPS)
	}
}

func TestProcSourceCounterWrapIsZeroNotNegative(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("proc fixture layout assumes linux-style paths")
	}
	dir := fixtureTree(t, "cpu  100 0 50 850 0 0 0 0\n", "999999 10 0 0 0 0 0 0 999999 20 0 0 0 0 0 0")
	src := NewProcSource("sagit", dir)
	if _, err := src.Snapshot(); err != nil {
		t.Fatal(err)
	}
	writeFixture(t, dir, map[string]string{
		"stat": "cpu  200 0 50 900 0 0 0 0\n",
		"net/dev": "h\nh\n" +
			"  eth0: 5 1 0 0 0 0 0 0 5 1 0 0 0 0 0 0\n", // counters reset
	})
	s, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s.NetRBytesPS != 0 || s.NetTBytesPS != 0 {
		t.Errorf("wrapped counters produced rates %v / %v, want 0", s.NetRBytesPS, s.NetTBytesPS)
	}
}

func TestProcSourceMissingOptionalFiles(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("proc fixture layout assumes linux-style paths")
	}
	dir := t.TempDir()
	writeFixture(t, dir, map[string]string{
		"loadavg": "0.1 0.2 0.3 1/1 1\n",
		"stat":    "cpu  10 0 10 80 0 0 0 0\n",
		"meminfo": "MemTotal: 1000 kB\nMemFree: 500 kB\n",
	})
	src := NewProcSource("bare", dir)
	s, err := src.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot with missing optional files: %v", err)
	}
	if s.MemTotal != 1000*1024 {
		t.Errorf("MemTotal = %d", s.MemTotal)
	}
}

func TestProcSourceMissingRequiredFile(t *testing.T) {
	src := NewProcSource("x", t.TempDir())
	if _, err := src.Snapshot(); err == nil {
		t.Error("Snapshot succeeded without loadavg")
	}
}

func TestProcSourceOnRealProc(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("requires a live /proc")
	}
	if _, err := os.Stat("/proc/loadavg"); err != nil {
		t.Skip("no /proc available")
	}
	src := NewProcSource("localhost", "/proc")
	s, err := src.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot(/proc): %v", err)
	}
	if s.MemTotal == 0 {
		t.Error("real /proc reported zero total memory")
	}
	sum := s.CPUUser + s.CPUNice + s.CPUSystem + s.CPUIdle
	if sum < 0.5 || sum > 1.5 {
		t.Errorf("cpu fractions sum to %v, expected near 1 (idle+user+sys+nice only)", sum)
	}
}
