package sysinfo

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	stdsync "sync"
	"time"

	"smartsock/internal/status"
)

// The five /proc nodes of §4.1 (diskstats replaces the 2.4-kernel
// disk_io line in /proc/stat on modern kernels; cpuinfo supplies
// bogomips).
const (
	loadavgFile   = "loadavg"
	statFile      = "stat"
	meminfoFile   = "meminfo"
	netdevFile    = "net/dev"
	diskstatsFile = "diskstats"
	cpuinfoFile   = "cpuinfo"
)

// ProcSource reads live status from a Linux /proc tree. It keeps the
// previous scan's cumulative counters so CPU, disk and network figures
// come out as per-interval rates, the way the thesis probe reports
// them.
type ProcSource struct {
	host string
	root string // usually "/proc"; tests point it at a fixture tree

	mu       stdsync.Mutex
	prev     counters
	prevTime time.Time
	bogomips float64 // cached; cpuinfo does not change
}

type counters struct {
	cpuUser, cpuNice, cpuSystem, cpuIdle uint64
	diskReads, diskReadSectors           uint64
	diskWrites, diskWriteSectors         uint64
	netRBytes, netRPackets               uint64
	netTBytes, netTPackets               uint64
	netIface                             string
	valid                                bool
}

// NewProcSource creates a live /proc reader reporting under the given
// host name. root is the /proc mount point ("/proc" in production;
// tests supply a fixture directory).
func NewProcSource(host, root string) *ProcSource {
	return &ProcSource{host: host, root: root}
}

// Snapshot scans the /proc tree. The first call reports rates
// averaged since boot; later calls report rates over the interval
// since the previous call, matching the probe's periodic scan.
func (p *ProcSource) Snapshot() (status.ServerStatus, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	var s status.ServerStatus
	s.Host = p.host

	if err := p.readLoadavg(&s); err != nil {
		return s, err
	}
	cur, err := p.readCounters()
	if err != nil {
		return s, err
	}
	if err := p.readMeminfo(&s); err != nil {
		return s, err
	}
	if p.bogomips == 0 {
		p.bogomips = p.readBogomips()
	}
	s.Bogomips = p.bogomips
	s.NetIface = cur.netIface

	now := time.Now()
	if p.prev.valid {
		dt := now.Sub(p.prevTime).Seconds()
		if dt <= 0 {
			dt = 1e-9
		}
		fillRates(&s, p.prev, cur, dt)
	} else {
		// First scan: CPU fractions since boot; IO rates unknown.
		total := cur.cpuUser + cur.cpuNice + cur.cpuSystem + cur.cpuIdle
		if total > 0 {
			s.CPUUser = float64(cur.cpuUser) / float64(total)
			s.CPUNice = float64(cur.cpuNice) / float64(total)
			s.CPUSystem = float64(cur.cpuSystem) / float64(total)
			s.CPUIdle = float64(cur.cpuIdle) / float64(total)
		}
	}
	p.prev = cur
	p.prevTime = now
	return s, nil
}

func fillRates(s *status.ServerStatus, prev, cur counters, dt float64) {
	du := cur.cpuUser - prev.cpuUser
	dn := cur.cpuNice - prev.cpuNice
	ds := cur.cpuSystem - prev.cpuSystem
	di := cur.cpuIdle - prev.cpuIdle
	total := du + dn + ds + di
	if total > 0 {
		s.CPUUser = float64(du) / float64(total)
		s.CPUNice = float64(dn) / float64(total)
		s.CPUSystem = float64(ds) / float64(total)
		s.CPUIdle = float64(di) / float64(total)
	}
	rate := func(a, b uint64) float64 {
		if b < a {
			return 0 // counter wrapped or interface reset
		}
		return float64(b-a) / dt
	}
	s.DiskRReq = rate(prev.diskReads, cur.diskReads)
	s.DiskRBlocks = rate(prev.diskReadSectors, cur.diskReadSectors)
	s.DiskWReq = rate(prev.diskWrites, cur.diskWrites)
	s.DiskWBlocks = rate(prev.diskWriteSectors, cur.diskWriteSectors)
	s.DiskAllReq = s.DiskRReq + s.DiskWReq
	s.NetRBytesPS = rate(prev.netRBytes, cur.netRBytes)
	s.NetRPacketsPS = rate(prev.netRPackets, cur.netRPackets)
	s.NetTBytesPS = rate(prev.netTBytes, cur.netTBytes)
	s.NetTPacketsPS = rate(prev.netTPackets, cur.netTPackets)
}

func (p *ProcSource) readLoadavg(s *status.ServerStatus) error {
	data, err := os.ReadFile(filepath.Join(p.root, loadavgFile))
	if err != nil {
		return fmt.Errorf("sysinfo: %w", err)
	}
	fields := strings.Fields(string(data))
	if len(fields) < 3 {
		return fmt.Errorf("sysinfo: malformed loadavg %q", string(data))
	}
	vals := make([]float64, 3)
	for i := 0; i < 3; i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return fmt.Errorf("sysinfo: bad loadavg field %q: %v", fields[i], err)
		}
		vals[i] = v
	}
	s.Load1, s.Load5, s.Load15 = vals[0], vals[1], vals[2]
	return nil
}

func (p *ProcSource) readCounters() (counters, error) {
	var c counters
	if err := p.readStat(&c); err != nil {
		return c, err
	}
	// diskstats and net/dev are best-effort: containers and unusual
	// kernels may omit them, and the probe should still report CPU
	// and memory.
	p.readDiskstats(&c)
	p.readNetdev(&c)
	c.valid = true
	return c, nil
}

func (p *ProcSource) readStat(c *counters) error {
	f, err := os.Open(filepath.Join(p.root, statFile))
	if err != nil {
		return fmt.Errorf("sysinfo: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 5 && fields[0] == "cpu" {
			vals := make([]uint64, 4)
			for i := 0; i < 4; i++ {
				v, err := strconv.ParseUint(fields[i+1], 10, 64)
				if err != nil {
					return fmt.Errorf("sysinfo: bad cpu field %q: %v", fields[i+1], err)
				}
				vals[i] = v
			}
			c.cpuUser, c.cpuNice, c.cpuSystem, c.cpuIdle = vals[0], vals[1], vals[2], vals[3]
			return sc.Err()
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("sysinfo: %w", err)
	}
	return fmt.Errorf("sysinfo: no cpu line in %s", statFile)
}

func (p *ProcSource) readMeminfo(s *status.ServerStatus) error {
	f, err := os.Open(filepath.Join(p.root, meminfoFile))
	if err != nil {
		return fmt.Errorf("sysinfo: %w", err)
	}
	defer f.Close()
	var total, free, buffers, cached uint64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			continue
		}
		v *= 1024 // meminfo reports kB
		switch fields[0] {
		case "MemTotal:":
			total = v
		case "MemFree:":
			free = v
		case "Buffers:":
			buffers = v
		case "Cached:":
			cached = v
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("sysinfo: %w", err)
	}
	if total == 0 {
		return fmt.Errorf("sysinfo: no MemTotal in %s", meminfoFile)
	}
	// Like the thesis (Table 4.1), buffers and cache count as
	// reclaimable, so "free" memory is free+buffers+cached.
	avail := free + buffers + cached
	if avail > total {
		avail = total
	}
	s.MemTotal = total
	s.MemFree = avail
	s.MemUsed = total - avail
	return nil
}

func (p *ProcSource) readDiskstats(c *counters) {
	f, err := os.Open(filepath.Join(p.root, diskstatsFile))
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		// major minor name reads rmerged rsectors rms writes wmerged
		// wsectors ...
		fields := strings.Fields(sc.Text())
		if len(fields) < 10 {
			continue
		}
		name := fields[2]
		// Whole devices only; partitions would double-count.
		if strings.HasPrefix(name, "loop") || strings.HasPrefix(name, "ram") ||
			lastByteDigit(name) && (strings.HasPrefix(name, "sd") || strings.HasPrefix(name, "vd") || strings.HasPrefix(name, "hd")) {
			continue
		}
		u := func(i int) uint64 {
			v, _ := strconv.ParseUint(fields[i], 10, 64)
			return v
		}
		c.diskReads += u(3)
		c.diskReadSectors += u(5)
		c.diskWrites += u(7)
		c.diskWriteSectors += u(9)
	}
}

func lastByteDigit(s string) bool {
	if s == "" {
		return false
	}
	b := s[len(s)-1]
	return b >= '0' && b <= '9'
}

func (p *ProcSource) readNetdev(c *counters) {
	f, err := os.Open(filepath.Join(p.root, netdevFile))
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		name := strings.TrimSpace(line[:colon])
		if name == "lo" {
			continue
		}
		fields := strings.Fields(line[colon+1:])
		if len(fields) < 10 {
			continue
		}
		u := func(i int) uint64 {
			v, _ := strconv.ParseUint(fields[i], 10, 64)
			return v
		}
		// Aggregate all physical interfaces; report the first name.
		if c.netIface == "" {
			c.netIface = name
		}
		c.netRBytes += u(0)
		c.netRPackets += u(1)
		c.netTBytes += u(8)
		c.netTPackets += u(9)
	}
}

func (p *ProcSource) readBogomips() float64 {
	f, err := os.Open(filepath.Join(p.root, cpuinfoFile))
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(strings.ToLower(line), "bogomips") {
			continue
		}
		if i := strings.IndexByte(line, ':'); i >= 0 {
			if v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64); err == nil {
				return v
			}
		}
	}
	return 0
}
