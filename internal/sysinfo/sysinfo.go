// Package sysinfo produces the raw server-status snapshots that
// server probes report (§3.2.1, §4.1). Two sources are provided:
//
//   - ProcSource reads the live Linux /proc interface the thesis uses
//     (/proc/loadavg, /proc/stat, /proc/meminfo, /proc/net/dev,
//     /proc/diskstats, /proc/cpuinfo) and converts cumulative kernel
//     counters into per-interval rates.
//
//   - Synthetic is a deterministic, programmable source used for the
//     simulated testbed: experiments set load, CPU, memory and IO
//     figures directly (or via the workload package) and every probe
//     on a virtual host reads them.
//
// Both implement Source, so the probe is indifferent to where status
// comes from — the substitution the reproduction depends on.
package sysinfo

import (
	"sync"

	"smartsock/internal/status"
)

// Source yields one server-status snapshot per call. Implementations
// own any state needed to turn cumulative counters into rates.
type Source interface {
	Snapshot() (status.ServerStatus, error)
}

// Synthetic is a programmable status source for virtual hosts. The
// zero value is unusable; use NewSynthetic.
type Synthetic struct {
	mu sync.Mutex
	s  status.ServerStatus
}

// NewSynthetic creates a synthetic source reporting the given initial
// status. The Host field identifies the virtual machine.
func NewSynthetic(initial status.ServerStatus) *Synthetic {
	return &Synthetic{s: initial}
}

// Snapshot returns the current programmed status.
func (sy *Synthetic) Snapshot() (status.ServerStatus, error) {
	sy.mu.Lock()
	defer sy.mu.Unlock()
	return sy.s, nil
}

// Update applies fn to the programmed status under the source's lock.
// Workload generators use it to consume memory and CPU atomically.
func (sy *Synthetic) Update(fn func(*status.ServerStatus)) {
	sy.mu.Lock()
	defer sy.mu.Unlock()
	fn(&sy.s)
}

// Idle returns a ServerStatus describing an unloaded machine with the
// given host name, bogomips rating and memory size — the baseline
// state of a testbed host (Table 5.1).
func Idle(host string, bogomips float64, memMB uint64) status.ServerStatus {
	total := memMB * 1024 * 1024
	used := total / 8 // a freshly booted machine holds some kernel/cache pages
	return status.ServerStatus{
		Host:      host,
		Load1:     0.01,
		Load5:     0.02,
		Load15:    0.01,
		CPUUser:   0.01,
		CPUNice:   0,
		CPUSystem: 0.01,
		CPUIdle:   0.98,
		Bogomips:  bogomips,
		MemTotal:  total,
		MemUsed:   used,
		MemFree:   total - used,
		NetIface:  "eth0",
	}
}
