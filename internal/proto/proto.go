// Package proto defines the UDP request/reply messages exchanged
// between the client library and the wizard (Tables 3.5 and 3.6).
//
// A request is [sequence number, server number, option, request
// detail]; the reply echoes the sequence number and carries the list
// of selected server addresses. Both travel in single UDP datagrams,
// which is why the thesis caps the number of returned servers at 60.
package proto

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"
	"unsafe"
)

// MaxServers is the upper bound on servers returned in one reply; the
// list must fit a single UDP datagram (§3.6.1).
const MaxServers = 60

// Option bits modify wizard behaviour (the thesis leaves the option
// field open for "special situations"; these are the ones this
// implementation defines).
type Option uint16

const (
	// OptPartialOK tells the wizard to return fewer servers than
	// requested when not enough qualify, instead of failing.
	OptPartialOK Option = 1 << iota
	// OptRankByExpr enables the Chapter 6 extension: the final
	// non-logical expression in the requirement is used as a score and
	// the top-N servers by that score are returned ("3 servers with
	// largest memory").
	OptRankByExpr
	// OptTemplate asks the wizard to treat the request detail as the
	// name of a predefined requirement template.
	OptTemplate
)

// Request is a client's server request (Table 3.5).
type Request struct {
	Seq       uint32 // random number matching replies to requests
	ServerNum uint16 // how many servers the caller wants
	Option    Option
	Detail    string // requirement text in the meta language
}

// Reply is the wizard's answer (Table 3.6).
type Reply struct {
	Seq     uint32
	Servers []string // selected server addresses, best first
	Err     string   // non-empty when the wizard rejected the request
}

const (
	msgRequest = 0x51 // 'Q'
	msgReply   = 0x52 // 'R'
)

// overloadedPrefix is the canonical shed-reply error text. The
// retry-after hint rides inside the existing Err field rather than a
// new wire field, so old clients still see an ordinary rejection and
// the reply format (and its golden frames) is untouched.
const overloadedPrefix = "overloaded, retry-after="

// OverloadedErr builds the reply error text the wizard's admission
// plane sends for a shed request: a machine-parseable retry-after
// hint that tells the client how long to back off before resending.
// Sub-millisecond fractions are rounded away so the text stays short
// and stable.
func OverloadedErr(retryAfter time.Duration) string {
	if retryAfter < time.Millisecond {
		retryAfter = time.Millisecond
	}
	return overloadedPrefix + retryAfter.Round(time.Millisecond).String()
}

// RetryAfter extracts the backoff hint from a reply's error text.
// ok is false when the text is not an overload rejection; a mangled
// duration also reports false, so callers can never honor garbage.
func RetryAfter(errText string) (time.Duration, bool) {
	rest, found := strings.CutPrefix(errText, overloadedPrefix)
	if !found {
		return 0, false
	}
	d, err := time.ParseDuration(rest)
	if err != nil || d <= 0 {
		return 0, false
	}
	return d, true
}

// MarshalRequest encodes a request datagram.
func MarshalRequest(r *Request) []byte {
	b := make([]byte, 0, 16+len(r.Detail))
	b = append(b, msgRequest)
	b = binary.BigEndian.AppendUint32(b, r.Seq)
	b = binary.BigEndian.AppendUint16(b, r.ServerNum)
	b = binary.BigEndian.AppendUint16(b, uint16(r.Option))
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Detail)))
	return append(b, r.Detail...)
}

// UnmarshalRequest decodes a request datagram. The returned Request
// owns its Detail text and stays valid after b is reused.
func UnmarshalRequest(b []byte) (*Request, error) {
	r := new(Request)
	if err := ParseRequest(b, r); err != nil {
		return nil, err
	}
	r.Detail = strings.Clone(r.Detail)
	return r, nil
}

// ParseRequest decodes a request datagram into r without copying the
// requirement text: r.Detail aliases b, so r is valid only while b's
// bytes are stable. The wizard's serve loops parse into a per-loop
// scratch Request so a request storm decodes without allocating;
// callers that retain the request past the next buffer reuse must go
// through UnmarshalRequest instead.
func ParseRequest(b []byte, r *Request) error {
	if len(b) < 13 {
		return fmt.Errorf("proto: request datagram too short (%d bytes)", len(b))
	}
	if b[0] != msgRequest {
		return fmt.Errorf("proto: not a request datagram (tag 0x%02x)", b[0])
	}
	n := binary.BigEndian.Uint32(b[9:])
	if uint32(len(b)-13) != n {
		return fmt.Errorf("proto: request detail length %d does not match datagram (%d left)", n, len(b)-13)
	}
	r.Seq = binary.BigEndian.Uint32(b[1:])
	r.ServerNum = binary.BigEndian.Uint16(b[5:])
	r.Option = Option(binary.BigEndian.Uint16(b[7:]))
	r.Detail = ""
	if n > 0 {
		r.Detail = unsafe.String(&b[13], len(b)-13)
	}
	return nil
}

// MarshalReply encodes a reply datagram. Server names may not contain
// newlines; they are carried newline-separated after the header.
func MarshalReply(r *Reply) ([]byte, error) {
	size := 9 + len(r.Err)
	for _, s := range r.Servers {
		size += len(s) + 1
	}
	return AppendReply(make([]byte, 0, size), r)
}

// AppendReply encodes a reply datagram onto b and returns the
// extended slice. The wizard's serve loops pass a per-worker scratch
// buffer so a request storm marshals replies without allocating; the
// bytes produced are identical to MarshalReply's.
func AppendReply(b []byte, r *Reply) ([]byte, error) {
	if len(r.Servers) > MaxServers {
		return nil, fmt.Errorf("proto: %d servers exceeds reply limit %d", len(r.Servers), MaxServers)
	}
	for _, s := range r.Servers {
		if strings.ContainsAny(s, "\n") {
			return nil, fmt.Errorf("proto: server name %q contains newline", s)
		}
	}
	if strings.ContainsAny(r.Err, "\n") {
		return nil, fmt.Errorf("proto: error text contains newline")
	}
	b = append(b, msgReply)
	b = binary.BigEndian.AppendUint32(b, r.Seq)
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.Servers)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(r.Err)))
	b = append(b, r.Err...)
	for i, s := range r.Servers {
		if i > 0 {
			b = append(b, '\n')
		}
		b = append(b, s...)
	}
	return b, nil
}

// UnmarshalReply decodes a reply datagram.
func UnmarshalReply(b []byte) (*Reply, error) {
	if len(b) < 9 {
		return nil, fmt.Errorf("proto: reply datagram too short (%d bytes)", len(b))
	}
	if b[0] != msgReply {
		return nil, fmt.Errorf("proto: not a reply datagram (tag 0x%02x)", b[0])
	}
	r := &Reply{Seq: binary.BigEndian.Uint32(b[1:])}
	n := int(binary.BigEndian.Uint16(b[5:]))
	if n > MaxServers {
		return nil, fmt.Errorf("proto: reply claims %d servers, limit is %d", n, MaxServers)
	}
	errLen := int(binary.BigEndian.Uint16(b[7:]))
	b = b[9:]
	if len(b) < errLen {
		return nil, fmt.Errorf("proto: truncated reply error text")
	}
	r.Err = string(b[:errLen])
	if strings.ContainsAny(r.Err, "\n") {
		return nil, fmt.Errorf("proto: error text contains newline")
	}
	b = b[errLen:]
	if n == 0 {
		if len(b) != 0 {
			return nil, fmt.Errorf("proto: trailing bytes in empty reply")
		}
		return r, nil
	}
	r.Servers = strings.Split(string(b), "\n")
	if len(r.Servers) != n {
		return nil, fmt.Errorf("proto: reply claims %d servers, carries %d", n, len(r.Servers))
	}
	return r, nil
}
