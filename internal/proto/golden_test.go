package proto

// Golden-frame tests: the exact bytes of every request/reply shape
// are checked into testdata/, so any change to the wire format —
// field order, widths, endianness, separators — fails loudly instead
// of silently breaking mixed-version deployments where an old client
// talks to a new wizard.
//
// Regenerate after an *intentional* format change with:
//
//	go test ./internal/proto -run Golden -update

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden frame fixtures")

// goldenPath returns the fixture file for one frame name.
func goldenPath(name string) string {
	return filepath.Join("testdata", name+".hex")
}

// readGolden loads a fixture, tolerating whitespace so the hex can be
// wrapped for readability.
func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("read fixture (run with -update to create): %v", err)
	}
	clean := strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\t' {
			return -1
		}
		return r
	}, string(raw))
	b, err := hex.DecodeString(clean)
	if err != nil {
		t.Fatalf("fixture %s is not valid hex: %v", name, err)
	}
	return b
}

// writeGolden stores a frame as hex, wrapped at 32 bytes per line.
func writeGolden(t *testing.T, name string, frame []byte) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	s := hex.EncodeToString(frame)
	var b strings.Builder
	for i := 0; i < len(s); i += 64 {
		end := i + 64
		if end > len(s) {
			end = len(s)
		}
		b.WriteString(s[i:end])
		b.WriteByte('\n')
	}
	if err := os.WriteFile(goldenPath(name), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenRequestFrames(t *testing.T) {
	cases := []struct {
		name string
		req  Request
	}{
		{"request_basic", Request{
			Seq:       0x01020304,
			ServerNum: 3,
			Option:    OptPartialOK,
			Detail:    "host_cpu_free >= 0.9\nhost_memory_free > 100\n",
		}},
		{"request_template", Request{
			Seq:       0xDEADBEEF,
			ServerNum: 1,
			Option:    OptTemplate | OptRankByExpr,
			Detail:    "big-memory",
		}},
		{"request_empty_detail", Request{
			Seq:       7,
			ServerNum: 60,
			Option:    0,
			Detail:    "",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := MarshalRequest(&tc.req)
			if *update {
				writeGolden(t, tc.name, got)
				return
			}
			want := readGolden(t, tc.name)
			if !bytes.Equal(got, want) {
				t.Errorf("MarshalRequest drifted from fixture:\n got %x\nwant %x", got, want)
			}
			// The fixture must also decode back to the original struct,
			// so old frames stay readable.
			dec, err := UnmarshalRequest(want)
			if err != nil {
				t.Fatalf("UnmarshalRequest(fixture): %v", err)
			}
			if !reflect.DeepEqual(*dec, tc.req) {
				t.Errorf("fixture decoded to %+v, want %+v", *dec, tc.req)
			}
		})
	}
}

func TestGoldenReplyFrames(t *testing.T) {
	cases := []struct {
		name  string
		reply Reply
	}{
		{"reply_servers", Reply{
			Seq:     0x01020304,
			Servers: []string{"dalmatian:9000", "sagit:9000", "dione:9000"},
		}},
		{"reply_error", Reply{
			Seq: 0xDEADBEEF,
			Err: "parse requirement: reqlang: line 1 col 3: unexpected '&' (only '&&' is defined)",
		}},
		{"reply_empty", Reply{
			Seq: 7,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := MarshalReply(&tc.reply)
			if err != nil {
				t.Fatal(err)
			}
			if *update {
				writeGolden(t, tc.name, got)
				return
			}
			want := readGolden(t, tc.name)
			if !bytes.Equal(got, want) {
				t.Errorf("MarshalReply drifted from fixture:\n got %x\nwant %x", got, want)
			}
			dec, err := UnmarshalReply(want)
			if err != nil {
				t.Fatalf("UnmarshalReply(fixture): %v", err)
			}
			if !reflect.DeepEqual(*dec, tc.reply) {
				t.Errorf("fixture decoded to %+v, want %+v", *dec, tc.reply)
			}
		})
	}
}

// TestGoldenHeaderLayout documents the byte layout explicitly: if one
// of these offsets moves, the comment in the fixture no longer matches
// reality and cross-version compatibility is broken.
func TestGoldenHeaderLayout(t *testing.T) {
	req := MarshalRequest(&Request{Seq: 0xAABBCCDD, ServerNum: 0x0102, Option: 0x0304, Detail: "x"})
	if req[0] != 'Q' {
		t.Errorf("request tag = %#x, want 'Q'", req[0])
	}
	wantReq := []byte{'Q', 0xAA, 0xBB, 0xCC, 0xDD, 0x01, 0x02, 0x03, 0x04, 0, 0, 0, 1, 'x'}
	if !bytes.Equal(req, wantReq) {
		t.Errorf("request layout\n got %x\nwant %x", req, wantReq)
	}

	rep, err := MarshalReply(&Reply{Seq: 0xAABBCCDD, Servers: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	wantRep := []byte{'R', 0xAA, 0xBB, 0xCC, 0xDD, 0x00, 0x02, 0x00, 0x00, 'a', '\n', 'b'}
	if !bytes.Equal(rep, wantRep) {
		t.Errorf("reply layout\n got %x\nwant %x", rep, wantRep)
	}
}
