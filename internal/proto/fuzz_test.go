package proto

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary datagrams to UnmarshalRequest and
// checks that anything it accepts survives a marshal/unmarshal round
// trip unchanged.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{msgRequest})
	f.Add(MarshalRequest(&Request{Seq: 1, ServerNum: 3, Detail: "host_cpu_free >= 0.9"}))
	f.Add(MarshalRequest(&Request{Seq: 0xffffffff, ServerNum: 60, Option: OptPartialOK | OptTemplate, Detail: ""}))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := UnmarshalRequest(data)
		if err != nil {
			return
		}
		out := MarshalRequest(req)
		if !bytes.Equal(out, data) {
			t.Fatalf("request does not round-trip:\n in: %x\nout: %x", data, out)
		}
		again, err := UnmarshalRequest(out)
		if err != nil {
			t.Fatalf("re-decode of marshalled request failed: %v", err)
		}
		if *again != *req {
			t.Fatalf("request changed across round trip: %+v vs %+v", req, again)
		}
	})
}

// FuzzDecodeReply checks that UnmarshalReply never panics and that any
// reply it accepts can be re-marshalled and decoded back to the same
// value.
func FuzzDecodeReply(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{msgReply})
	if b, err := MarshalReply(&Reply{Seq: 7, Servers: []string{"a:1", "b:2"}}); err == nil {
		f.Add(b)
	}
	if b, err := MarshalReply(&Reply{Seq: 9, Err: "no qualified server"}); err == nil {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		reply, err := UnmarshalReply(data)
		if err != nil {
			return
		}
		out, err := MarshalReply(reply)
		if err != nil {
			t.Fatalf("decoded reply %+v cannot be re-marshalled: %v", reply, err)
		}
		again, err := UnmarshalReply(out)
		if err != nil {
			t.Fatalf("re-decode of marshalled reply failed: %v", err)
		}
		if again.Seq != reply.Seq || again.Err != reply.Err || len(again.Servers) != len(reply.Servers) {
			t.Fatalf("reply changed across round trip: %+v vs %+v", reply, again)
		}
		for i := range reply.Servers {
			if again.Servers[i] != reply.Servers[i] {
				t.Fatalf("server %d changed across round trip: %q vs %q", i, reply.Servers[i], again.Servers[i])
			}
		}
	})
}
