package proto

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	in := &Request{
		Seq:       0xDEADBEEF,
		ServerNum: 4,
		Option:    OptPartialOK | OptRankByExpr,
		Detail:    "host_cpu_free > 0.9\nhost_memory_free > 5\n",
	}
	out, err := UnmarshalRequest(MarshalRequest(in))
	if err != nil {
		t.Fatalf("UnmarshalRequest: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestRequestEmptyDetail(t *testing.T) {
	in := &Request{Seq: 1, ServerNum: 2}
	out, err := UnmarshalRequest(MarshalRequest(in))
	if err != nil {
		t.Fatalf("UnmarshalRequest: %v", err)
	}
	if out.Detail != "" {
		t.Errorf("Detail = %q, want empty", out.Detail)
	}
}

func TestUnmarshalRequestRejectsBadInput(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00},
		{msgReply, 0, 0, 0, 1, 0, 2, 0, 0, 0, 0, 0, 0},       // wrong tag
		MarshalRequest(&Request{Seq: 7, Detail: "abc"})[:14], // truncated detail
	}
	for i, c := range cases {
		if _, err := UnmarshalRequest(c); err == nil {
			t.Errorf("case %d: UnmarshalRequest succeeded, want error", i)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	in := &Reply{
		Seq:     42,
		Servers: []string{"dalmatian:9000", "dione:9000", "192.168.1.5:9000"},
	}
	b, err := MarshalReply(in)
	if err != nil {
		t.Fatalf("MarshalReply: %v", err)
	}
	out, err := UnmarshalReply(b)
	if err != nil {
		t.Fatalf("UnmarshalReply: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestReplyWithError(t *testing.T) {
	in := &Reply{Seq: 9, Err: "requirement: line 1: division by 0"}
	b, err := MarshalReply(in)
	if err != nil {
		t.Fatalf("MarshalReply: %v", err)
	}
	out, err := UnmarshalReply(b)
	if err != nil {
		t.Fatalf("UnmarshalReply: %v", err)
	}
	if out.Err != in.Err || len(out.Servers) != 0 {
		t.Errorf("got %+v, want %+v", out, in)
	}
}

func TestMarshalReplyEnforcesServerCap(t *testing.T) {
	// §3.6.1 caps the reply list at 60 because the reply is one UDP
	// datagram.
	r := &Reply{Seq: 1, Servers: make([]string, MaxServers+1)}
	for i := range r.Servers {
		r.Servers[i] = "h"
	}
	if _, err := MarshalReply(r); err == nil {
		t.Error("MarshalReply accepted more than MaxServers servers")
	}
	r.Servers = r.Servers[:MaxServers]
	if _, err := MarshalReply(r); err != nil {
		t.Errorf("MarshalReply rejected exactly MaxServers servers: %v", err)
	}
}

func TestMarshalReplyRejectsNewlines(t *testing.T) {
	if _, err := MarshalReply(&Reply{Servers: []string{"a\nb"}}); err == nil {
		t.Error("MarshalReply accepted a server name with newline")
	}
	if _, err := MarshalReply(&Reply{Err: "x\ny"}); err == nil {
		t.Error("MarshalReply accepted an error with newline")
	}
}

func TestPropertyRequestRoundTrip(t *testing.T) {
	prop := func(seq uint32, num uint16, opt uint16, detail string) bool {
		in := &Request{Seq: seq, ServerNum: num, Option: Option(opt), Detail: detail}
		out, err := UnmarshalRequest(MarshalRequest(in))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyReplyRoundTrip(t *testing.T) {
	prop := func(seq uint32, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(MaxServers + 1)
		servers := make([]string, n)
		for i := range servers {
			servers[i] = strings.Repeat("x", 1+r.Intn(20))
		}
		in := &Reply{Seq: seq, Servers: servers}
		b, err := MarshalReply(in)
		if err != nil {
			return false
		}
		out, err := UnmarshalReply(b)
		if err != nil {
			return false
		}
		if n == 0 {
			return len(out.Servers) == 0 && out.Seq == seq
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalReplyRejectsCountMismatch(t *testing.T) {
	b, err := MarshalReply(&Reply{Seq: 1, Servers: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	// Claim 3 servers but carry 2.
	b[6] = 3
	if _, err := UnmarshalReply(b); err == nil {
		t.Error("UnmarshalReply accepted a count mismatch")
	}
}

func TestOverloadedErrRoundTrip(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want time.Duration
	}{
		{100 * time.Millisecond, 100 * time.Millisecond},
		{1500 * time.Millisecond, 1500 * time.Millisecond},
		{1 * time.Millisecond, 1 * time.Millisecond},
		// Sub-millisecond hints floor at 1ms: a client cannot usefully
		// act on a finer retry interval.
		{100 * time.Microsecond, 1 * time.Millisecond},
		{0, 1 * time.Millisecond},
	}
	for _, c := range cases {
		text := OverloadedErr(c.in)
		after, ok := RetryAfter(text)
		if !ok {
			t.Fatalf("RetryAfter(%q) not recognised", text)
		}
		if after != c.want {
			t.Fatalf("RetryAfter(OverloadedErr(%v)) = %v, want %v", c.in, after, c.want)
		}
	}
}

func TestRetryAfterRejectsOtherErrors(t *testing.T) {
	for _, text := range []string{
		"",
		"no server satisfies the requirement",
		"overloaded",
		"overloaded, retry-after=",
		"overloaded, retry-after=bogus",
		"overloaded, retry-after=-5ms",
		"overloaded, retry-after=0s",
	} {
		if after, ok := RetryAfter(text); ok {
			t.Fatalf("RetryAfter(%q) = %v, want no hint", text, after)
		}
	}
}

func TestOverloadedErrSurvivesReplyEncoding(t *testing.T) {
	// The hint rides inside the normal Err field: encode and decode a
	// reply carrying it and check the hint survives the wire.
	r := &Reply{Seq: 42, Err: OverloadedErr(250 * time.Millisecond)}
	wire, err := MarshalReply(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReply(wire)
	if err != nil {
		t.Fatal(err)
	}
	after, ok := RetryAfter(got.Err)
	if !ok || after != 250*time.Millisecond {
		t.Fatalf("hint did not survive the wire: %q → %v/%v", got.Err, after, ok)
	}
}
