// Package obs is the pipeline's unified observability layer: a
// stdlib-only registry of named counters, gauges and fixed-bucket
// histograms that every component — probe monitors, the delta
// transport, the store, the wizard — reports through, replacing the
// ad-hoc per-struct atomic counters that used to be readable only via
// scattered accessor methods.
//
// The design rule is "pay at registration, not at increment": a
// component binds its metric pointers once at construction
// (Registry.Counter and friends are get-or-create by name) and the
// hot path then touches a single padded atomic — no map lookup, no
// lock, no allocation. The wizard's answer fast path and the
// transmitter's idle-epoch skip both stay at their pre-obs allocation
// counts with instrumentation live; alloc-pin tests enforce it.
//
// A nil *Registry is fully usable: every constructor method on it
// returns a live but detached metric (and GaugeFunc is a no-op), so
// library code can bind unconditionally and tests that pass no
// registry cost nothing. Components running without a registry behave
// exactly as before, just with invisible metrics.
//
// Snapshot renders the registry into plain maps for the HTTP debug
// endpoint (JSON and plaintext), experiment tables and bench
// recordings. Snapshots are per-metric atomic, not globally
// consistent: each value is read once, but two counters incremented
// together may be caught one-apart. Readers needing an ordering
// invariant across two counters (the wizard's rejected ≤ handled)
// must read them in the order that makes the invariant hold; see
// wizard.Stats.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The value is padded
// out to its own cache line so two hot counters registered together
// (a transmitter's deltas and skips, say) never false-share.
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 (a level, not a rate): a mirrored
// database version, a table size, an epoch lag.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets: counts[i] holds
// observations v ≤ bounds[i], and the final bucket holds everything
// above the last bound. Observe is lock-free and allocation-free; the
// bucket scan is linear, which beats binary search at the ≤16 bucket
// sizes latency and lag tracking use.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Uint64 // len(bounds)+1; last = overflow
	sum     atomic.Int64
	count   atomic.Uint64
}

// NewHistogram builds a detached histogram with the given upper
// bounds, which must be sorted ascending. Empty bounds yield a
// single-bucket (count-only) histogram.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count reports how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the running total of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot renders the histogram to plain values — the per-histogram
// form of Registry.Snapshot, for callers (benches, tests) that hold
// the histogram itself.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// LatencyBuckets are the default request-latency bounds in
// nanoseconds: 1µs to 1s, roughly ×5 per step. The wizard's answer
// path sits in the low microseconds when memoized and the low
// milliseconds when a distributed pull precedes matching, so the
// range brackets both regimes.
var LatencyBuckets = []int64{
	1_000, 5_000, 25_000, 100_000, 500_000,
	2_500_000, 10_000_000, 50_000_000, 250_000_000, 1_000_000_000,
}

// LagBuckets are the default epoch-lag bounds, in database versions:
// how far a mirror's applied version trailed the transmitter's head
// when an epoch arrived. 0 is the steady state (every delta applied
// as it lands); the powers of four cover catch-up after a partition.
var LagBuckets = []int64{0, 1, 4, 16, 64, 256, 1024, 4096}

// BatchBuckets are the default datagrams-per-syscall bounds for the
// batched datagram plane (internal/netbatch): 1 is the ping-pong
// floor, 64 the netbatch.MaxBatch ceiling, powers of two between. A
// histogram whose mass sits at 1 means batching is configured but the
// traffic never queues deep enough to amortise a syscall.
var BatchBuckets = []int64{1, 2, 4, 8, 16, 32, 64}

// QueueDelayBuckets are the default ingress-sojourn bounds in
// nanoseconds for the overload plane: dense around the CoDel target
// region (1–50ms) so the p99 the bench gates bound falls in a
// measured bucket, with a tail out to a second for the unprotected
// collapse curve.
var QueueDelayBuckets = []int64{
	100_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
	10_000_000, 20_000_000, 50_000_000, 100_000_000,
	250_000_000, 1_000_000_000,
}

// Registry is a namespace of metrics. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use, and all
// are safe on a nil receiver (returning detached metrics), so
// components bind unconditionally from an optional registry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Two
// components asking for the same name share one counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := new(Counter)
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := new(Gauge)
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a read-only gauge computed at snapshot time —
// the idiom for values something else already maintains (a store's
// version counter, a cache's length). Re-registering a name replaces
// the function. On a nil registry it is a no-op.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. An existing histogram wins: its original
// bounds are kept and the argument is ignored.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// HistogramSnapshot is one histogram rendered to plain values.
// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
type HistogramSnapshot struct {
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Sum    int64    `json:"sum"`
	Count  uint64   `json:"count"`
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket
// counts: the upper bound of the bucket where the cumulative count
// crosses q×total. Values landing in the overflow bucket report twice
// the last bound — a deliberately conservative over-estimate, since
// the histogram cannot see how far past the last bound they went. An
// empty histogram reports 0.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 || len(h.Counts) == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	if len(h.Bounds) == 0 {
		return h.Sum / int64(h.Count)
	}
	return 2 * h.Bounds[len(h.Bounds)-1]
}

// Snapshot is the whole registry rendered to plain maps, the unit the
// debug endpoint serves and experiments record next to BENCH numbers.
// Function gauges are evaluated into Gauges alongside the set ones.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot reads every metric once. On a nil registry it returns an
// empty (but non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	// Copy the name→metric tables under the lock, read values outside
	// it: a gauge function may itself take locks (a store read) and
	// must not nest under the registry's.
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	fns := make(map[string]func() int64, len(r.gaugeFuncs))
	for n, fn := range r.gaugeFuncs {
		fns[n] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, fn := range fns {
		s.Gauges[n] = fn()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys), the machine-readable form the
// debug endpoint serves and bench_schema.py checks.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as sorted "name value" lines, with
// histograms expanded into cumulative le-labelled buckets — the
// at-a-glance form for curl without jq.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		cum := uint64(0)
		for i, c := range h.Counts {
			cum += c
			label := "+Inf"
			if i < len(h.Bounds) {
				label = fmt.Sprintf("%d", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, label, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}
