// The opt-in HTTP debug endpoint: `sysmond -debug addr` and
// `wizardd -debug addr` serve their registry here so operators (and
// the CI smoke job) can read the whole pipeline's state with curl.
// It is a diagnostics port, not a public API: bind it to loopback or
// an operations network.

package obs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// DebugServer serves a registry over HTTP:
//
//	GET /metrics       plaintext dump (sorted name value lines)
//	GET /metrics.json  the Snapshot as indented JSON
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewDebugServer binds the debug listener; addr may use port 0.
func NewDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %q: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", textHandler(reg))
	mux.Handle("/metrics.json", jsonHandler(reg))
	return &DebugServer{
		ln: ln,
		srv: &http.Server{
			Handler:      mux,
			ReadTimeout:  10 * time.Second,
			WriteTimeout: 10 * time.Second,
		},
	}, nil
}

// Addr reports the bound address (useful with port 0).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Run serves until the context is cancelled.
func (d *DebugServer) Run(ctx context.Context) error {
	// Cancellation closes the server (and with it the listener), which
	// Serve surfaces as ErrServerClosed.
	stop := context.AfterFunc(ctx, func() { _ = d.srv.Close() })
	defer stop()
	err := d.srv.Serve(d.ln)
	if errors.Is(err, http.ErrServerClosed) || errors.Is(err, net.ErrClosed) || ctx.Err() != nil {
		return nil
	}
	return err
}

func textHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// A reader disconnecting mid-dump is its own problem; the next
		// scrape starts fresh.
		_ = reg.Snapshot().WriteText(w)
	})
}

func jsonHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.Snapshot().WriteJSON(w)
	})
}
