package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatalf("Counter not get-or-create: second lookup returned a new counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if r.Gauge("g") != g {
		t.Fatalf("Gauge not get-or-create")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	for _, v := range []int64{5, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 5+10+11+100+101+5000 {
		t.Fatalf("sum = %d", got)
	}
	want := []uint64{2, 2, 2} // ≤10, ≤100, overflow
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
	// Empty bounds: a count-only histogram with a single bucket.
	h0 := NewHistogram(nil)
	h0.Observe(3)
	if h0.Count() != 1 || h0.buckets[0].Load() != 1 {
		t.Fatalf("empty-bounds histogram did not count")
	}
}

func TestRegistryHistogramKeepsOriginalBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{1, 2})
	h2 := r.Histogram("h", []int64{9, 9, 9})
	if h != h2 {
		t.Fatalf("Histogram not get-or-create")
	}
	if len(h2.bounds) != 2 {
		t.Fatalf("existing bounds were replaced: %v", h2.bounds)
	}
}

func TestSnapshotReadsEverything(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Gauge("depth").Set(-2)
	r.GaugeFunc("derived", func() int64 { return 42 })
	r.GaugeFunc("derived", func() int64 { return 43 }) // re-register replaces
	r.Histogram("lat", []int64{10}).Observe(7)

	s := r.Snapshot()
	if s.Counters["hits"] != 3 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["depth"] != -2 || s.Gauges["derived"] != 43 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	hs, ok := s.Histograms["lat"]
	if !ok || hs.Count != 1 || hs.Sum != 7 || len(hs.Counts) != 2 || hs.Counts[0] != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
}

func TestNilRegistryIsDetachedButLive(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("detached counter dead")
	}
	g := r.Gauge("x")
	g.Set(9)
	if g.Value() != 9 {
		t.Fatalf("detached gauge dead")
	}
	h := r.Histogram("x", LatencyBuckets)
	h.Observe(1)
	if h.Count() != 1 {
		t.Fatalf("detached histogram dead")
	}
	r.GaugeFunc("x", func() int64 { return 1 }) // no-op, must not panic
	s := r.Snapshot()
	if s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		t.Fatalf("nil-registry snapshot has nil maps")
	}
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil-registry snapshot not empty: %+v", s)
	}
}

func TestGaugeFuncNilFnIgnored(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("x", nil)
	if got := len(r.Snapshot().Gauges); got != 0 {
		t.Fatalf("nil gauge func registered: %d gauges", got)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Gauge("b").Set(2)
	r.Histogram("c", []int64{5}).Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, buf.String())
	}
	if back.Counters["a"] != 1 || back.Gauges["b"] != 2 || back.Histograms["c"].Count != 1 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_hits").Add(2)
	r.Counter("aa_hits").Add(1)
	r.Gauge("lag").Set(3)
	h := r.Histogram("lat", []int64{10, 100})
	h.Observe(5)
	h.Observe(500)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Counters first, sorted.
	if lines[0] != "aa_hits 1" || lines[1] != "zz_hits 2" {
		t.Fatalf("counter lines wrong/unsorted:\n%s", out)
	}
	for _, want := range []string{
		"lag 3",
		`lat_bucket{le="10"} 1`,
		`lat_bucket{le="100"} 1`, // cumulative: nothing landed in (10,100]
		`lat_bucket{le="+Inf"} 2`,
		"lat_sum 505",
		"lat_count 2",
	} {
		if !strings.Contains(out, want+"\n") && !strings.HasSuffix(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteTextPropagatesWriteErrors(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", []int64{1}).Observe(1)
	s := r.Snapshot()
	// A writer that fails after n successful writes; every Fprintf in
	// WriteText must surface the error. This snapshot produces exactly
	// five writes (counter, gauge, two buckets, sum+count).
	for n := 0; n < 5; n++ {
		if err := s.WriteText(&failAfter{n: n}); err == nil {
			t.Fatalf("failAfter(%d): error swallowed", n)
		}
	}
}

type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errWriter
	}
	f.n--
	return len(p), nil
}

var errWriter = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink full" }

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared").Inc()
				r.Gauge("level").Set(int64(j))
				r.Histogram("h", LagBuckets).Observe(int64(j % 8))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*200 {
		t.Fatalf("shared counter = %d, want %d", got, 8*200)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	// 50 obs ≤10, 30 in (10,100], 15 in (100,1000], 5 overflow.
	for i := 0; i < 50; i++ {
		h.Observe(5)
	}
	for i := 0; i < 30; i++ {
		h.Observe(50)
	}
	for i := 0; i < 15; i++ {
		h.Observe(500)
	}
	for i := 0; i < 5; i++ {
		h.Observe(5000)
	}
	s := h.Snapshot()
	cases := []struct {
		q    float64
		want int64
	}{
		{0.25, 10},   // rank 25 lands in the first bucket
		{0.50, 10},   // rank 50 is the last ≤10 observation
		{0.51, 100},  // rank 51 crosses into (10,100]
		{0.80, 100},  // rank 80 is the last ≤100 observation
		{0.95, 1000}, // rank 95 is the last ≤1000 observation
		{0.99, 2000}, // overflow: estimated at 2× the last bound
		{1.00, 2000},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty histogram: no data, quantile is 0.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
	h := NewHistogram([]int64{10})
	h.Observe(3)
	s := h.Snapshot()
	// Tiny q still returns the first occupied bucket (rank floors to 1).
	if got := s.Quantile(0.001); got != 10 {
		t.Fatalf("Quantile(0.001) = %d, want 10", got)
	}
	// Bound-less histogram falls back to the mean.
	h0 := NewHistogram(nil)
	h0.Observe(4)
	h0.Observe(8)
	if got := h0.Snapshot().Quantile(0.99); got != 6 {
		t.Fatalf("bound-less Quantile = %d, want mean 6", got)
	}
}

func TestQueueDelayBucketsSorted(t *testing.T) {
	for i := 1; i < len(QueueDelayBuckets); i++ {
		if QueueDelayBuckets[i] <= QueueDelayBuckets[i-1] {
			t.Fatalf("QueueDelayBuckets not strictly increasing at %d", i)
		}
	}
}
