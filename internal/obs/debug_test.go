package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServerServesBothFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("transport_tx_delta_epochs").Add(11)
	r.Gauge("transport_epoch_lag").Set(2)
	r.Histogram("wizard_latency_answered", LatencyBuckets).Observe(1500)

	d, err := NewDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("NewDebugServer: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	base := "http://" + d.Addr()
	body := httpGet(t, base+"/metrics")
	if !strings.Contains(body, "transport_tx_delta_epochs 11") {
		t.Fatalf("plaintext dump missing counter:\n%s", body)
	}
	if !strings.Contains(body, `wizard_latency_answered_bucket{le="5000"} 1`) {
		t.Fatalf("plaintext dump missing histogram bucket:\n%s", body)
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(httpGet(t, base+"/metrics.json")), &snap); err != nil {
		t.Fatalf("metrics.json not valid JSON: %v", err)
	}
	if snap.Counters["transport_tx_delta_epochs"] != 11 || snap.Gauges["transport_epoch_lag"] != 2 {
		t.Fatalf("json snapshot wrong: %+v", snap)
	}
	if snap.Histograms["wizard_latency_answered"].Count != 1 {
		t.Fatalf("json snapshot histogram wrong: %+v", snap.Histograms)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v after cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Run did not exit after cancel")
	}
}

func TestDebugServerBadAddr(t *testing.T) {
	if _, err := NewDebugServer("256.0.0.1:bogus", NewRegistry()); err == nil {
		t.Fatalf("bogus addr accepted")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(b)
}
