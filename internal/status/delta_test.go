package status

import (
	"testing"
	"time"
)

func deltaSampleStatus(host string) ServerStatus {
	return ServerStatus{
		Host: host, Load1: 0.5, Load5: 0.4, Load15: 0.3,
		CPUUser: 0.1, CPUNice: 0.0, CPUSystem: 0.05, CPUIdle: 0.85,
		Bogomips: 5000, MemTotal: 8 << 30, MemUsed: 2 << 30, MemFree: 6 << 30,
		DiskAllReq: 10, DiskRReq: 4, DiskRBlocks: 80, DiskWReq: 6, DiskWBlocks: 120,
		NetIface: "eth0", NetRBytesPS: 1e6, NetRPacketsPS: 900, NetTBytesPS: 2e6, NetTPacketsPS: 1100,
	}
}

func TestSysDeltaRoundTrip(t *testing.T) {
	d := &SysDelta{
		BaseVer:   10,
		NewVer:    17,
		Changed:   []ServerStatus{deltaSampleStatus("a"), deltaSampleStatus("b|weird")},
		Deleted:   []string{"gone"},
		Refreshed: []string{"idle1", "idle2"},
	}
	buf := AppendSysDelta(nil, d)
	var v SysDeltaView
	if err := v.Parse(buf); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v.BaseVer != 10 || v.NewVer != 17 {
		t.Fatalf("versions = %d/%d", v.BaseVer, v.NewVer)
	}
	if len(v.Changed) != 2 || v.Changed[0] != d.Changed[0] || v.Changed[1] != d.Changed[1] {
		t.Fatalf("changed mismatch: %+v", v.Changed)
	}
	if len(v.Deleted) != 1 || string(v.Deleted[0]) != "gone" {
		t.Fatalf("deleted mismatch: %q", v.Deleted)
	}
	if len(v.Refreshed) != 2 || string(v.Refreshed[0]) != "idle1" || string(v.Refreshed[1]) != "idle2" {
		t.Fatalf("refreshed mismatch: %q", v.Refreshed)
	}

	// Parsing a second frame into the same view must reuse it cleanly.
	d2 := &SysDelta{BaseVer: 17, NewVer: 18, Refreshed: []string{"only"}}
	if err := v.Parse(AppendSysDelta(buf[:0], d2)); err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(v.Changed) != 0 || len(v.Deleted) != 0 || len(v.Refreshed) != 1 {
		t.Fatalf("view not reset on reuse: %d/%d/%d", len(v.Changed), len(v.Deleted), len(v.Refreshed))
	}
}

func TestNetDeltaRoundTrip(t *testing.T) {
	d := &NetDelta{
		BaseVer: 3, NewVer: 4,
		Changed:   []NetMetric{{From: "a", To: "b", Delay: 1500 * time.Microsecond, Bandwidth: 9e7}},
		Deleted:   []NetKey{{From: "x", To: "y"}},
		Refreshed: []NetKey{{From: "a", To: "c"}},
	}
	var v NetDeltaView
	if err := v.Parse(AppendNetDelta(nil, d)); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(v.Changed) != 1 || v.Changed[0] != d.Changed[0] {
		t.Fatalf("changed mismatch: %+v", v.Changed)
	}
	if string(v.Deleted[0].From) != "x" || string(v.Deleted[0].To) != "y" {
		t.Fatalf("deleted mismatch: %+v", v.Deleted)
	}
	if string(v.Refreshed[0].From) != "a" || string(v.Refreshed[0].To) != "c" {
		t.Fatalf("refreshed mismatch: %+v", v.Refreshed)
	}
}

func TestSecDeltaRoundTrip(t *testing.T) {
	d := &SecDelta{
		BaseVer: 1, NewVer: 2,
		Changed:   []SecLevel{{Host: "a", Level: -3}, {Host: "b", Level: 9}},
		Deleted:   []string{"dead"},
		Refreshed: []string{"same"},
	}
	var v SecDeltaView
	if err := v.Parse(AppendSecDelta(nil, d)); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(v.Changed) != 2 || v.Changed[0] != d.Changed[0] || v.Changed[1] != d.Changed[1] {
		t.Fatalf("changed mismatch: %+v", v.Changed)
	}
	if string(v.Deleted[0]) != "dead" || string(v.Refreshed[0]) != "same" {
		t.Fatalf("keys mismatch: %q %q", v.Deleted, v.Refreshed)
	}
}

func TestDeltaParseRejectsTruncation(t *testing.T) {
	d := &SysDelta{BaseVer: 1, NewVer: 2, Changed: []ServerStatus{deltaSampleStatus("a")}, Deleted: []string{"x"}}
	buf := AppendSysDelta(nil, d)
	var v SysDeltaView
	for cut := 1; cut < len(buf); cut++ {
		if err := v.Parse(buf[:cut]); err == nil {
			t.Fatalf("Parse accepted truncation at %d/%d bytes", cut, len(buf))
		}
	}
	if err := v.Parse(append(AppendSysDelta(nil, d), 0)); err == nil {
		t.Fatalf("Parse accepted trailing byte")
	}
}

func TestDeltaParseRejectsImplausibleCounts(t *testing.T) {
	// Header claiming 2^40 changed records in a tiny buffer.
	b := appendUvarint(nil, 1)
	b = appendUvarint(b, 2)
	b = appendUvarint(b, 1<<40)
	var v SysDeltaView
	if err := v.Parse(b); err == nil {
		t.Fatalf("Parse accepted implausible count")
	}
}

func TestSnapMarkRoundTrip(t *testing.T) {
	for _, ver := range []uint64{0, 1, 1 << 62} {
		got, err := ParseSnapMark(AppendSnapMark(nil, ver))
		if err != nil || got != ver {
			t.Fatalf("snap mark %d round-trip = (%d, %v)", ver, got, err)
		}
	}
	if _, err := ParseSnapMark(nil); err == nil {
		t.Fatalf("ParseSnapMark accepted empty payload")
	}
	if _, err := ParseSnapMark([]byte{1, 99}); err == nil {
		t.Fatalf("ParseSnapMark accepted trailing bytes")
	}
}

func TestPullRequestRoundTrip(t *testing.T) {
	// Base 0 is the thesis-compatible empty request.
	if b := AppendPullRequest(nil, 0); len(b) != 0 {
		t.Fatalf("base 0 encoded as %d bytes, want empty", len(b))
	}
	got, err := ParsePullRequest(nil)
	if err != nil || got != 0 {
		t.Fatalf("empty request = (%d, %v), want (0, nil)", got, err)
	}
	got, err = ParsePullRequest(AppendPullRequest(nil, 4242))
	if err != nil || got != 4242 {
		t.Fatalf("versioned request = (%d, %v)", got, err)
	}
	if _, err := ParsePullRequest([]byte{1, 2, 3}); err == nil {
		t.Fatalf("ParsePullRequest accepted trailing bytes")
	}
}
