package status

import (
	"testing"
)

// The delta frames cross the same open network the proto datagrams
// do, so they get the same treatment: native fuzz targets asserting
// that arbitrary payloads never panic and that everything the parsers
// accept survives a re-encode/re-parse round trip.

func FuzzParseSnapMark(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendSnapMark(nil, 0))
	f.Add(AppendSnapMark(nil, 1))
	f.Add(AppendSnapMark(nil, 1<<40))
	f.Add([]byte{0x80}) // truncated uvarint
	f.Fuzz(func(t *testing.T, data []byte) {
		ver, err := ParseSnapMark(data)
		if err != nil {
			return
		}
		// The uvarint accepts non-canonical encodings, so compare
		// values, not bytes.
		again, err := ParseSnapMark(AppendSnapMark(nil, ver))
		if err != nil {
			t.Fatalf("re-parse of re-encoded snap mark failed: %v", err)
		}
		if again != ver {
			t.Fatalf("snap mark changed across round trip: %d vs %d", ver, again)
		}
	})
}

func FuzzParsePullRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendPullRequest(nil, 7))
	f.Add(AppendPullRequest(nil, 1<<50))
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		base, err := ParsePullRequest(data)
		if err != nil {
			return
		}
		again, err := ParsePullRequest(AppendPullRequest(nil, base))
		if err != nil {
			t.Fatalf("re-parse of re-encoded pull request failed: %v", err)
		}
		if again != base {
			t.Fatalf("pull base changed across round trip: %d vs %d", base, again)
		}
	})
}

// FuzzParseSysDelta drives the [base, new] delta header parser plus
// the changed/deleted/refreshed lists behind it with arbitrary bytes.
func FuzzParseSysDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendSysDelta(nil, &SysDelta{BaseVer: 3, NewVer: 4}))
	f.Add(AppendSysDelta(nil, &SysDelta{
		BaseVer:   9,
		NewVer:    12,
		Changed:   []ServerStatus{{Host: "alpha", Load1: 0.5}, {Host: "beta", MemTotal: 64}},
		Deleted:   []string{"gone"},
		Refreshed: []string{"alpha"},
	}))
	f.Add([]byte{0x00, 0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge count
	f.Fuzz(func(t *testing.T, data []byte) {
		var v SysDeltaView
		if err := v.Parse(data); err != nil {
			return
		}
		// Re-encode what was accepted and check the header and shape
		// survive.
		d := SysDelta{BaseVer: v.BaseVer, NewVer: v.NewVer, Changed: v.Changed}
		for _, h := range v.Deleted {
			d.Deleted = append(d.Deleted, string(h))
		}
		for _, h := range v.Refreshed {
			d.Refreshed = append(d.Refreshed, string(h))
		}
		var again SysDeltaView
		if err := again.Parse(AppendSysDelta(nil, &d)); err != nil {
			t.Fatalf("re-parse of re-encoded sys delta failed: %v", err)
		}
		if again.BaseVer != v.BaseVer || again.NewVer != v.NewVer {
			t.Fatalf("delta header changed across round trip: [%d,%d] vs [%d,%d]",
				v.BaseVer, v.NewVer, again.BaseVer, again.NewVer)
		}
		if len(again.Changed) != len(v.Changed) || len(again.Deleted) != len(v.Deleted) || len(again.Refreshed) != len(v.Refreshed) {
			t.Fatalf("delta shape changed across round trip")
		}
	})
}

// The remaining delta parsers share the header/list helpers; a quick
// never-panic sweep keeps them honest without separate corpora.
func TestDeltaParsersNeverPanic(t *testing.T) {
	neverPanics(t, "SysDeltaView.Parse", func(data []byte) {
		var v SysDeltaView
		_ = v.Parse(data)
	})
	neverPanics(t, "NetDeltaView.Parse", func(data []byte) {
		var v NetDeltaView
		_ = v.Parse(data)
	})
	neverPanics(t, "SecDeltaView.Parse", func(data []byte) {
		var v SecDeltaView
		_ = v.Parse(data)
	})
	neverPanics(t, "ParseSnapMark", func(data []byte) { _, _ = ParseSnapMark(data) })
	neverPanics(t, "ParsePullRequest", func(data []byte) { _, _ = ParsePullRequest(data) })
}

// TestFrameCodecRegistry pins the invariant the framecase analyzer
// enforces statically: every RecordType constant has its encode and
// decode halves registered.
func TestFrameCodecRegistry(t *testing.T) {
	for _, rt := range []RecordType{
		TypeSystem, TypeNetwork, TypeSecurity, TypeRequest,
		TypeSysDelta, TypeNetDelta, TypeSecDelta, TypeSnapMark,
	} {
		if !FrameCodecRegistered(rt) {
			t.Errorf("RecordType %v has no codec registry entry", rt)
		}
	}
	if FrameCodecRegistered(RecordType(200)) {
		t.Errorf("unknown RecordType reported as registered")
	}
}
