package status

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// The decoders face datagrams from the open network; arbitrary bytes
// must produce errors, never panics or runaway allocation.

func neverPanics(t *testing.T, name string, fn func(data []byte)) {
	t.Helper()
	prop := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		fn(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("%s panicked: %v", name, err)
	}
}

func TestDecodeReportNeverPanics(t *testing.T) {
	neverPanics(t, "DecodeReport", func(data []byte) { DecodeReport(data) })
}

func TestUnmarshalBatchesNeverPanic(t *testing.T) {
	neverPanics(t, "UnmarshalSystemBatch", func(data []byte) { UnmarshalSystemBatch(data) })
	neverPanics(t, "UnmarshalNetBatch", func(data []byte) { UnmarshalNetBatch(data) })
	neverPanics(t, "UnmarshalSecBatch", func(data []byte) { UnmarshalSecBatch(data) })
}

func TestDecodeControlNeverPanics(t *testing.T) {
	neverPanics(t, "DecodeControl", func(data []byte) { DecodeControl(data) })
}

func TestControlRoundTrip(t *testing.T) {
	for mask := 0; mask < 256; mask++ {
		got, err := DecodeControl(EncodeControl(uint8(mask)))
		if err != nil || got != uint8(mask) {
			t.Fatalf("mask %d: got %d, err %v", mask, got, err)
		}
	}
	for _, bad := range []string{"", "SSC1", "SSC1|", "SSC1|999", "SSC2|3", "SSR1|x"} {
		if _, err := DecodeControl([]byte(bad)); err == nil {
			t.Errorf("DecodeControl(%q) accepted", bad)
		}
	}
}

// Mutation property: flipping bytes of a valid encoding must never
// produce a record that silently decodes to different *lengths* of
// data (truncation and trailing bytes are detected).
func TestSystemBatchMutationDetection(t *testing.T) {
	recs := []ServerStatus{
		{Host: "alpha", Load1: 1, MemTotal: 42},
		{Host: "beta", NetIface: "eth1", NetTBytesPS: 7},
	}
	enc := MarshalSystemBatch(recs)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		mut := append([]byte(nil), enc...)
		// Truncate or extend randomly.
		switch r.Intn(3) {
		case 0:
			mut = mut[:r.Intn(len(mut))]
		case 1:
			mut = append(mut, byte(r.Intn(256)))
		case 2:
			mut[r.Intn(len(mut))] ^= byte(1 + r.Intn(255))
		}
		if bytes.Equal(mut, enc) {
			continue
		}
		out, err := UnmarshalSystemBatch(mut)
		if err != nil {
			continue // detected: fine
		}
		// A surviving mutation must still be structurally sane.
		for _, s := range out {
			if len(s.Host) > len(mut) {
				t.Fatalf("mutation produced host longer than input")
			}
		}
	}
}
