// Delta codec for incremental transmitter→receiver transfer.
//
// The thesis pushes the full status database as three [type,size,data]
// frames every epoch (§4.4) — fine for 11 machines, a scaling wall for
// thousands. A delta frame instead carries only what moved since a
// base version the receiver already holds:
//
//	uvarint baseVer   version the receiver must be at
//	uvarint newVer    version this delta brings it to
//	uvarint nChanged  records whose content changed, compact-encoded
//	uvarint nDeleted  keys expired at the source (tombstones)
//	uvarint nRefresh  keys re-reported with identical content; the
//	                  receiver re-stamps their UpdatedAt only
//
// Encoding is varint-based with length-prefixed strings and
// fixed-width float64 bits. Encoders append into caller-owned buffers
// (Append*Delta) and decoders parse into reusable views whose byte
// fields alias the frame buffer, so a steady delta stream costs the
// receiver almost no allocation.
package status

import (
	"encoding/binary"
	"fmt"
	"time"
)

// NetKey names one directed network-metric record, the (From, To)
// monitor pair.
type NetKey struct {
	From, To string
}

// NetKeyView is the zero-copy decode form of a NetKey; the byte
// slices alias the frame buffer they were parsed from.
type NetKeyView struct {
	From, To []byte
}

// SysDelta is the encode-side form of a TypeSysDelta payload.
type SysDelta struct {
	BaseVer, NewVer uint64
	Changed         []ServerStatus
	Deleted         []string
	Refreshed       []string
}

// NetDelta is the encode-side form of a TypeNetDelta payload.
type NetDelta struct {
	BaseVer, NewVer uint64
	Changed         []NetMetric
	Deleted         []NetKey
	Refreshed       []NetKey
}

// SecDelta is the encode-side form of a TypeSecDelta payload.
type SecDelta struct {
	BaseVer, NewVer uint64
	Changed         []SecLevel
	Deleted         []string
	Refreshed       []string
}

// Empty reports whether the delta carries nothing.
func (d *SysDelta) Empty() bool {
	return len(d.Changed) == 0 && len(d.Deleted) == 0 && len(d.Refreshed) == 0
}

// Empty reports whether the delta carries nothing.
func (d *NetDelta) Empty() bool {
	return len(d.Changed) == 0 && len(d.Deleted) == 0 && len(d.Refreshed) == 0
}

// Empty reports whether the delta carries nothing.
func (d *SecDelta) Empty() bool {
	return len(d.Changed) == 0 && len(d.Deleted) == 0 && len(d.Refreshed) == 0
}

// Reset empties the delta for reuse, keeping slice capacity.
func (d *SysDelta) Reset(base, newVer uint64) {
	d.BaseVer, d.NewVer = base, newVer
	d.Changed, d.Deleted, d.Refreshed = d.Changed[:0], d.Deleted[:0], d.Refreshed[:0]
}

// Reset empties the delta for reuse, keeping slice capacity.
func (d *NetDelta) Reset(base, newVer uint64) {
	d.BaseVer, d.NewVer = base, newVer
	d.Changed, d.Deleted, d.Refreshed = d.Changed[:0], d.Deleted[:0], d.Refreshed[:0]
}

// Reset empties the delta for reuse, keeping slice capacity.
func (d *SecDelta) Reset(base, newVer uint64) {
	d.BaseVer, d.NewVer = base, newVer
	d.Changed, d.Deleted, d.Refreshed = d.Changed[:0], d.Deleted[:0], d.Refreshed[:0]
}

// SysDeltaView is the decode-side form of a TypeSysDelta payload.
// Deleted and Refreshed alias the parsed buffer and are valid only
// while it lives; Changed records own their strings (they outlive the
// frame inside the store).
type SysDeltaView struct {
	BaseVer, NewVer uint64
	Changed         []ServerStatus
	Deleted         [][]byte
	Refreshed       [][]byte
}

// NetDeltaView is the decode-side form of a TypeNetDelta payload.
type NetDeltaView struct {
	BaseVer, NewVer uint64
	Changed         []NetMetric
	Deleted         []NetKeyView
	Refreshed       []NetKeyView
}

// SecDeltaView is the decode-side form of a TypeSecDelta payload.
type SecDeltaView struct {
	BaseVer, NewVer uint64
	Changed         []SecLevel
	Deleted         [][]byte
	Refreshed       [][]byte
}

// --- varint primitives ------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("status: truncated or overlong uvarint")
	}
	return v, b[n:], nil
}

// appendVString appends a uvarint-length-prefixed string.
func appendVString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// readVBytes reads a uvarint-length-prefixed byte field without
// copying; the result aliases b.
func readVBytes(b []byte) ([]byte, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("status: truncated delta string (%d < %d)", len(b), n)
	}
	return b[:n], b[n:], nil
}

func readVString(b []byte) (string, []byte, error) {
	raw, rest, err := readVBytes(b)
	if err != nil {
		return "", nil, err
	}
	return string(raw), rest, nil
}

// countCap rejects implausible element counts before any allocation,
// like the batch decoders do: every element costs at least min bytes.
func countCap(n uint64, remaining, min int) error {
	if n > uint64(remaining)/uint64(min)+1 {
		return fmt.Errorf("status: implausible delta count %d for %d bytes", n, remaining)
	}
	return nil
}

// --- compact record codecs --------------------------------------------

func appendStatusDelta(b []byte, s *ServerStatus) []byte {
	b = appendVString(b, s.Host)
	for _, v := range []float64{
		s.Load1, s.Load5, s.Load15,
		s.CPUUser, s.CPUNice, s.CPUSystem, s.CPUIdle, s.Bogomips,
	} {
		b = appendFloat(b, v)
	}
	b = appendUvarint(b, s.MemTotal)
	b = appendUvarint(b, s.MemUsed)
	b = appendUvarint(b, s.MemFree)
	for _, v := range []float64{
		s.DiskAllReq, s.DiskRReq, s.DiskRBlocks, s.DiskWReq, s.DiskWBlocks,
	} {
		b = appendFloat(b, v)
	}
	b = appendVString(b, s.NetIface)
	for _, v := range []float64{
		s.NetRBytesPS, s.NetRPacketsPS, s.NetTBytesPS, s.NetTPacketsPS,
	} {
		b = appendFloat(b, v)
	}
	return b
}

func readStatusDelta(b []byte, s *ServerStatus) ([]byte, error) {
	var err error
	if s.Host, b, err = readVString(b); err != nil {
		return nil, err
	}
	for _, dst := range []*float64{
		&s.Load1, &s.Load5, &s.Load15,
		&s.CPUUser, &s.CPUNice, &s.CPUSystem, &s.CPUIdle, &s.Bogomips,
	} {
		if *dst, b, err = readFloat(b); err != nil {
			return nil, err
		}
	}
	if s.MemTotal, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if s.MemUsed, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if s.MemFree, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	for _, dst := range []*float64{
		&s.DiskAllReq, &s.DiskRReq, &s.DiskRBlocks, &s.DiskWReq, &s.DiskWBlocks,
	} {
		if *dst, b, err = readFloat(b); err != nil {
			return nil, err
		}
	}
	if s.NetIface, b, err = readVString(b); err != nil {
		return nil, err
	}
	for _, dst := range []*float64{
		&s.NetRBytesPS, &s.NetRPacketsPS, &s.NetTBytesPS, &s.NetTPacketsPS,
	} {
		if *dst, b, err = readFloat(b); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// --- SysDelta ---------------------------------------------------------

// AppendSysDelta appends the encoded delta to dst and returns the
// extended buffer, so per-tick encoders reuse one buffer.
func AppendSysDelta(dst []byte, d *SysDelta) []byte {
	dst = appendUvarint(dst, d.BaseVer)
	dst = appendUvarint(dst, d.NewVer)
	dst = appendUvarint(dst, uint64(len(d.Changed)))
	for i := range d.Changed {
		dst = appendStatusDelta(dst, &d.Changed[i])
	}
	dst = appendUvarint(dst, uint64(len(d.Deleted)))
	for _, h := range d.Deleted {
		dst = appendVString(dst, h)
	}
	dst = appendUvarint(dst, uint64(len(d.Refreshed)))
	for _, h := range d.Refreshed {
		dst = appendVString(dst, h)
	}
	return dst
}

// Parse decodes a TypeSysDelta payload into v, reusing v's slice
// capacity. Deleted and Refreshed alias b.
func (v *SysDeltaView) Parse(b []byte) error {
	v.Changed, v.Deleted, v.Refreshed = v.Changed[:0], v.Deleted[:0], v.Refreshed[:0]
	var err error
	if v.BaseVer, b, err = readUvarint(b); err != nil {
		return err
	}
	if v.NewVer, b, err = readUvarint(b); err != nil {
		return err
	}
	var n uint64
	if n, b, err = readUvarint(b); err != nil {
		return err
	}
	if err = countCap(n, len(b), 64); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		var s ServerStatus
		if b, err = readStatusDelta(b, &s); err != nil {
			return err
		}
		v.Changed = append(v.Changed, s)
	}
	if v.Deleted, b, err = parseKeyList(v.Deleted, b); err != nil {
		return err
	}
	if v.Refreshed, b, err = parseKeyList(v.Refreshed, b); err != nil {
		return err
	}
	if len(b) != 0 {
		return fmt.Errorf("status: %d trailing bytes after sys delta", len(b))
	}
	return nil
}

func parseKeyList(dst [][]byte, b []byte) ([][]byte, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return dst, nil, err
	}
	if err = countCap(n, len(b), 1); err != nil {
		return dst, nil, err
	}
	for i := uint64(0); i < n; i++ {
		var k []byte
		if k, b, err = readVBytes(b); err != nil {
			return dst, nil, err
		}
		dst = append(dst, k)
	}
	return dst, b, nil
}

// --- NetDelta ---------------------------------------------------------

// AppendNetDelta appends the encoded delta to dst.
func AppendNetDelta(dst []byte, d *NetDelta) []byte {
	dst = appendUvarint(dst, d.BaseVer)
	dst = appendUvarint(dst, d.NewVer)
	dst = appendUvarint(dst, uint64(len(d.Changed)))
	for i := range d.Changed {
		m := &d.Changed[i]
		dst = appendVString(dst, m.From)
		dst = appendVString(dst, m.To)
		dst = appendUvarint(dst, uint64(m.Delay))
		dst = appendFloat(dst, m.Bandwidth)
	}
	dst = appendUvarint(dst, uint64(len(d.Deleted)))
	for _, k := range d.Deleted {
		dst = appendVString(dst, k.From)
		dst = appendVString(dst, k.To)
	}
	dst = appendUvarint(dst, uint64(len(d.Refreshed)))
	for _, k := range d.Refreshed {
		dst = appendVString(dst, k.From)
		dst = appendVString(dst, k.To)
	}
	return dst
}

// Parse decodes a TypeNetDelta payload into v, reusing v's slice
// capacity. Deleted and Refreshed alias b.
func (v *NetDeltaView) Parse(b []byte) error {
	v.Changed, v.Deleted, v.Refreshed = v.Changed[:0], v.Deleted[:0], v.Refreshed[:0]
	var err error
	if v.BaseVer, b, err = readUvarint(b); err != nil {
		return err
	}
	if v.NewVer, b, err = readUvarint(b); err != nil {
		return err
	}
	var n uint64
	if n, b, err = readUvarint(b); err != nil {
		return err
	}
	if err = countCap(n, len(b), 12); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		var m NetMetric
		if m.From, b, err = readVString(b); err != nil {
			return err
		}
		if m.To, b, err = readVString(b); err != nil {
			return err
		}
		var d uint64
		if d, b, err = readUvarint(b); err != nil {
			return err
		}
		m.Delay = time.Duration(d)
		if m.Bandwidth, b, err = readFloat(b); err != nil {
			return err
		}
		v.Changed = append(v.Changed, m)
	}
	if v.Deleted, b, err = parseNetKeyList(v.Deleted, b); err != nil {
		return err
	}
	if v.Refreshed, b, err = parseNetKeyList(v.Refreshed, b); err != nil {
		return err
	}
	if len(b) != 0 {
		return fmt.Errorf("status: %d trailing bytes after net delta", len(b))
	}
	return nil
}

func parseNetKeyList(dst []NetKeyView, b []byte) ([]NetKeyView, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return dst, nil, err
	}
	if err = countCap(n, len(b), 2); err != nil {
		return dst, nil, err
	}
	for i := uint64(0); i < n; i++ {
		var k NetKeyView
		if k.From, b, err = readVBytes(b); err != nil {
			return dst, nil, err
		}
		if k.To, b, err = readVBytes(b); err != nil {
			return dst, nil, err
		}
		dst = append(dst, k)
	}
	return dst, b, nil
}

// --- SecDelta ---------------------------------------------------------

// AppendSecDelta appends the encoded delta to dst.
func AppendSecDelta(dst []byte, d *SecDelta) []byte {
	dst = appendUvarint(dst, d.BaseVer)
	dst = appendUvarint(dst, d.NewVer)
	dst = appendUvarint(dst, uint64(len(d.Changed)))
	for i := range d.Changed {
		dst = appendVString(dst, d.Changed[i].Host)
		dst = binary.AppendVarint(dst, int64(d.Changed[i].Level))
	}
	dst = appendUvarint(dst, uint64(len(d.Deleted)))
	for _, h := range d.Deleted {
		dst = appendVString(dst, h)
	}
	dst = appendUvarint(dst, uint64(len(d.Refreshed)))
	for _, h := range d.Refreshed {
		dst = appendVString(dst, h)
	}
	return dst
}

// Parse decodes a TypeSecDelta payload into v, reusing v's slice
// capacity. Deleted and Refreshed alias b.
func (v *SecDeltaView) Parse(b []byte) error {
	v.Changed, v.Deleted, v.Refreshed = v.Changed[:0], v.Deleted[:0], v.Refreshed[:0]
	var err error
	if v.BaseVer, b, err = readUvarint(b); err != nil {
		return err
	}
	if v.NewVer, b, err = readUvarint(b); err != nil {
		return err
	}
	var n uint64
	if n, b, err = readUvarint(b); err != nil {
		return err
	}
	if err = countCap(n, len(b), 2); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		var l SecLevel
		if l.Host, b, err = readVString(b); err != nil {
			return err
		}
		lv, m := binary.Varint(b)
		if m <= 0 {
			return fmt.Errorf("status: truncated sec delta level")
		}
		b = b[m:]
		l.Level = int(lv)
		v.Changed = append(v.Changed, l)
	}
	if v.Deleted, b, err = parseKeyList(v.Deleted, b); err != nil {
		return err
	}
	if v.Refreshed, b, err = parseKeyList(v.Refreshed, b); err != nil {
		return err
	}
	if len(b) != 0 {
		return fmt.Errorf("status: %d trailing bytes after sec delta", len(b))
	}
	return nil
}

// --- snap marks and versioned pull requests ---------------------------

// AppendSnapMark encodes a TypeSnapMark payload: the version the
// stream's receiver now holds.
func AppendSnapMark(dst []byte, ver uint64) []byte {
	return appendUvarint(dst, ver)
}

// ParseSnapMark decodes a TypeSnapMark payload.
func ParseSnapMark(b []byte) (uint64, error) {
	v, rest, err := readUvarint(b)
	if err != nil {
		return 0, fmt.Errorf("status: bad snap mark: %w", err)
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("status: %d trailing bytes after snap mark", len(rest))
	}
	return v, nil
}

// AppendPullRequest encodes a TypeRequest payload carrying the
// puller's base version. Base 0 encodes as the empty thesis request.
func AppendPullRequest(dst []byte, base uint64) []byte {
	if base == 0 {
		return dst
	}
	return appendUvarint(dst, base)
}

// ParsePullRequest decodes a TypeRequest payload; the empty thesis
// request means base 0 (send a full snapshot).
func ParsePullRequest(b []byte) (uint64, error) {
	if len(b) == 0 {
		return 0, nil
	}
	v, rest, err := readUvarint(b)
	if err != nil {
		return 0, fmt.Errorf("status: bad pull request: %w", err)
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("status: %d trailing bytes after pull request", len(rest))
	}
	return v, nil
}
