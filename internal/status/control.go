package status

import (
	"fmt"
	"strconv"
	"strings"
)

// Probe control messages (Chapter 6, selected parameters): the system
// monitor may answer a probe's report datagram with an instruction
// naming the parameter groups worth measuring. Like the reports
// themselves, control messages travel as ASCII so heterogeneous
// probes need no byte-order agreement.

// controlVersion tags a probe control message.
const controlVersion = "SSC1"

// EncodeControl renders a field-mask instruction. The mask's bit
// meaning is defined by the probe package (load, CPU, memory, disk,
// network); this codec treats it as opaque.
func EncodeControl(mask uint8) []byte {
	return []byte(controlVersion + "|" + strconv.FormatUint(uint64(mask), 10))
}

// DecodeControl parses a control message. It returns an error for
// anything that is not a well-formed control datagram, so probes can
// cheaply ignore stray traffic on their socket.
func DecodeControl(data []byte) (mask uint8, err error) {
	s := string(data)
	version, rest, ok := strings.Cut(s, "|")
	if !ok || version != controlVersion {
		return 0, fmt.Errorf("status: not a control message")
	}
	v, err := strconv.ParseUint(rest, 10, 8)
	if err != nil {
		return 0, fmt.Errorf("status: bad control mask %q: %v", rest, err)
	}
	return uint8(v), nil
}
