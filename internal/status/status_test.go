package status

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleStatus() *ServerStatus {
	return &ServerStatus{
		Host:          "dalmatian.lab",
		Load1:         0.42,
		Load5:         0.31,
		Load15:        0.18,
		CPUUser:       0.12,
		CPUNice:       0.01,
		CPUSystem:     0.05,
		CPUIdle:       0.82,
		Bogomips:      4771.02,
		MemTotal:      512 * 1024 * 1024,
		MemUsed:       120 * 1024 * 1024,
		MemFree:       392 * 1024 * 1024,
		DiskAllReq:    15,
		DiskRReq:      10,
		DiskRBlocks:   80,
		DiskWReq:      5,
		DiskWBlocks:   40,
		NetIface:      "eth0",
		NetRBytesPS:   200000,
		NetRPacketsPS: 150,
		NetTBytesPS:   100000,
		NetTPacketsPS: 90,
	}
}

func TestReportRoundTrip(t *testing.T) {
	in := sampleStatus()
	enc := EncodeReport(in)
	out, err := DecodeReport(enc)
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestReportSizeUnderPaperBound(t *testing.T) {
	// §3.2.1: "The server status report message is less than 200 bytes
	// long" for typical values.
	enc := EncodeReport(sampleStatus())
	if len(enc) >= 250 {
		t.Errorf("report is %d bytes, want < 250", len(enc))
	}
}

func TestReportEscapesSeparator(t *testing.T) {
	in := sampleStatus()
	in.Host = "weird|host%name"
	out, err := DecodeReport(EncodeReport(in))
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if out.Host != in.Host {
		t.Errorf("host = %q, want %q", out.Host, in.Host)
	}
}

func TestDecodeReportRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"SSR1",
		"SSR9|a|1|2|3|4|5|6|7|8|9|10|11|12|13|14|15|16|e|18|19|20|21|22|23|24",
		"SSR1|host|notanumber|2|3|4|5|6|7|8|9|10|11|12|13|14|15|16|eth0|18|19|20|21",
		strings.Repeat("|", 40),
	}
	for _, c := range cases {
		if _, err := DecodeReport([]byte(c)); err == nil {
			t.Errorf("DecodeReport(%.40q) succeeded, want error", c)
		}
	}
}

func TestDecodeReportTruncatedFieldCount(t *testing.T) {
	enc := EncodeReport(sampleStatus())
	// Chop off the last field.
	cut := bytes.LastIndexByte(enc, '|')
	if _, err := DecodeReport(enc[:cut]); err == nil {
		t.Error("decoding truncated report succeeded, want error")
	}
}

func TestVarsCoverServerSideParameters(t *testing.T) {
	vars := sampleStatus().Vars()
	// Appendix B.1: the thesis exposes 22 server-side variables; this
	// implementation adds the *_bytes aliases.
	want := []string{
		"host_system_load1", "host_system_load5", "host_system_load15",
		"host_cpu_user", "host_cpu_nice", "host_cpu_system", "host_cpu_idle",
		"host_cpu_free", "host_cpu_bogomips",
		"host_memory_total", "host_memory_used", "host_memory_free",
		"host_disk_allreq", "host_disk_rreq", "host_disk_rblocks",
		"host_disk_wreq", "host_disk_wblocks",
		"host_network_rbytesps", "host_network_rpacketsps",
		"host_network_tbytesps", "host_network_tpacketsps",
	}
	for _, name := range want {
		if _, ok := vars[name]; !ok {
			t.Errorf("Vars() missing %q", name)
		}
	}
	if got := vars["host_memory_free"]; got != 392 {
		t.Errorf("host_memory_free = %v MB, want 392", got)
	}
	if got := vars["host_cpu_free"]; got != 0.82 {
		t.Errorf("host_cpu_free = %v, want 0.82", got)
	}
}

// genStatus builds a pseudo-random but encodable status record.
func genStatus(r *rand.Rand) ServerStatus {
	f := func() float64 { return math.Trunc(r.Float64()*1e6) / 100 }
	return ServerStatus{
		Host:  "h" + string(rune('a'+r.Intn(26))),
		Load1: f(), Load5: f(), Load15: f(),
		CPUUser: f(), CPUNice: f(), CPUSystem: f(), CPUIdle: f(),
		Bogomips: f(),
		MemTotal: r.Uint64() % (1 << 40), MemUsed: r.Uint64() % (1 << 40), MemFree: r.Uint64() % (1 << 40),
		DiskAllReq: f(), DiskRReq: f(), DiskRBlocks: f(), DiskWReq: f(), DiskWBlocks: f(),
		NetIface:    "eth0",
		NetRBytesPS: f(), NetRPacketsPS: f(), NetTBytesPS: f(), NetTPacketsPS: f(),
	}
}

func TestPropertyReportRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := genStatus(r)
		out, err := DecodeReport(EncodeReport(&in))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(&in, out)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertySystemBatchRoundTrip(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw % 20)
		in := make([]ServerStatus, n)
		for i := range in {
			in[i] = genStatus(r)
		}
		out, err := UnmarshalSystemBatch(MarshalSystemBatch(in))
		if err != nil {
			return false
		}
		if len(in) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNetBatchRoundTrip(t *testing.T) {
	in := []NetMetric{
		{From: "netmon-1", To: "netmon-2", Delay: 5 * time.Millisecond, Bandwidth: 95e6},
		{From: "netmon-1", To: "netmon-3", Delay: 126 * time.Millisecond, Bandwidth: 1.2e6},
	}
	out, err := UnmarshalNetBatch(MarshalNetBatch(in))
	if err != nil {
		t.Fatalf("UnmarshalNetBatch: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestSecBatchRoundTrip(t *testing.T) {
	in := []SecLevel{
		{Host: "sagit", Level: 5},
		{Host: "hacker.some.net", Level: -1},
	}
	out, err := UnmarshalSecBatch(MarshalSecBatch(in))
	if err != nil {
		t.Fatalf("UnmarshalSecBatch: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Type: TypeSystem, Data: MarshalSystemBatch([]ServerStatus{*sampleStatus()})},
		{Type: TypeNetwork, Data: MarshalNetBatch(nil)},
		{Type: TypeRequest, Data: nil},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if got.Type != want.Type {
			t.Errorf("frame %d type = %v, want %v", i, got.Type, want.Type)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Errorf("frame %d data mismatch", i)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("ReadFrame on empty stream = %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	hdr := []byte{byte(TypeSystem), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("ReadFrame accepted an oversize frame header")
	}
}

func TestUnmarshalBatchRejectsTruncation(t *testing.T) {
	full := MarshalSystemBatch([]ServerStatus{*sampleStatus(), *sampleStatus()})
	for _, cut := range []int{0, 3, 5, len(full) / 2, len(full) - 1} {
		if _, err := UnmarshalSystemBatch(full[:cut]); err == nil {
			t.Errorf("UnmarshalSystemBatch accepted truncation at %d bytes", cut)
		}
	}
	if _, err := UnmarshalSystemBatch(append(append([]byte{}, full...), 0x00)); err == nil {
		t.Error("UnmarshalSystemBatch accepted trailing bytes")
	}
}

func TestRecordTypeString(t *testing.T) {
	if TypeSystem.String() != "system" || TypeRequest.String() != "request" {
		t.Error("RecordType.String misbehaves for known types")
	}
	if s := RecordType(99).String(); !strings.Contains(s, "99") {
		t.Errorf("RecordType(99).String() = %q", s)
	}
}
