// Package status defines the record types exchanged between the Smart
// socket components — server status reports produced by probes, network
// metric records produced by network monitors, and security records
// produced by security monitors — together with the two wire codecs the
// thesis describes: the endian-safe ASCII probe-report format (§3.2.1)
// and the binary [type,size,data] framing used between transmitter and
// receiver (§3.5.1).
package status

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// RecordType tags the payload of a transmitter frame (§3.5.1).
type RecordType uint8

const (
	// TypeSystem frames carry a batch of ServerStatus records.
	TypeSystem RecordType = 1
	// TypeNetwork frames carry a batch of NetMetric records.
	TypeNetwork RecordType = 2
	// TypeSecurity frames carry a batch of SecLevel records.
	TypeSecurity RecordType = 3
	// TypeRequest frames carry an update request from a wizard to a
	// transmitter running in distributed (passive) mode. Since the
	// delta protocol the payload may carry the puller's base version
	// (varint); an empty payload is the thesis request and asks for a
	// full snapshot.
	TypeRequest RecordType = 4
	// TypeSysDelta frames carry a SysDelta: the server status records
	// that changed since a base version, plus tombstones and
	// refreshes.
	TypeSysDelta RecordType = 5
	// TypeNetDelta frames carry a NetDelta.
	TypeNetDelta RecordType = 6
	// TypeSecDelta frames carry a SecDelta.
	TypeSecDelta RecordType = 7
	// TypeSnapMark frames close a full snapshot (or a pull reply) and
	// carry the database version the preceding frames brought the
	// receiver to. The thesis-fidelity compat mode never sends one.
	TypeSnapMark RecordType = 8
)

// frameCodec pairs the encode and decode halves of one frame type.
// The fields are typed any because payload shapes differ per frame;
// the registry exists so that adding a RecordType without wiring both
// halves is caught statically — the framecase analyzer requires every
// Type constant to have a non-empty entry here, and the function
// references keep the pairing honest at compile time.
type frameCodec struct {
	appendFn any
	parseFn  any
}

// frameCodecs is the codec registry: one entry per RecordType, naming
// the Append*-style payload encoder and the matching Parse*/
// Unmarshal* decoder.
var frameCodecs = map[RecordType]frameCodec{
	TypeSystem:   {appendFn: AppendSystemBatch, parseFn: UnmarshalSystemBatch},
	TypeNetwork:  {appendFn: AppendNetBatch, parseFn: UnmarshalNetBatch},
	TypeSecurity: {appendFn: AppendSecBatch, parseFn: UnmarshalSecBatch},
	TypeRequest:  {appendFn: AppendPullRequest, parseFn: ParsePullRequest},
	TypeSysDelta: {appendFn: AppendSysDelta, parseFn: (*SysDeltaView).Parse},
	TypeNetDelta: {appendFn: AppendNetDelta, parseFn: (*NetDeltaView).Parse},
	TypeSecDelta: {appendFn: AppendSecDelta, parseFn: (*SecDeltaView).Parse},
	TypeSnapMark: {appendFn: AppendSnapMark, parseFn: ParseSnapMark},
}

// FrameCodecRegistered reports whether t has its encode/decode pair
// in the registry. Tests use it to pin registry coverage alongside
// the framecase lint check.
func FrameCodecRegistered(t RecordType) bool {
	c, ok := frameCodecs[t]
	return ok && c.appendFn != nil && c.parseFn != nil
}

func (t RecordType) String() string {
	switch t {
	case TypeSystem:
		return "system"
	case TypeNetwork:
		return "network"
	case TypeSecurity:
		return "security"
	case TypeRequest:
		return "request"
	case TypeSysDelta:
		return "sys-delta"
	case TypeNetDelta:
		return "net-delta"
	case TypeSecDelta:
		return "sec-delta"
	case TypeSnapMark:
		return "snap-mark"
	}
	return fmt.Sprintf("RecordType(%d)", uint8(t))
}

// ServerStatus is one server's resource usage snapshot, assembled by a
// server probe from the five /proc files in Table 3.1 (or from a
// synthetic source on a simulated host). All rate fields are per-second
// values computed by the probe across its scan interval.
type ServerStatus struct {
	Host string // address the probe reports for itself (IP or name)

	// /proc/loadavg
	Load1, Load5, Load15 float64

	// /proc/stat cpu line, normalised to fractions of total time over
	// the scan interval. CPUFree is the idle fraction (host_cpu_free).
	CPUUser, CPUNice, CPUSystem, CPUIdle float64

	// /proc/cpuinfo: the thesis requirement language exposes bogomips
	// so users can select by raw processor speed (Tables 5.3–5.4).
	Bogomips float64

	// /proc/meminfo, in bytes. The requirement language exposes
	// host_memory_free in megabytes, as the thesis examples use
	// "host_memory_free > 5" to mean 5 MB.
	MemTotal, MemUsed, MemFree uint64

	// /proc/stat disk_io, per-second rates.
	DiskAllReq, DiskRReq, DiskRBlocks, DiskWReq, DiskWBlocks float64

	// /proc/net/dev for the primary interface, per-second rates.
	NetIface                                               string
	NetRBytesPS, NetRPacketsPS, NetTBytesPS, NetTPacketsPS float64
}

// CPUFree reports the idle CPU fraction, the host_cpu_free variable.
func (s *ServerStatus) CPUFree() float64 { return s.CPUIdle }

// NetMetric is one (delay, bandwidth) measurement between two network
// monitors (Table 3.4). Bandwidth is in bits per second.
type NetMetric struct {
	From, To  string
	Delay     time.Duration
	Bandwidth float64
}

// SecLevel is one host's security clearance level (§3.4.1): an integer
// where higher means more trusted.
type SecLevel struct {
	Host  string
	Level int
}

// Vars flattens a ServerStatus into the server-side variable bindings
// the wizard hands to the requirement evaluator (Appendix B.1). Network
// and security variables are merged in by the wizard because they come
// from different databases.
func (s *ServerStatus) Vars() map[string]float64 {
	const mb = 1024 * 1024
	return map[string]float64{
		"host_system_load1":       s.Load1,
		"host_system_load5":       s.Load5,
		"host_system_load15":      s.Load15,
		"host_cpu_user":           s.CPUUser,
		"host_cpu_nice":           s.CPUNice,
		"host_cpu_system":         s.CPUSystem,
		"host_cpu_idle":           s.CPUIdle,
		"host_cpu_free":           s.CPUFree(),
		"host_cpu_bogomips":       s.Bogomips,
		"host_memory_total":       float64(s.MemTotal) / mb,
		"host_memory_used":        float64(s.MemUsed) / mb,
		"host_memory_free":        float64(s.MemFree) / mb,
		"host_memory_total_bytes": float64(s.MemTotal),
		"host_memory_used_bytes":  float64(s.MemUsed),
		"host_memory_free_bytes":  float64(s.MemFree),
		"host_disk_allreq":        s.DiskAllReq,
		"host_disk_rreq":          s.DiskRReq,
		"host_disk_rblocks":       s.DiskRBlocks,
		"host_disk_wreq":          s.DiskWReq,
		"host_disk_wblocks":       s.DiskWBlocks,
		"host_network_rbytesps":   s.NetRBytesPS,
		"host_network_rpacketsps": s.NetRPacketsPS,
		"host_network_tbytesps":   s.NetTBytesPS,
		"host_network_tpacketsps": s.NetTPacketsPS,
	}
}

// Var returns the value of one named server-side variable, the
// per-name view of Vars. The selector uses it to bind only the
// variables a compiled requirement actually mentions, instead of
// materialising the full 25-entry table per candidate server.
func (s *ServerStatus) Var(name string) (float64, bool) {
	const mb = 1024 * 1024
	switch name {
	case "host_system_load1":
		return s.Load1, true
	case "host_system_load5":
		return s.Load5, true
	case "host_system_load15":
		return s.Load15, true
	case "host_cpu_user":
		return s.CPUUser, true
	case "host_cpu_nice":
		return s.CPUNice, true
	case "host_cpu_system":
		return s.CPUSystem, true
	case "host_cpu_idle":
		return s.CPUIdle, true
	case "host_cpu_free":
		return s.CPUFree(), true
	case "host_cpu_bogomips":
		return s.Bogomips, true
	case "host_memory_total":
		return float64(s.MemTotal) / mb, true
	case "host_memory_used":
		return float64(s.MemUsed) / mb, true
	case "host_memory_free":
		return float64(s.MemFree) / mb, true
	case "host_memory_total_bytes":
		return float64(s.MemTotal), true
	case "host_memory_used_bytes":
		return float64(s.MemUsed), true
	case "host_memory_free_bytes":
		return float64(s.MemFree), true
	case "host_disk_allreq":
		return s.DiskAllReq, true
	case "host_disk_rreq":
		return s.DiskRReq, true
	case "host_disk_rblocks":
		return s.DiskRBlocks, true
	case "host_disk_wreq":
		return s.DiskWReq, true
	case "host_disk_wblocks":
		return s.DiskWBlocks, true
	case "host_network_rbytesps":
		return s.NetRBytesPS, true
	case "host_network_rpacketsps":
		return s.NetRPacketsPS, true
	case "host_network_tbytesps":
		return s.NetTBytesPS, true
	case "host_network_tpacketsps":
		return s.NetTPacketsPS, true
	}
	return 0, false
}

// reportVersion is the leading tag of the ASCII probe report. Bump it
// when fields change; decoders reject unknown versions rather than
// guessing.
const reportVersion = "SSR1"

// reportFieldCount is the number of '|'-separated fields after the
// version tag in an encoded report.
const reportFieldCount = 22

// EncodeReport renders a ServerStatus as the compact ASCII probe report
// of §3.2.1. Numbers travel as decimal strings, so probes on big- and
// little-endian machines interoperate without alignment or byte-order
// concerns, at the cost of a slightly larger message (<200 bytes for
// typical values, as the thesis measures).
func EncodeReport(s *ServerStatus) []byte {
	var b strings.Builder
	b.Grow(200)
	b.WriteString(reportVersion)
	sep := func() { b.WriteByte('|') }
	f := func(v float64) {
		sep()
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	u := func(v uint64) {
		sep()
		b.WriteString(strconv.FormatUint(v, 10))
	}
	sep()
	b.WriteString(escapeField(s.Host))
	f(s.Load1)
	f(s.Load5)
	f(s.Load15)
	f(s.CPUUser)
	f(s.CPUNice)
	f(s.CPUSystem)
	f(s.CPUIdle)
	f(s.Bogomips)
	u(s.MemTotal)
	u(s.MemUsed)
	u(s.MemFree)
	f(s.DiskAllReq)
	f(s.DiskRReq)
	f(s.DiskRBlocks)
	f(s.DiskWReq)
	f(s.DiskWBlocks)
	sep()
	b.WriteString(escapeField(s.NetIface))
	f(s.NetRBytesPS)
	f(s.NetRPacketsPS)
	f(s.NetTBytesPS)
	f(s.NetTPacketsPS)
	return []byte(b.String())
}

// DecodeReport parses an ASCII probe report produced by EncodeReport.
func DecodeReport(data []byte) (*ServerStatus, error) {
	parts := strings.Split(string(data), "|")
	if len(parts) != reportFieldCount+1 {
		return nil, fmt.Errorf("status: report has %d fields, want %d", len(parts)-1, reportFieldCount)
	}
	if parts[0] != reportVersion {
		return nil, fmt.Errorf("status: unknown report version %q", parts[0])
	}
	s := &ServerStatus{}
	i := 1
	next := func() string { v := parts[i]; i++; return v }
	var err error
	f := func(dst *float64) {
		if err != nil {
			return
		}
		v := next()
		*dst, err = strconv.ParseFloat(v, 64)
		if err != nil {
			err = fmt.Errorf("status: bad float field %d %q: %v", i-1, v, err)
		}
	}
	u := func(dst *uint64) {
		if err != nil {
			return
		}
		v := next()
		*dst, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			err = fmt.Errorf("status: bad uint field %d %q: %v", i-1, v, err)
		}
	}
	s.Host = unescapeField(next())
	f(&s.Load1)
	f(&s.Load5)
	f(&s.Load15)
	f(&s.CPUUser)
	f(&s.CPUNice)
	f(&s.CPUSystem)
	f(&s.CPUIdle)
	f(&s.Bogomips)
	u(&s.MemTotal)
	u(&s.MemUsed)
	u(&s.MemFree)
	f(&s.DiskAllReq)
	f(&s.DiskRReq)
	f(&s.DiskRBlocks)
	f(&s.DiskWReq)
	f(&s.DiskWBlocks)
	s.NetIface = unescapeField(next())
	f(&s.NetRBytesPS)
	f(&s.NetRPacketsPS)
	f(&s.NetTBytesPS)
	f(&s.NetTPacketsPS)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// escapeField protects the report's '|' separator inside free-form
// string fields (host names, interface names).
func escapeField(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	return strings.ReplaceAll(s, "|", "%7C")
}

func unescapeField(s string) string {
	s = strings.ReplaceAll(s, "%7C", "|")
	return strings.ReplaceAll(s, "%25", "%")
}
