// Binary codec for transmitter→receiver transfer (§3.5.1).
//
// The thesis ships raw C structs and therefore requires both ends to
// share endianness and word size. This implementation keeps the
// [type, size, data] framing but defines the data layout explicitly in
// network byte order with fixed-width fields and length-prefixed
// strings, so the restriction disappears while the wire behaviour —
// receiver learns type and size first, then allocates and copies — is
// preserved.

package status

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// MaxFrameSize bounds a single transmitter frame. A receiver refuses
// larger frames instead of allocating unbounded memory from a
// malformed or hostile size field.
const MaxFrameSize = 16 << 20

// Frame is one transmitter message: a typed batch of records.
type Frame struct {
	Type RecordType
	Data []byte
}

// WriteFrame writes a [type, size, data] frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Data) > MaxFrameSize {
		return fmt.Errorf("status: frame of %d bytes exceeds limit %d", len(f.Data), MaxFrameSize)
	}
	hdr := make([]byte, 5)
	hdr[0] = byte(f.Type)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(f.Data)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("status: write frame header: %w", err)
	}
	if _, err := w.Write(f.Data); err != nil {
		return fmt.Errorf("status: write frame data: %w", err)
	}
	return nil
}

// ReadFrame reads one frame from r. It returns io.EOF unchanged when
// the stream ends cleanly before a header byte arrives. The frame's
// Data is freshly allocated and owned by the caller.
func ReadFrame(r io.Reader) (Frame, error) {
	f, _, err := ReadFrameInto(r, nil)
	return f, err
}

// ReadFrameInto reads one frame like ReadFrame but reuses buf for the
// payload, returning the possibly-grown buffer for the next call. The
// frame's Data aliases buf and is valid only until then, which lets a
// long-lived receiver connection apply a steady stream of frames
// without a per-frame payload allocation.
func ReadFrameInto(r io.Reader, buf []byte) (Frame, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, buf, io.EOF
		}
		return Frame{}, buf, fmt.Errorf("status: read frame header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[1:])
	if size > MaxFrameSize {
		return Frame{}, buf, fmt.Errorf("status: frame size %d exceeds limit %d", size, MaxFrameSize)
	}
	if uint32(cap(buf)) < size {
		buf = make([]byte, size)
	} else {
		buf = buf[:size]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, buf, fmt.Errorf("status: read frame data: %w", err)
	}
	return Frame{Type: RecordType(hdr[0]), Data: buf}, buf, nil
}

// appendString appends a length-prefixed UTF-8 string.
func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("status: truncated string length")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, fmt.Errorf("status: truncated string body (%d < %d)", len(b), n)
	}
	return string(b[:n]), b[n:], nil
}

func appendFloat(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

func readFloat(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("status: truncated float64")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), b[8:], nil
}

func appendUint64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

func readUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("status: truncated uint64")
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

// MarshalSystemBatch encodes a batch of server status records as a
// TypeSystem frame payload.
func MarshalSystemBatch(recs []ServerStatus) []byte {
	return AppendSystemBatch(nil, recs)
}

// AppendSystemBatch appends a TypeSystem payload to dst and returns
// the extended buffer, so per-tick encoders can reuse one buffer
// instead of allocating three fresh ones per epoch.
func AppendSystemBatch(dst []byte, recs []ServerStatus) []byte {
	b := binary.BigEndian.AppendUint32(dst, uint32(len(recs)))
	for i := range recs {
		s := &recs[i]
		b = appendString(b, s.Host)
		for _, v := range []float64{
			s.Load1, s.Load5, s.Load15,
			s.CPUUser, s.CPUNice, s.CPUSystem, s.CPUIdle, s.Bogomips,
		} {
			b = appendFloat(b, v)
		}
		b = appendUint64(b, s.MemTotal)
		b = appendUint64(b, s.MemUsed)
		b = appendUint64(b, s.MemFree)
		for _, v := range []float64{
			s.DiskAllReq, s.DiskRReq, s.DiskRBlocks, s.DiskWReq, s.DiskWBlocks,
		} {
			b = appendFloat(b, v)
		}
		b = appendString(b, s.NetIface)
		for _, v := range []float64{
			s.NetRBytesPS, s.NetRPacketsPS, s.NetTBytesPS, s.NetTPacketsPS,
		} {
			b = appendFloat(b, v)
		}
	}
	return b
}

// UnmarshalSystemBatch decodes a TypeSystem frame payload.
func UnmarshalSystemBatch(b []byte) ([]ServerStatus, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("status: truncated system batch count")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if n > MaxFrameSize/64 {
		return nil, fmt.Errorf("status: implausible system batch count %d", n)
	}
	recs := make([]ServerStatus, 0, n)
	var err error
	for i := uint32(0); i < n; i++ {
		var s ServerStatus
		if s.Host, b, err = readString(b); err != nil {
			return nil, err
		}
		for _, dst := range []*float64{
			&s.Load1, &s.Load5, &s.Load15,
			&s.CPUUser, &s.CPUNice, &s.CPUSystem, &s.CPUIdle, &s.Bogomips,
		} {
			if *dst, b, err = readFloat(b); err != nil {
				return nil, err
			}
		}
		if s.MemTotal, b, err = readUint64(b); err != nil {
			return nil, err
		}
		if s.MemUsed, b, err = readUint64(b); err != nil {
			return nil, err
		}
		if s.MemFree, b, err = readUint64(b); err != nil {
			return nil, err
		}
		for _, dst := range []*float64{
			&s.DiskAllReq, &s.DiskRReq, &s.DiskRBlocks, &s.DiskWReq, &s.DiskWBlocks,
		} {
			if *dst, b, err = readFloat(b); err != nil {
				return nil, err
			}
		}
		if s.NetIface, b, err = readString(b); err != nil {
			return nil, err
		}
		for _, dst := range []*float64{
			&s.NetRBytesPS, &s.NetRPacketsPS, &s.NetTBytesPS, &s.NetTPacketsPS,
		} {
			if *dst, b, err = readFloat(b); err != nil {
				return nil, err
			}
		}
		recs = append(recs, s)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("status: %d trailing bytes after system batch", len(b))
	}
	return recs, nil
}

// MarshalNetBatch encodes network metric records as a TypeNetwork
// frame payload. Delay is carried as nanoseconds.
func MarshalNetBatch(recs []NetMetric) []byte {
	return AppendNetBatch(nil, recs)
}

// AppendNetBatch appends a TypeNetwork payload to dst.
func AppendNetBatch(dst []byte, recs []NetMetric) []byte {
	b := binary.BigEndian.AppendUint32(dst, uint32(len(recs)))
	for i := range recs {
		m := &recs[i]
		b = appendString(b, m.From)
		b = appendString(b, m.To)
		b = appendUint64(b, uint64(m.Delay))
		b = appendFloat(b, m.Bandwidth)
	}
	return b
}

// UnmarshalNetBatch decodes a TypeNetwork frame payload.
func UnmarshalNetBatch(b []byte) ([]NetMetric, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("status: truncated net batch count")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if n > MaxFrameSize/32 {
		return nil, fmt.Errorf("status: implausible net batch count %d", n)
	}
	recs := make([]NetMetric, 0, n)
	var err error
	for i := uint32(0); i < n; i++ {
		var m NetMetric
		if m.From, b, err = readString(b); err != nil {
			return nil, err
		}
		if m.To, b, err = readString(b); err != nil {
			return nil, err
		}
		var d uint64
		if d, b, err = readUint64(b); err != nil {
			return nil, err
		}
		m.Delay = time.Duration(d)
		if m.Bandwidth, b, err = readFloat(b); err != nil {
			return nil, err
		}
		recs = append(recs, m)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("status: %d trailing bytes after net batch", len(b))
	}
	return recs, nil
}

// MarshalSecBatch encodes security level records as a TypeSecurity
// frame payload.
func MarshalSecBatch(recs []SecLevel) []byte {
	return AppendSecBatch(nil, recs)
}

// AppendSecBatch appends a TypeSecurity payload to dst.
func AppendSecBatch(dst []byte, recs []SecLevel) []byte {
	b := binary.BigEndian.AppendUint32(dst, uint32(len(recs)))
	for i := range recs {
		b = appendString(b, recs[i].Host)
		b = binary.BigEndian.AppendUint32(b, uint32(int32(recs[i].Level)))
	}
	return b
}

// UnmarshalSecBatch decodes a TypeSecurity frame payload.
func UnmarshalSecBatch(b []byte) ([]SecLevel, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("status: truncated sec batch count")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if n > MaxFrameSize/8 {
		return nil, fmt.Errorf("status: implausible sec batch count %d", n)
	}
	recs := make([]SecLevel, 0, n)
	var err error
	for i := uint32(0); i < n; i++ {
		var r SecLevel
		if r.Host, b, err = readString(b); err != nil {
			return nil, err
		}
		if len(b) < 4 {
			return nil, fmt.Errorf("status: truncated sec level")
		}
		r.Level = int(int32(binary.BigEndian.Uint32(b)))
		b = b[4:]
		recs = append(recs, r)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("status: %d trailing bytes after sec batch", len(b))
	}
	return recs, nil
}
