package taskdiv

import (
	"strings"
	"testing"
	"testing/quick"

	"smartsock/internal/reqlang"
	"smartsock/internal/status"
	"smartsock/internal/sysinfo"
)

func TestRequirementForCPUHeavyTask(t *testing.T) {
	p := TaskProfile{CPU: Heavy, MemoryMB: 150}
	text, err := p.GenerateRequirement()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"host_cpu_free >= 0.9",
		"host_system_load1 < 0.5",
		"host_memory_free > 150",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("requirement missing %q:\n%s", want, text)
		}
	}
	// The generated text selects the right servers.
	prog, err := reqlang.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	idle := sysinfo.Idle("idlebox", 4000, 512)
	if !prog.Eval(&reqlang.Env{Params: idle.Vars()}).Qualified {
		t.Error("idle 512 MB box rejected by generated requirement")
	}
	busy := sysinfo.Idle("busybox", 4000, 512)
	busy.CPUIdle = 0.3
	busy.Load1 = 2
	if prog.Eval(&reqlang.Env{Params: busy.Vars()}).Qualified {
		t.Error("busy box accepted by generated CPU-heavy requirement")
	}
}

func TestRequirementForDataTask(t *testing.T) {
	p := TaskProfile{NetworkMbps: 6, MaxDelayMS: 20, DiskIO: Heavy, MinSecurityLevel: 3}
	text, err := p.GenerateRequirement()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"monitor_network_bw > 6",
		"monitor_network_delay < 20",
		"host_disk_allreq < 50",
		"host_security_level >= 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("requirement missing %q:\n%s", want, text)
		}
	}
}

func TestRequirementHostSlots(t *testing.T) {
	p := TaskProfile{
		DeniedHosts:    []string{"hacker.some.net", "titan-x", "a", "b", "c", "overflow"},
		PreferredHosts: []string{"sagit.comp.nus.edu.sg"},
	}
	text, err := p.GenerateRequirement()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `user_denied_host2 = "titan-x"`) {
		t.Errorf("hyphenated bare host not quoted:\n%s", text)
	}
	if strings.Contains(text, "overflow") {
		t.Error("more than 5 denied slots emitted (Appendix B.2 defines five)")
	}
	if !strings.Contains(text, "user_preferred_host1 = sagit.comp.nus.edu.sg") {
		t.Errorf("preferred host missing:\n%s", text)
	}
}

func TestEmptyProfileQualifiesEverything(t *testing.T) {
	text, err := TaskProfile{}.GenerateRequirement()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := reqlang.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumLogical() != 0 {
		t.Errorf("empty profile emitted %d constraints:\n%s", prog.NumLogical(), text)
	}
}

func TestPropertyGeneratedRequirementsAlwaysParse(t *testing.T) {
	prop := func(cpu, disk uint8, memMB uint16, netX, delayX uint8, sec int8) bool {
		p := TaskProfile{
			CPU:              Intensity(cpu % 3),
			DiskIO:           Intensity(disk % 3),
			MemoryMB:         uint64(memMB),
			NetworkMbps:      float64(netX%20) / 2,
			MaxDelayMS:       float64(delayX % 100),
			MinSecurityLevel: int(sec),
			DeniedHosts:      []string{"some-host", "other.host.example"},
		}
		_, err := p.GenerateRequirement()
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func servers(speeds ...float64) []status.ServerStatus {
	out := make([]status.ServerStatus, len(speeds))
	for i, sp := range speeds {
		out[i] = sysinfo.Idle(string(rune('a'+i)), sp, 256)
	}
	return out
}

func TestDivideProportionalToCapability(t *testing.T) {
	p := TaskProfile{CPU: Heavy}
	shares, err := Divide(p, 100, servers(4000, 2000, 2000))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shares {
		total += s.Units
	}
	if total != 100 {
		t.Fatalf("assigned %d units, want 100", total)
	}
	if shares[0].Units <= shares[1].Units {
		t.Errorf("fast server got %d units, slow got %d", shares[0].Units, shares[1].Units)
	}
	// 4000 vs 2000+2000: the fast box should take about half.
	if shares[0].Units < 40 || shares[0].Units > 60 {
		t.Errorf("fast share = %d, want ≈50", shares[0].Units)
	}
}

func TestDivideEveryoneParticipates(t *testing.T) {
	p := TaskProfile{CPU: Heavy}
	// One overwhelming server; with units ≥ servers, nobody gets zero.
	shares, err := Divide(p, 10, servers(100000, 100, 100))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shares {
		if s.Units == 0 {
			t.Errorf("server %s got no work", s.Host)
		}
	}
}

func TestDivideAccountsForLoad(t *testing.T) {
	p := TaskProfile{CPU: Heavy}
	srv := servers(3000, 3000)
	srv[1].CPUIdle = 0.25 // second box is 75% busy
	shares, err := Divide(p, 100, srv)
	if err != nil {
		t.Fatal(err)
	}
	if shares[0].Units <= shares[1].Units*2 {
		t.Errorf("idle box got %d, busy box %d; want a large skew", shares[0].Units, shares[1].Units)
	}
}

func TestDivideValidation(t *testing.T) {
	if _, err := Divide(TaskProfile{}, 0, servers(1)); err == nil {
		t.Error("accepted zero units")
	}
	if _, err := Divide(TaskProfile{}, 10, nil); err == nil {
		t.Error("accepted no servers")
	}
}

func TestPropertyDivideConservesUnits(t *testing.T) {
	prop := func(unitsRaw uint16, nRaw uint8, seed uint8) bool {
		n := int(nRaw%6) + 1
		units := int(unitsRaw%1000) + n // units ≥ servers
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = float64(1000 + int(seed)*i*37%5000)
		}
		shares, err := Divide(TaskProfile{CPU: Light}, units, servers(speeds...))
		if err != nil {
			return false
		}
		total := 0
		for _, s := range shares {
			if s.Units <= 0 {
				return false
			}
			total += s.Units
		}
		return total == units
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIntensityString(t *testing.T) {
	if None.String() != "none" || Light.String() != "light" || Heavy.String() != "heavy" {
		t.Error("Intensity strings wrong")
	}
	if !strings.Contains(Intensity(9).String(), "9") {
		t.Error("unknown intensity not reported")
	}
}
