// Package retry provides the bounded exponential backoff with jitter
// that every reconnecting component of the pipeline shares: the
// transmitter redialing its receiver, a probe re-registering with its
// monitor, the client resending a lost wizard request. Backoff
// prevents a dead peer from being hammered at the full report rate;
// jitter prevents the thundering herd when the peer comes back and
// every waiter fires at once.
package retry

import (
	"math/rand"
	"sync"
	"time"

	"smartsock/internal/obs"
)

// Backoff produces successive wait times: Base, 2×Base, 4×Base, …
// capped at Max, each perturbed by ±Jitter. The zero value is not
// usable; set at least Base. Backoff is safe for concurrent use,
// though its natural life is owned by one retry loop.
type Backoff struct {
	// Base is the first wait.
	Base time.Duration
	// Max caps the exponential growth. Defaults to 16×Base.
	Max time.Duration
	// Jitter is the relative perturbation applied to each wait, e.g.
	// 0.2 for ±20%. Defaults to 0.2; negative disables jitter.
	Jitter float64
	// Rand supplies the jitter draws; nil uses the global source. Tests
	// inject a seeded func for reproducible schedules.
	Rand func() float64
	// Metric, when set, counts every wait handed out — the owning
	// component's retry rate (e.g. the transmitter's redial counter).
	Metric *obs.Counter

	mu      sync.Mutex
	attempt int
}

// Next returns the wait before the following retry and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	attempt := b.attempt
	b.attempt++
	b.mu.Unlock()
	if b.Metric != nil {
		b.Metric.Inc()
	}

	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 16 * base
	}
	d := base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= max {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	jitter := b.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 {
		draw := rand.Float64
		if b.Rand != nil {
			draw = b.Rand
		}
		// Uniform in [−jitter, +jitter] around d.
		d += time.Duration((draw()*2 - 1) * jitter * float64(d))
		if d < base/2 {
			d = base / 2
		}
	}
	return d
}

// NextAtLeast advances the schedule like Next but never returns less
// than floor — the hook for honoring a server-supplied retry-after
// hint (proto.RetryAfter on an overloaded wizard reply). The
// exponential schedule still advances underneath, so a client that
// keeps hitting an overloaded server backs off past the hint rather
// than retrying at a fixed rate forever.
func (b *Backoff) NextAtLeast(floor time.Duration) time.Duration {
	d := b.Next()
	if d < floor {
		return floor
	}
	return d
}

// Reset restarts the schedule after a success.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

// Attempts reports how many waits have been handed out since the last
// Reset.
func (b *Backoff) Attempts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}
