package retry

import (
	"testing"
	"time"
)

func noJitter(b *Backoff) *Backoff { b.Jitter = -1; return b }

func TestExponentialGrowthAndCap(t *testing.T) {
	b := noJitter(&Backoff{Base: 100 * time.Millisecond, Max: 500 * time.Millisecond})
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		500 * time.Millisecond,
		500 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("attempt %d: got %v, want %v", i, got, w)
		}
	}
}

func TestResetRestartsSchedule(t *testing.T) {
	b := noJitter(&Backoff{Base: 50 * time.Millisecond})
	b.Next()
	b.Next()
	if b.Attempts() != 2 {
		t.Fatalf("Attempts = %d, want 2", b.Attempts())
	}
	b.Reset()
	if got := b.Next(); got != 50*time.Millisecond {
		t.Fatalf("post-reset wait %v, want base", got)
	}
}

func TestJitterStaysBounded(t *testing.T) {
	draws := []float64{0, 0.5, 1}
	i := 0
	b := &Backoff{
		Base:   100 * time.Millisecond,
		Max:    100 * time.Millisecond,
		Jitter: 0.2,
		Rand:   func() float64 { d := draws[i%len(draws)]; i++; return d },
	}
	for k := 0; k < 3; k++ {
		got := b.Next()
		if got < 80*time.Millisecond || got > 120*time.Millisecond {
			t.Fatalf("jittered wait %v outside ±20%% of 100ms", got)
		}
	}
}

func TestDefaultMaxIsBounded(t *testing.T) {
	b := noJitter(&Backoff{Base: 10 * time.Millisecond})
	var last time.Duration
	for i := 0; i < 20; i++ {
		last = b.Next()
	}
	if last != 160*time.Millisecond {
		t.Fatalf("default cap gave %v, want 16×base = 160ms", last)
	}
}

func TestNextAtLeastEnforcesFloor(t *testing.T) {
	b := noJitter(&Backoff{Base: 10 * time.Millisecond, Max: time.Second})
	// First wait would be 10ms; a 100ms server hint must win.
	if got := b.NextAtLeast(100 * time.Millisecond); got != 100*time.Millisecond {
		t.Fatalf("NextAtLeast(100ms) = %v, want 100ms", got)
	}
	// The schedule still advanced: the next plain wait is 20ms.
	if got := b.Next(); got != 20*time.Millisecond {
		t.Fatalf("Next after NextAtLeast = %v, want 20ms", got)
	}
	// Once the schedule exceeds the floor, the schedule wins.
	b2 := noJitter(&Backoff{Base: 300 * time.Millisecond, Max: time.Second})
	if got := b2.NextAtLeast(100 * time.Millisecond); got != 300*time.Millisecond {
		t.Fatalf("NextAtLeast(100ms) with 300ms schedule = %v, want 300ms", got)
	}
	// A zero floor is a plain Next.
	b3 := noJitter(&Backoff{Base: 40 * time.Millisecond})
	if got := b3.NextAtLeast(0); got != 40*time.Millisecond {
		t.Fatalf("NextAtLeast(0) = %v, want 40ms", got)
	}
}
