//go:build linux && amd64

package netbatch

// sysSENDMMSG is __NR_sendmmsg on linux/amd64; the frozen syscall
// package predates the syscall and never got the constant (recvmmsg
// made it in as syscall.SYS_RECVMMSG).
const sysSENDMMSG = 307
