//go:build !(linux && (amd64 || arm64))

// The portable build: no recvmmsg/sendmmsg, no SO_REUSEPORT. Wrap
// serves every batch through the generic single-datagram path (and
// counts netbatch_fallback when batching was requested), and
// ListenShards degrades to one socket. Behaviour on the wire is
// byte-identical to the Linux build — datagrams just move one per
// syscall.

package netbatch

import (
	"errors"
	"net"
)

const rawSupported = false

// sysState has no scratch to hold on the portable path.
type sysState struct{}

// initRaw is never reached: Wrap only calls it when rawSupported.
func (c *Conn) initRaw() error { return errors.ErrUnsupported }

// readBatchRaw is never reached on the portable build.
func (c *Conn) readBatchRaw(ms []Message) (int, error) { return 0, errors.ErrUnsupported }

// writeBatchRaw is never reached on the portable build.
func (c *Conn) writeBatchRaw(ms []Message) (int, error) { return 0, errors.ErrUnsupported }

// listenShards cannot spread load without SO_REUSEPORT; it binds one
// socket and records the degradation so dashboards can see a sharded
// deployment quietly running unsharded.
func listenShards(addr string, _ int, m metrics) ([]*net.UDPConn, error) {
	c, err := listenOne(addr)
	if err != nil {
		return nil, err
	}
	m.fallback.Inc()
	return []*net.UDPConn{c}, nil
}
