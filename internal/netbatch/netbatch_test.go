package netbatch

import (
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sort"
	"testing"
	"time"

	"smartsock/internal/obs"
)

// listen binds a fresh loopback UDP socket.
func listen(t *testing.T) *net.UDPConn {
	t.Helper()
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// wrap builds an endpoint over c, failing the test on error.
func wrap(t *testing.T, c *net.UDPConn, o Options) *Conn {
	t.Helper()
	ep, err := Wrap(c, o)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

// drain reads from ep until want datagrams arrived or the deadline
// passes, returning payload-by-address observations.
func drain(t *testing.T, ep *Conn, want int) map[string][]string {
	t.Helper()
	got := make(map[string][]string)
	ms := NewBatch(MaxBatch, 2048)
	deadline := time.Now().Add(5 * time.Second)
	total := 0
	for total < want {
		if err := ep.udp.SetReadDeadline(deadline); err != nil {
			t.Fatal(err)
		}
		n, err := ep.ReadBatch(ms)
		if err != nil {
			t.Fatalf("ReadBatch after %d/%d datagrams: %v", total, want, err)
		}
		for i := 0; i < n; i++ {
			key := ms[i].Addr.String()
			got[key] = append(got[key], string(ms[i].Buf))
		}
		total += n
	}
	return got
}

// TestRoundTrip pushes datagrams from a plain client through a
// batched reader, replies through a batched writer, and checks every
// payload and address survives in both directions.
func TestRoundTrip(t *testing.T) {
	for _, noRaw := range []bool{false, true} {
		name := "raw"
		if noRaw {
			name = "generic"
		}
		t.Run(name, func(t *testing.T) {
			server := listen(t)
			ep := wrap(t, server, Options{Batch: 16, NoRaw: noRaw})
			client := listen(t)

			const n = 40
			for i := 0; i < n; i++ {
				if _, err := client.WriteToUDPAddrPort([]byte(fmt.Sprintf("ping-%02d", i)),
					mustAddrPort(t, server.LocalAddr())); err != nil {
					t.Fatal(err)
				}
			}
			got := drain(t, ep, n)
			clientKey := mustAddrPort(t, client.LocalAddr()).String()
			if len(got) != 1 || len(got[clientKey]) != n {
				t.Fatalf("server saw %v datagrams from %v, want %d from %s", counts(got), keys(got), n, clientKey)
			}
			sort.Strings(got[clientKey])
			for i, p := range got[clientKey] {
				if want := fmt.Sprintf("ping-%02d", i); p != want {
					t.Fatalf("payload %d = %q, want %q", i, p, want)
				}
			}

			// Reply path: one WriteBatch moves every reply.
			replies := NewBatch(n, 32)
			for i := range replies {
				replies[i].Buf = append(replies[i].Buf[:0], fmt.Sprintf("pong-%02d", i)...)
				replies[i].Addr = mustAddrPort(t, client.LocalAddr())
			}
			sent, err := ep.WriteBatch(replies)
			if err != nil || sent != n {
				t.Fatalf("WriteBatch = %d, %v, want %d, nil", sent, err, n)
			}
			buf := make([]byte, 2048)
			for i := 0; i < n; i++ {
				if err := client.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
					t.Fatal(err)
				}
				m, _, err := client.ReadFromUDPAddrPort(buf)
				if err != nil {
					t.Fatalf("client read %d: %v", i, err)
				}
				if len(buf[:m]) != 7 {
					t.Fatalf("reply %d = %q", i, buf[:m])
				}
			}
		})
	}
}

// TestGenericMatchesRaw is the fallback-path equivalence suite: the
// portable single-datagram implementation must observe byte-identical
// payloads and identical peer addresses to the batched syscalls. On
// builds without the raw path both runs take the generic branch and
// the test still pins the round-trip contract.
func TestGenericMatchesRaw(t *testing.T) {
	scenario := func(noRaw bool) (payloads []string, addrs []string) {
		server := listen(t)
		ep := wrap(t, server, Options{Batch: 8, NoRaw: noRaw})
		if !noRaw && rawSupported && !ep.Batched() {
			t.Fatal("raw path requested but not armed")
		}
		client := listen(t)
		const n = 17
		for i := 0; i < n; i++ {
			if _, err := client.WriteToUDPAddrPort([]byte(fmt.Sprintf("d-%03d", i)),
				mustAddrPort(t, server.LocalAddr())); err != nil {
				t.Fatal(err)
			}
		}
		got := drain(t, ep, n)
		for addr, ps := range got {
			sort.Strings(ps)
			payloads = append(payloads, ps...)
			for range ps {
				addrs = append(addrs, addr)
			}
		}
		return payloads, addrs
	}
	rawP, rawA := scenario(false)
	genP, genA := scenario(true)
	if len(rawP) != len(genP) {
		t.Fatalf("raw saw %d datagrams, generic %d", len(rawP), len(genP))
	}
	for i := range rawP {
		if rawP[i] != genP[i] {
			t.Fatalf("payload %d: raw %q != generic %q", i, rawP[i], genP[i])
		}
	}
	// Ports differ between the two scenarios' clients; the address
	// *family and host* must match (both unmapped loopback).
	for i := range rawA {
		ra, ga := mustParse(t, rawA[i]), mustParse(t, genA[i])
		if ra.Addr() != ga.Addr() {
			t.Fatalf("addr %d: raw %v != generic %v", i, ra.Addr(), ga.Addr())
		}
	}
}

// TestConnectedSocket exercises the dialled-client mode used by the
// windowed storm benchmark: WriteBatch with invalid Addrs sends to
// the connected peer, ReadBatch receives the replies.
func TestConnectedSocket(t *testing.T) {
	server := listen(t)
	sep := wrap(t, server, Options{Batch: 8})
	raddr, err := net.ResolveUDPAddr("udp", server.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	clientUDP, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer clientUDP.Close()
	cep := wrap(t, clientUDP, Options{Batch: 8})

	out := NewBatch(5, 16)
	for i := range out {
		out[i].Buf = append(out[i].Buf[:0], fmt.Sprintf("c-%d", i)...)
		out[i].Addr = netip.AddrPort{} // connected: no destination
	}
	if sent, err := cep.WriteBatch(out); err != nil || sent != 5 {
		t.Fatalf("client WriteBatch = %d, %v", sent, err)
	}
	got := drain(t, sep, 5)
	var from string
	for addr := range got {
		from = addr
	}
	if len(got[from]) != 5 {
		t.Fatalf("server got %v", counts(got))
	}
	// Echo back through the server's batched writer and read the
	// replies on the connected client's batched reader.
	back := NewBatch(5, 16)
	for i := range back {
		back[i].Buf = append(back[i].Buf[:0], fmt.Sprintf("s-%d", i)...)
		back[i].Addr = mustParse(t, from)
	}
	if sent, err := sep.WriteBatch(back); err != nil || sent != 5 {
		t.Fatalf("server WriteBatch = %d, %v", sent, err)
	}
	in := NewBatch(8, 64)
	total := 0
	for total < 5 {
		if err := clientUDP.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		n, err := cep.ReadBatch(in)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
}

// TestListenShards pins the sharding contract: on Linux every shard
// binds the same port and the union of shard reads sees every
// datagram; elsewhere the helper degrades to a single socket and
// counts the fallback.
func TestListenShards(t *testing.T) {
	reg := obs.NewRegistry()
	shards, err := ListenShards("127.0.0.1:0", 4, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, s := range shards {
			_ = s.Close()
		}
	}()
	if runtime.GOOS != "linux" {
		if len(shards) != 1 {
			t.Fatalf("portable ListenShards returned %d sockets, want 1", len(shards))
		}
		if got := reg.Snapshot().Counters["netbatch_fallback"]; got == 0 {
			t.Fatal("portable shard degradation not counted in netbatch_fallback")
		}
		return
	}
	if len(shards) != 4 {
		t.Fatalf("ListenShards returned %d sockets, want 4", len(shards))
	}
	port := mustAddrPort(t, shards[0].LocalAddr()).Port()
	for i, s := range shards {
		if p := mustAddrPort(t, s.LocalAddr()).Port(); p != port {
			t.Fatalf("shard %d bound port %d, want %d", i, p, port)
		}
	}

	// Many distinct client sockets so the kernel's flow hash has
	// something to spread; every datagram must land on some shard.
	const clients, perClient = 32, 4
	for c := 0; c < clients; c++ {
		conn := listen(t)
		for i := 0; i < perClient; i++ {
			if _, err := conn.WriteToUDPAddrPort([]byte(fmt.Sprintf("c%02d-%d", c, i)),
				mustAddrPort(t, shards[0].LocalAddr())); err != nil {
				t.Fatal(err)
			}
		}
	}
	seen := 0
	ms := NewBatch(MaxBatch, 256)
	for _, s := range shards {
		ep := wrap(t, s, Options{Batch: 16, Obs: reg})
		for {
			if err := s.SetReadDeadline(time.Now().Add(200 * time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			n, err := ep.ReadBatch(ms)
			if err != nil {
				break // deadline: this shard is drained
			}
			seen += n
		}
	}
	if want := clients * perClient; seen != want {
		t.Fatalf("shards saw %d datagrams, want %d", seen, want)
	}
	snap := reg.Snapshot()
	if snap.Counters["netbatch_rx_syscalls"] == 0 {
		t.Fatal("netbatch_rx_syscalls never counted")
	}
	if snap.Counters["netbatch_fallback"] != 0 {
		t.Fatalf("netbatch_fallback = %d on the batched build", snap.Counters["netbatch_fallback"])
	}
}

// TestBatchClamp pins the Options normalisation.
func TestBatchClamp(t *testing.T) {
	server := listen(t)
	ep := wrap(t, server, Options{Batch: MaxBatch + 100})
	if ep.Batch() != MaxBatch {
		t.Fatalf("Batch() = %d, want clamp to %d", ep.Batch(), MaxBatch)
	}
	ep1 := wrap(t, listen(t), Options{Batch: 0})
	if ep1.Batch() != 1 || ep1.Batched() {
		t.Fatalf("Batch 0 → (%d, batched=%v), want single-datagram mode", ep1.Batch(), ep1.Batched())
	}
}

func mustAddrPort(t *testing.T, a net.Addr) netip.AddrPort {
	t.Helper()
	ap, err := netip.ParseAddrPort(a.String())
	if err != nil {
		t.Fatal(err)
	}
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

func mustParse(t *testing.T, s string) netip.AddrPort {
	t.Helper()
	ap, err := netip.ParseAddrPort(s)
	if err != nil {
		t.Fatal(err)
	}
	return ap
}

func counts(m map[string][]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = len(v)
	}
	return out
}

func keys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestHandoffTransfersBuffer(t *testing.T) {
	ring := Message{
		Buf:  []byte("datagram")[:8],
		Addr: netip.MustParseAddrPort("10.0.0.1:99"),
	}
	orig := &ring.Buf[0]
	fresh := make([]byte, 4, 64)

	out := Handoff(&ring, fresh)

	// The caller got the received datagram: same backing array, same
	// length reslice, same source.
	if &out.Buf[0] != orig || string(out.Buf) != "datagram" {
		t.Fatalf("handoff did not transfer the received buffer")
	}
	if out.Addr != netip.MustParseAddrPort("10.0.0.1:99") {
		t.Fatalf("handoff lost the source address: %v", out.Addr)
	}
	// The ring slot is ready for the next read: fresh buffer at full
	// capacity, address cleared.
	if &ring.Buf[0] != &fresh[0] || len(ring.Buf) != cap(fresh) {
		t.Fatalf("ring slot not reset: len %d, cap %d", len(ring.Buf), cap(fresh))
	}
	if ring.Addr.IsValid() {
		t.Fatalf("ring slot address not cleared: %v", ring.Addr)
	}
}
