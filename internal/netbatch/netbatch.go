// Package netbatch is the batched UDP datagram plane under the
// wizard's request loop and the monitor's probe-report ingest. Both
// hot loops used to cost one recvfrom plus one sendto per datagram;
// at storm rates the request plane is syscall-bound, so netbatch
// moves up to Batch datagrams per syscall instead:
//
//   - On Linux (amd64/arm64), ReadBatch and WriteBatch issue
//     recvmmsg(2)/sendmmsg(2) through syscall.Syscall6, integrated
//     with the runtime poller via syscall.RawConn so a blocked read
//     parks the goroutine instead of spinning. Source addresses are
//     decoded from the raw sockaddrs into netip.AddrPort values, so
//     a received datagram costs no *net.UDPAddr allocation.
//   - Everywhere else (and whenever Batch <= 1, including the
//     daemons' -compat mode), a portable fallback serves the
//     identical interface with single ReadMsgUDPAddrPort /
//     WriteToUDPAddrPort calls, so behaviour is byte-identical off
//     Linux — batches just degrade to one datagram per syscall.
//
// ListenShards adds the second axis: it binds N sockets to the same
// UDP port via SO_REUSEPORT, so each serve goroutine owns a private
// socket and the kernel load-balances flows across them — converting
// shared-socket contention into per-shard independence. Off Linux it
// degrades to a single socket (counted by netbatch_fallback).
//
// Batching is transparent to peers: the same datagrams move, in the
// same order per flow, whatever the batch size or shard count.
package netbatch

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"os"

	"smartsock/internal/obs"
)

// MaxBatch caps the datagrams moved per syscall; recvmmsg gains
// little past this point and the per-conn scratch arrays stay small.
const MaxBatch = 64

// DefaultBatch is the batch size the daemons use unless configured.
const DefaultBatch = 32

// Message is one datagram in a batch. For reads, Buf's capacity is
// the receive buffer and ReadBatch reslices it to the datagram
// length; for writes, Buf is the payload and Addr the destination
// (an invalid Addr means "use the connected peer").
type Message struct {
	Buf  []byte
	Addr netip.AddrPort
}

// NewBatch allocates n messages, each with a bufSize-byte buffer —
// the reusable receive or reply vector a serve loop owns.
func NewBatch(n, bufSize int) []Message {
	ms := make([]Message, n)
	for i := range ms {
		ms[i].Buf = make([]byte, bufSize)
	}
	return ms
}

// Handoff transfers ownership of m's receive buffer to the caller
// and installs fresh (at full capacity) in its place, so the ring
// slot is ready for the next ReadBatch while the received datagram
// outlives it — the zero-copy bridge between a receive ring and an
// ingress queue (internal/overload). The returned message keeps the
// datagram-length reslice and source address the read produced.
func Handoff(m *Message, fresh []byte) Message {
	out := *m
	m.Buf = fresh[:cap(fresh)]
	m.Addr = netip.AddrPort{}
	return out
}

// Endpoint is the batched datagram interface the serve loops program
// against. *Conn implements it; tests substitute fault-injecting
// wrappers.
type Endpoint interface {
	// ReadBatch fills up to len(ms) messages with received datagrams
	// and returns how many arrived. It blocks until at least one
	// datagram is available, then drains whatever else is already
	// queued without blocking again.
	ReadBatch(ms []Message) (int, error)
	// WriteBatch sends every message and returns how many the kernel
	// accepted. A per-datagram send failure is skipped, not fatal: the
	// remaining messages are still attempted and the first error is
	// returned alongside the count, so a transient ENOBUFS cannot
	// wedge a serve loop.
	WriteBatch(ms []Message) (int, error)
	Close() error
	LocalAddr() net.Addr
}

// Options parameterise Wrap.
type Options struct {
	// Batch is the most datagrams one syscall may move. 0 and 1 both
	// select single-datagram mode (the portable path); values above
	// MaxBatch are clamped.
	Batch int
	// Obs receives the plane's syscall counters (netbatch_rx_syscalls,
	// netbatch_tx_syscalls, netbatch_fallback); nil detaches them.
	Obs *obs.Registry
	// NoRaw pins the portable single-datagram path even where the
	// batched syscalls exist — the equivalence tests' lever, and a
	// debugging escape hatch.
	NoRaw bool
}

// metrics are the plane's shared counters; every Conn bound to the
// same registry shares one set.
type metrics struct {
	rxSys    *obs.Counter // netbatch_rx_syscalls: receive syscalls issued
	txSys    *obs.Counter // netbatch_tx_syscalls: send syscalls issued
	fallback *obs.Counter // netbatch_fallback: batch>1 requests served by the portable path
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		rxSys:    reg.Counter("netbatch_rx_syscalls"),
		txSys:    reg.Counter("netbatch_tx_syscalls"),
		fallback: reg.Counter("netbatch_fallback"),
	}
}

// Conn is a batched datagram endpoint over one *net.UDPConn. A Conn
// is owned by a single goroutine at a time (each serve loop wraps its
// socket privately); several Conns may wrap the same socket, in which
// case the kernel serialises the syscalls.
type Conn struct {
	udp   *net.UDPConn
	batch int
	raw   bool // batched-syscall path armed (Linux only)
	m     metrics
	sys   sysState // platform scratch; empty struct off Linux
}

// Wrap builds a batched endpoint over an already-bound UDP socket.
func Wrap(c *net.UDPConn, o Options) (*Conn, error) {
	b := o.Batch
	if b <= 0 {
		b = 1
	}
	if b > MaxBatch {
		b = MaxBatch
	}
	cn := &Conn{udp: c, batch: b, m: newMetrics(o.Obs)}
	if b > 1 {
		if rawSupported && !o.NoRaw {
			if err := cn.initRaw(); err != nil {
				return nil, fmt.Errorf("netbatch: arm batched syscalls: %w", err)
			}
			cn.raw = true
		} else {
			// Batching was asked for but only the single-datagram
			// fallback is available here; make that visible.
			cn.m.fallback.Inc()
		}
	}
	return cn, nil
}

// Batch reports the endpoint's maximum datagrams per syscall.
func (c *Conn) Batch() int { return c.batch }

// Batched reports whether the recvmmsg/sendmmsg path is armed.
func (c *Conn) Batched() bool { return c.raw }

// Close closes the underlying socket.
func (c *Conn) Close() error { return c.udp.Close() }

// LocalAddr reports the underlying socket's bound address.
func (c *Conn) LocalAddr() net.Addr { return c.udp.LocalAddr() }

// ReadBatch implements Endpoint.
func (c *Conn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	if c.raw {
		return c.readBatchRaw(ms)
	}
	return c.readBatchGeneric(ms)
}

// WriteBatch implements Endpoint.
func (c *Conn) WriteBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	if c.raw {
		return c.writeBatchRaw(ms)
	}
	return c.writeBatchGeneric(ms)
}

// readBatchGeneric is the portable single-datagram read: exactly one
// blocking receive per call, so a "batch" arrives one message at a
// time with behaviour identical to the historical serve loops.
func (c *Conn) readBatchGeneric(ms []Message) (int, error) {
	buf := ms[0].Buf[:cap(ms[0].Buf)]
	//lint:ignore dgramloop portable single-datagram fallback: the batched path needs recvmmsg, which only the Linux build provides
	n, _, _, from, err := c.udp.ReadMsgUDPAddrPort(buf, nil)
	if err != nil {
		return 0, err
	}
	c.m.rxSys.Inc()
	ms[0].Buf = buf[:n]
	// Normalise dual-stack mapped peers (::ffff:a.b.c.d) to their v4
	// form so both paths report identical addresses.
	ms[0].Addr = netip.AddrPortFrom(from.Addr().Unmap(), from.Port())
	return 1, nil
}

// writeBatchGeneric is the portable send loop: one sendto per
// message, failed datagrams skipped, first error reported.
func (c *Conn) writeBatchGeneric(ms []Message) (int, error) {
	sent := 0
	var firstErr error
	for i := range ms {
		var err error
		if ms[i].Addr.IsValid() {
			_, err = c.udp.WriteToUDPAddrPort(ms[i].Buf, ms[i].Addr)
		} else {
			// Connected-socket mode: the peer is fixed at dial time.
			_, err = c.udp.Write(ms[i].Buf)
		}
		c.m.txSys.Inc()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded) {
				// The socket is gone for every remaining message too.
				return sent, firstErr
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// ListenShards binds n UDP sockets to the same address. With n > 1 it
// sets SO_REUSEPORT on every socket so the kernel spreads inbound
// flows across them — each wizard worker then owns a private socket
// instead of contending on one shared fd. The first socket may bind
// port 0; the rest join whatever port it got.
//
// The returned slice may be shorter than n where SO_REUSEPORT is
// unavailable (everywhere but Linux): callers must size their serve
// loops by len(result), and netbatch_fallback counts the degradation.
func ListenShards(addr string, n int, reg *obs.Registry) ([]*net.UDPConn, error) {
	m := newMetrics(reg)
	if n <= 1 {
		c, err := listenOne(addr)
		if err != nil {
			return nil, err
		}
		return []*net.UDPConn{c}, nil
	}
	return listenShards(addr, n, m)
}

// listenOne is the plain single-socket bind both paths share.
func listenOne(addr string) (*net.UDPConn, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netbatch: resolve %q: %w", addr, err)
	}
	c, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("netbatch: listen: %w", err)
	}
	return c, nil
}

// closeAll releases a partially built shard set.
func closeAll(conns []*net.UDPConn) {
	for _, c := range conns {
		_ = c.Close()
	}
}
