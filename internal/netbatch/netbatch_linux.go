//go:build linux && (amd64 || arm64)

// The Linux fast path: recvmmsg(2)/sendmmsg(2) through
// syscall.Syscall6, driven inside syscall.RawConn.Read/Write
// callbacks so the runtime poller still parks the goroutine while
// the socket is idle. The syscalls run with MSG_DONTWAIT; EAGAIN
// hands control back to the poller, everything else surfaces as an
// *os.SyscallError. Scratch arrays (mmsghdrs, iovecs, sockaddr
// buffers) are sized once at Wrap time and reused for the life of
// the Conn, so a batched read or write allocates nothing.

package netbatch

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"os"
	"syscall"
	"unsafe"
)

const rawSupported = true

// soReusePort is SO_REUSEPORT, absent from the frozen syscall
// package (same value on every Linux architecture).
const soReusePort = 0xf

// mmsghdr mirrors struct mmsghdr: one msghdr plus the kernel-filled
// datagram length. The trailing pad keeps the 8-byte stride the
// kernel expects on LP64.
type mmsghdr struct {
	hdr  syscall.Msghdr
	nlen uint32
	_    [4]byte
}

// sysState is the per-Conn scratch for the batched syscalls.
type sysState struct {
	rc        syscall.RawConn
	rvec      []mmsghdr
	riov      []syscall.Iovec
	rname     []syscall.RawSockaddrInet6
	wvec      []mmsghdr
	wiov      []syscall.Iovec
	wname     []syscall.RawSockaddrInet6
	family    int  // AF_INET or AF_INET6, fixed at bind time
	connected bool // dialled socket: sends must not name a peer
}

// initRaw arms the batched path: grabs the RawConn, probes the socket
// family and connectedness once, and sizes the scratch arrays.
func (c *Conn) initRaw() error {
	rc, err := c.udp.SyscallConn()
	if err != nil {
		return err
	}
	var family int
	var connected bool
	cerr := rc.Control(func(fd uintptr) {
		sa, err := syscall.Getsockname(int(fd))
		if err == nil {
			if _, ok := sa.(*syscall.SockaddrInet4); ok {
				family = syscall.AF_INET
			} else {
				family = syscall.AF_INET6
			}
		}
		if _, err := syscall.Getpeername(int(fd)); err == nil {
			connected = true
		}
	})
	if cerr != nil {
		return cerr
	}
	if family == 0 {
		family = syscall.AF_INET6
	}
	b := c.batch
	c.sys = sysState{
		rc:        rc,
		rvec:      make([]mmsghdr, b),
		riov:      make([]syscall.Iovec, b),
		rname:     make([]syscall.RawSockaddrInet6, b),
		wvec:      make([]mmsghdr, b),
		wiov:      make([]syscall.Iovec, b),
		wname:     make([]syscall.RawSockaddrInet6, b),
		family:    family,
		connected: connected,
	}
	return nil
}

// readBatchRaw receives up to min(len(ms), batch) datagrams with one
// recvmmsg per wakeup.
func (c *Conn) readBatchRaw(ms []Message) (int, error) {
	n := len(ms)
	if n > c.batch {
		n = c.batch
	}
	for i := 0; i < n; i++ {
		buf := ms[i].Buf[:cap(ms[i].Buf)]
		ms[i].Buf = buf
		if len(buf) > 0 {
			c.sys.riov[i].Base = &buf[0]
		} else {
			c.sys.riov[i].Base = nil
		}
		c.sys.riov[i].SetLen(len(buf))
		h := &c.sys.rvec[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&c.sys.rname[i]))
		h.Namelen = uint32(unsafe.Sizeof(c.sys.rname[i]))
		h.Iov = &c.sys.riov[i]
		h.Iovlen = 1
		h.Control = nil
		h.Controllen = 0
		h.Flags = 0
	}
	var got int
	var errno syscall.Errno
	err := c.sys.rc.Read(func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&c.sys.rvec[0])), uintptr(n),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN || e == syscall.EINTR {
			return false // park on the poller until readable
		}
		got, errno = int(r), e
		return true
	})
	if err != nil {
		return 0, err // poller-level: closed socket or deadline
	}
	if errno != 0 {
		return 0, os.NewSyscallError("recvmmsg", errno)
	}
	c.m.rxSys.Inc()
	for i := 0; i < got; i++ {
		ms[i].Buf = ms[i].Buf[:c.sys.rvec[i].nlen]
		ms[i].Addr = decodeSockaddr(&c.sys.rname[i])
	}
	return got, nil
}

// writeBatchRaw sends every message, moving as many per sendmmsg as
// the kernel takes. A per-datagram failure skips that datagram and
// carries on; a poller-level failure (closed, deadline) aborts.
func (c *Conn) writeBatchRaw(ms []Message) (int, error) {
	sent := 0
	var firstErr error
	for off := 0; off < len(ms); {
		n := len(ms) - off
		if n > c.batch {
			n = c.batch
		}
		for i := 0; i < n; i++ {
			m := &ms[off+i]
			if len(m.Buf) > 0 {
				c.sys.wiov[i].Base = &m.Buf[0]
			} else {
				c.sys.wiov[i].Base = nil
			}
			c.sys.wiov[i].SetLen(len(m.Buf))
			h := &c.sys.wvec[i].hdr
			if c.sys.connected || !m.Addr.IsValid() {
				h.Name = nil
				h.Namelen = 0
			} else {
				h.Namelen = encodeSockaddr(&c.sys.wname[i], c.sys.family, m.Addr)
				h.Name = (*byte)(unsafe.Pointer(&c.sys.wname[i]))
			}
			h.Iov = &c.sys.wiov[i]
			h.Iovlen = 1
			h.Control = nil
			h.Controllen = 0
			h.Flags = 0
			c.sys.wvec[i].nlen = 0
		}
		k := 0
		for k < n {
			var wrote int
			var errno syscall.Errno
			err := c.sys.rc.Write(func(fd uintptr) bool {
				r, _, e := syscall.Syscall6(sysSENDMMSG, fd,
					uintptr(unsafe.Pointer(&c.sys.wvec[k])), uintptr(n-k),
					syscall.MSG_DONTWAIT, 0, 0)
				if e == syscall.EAGAIN || e == syscall.EINTR {
					return false // wait for the send buffer to drain
				}
				wrote, errno = int(r), e
				return true
			})
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return sent, firstErr
			}
			if errno != 0 {
				// sendmmsg reports an error only when the *first*
				// pending datagram fails; skip it and keep the rest
				// moving — a transient ENOBUFS must not wedge the loop.
				if firstErr == nil {
					firstErr = os.NewSyscallError("sendmmsg", errno)
				}
				k++
				continue
			}
			c.m.txSys.Inc()
			sent += wrote
			k += wrote
		}
		off += n
	}
	return sent, firstErr
}

// ntohs converts a network-byte-order port field (amd64 and arm64
// are both little-endian).
func ntohs(p uint16) uint16 { return p<<8 | p>>8 }

// decodeSockaddr turns a kernel-filled raw sockaddr into a
// netip.AddrPort without allocating. Dual-stack mapped v4 peers are
// unmapped so both I/O paths report identical addresses.
func decodeSockaddr(sa *syscall.RawSockaddrInet6) netip.AddrPort {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), ntohs(sa4.Port))
	case syscall.AF_INET6:
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), ntohs(sa.Port))
	}
	return netip.AddrPort{}
}

// encodeSockaddr fills sa for a send to ap on a socket of the given
// family, returning the sockaddr length. v4 destinations on a
// dual-stack (AF_INET6) socket are written in v4-mapped form, which
// As16 produces directly.
func encodeSockaddr(sa *syscall.RawSockaddrInet6, family int, ap netip.AddrPort) uint32 {
	if family == syscall.AF_INET {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		sa4.Family = syscall.AF_INET
		sa4.Port = ntohs(ap.Port())
		sa4.Addr = ap.Addr().Unmap().As4()
		return uint32(unsafe.Sizeof(*sa4))
	}
	sa.Family = syscall.AF_INET6
	sa.Port = ntohs(ap.Port())
	sa.Addr = ap.Addr().As16()
	sa.Scope_id = 0
	return uint32(unsafe.Sizeof(*sa))
}

// listenShards binds n SO_REUSEPORT sockets to the same port. The
// first bind may pick an ephemeral port; the rest join it.
func listenShards(addr string, n int, _ metrics) ([]*net.UDPConn, error) {
	lc := net.ListenConfig{Control: func(network, address string, rc syscall.RawConn) error {
		var serr error
		if err := rc.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	conns := make([]*net.UDPConn, 0, n)
	bind := addr
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", bind)
		if err != nil {
			closeAll(conns)
			return nil, fmt.Errorf("netbatch: listen shard %d: %w", i, err)
		}
		uc, ok := pc.(*net.UDPConn)
		if !ok {
			closeAll(conns)
			_ = pc.Close()
			return nil, fmt.Errorf("netbatch: shard %d is %T, not *net.UDPConn", i, pc)
		}
		conns = append(conns, uc)
		if i == 0 {
			// Later shards must join the concrete port the first bind
			// got, which matters when addr asked for port 0.
			bind = uc.LocalAddr().String()
		}
	}
	return conns, nil
}
