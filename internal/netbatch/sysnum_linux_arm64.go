//go:build linux && arm64

package netbatch

// sysSENDMMSG is __NR_sendmmsg on linux/arm64.
const sysSENDMMSG = 269
