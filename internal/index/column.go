package index

import (
	"math"
	"sort"
)

// Op is a comparison against a constant, the only predicate shape the
// planner extracts.
type Op uint8

const (
	LT Op = iota
	LE
	GT
	GE
	EQ
)

func (o Op) String() string {
	switch o {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Constraint is one extracted predicate: Field Op Val.
type Constraint struct {
	Field string
	Op    Op
	Val   float64
}

// Match applies the constraint's comparison to a concrete value. Any
// comparison involving NaN is false, matching the requirement
// language's float semantics.
func (c Constraint) Match(v float64) bool {
	switch c.Op {
	case LT:
		return v < c.Val
	case LE:
		return v <= c.Val
	case GT:
		return v > c.Val
	case GE:
		return v >= c.Val
	case EQ:
		return v == c.Val
	}
	return false
}

// entry is one (value, host id) pair in a column's sorted view.
type entry struct {
	val float64
	id  int32
}

// sortKey orders entries. NaN sorts as +Inf so the base array stays
// totally ordered and binary search stays sound; NaN entries can land
// inside a range's positions but are never *valid* (NaN != NaN fails
// the currency check below), matching evaluation where every NaN
// comparison is false.
func sortKey(v float64) float64 {
	if math.IsNaN(v) {
		return math.Inf(1)
	}
	return v
}

// column is one per-field ordered index. The dense vals array (keyed
// by host id, guarded by the defined bitset) holds the authoritative
// current values; base is a sorted view and patch an unsorted overlay
// of recent updates. Sorted entries are ghost-tolerant: an entry
// counts only while vals still holds exactly its value, so an update
// appends one patch entry and a delete needs no index work at all —
// the stale entry invalidates itself. Compaction re-sorts base from
// vals once the patch grows past a fraction of it, keeping range
// lookups O(log n + answer) amortized without ever rebuilding on a
// per-request basis.
type column struct {
	vals    []float64
	defined Bits
	base    []entry
	patch   []entry
}

// ensure grows the dense array to cover ids below n.
func (c *column) ensure(n int) {
	for len(c.vals) < n {
		c.vals = append(c.vals, 0)
	}
	c.defined = c.defined.grow(n)
}

// set records the field's current value for one host.
func (c *column) set(id int, v float64) {
	c.vals[id] = v
	c.defined.Set(id)
	c.patch = append(c.patch, entry{val: v, id: int32(id)})
	if len(c.patch) > 255+len(c.base)/8 {
		c.compact()
	}
}

// unset marks the field undefined for one host (the record no longer
// reports it). Ghost entries in base/patch self-invalidate via the
// defined bit.
func (c *column) unset(id int) {
	c.defined.Clear(id)
}

// compact rebuilds the sorted base from the dense array and drops the
// patch.
func (c *column) compact() {
	c.base = c.base[:0]
	c.defined.ForEach(func(id int) {
		c.base = append(c.base, entry{val: c.vals[id], id: int32(id)})
	})
	sort.Slice(c.base, func(i, j int) bool { return sortKey(c.base[i].val) < sortKey(c.base[j].val) })
	c.patch = c.patch[:0]
}

// lowerBound returns the first base position whose key is >= x;
// upperBound the first > x.
func (c *column) lowerBound(x float64) int {
	return sort.Search(len(c.base), func(i int) bool { return sortKey(c.base[i].val) >= x })
}

func (c *column) upperBound(x float64) int {
	return sort.Search(len(c.base), func(i int) bool { return sortKey(c.base[i].val) > x })
}

// span returns the base range [lo, hi) that can satisfy the
// constraint. NaN-keyed ghosts inside the range are filtered at
// collection time.
func (c *column) span(con Constraint) (lo, hi int) {
	switch con.Op {
	case LT:
		return 0, c.lowerBound(con.Val)
	case LE:
		return 0, c.upperBound(con.Val)
	case GT:
		return c.upperBound(con.Val), len(c.base)
	case GE:
		return c.lowerBound(con.Val), len(c.base)
	case EQ:
		return c.lowerBound(con.Val), c.upperBound(con.Val)
	}
	return 0, len(c.base)
}

// estimate bounds how many hosts can satisfy the constraint: the base
// range width plus the whole patch (every patch entry might fall in
// range). The planner drives candidate generation from the smallest
// estimate.
func (c *column) estimate(con Constraint) int {
	lo, hi := c.span(con)
	return hi - lo + len(c.patch)
}

// valid reports whether a sorted entry still reflects the host's
// current value.
func (c *column) valid(e entry) bool {
	return c.defined.Test(int(e.id)) && c.vals[e.id] == e.val
}

// collect sets the bit of every live host satisfying the constraint:
// a binary-searched walk of the base range plus a linear sweep of the
// (small) patch. Duplicate entries for one host dedupe through the
// bitset.
func (c *column) collect(con Constraint, out, live Bits) {
	lo, hi := c.span(con)
	for _, e := range c.base[lo:hi] {
		if c.valid(e) && live.Test(int(e.id)) && con.Match(e.val) {
			out.Set(int(e.id))
		}
	}
	for _, e := range c.patch {
		if c.valid(e) && live.Test(int(e.id)) && con.Match(e.val) {
			out.Set(int(e.id))
		}
	}
}

// test applies the constraint to one host through the dense array.
func (c *column) test(id int, con Constraint) bool {
	return c.defined.Test(id) && con.Match(c.vals[id])
}
