// Package index maintains per-field ordered indexes and bitset
// candidate sets over the status database, fed incrementally from
// store.ChangedSince deltas. The wizard's selection planner
// intersects a requirement's range constraints against these indexes
// to evaluate only the handful of servers that can possibly qualify,
// instead of scanning the whole table per request.
package index

import "math/bits"

// Bits is a dense bitset over host ids.
type Bits []uint64

// grow returns b extended to hold at least n bits.
func (b Bits) grow(n int) Bits {
	words := (n + 63) / 64
	for len(b) < words {
		b = append(b, 0)
	}
	return b
}

// Set sets bit i; the set must already be large enough.
func (b Bits) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i if it is within range.
func (b Bits) Clear(i int) {
	if w := i >> 6; w < len(b) {
		b[w] &^= 1 << (uint(i) & 63)
	}
}

// Test reports bit i, treating out-of-range as unset.
func (b Bits) Test(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Reset clears every bit, keeping capacity.
func (b Bits) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// ForEach calls fn for every set bit in ascending order.
func (b Bits) ForEach(fn func(i int)) {
	for w, word := range b {
		for word != 0 {
			fn(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}
