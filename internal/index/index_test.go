package index

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"smartsock/internal/obs"
	"smartsock/internal/status"
	"smartsock/internal/store"
)

// expectHosts computes the ground-truth candidate set by scanning the
// snapshot and sec table directly.
func expectHosts(db *store.DB, snap *store.SysSnapshot, cons []Constraint) []string {
	var out []string
	for i := range snap.Records {
		rec := &snap.Records[i]
		ok := true
		for _, c := range cons {
			var v float64
			if c.Field == SecurityField {
				sec, found := db.GetSec(rec.Status.Host)
				if !found {
					ok = false
					break
				}
				v = float64(sec.Level.Level)
			} else {
				val, found := rec.Status.Var(c.Field)
				if !found {
					ok = false
					break
				}
				v = val
			}
			if !c.Match(v) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, rec.Status.Host)
		}
	}
	sort.Strings(out)
	return out
}

// query syncs the set against the database head and returns the
// candidate hosts, failing the test when the index declines to serve.
func query(t *testing.T, db *store.DB, s *Set, cons []Constraint) []string {
	t.Helper()
	fields := make([]string, 0, len(cons))
	for _, c := range cons {
		fields = append(fields, c.Field)
	}
	snap := db.SysView()
	if !s.SyncFor(snap, fields) {
		t.Fatalf("SyncFor declined a fresh snapshot (epoch %d)", snap.Epoch)
	}
	hosts, ok := s.Candidates(snap.Epoch, cons, nil)
	if !ok {
		t.Fatalf("Candidates declined epoch %d after successful SyncFor", snap.Epoch)
	}
	want := expectHosts(db, snap, cons)
	if !reflect.DeepEqual(hosts, want) && !(len(hosts) == 0 && len(want) == 0) {
		t.Fatalf("candidates mismatch for %v:\n got %v\nwant %v", cons, hosts, want)
	}
	return hosts
}

func TestIndexDeltaMaintenance(t *testing.T) {
	clock := time.Unix(1000, 0)
	db := store.NewWithClock(func() time.Time { return clock })
	s := New(db, nil)

	for i := 0; i < 50; i++ {
		db.PutSys(status.ServerStatus{Host: fmt.Sprintf("h%02d", i), Load1: float64(i) / 10, CPUIdle: float64(i) / 50})
	}
	cons := []Constraint{{Field: "host_system_load1", Op: LT, Val: 2.0}}
	got := query(t, db, s, cons)
	if len(got) != 20 {
		t.Fatalf("expected 20 hosts under load 2.0, got %d", len(got))
	}

	// Incremental updates: shift some loads, add hosts, expire others.
	clock = clock.Add(time.Minute)
	for i := 0; i < 10; i++ {
		db.PutSys(status.ServerStatus{Host: fmt.Sprintf("h%02d", i), Load1: 9, CPUIdle: 0.9})
	}
	db.PutSys(status.ServerStatus{Host: "new-a", Load1: 0.1, CPUIdle: 1})
	db.ExpireSys(30 * time.Second) // drops the 40 un-refreshed hosts

	_, _, syncedBefore := s.Ver()
	if !syncedBefore {
		t.Fatal("index lost sync unexpectedly")
	}
	got = query(t, db, s, cons)
	if len(got) != 1 || got[0] != "new-a" {
		t.Fatalf("after churn expected [new-a], got %v", got)
	}

	// Multi-constraint intersection.
	got = query(t, db, s, []Constraint{
		{Field: "host_system_load1", Op: GE, Val: 5},
		{Field: "host_cpu_free", Op: GT, Val: 0.5},
	})
	if len(got) != 10 {
		t.Fatalf("expected the 10 re-put hosts, got %v", got)
	}
}

func TestIndexRefreshIsNoop(t *testing.T) {
	clock := time.Unix(2000, 0)
	db := store.NewWithClock(func() time.Time { return clock })
	s := New(db, nil)
	st := status.ServerStatus{Host: "r1", Load1: 1.5}
	db.PutSys(st)
	cons := []Constraint{{Field: "host_system_load1", Op: EQ, Val: 1.5}}
	query(t, db, s, cons)
	epochBefore := db.SysEpoch()

	clock = clock.Add(time.Second)
	db.PutSys(st) // same content: refresh, epoch must hold
	if db.SysEpoch() != epochBefore {
		t.Fatalf("refresh advanced the epoch: %d -> %d", epochBefore, db.SysEpoch())
	}
	got := query(t, db, s, cons)
	if len(got) != 1 {
		t.Fatalf("refresh lost the host: %v", got)
	}
}

func TestIndexResyncAfterLoad(t *testing.T) {
	reg := obs.NewRegistry()
	db := store.New()
	s := New(db, reg)
	db.PutSys(status.ServerStatus{Host: "a", Load1: 1})
	query(t, db, s, []Constraint{{Field: "host_system_load1", Op: GT, Val: 0}})

	// Load replaces the table wholesale and resets retained history;
	// the next sync must rebuild, not delta.
	db.Load([]status.ServerStatus{{Host: "b", Load1: 2}, {Host: "c", Load1: 0.5}}, nil, nil)
	got := query(t, db, s, []Constraint{{Field: "host_system_load1", Op: GT, Val: 1}})
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("after Load expected [b], got %v", got)
	}
	if n := reg.Snapshot().Counters["index_resyncs"]; n < 1 {
		t.Fatalf("expected at least one resync, counter = %d", n)
	}
}

func TestIndexNaNNeverMatches(t *testing.T) {
	db := store.New()
	s := New(db, nil)
	db.PutSys(status.ServerStatus{Host: "nan-host", Load1: math.NaN()})
	db.PutSys(status.ServerStatus{Host: "ok-host", Load1: 1})
	for _, op := range []Op{LT, LE, GT, GE, EQ} {
		got := query(t, db, s, []Constraint{{Field: "host_system_load1", Op: op, Val: 100}})
		for _, h := range got {
			if h == "nan-host" {
				t.Fatalf("NaN value matched constraint op %v", op)
			}
		}
	}
}

func TestIndexSecurityField(t *testing.T) {
	db := store.New()
	s := New(db, nil)
	for i := 0; i < 8; i++ {
		host := fmt.Sprintf("s%d", i)
		db.PutSys(status.ServerStatus{Host: host, Load1: 1})
		if i%2 == 0 {
			db.PutSec(status.SecLevel{Host: host, Level: i})
		}
	}
	got := query(t, db, s, []Constraint{{Field: SecurityField, Op: GE, Val: 4}})
	want := []string{"s4", "s6"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("security candidates = %v, want %v", got, want)
	}

	// Raising one host's level must flow through the delta path.
	db.PutSec(status.SecLevel{Host: "s0", Level: 9})
	got = query(t, db, s, []Constraint{{Field: SecurityField, Op: GE, Val: 4}})
	want = []string{"s0", "s4", "s6"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after sec update candidates = %v, want %v", got, want)
	}
}

func TestIndexCompactionUnderChurn(t *testing.T) {
	clock := time.Unix(3000, 0)
	db := store.NewWithClock(func() time.Time { return clock })
	s := New(db, nil)
	rng := rand.New(rand.NewSource(7))
	cons := []Constraint{{Field: "host_cpu_free", Op: GT, Val: 0.5}}
	for round := 0; round < 40; round++ {
		clock = clock.Add(time.Second)
		for i := 0; i < 32; i++ {
			db.PutSys(status.ServerStatus{
				Host:    fmt.Sprintf("c%02d", i),
				Load1:   rng.Float64() * 4,
				CPUIdle: rng.Float64(),
			})
		}
		if round%7 == 6 {
			db.ExpireSys(500 * time.Millisecond) // everyone; then repopulated next round
		}
		query(t, db, s, cons)
	}
}

func TestIndexStaleSnapshotRefused(t *testing.T) {
	db := store.New()
	s := New(db, nil)
	db.PutSys(status.ServerStatus{Host: "x", Load1: 1})
	stale := db.SysView()
	db.PutSys(status.ServerStatus{Host: "y", Load1: 2}) // bumps epoch
	if s.SyncFor(stale, []string{"host_system_load1"}) {
		t.Fatal("SyncFor accepted a stale snapshot")
	}
	if _, ok := s.Candidates(stale.Epoch, []Constraint{{Field: "host_system_load1", Op: GT, Val: 0}}, nil); ok {
		t.Fatal("Candidates served a stale epoch")
	}
	// The fresh snapshot must work.
	query(t, db, s, []Constraint{{Field: "host_system_load1", Op: GT, Val: 0}})
}

func TestIndexRandomizedAgainstScan(t *testing.T) {
	clock := time.Unix(4000, 0)
	db := store.NewWithClock(func() time.Time { return clock })
	s := New(db, nil)
	rng := rand.New(rand.NewSource(42))
	fields := []string{"host_system_load1", "host_cpu_free", "host_memory_free", SecurityField}
	ops := []Op{LT, LE, GT, GE, EQ}
	for step := 0; step < 300; step++ {
		clock = clock.Add(time.Second)
		host := fmt.Sprintf("r%02d", rng.Intn(24))
		switch rng.Intn(6) {
		case 0, 1, 2:
			db.PutSys(status.ServerStatus{
				Host:    host,
				Load1:   float64(rng.Intn(8)),
				CPUIdle: float64(rng.Intn(4)) / 4,
				MemFree: uint64(rng.Intn(4)) << 20,
			})
		case 3:
			db.PutSec(status.SecLevel{Host: host, Level: rng.Intn(5)})
		case 4:
			db.ExpireSys(5 * time.Second)
		case 5:
			if r, ok := db.GetSys(host); ok {
				db.PutSys(r.Status) // refresh
			}
		}
		ncons := 1 + rng.Intn(2)
		cons := make([]Constraint, ncons)
		for i := range cons {
			cons[i] = Constraint{
				Field: fields[rng.Intn(len(fields))],
				Op:    ops[rng.Intn(len(ops))],
				Val:   float64(rng.Intn(8)),
			}
		}
		query(t, db, s, cons)
	}
}
