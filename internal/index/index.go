package index

import (
	"math/bits"
	"sort"
	"sync"
	"time"

	"smartsock/internal/obs"
	"smartsock/internal/status"
	"smartsock/internal/store"
)

// SecurityField is the one indexable variable that lives outside the
// sys table: the host's security level from secdb.
const SecurityField = "host_security_level"

// Set is the collection of per-field indexes over one status
// database. It trails the database through ChangedSince deltas keyed
// by the (version, epoch) pair — tombstones clear liveness bits,
// same-content refreshes re-stamp nothing, and a base that falls
// behind retained history triggers a full Resync rebuild, exactly
// mirroring the transport's snapshot-gap handling. The serve path
// never rebuilds: it applies the delta since the last selection and
// answers range queries from the sorted columns.
type Set struct {
	db *store.DB

	mu     sync.RWMutex
	synced bool
	ver    uint64 // database version the indexes reflect
	epoch  uint64 // sys-table epoch at that version

	// hosts assigns each host name a small dense id, stable for the
	// life of the Set (a Resync renumbers). live marks ids currently
	// present in the sys table; cols holds one ordered column per
	// indexed field, created on first use.
	hosts []string
	idOf  map[string]int
	live  Bits
	cols  map[string]*column

	// Reusable delta scratch for the sync path.
	sysD status.SysDelta
	netD status.NetDelta
	secD status.SecDelta

	applyLatency *obs.Histogram // index_apply_delta: per-sync delta apply time
	resyncs      *obs.Counter   // index_resyncs: full rebuilds
}

// New builds an empty index set over db. reg may be nil.
func New(db *store.DB, reg *obs.Registry) *Set {
	return &Set{
		db:           db,
		idOf:         make(map[string]int),
		cols:         make(map[string]*column),
		applyLatency: reg.Histogram("index_apply_delta", obs.LatencyBuckets),
		resyncs:      reg.Counter("index_resyncs"),
	}
}

// SyncFor brings the indexes up to the database's current state and
// makes sure a column exists for every field, so a query against
// snap's epoch can be answered. It reports false when the snapshot is
// already behind the database (a writer raced the caller): the caller
// must fall back to scanning its snapshot, and the next request's
// fresher snapshot will match again.
func (s *Set) SyncFor(snap *store.SysSnapshot, fields []string) bool {
	// The fast path must compare the database *version*, not just the
	// sys epoch: security-level changes advance ver while leaving the
	// sys epoch alone, and the security column must still see them.
	s.mu.RLock()
	if s.synced && s.epoch == snap.Epoch && s.ver == s.db.Ver() && s.hasColumns(fields) {
		s.mu.RUnlock()
		return true
	}
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.synced {
		start := time.Now()
		ver, epoch, ok := s.db.ChangedSinceAt(s.ver, &s.sysD, &s.netD, &s.secD)
		if ok {
			s.applyDeltasLocked()
			s.ver, s.epoch = ver, epoch
			s.applyLatency.Observe(int64(time.Since(start)))
		} else {
			// Retained history no longer covers our base (tombstone
			// prune, source restart, whole-table Load): rebuild.
			s.synced = false
		}
	}
	if !s.synced {
		s.resyncLocked()
	}
	if s.epoch != snap.Epoch {
		// The epoch is monotonic and we just synced to the database's
		// head, so a mismatch means the caller's snapshot is stale.
		return false
	}
	return s.ensureColumnsLocked(fields, snap)
}

// Candidates appends to dst the hosts that satisfy every constraint,
// sorted by name, provided the indexes still match the queried epoch.
// Candidate generation walks the sorted range of the most selective
// constraint and filters the survivors against the remaining
// constraints' dense arrays in O(1) each.
func (s *Set) Candidates(epoch uint64, cons []Constraint, dst []string) ([]string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.synced || s.epoch != epoch || len(cons) == 0 {
		return dst, false
	}
	driver := -1
	best := 0
	for i, c := range cons {
		col := s.cols[c.Field]
		if col == nil {
			return dst, false
		}
		if est := col.estimate(c); driver < 0 || est < best {
			driver, best = i, est
		}
	}
	cand := make(Bits, (len(s.hosts)+63)/64)
	s.cols[cons[driver].Field].collect(cons[driver], cand, s.live)
	for i, c := range cons {
		if i == driver {
			continue
		}
		col := s.cols[c.Field]
		for w := range cand {
			word := cand[w]
			for word != 0 {
				id := w<<6 + bits.TrailingZeros64(word)
				if !col.test(id, c) {
					cand.Clear(id)
				}
				word &= word - 1
			}
		}
	}
	cand.ForEach(func(id int) { dst = append(dst, s.hosts[id]) })
	sort.Strings(dst)
	return dst, true
}

// Ver returns the (version, epoch) pair the indexes reflect.
func (s *Set) Ver() (ver, epoch uint64, synced bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ver, s.epoch, s.synced
}

func (s *Set) hasColumns(fields []string) bool {
	for _, f := range fields {
		if s.cols[f] == nil {
			return false
		}
	}
	return true
}

// ensureID returns the host's dense id, assigning the next one (and
// growing the bitsets and columns) for a host never seen before. Ids
// are never recycled while the Set lives: a host that expires and
// returns keeps its id, so no stale sorted entry can alias a
// different host.
func (s *Set) ensureIDLocked(host string) int {
	if id, ok := s.idOf[host]; ok {
		return id
	}
	id := len(s.hosts)
	s.hosts = append(s.hosts, host)
	s.idOf[host] = id
	s.live = s.live.grow(id + 1)
	for _, col := range s.cols {
		col.ensure(id + 1)
	}
	return id
}

// applyDeltasLocked folds one ChangedSince answer into the indexes.
func (s *Set) applyDeltasLocked() {
	for i := range s.sysD.Changed {
		st := &s.sysD.Changed[i]
		id := s.ensureIDLocked(st.Host)
		s.live.Set(id)
		for field, col := range s.cols {
			if field == SecurityField {
				continue
			}
			if v, ok := st.Var(field); ok {
				col.set(id, v)
			} else {
				col.unset(id)
			}
		}
	}
	for _, host := range s.sysD.Deleted {
		if id, ok := s.idOf[host]; ok {
			s.live.Clear(id)
		}
	}
	// Refreshes re-stamp timestamps only; values, and therefore every
	// column, are unchanged. Net deltas carry no indexed fields.
	if col := s.cols[SecurityField]; col != nil {
		for i := range s.secD.Changed {
			l := &s.secD.Changed[i]
			col.set(s.ensureIDLocked(l.Host), float64(l.Level))
		}
		for _, host := range s.secD.Deleted {
			if id, ok := s.idOf[host]; ok {
				col.unset(id)
			}
		}
	}
}

// resyncLocked rebuilds everything from a consistent full view,
// renumbering the id space. Existing columns are repopulated in the
// same pass so queries resume immediately.
func (s *Set) resyncLocked() {
	snap, sec, ver, epoch := s.db.ResyncView()
	s.resyncs.Add(1)
	s.hosts = s.hosts[:0]
	clear(s.idOf)
	s.live = s.live[:0]
	for field, col := range s.cols {
		*col = column{}
		if field == SecurityField {
			s.fillSecColumnLocked(col, sec)
		} else {
			s.fillSysColumnLocked(field, col, snap)
		}
	}
	// Host ids for snapshot members not already assigned by column
	// fills (no columns yet, or fields the records don't define).
	for i := range snap.Records {
		id := s.ensureIDLocked(snap.Records[i].Status.Host)
		s.live = s.live.grow(id + 1)
		s.live.Set(id)
	}
	s.ver, s.epoch, s.synced = ver, epoch, true
}

// ensureColumnsLocked creates any missing columns. Sys-table columns
// fill from the caller's epoch-matched snapshot; the security column
// fills from the live sec table, which the delta stream keeps
// convergent with our version.
func (s *Set) ensureColumnsLocked(fields []string, snap *store.SysSnapshot) bool {
	for _, f := range fields {
		if s.cols[f] != nil {
			continue
		}
		col := &column{}
		if f == SecurityField {
			s.fillSecColumnLocked(col, s.db.Sec())
		} else {
			s.fillSysColumnLocked(f, col, snap)
		}
		s.cols[f] = col
	}
	return true
}

func (s *Set) fillSysColumnLocked(field string, col *column, snap *store.SysSnapshot) {
	col.ensure(len(s.hosts))
	for i := range snap.Records {
		rec := &snap.Records[i]
		id := s.ensureIDLocked(rec.Status.Host)
		col.ensure(id + 1)
		if v, ok := rec.Status.Var(field); ok {
			col.set(id, v)
		} else {
			col.unset(id)
		}
	}
	col.compact()
}

func (s *Set) fillSecColumnLocked(col *column, sec []store.SecRecord) {
	col.ensure(len(s.hosts))
	for i := range sec {
		rec := &sec[i]
		id := s.ensureIDLocked(rec.Level.Host)
		col.ensure(id + 1)
		col.set(id, float64(rec.Level.Level))
	}
	col.compact()
}
