package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"smartsock/internal/status"
)

// scanChangedSince computes a delta through the historical full-table
// classification, bypassing the changelog ring, so tests can assert
// the ring-served path returns exactly the same answer.
func (db *DB) scanChangedSince(base uint64, sys *status.SysDelta, net *status.NetDelta, sec *status.SecDelta) (uint64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if base < db.tombFloor || base > db.ver {
		return db.ver, false
	}
	sys.Reset(base, db.ver)
	net.Reset(base, db.ver)
	sec.Reset(base, db.ver)
	if base == db.ver {
		return db.ver, true
	}
	db.changedFromScanLocked(base, sys, net, sec)
	sortSysDelta(sys)
	sortNetDelta(net)
	sortSecDelta(sec)
	return db.ver, true
}

// mutateRandomly applies one random mutation drawn from the full op
// vocabulary: puts, same-content refreshes, expiries across all three
// tables.
func mutateRandomly(t *testing.T, db *DB, rng *rand.Rand, clock *time.Time) {
	t.Helper()
	*clock = clock.Add(time.Second)
	host := fmt.Sprintf("ring-%02d", rng.Intn(16))
	switch rng.Intn(8) {
	case 0, 1:
		db.PutSys(status.ServerStatus{Host: host, Load1: float64(rng.Intn(4))})
	case 2:
		if r, ok := db.GetSys(host); ok {
			db.PutSys(r.Status) // refresh path
		} else {
			db.PutSys(status.ServerStatus{Host: host})
		}
	case 3:
		db.PutNet(status.NetMetric{From: "mon-a", To: host, Delay: time.Duration(rng.Intn(5)) * time.Millisecond})
	case 4:
		db.PutSec(status.SecLevel{Host: host, Level: rng.Intn(5)})
	case 5:
		db.ExpireSys(4 * time.Second)
	case 6:
		db.ExpireNet(4 * time.Second)
	case 7:
		db.ExpireSec(4 * time.Second)
	}
}

// TestChangedSinceLogMatchesScan drives random mutations and, after
// each one, asks for deltas from several bases through both the
// ring-served path and the forced full scan. The answers must be
// identical structures.
func TestChangedSinceLogMatchesScan(t *testing.T) {
	clock := time.Unix(1_700_000_000, 0)
	db := NewWithClock(func() time.Time { return clock })
	rng := rand.New(rand.NewSource(42))
	var bases []uint64
	var ringSys, scanSys status.SysDelta
	var ringNet, scanNet status.NetDelta
	var ringSec, scanSec status.SecDelta
	for i := 0; i < 400; i++ {
		mutateRandomly(t, db, rng, &clock)
		bases = append(bases, db.Ver())
		// Probe a handful of historical bases plus the current version.
		for _, base := range []uint64{bases[rng.Intn(len(bases))], bases[len(bases)-1], db.Ver()} {
			ringVer, ringOK := db.ChangedSince(base, &ringSys, &ringNet, &ringSec)
			scanVer, scanOK := db.scanChangedSince(base, &scanSys, &scanNet, &scanSec)
			if ringVer != scanVer || ringOK != scanOK {
				t.Fatalf("op %d base %d: ring (ver=%d ok=%v) vs scan (ver=%d ok=%v)",
					i, base, ringVer, ringOK, scanVer, scanOK)
			}
			if !ringOK {
				continue
			}
			if !reflect.DeepEqual(ringSys, scanSys) {
				t.Fatalf("op %d base %d: sys delta diverged\nring: %+v\nscan: %+v", i, base, ringSys, scanSys)
			}
			if !reflect.DeepEqual(ringNet, scanNet) {
				t.Fatalf("op %d base %d: net delta diverged\nring: %+v\nscan: %+v", i, base, ringNet, scanNet)
			}
			if !reflect.DeepEqual(ringSec, scanSec) {
				t.Fatalf("op %d base %d: sec delta diverged\nring: %+v\nscan: %+v", i, base, ringSec, scanSec)
			}
		}
	}
}

// TestChangedSinceLogWraparound pushes more mutations than the ring
// holds: an old base must fall below the log floor (forcing the scan
// path) yet still produce a correct, servable delta, while a recent
// base stays ring-served.
func TestChangedSinceLogWraparound(t *testing.T) {
	db := New()
	db.PutSys(status.ServerStatus{Host: "w-old", Load1: 1})
	oldBase := db.Ver()
	// Wrap the ring several times over with refreshes of one host (no
	// tombstones, so the tombstone floor stays at zero and oldBase
	// remains servable).
	db.PutSys(status.ServerStatus{Host: "w-hot", Load1: 2})
	hot, _ := db.GetSys("w-hot")
	for i := 0; i < 3*changeLogCap; i++ {
		db.PutSys(hot.Status)
	}
	db.mu.Lock()
	floor := db.logFloor
	db.mu.Unlock()
	if floor == 0 {
		t.Fatalf("log floor still 0 after %d mutations (cap %d)", 3*changeLogCap, changeLogCap)
	}
	if oldBase >= floor {
		t.Fatalf("old base %d did not fall below log floor %d", oldBase, floor)
	}
	var sys status.SysDelta
	var net status.NetDelta
	var sec status.SecDelta
	if _, ok := db.ChangedSince(oldBase, &sys, &net, &sec); !ok {
		t.Fatalf("base %d refused despite intact tombstone history", oldBase)
	}
	if len(sys.Changed) != 1 || sys.Changed[0].Host != "w-hot" {
		t.Fatalf("scan-path delta wrong: changed=%v", sys.Changed)
	}
	if len(sys.Refreshed) != 0 && (len(sys.Refreshed) != 1 || sys.Refreshed[0] != "w-old") {
		t.Fatalf("scan-path delta wrong: refreshed=%v", sys.Refreshed)
	}
}

// TestApplyDeltaDeletePropagates chains two mirrors: an expiry on the
// source must flow src→mid as a tombstone, and — because Apply*Delta
// now gives mirror-side deletions full version bookkeeping — from
// mid→far through mid's own ChangedSince.
func TestApplyDeltaDeletePropagates(t *testing.T) {
	src, mid, far := New(), New(), New()
	src.PutSys(status.ServerStatus{Host: "keep", Load1: 1})
	src.PutSys(status.ServerStatus{Host: "drop", Load1: 1})
	src.PutNet(status.NetMetric{From: "m", To: "g", Delay: time.Millisecond})
	src.PutSec(status.SecLevel{Host: "drop", Level: 3})

	var sys status.SysDelta
	var net status.NetDelta
	var sec status.SecDelta
	ship := func(from, to *DB, base uint64) uint64 {
		t.Helper()
		ver, ok := from.ChangedSince(base, &sys, &net, &sec)
		if !ok {
			t.Fatalf("delta from base %d refused", base)
		}
		to.ApplySysDelta(sys.Changed, toBytes(sys.Deleted), toBytes(sys.Refreshed))
		to.ApplyNetDelta(net.Changed, toKeyViews(net.Deleted), toKeyViews(net.Refreshed))
		to.ApplySecDelta(sec.Changed, toBytes(sec.Deleted), toBytes(sec.Refreshed))
		return ver
	}
	midBase := ship(src, mid, 0)
	farBase := ship(mid, far, 0)

	time.Sleep(10 * time.Millisecond)
	src.PutSys(status.ServerStatus{Host: "keep", Load1: 2}) // keep fresh
	if gone := src.ExpireSys(5 * time.Millisecond); len(gone) != 1 || gone[0] != "drop" {
		t.Fatalf("expired %v, want [drop]", gone)
	}
	src.ExpireNet(5 * time.Millisecond)
	src.ExpireSec(5 * time.Millisecond)

	ship(src, mid, midBase)
	ship(mid, far, farBase)
	for name, db := range map[string]*DB{"mid": mid, "far": far} {
		if _, ok := db.GetSys("drop"); ok {
			t.Errorf("%s still holds expired sys record", name)
		}
		if _, ok := db.GetNet("m", "g"); ok {
			t.Errorf("%s still holds expired net record", name)
		}
		if _, ok := db.GetSec("drop"); ok {
			t.Errorf("%s still holds expired sec record", name)
		}
		if db.SysLen() != 1 {
			t.Errorf("%s has %d sys records, want 1", name, db.SysLen())
		}
	}
}

func toBytes(keys []string) [][]byte {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = []byte(k)
	}
	return out
}

func toKeyViews(keys []status.NetKey) []status.NetKeyView {
	out := make([]status.NetKeyView, len(keys))
	for i, k := range keys {
		out[i] = status.NetKeyView{From: []byte(k.From), To: []byte(k.To)}
	}
	return out
}
