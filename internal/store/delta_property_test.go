package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"smartsock/internal/status"
)

// The delta pipeline's core invariant: any sequence of store
// mutations — upserts, same-content refreshes, expiries — shipped to
// a mirror as wire-encoded deltas (with full snapshots exactly where
// the protocol demands them) leaves the mirror byte-equal to a full
// SnapshotAt of the source. These tests drive that invariant with
// seeded random op sequences and shrink failures to a minimal
// reproduction before reporting them.

// propOp is one generated pipeline operation.
type propOp struct {
	kind propKind
	host int // host index for puts/refreshes; unused for sync/expire
	val  int // content knob: same val+host ⇒ same record content
}

type propKind int

const (
	opPutSys propKind = iota
	opRefreshSys
	opPutNet
	opPutSec
	opExpireSys
	opExpireNet
	opExpireSec
	opSync
	propKinds // count
)

func (o propOp) String() string {
	names := [...]string{"putSys", "refreshSys", "putNet", "putSec", "expireSys", "expireNet", "expireSec", "sync"}
	return fmt.Sprintf("%s(h%d,v%d)", names[o.kind], o.host, o.val)
}

const propHosts = 12 // small pool so ops collide on hosts often

func propSys(host, val int) status.ServerStatus {
	return status.ServerStatus{
		Host:     fmt.Sprintf("prop-%02d", host),
		Load1:    float64(val),
		Bogomips: 1000 + float64(host)*10,
		MemTotal: 256 << 20,
		MemFree:  uint64(val+1) << 20,
	}
}

func propNet(host, val int) status.NetMetric {
	return status.NetMetric{
		From:      "netmon-local",
		To:        fmt.Sprintf("group-%02d", host),
		Delay:     time.Duration(val+1) * time.Millisecond,
		Bandwidth: float64(val+1) * 1e6,
	}
}

func propSec(host, val int) status.SecLevel {
	return status.SecLevel{Host: fmt.Sprintf("prop-%02d", host), Level: val % 7}
}

// genOps draws a random op sequence. Syncs are interleaved with
// mutations so deltas cover partial histories, and a trailing sync is
// always appended so the final comparison reflects everything.
func genOps(rng *rand.Rand, n int) []propOp {
	ops := make([]propOp, 0, n+1)
	for i := 0; i < n; i++ {
		ops = append(ops, propOp{
			kind: propKind(rng.Intn(int(propKinds))),
			host: rng.Intn(propHosts),
			val:  rng.Intn(5),
		})
	}
	return append(ops, propOp{kind: opSync})
}

// pipe is one source→mirror pipeline under test, with a fake clock
// that advances one second per operation so expiries are
// deterministic functions of the op sequence.
type pipe struct {
	src, mir *DB
	now      time.Time
	mirVer   uint64
	synced   bool

	sysD status.SysDelta
	netD status.NetDelta
	secD status.SecDelta
	sysV status.SysDeltaView
	netV status.NetDeltaView
	secV status.SecDeltaView
	buf  []byte
}

func newPipe() *pipe {
	p := &pipe{now: time.Unix(1_700_000_000, 0)}
	clock := func() time.Time { return p.now }
	p.src = NewWithClock(clock)
	p.mir = NewWithClock(clock)
	return p
}

// expireAge is what the op sequence's expiries use: records untouched
// for 3 "seconds" (= 3 ops) are stale.
const expireAge = 3 * time.Second

func (p *pipe) apply(op propOp) error {
	p.now = p.now.Add(time.Second)
	switch op.kind {
	case opPutSys:
		p.src.PutSys(propSys(op.host, op.val))
	case opRefreshSys:
		// Re-report whatever content the source currently holds for the
		// host, so this lands on the refresh path (RefVer only) when
		// the host exists and is a plain insert otherwise.
		if r, ok := p.src.GetSys(fmt.Sprintf("prop-%02d", op.host)); ok {
			p.src.PutSys(r.Status)
		} else {
			p.src.PutSys(propSys(op.host, op.val))
		}
	case opPutNet:
		p.src.PutNet(propNet(op.host, op.val))
	case opPutSec:
		p.src.PutSec(propSec(op.host, op.val))
	case opExpireSys:
		p.src.ExpireSys(expireAge)
	case opExpireNet:
		p.src.ExpireNet(expireAge)
	case opExpireSec:
		p.src.ExpireSec(expireAge)
	case opSync:
		return p.sync()
	}
	return nil
}

// sync ships one epoch: the delta since the mirror's version when the
// source can serve it (round-tripped through the real wire encoding),
// a full snapshot otherwise — exactly the transmitter's decision.
func (p *pipe) sync() error {
	if p.synced {
		ver, ok := p.src.ChangedSince(p.mirVer, &p.sysD, &p.netD, &p.secD)
		if ok {
			if err := p.applyDeltas(); err != nil {
				return err
			}
			p.mirVer = ver
			return nil
		}
	}
	sys, net, sec, ver := p.src.SnapshotAt()
	// Round-trip the batches through the wire codec too: the mirror
	// must be built from what a receiver would decode, not from shared
	// memory.
	sysRT, err := status.UnmarshalSystemBatch(status.AppendSystemBatch(nil, sys))
	if err != nil {
		return fmt.Errorf("system batch round-trip: %w", err)
	}
	netRT, err := status.UnmarshalNetBatch(status.AppendNetBatch(nil, net))
	if err != nil {
		return fmt.Errorf("net batch round-trip: %w", err)
	}
	secRT, err := status.UnmarshalSecBatch(status.AppendSecBatch(nil, sec))
	if err != nil {
		return fmt.Errorf("sec batch round-trip: %w", err)
	}
	p.mir.Load(sysRT, netRT, secRT)
	p.mirVer = ver
	p.synced = true
	return nil
}

func (p *pipe) applyDeltas() error {
	if !p.sysD.Empty() {
		p.buf = status.AppendSysDelta(p.buf[:0], &p.sysD)
		if err := p.sysV.Parse(p.buf); err != nil {
			return fmt.Errorf("sys delta round-trip: %w", err)
		}
		p.mir.ApplySysDelta(p.sysV.Changed, p.sysV.Deleted, p.sysV.Refreshed)
	}
	if !p.netD.Empty() {
		p.buf = status.AppendNetDelta(p.buf[:0], &p.netD)
		if err := p.netV.Parse(p.buf); err != nil {
			return fmt.Errorf("net delta round-trip: %w", err)
		}
		p.mir.ApplyNetDelta(p.netV.Changed, p.netV.Deleted, p.netV.Refreshed)
	}
	if !p.secD.Empty() {
		p.buf = status.AppendSecDelta(p.buf[:0], &p.secD)
		if err := p.secV.Parse(p.buf); err != nil {
			return fmt.Errorf("sec delta round-trip: %w", err)
		}
		p.mir.ApplySecDelta(p.secV.Changed, p.secV.Deleted, p.secV.Refreshed)
	}
	return nil
}

// check compares source and mirror content byte-for-byte through the
// wire encoding of their sorted snapshots.
func (p *pipe) check() error {
	srcSys, srcNet, srcSec, _ := p.src.SnapshotAt()
	mirSys, mirNet, mirSec, _ := p.mir.SnapshotAt()
	if a, b := status.AppendSystemBatch(nil, srcSys), status.AppendSystemBatch(nil, mirSys); !bytes.Equal(a, b) {
		return fmt.Errorf("sys tables diverged: source %d hosts, mirror %d hosts", len(srcSys), len(mirSys))
	}
	if a, b := status.AppendNetBatch(nil, srcNet), status.AppendNetBatch(nil, mirNet); !bytes.Equal(a, b) {
		return fmt.Errorf("net tables diverged: source %d records, mirror %d records", len(srcNet), len(mirNet))
	}
	if a, b := status.AppendSecBatch(nil, srcSec), status.AppendSecBatch(nil, mirSec); !bytes.Equal(a, b) {
		return fmt.Errorf("sec tables diverged: source %d records, mirror %d records", len(srcSec), len(mirSec))
	}
	return nil
}

// runDeltaPipeline replays one op sequence through a fresh pipeline
// and reports the first invariant violation.
func runDeltaPipeline(ops []propOp) error {
	p := newPipe()
	for i, op := range ops {
		if err := p.apply(op); err != nil {
			return fmt.Errorf("op %d %v: %w", i, op, err)
		}
	}
	if err := p.sync(); err != nil {
		return fmt.Errorf("final sync: %w", err)
	}
	return p.check()
}

// shrink greedily removes ops while the failure persists, returning a
// (locally) minimal failing sequence for the log.
func shrink(ops []propOp) []propOp {
	reduced := true
	for reduced {
		reduced = false
		for i := 0; i < len(ops); i++ {
			cand := append(append([]propOp(nil), ops[:i]...), ops[i+1:]...)
			if runDeltaPipeline(cand) != nil {
				ops = cand
				reduced = true
				break
			}
		}
	}
	return ops
}

func TestDeltaPipelineProperty(t *testing.T) {
	const (
		sequences = 60
		opsPerSeq = 80
	)
	for seed := int64(0); seed < sequences; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := genOps(rng, opsPerSeq)
		if err := runDeltaPipeline(ops); err != nil {
			minimal := shrink(ops)
			t.Logf("seed %d minimal failing sequence (%d of %d ops): %v", seed, len(minimal), len(ops), minimal)
			t.Fatalf("seed %d: %v (re-check on minimal: %v)", seed, err, runDeltaPipeline(minimal))
		}
	}
}

// TestDeltaSyncEveryOp is the densest schedule: a sync after every
// single mutation, so each delta carries exactly one change and every
// continuity edge is walked.
func TestDeltaSyncEveryOp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ops []propOp
	for i := 0; i < 120; i++ {
		ops = append(ops,
			propOp{kind: propKind(rng.Intn(int(opSync))), host: rng.Intn(propHosts), val: rng.Intn(5)},
			propOp{kind: opSync},
		)
	}
	if err := runDeltaPipeline(ops); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaPruneForcesResync drives more tombstones than the store
// retains (maxTombstones), so the deletion floor advances past the
// mirror's base: ChangedSince must refuse the delta and the pipeline
// must recover through a full snapshot, still byte-equal.
func TestDeltaPruneForcesResync(t *testing.T) {
	p := newPipe()
	const fleet = maxTombstones + 104
	for i := 0; i < fleet; i++ {
		p.src.PutSys(status.ServerStatus{Host: fmt.Sprintf("prune-%05d", i), Load1: 1})
	}
	if err := p.sync(); err != nil {
		t.Fatalf("initial sync: %v", err)
	}
	// Age every record out at once: > maxTombstones expiries prune the
	// tombstone table wholesale and advance the floor.
	p.now = p.now.Add(time.Hour)
	if gone := p.src.ExpireSys(time.Minute); len(gone) != fleet {
		t.Fatalf("expired %d of %d", len(gone), fleet)
	}
	if _, ok := p.src.ChangedSince(p.mirVer, &p.sysD, &p.netD, &p.secD); ok {
		t.Fatalf("ChangedSince served base %d across a tombstone prune", p.mirVer)
	}
	if err := p.sync(); err != nil {
		t.Fatalf("resync: %v", err)
	}
	if err := p.check(); err != nil {
		t.Fatalf("after prune-forced resync: %v", err)
	}
	if n := p.mir.SysLen(); n != 0 {
		t.Fatalf("mirror still holds %d hosts after full-fleet expiry", n)
	}
}
