package store

import (
	"fmt"

	"smartsock/internal/obs"
)

// RegisterObs publishes the database's levels into a registry as
// function gauges evaluated at snapshot time — the database already
// maintains them, so nothing is added to the write path. name
// distinguishes multiple databases in one process (the daemons use
// "monitor" and "wizard"):
//
//	store_<name>_ver          database-wide version counter
//	store_<name>_sys_epoch    sys content-mutation counter
//	store_<name>_sys_records  live server records
//	store_<name>_net_records  live network metric records
//	store_<name>_sec_records  live security level records
//
// A nil registry is a no-op.
func (db *DB) RegisterObs(reg *obs.Registry, name string) {
	reg.GaugeFunc(fmt.Sprintf("store_%s_ver", name), func() int64 { return int64(db.Ver()) })
	reg.GaugeFunc(fmt.Sprintf("store_%s_sys_epoch", name), func() int64 { return int64(db.SysEpoch()) })
	reg.GaugeFunc(fmt.Sprintf("store_%s_sys_records", name), func() int64 { return int64(db.SysLen()) })
	reg.GaugeFunc(fmt.Sprintf("store_%s_net_records", name), func() int64 { return int64(db.NetLen()) })
	reg.GaugeFunc(fmt.Sprintf("store_%s_sec_records", name), func() int64 { return int64(db.SecLen()) })
}
