package store

import (
	"testing"
	"time"

	"smartsock/internal/status"
)

func deltaTrio() (*status.SysDelta, *status.NetDelta, *status.SecDelta) {
	return &status.SysDelta{}, &status.NetDelta{}, &status.SecDelta{}
}

func TestChangedSinceFromZeroReturnsEverything(t *testing.T) {
	db := New()
	db.PutSys(status.ServerStatus{Host: "a", Load1: 1})
	db.PutSys(status.ServerStatus{Host: "b", Load1: 2})
	db.PutNet(status.NetMetric{From: "a", To: "b", Delay: time.Millisecond})
	db.PutSec(status.SecLevel{Host: "a", Level: 3})

	sys, net, sec := deltaTrio()
	ver, ok := db.ChangedSince(0, sys, net, sec)
	if !ok {
		t.Fatalf("ChangedSince(0) not ok")
	}
	if ver != db.Ver() {
		t.Fatalf("ver = %d, want %d", ver, db.Ver())
	}
	if len(sys.Changed) != 2 || len(net.Changed) != 1 || len(sec.Changed) != 1 {
		t.Fatalf("changed counts = %d/%d/%d, want 2/1/1",
			len(sys.Changed), len(net.Changed), len(sec.Changed))
	}
	if len(sys.Deleted)+len(sys.Refreshed) != 0 {
		t.Fatalf("unexpected deletions/refreshes: %v / %v", sys.Deleted, sys.Refreshed)
	}
	if sys.Changed[0].Host != "a" || sys.Changed[1].Host != "b" {
		t.Fatalf("sys changed not sorted: %v", sys.Changed)
	}
}

func TestChangedSinceUpToDateIsEmpty(t *testing.T) {
	db := New()
	db.PutSys(status.ServerStatus{Host: "a"})
	base := db.Ver()

	sys, net, sec := deltaTrio()
	ver, ok := db.ChangedSince(base, sys, net, sec)
	if !ok || ver != base {
		t.Fatalf("ChangedSince(head) = (%d, %v), want (%d, true)", ver, ok, base)
	}
	if !sys.Empty() || !net.Empty() || !sec.Empty() {
		t.Fatalf("expected empty deltas at head")
	}
}

func TestRefreshDoesNotBumpEpochButTravelsInDelta(t *testing.T) {
	db := New()
	s := status.ServerStatus{Host: "a", Load1: 1}
	db.PutSys(s)
	base := db.Ver()
	epoch := db.SysView().Epoch

	// Same content again: a refresh, not a change.
	db.PutSys(s)
	if got := db.SysView().Epoch; got != epoch {
		t.Fatalf("refresh bumped epoch %d -> %d", epoch, got)
	}
	sys, net, sec := deltaTrio()
	if _, ok := db.ChangedSince(base, sys, net, sec); !ok {
		t.Fatalf("ChangedSince not ok")
	}
	if len(sys.Changed) != 0 || len(sys.Refreshed) != 1 || sys.Refreshed[0] != "a" {
		t.Fatalf("refresh delta = changed %v refreshed %v, want refresh of a",
			sys.Changed, sys.Refreshed)
	}

	// Changed content: a real mutation.
	base = db.Ver()
	s.Load1 = 9
	db.PutSys(s)
	if got := db.SysView().Epoch; got == epoch {
		t.Fatalf("content change did not bump epoch")
	}
	if _, ok := db.ChangedSince(base, sys, net, sec); !ok {
		t.Fatalf("ChangedSince not ok")
	}
	if len(sys.Changed) != 1 || len(sys.Refreshed) != 0 {
		t.Fatalf("change delta = changed %v refreshed %v, want change of a",
			sys.Changed, sys.Refreshed)
	}
}

func TestRefreshUpdatesTimestampVisibleToFreshSys(t *testing.T) {
	now := time.Unix(1000, 0)
	db := NewWithClock(func() time.Time { return now })
	s := status.ServerStatus{Host: "a"}
	db.PutSys(s)

	now = now.Add(10 * time.Second)
	db.PutSys(s) // refresh re-stamps UpdatedAt
	fresh := db.FreshSys(5 * time.Second)
	if len(fresh) != 1 {
		t.Fatalf("refreshed record filtered out: FreshSys = %v", fresh)
	}
}

func TestExpireLeavesTombstonesInDelta(t *testing.T) {
	now := time.Unix(1000, 0)
	db := NewWithClock(func() time.Time { return now })
	db.PutSys(status.ServerStatus{Host: "old"})
	db.PutNet(status.NetMetric{From: "old", To: "b"})
	db.PutSec(status.SecLevel{Host: "old"})
	now = now.Add(time.Hour)
	db.PutSys(status.ServerStatus{Host: "new"})
	base := db.Ver()

	if got := db.ExpireSys(time.Minute); len(got) != 1 || got[0] != "old" {
		t.Fatalf("ExpireSys = %v", got)
	}
	if db.ExpireNet(time.Minute) != 1 || db.ExpireSec(time.Minute) != 1 {
		t.Fatalf("net/sec expiry did not remove records")
	}

	sys, net, sec := deltaTrio()
	if _, ok := db.ChangedSince(base, sys, net, sec); !ok {
		t.Fatalf("ChangedSince not ok")
	}
	if len(sys.Deleted) != 1 || sys.Deleted[0] != "old" {
		t.Fatalf("sys tombstones = %v, want [old]", sys.Deleted)
	}
	if len(net.Deleted) != 1 || net.Deleted[0] != (status.NetKey{From: "old", To: "b"}) {
		t.Fatalf("net tombstones = %v", net.Deleted)
	}
	if len(sec.Deleted) != 1 || sec.Deleted[0] != "old" {
		t.Fatalf("sec tombstones = %v", sec.Deleted)
	}
	// Re-inserting the host clears its tombstone.
	base = db.Ver()
	db.PutSys(status.ServerStatus{Host: "old"})
	if _, ok := db.ChangedSince(base, sys, net, sec); !ok {
		t.Fatalf("ChangedSince not ok")
	}
	if len(sys.Deleted) != 0 || len(sys.Changed) != 1 {
		t.Fatalf("after re-insert: deleted %v changed %v", sys.Deleted, sys.Changed)
	}
}

func TestChangedSinceRefusesUnservableBases(t *testing.T) {
	db := New()
	db.PutSys(status.ServerStatus{Host: "a"})
	sys, net, sec := deltaTrio()

	// A base ahead of the database (source restarted) is unservable.
	if _, ok := db.ChangedSince(db.Ver()+100, sys, net, sec); ok {
		t.Fatalf("ChangedSince accepted base ahead of head")
	}
	// A whole-table Load discards tombstone history: old bases refused.
	base := db.Ver()
	db.Load([]status.ServerStatus{{Host: "b"}}, nil, nil)
	if _, ok := db.ChangedSince(base, sys, net, sec); ok {
		t.Fatalf("ChangedSince accepted base predating a Load")
	}
	if _, ok := db.ChangedSince(db.Ver(), sys, net, sec); !ok {
		t.Fatalf("ChangedSince refused current version after Load")
	}
}

func TestTombstonePruneForcesResync(t *testing.T) {
	now := time.Unix(1000, 0)
	db := NewWithClock(func() time.Time { return now })
	base := db.Ver()
	for i := 0; i < maxTombstones+10; i++ {
		db.PutSec(status.SecLevel{Host: hostN(i)})
	}
	now = now.Add(time.Hour)
	if db.ExpireSec(time.Minute) != maxTombstones+10 {
		t.Fatalf("expiry count mismatch")
	}
	sys, net, sec := deltaTrio()
	if _, ok := db.ChangedSince(base, sys, net, sec); ok {
		t.Fatalf("ChangedSince served a base whose tombstones were pruned")
	}
}

func hostN(i int) string {
	return string([]byte{'h', byte('a' + i/676%26), byte('a' + i/26%26), byte('a' + i%26)})
}

func TestApplySysDeltaMirrorsChangesDeletesRefreshes(t *testing.T) {
	src := New()
	dst := New()
	src.PutSys(status.ServerStatus{Host: "a", Load1: 1})
	src.PutSys(status.ServerStatus{Host: "b", Load1: 2})
	sys, net, sec := deltaTrio()
	src.ChangedSince(0, sys, net, sec)
	dst.ApplySysDelta(sys.Changed, nil, nil)
	if dst.SysLen() != 2 {
		t.Fatalf("after apply: SysLen = %d, want 2", dst.SysLen())
	}

	epoch := dst.SysView().Epoch

	// Refresh-only delta: epoch must not move.
	dst.ApplySysDelta(nil, nil, [][]byte{[]byte("a")})
	if got := dst.SysView().Epoch; got != epoch {
		t.Fatalf("refresh apply bumped epoch %d -> %d", epoch, got)
	}

	// Delete propagates and bumps the epoch.
	dst.ApplySysDelta(nil, [][]byte{[]byte("b")}, nil)
	if dst.SysLen() != 1 {
		t.Fatalf("tombstone apply left SysLen = %d", dst.SysLen())
	}
	if got := dst.SysView().Epoch; got == epoch {
		t.Fatalf("delete apply did not bump epoch")
	}

	// Deleting an absent host or refreshing an unknown one is a no-op.
	epoch = dst.SysView().Epoch
	dst.ApplySysDelta(nil, [][]byte{[]byte("zz")}, [][]byte{[]byte("zz")})
	if got := dst.SysView().Epoch; got != epoch {
		t.Fatalf("no-op apply bumped epoch")
	}
}

func TestApplyNetAndSecDeltas(t *testing.T) {
	dst := New()
	dst.ApplyNetDelta([]status.NetMetric{{From: "a", To: "b", Delay: time.Second}}, nil, nil)
	if _, ok := dst.GetNet("a", "b"); !ok {
		t.Fatalf("net change not applied")
	}
	dst.ApplyNetDelta(nil, []status.NetKeyView{{From: []byte("a"), To: []byte("b")}}, nil)
	if _, ok := dst.GetNet("a", "b"); ok {
		t.Fatalf("net tombstone not applied")
	}

	dst.ApplySecDelta([]status.SecLevel{{Host: "a", Level: 5}}, nil, nil)
	if r, ok := dst.GetSec("a"); !ok || r.Level.Level != 5 {
		t.Fatalf("sec change not applied: %v %v", r, ok)
	}
	dst.ApplySecDelta(nil, [][]byte{[]byte("a")}, nil)
	if _, ok := dst.GetSec("a"); ok {
		t.Fatalf("sec tombstone not applied")
	}
}

func TestMergeUpsertsWithoutClobberingOtherSections(t *testing.T) {
	dst := New()
	dst.PutSys(status.ServerStatus{Host: "from-b", Load1: 7})
	dst.PutNet(status.NetMetric{From: "x", To: "y"})

	// A merge from transmitter A must not drop transmitter B's records
	// the way the historical whole-table Load did.
	dst.Merge(
		[]status.ServerStatus{{Host: "from-a", Load1: 1}},
		nil,
		[]status.SecLevel{{Host: "from-a", Level: 1}},
	)
	if dst.SysLen() != 2 {
		t.Fatalf("merge clobbered other transmitter's record: SysLen = %d", dst.SysLen())
	}
	if _, ok := dst.GetNet("x", "y"); !ok {
		t.Fatalf("merge clobbered untouched net section")
	}
	if r, ok := dst.GetSys("from-b"); !ok || r.Status.Load1 != 7 {
		t.Fatalf("merge altered unrelated record: %v %v", r, ok)
	}
}

func TestMergeSameContentIsRefreshNotEpochBump(t *testing.T) {
	dst := New()
	s := status.ServerStatus{Host: "a", Load1: 1}
	dst.PutSys(s)
	epoch := dst.SysView().Epoch
	dst.Merge([]status.ServerStatus{s}, nil, nil)
	if got := dst.SysView().Epoch; got != epoch {
		t.Fatalf("same-content merge bumped epoch %d -> %d", epoch, got)
	}
}
